// End-to-end scenario tests: whole pipelines across packages, the flows a
// downstream user would actually run (generate → solve → certify → encode →
// decode → re-solve).
package sea

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sync"
	"testing"

	"sea/internal/baseline"
	"sea/internal/core"
	"sea/internal/datasets"
	"sea/internal/matio"
	"sea/internal/problems"
	"sea/internal/spe"
	seaapi "sea/pkg/sea"
	"sea/pkg/sea/serve"
	seahttp "sea/pkg/sea/serve/http"
)

// optsWith returns default options with the given tolerance and limit.
func optsWith(eps float64, maxIter int) *core.Options {
	o := core.DefaultOptions()
	o.Epsilon = eps
	o.MaxIterations = maxIter
	return o
}

// TestE2EIOTableUpdate: the full input/output updating pipeline, including
// the round trip through the JSON problem format.
func TestE2EIOTableUpdate(t *testing.T) {
	spec := problems.IOSpec{Name: "e2e", Sectors: 40, Density: 0.5, Variant: problems.IOGrowth10, Seed: 20}
	p := problems.IOTable(spec)

	// Serialize and reload, as a CLI user would.
	var buf bytes.Buffer
	if err := matio.WriteProblemJSON(&buf, p); err != nil {
		t.Fatal(err)
	}
	p2, err := matio.ReadProblemJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}

	o := core.DefaultOptions()
	o.Criterion = core.DualGradient
	o.Epsilon = 1e-8
	sol, err := core.SolveDiagonal(context.Background(), p2, o)
	if err != nil {
		t.Fatal(err)
	}
	if rep := core.CheckKKT(p2, sol); !rep.Satisfied(1e-5) {
		t.Fatalf("KKT: %+v", rep)
	}

	// Cross-validate with Dykstra on the same reloaded problem.
	dyk, err := baseline.SolveDykstra(context.Background(), p2, optsWith(1e-8, 200000))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dyk.Objective-sol.Objective) > 1e-4*(1+sol.Objective) {
		t.Errorf("SEA %g vs Dykstra %g", sol.Objective, dyk.Objective)
	}

	// RAS solves the same instance (feasible pattern) but a different
	// objective; its result must meet the totals yet differ from SEA's.
	ras, err := baseline.RAS(context.Background(), p2.M, p2.N, p2.X0, p2.S0, p2.D0, optsWith(1e-9, 10000))
	if err != nil {
		t.Fatal(err)
	}
	if !ras.Converged {
		t.Fatal("RAS did not converge on a feasible instance")
	}
	var diff float64
	for k := range ras.X {
		diff += math.Abs(ras.X[k] - sol.X[k])
	}
	if diff < 1e-6 {
		t.Error("RAS and SEA coincided exactly; they solve different objectives")
	}
}

// TestE2ESAMBalancing: every embedded SAM balances, and the solution
// serializes cleanly.
func TestE2ESAMBalancing(t *testing.T) {
	for _, sam := range datasets.All() {
		p := problems.SAMFromDataset(sam)
		o := core.DefaultOptions()
		o.Criterion = core.RelBalance
		o.Epsilon = 1e-8
		sol, err := core.SolveDiagonal(context.Background(), p, o)
		if err != nil {
			t.Fatalf("%s: %v", sam.Name, err)
		}
		var buf bytes.Buffer
		if err := matio.WriteSolutionJSON(&buf, sol); err != nil {
			t.Fatalf("%s: %v", sam.Name, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s: empty solution JSON", sam.Name)
		}
		n := sam.N()
		for i := 0; i < n; i++ {
			var rs, cs float64
			for j := 0; j < n; j++ {
				rs += sol.X[i*n+j]
				cs += sol.X[j*n+i]
			}
			if math.Abs(rs-cs) > 1e-5*(1+rs) {
				t.Errorf("%s: account %d unbalanced", sam.Name, i)
			}
		}
	}
}

// TestE2ESpatialPrice: generator → isomorphism → SEA → economic
// verification, plus the asymmetric variant on the same seeds.
func TestE2ESpatialPrice(t *testing.T) {
	p := spe.Generate(20, 18, 21)
	o := core.DefaultOptions()
	o.Criterion = core.DualGradient
	o.Epsilon = 1e-8
	o.MaxIterations = 500000
	eq, err := p.Solve(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if v := p.Verify(eq, 1e-7); v.Max() > 1e-5 {
		t.Fatalf("separable equilibrium violated: %+v", v)
	}

	ap := spe.GenerateAsymmetric(10, 10, 21)
	aeq, err := ap.SolveAsymmetric(context.Background(), 1e-8, 50000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v := ap.VerifyAsymmetric(aeq, 1e-7); v.Max() > 1e-4 {
		t.Fatalf("asymmetric equilibrium violated: %+v", v)
	}
}

// TestE2EMigrationProjection: migration pipeline with per-state sanity.
func TestE2EMigrationProjection(t *testing.T) {
	spec := problems.MigrationSpec{Name: "e2e", Period: "7580", Variant: problems.MigGrowthSmall, Seed: 22}
	p := problems.MigrationProblem(spec)
	o := core.DefaultOptions()
	o.Criterion = core.DualGradient
	o.Epsilon = 0.01
	o.MaxIterations = 500000
	sol, err := core.SolveDiagonal(context.Background(), p, o)
	if err != nil {
		t.Fatal(err)
	}
	states := datasets.States()
	n := len(states)
	// Under unit weights a zero-prior diagonal cell fills to
	// (λ_i + μ_i)/2 when that is positive — verify the KKT form rather
	// than assuming the cells stay empty.
	for i := 0; i < n; i++ {
		want := (sol.Lambda[i] + sol.Mu[i]) / 2
		if want < 0 {
			want = 0
		}
		if math.Abs(sol.X[i*n+i]-want) > 1e-6*(1+want) {
			t.Errorf("%s: self-cell %g, KKT form %g", states[i].Name, sol.X[i*n+i], want)
		}
	}
	// Total in-migration equals total out-migration.
	var in, out float64
	for i := range states {
		out += sol.S[i]
		in += sol.D[i]
	}
	if math.Abs(in-out) > 1e-3*(1+out) {
		t.Errorf("flow conservation violated: out %g vs in %g", out, in)
	}
}

// TestE2EGeneralPipeline: dense-G problem through SEA, RC and the projected
// gradient reference, all agreeing.
func TestE2EGeneralPipeline(t *testing.T) {
	p := problems.GeneralDense(5, 5, 23, false)
	o := core.DefaultOptions()
	o.Epsilon = 1e-7
	o.Criterion = core.MaxAbsDelta
	o.SkipDominanceCheck = true
	sea, err := core.SolveGeneral(context.Background(), p, o)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := baseline.SolveRC(context.Background(), p, o)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := baseline.SolveProjGrad(context.Background(), p, optsWith(1e-6, 100000))
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range []struct {
		name string
		got  float64
	}{{"RC", rc.Objective}, {"ProjGrad", pg.Objective}} {
		if math.Abs(pair.got-sea.Objective) > 1e-3*(1+sea.Objective) {
			t.Errorf("%s objective %g vs SEA %g", pair.name, pair.got, sea.Objective)
		}
	}
}

// ---------------------------------------------------------------------------
// HTTP front-end end-to-end battery: the full network stack — a sharded
// multi-tenant serving layer (pkg/sea/serve) behind the HTTP/JSON transport
// (pkg/sea/serve/http) on a real loopback listener — driven by concurrent
// clients, checked for bit-identical agreement with direct in-process solves
// and for the documented error-to-status mapping.
// ---------------------------------------------------------------------------

// startHTTPStack starts a sharded server behind the HTTP transport on a
// loopback listener and tears the whole stack down with the test.
func startHTTPStack(t *testing.T, cfg serve.ShardedConfig, hcfg seahttp.Config) (base string, srv *serve.ShardedServer) {
	t.Helper()
	srv, err := serve.NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	handler := seahttp.New(srv, hcfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: handler}
	go httpSrv.Serve(ln)
	t.Cleanup(func() {
		httpSrv.Close()
		handler.Close()
		srv.Close()
	})
	return "http://" + ln.Addr().String(), srv
}

// httpSolveOptions is the solve configuration shared by the HTTP e2e servers
// and their direct in-process reference solves.
func httpSolveOptions() *seaapi.Options {
	o := seaapi.DefaultOptions()
	o.Criterion = seaapi.MaxAbsDelta
	o.Epsilon = 1e-6
	o.MaxIterations = 500000
	return o
}

// wrapDiagonal wraps a known-valid diagonal problem for a reference solve.
func wrapDiagonal(t *testing.T, d *core.DiagonalProblem) *seaapi.Problem {
	t.Helper()
	p, err := seaapi.NewDiagonal(d)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// encodeProblem renders p as the wire JSON the HTTP endpoints accept.
func encodeProblem(t *testing.T, p *core.DiagonalProblem) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := matio.WriteProblemJSON(&buf, p); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// postJSON posts body and decodes the response envelope into out (when the
// pointer is non-nil), returning the status code and headers.
func postJSON(t *testing.T, url string, body []byte, out any) (int, http.Header) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode %s: %v\nbody: %s", url, err, data)
		}
	}
	return resp.StatusCode, resp.Header
}

// TestE2EHTTPBitIdenticalAcrossShards: a mixed-shape concurrent workload
// through the real HTTP front end must return solutions bit-identical to
// direct sea.Solve, at every shard count. This is the end-to-end determinism
// contract: JSON round trips, consistent-hash routing, arena reuse, and
// kernel warm starts change nothing about the numbers.
func TestE2EHTTPBitIdenticalAcrossShards(t *testing.T) {
	mix := []*core.DiagonalProblem{
		problems.Table1(12, 5),
		problems.Table1(18, 7),
		problems.RandomSAM(16, 3),
	}
	bodies := make([][]byte, len(mix))
	refs := make([]*seaapi.Solution, len(mix))
	for i, d := range mix {
		bodies[i] = encodeProblem(t, d)
		ref, err := seaapi.Solve(context.Background(), "sea", wrapDiagonal(t, d), httpSolveOptions())
		if err != nil {
			t.Fatalf("reference solve %d: %v", i, err)
		}
		refs[i] = ref
	}

	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			base, srv := startHTTPStack(t, serve.ShardedConfig{
				Shards: shards,
				Server: serve.Config{
					Solver:      "sea",
					MaxInFlight: 2,
					MaxQueue:    64,
					Options:     httpSolveOptions(),
				},
			}, seahttp.Config{})

			const clients, reps = 4, 3
			var wg sync.WaitGroup
			errCh := make(chan error, clients)
			for g := 0; g < clients; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for r := 0; r < reps; r++ {
						for i := range bodies {
							var got matio.Solution
							status, hdr := postJSON(t, base+"/v1/solve", bodies[(g+i)%len(bodies)], &got)
							want := refs[(g+i)%len(bodies)]
							if status != http.StatusOK {
								errCh <- fmt.Errorf("client %d: status %d", g, status)
								return
							}
							if s := hdr.Get("X-Sea-Status"); s != "converged" {
								errCh <- fmt.Errorf("client %d: X-Sea-Status %q", g, s)
								return
							}
							if got.Iterations != want.Iterations || got.Objective != want.Objective {
								errCh <- fmt.Errorf("client %d: iters/objective %d/%g, want %d/%g",
									g, got.Iterations, got.Objective, want.Iterations, want.Objective)
								return
							}
							for k := range want.X {
								if got.X[k] != want.X[k] {
									errCh <- fmt.Errorf("client %d: X[%d] = %b, want %b (not bit-identical)",
										g, k, got.X[k], want.X[k])
									return
								}
							}
							for i2 := range want.S {
								if got.S[i2] != want.S[i2] {
									errCh <- fmt.Errorf("client %d: S[%d] differs", g, i2)
									return
								}
							}
							for j := range want.D {
								if got.D[j] != want.D[j] {
									errCh <- fmt.Errorf("client %d: D[%d] differs", g, j)
									return
								}
							}
						}
					}
					errCh <- nil
				}(g)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				if err != nil {
					t.Fatal(err)
				}
			}

			// Every distinct shape must have landed on exactly one shard, and
			// the server-side view must account for every request.
			st := srv.Stats()
			if want := uint64(clients * reps * len(bodies)); st.Completed != want {
				t.Errorf("completed %d, want %d", st.Completed, want)
			}
			perShard := srv.ShardStats()
			if len(perShard) != shards {
				t.Fatalf("ShardStats len %d, want %d", len(perShard), shards)
			}
			for i, d := range mix {
				want := srv.ShardFor(d.M, d.N, false)
				for si, ss := range perShard {
					for _, sh := range ss.Shapes {
						if sh.M == d.M && sh.N == d.N && si != want {
							t.Errorf("shape %d (%dx%d) pooled on shard %d, routed to %d", i, d.M, d.N, si, want)
						}
					}
				}
			}
		})
	}
}

// TestE2EHTTPErrorMapping: each failure class maps to its documented status
// and stable machine-readable code (docs/API.md), exercised through the real
// listener.
func TestE2EHTTPErrorMapping(t *testing.T) {
	base, _ := startHTTPStack(t, serve.ShardedConfig{
		Shards: 2,
		Server: serve.Config{Solver: "sea", MaxInFlight: 1, MaxQueue: 4, Options: httpSolveOptions()},
	}, seahttp.Config{MaxBodyBytes: 16 << 10})

	infeasible := *problems.Table1(6, 9)
	s0 := append([]float64(nil), infeasible.S0...)
	s0[0] += 100 // Σs⁰ ≠ Σd⁰: the transportation polytope is empty
	infeasible.S0 = s0

	type errResp struct {
		Code  string `json:"code"`
		Error string `json:"error"`
	}
	cases := []struct {
		name       string
		method     string
		url        string
		body       []byte
		wantStatus int
		wantCode   string
	}{
		{"malformed JSON", "POST", "/v1/solve", []byte("{not json"), http.StatusBadRequest, "invalid-problem"},
		{"dimension overflow", "POST", "/v1/solve", []byte(`{"m":4611686018427387904,"n":4611686018427387904,"x0":[]}`), http.StatusBadRequest, "invalid-problem"},
		{"wrong x0 length", "POST", "/v1/solve", []byte(`{"m":3,"n":3,"x0":[1,2]}`), http.StatusBadRequest, "invalid-problem"},
		{"infeasible totals", "POST", "/v1/solve", encodeProblem(t, &infeasible), http.StatusUnprocessableEntity, "infeasible"},
		{"oversized body", "POST", "/v1/solve", encodeProblem(t, problems.Table1(64, 1)), http.StatusRequestEntityTooLarge, "body-too-large"},
		{"bad timeout", "POST", "/v1/solve?timeout=never", encodeProblem(t, problems.Table1(6, 9)), http.StatusBadRequest, "bad-request"},
		{"unknown job", "GET", "/v1/jobs/j999999", nil, http.StatusNotFound, "unknown-job"},
		{"deadline", "POST", "/v1/solve?timeout=1ns", encodeProblem(t, problems.Table1(12, 24)), http.StatusGatewayTimeout, "deadline"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, base+tc.url, bytes.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var got errResp
			if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
				t.Fatalf("error envelope: %v", err)
			}
			if resp.StatusCode != tc.wantStatus || got.Code != tc.wantCode {
				t.Errorf("status %d code %q, want %d %q (error: %s)",
					resp.StatusCode, got.Code, tc.wantStatus, tc.wantCode, got.Error)
			}
		})
	}
}

// TestE2EHTTPSaturationMapping: a burst far past the admission envelope must
// come back as clean 200s and 429s — nothing else — with the "saturated"
// code, a Retry-After hint, and the rejections visible in /v1/stats.
func TestE2EHTTPSaturationMapping(t *testing.T) {
	base, srv := startHTTPStack(t, serve.ShardedConfig{
		Shards: 1,
		Server: serve.Config{Solver: "sea", MaxInFlight: 1, MaxQueue: 1, Options: httpSolveOptions()},
	}, seahttp.Config{})

	// A heavy shape whose body spans many socket reads, so the concurrent
	// handlers genuinely overlap inside the admission control (see
	// experiments.HTTPLoadSweep's saturation probe for the full rationale).
	body := encodeProblem(t, problems.RandomSAM(128, 4))

	const burst = 24
	type outcome struct {
		status int
		code   string
		retry  string
	}
	outcomes := make([]outcome, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
			if err != nil {
				outcomes[i] = outcome{status: -1}
				return
			}
			defer resp.Body.Close()
			var env struct {
				Code string `json:"code"`
			}
			data, _ := io.ReadAll(resp.Body)
			json.Unmarshal(data, &env)
			outcomes[i] = outcome{status: resp.StatusCode, code: env.Code, retry: resp.Header.Get("Retry-After")}
		}(i)
	}
	wg.Wait()

	var ok, shed int
	for i, o := range outcomes {
		switch o.status {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if o.code != "saturated" {
				t.Errorf("request %d: 429 code %q, want \"saturated\"", i, o.code)
			}
			if o.retry != "1" {
				t.Errorf("request %d: Retry-After %q, want \"1\"", i, o.retry)
			}
		default:
			t.Errorf("request %d: status %d, want 200 or 429", i, o.status)
		}
	}
	if ok == 0 {
		t.Error("no request succeeded under overload")
	}
	if shed == 0 {
		t.Error("no request was shed: admission control never rejected")
	}
	if st := srv.Stats(); st.Rejected != uint64(shed) {
		t.Errorf("stats.Rejected = %d, HTTP 429s = %d", st.Rejected, shed)
	}
}

// TestE2EHTTPJobLifecycle: the asynchronous path end to end — submit, stream
// the trace, poll the result (bit-identical to the synchronous path), and
// the deterministic 429 when the job store is full.
func TestE2EHTTPJobLifecycle(t *testing.T) {
	base, _ := startHTTPStack(t, serve.ShardedConfig{
		Shards: 2,
		Server: serve.Config{Solver: "sea", MaxInFlight: 1, MaxQueue: 4, Options: httpSolveOptions()},
	}, seahttp.Config{MaxJobs: 1})

	d := problems.Table1(16, 11)
	ref, err := seaapi.Solve(context.Background(), "sea", wrapDiagonal(t, d), httpSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	body := encodeProblem(t, d)

	var job struct {
		ID    string `json:"id"`
		Poll  string `json:"poll"`
		Trace string `json:"trace"`
	}
	status, _ := postJSON(t, base+"/v1/jobs", body, &job)
	if status != http.StatusAccepted || job.ID == "" {
		t.Fatalf("submit: status %d, job %+v", status, job)
	}

	// The store is at its 1-job cap (running or retained): a second submit
	// must be shed deterministically.
	var env struct {
		Code string `json:"code"`
	}
	if status, _ := postJSON(t, base+"/v1/jobs", body, &env); status != http.StatusTooManyRequests || env.Code != "saturated" {
		t.Fatalf("second submit: status %d code %q, want 429 \"saturated\"", status, env.Code)
	}

	// The trace stream is NDJSON: zero or more event lines, then exactly one
	// closing summary once the job finishes.
	resp, err := http.Get(base + job.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("trace Content-Type %q", ct)
	}
	stream, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(stream), []byte("\n"))
	var summary struct {
		Done  bool   `json:"done"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(lines[len(lines)-1], &summary); err != nil {
		t.Fatalf("summary line: %v", err)
	}
	if !summary.Done || summary.State != "done" {
		t.Errorf("summary %+v, want done/done", summary)
	}
	for _, line := range lines[:len(lines)-1] {
		var ev struct {
			Iteration int `json:"iteration"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("trace event %q: %v", line, err)
		}
	}

	// Poll: finished, solution present and bit-identical to the reference.
	var view struct {
		State    string          `json:"state"`
		Events   int             `json:"trace_events"`
		Solution *matio.Solution `json:"solution"`
	}
	if status, _ := getJSON(t, base+job.Poll, &view); status != http.StatusOK {
		t.Fatalf("poll: status %d", status)
	}
	if view.State != "done" || view.Solution == nil {
		t.Fatalf("poll view %+v, want done with a solution", view.State)
	}
	if view.Events == 0 {
		t.Error("no trace events recorded")
	}
	if view.Solution.Iterations != ref.Iterations || view.Solution.Objective != ref.Objective {
		t.Errorf("job solution iters/objective %d/%g, want %d/%g",
			view.Solution.Iterations, view.Solution.Objective, ref.Iterations, ref.Objective)
	}
	for k := range ref.X {
		if view.Solution.X[k] != ref.X[k] {
			t.Fatalf("X[%d] = %b, want %b (not bit-identical)", k, view.Solution.X[k], ref.X[k])
		}
	}
}

// getJSON fetches url and decodes the JSON response into out.
func getJSON(t *testing.T, url string, out any) (int, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode %s: %v\nbody: %s", url, err, data)
		}
	}
	return resp.StatusCode, resp.Header
}

// TestE2EHTTPStats: /v1/stats reflects the merged and per-shard serving
// counters after a known workload.
func TestE2EHTTPStats(t *testing.T) {
	base, _ := startHTTPStack(t, serve.ShardedConfig{
		Shards: 2,
		Server: serve.Config{Solver: "sea", MaxInFlight: 1, MaxQueue: 8, Options: httpSolveOptions()},
	}, seahttp.Config{})

	body := encodeProblem(t, problems.Table1(10, 3))
	const n = 5
	for i := 0; i < n; i++ {
		if status, _ := postJSON(t, base+"/v1/solve", body, nil); status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, status)
		}
	}

	var stats struct {
		Stats struct {
			Submitted uint64 `json:"submitted"`
			Completed uint64 `json:"completed"`
		} `json:"stats"`
		Shards []struct {
			Completed uint64 `json:"completed"`
		} `json:"shards"`
		Jobs struct {
			Running  int `json:"running"`
			Retained int `json:"retained"`
		} `json:"jobs"`
	}
	if status, _ := getJSON(t, base+"/v1/stats", &stats); status != http.StatusOK {
		t.Fatalf("stats: status %d", status)
	}
	if stats.Stats.Completed != n || stats.Stats.Submitted != n {
		t.Errorf("merged stats %+v, want %d submitted and completed", stats.Stats, n)
	}
	if len(stats.Shards) != 2 {
		t.Fatalf("per-shard stats len %d, want 2", len(stats.Shards))
	}
	// One shape: all n solves on its owning shard, none on the other.
	var per []uint64
	for _, sh := range stats.Shards {
		per = append(per, sh.Completed)
	}
	if !(per[0] == n && per[1] == 0 || per[0] == 0 && per[1] == n) {
		t.Errorf("per-shard completions %v, want all %d on one shard", per, n)
	}
}
