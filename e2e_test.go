// End-to-end scenario tests: whole pipelines across packages, the flows a
// downstream user would actually run (generate → solve → certify → encode →
// decode → re-solve).
package sea

import (
	"bytes"
	"context"
	"math"
	"testing"

	"sea/internal/baseline"
	"sea/internal/core"
	"sea/internal/datasets"
	"sea/internal/matio"
	"sea/internal/problems"
	"sea/internal/spe"
)

// optsWith returns default options with the given tolerance and limit.
func optsWith(eps float64, maxIter int) *core.Options {
	o := core.DefaultOptions()
	o.Epsilon = eps
	o.MaxIterations = maxIter
	return o
}

// TestE2EIOTableUpdate: the full input/output updating pipeline, including
// the round trip through the JSON problem format.
func TestE2EIOTableUpdate(t *testing.T) {
	spec := problems.IOSpec{Name: "e2e", Sectors: 40, Density: 0.5, Variant: problems.IOGrowth10, Seed: 20}
	p := problems.IOTable(spec)

	// Serialize and reload, as a CLI user would.
	var buf bytes.Buffer
	if err := matio.WriteProblemJSON(&buf, p); err != nil {
		t.Fatal(err)
	}
	p2, err := matio.ReadProblemJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}

	o := core.DefaultOptions()
	o.Criterion = core.DualGradient
	o.Epsilon = 1e-8
	sol, err := core.SolveDiagonal(context.Background(), p2, o)
	if err != nil {
		t.Fatal(err)
	}
	if rep := core.CheckKKT(p2, sol); !rep.Satisfied(1e-5) {
		t.Fatalf("KKT: %+v", rep)
	}

	// Cross-validate with Dykstra on the same reloaded problem.
	dyk, err := baseline.SolveDykstra(context.Background(), p2, optsWith(1e-8, 200000))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dyk.Objective-sol.Objective) > 1e-4*(1+sol.Objective) {
		t.Errorf("SEA %g vs Dykstra %g", sol.Objective, dyk.Objective)
	}

	// RAS solves the same instance (feasible pattern) but a different
	// objective; its result must meet the totals yet differ from SEA's.
	ras, err := baseline.RAS(context.Background(), p2.M, p2.N, p2.X0, p2.S0, p2.D0, optsWith(1e-9, 10000))
	if err != nil {
		t.Fatal(err)
	}
	if !ras.Converged {
		t.Fatal("RAS did not converge on a feasible instance")
	}
	var diff float64
	for k := range ras.X {
		diff += math.Abs(ras.X[k] - sol.X[k])
	}
	if diff < 1e-6 {
		t.Error("RAS and SEA coincided exactly; they solve different objectives")
	}
}

// TestE2ESAMBalancing: every embedded SAM balances, and the solution
// serializes cleanly.
func TestE2ESAMBalancing(t *testing.T) {
	for _, sam := range datasets.All() {
		p := problems.SAMFromDataset(sam)
		o := core.DefaultOptions()
		o.Criterion = core.RelBalance
		o.Epsilon = 1e-8
		sol, err := core.SolveDiagonal(context.Background(), p, o)
		if err != nil {
			t.Fatalf("%s: %v", sam.Name, err)
		}
		var buf bytes.Buffer
		if err := matio.WriteSolutionJSON(&buf, sol); err != nil {
			t.Fatalf("%s: %v", sam.Name, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s: empty solution JSON", sam.Name)
		}
		n := sam.N()
		for i := 0; i < n; i++ {
			var rs, cs float64
			for j := 0; j < n; j++ {
				rs += sol.X[i*n+j]
				cs += sol.X[j*n+i]
			}
			if math.Abs(rs-cs) > 1e-5*(1+rs) {
				t.Errorf("%s: account %d unbalanced", sam.Name, i)
			}
		}
	}
}

// TestE2ESpatialPrice: generator → isomorphism → SEA → economic
// verification, plus the asymmetric variant on the same seeds.
func TestE2ESpatialPrice(t *testing.T) {
	p := spe.Generate(20, 18, 21)
	o := core.DefaultOptions()
	o.Criterion = core.DualGradient
	o.Epsilon = 1e-8
	o.MaxIterations = 500000
	eq, err := p.Solve(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if v := p.Verify(eq, 1e-7); v.Max() > 1e-5 {
		t.Fatalf("separable equilibrium violated: %+v", v)
	}

	ap := spe.GenerateAsymmetric(10, 10, 21)
	aeq, err := ap.SolveAsymmetric(context.Background(), 1e-8, 50000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v := ap.VerifyAsymmetric(aeq, 1e-7); v.Max() > 1e-4 {
		t.Fatalf("asymmetric equilibrium violated: %+v", v)
	}
}

// TestE2EMigrationProjection: migration pipeline with per-state sanity.
func TestE2EMigrationProjection(t *testing.T) {
	spec := problems.MigrationSpec{Name: "e2e", Period: "7580", Variant: problems.MigGrowthSmall, Seed: 22}
	p := problems.MigrationProblem(spec)
	o := core.DefaultOptions()
	o.Criterion = core.DualGradient
	o.Epsilon = 0.01
	o.MaxIterations = 500000
	sol, err := core.SolveDiagonal(context.Background(), p, o)
	if err != nil {
		t.Fatal(err)
	}
	states := datasets.States()
	n := len(states)
	// Under unit weights a zero-prior diagonal cell fills to
	// (λ_i + μ_i)/2 when that is positive — verify the KKT form rather
	// than assuming the cells stay empty.
	for i := 0; i < n; i++ {
		want := (sol.Lambda[i] + sol.Mu[i]) / 2
		if want < 0 {
			want = 0
		}
		if math.Abs(sol.X[i*n+i]-want) > 1e-6*(1+want) {
			t.Errorf("%s: self-cell %g, KKT form %g", states[i].Name, sol.X[i*n+i], want)
		}
	}
	// Total in-migration equals total out-migration.
	var in, out float64
	for i := range states {
		out += sol.S[i]
		in += sol.D[i]
	}
	if math.Abs(in-out) > 1e-3*(1+out) {
		t.Errorf("flow conservation violated: out %g vs in %g", out, in)
	}
}

// TestE2EGeneralPipeline: dense-G problem through SEA, RC and the projected
// gradient reference, all agreeing.
func TestE2EGeneralPipeline(t *testing.T) {
	p := problems.GeneralDense(5, 5, 23, false)
	o := core.DefaultOptions()
	o.Epsilon = 1e-7
	o.Criterion = core.MaxAbsDelta
	o.SkipDominanceCheck = true
	sea, err := core.SolveGeneral(context.Background(), p, o)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := baseline.SolveRC(context.Background(), p, o)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := baseline.SolveProjGrad(context.Background(), p, optsWith(1e-6, 100000))
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range []struct {
		name string
		got  float64
	}{{"RC", rc.Objective}, {"ProjGrad", pg.Objective}} {
		if math.Abs(pair.got-sea.Objective) > 1e-3*(1+sea.Objective) {
			t.Errorf("%s objective %g vs SEA %g", pair.name, pair.got, sea.Objective)
		}
	}
}
