// Benchmarks, one family per table of the paper's evaluation, plus
// ablations for the design choices DESIGN.md calls out. Sizes here are
// scaled down so `go test -bench=.` completes quickly; cmd/seabench runs
// the paper-scale experiments and prints the tables themselves.
package sea

import (
	"context"
	"math/rand/v2"
	"runtime"
	"testing"

	"sea/internal/baseline"
	"sea/internal/core"
	"sea/internal/equilibrate"
	"sea/internal/experiments"
	"sea/internal/mat"
	"sea/internal/parallel"
	"sea/internal/parsim"
	"sea/internal/problems"
	"sea/internal/spe"
)

// solveDiag runs one SEA solve per iteration, failing the benchmark on any
// solver error.
func solveDiag(b *testing.B, p *core.DiagonalProblem, o *core.Options) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveDiagonal(context.Background(), p, o); err != nil {
			b.Fatal(err)
		}
	}
}

func fixedOpts(eps float64) *core.Options {
	o := core.DefaultOptions()
	o.Criterion = core.MaxAbsDelta
	o.Epsilon = eps
	return o
}

// --- Table 1: large diagonal fixed problems -----------------------------

func BenchmarkTable1_Diagonal100(b *testing.B) {
	solveDiag(b, problems.Table1(100, 1), fixedOpts(0.01))
}

func BenchmarkTable1_Diagonal250(b *testing.B) {
	solveDiag(b, problems.Table1(250, 1), fixedOpts(0.01))
}

func BenchmarkTable1_Diagonal500(b *testing.B) {
	solveDiag(b, problems.Table1(500, 1), fixedOpts(0.01))
}

// The same instance with the phases spread over NumCPU pool workers (on a
// single-core host this measures pure scheduling overhead; docs/PERFORMANCE.md
// records the multi-core numbers).
func BenchmarkTable1_Diagonal500_Parallel(b *testing.B) {
	o := fixedOpts(0.01)
	o.Procs = runtime.NumCPU()
	solveDiag(b, problems.Table1(500, 1), o)
}

// --- Table 2: input/output tables ----------------------------------------

func BenchmarkTable2_IOGrowth(b *testing.B) {
	spec := problems.IOSpec{Name: "bench", Sectors: 100, Density: 0.52, Variant: problems.IOGrowth10, Seed: 2}
	solveDiag(b, problems.IOTable(spec), fixedOpts(0.01))
}

func BenchmarkTable2_IOSparse(b *testing.B) {
	spec := problems.IOSpec{Name: "bench", Sectors: 150, Density: 0.16, Variant: problems.IOGrowth100, Seed: 3}
	solveDiag(b, problems.IOTable(spec), fixedOpts(0.01))
}

// --- Table 3: social accounting matrices ---------------------------------

func BenchmarkTable3_SAMBalanced150(b *testing.B) {
	o := core.DefaultOptions()
	o.Criterion = core.RelBalance
	o.Epsilon = 0.001
	solveDiag(b, problems.RandomSAM(150, 4), o)
}

// --- Table 4: migration tables -------------------------------------------

func BenchmarkTable4_MigrationElastic(b *testing.B) {
	spec := problems.MigrationSpec{Name: "bench", Period: "6570", Variant: problems.MigGrowthSmall, Seed: 5}
	p := problems.MigrationProblem(spec)
	o := core.DefaultOptions()
	o.Criterion = core.DualGradient
	o.Epsilon = 0.01
	o.MaxIterations = 500000
	solveDiag(b, p, o)
}

// --- Table 5: spatial price equilibrium ----------------------------------

func BenchmarkTable5_SPE100(b *testing.B) {
	sp := spe.Generate(100, 100, 6)
	p, err := sp.ToConstrainedMatrix()
	if err != nil {
		b.Fatal(err)
	}
	o := core.DefaultOptions()
	o.Criterion = core.DualGradient
	o.Epsilon = 0.01
	o.CheckEvery = 2
	o.MaxIterations = 500000
	solveDiag(b, p, o)
}

// --- Table 6 / Figure 5: instrumented solve + multiprocessor simulation --

func BenchmarkTable6_SpeedupPipeline(b *testing.B) {
	p := problems.Table1(120, 7)
	for i := 0; i < b.N; i++ {
		o := fixedOpts(0.01)
		tr := &core.CostTrace{}
		o.CostTrace = tr
		if _, err := core.SolveDiagonal(context.Background(), p, o); err != nil {
			b.Fatal(err)
		}
		parsim.Speedups(tr, []int{2, 4, 6})
	}
}

// --- Table 7: SEA vs RC vs B-K on general dense-G problems ---------------

func benchGeneral(b *testing.B, solve func(context.Context, *core.GeneralProblem, *core.Options) (*core.Solution, error), size int) {
	b.Helper()
	p := problems.GeneralDense(size, size, 8, false)
	o := core.DefaultOptions()
	o.Epsilon = 0.001
	o.Criterion = core.MaxAbsDelta
	o.SkipDominanceCheck = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solve(context.Background(), p, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7_SEA_G400(b *testing.B)  { benchGeneral(b, core.SolveGeneral, 20) }
func BenchmarkTable7_RC_G400(b *testing.B)   { benchGeneral(b, baseline.SolveRC, 20) }
func BenchmarkTable7_SEA_G2500(b *testing.B) { benchGeneral(b, core.SolveGeneral, 50) }
func BenchmarkTable7_RC_G2500(b *testing.B)  { benchGeneral(b, baseline.SolveRC, 50) }

func BenchmarkTable7_BK_G100(b *testing.B) {
	p := problems.GeneralDense(10, 10, 8, false)
	o := core.DefaultOptions()
	o.Epsilon = 0.001
	o.MaxIterations = 100000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.SolveBK(context.Background(), p, o); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 8: general migration problems ---------------------------------

func BenchmarkTable8_GeneralMigration(b *testing.B) {
	p := problems.GeneralMigration("6570", 'a', 9)
	o := core.DefaultOptions()
	o.Epsilon = 0.001
	o.Criterion = core.MaxAbsDelta
	o.SkipDominanceCheck = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveGeneral(context.Background(), p, o); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 9 / Figure 7: SEA vs RC speedup pipeline ----------------------

func BenchmarkTable9_SpeedupPipeline(b *testing.B) {
	p := problems.GeneralDense(30, 30, 10, false)
	for i := 0; i < b.N; i++ {
		o := core.DefaultOptions()
		o.Epsilon = 0.001
		o.Criterion = core.MaxAbsDelta
		o.SkipDominanceCheck = true
		tr := &core.CostTrace{}
		o.CostTrace = tr
		if _, err := core.SolveGeneral(context.Background(), p, o); err != nil {
			b.Fatal(err)
		}
		parsim.Speedups(tr, []int{2, 4})
	}
}

// --- Ablations ------------------------------------------------------------

// Checking convergence every iteration versus every fifth (the enhancement
// the paper suggests for the elastic examples, where the check is the only
// serial phase).
func BenchmarkAblation_CheckEvery1(b *testing.B) { benchCheckEvery(b, 1) }
func BenchmarkAblation_CheckEvery5(b *testing.B) { benchCheckEvery(b, 5) }

func benchCheckEvery(b *testing.B, every int) {
	b.Helper()
	sp := spe.Generate(80, 80, 11)
	p, err := sp.ToConstrainedMatrix()
	if err != nil {
		b.Fatal(err)
	}
	o := core.DefaultOptions()
	o.Criterion = core.DualGradient
	o.Epsilon = 0.01
	o.CheckEvery = every
	o.MaxIterations = 500000
	solveDiag(b, p, o)
}

// Warm-starting the column multipliers (the general solver does this
// implicitly across projection steps).
func BenchmarkAblation_ColdStart(b *testing.B) { benchWarm(b, false) }
func BenchmarkAblation_WarmStart(b *testing.B) { benchWarm(b, true) }

func benchWarm(b *testing.B, warm bool) {
	b.Helper()
	p := problems.Table1(150, 12)
	base := fixedOpts(1e-6)
	sol, err := core.SolveDiagonal(context.Background(), p, base)
	if err != nil {
		b.Fatal(err)
	}
	o := fixedOpts(1e-6)
	if warm {
		o.Mu0 = sol.Mu
	}
	solveDiag(b, p, o)
}

// The experiments package's own end-to-end pipeline at a small scale.
func BenchmarkExperiments_Table3Pipeline(b *testing.B) {
	cfg := experiments.Config{Scale: 0.05, Procs: 1}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Kernel ablation: the paper's sort-and-sweep exact equilibration versus a
// bisection root-finder on the same subproblem (exactness and O(n log n)
// versus tolerance-bounded O(n log(range/tol))).
func BenchmarkAblation_KernelExact(b *testing.B)     { benchKernel(b, false) }
func BenchmarkAblation_KernelBisection(b *testing.B) { benchKernel(b, true) }

func benchKernel(b *testing.B, bisect bool) {
	b.Helper()
	rng := rand.New(rand.NewPCG(99, 100))
	n := 1000
	p := &equilibrate.Problem{C: make([]float64, n), A: make([]float64, n)}
	var sum float64
	for j := 0; j < n; j++ {
		p.C[j] = rng.Float64() * 1000
		p.A[j] = 0.1 + rng.Float64()
		sum += p.C[j]
	}
	p.R = sum * 1.5
	ws := equilibrate.NewWorkspace(n)
	x := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if bisect {
			_, err = p.SolveBisection(x, 1e-10)
		} else {
			_, err = p.Solve(x, ws)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// Kernel warm start: re-solving a subproblem whose coefficients drifted
// slightly (the steady state of the dual ascent) with and without a
// persistent State. Both variants pay the same perturbation cost, so the
// delta is the sort-and-sweep saving alone.
func BenchmarkKernelColdResolve(b *testing.B) { benchKernelResolve(b, false) }
func BenchmarkKernelWarmResolve(b *testing.B) { benchKernelResolve(b, true) }

func benchKernelResolve(b *testing.B, warm bool) {
	b.Helper()
	rng := rand.New(rand.NewPCG(99, 100))
	n := 1000
	p := &equilibrate.Problem{C: make([]float64, n), A: make([]float64, n)}
	var sum float64
	for j := 0; j < n; j++ {
		p.C[j] = rng.Float64() * 1000
		p.A[j] = 0.1 + rng.Float64()
		sum += p.C[j]
	}
	p.R = sum * 1.5
	ws := equilibrate.NewWorkspace(n)
	x := make([]float64, n)
	st := &equilibrate.State{}
	if _, err := p.SolveState(x, ws, st); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Small deterministic drift, as between dual-ascent iterations.
		p.C[i%n] += 1e-3
		var err error
		if warm {
			_, err = p.SolveState(x, ws, st)
		} else {
			_, err = p.SolveState(x, ws, nil)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// Steady-state arena reuse: the same Table 1 instance solved back to back
// through one Arena and a caller-owned pool. After the first iteration every
// buffer, worker, and warm-start permutation is recycled — allocs/op should
// be (near) zero and ns/op below the cold BenchmarkTable1_Diagonal500.
func BenchmarkTable1_Diagonal500_ArenaReuse(b *testing.B) {
	p := problems.Table1(500, 1)
	pool := parallel.NewPool(1)
	defer pool.Close()
	ar := core.NewArena()
	defer ar.Close()
	o := fixedOpts(0.01)
	o.Runner = pool
	o.Arena = ar
	if _, err := core.SolveDiagonal(context.Background(), p, o); err != nil {
		b.Fatal(err)
	}
	solveDiag(b, p, o)
}

// The same cold/warm split at the solver level with warm starts disabled:
// isolates the kernel warm start from the rest of the arena reuse.
func BenchmarkTable1_Diagonal500_ArenaNoWarm(b *testing.B) {
	p := problems.Table1(500, 1)
	pool := parallel.NewPool(1)
	defer pool.Close()
	ar := core.NewArena()
	defer ar.Close()
	o := fixedOpts(0.01)
	o.Runner = pool
	o.Arena = ar
	o.DisableWarmStart = true
	if _, err := core.SolveDiagonal(context.Background(), p, o); err != nil {
		b.Fatal(err)
	}
	solveDiag(b, p, o)
}

// Interval-totals solve (the Harrigan–Buchanan extension) on an I/O-style
// instance.
func BenchmarkExtension_IntervalTotals(b *testing.B) {
	base := problems.IOTable(problems.IOSpec{Name: "bench", Sectors: 80, Density: 0.5, Variant: problems.IOGrowth10, Seed: 13})
	n := base.N
	slo := make([]float64, n)
	shi := make([]float64, n)
	dlo := make([]float64, n)
	dhi := make([]float64, n)
	for i := 0; i < n; i++ {
		slo[i] = base.S0[i] * 0.95
		shi[i] = base.S0[i] * 1.05
		dlo[i] = base.D0[i] * 0.95
		dhi[i] = base.D0[i] * 1.05
	}
	p, err := core.NewInterval(n, n, base.X0, base.Gamma, slo, shi, dlo, dhi)
	if err != nil {
		b.Fatal(err)
	}
	o := core.DefaultOptions()
	o.Criterion = core.DualGradient
	o.Epsilon = 1e-3
	o.MaxIterations = 500000
	solveDiag(b, p, o)
}

// Asymmetric spatial price equilibrium via the VI projection method.
func BenchmarkExtension_AsymmetricSPE(b *testing.B) {
	p := spe.GenerateAsymmetric(25, 25, 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SolveAsymmetric(context.Background(), 1e-6, 50000, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// The unsigned (Stone/Byron) direct estimator versus SEA on the same
// instance.
func BenchmarkBaseline_Unsigned(b *testing.B) {
	p := problems.Table1(60, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.SolveUnsigned(context.Background(), p); err != nil {
			b.Fatal(err)
		}
	}
}

// Solver-level kernel ablation on a Table 1 instance.
func BenchmarkAblation_SolverKernelExact(b *testing.B) { benchSolverKernel(b, core.KernelExact) }
func BenchmarkAblation_SolverKernelBisection(b *testing.B) {
	benchSolverKernel(b, core.KernelBisection)
}

func benchSolverKernel(b *testing.B, k core.Kernel) {
	b.Helper()
	p := problems.Table1(300, 16)
	o := fixedOpts(0.01)
	o.Kernel = k
	solveDiag(b, p, o)
}

// Sparse (banded) versus dense G on the same general problem: the per-
// iteration dense product drops from O((mn)²) to O(mn·bandwidth).
func BenchmarkExtension_SparseBandedG(b *testing.B) {
	m, n := 40, 40
	mn := m * n
	g := mat.BandedDominant(mn, 6, 17, 500, 800)
	x0 := make([]float64, mn)
	for k := range x0 {
		x0[k] = float64(k%9) + 1
	}
	s0 := make([]float64, m)
	d0 := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s0[i] += 1.3 * x0[i*n+j]
			d0[j] += 1.3 * x0[i*n+j]
		}
	}
	p := &core.GeneralProblem{M: m, N: n, X0: x0, G: g, S0: s0, D0: d0, Kind: core.FixedTotals}
	o := core.DefaultOptions()
	o.Epsilon = 0.001
	o.Criterion = core.MaxAbsDelta
	o.SkipDominanceCheck = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveGeneral(context.Background(), p, o); err != nil {
			b.Fatal(err)
		}
	}
}
