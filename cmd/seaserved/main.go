// Command seaserved runs the SEA solver as a network service: a sharded
// multi-tenant serving layer (pkg/sea/serve) behind the HTTP/JSON transport
// (pkg/sea/serve/http), as a single runnable daemon.
//
//	seaserved -addr :8080 -shards 4 -inflight 2 -tenant-inflight 8
//
// Requests are routed by problem shape with consistent hashing across
// -shards independent solver servers, so each shard's arena pools stay hot
// for its share of the shape space. Per-tenant quotas (keyed on the
// X-Sea-Tenant header) and fair queueing sit above the per-shard admission
// control. See docs/API.md for the endpoint reference:
//
//	curl -X POST -d @problem.json localhost:8080/v1/solve
//	curl localhost:8080/v1/stats
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener stops,
// streamed trace responses drain, in-flight solves finish, and the shards
// close.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sea/pkg/sea"
	"sea/pkg/sea/serve"
	seahttp "sea/pkg/sea/serve/http"
)

func main() {
	var (
		addr           = flag.String("addr", ":8080", "listen address")
		shards         = flag.Int("shards", 1, "inner solver-server count (consistent-hash routed by problem shape)")
		solver         = flag.String("solver", "sea", "registry solver serving every request")
		inflight       = flag.Int("inflight", 0, "per-shard max concurrent solves (0 = GOMAXPROCS)")
		queue          = flag.Int("queue", 0, "per-shard waiting-queue bound (0 = 4x inflight)")
		shapes         = flag.Int("shapes", 0, "per-shard warm shape-pool cap (0 = 8)")
		arenas         = flag.Int("arenas", 0, "per-shape idle-arena cap (0 = inflight)")
		procs          = flag.Int("procs", 1, "workers per solve's parallel phases")
		reqTimeout     = flag.Duration("request-timeout", 0, "per-request solve budget (0 = none)")
		tenantInflight = flag.Int("tenant-inflight", 0, "per-tenant in-flight cap across shards (0 = no tenant quotas)")
		tenantQueue    = flag.Int("tenant-queue", 0, "per-tenant waiting-queue bound (0 = tenant-inflight)")
		maxBody        = flag.Int64("max-body", 0, "request-body byte cap (0 = 32 MiB)")
		maxJobs        = flag.Int("max-jobs", 0, "tracked asynchronous-job cap (0 = 1024)")
		eps            = flag.Float64("eps", 0, "convergence tolerance override (0 = solver default)")
		precond        = flag.String("precondition", "none", "default preconditioning stage: none, scale, sinkhorn, or isp (requests override with ?precondition=)")
		drain          = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget")
	)
	flag.Parse()

	opts := sea.DefaultOptions()
	if *eps > 0 {
		opts.Epsilon = *eps
	}
	pc, err := sea.ParsePrecond(*precond)
	if err != nil {
		fmt.Fprintf(os.Stderr, "seaserved: %v\n", err)
		os.Exit(1)
	}
	opts.Precondition = pc
	srv, err := serve.NewSharded(serve.ShardedConfig{
		Shards:            *shards,
		TenantMaxInFlight: *tenantInflight,
		TenantMaxQueue:    *tenantQueue,
		Server: serve.Config{
			Solver:         *solver,
			MaxInFlight:    *inflight,
			MaxQueue:       *queue,
			MaxShapes:      *shapes,
			ArenasPerShape: *arenas,
			Procs:          *procs,
			RequestTimeout: *reqTimeout,
			Options:        opts,
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "seaserved: %v\n", err)
		os.Exit(1)
	}

	handler := seahttp.New(srv, seahttp.Config{MaxBodyBytes: *maxBody, MaxJobs: *maxJobs})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "seaserved: serving on %s (%d shard(s), solver %q)\n", *addr, srv.NumShards(), *solver)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "seaserved: %v, draining (budget %s)\n", sig, *drain)
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "seaserved: listener: %v\n", err)
		handler.Close()
		srv.Close()
		os.Exit(1)
	}

	// Graceful teardown, outermost first: stop accepting and let in-flight
	// HTTP exchanges finish, then drain the handler's jobs and streams, then
	// close the shards (which waits out their in-flight solves).
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "seaserved: shutdown: %v\n", err)
	}
	handler.Close()
	srv.Close()
	fmt.Fprintln(os.Stderr, "seaserved: bye")
}
