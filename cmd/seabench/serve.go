package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"sea/internal/experiments"
	"sea/internal/report"
)

// runServe executes the sustained-throughput serving benchmark and renders
// its summary plus the per-shape pool table.
func runServe(ctx context.Context, cfg experiments.Config) error {
	res, err := experiments.ServeSweep(ctx, cfg)
	if err != nil {
		return err
	}

	fmt.Printf("serve: %d submitters, %d in flight, shapes %v\n",
		res.Submitters, res.MaxInFlight, res.Sizes)
	fmt.Printf("serve: %d requests in %s: %.1f req/s, %s/req, %d allocs/req, hit rate %.0f%%\n",
		res.Requests, res.Wall.Round(time.Millisecond), res.RequestsPerSec,
		time.Duration(res.NsPerRequest).Round(time.Microsecond),
		res.AllocsPerRequest, 100*res.HitRate)

	st := res.Stats
	var rows [][]string
	for _, sh := range st.Shapes {
		rows = append(rows, []string{
			fmt.Sprintf("%dx%d", sh.M, sh.N),
			report.D(sh.Arenas), report.D(sh.Idle),
			report.D(int(sh.Hits)), report.D(int(sh.Misses)), report.D(int(sh.Evicted)),
		})
	}
	report.Render(os.Stdout, "Serving layer: per-shape arena pools (cumulative, including warm-up)",
		[]string{"shape", "arenas", "idle", "hits", "misses", "evicted"}, rows)
	fmt.Println()
	fmt.Printf("serve: totals %s\n", st)
	return nil
}

// runServeHTTP executes the HTTP front-end load run (seabench -serve -http):
// one closed-loop measurement plus an open-loop overload probe per shard
// count, rendered as a single table.
func runServeHTTP(ctx context.Context, cfg experiments.Config) error {
	results, err := experiments.HTTPLoadSweep(ctx, cfg)
	if err != nil {
		return err
	}

	var rows [][]string
	for _, r := range results {
		rows = append(rows, []string{
			report.D(r.Shards), report.D(r.Conns), report.D(r.Requests),
			fmt.Sprintf("%.0f", r.RequestsPerSec),
			fmtLatency(r.P50), fmtLatency(r.P90), fmtLatency(r.P99),
			fmt.Sprintf("%.0f%%", 100*r.HitRate),
			fmt.Sprintf("%.0f%%", 100*r.RejectedFraction),
			fmtLatency(r.OverloadP99),
		})
	}
	report.Render(os.Stdout,
		"HTTP front end: closed-loop throughput and burst saturation probe (POST /v1/solve, loopback)",
		[]string{"shards", "conns", "requests", "req/s", "p50", "p90", "p99", "hit rate", "burst shed", "burst p99"},
		rows)
	fmt.Println()
	for _, r := range results {
		fmt.Printf("serve/http: shards=%d sizes=%v wall=%s probe=%dx%d burst=%d rejected=%d\n",
			r.Shards, r.Sizes, r.Wall.Round(time.Millisecond),
			r.OverloadSize, r.OverloadSize, r.OverloadRequests, r.Rejected)
	}
	return nil
}

// fmtLatency renders a latency with microsecond resolution below 10ms.
func fmtLatency(d time.Duration) string {
	if d < 10*time.Millisecond {
		return d.Round(time.Microsecond).String()
	}
	return d.Round(100 * time.Microsecond).String()
}
