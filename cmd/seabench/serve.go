package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"sea/internal/experiments"
	"sea/internal/report"
)

// runServe executes the sustained-throughput serving benchmark and renders
// its summary plus the per-shape pool table.
func runServe(ctx context.Context, cfg experiments.Config) error {
	res, err := experiments.ServeSweep(ctx, cfg)
	if err != nil {
		return err
	}

	fmt.Printf("serve: %d submitters, %d in flight, shapes %v\n",
		res.Submitters, res.MaxInFlight, res.Sizes)
	fmt.Printf("serve: %d requests in %s: %.1f req/s, %s/req, %d allocs/req, hit rate %.0f%%\n",
		res.Requests, res.Wall.Round(time.Millisecond), res.RequestsPerSec,
		time.Duration(res.NsPerRequest).Round(time.Microsecond),
		res.AllocsPerRequest, 100*res.HitRate)

	st := res.Stats
	var rows [][]string
	for _, sh := range st.Shapes {
		rows = append(rows, []string{
			fmt.Sprintf("%dx%d", sh.M, sh.N),
			report.D(sh.Arenas), report.D(sh.Idle),
			report.D(int(sh.Hits)), report.D(int(sh.Misses)), report.D(int(sh.Evicted)),
		})
	}
	report.Render(os.Stdout, "Serving layer: per-shape arena pools (cumulative, including warm-up)",
		[]string{"shape", "arenas", "idle", "hits", "misses", "evicted"}, rows)
	fmt.Println()
	fmt.Printf("serve: totals %s\n", st)
	return nil
}
