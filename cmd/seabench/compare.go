package main

import (
	"encoding/json"
	"fmt"
	"os"

	"sea/internal/experiments"
	"sea/internal/report"
)

// runCompare implements `seabench -compare old.json new.json`: it prints a
// per-record delta table between two PerfReports (as written by -benchjson)
// keyed by (name, procs, shards) and returns the number of failures — the
// regressions (records whose ns/op grew by more than threshold, a fraction,
// e.g. 0.10 for 10%) plus the missing records. A key present only in the new
// file prints an explicit "new" line and is benign — coverage grew. A key
// present only in the old file prints an explicit "missing" line and counts
// as a failure: a benchmark that silently disappears is how perf gates rot.
// Simulated records (procs beyond the machine's cores, marked "sim") are
// judged like any other pair when both sides are simulated; a pair whose
// simulated flag differs between the files was measured on machines with
// different core counts, so its delta is informational ("mode") and exempt
// from the failure count.
func runCompare(oldPath, newPath string, threshold float64) int {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "seabench: -compare: %v\n", err)
		return 1
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "seabench: -compare: %v\n", err)
		return 1
	}

	type key struct {
		name   string
		procs  int
		shards int
	}
	oldBy := map[key]experiments.PerfRecord{}
	for _, r := range oldRep.Records {
		oldBy[key{r.Name, r.Procs, r.Shards}] = r
	}

	regressions := 0
	var rows [][]string
	seen := map[key]bool{}
	for _, nr := range newRep.Records {
		k := key{nr.Name, nr.Procs, nr.Shards}
		seen[k] = true
		or, ok := oldBy[k]
		if !ok {
			rows = append(rows, []string{recordLabel(nr), fmtProcs(nr.Procs, nr.Simulated),
				"-", fmtNs(nr.NsPerOp), "-", fmtIterPair(0, nr.OuterIterations),
				fmtSpeedup(nr.SpeedupVsSerial), "new"})
			fmt.Fprintf(os.Stderr, "seabench: new record %s procs=%d shards=%d (absent from %s)\n",
				nr.Name, nr.Procs, nr.Shards, oldPath)
			continue
		}
		delta := float64(nr.NsPerOp-or.NsPerOp) / float64(or.NsPerOp)
		verdict := "ok"
		switch {
		case or.Simulated != nr.Simulated:
			// One side simulated, the other measured: the two numbers come
			// from machines with different core counts and are not
			// comparable as a regression signal.
			verdict = "mode"
		case delta > threshold:
			verdict = "REGRESSION"
			regressions++
		case or.OuterIterations > 0 && nr.OuterIterations > or.OuterIterations:
			// Outer iterations are deterministic — any growth is a real
			// convergence regression, judged as strictly as a time one.
			// Old baselines without the field (OuterIterations 0) are
			// exempt for back-compatibility.
			verdict = "ITER REGRESSION"
			regressions++
		case delta < -threshold:
			verdict = "faster"
		}
		rows = append(rows, []string{recordLabel(nr), fmtProcs(nr.Procs, nr.Simulated),
			fmtNs(or.NsPerOp), fmtNs(nr.NsPerOp),
			fmt.Sprintf("%+.1f%%", 100*delta),
			fmtIterPair(or.OuterIterations, nr.OuterIterations),
			fmtSpeedup(or.SpeedupVsSerial) + " -> " + fmtSpeedup(nr.SpeedupVsSerial),
			verdict})
	}
	missing := 0
	for _, or := range oldRep.Records {
		if k := (key{or.Name, or.Procs, or.Shards}); !seen[k] {
			missing++
			rows = append(rows, []string{recordLabel(or), fmtProcs(or.Procs, or.Simulated),
				fmtNs(or.NsPerOp), "-", "-", fmtIterPair(or.OuterIterations, 0),
				fmtSpeedup(or.SpeedupVsSerial), "missing"})
			fmt.Fprintf(os.Stderr, "seabench: missing record %s procs=%d shards=%d (present in %s, absent from %s)\n",
				or.Name, or.Procs, or.Shards, oldPath, newPath)
		}
	}

	report.Render(os.Stdout, fmt.Sprintf("Perf comparison: %s -> %s (threshold %.0f%%)",
		oldPath, newPath, 100*threshold),
		[]string{"record", "procs", "old ns/op", "new ns/op", "delta", "iters", "speedup", "verdict"}, rows)
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "seabench: %d record(s) regressed beyond %.0f%%\n",
			regressions, 100*threshold)
	}
	if missing > 0 {
		fmt.Fprintf(os.Stderr, "seabench: %d record(s) missing from %s\n", missing, newPath)
	}
	return regressions + missing
}

func loadReport(path string) (experiments.PerfReport, error) {
	var rep experiments.PerfReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Records) == 0 {
		return rep, fmt.Errorf("%s: no perf records", path)
	}
	return rep, nil
}

// recordLabel renders a record's name, tagging the shard count for the
// sharded serving records (so each (name, shards) pair reads as its own row)
// and the period count for the temporal "sequence/" records.
func recordLabel(r experiments.PerfRecord) string {
	if r.Shards > 0 {
		return fmt.Sprintf("%s[shards=%d]", r.Name, r.Shards)
	}
	if r.Periods > 0 {
		return fmt.Sprintf("%s[periods=%d]", r.Name, r.Periods)
	}
	return r.Name
}

// fmtProcs renders a worker count, tagging simulated records (see
// experiments.PerfRecord.Simulated).
func fmtProcs(procs int, simulated bool) string {
	if simulated {
		return fmt.Sprintf("%d (sim)", procs)
	}
	return fmt.Sprint(procs)
}

// fmtIterPair renders the outer-iteration delta column; zero on either
// side (old baselines predating the field, or a new/missing record)
// renders as "-".
func fmtIterPair(old, new int) string {
	lhs, rhs := "-", "-"
	if old > 0 {
		lhs = fmt.Sprint(old)
	}
	if new > 0 {
		rhs = fmt.Sprint(new)
	}
	if lhs == "-" && rhs == "-" {
		return "-"
	}
	return lhs + " -> " + rhs
}

// fmtSpeedup renders a speedup-vs-serial value; zero (absent in old files)
// renders as "-".
func fmtSpeedup(s float64) string {
	if s == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", s)
}

func fmtNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
