package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"sea/internal/experiments"
)

func writeReport(t *testing.T, dir, name string, recs []experiments.PerfRecord) string {
	t.Helper()
	rep := experiments.PerfReport{GoMaxProcs: 1, NumCPU: 1, Scale: 1, Records: recs}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func rec(name string, procs int, ns int64, sim bool) experiments.PerfRecord {
	return experiments.PerfRecord{
		Name: name, Procs: procs, NsPerOp: ns,
		SpeedupVsSerial: 1, Simulated: sim,
	}
}

// TestCompareKeysByNameAndProcs checks that records are matched per
// (name, procs) pair: a regression at one worker count must be flagged even
// when the same instance is fine at another.
func TestCompareKeysByNameAndProcs(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", []experiments.PerfRecord{
		rec("table1/diagonal500", 1, 1000, false),
		rec("table1/diagonal500", 4, 400, false),
	})
	newPath := writeReport(t, dir, "new.json", []experiments.PerfRecord{
		rec("table1/diagonal500", 1, 1010, false), // within threshold
		rec("table1/diagonal500", 4, 900, false),  // > 10% slower at procs=4
	})
	if got := runCompare(oldPath, newPath, 0.10); got != 1 {
		t.Fatalf("runCompare = %d regressions, want 1 (the procs=4 record)", got)
	}
}

func TestCompareNoRegressions(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", []experiments.PerfRecord{
		rec("a", 1, 1000, false),
		rec("a", 2, 600, true),
	})
	newPath := writeReport(t, dir, "new.json", []experiments.PerfRecord{
		rec("a", 1, 950, false),
		rec("a", 2, 610, true),
	})
	if got := runCompare(oldPath, newPath, 0.10); got != 0 {
		t.Fatalf("runCompare = %d regressions, want 0", got)
	}
}

// TestCompareSimulatedModeMismatch: a pair whose Simulated flag differs was
// produced on machines with different core counts; the delta is shown but
// must not count as a regression.
func TestCompareSimulatedModeMismatch(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", []experiments.PerfRecord{
		rec("a", 4, 400, false), // measured on a 4-core box
	})
	newPath := writeReport(t, dir, "new.json", []experiments.PerfRecord{
		rec("a", 4, 900, true), // simulated on a 1-core box
	})
	if got := runCompare(oldPath, newPath, 0.10); got != 0 {
		t.Fatalf("runCompare = %d regressions, want 0 for a simulated/measured mode mismatch", got)
	}
}

// TestCompareNewAndMissingRecords: a key present only in the new file is
// benign (coverage grew), but a key that vanished from the new file counts
// as a failure so the perf gate cannot rot by silently dropping benchmarks.
func TestCompareNewAndMissingRecords(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", []experiments.PerfRecord{
		rec("a", 1, 1000, false),
		rec("vanished", 1, 500, false),
	})
	newPath := writeReport(t, dir, "new.json", []experiments.PerfRecord{
		rec("a", 1, 1000, false),
		rec("brand-new", 8, 125, true),
	})
	if got := runCompare(oldPath, newPath, 0.10); got != 1 {
		t.Fatalf("runCompare = %d failures, want 1 (the missing record)", got)
	}
}

// TestCompareNewOnlyRecordsPass: growth alone must not fail the gate.
func TestCompareNewOnlyRecordsPass(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", []experiments.PerfRecord{
		rec("a", 1, 1000, false),
	})
	newPath := writeReport(t, dir, "new.json", []experiments.PerfRecord{
		rec("a", 1, 1000, false),
		rec("sparse/diagonal10k", 1, 125, false),
	})
	if got := runCompare(oldPath, newPath, 0.10); got != 0 {
		t.Fatalf("runCompare = %d failures, want 0 for new-only records", got)
	}
}

func recIters(name string, ns int64, iters int) experiments.PerfRecord {
	r := rec(name, 1, ns, false)
	r.OuterIterations = iters
	return r
}

// TestCompareIterationRegression: outer iterations are deterministic, so any
// growth on a record both files annotate is a convergence regression even
// when the wall time stays within the threshold.
func TestCompareIterationRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", []experiments.PerfRecord{
		recIters("table5/spe250/precond", 1000, 66),
	})
	newPath := writeReport(t, dir, "new.json", []experiments.PerfRecord{
		recIters("table5/spe250/precond", 1010, 90), // time fine, iters grew
	})
	if got := runCompare(oldPath, newPath, 0.10); got != 1 {
		t.Fatalf("runCompare = %d failures, want 1 (the iteration regression)", got)
	}
}

// TestCompareIterationBackCompat: old baselines written before the
// outer_iterations field must not trip the iteration gate, and equal or
// improved counts must pass.
func TestCompareIterationBackCompat(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", []experiments.PerfRecord{
		rec("a", 1, 1000, false), // no iteration annotation
		recIters("b", 1000, 50),
	})
	newPath := writeReport(t, dir, "new.json", []experiments.PerfRecord{
		recIters("a", 1000, 999), // old side unannotated: exempt
		recIters("b", 1000, 50),  // unchanged: ok
	})
	if got := runCompare(oldPath, newPath, 0.10); got != 0 {
		t.Fatalf("runCompare = %d failures, want 0", got)
	}
}

func recShards(name string, procs, shards int, ns int64) experiments.PerfRecord {
	r := rec(name, procs, ns, false)
	r.Shards = shards
	return r
}

// TestCompareKeysByShards checks that the serve/http records are matched per
// (name, procs, shards) triple: a regression at one shard count must be
// flagged even when the same record is fine at another, and same-shards
// pairs must match across files.
func TestCompareKeysByShards(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", []experiments.PerfRecord{
		recShards("serve/http", 8, 1, 1000),
		recShards("serve/http", 8, 2, 1000),
		recShards("serve/http", 8, 4, 1000),
	})
	newPath := writeReport(t, dir, "new.json", []experiments.PerfRecord{
		recShards("serve/http", 8, 1, 1020), // within threshold
		recShards("serve/http", 8, 2, 1500), // > 10% slower at shards=2
		recShards("serve/http", 8, 4, 990),
	})
	if got := runCompare(oldPath, newPath, 0.10); got != 1 {
		t.Fatalf("runCompare = %d regressions, want 1 (the shards=2 record)", got)
	}
}

func recSequence(name string, periods int, ns int64, iters int) experiments.PerfRecord {
	r := recIters(name, ns, iters)
	r.Periods = periods
	return r
}

// TestCompareSequenceRecords: the temporal "sequence/" records ride the same
// gate — chained iteration growth is a convergence regression, and a chained
// record that vanishes (e.g. the sweep silently dropped a spec) is a failure.
func TestCompareSequenceRecords(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", []experiments.PerfRecord{
		recSequence("sequence/monthly-40x30/cold", 12, 9000, 600),
		recSequence("sequence/monthly-40x30/chained", 12, 5000, 280),
	})
	newPath := writeReport(t, dir, "new.json", []experiments.PerfRecord{
		recSequence("sequence/monthly-40x30/cold", 12, 9100, 600),
		recSequence("sequence/monthly-40x30/chained", 12, 5050, 420), // warm start decayed
	})
	if got := runCompare(oldPath, newPath, 0.10); got != 1 {
		t.Fatalf("runCompare = %d failures, want 1 (the chained iteration regression)", got)
	}

	missingPath := writeReport(t, dir, "missing.json", []experiments.PerfRecord{
		recSequence("sequence/monthly-40x30/cold", 12, 9000, 600),
	})
	if got := runCompare(oldPath, missingPath, 0.10); got != 1 {
		t.Fatalf("runCompare = %d failures, want 1 (the vanished chained record)", got)
	}
}

func TestParseProcsList(t *testing.T) {
	got, err := parseProcsList("1, 2,4,8")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("parseProcsList = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseProcsList = %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"", "0", "x", "1,-2", ","} {
		if _, err := parseProcsList(bad); err == nil {
			t.Fatalf("parseProcsList(%q) succeeded, want error", bad)
		}
	}
}
