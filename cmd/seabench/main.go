// Command seabench regenerates every table and figure of the paper's
// evaluation (Tables 1–9, Figures 5 and 7, plus the operation-count model
// validation).
//
// Usage:
//
//	seabench -table all -scale 0.1          # quick pass over everything
//	seabench -table 7 -scale 1 -bkmax 900   # the full Table 7 comparison
//	seabench -table 6 -csv                  # machine-readable output
//	seabench -table none -benchjson BENCH_sea.json   # hot-path perf records
//	seabench -compare BENCH_sea.json new.json        # delta table, exit 1 on regression
//	seabench -table 1 -nowarm               # ablate the kernel warm start
//	seabench -table 1 -cpuprofile cpu.out   # profile a hot table
//	seabench -table all -timeout 2m         # bound the whole run
//	seabench -solver rc -size 60            # time one registry solver
//	seabench -serve -scale 0.5              # sustained-throughput serving run
//	seabench -serve -http -shards 1,2,4     # HTTP front-end load run per shard count
//	seabench -sequence -scale 0.5           # temporal sequences: cold vs chained sessions
//
// -serve drives the pkg/sea/serve layer at a sustained concurrent load of
// mixed problem shapes (Table 1-style instances of order 100, 250, and 500
// at -scale) and reports throughput, per-request allocations, the
// shape-pool hit rate, and the per-shape pool statistics.
//
// -sequence runs the temporal-sequence suite (internal/problems.Temporal):
// each drifting monthly series is solved cold (every period from scratch)
// and chained (a session carrying one arena plus the previous period's
// converged duals), reporting per-period wall time, total outer iterations,
// and the chained speedup. These are the "sequence/" records of -benchjson
// output.
//
// -serve -http instead stands up the full network stack — a sharded
// serve.ShardedServer behind the pkg/sea/serve/http transport on a loopback
// listener — and drives POST /v1/solve with a closed-loop load (fixed client
// connections, back-to-back requests, exact latency distribution) followed
// by an open-loop overload probe (arrivals paced at 1.5x the measured
// capacity) that demonstrates the admission control's load shedding. One
// measurement per shard count in -shards; -requests and -conns size the
// closed loop. These are the "serve/http" records of -benchjson output.
//
// -solver benchmarks a single solver from the pkg/sea registry on a
// generated Table 1-style instance of order -size instead of running the
// table experiments; -timeout bounds either mode through context
// cancellation.
//
// Results print as fixed-width tables (paper style); the speedup
// experiments additionally render their figures as ASCII charts.
// -benchjson runs the hot-path perf suite (ns/op, allocs/op, and
// speedup-vs-procs per instance) and writes it as JSON, the perf trajectory
// documented in docs/PERFORMANCE.md.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"sea/internal/experiments"
	"sea/internal/parallel"
	"sea/internal/problems"
	"sea/internal/report"
	"sea/pkg/sea"
)

func main() {
	var (
		table      = flag.String("table", "all", "which experiment: 1-9, ops, all, or none")
		scale      = flag.Float64("scale", 1.0, "instance-size multiplier vs the paper (0 < scale <= 1)")
		procs      = flag.Int("procs", 1, "workers for the parallel phases of the solves")
		eps        = flag.Float64("eps", 0, "override the per-table convergence tolerance")
		bkmax      = flag.Int("bkmax", 900, "largest G order on which to run the B-K baseline (Table 7)")
		csv        = flag.Bool("csv", false, "emit CSV instead of formatted tables")
		serveMode  = flag.Bool("serve", false, "run the sustained-throughput serving benchmark (pkg/sea/serve, mixed shapes, concurrent submitters) instead of the tables")
		seqMode    = flag.Bool("sequence", false, "run the temporal-sequence benchmark (cold vs chained sessions over drifting monthly series) instead of the tables")
		serveHTTP  = flag.Bool("http", false, "with -serve: drive the HTTP front end (pkg/sea/serve/http) on a loopback listener instead of the in-process layer; closed-loop throughput plus an open-loop overload probe per shard count")
		httpShards = flag.String("shards", "", "with -serve -http: comma-separated shard counts to sweep (default 1,2,4)")
		httpReqs   = flag.Int("requests", 0, "with -serve -http: closed-loop requests per shard count (0 = 100000 scaled by -scale, floor 2000)")
		httpConns  = flag.Int("conns", 0, "with -serve -http: concurrent client connections (0 = 8)")
		solver     = flag.String("solver", "", "time a single pkg/sea registry solver instead of the tables: "+strings.Join(sea.Solvers(), ", "))
		size       = flag.Int("size", 100, "with -solver: order of the generated Table 1-style instance")
		timeout    = flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
		benchjson  = flag.String("benchjson", "", "also run the hot-path perf suite and write its records to this JSON file")
		benchprocs = flag.String("benchprocs", "", "with -benchjson: comma-separated worker counts to sweep (default 1,2,4,8; counts above NumCPU are simulated)")
		benchreps  = flag.Int("benchreps", 0, "with -benchjson: timed repetitions per perf record (0 = default)")
		benchfilt  = flag.String("benchfilter", "", "with -benchjson: only measure records whose name contains this substring (e.g. sparse/); the committed BENCH_sea.json must be regenerated unfiltered because -compare counts missing records as failures")
		compare    = flag.Bool("compare", false, "compare two -benchjson files (usage: seabench -compare old.json new.json) and exit non-zero on regression")
		threshold  = flag.Float64("threshold", 0.10, "with -compare: regression threshold as a fraction of old ns/op")
		nowarm     = flag.Bool("nowarm", false, "disable the equilibration kernel's warm-started sort (ablation)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile, taken at exit, to this file")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "seabench: -compare needs exactly two files: seabench -compare old.json new.json")
			os.Exit(2)
		}
		if runCompare(flag.Arg(0), flag.Arg(1), *threshold) > 0 {
			os.Exit(1)
		}
		return
	}

	// cleanup flushes the pprof outputs; it runs both on the normal exit
	// path and before the error-path os.Exit, and is idempotent.
	cleanup := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seabench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "seabench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		cleanup = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if *memprofile != "" {
		stopCPU := cleanup
		cleanup = func() {
			stopCPU()
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "seabench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the live set before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "seabench: -memprofile: %v\n", err)
			}
		}
	}
	done := cleanup
	cleanup = func() {
		done()
		cleanup = func() {}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := experiments.Config{Scale: *scale, Procs: *procs, Epsilon: *eps, MaxBKDim: *bkmax, NoWarm: *nowarm, PerfReps: *benchreps,
		BenchFilter: *benchfilt, HTTPRequests: *httpReqs, HTTPConns: *httpConns}
	if *benchprocs != "" {
		list, err := parseProcsList(*benchprocs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seabench: -benchprocs: %v\n", err)
			os.Exit(2)
		}
		cfg.BenchProcs = list
	}
	if *httpShards != "" {
		list, err := parseProcsList(*httpShards)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seabench: -shards: %v\n", err)
			os.Exit(2)
		}
		cfg.HTTPShards = list
	}
	// One persistent pool serves every solve of the run; the perf suite
	// manages its own pools because it varies the worker count.
	pool := parallel.NewPool(*procs)
	defer pool.Close()
	cfg.Runner = pool

	if *serveMode {
		run := runServe
		if *serveHTTP {
			run = runServeHTTP
		}
		if err := run(ctx, cfg); err != nil {
			cleanup()
			fmt.Fprintf(os.Stderr, "seabench: -serve: %v\n", err)
			os.Exit(1)
		}
		cleanup()
		return
	}

	if *seqMode {
		if err := runSequence(ctx, cfg, *csv); err != nil {
			cleanup()
			fmt.Fprintf(os.Stderr, "seabench: -sequence: %v\n", err)
			os.Exit(1)
		}
		cleanup()
		return
	}

	if *solver != "" {
		p := problems.Table1(*size, 1)
		o := sea.DefaultOptions()
		o.Procs = *procs
		o.Runner = pool
		o.DisableWarmStart = *nowarm
		if *eps > 0 {
			o.Epsilon = *eps
		}
		wrapped, err := sea.NewDiagonal(p)
		if err != nil {
			cleanup()
			fmt.Fprintf(os.Stderr, "seabench: solver %s on %dx%d: %v\n", *solver, *size, *size, err)
			os.Exit(1)
		}
		start := time.Now()
		sol, err := sea.Solve(ctx, *solver, wrapped, o)
		wall := time.Since(start)
		if err != nil {
			cleanup()
			fmt.Fprintf(os.Stderr, "seabench: solver %s on %dx%d: %v\n", *solver, *size, *size, err)
			os.Exit(1)
		}
		fmt.Printf("solver=%s size=%dx%d procs=%d converged=%v iterations=%d residual=%g wall=%s\n",
			*solver, *size, *size, *procs, sol.Converged, sol.Iterations, sol.Residual, wall.Round(time.Microsecond))
		cleanup()
		return
	}

	requested := strings.Split(*table, ",")
	want := func(name string) bool {
		for _, r := range requested {
			if r == "all" || strings.TrimSpace(r) == name {
				return true
			}
		}
		return false
	}

	out := os.Stdout
	emit := func(title string, headers []string, rows [][]string) {
		if *csv {
			report.RenderCSV(out, headers, rows)
		} else {
			report.Render(out, title, headers, rows)
		}
		fmt.Fprintln(out)
	}
	fail := func(name string, err error) {
		cleanup()
		fmt.Fprintf(os.Stderr, "seabench: %s: %v\n", name, err)
		os.Exit(1)
	}
	defer cleanup()

	if *benchjson != "" {
		perfCfg := cfg
		perfCfg.Runner = nil
		rep, err := experiments.PerfSuite(ctx, perfCfg)
		if err != nil {
			fail("perf suite", err)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fail("perf suite", err)
		}
		if err := os.WriteFile(*benchjson, append(data, '\n'), 0o644); err != nil {
			fail("perf suite", err)
		}
		fmt.Fprintf(os.Stderr, "seabench: wrote %d perf records to %s\n", len(rep.Records), *benchjson)
	}

	if want("1") {
		rows, err := experiments.Table1(ctx, cfg)
		if err != nil {
			fail("table 1", err)
		}
		var rr [][]string
		for _, r := range rows {
			rr = append(rr, []string{
				fmt.Sprintf("%dx%d", r.Size, r.Size),
				report.D(r.Nonzeros), report.F(r.Seconds, 4), report.D(r.Iterations),
			})
		}
		emit("Table 1: SEA on large-scale diagonal quadratic constrained matrix problems",
			[]string{"m x n", "nonzero x0 vars", "CPU time (s)", "iterations"}, rr)
	}

	if want("2") {
		rows, err := experiments.Table2(ctx, cfg)
		if err != nil {
			fail("table 2", err)
		}
		var rr [][]string
		for _, r := range rows {
			rr = append(rr, []string{r.Dataset, report.D(r.Sectors), report.D(r.Nonzeros),
				report.F(r.Seconds, 4), report.D(r.Iterations)})
		}
		emit("Table 2: SEA on United States input/output matrix datasets",
			[]string{"dataset", "sectors", "nonzeros", "CPU time (s)", "iterations"}, rr)
	}

	if want("3") {
		rows, err := experiments.Table3(ctx, cfg)
		if err != nil {
			fail("table 3", err)
		}
		var rr [][]string
		for _, r := range rows {
			rr = append(rr, []string{r.Dataset, report.D(r.Accounts), report.D(r.Transactions),
				report.F(r.Seconds, 4), report.D(r.Iterations)})
		}
		emit("Table 3: SEA on social accounting matrix datasets",
			[]string{"dataset", "accounts", "transactions", "CPU time (s)", "iterations"}, rr)
	}

	if want("4") {
		rows, err := experiments.Table4(ctx, cfg)
		if err != nil {
			fail("table 4", err)
		}
		var rr [][]string
		for _, r := range rows {
			rr = append(rr, []string{r.Dataset, report.F(r.Seconds, 4), report.D(r.Iterations)})
		}
		emit("Table 4: SEA on United States migration tables",
			[]string{"dataset", "CPU time (s)", "iterations"}, rr)
	}

	if want("5") {
		rows, err := experiments.Table5(ctx, cfg)
		if err != nil {
			fail("table 5", err)
		}
		var rr [][]string
		for _, r := range rows {
			rr = append(rr, []string{
				fmt.Sprintf("SP%dx%d", r.Markets, r.Markets),
				report.D(r.Variables), report.F(r.Seconds, 4), report.D(r.Iterations),
			})
		}
		emit("Table 5: SEA on spatial price equilibrium problems",
			[]string{"markets", "variables", "CPU time (s)", "iterations"}, rr)
	}

	if want("6") {
		rows, err := experiments.Table6(ctx, cfg)
		if err != nil {
			fail("table 6", err)
		}
		var rr [][]string
		for _, r := range rows {
			rr = append(rr, []string{r.Example, report.D(r.N),
				report.F(r.Speedup, 2), report.Pct(r.Efficiency)})
		}
		emit("Table 6: parallel speedup and efficiency measurements for SEA on diagonal problems (simulated multiprocessor)",
			[]string{"example", "N", "S_N", "E_N"}, rr)
		if !*csv {
			renderSpeedupFigure(rows, "Figure 5: speedups of SEA on diagonal problems")
		}
	}

	if want("6e") {
		rows, err := experiments.Table6Enhanced(ctx, cfg)
		if err != nil {
			fail("table 6e", err)
		}
		var rr [][]string
		for _, r := range rows {
			rr = append(rr, []string{r.Example, report.D(r.N),
				report.F(r.Speedup, 2), report.Pct(r.Efficiency)})
		}
		emit("Table 6 (enhanced): speedups with the convergence verification parallelized (the paper's Section 4.2 suggestion)",
			[]string{"example", "N", "S_N", "E_N"}, rr)
	}

	if want("6w") {
		rows, err := experiments.Table6Wall(ctx, cfg)
		if err != nil {
			fail("table 6w", err)
		}
		var rr [][]string
		for _, r := range rows {
			rr = append(rr, []string{r.Example, report.D(r.N),
				report.F(r.Speedup, 2), report.Pct(r.Efficiency)})
		}
		emit(fmt.Sprintf("Table 6 (wall-clock): goroutine-parallel speedups on this host (GOMAXPROCS-limited; see DESIGN.md substitution 1)"),
			[]string{"example", "N", "S_N", "E_N"}, rr)
	}

	if want("7") {
		rows, err := experiments.Table7(ctx, cfg)
		if err != nil {
			fail("table 7", err)
		}
		var rr [][]string
		for _, r := range rows {
			rr = append(rr, []string{
				fmt.Sprintf("%dx%d", r.GDim, r.GDim),
				report.D(r.Runs),
				report.F(r.SEASeconds, 4), report.F(r.RCSeconds, 4), report.F(r.BKSeconds, 4),
				fmt.Sprintf("%d/%d", r.SEAOuter, r.SEAInner),
				fmt.Sprintf("%d/%d", r.RCOuter, r.RCInner),
			})
		}
		emit("Table 7: computational comparisons of SEA, RC, and B-K on general problems with 100% dense G",
			[]string{"dim of G", "runs", "SEA (s)", "RC (s)", "B-K (s)", "SEA outer/half-sweeps", "RC outer/proj"}, rr)
	}

	if want("8") {
		rows, err := experiments.Table8(ctx, cfg)
		if err != nil {
			fail("table 8", err)
		}
		var rr [][]string
		for _, r := range rows {
			rr = append(rr, []string{r.Dataset, report.D(r.GDim),
				report.F(r.Seconds, 4), report.D(r.Outer), report.D(r.Inner)})
		}
		emit("Table 8: SEA on general migration problems with 100% dense G (2304x2304)",
			[]string{"dataset", "dim of G", "CPU time (s)", "outer", "half-sweeps"}, rr)
	}

	if want("9") {
		rows, err := experiments.Table9(ctx, cfg)
		if err != nil {
			fail("table 9", err)
		}
		var rr [][]string
		for _, r := range rows {
			rr = append(rr, []string{r.Example, report.D(r.N),
				report.F(r.Speedup, 2), report.Pct(r.Efficiency)})
		}
		emit("Table 9: parallel speedup and efficiency for SEA and RC on the general 10000x10000 problem (simulated multiprocessor)",
			[]string{"algorithm", "N", "S_N", "E_N"}, rr)
		if !*csv {
			renderSpeedupFigure(rows, "Figure 7: speedups of SEA vs RC on the general problem")
		}
	}

	if want("growth") {
		rows, err := experiments.GrowthSweep(ctx, cfg)
		if err != nil {
			fail("growth sweep", err)
		}
		var rr [][]string
		for _, r := range rows {
			rr = append(rr, []string{fmt.Sprintf("%d%%", r.GrowthPct),
				report.D(r.Iterations), report.F(r.Seconds, 4)})
		}
		emit("Growth-factor sensitivity (the Table 4 difficulty mechanism): same migration table, uniformly grown totals",
			[]string{"growth", "iterations", "CPU time (s)"}, rr)
	}

	if want("relax") {
		rows, err := experiments.RelaxationAblation(ctx, cfg)
		if err != nil {
			fail("relaxation ablation", err)
		}
		var rr [][]string
		for _, r := range rows {
			rr = append(rr, []string{report.F(r.Rho, 2), report.D(r.Outer),
				report.D(r.Inner), report.F(r.Seconds, 4)})
		}
		emit("Projection relaxation ablation: step scaling rho on a general dense-G problem (rho = 1 is the paper's subproblem (79))",
			[]string{"rho", "outer", "half-sweeps", "CPU time (s)"}, rr)
	}

	if want("ops") {
		rows, err := experiments.OpsModel(ctx, cfg)
		if err != nil {
			fail("ops model", err)
		}
		var rr [][]string
		for _, r := range rows {
			rr = append(rr, []string{report.D(r.Size), report.D(r.Iterations),
				report.D64(r.MeasuredOps), report.F(r.ModelOps, 0), report.F(r.Ratio, 3)})
		}
		emit("Complexity check: measured operations vs the paper's model N = T*n^2*(9+ln n)",
			[]string{"n", "iterations", "measured ops", "model ops", "ratio"}, rr)
	}
}

// runSequence runs the temporal-sequence suite and prints the cold-vs-chained
// comparison: per-period wall time, total outer iterations, the fraction of
// iterations the chaining removed, and the wall-clock speedup.
func runSequence(ctx context.Context, cfg experiments.Config, csv bool) error {
	rows, err := experiments.SequenceSweep(ctx, cfg)
	if err != nil {
		return err
	}
	headers := []string{"sequence", "shape", "periods",
		"cold ns/period", "chained ns/period", "cold iters", "chained iters", "iters saved", "speedup"}
	var rr [][]string
	for _, r := range rows {
		rr = append(rr, []string{
			r.Name,
			fmt.Sprintf("%dx%d", r.M, r.N),
			report.D(r.Periods),
			report.D64(r.ColdNs), report.D64(r.ChainedNs),
			report.D(r.ColdIters), report.D(r.ChainedIters),
			report.Pct(r.IterSavedPct() / 100),
			report.F(r.Speedup(), 2),
		})
	}
	if csv {
		report.RenderCSV(os.Stdout, headers, rr)
	} else {
		report.Render(os.Stdout, "Temporal sequences: cold solves vs chained sessions (arena + dual warm start)", headers, rr)
	}
	fmt.Println()
	return nil
}

// renderSpeedupFigure draws the speedup-vs-N chart for a speedup table.
func renderSpeedupFigure(rows []experiments.SpeedupRow, title string) {
	byExample := map[string][]experiments.SpeedupRow{}
	var order []string
	for _, r := range rows {
		if _, ok := byExample[r.Example]; !ok {
			order = append(order, r.Example)
		}
		byExample[r.Example] = append(byExample[r.Example], r)
	}
	var xs []float64
	for _, r := range byExample[order[0]] {
		xs = append(xs, float64(r.N))
	}
	var series []report.Series
	for _, name := range order {
		ys := make([]float64, 0, len(byExample[name]))
		for _, r := range byExample[name] {
			ys = append(ys, r.Speedup)
		}
		series = append(series, report.Series{Name: name, Ys: ys})
	}
	report.Chart(os.Stdout, title, "CPUs", "speedup", xs, series)
	fmt.Println()
}

// parseProcsList parses the -benchprocs value: comma-separated positive
// worker counts, e.g. "1,2,4,8".
func parseProcsList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("invalid worker count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no worker counts in %q", s)
	}
	return out, nil
}
