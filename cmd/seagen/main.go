// Command seagen generates constrained matrix problem instances of the
// paper's experiment families and writes them as problem JSON (solvable by
// seasolve) or as a bare CSV matrix.
//
//	seagen -type table1 -size 100 -seed 7 -out p.json
//	seagen -type io -size 205 -density 0.52 -variant a -out io.json
//	seagen -type sam -size 133 -out sam.json
//	seagen -type migration -period 6570 -variant b -out mig.json
//	seagen -type spe -size 50 -out spe.json
package main

import (
	"flag"
	"fmt"
	"os"

	"sea/internal/core"
	"sea/internal/matio"
	"sea/internal/problems"
	"sea/internal/spe"
)

func main() {
	var (
		typ     = flag.String("type", "table1", "table1, io, sam, migration, spe, or interval")
		size    = flag.Int("size", 100, "instance dimension")
		seed    = flag.Uint64("seed", 1, "generator seed")
		density = flag.Float64("density", 0.5, "nonzero density (io)")
		variant = flag.String("variant", "a", "instance variant: a, b, or c (io, migration)")
		width   = flag.Float64("width", 0.05, "relative half-width of the total intervals (interval)")
		period  = flag.String("period", "6570", "migration period: 5560, 6570, 7580")
		out     = flag.String("out", "", "output path (default stdout)")
		asCSV   = flag.Bool("csv", false, "write only the prior matrix as CSV")
	)
	flag.Parse()

	var p *core.DiagonalProblem
	switch *typ {
	case "table1":
		p = problems.Table1(*size, *seed)
	case "io":
		p = problems.IOTable(problems.IOSpec{
			Name:    fmt.Sprintf("IO%d%s", *size, *variant),
			Sectors: *size, Density: *density,
			Variant: problems.IOVariant((*variant)[0]), Seed: *seed,
		})
	case "sam":
		p = problems.RandomSAM(*size, *seed)
	case "migration":
		p = problems.MigrationProblem(problems.MigrationSpec{
			Name: "MIG" + *period + *variant, Period: *period,
			Variant: problems.MigVariant((*variant)[0]), Seed: *seed,
		})
	case "spe":
		sp := spe.Generate(*size, *size, *seed)
		var err error
		p, err = sp.ToConstrainedMatrix()
		if err != nil {
			fatal(err)
		}
	case "interval":
		// An interval-margins variant of the I/O update: the base table's
		// totals, each relaxed to a ±width band.
		base := problems.IOTable(problems.IOSpec{
			Name:    fmt.Sprintf("IOI%d", *size),
			Sectors: *size, Density: *density,
			Variant: problems.IOGrowth10, Seed: *seed,
		})
		n := base.N
		slo := make([]float64, n)
		shi := make([]float64, n)
		dlo := make([]float64, n)
		dhi := make([]float64, n)
		for i := 0; i < n; i++ {
			slo[i] = base.S0[i] * (1 - *width)
			shi[i] = base.S0[i] * (1 + *width)
			dlo[i] = base.D0[i] * (1 - *width)
			dhi[i] = base.D0[i] * (1 + *width)
		}
		var err error
		p, err = core.NewInterval(n, n, base.X0, base.Gamma, slo, shi, dlo, dhi)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown type %q", *typ))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	var err error
	if *asCSV {
		err = matio.WriteMatrixCSV(w, p.M, p.N, p.X0)
	} else {
		err = matio.WriteProblemJSON(w, p)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "seagen: %v\n", err)
	os.Exit(1)
}
