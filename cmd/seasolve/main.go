// Command seasolve solves a constrained matrix problem from a file using any
// solver in the pkg/sea registry.
//
// The problem arrives either as a JSON container (see internal/matio) or as
// a bare CSV matrix plus totals derived from it:
//
//	seasolve -in problem.json -out solution.json
//	seasolve -matrix x0.csv -growth 1.1 -out solution.json
//	seasolve -in problem.json -solver ras            # RAS baseline
//	seasolve -in problem.json -solver rc -timeout 30s
//	seasolve -list                                   # show available solvers
//
// With -matrix, the row and column targets are the prior sums scaled by
// -growth and the weights are the chi-square defaults. On solver failure
// (non-convergence, timeout, infeasibility) seasolve prints the reason to
// stderr and exits non-zero without writing a solution.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sea/internal/baseline"
	"sea/internal/core"
	"sea/internal/matio"
	"sea/pkg/sea"
)

func main() {
	var (
		in         = flag.String("in", "", "problem JSON file (see internal/matio)")
		matrix     = flag.String("matrix", "", "prior matrix CSV (alternative to -in)")
		growth     = flag.Float64("growth", 1.0, "with -matrix: scale factor for the target totals")
		out        = flag.String("out", "", "solution JSON output (default stdout)")
		xcsv       = flag.String("xcsv", "", "also write the solved matrix as CSV to this path")
		solver     = flag.String("solver", "sea", "registry solver: "+strings.Join(sea.Solvers(), ", "))
		algorithm  = flag.String("algorithm", "", "deprecated alias for -solver")
		list       = flag.Bool("list", false, "list the registered solvers and exit")
		eps        = flag.Float64("eps", 1e-6, "convergence tolerance")
		criterion  = flag.String("criterion", "dual-gradient", "max-abs-delta, rel-balance, or dual-gradient")
		procs      = flag.Int("procs", 1, "parallel workers for the equilibration phases")
		maxIter    = flag.Int("maxiter", 200000, "iteration limit")
		timeout    = flag.Duration("timeout", 0, "abort the solve after this duration (0 = no limit)")
		traceEvery = flag.Int("trace", 0, "print per-iteration progress every N observed iterations (0 = off)")
		precond    = flag.String("precondition", "none", "preconditioning stage: none, scale, sinkhorn, or isp")
		sweeps     = flag.Int("precond-sweeps", 0, "warm-start sweeps for -precondition sinkhorn/isp (0 = default)")
		objective  = flag.String("objective", "", "objective family: quadratic or entropy (default: the problem file's objective field, else quadratic)")
	)
	flag.Parse()

	if *list {
		for _, name := range sea.Solvers() {
			fmt.Printf("%-12s %s\n", name, sea.Describe(name))
		}
		return
	}

	name := *solver
	if *algorithm != "" {
		name = *algorithm
	}

	p, fileObjective, err := loadProblem(*in, *matrix, *growth)
	if err != nil {
		fatal(err)
	}

	o := sea.DefaultOptions()
	o.Objective = fileObjective
	if *objective != "" {
		obj, err := sea.ParseObjective(*objective)
		if err != nil {
			fatal(err)
		}
		o.Objective = obj
	}
	o.Epsilon = *eps
	o.Procs = *procs
	o.MaxIterations = *maxIter
	switch *criterion {
	case "max-abs-delta":
		o.Criterion = sea.MaxAbsDelta
	case "rel-balance":
		o.Criterion = sea.RelBalance
	case "dual-gradient":
		o.Criterion = sea.DualGradient
	default:
		fatal(fmt.Errorf("unknown criterion %q", *criterion))
	}
	if pc, err := sea.ParsePrecond(*precond); err != nil {
		fatal(err)
	} else {
		o.Precondition = pc
	}
	o.PrecondSweeps = *sweeps
	if *traceEvery > 0 {
		o.Trace = sea.NewTraceWriter(os.Stderr, *traceEvery)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	wrapped, err := sea.NewDiagonal(p)
	if err != nil {
		fatal(err)
	}

	start := time.Now()
	sol, err := sea.Solve(ctx, name, wrapped, o)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			fatal(fmt.Errorf("solver %q exceeded the %v timeout (reached iteration %d)", name, *timeout, iterations(sol)))
		case errors.Is(err, context.Canceled):
			fatal(fmt.Errorf("solver %q canceled at iteration %d", name, iterations(sol)))
		default:
			fatal(fmt.Errorf("solver %q failed: %v", name, err))
		}
	}
	if name == "unsigned" {
		if worst := baseline.MinEntry(sol.X); worst < 0 {
			fmt.Fprintf(os.Stderr, "seasolve: warning: unsigned estimator produced negative entries (min %g); use -solver sea for a nonnegative estimate\n", worst)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := matio.WriteSolutionJSON(w, sol); err != nil {
		fatal(err)
	}
	if *xcsv != "" {
		f, err := os.Create(*xcsv)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := matio.WriteMatrixCSV(f, p.M, p.N, sol.X); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "seasolve: %s status=%s converged=%v iterations=%d residual=%g objective=%g wall=%s",
		name, sol.Status, sol.Converged, sol.Iterations, sol.Residual, sol.Objective, time.Since(start).Round(time.Millisecond))
	if sol.PrecondNs > 0 {
		fmt.Fprintf(os.Stderr, " precond=%s", time.Duration(sol.PrecondNs).Round(time.Microsecond))
	}
	fmt.Fprintln(os.Stderr)
}

// iterations reports how far a failed solve got (0 when no iterate exists).
func iterations(sol *sea.Solution) int {
	if sol == nil {
		return 0
	}
	return sol.Iterations
}

// loadProblem builds the problem from either a JSON file or a CSV prior,
// also reporting the objective family the JSON container requested.
func loadProblem(in, matrix string, growth float64) (*core.DiagonalProblem, core.Objective, error) {
	switch {
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, core.ObjectiveQuadratic, err
		}
		defer f.Close()
		j, err := matio.DecodeProblem(f)
		if err != nil {
			return nil, core.ObjectiveQuadratic, err
		}
		obj, err := j.ObjectiveKind()
		if err != nil {
			return nil, core.ObjectiveQuadratic, err
		}
		p, err := j.ToCore()
		return p, obj, err
	case matrix != "":
		f, err := os.Open(matrix)
		if err != nil {
			return nil, core.ObjectiveQuadratic, err
		}
		defer f.Close()
		m, n, x0, err := matio.ReadMatrixCSV(f)
		if err != nil {
			return nil, core.ObjectiveQuadratic, err
		}
		s0 := make([]float64, m)
		d0 := make([]float64, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				s0[i] += growth * x0[i*n+j]
				d0[j] += growth * x0[i*n+j]
			}
		}
		j := matio.Problem{Kind: "fixed", M: m, N: n, X0: x0, S0: s0, D0: d0}
		p, err := j.ToCore()
		return p, core.ObjectiveQuadratic, err
	default:
		return nil, core.ObjectiveQuadratic, fmt.Errorf("one of -in or -matrix is required")
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "seasolve: %v\n", err)
	os.Exit(1)
}
