// Command seasolve solves a constrained matrix problem from a file.
//
// The problem arrives either as a JSON container (see internal/matio) or as
// a bare CSV matrix plus totals derived from it:
//
//	seasolve -in problem.json -out solution.json
//	seasolve -matrix x0.csv -growth 1.1 -out solution.json
//	seasolve -in problem.json -algorithm ras     # RAS baseline
//
// With -matrix, the row and column targets are the prior sums scaled by
// -growth and the weights are the chi-square defaults.
package main

import (
	"flag"
	"fmt"
	"os"

	"sea/internal/baseline"
	"sea/internal/core"
	"sea/internal/matio"
)

func main() {
	var (
		in        = flag.String("in", "", "problem JSON file (see internal/matio)")
		matrix    = flag.String("matrix", "", "prior matrix CSV (alternative to -in)")
		growth    = flag.Float64("growth", 1.0, "with -matrix: scale factor for the target totals")
		out       = flag.String("out", "", "solution JSON output (default stdout)")
		xcsv      = flag.String("xcsv", "", "also write the solved matrix as CSV to this path")
		algorithm = flag.String("algorithm", "sea", "sea, ras, dykstra, or unsigned (Stone/Byron, no nonnegativity)")
		eps       = flag.Float64("eps", 1e-6, "convergence tolerance")
		criterion = flag.String("criterion", "dual-gradient", "max-abs-delta, rel-balance, or dual-gradient")
		procs     = flag.Int("procs", 1, "parallel workers for the equilibration phases")
		maxIter   = flag.Int("maxiter", 200000, "iteration limit")
	)
	flag.Parse()

	p, err := loadProblem(*in, *matrix, *growth)
	if err != nil {
		fatal(err)
	}

	var sol *core.Solution
	switch *algorithm {
	case "sea":
		o := core.DefaultOptions()
		o.Epsilon = *eps
		o.Procs = *procs
		o.MaxIterations = *maxIter
		switch *criterion {
		case "max-abs-delta":
			o.Criterion = core.MaxAbsDelta
		case "rel-balance":
			o.Criterion = core.RelBalance
		case "dual-gradient":
			o.Criterion = core.DualGradient
		default:
			fatal(fmt.Errorf("unknown criterion %q", *criterion))
		}
		sol, err = core.SolveDiagonal(p, o)
	case "dykstra":
		sol, err = baseline.SolveDykstra(p, *eps, *maxIter)
	case "unsigned":
		sol, err = baseline.SolveUnsigned(p)
		if sol != nil {
			if worst := baseline.MinEntry(sol.X); worst < 0 {
				fmt.Fprintf(os.Stderr, "seasolve: warning: unsigned estimator produced negative entries (min %g); use -algorithm sea for a nonnegative estimate\n", worst)
			}
		}
	case "ras":
		if p.Kind != core.FixedTotals {
			fatal(fmt.Errorf("RAS requires fixed totals"))
		}
		res, rerr := baseline.RAS(p.M, p.N, p.X0, p.S0, p.D0, *eps, *maxIter)
		if rerr != nil {
			fatal(rerr)
		}
		sol = &core.Solution{
			X: res.X, S: p.S0, D: p.D0,
			Iterations: res.Iterations, Converged: res.Converged,
			Residual:  res.MaxRowErr,
			Objective: p.Objective(res.X, p.S0, p.D0),
		}
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algorithm))
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "seasolve: warning: %v\n", err)
	}
	if sol == nil {
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := matio.WriteSolutionJSON(w, sol); err != nil {
		fatal(err)
	}
	if *xcsv != "" {
		f, err := os.Create(*xcsv)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := matio.WriteMatrixCSV(f, p.M, p.N, sol.X); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "seasolve: %s converged=%v iterations=%d residual=%g objective=%g\n",
		*algorithm, sol.Converged, sol.Iterations, sol.Residual, sol.Objective)
}

// loadProblem builds the problem from either a JSON file or a CSV prior.
func loadProblem(in, matrix string, growth float64) (*core.DiagonalProblem, error) {
	switch {
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return matio.ReadProblemJSON(f)
	case matrix != "":
		f, err := os.Open(matrix)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		m, n, x0, err := matio.ReadMatrixCSV(f)
		if err != nil {
			return nil, err
		}
		s0 := make([]float64, m)
		d0 := make([]float64, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				s0[i] += growth * x0[i*n+j]
				d0[j] += growth * x0[i*n+j]
			}
		}
		j := matio.Problem{Kind: "fixed", M: m, N: n, X0: x0, S0: s0, D0: d0}
		return j.ToCore()
	default:
		return nil, fmt.Errorf("one of -in or -matrix is required")
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "seasolve: %v\n", err)
	os.Exit(1)
}
