# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race bench fuzz fmt results check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the scheduling substrate and the solvers built on it, plus a
# vet pass (the rest of ./internal is race-covered by `make bench` usage).
race:
	$(GO) test -race ./internal/parallel/... ./internal/core/...
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

fuzz:
	$(GO) test -fuzz=FuzzKernel -fuzztime=30s ./internal/equilibrate/

fmt:
	gofmt -l .

# Regenerate every table and figure of the paper at full scale.
results:
	$(GO) run ./cmd/seabench -table all -scale 1 -bkmax 900 | tee results_full.txt

check: build vet test race
	@test -z "$$(gofmt -l .)" || (echo "gofmt needed:"; gofmt -l .; exit 1)
