# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race bench fuzz fmt results check cmds cancel

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the scheduling substrate and everything built on it: the core
# solvers, the baselines, and the public facade (whose cancellation suite
# exercises pool teardown under contention).
race:
	$(GO) test -race ./internal/parallel/... ./internal/core/... ./internal/baseline/... ./pkg/...
	$(GO) vet ./...

# Build the three commands explicitly (CI smoke for the CLI layer).
cmds:
	$(GO) build ./cmd/seasolve ./cmd/seabench ./cmd/seagen

# The context-cancellation suite under the race detector: mid-solve cancels,
# deadline expiry, and worker-pool leak checks.
cancel:
	$(GO) test -race -count=1 -run 'TestCancel|TestDeadline' ./pkg/sea/

bench:
	$(GO) test -bench=. -benchmem ./...

fuzz:
	$(GO) test -fuzz=FuzzKernel -fuzztime=30s ./internal/equilibrate/

fmt:
	gofmt -l .

# Regenerate every table and figure of the paper at full scale.
results:
	$(GO) run ./cmd/seabench -table all -scale 1 -bkmax 900 | tee results_full.txt

check: build vet test race cmds cancel
	@test -z "$$(gofmt -l .)" || (echo "gofmt needed:"; gofmt -l .; exit 1)
