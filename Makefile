# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race serve-race serve-http-race bench bench-check bench-multicore bench-sparse bench-precond bench-sequence fuzz fmt results check cmds cancel

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the scheduling substrate and everything built on it: the core
# solvers (including the batched equilibration kernel, its radix sorts, and
# the CSR column-mirror scatter whose per-column writes must stay disjoint),
# the baselines, the sparse wire codec, and the public facade (whose
# cancellation suite exercises pool teardown under contention).
race:
	$(GO) test -race ./internal/parallel/... ./internal/core/... ./internal/equilibrate/... ./internal/sortx/... ./internal/scale/... ./internal/entropy/... ./internal/baseline/... ./internal/matio/... ./pkg/...
	$(GO) vet ./...

# Build the commands explicitly (CI smoke for the CLI layer).
cmds:
	$(GO) build ./cmd/seasolve ./cmd/seabench ./cmd/seagen ./cmd/seaserved

# The context-cancellation suite under the race detector: mid-solve cancels,
# deadline expiry, and worker-pool leak checks.
cancel:
	$(GO) test -race -count=1 -run 'TestCancel|TestDeadline' ./pkg/sea/

# The concurrent serving layer under the race detector, uncached: shape-pool
# checkout/checkin, admission control, eviction, and Close draining.
serve-race:
	$(GO) test -race -count=1 ./pkg/sea/serve/...

# The network front end under the race detector, uncached: the HTTP
# transport's handler/job-store/shutdown suites (with the shared goroutine
# leak checker) and the end-to-end battery that drives a real listener —
# bit-exactness across shard counts, error mapping, saturation, job
# lifecycle.
serve-http-race:
	$(GO) test -race -count=1 ./pkg/sea/serve/http/ ./internal/testutil/
	$(GO) test -race -count=1 -run 'TestE2EHTTP' .

bench:
	$(GO) test -bench=. -benchmem ./...

# Hot-path perf guard: smoke the key benchmarks, regenerate the perf
# records, and diff them against the committed BENCH_sea.json. The compare
# threshold is looser than seabench's 10% default because single-run
# wall-clock numbers on a shared machine are noisy; genuine hot-path
# regressions show up far beyond 25%.
bench-check: cmds
	$(GO) test -run xxx -bench 'Table1_Diagonal500$$|ArenaReuse|KernelColdResolve|KernelWarmResolve' -benchtime 1x .
	$(GO) run ./cmd/seabench -table none -benchjson .bench_check.json
	$(GO) run ./cmd/seabench -compare -threshold 0.25 BENCH_sea.json .bench_check.json; \
	st=$$?; rm -f .bench_check.json; exit $$st

# Sparse-tier perf snapshot: the CSR storage guards (bit-exact equivalence
# with the densified form, steady-state allocation flatness) plus a filtered
# perf-suite run regenerating just the sparse/ records. The committed
# BENCH_sea.json is regenerated unfiltered by bench-check; this target is the
# quick iteration loop for sparse hot-path work.
bench-sparse: cmds
	$(GO) test -count=1 -run 'TestCSRMatchesDensifiedAcrossProcs|TestCSRSteadyStateAllocs' ./internal/core/
	$(GO) run ./cmd/seabench -table none -benchjson .bench_sparse.json -benchfilter sparse/
	@cat .bench_sparse.json; rm -f .bench_sparse.json

# Multi-core scaling smoke: the perf suite's full procs sweep (1, 2, 4, 8)
# at reduced scale and a single rep per record, just to prove the sweep and
# the simulated-record path end to end. The committed BENCH_sea.json is
# regenerated at full scale instead (see CONTRIBUTING.md).
bench-multicore: cmds
	$(GO) run ./cmd/seabench -table none -benchjson .bench_multicore.json -benchprocs 1,2,4,8 -benchreps 1 -scale 0.2
	@cat .bench_multicore.json; rm -f .bench_multicore.json

# Preconditioning guards: the exactness, KKT, and iteration-cut properties
# of the warm-start stage, plus a filtered perf-suite run regenerating just
# the hard elastic tier's records — the spe250/precond row is where the
# outer-iteration win is gated (seabench -compare flags any growth).
bench-precond: cmds
	$(GO) test -count=1 -run 'TestPrecond|TestScalingSolversTracePerSweep|TestCSRMatchesDenseBitwise' ./internal/core/ ./internal/baseline/ ./internal/scale/
	$(GO) run ./cmd/seabench -table none -benchjson .bench_precond.json -benchfilter table5/spe250
	@cat .bench_precond.json; rm -f .bench_precond.json

# Temporal-sequence guard: the session-layer property tests (bit-identity
# without warm duals, iteration savings with them) plus the cold-vs-chained
# sweep at reduced scale. The committed BENCH_sea.json carries the full-scale
# sequence/ records; -compare gates any chained-iteration growth.
bench-sequence: cmds
	$(GO) test -count=1 -run 'TestSession|TestServerSession|TestSequence' ./pkg/sea/ ./pkg/sea/serve/ ./pkg/sea/serve/http/
	$(GO) run ./cmd/seabench -sequence -scale 0.5

fuzz:
	$(GO) test -fuzz=FuzzKernel -fuzztime=30s ./internal/equilibrate/

fmt:
	gofmt -l .

# Regenerate every table and figure of the paper at full scale.
results:
	$(GO) run ./cmd/seabench -table all -scale 1 -bkmax 900 | tee results_full.txt

check: build vet test race serve-race serve-http-race cmds cancel bench-check bench-multicore bench-sparse bench-precond bench-sequence
	@test -z "$$(gofmt -l .)" || (echo "gofmt needed:"; gofmt -l .; exit 1)
