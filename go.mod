module sea

go 1.22
