package sea

import (
	"context"
	"time"
)

// Option is a functional configuration knob for SolveWith and NewSession —
// the preferred way to configure a solve without mutating the many-field
// Options struct directly:
//
//	sol, err := sea.SolveWith(ctx, p,
//		sea.WithSolver("sea"),
//		sea.WithObjective(sea.ObjectiveEntropy),
//		sea.WithDeadline(time.Now().Add(time.Minute)),
//	)
//
// Passing a *Options (via WithOptions) remains fully supported for callers
// that already hold one; later options override the fields it set.
type Option func(*solveConfig)

// solveConfig is the resolved configuration of a SolveWith call or a Session.
type solveConfig struct {
	solver      string
	opts        Options
	hasDeadline bool
	deadline    time.Time
	warmDuals   bool
}

func newSolveConfig(options []Option) *solveConfig {
	c := &solveConfig{solver: "sea", opts: *DefaultOptions()}
	for _, opt := range options {
		if opt != nil {
			opt(c)
		}
	}
	return c
}

// context applies the configured deadline, if any, returning the derived
// context and its cancel func (a no-op when no deadline is set).
func (c *solveConfig) context(ctx context.Context) (context.Context, context.CancelFunc) {
	if !c.hasDeadline {
		return ctx, func() {}
	}
	return context.WithDeadline(ctx, c.deadline)
}

// WithOptions seeds the configuration from an existing *Options value (nil is
// ignored). Options appearing after it override individual fields; options
// before it are overwritten wholesale — put WithOptions first.
func WithOptions(o *Options) Option {
	return func(c *solveConfig) {
		if o != nil {
			c.opts = *o
		}
	}
}

// WithSolver selects the registry solver by name (default "sea").
func WithSolver(name string) Option {
	return func(c *solveConfig) { c.solver = name }
}

// WithObjective selects the objective family to minimize. ObjectiveEntropy
// routes through the "entropy" solver when the solver is "sea".
func WithObjective(obj Objective) Option {
	return func(c *solveConfig) { c.opts.Objective = obj }
}

// WithPrecondition selects the preconditioning stage run before the SEA
// sweeps.
func WithPrecondition(pc Precond) Option {
	return func(c *solveConfig) { c.opts.Precondition = pc }
}

// WithTrace attaches a per-iteration observer.
func WithTrace(tr Trace) Option {
	return func(c *solveConfig) { c.opts.Trace = tr }
}

// WithDeadline bounds the solve's wall time: SolveWith derives a
// context.WithDeadline child for the call, so the solver returns its last
// consistent iterate with context.DeadlineExceeded once t passes.
func WithDeadline(t time.Time) Option {
	return func(c *solveConfig) {
		c.hasDeadline = true
		c.deadline = t
	}
}

// WithEpsilon sets the convergence tolerance.
func WithEpsilon(eps float64) Option {
	return func(c *solveConfig) { c.opts.Epsilon = eps }
}

// WithMaxIterations caps the outer iterations.
func WithMaxIterations(n int) Option {
	return func(c *solveConfig) { c.opts.MaxIterations = n }
}

// WithProcs sets the parallel worker count for the equilibration phases.
func WithProcs(n int) Option {
	return func(c *solveConfig) { c.opts.Procs = n }
}

// WithDualWarmStart controls a Session's chaining of dual variables: when
// enabled, each period's solve seeds its column multipliers (Options.Mu0)
// from the previous period's converged duals, typically cutting iterations on
// slowly drifting sequences. Disabled by default: the default session chains
// only arena-owned state, which is bit-identical to solving each period cold.
// It has no effect on a one-shot SolveWith.
func WithDualWarmStart(on bool) Option {
	return func(c *solveConfig) { c.warmDuals = on }
}

// SolveWith runs a solve configured by functional options — equivalent to
// Solve(ctx, solver, p, opts) with the assembled Options.
func SolveWith(ctx context.Context, p *Problem, options ...Option) (*Solution, error) {
	c := newSolveConfig(options)
	ctx, cancel := c.context(ctx)
	defer cancel()
	return Solve(ctx, c.solver, p, &c.opts)
}
