package sea

import (
	"context"
	"errors"
	"fmt"
	"math"

	"sea/internal/baseline"
	"sea/internal/core"
	"sea/internal/entropy"
	"sea/internal/mat"
)

// The built-in registry: every algorithm the repository implements, behind
// the one Solver interface. Solvers that need the general form lift diagonal
// problems automatically (see liftDiagonal), so e.g. `rc` and `bk` run
// directly on the paper's Table 1–6 diagonal instances.
func init() {
	MustRegister(NewSolver("sea",
		"splitting equilibration algorithm (diagonal problems; the paper's main method)",
		func(ctx context.Context, p *Problem, o *Options) (*Solution, error) {
			// The objective-aware front door: SEA's equilibration kernels
			// minimize the quadratic family, so an entropy objective routes
			// to the generalized-scaling solver — same problem, same
			// constraint machinery, exponential instead of affine response.
			if o != nil && o.Objective == ObjectiveEntropy {
				return solveEntropy(ctx, p, o)
			}
			d, err := p.asDiagonal("sea")
			if err != nil {
				return nil, err
			}
			return core.SolveDiagonal(ctx, d, o)
		}))
	MustRegister(NewSolver("sea-general",
		"SEA inside the Dafermos projection method (dense weight matrices)",
		func(ctx context.Context, p *Problem, o *Options) (*Solution, error) {
			if err := requireQuadratic("sea-general", o); err != nil {
				return nil, err
			}
			g, err := p.asGeneral("sea-general")
			if err != nil {
				return nil, err
			}
			return core.SolveGeneral(ctx, g, o)
		}))
	MustRegister(NewSolver("rc",
		"RC equilibration algorithm of Nagurney, Kim and Robinson (1990)",
		func(ctx context.Context, p *Problem, o *Options) (*Solution, error) {
			if err := requireQuadratic("rc", o); err != nil {
				return nil, err
			}
			g, err := p.asGeneral("rc")
			if err != nil {
				return nil, err
			}
			return baseline.SolveRC(ctx, g, o)
		}))
	MustRegister(NewSolver("bk",
		"Bachem-Korte (1978) primal cycle method over the transportation polytope",
		func(ctx context.Context, p *Problem, o *Options) (*Solution, error) {
			if err := requireQuadratic("bk", o); err != nil {
				return nil, err
			}
			g, err := p.asGeneral("bk")
			if err != nil {
				return nil, err
			}
			return baseline.SolveBK(ctx, g, o)
		}))
	MustRegister(NewSolver("dykstra",
		"Dykstra's alternating projections (independent reference solver)",
		func(ctx context.Context, p *Problem, o *Options) (*Solution, error) {
			if err := requireQuadratic("dykstra", o); err != nil {
				return nil, err
			}
			d, err := p.asDiagonalDense("dykstra")
			if err != nil {
				return nil, err
			}
			return baseline.SolveDykstra(ctx, d, o)
		}))
	MustRegister(NewSolver("projgrad",
		"projected gradient with Dykstra inner projections (general problems)",
		func(ctx context.Context, p *Problem, o *Options) (*Solution, error) {
			if err := requireQuadratic("projgrad", o); err != nil {
				return nil, err
			}
			g, err := p.asGeneral("projgrad")
			if err != nil {
				return nil, err
			}
			return baseline.SolveProjGrad(ctx, g, o)
		}))
	MustRegister(NewSolver("entropy",
		"KL/entropy projection onto the totals constraints (generalized iterative scaling)",
		solveEntropy))
	MustRegister(NewSolver("ras",
		"RAS biproportional scaling of Deming and Stephan (1940)",
		solveRAS))
	MustRegister(NewSolver("sinkhorn",
		"Sinkhorn-Knopp biproportional balancing (CSR-native RAS with exact-termination detection)",
		solveSinkhorn))
	MustRegister(NewSolver("isp",
		"iterative scaling procedure: clamped additive Gauss-Seidel on the SEA dual",
		solveISP))
	MustRegister(NewSolver("unsigned",
		"unsigned Stone/Byron estimator (drops x >= 0; direct Cholesky solve)",
		func(ctx context.Context, p *Problem, o *Options) (*Solution, error) {
			if err := requireQuadratic("unsigned", o); err != nil {
				return nil, err
			}
			d, err := p.asDiagonalDense("unsigned")
			if err != nil {
				return nil, err
			}
			return baseline.SolveUnsigned(ctx, d)
		}))
}

// requireQuadratic rejects an entropy objective handed to a solver whose
// algorithm minimizes the quadratic family only — an explicit error instead
// of a silently wrong answer. "sea" routes instead of rejecting, and the
// scaling baselines accept both families.
func requireQuadratic(solver string, o *Options) error {
	if o != nil && o.Objective != ObjectiveQuadratic {
		return fmt.Errorf("%w: solver %q minimizes the quadratic objective only; use Objective=quadratic, or the \"entropy\" solver (\"sea\" routes automatically)", ErrInvalidProblem, solver)
	}
	return nil
}

// solveEntropy adapts the generalized iterative scaling solver for the
// KL/entropy objective family (internal/entropy): fixed, elastic, balanced
// and interval totals over dense or CSR storage, with per-sweep residual
// tracing and Mu0 dual warm starts. Domain errors (negative prior entries,
// a positive lower bound over a zero prior cell) wrap ErrInvalidProblem.
func solveEntropy(ctx context.Context, p *Problem, o *Options) (*Solution, error) {
	d, err := p.asDiagonal("entropy")
	if err != nil {
		return nil, err
	}
	sol, err := entropy.Solve(ctx, d, o)
	if err != nil && errors.Is(err, entropy.ErrDomain) {
		return sol, fmt.Errorf("%w: %w", ErrInvalidProblem, err)
	}
	return sol, err
}

// solveRAS adapts the RAS sweep result to the unified Solution. RAS solves
// an entropy objective rather than the quadratic one, so Objective reports
// the problem's quadratic objective evaluated at the RAS point (for
// comparison against the other solvers) and the dual values are absent.
func solveRAS(ctx context.Context, p *Problem, o *Options) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m, n := p.Size()
	var x0, s0, d0 []float64
	var kind Kind
	if p.Diagonal != nil {
		if p.Diagonal.Pattern != nil {
			return nil, fmt.Errorf("%w: solver \"ras\" supports dense storage only; use \"sea\" for CSR problems or call Densify() first", ErrInvalidProblem)
		}
		x0, s0, d0, kind = p.Diagonal.X0, p.Diagonal.S0, p.Diagonal.D0, p.Diagonal.Kind
	} else {
		x0, s0, d0, kind = p.General.X0, p.General.S0, p.General.D0, p.General.Kind
	}
	if kind != FixedTotals {
		return nil, fmt.Errorf("%w: solver \"ras\" supports fixed totals only, got %v", ErrInvalidProblem, kind)
	}
	res, rasErr := baseline.RAS(ctx, m, n, x0, s0, d0, o)
	if res == nil {
		return nil, rasErr
	}
	sol := &Solution{
		X: res.X, S: mat.Clone(s0), D: mat.Clone(d0),
		Iterations: res.Iterations,
		Converged:  res.Converged,
		Residual:   math.Max(res.MaxRowErr, res.MaxColErr),
		DualValue:  math.NaN(),
	}
	if p.Diagonal != nil {
		obj := ObjectiveQuadratic
		if o != nil {
			obj = o.Objective
		}
		sol.Objective = p.Diagonal.ObjectiveFor(obj, sol.X, sol.S, sol.D)
		sol.ObjectiveKind = obj
	} else {
		sol.Objective = p.General.Objective(sol.X, sol.S, sol.D)
	}
	if rasErr != nil {
		return sol, rasErr
	}
	if !sol.Converged {
		return sol, fmt.Errorf("%w: RAS after %d sweeps (residual %g)", ErrNotConverged, sol.Iterations, sol.Residual)
	}
	return sol, nil
}

// solveSinkhorn adapts the Sinkhorn–Knopp balancing baseline. Like "ras" it
// requires fixed totals and a nonnegative prior, but it runs natively on
// CSR storage and streams per-sweep residuals through the trace observer.
func solveSinkhorn(ctx context.Context, p *Problem, o *Options) (*Solution, error) {
	d, err := p.asDiagonal("sinkhorn")
	if err != nil {
		return nil, err
	}
	if d.Kind != FixedTotals {
		return nil, fmt.Errorf("%w: solver \"sinkhorn\" supports fixed totals only, got %v", ErrInvalidProblem, d.Kind)
	}
	sol, err := baseline.SolveSinkhorn(ctx, d, o)
	// Sinkhorn is an entropy solver by construction; when the caller asked
	// for the entropy family, report the KL objective value instead of the
	// default cross-family quadratic comparison value.
	if sol != nil && o != nil && o.Objective == ObjectiveEntropy {
		sol.Objective = d.KLObjective(sol.X, sol.S, sol.D)
		sol.ObjectiveKind = ObjectiveEntropy
	}
	return sol, err
}

// solveISP adapts the iterative scaling procedure: the additive analogue of
// biproportional scaling that solves the paper's actual quadratic program
// (fixed, elastic or balanced totals; dense or CSR). Interval totals are
// not modeled by the additive system.
func solveISP(ctx context.Context, p *Problem, o *Options) (*Solution, error) {
	if err := requireQuadratic("isp", o); err != nil {
		return nil, err
	}
	d, err := p.asDiagonal("isp")
	if err != nil {
		return nil, err
	}
	if d.Kind == IntervalTotals {
		return nil, fmt.Errorf("%w: solver \"isp\" does not support interval totals; use \"sea\"", ErrInvalidProblem)
	}
	return baseline.SolveISP(ctx, d, o)
}
