package sea

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Solver is the unified interface every algorithm in the registry satisfies.
// Solve must honour ctx: when the context is cancelled it returns promptly
// (within one outer iteration) with ctx.Err(), alongside the last consistent
// iterate when one exists. opts may be nil, meaning DefaultOptions.
type Solver interface {
	// Name is the registry key, e.g. "sea" or "rc".
	Name() string
	// Description is a one-line summary for listings and usage messages.
	Description() string
	// Solve runs the algorithm on p.
	Solve(ctx context.Context, p *Problem, opts *Options) (*Solution, error)
}

// funcSolver adapts a function to the Solver interface.
type funcSolver struct {
	name, desc string
	fn         func(context.Context, *Problem, *Options) (*Solution, error)
}

func (s funcSolver) Name() string        { return s.name }
func (s funcSolver) Description() string { return s.desc }
func (s funcSolver) Solve(ctx context.Context, p *Problem, o *Options) (*Solution, error) {
	sol, err := s.fn(ctx, p, o)
	finalizeStatus(sol, err)
	return sol, err
}

// finalizeStatus stamps the explicit outcome onto a solution whose producer
// left it unclassified, so every registry solve returns a Status without
// each algorithm needing to know the protocol. Solutions that already carry
// a status (custom solvers, the serving layer) are left alone.
func finalizeStatus(sol *Solution, err error) {
	if sol == nil || sol.Status != StatusUnknown {
		return
	}
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		sol.Status = StatusCancelled
	case errors.Is(err, ErrNotConverged):
		sol.Status = StatusMaxIterations
	case err == nil && sol.Converged:
		sol.Status = StatusConverged
	}
}

// NewSolver wraps a plain function as a registrable Solver.
func NewSolver(name, description string, fn func(context.Context, *Problem, *Options) (*Solution, error)) Solver {
	return funcSolver{name: name, desc: description, fn: fn}
}

var registry = struct {
	sync.RWMutex
	byName map[string]Solver
}{byName: make(map[string]Solver)}

// Register adds a solver under its name. Registering an empty name or a name
// already taken is an error; the built-in solvers claim theirs at init.
func Register(s Solver) error {
	name := s.Name()
	if name == "" {
		return fmt.Errorf("sea: cannot register a solver with an empty name")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[name]; dup {
		return fmt.Errorf("sea: solver %q already registered", name)
	}
	registry.byName[name] = s
	return nil
}

// MustRegister is Register, panicking on error. It is intended for
// package-init registration of a program's own solvers.
func MustRegister(s Solver) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Get returns the named solver. The error for an unknown name lists the
// registered ones.
func Get(name string) (Solver, error) {
	registry.RLock()
	s, ok := registry.byName[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (registered: %s)", ErrUnknownSolver, name, strings.Join(Solvers(), ", "))
	}
	return s, nil
}

// Solvers returns the registered solver names, sorted.
func Solvers() []string {
	registry.RLock()
	names := make([]string, 0, len(registry.byName))
	for name := range registry.byName {
		names = append(names, name)
	}
	registry.RUnlock()
	sort.Strings(names)
	return names
}

// Describe returns the named solver's one-line description ("" if unknown).
func Describe(name string) string {
	registry.RLock()
	defer registry.RUnlock()
	if s, ok := registry.byName[name]; ok {
		return s.Description()
	}
	return ""
}

// Solve looks up the named solver and runs it — the facade's front door.
func Solve(ctx context.Context, name string, p *Problem, opts *Options) (*Solution, error) {
	s, err := Get(name)
	if err != nil {
		return nil, err
	}
	return s.Solve(ctx, p, opts)
}
