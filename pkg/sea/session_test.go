package sea

import (
	"context"
	"errors"
	"math/rand/v2"
	"testing"
	"time"
)

// driftingPeriods builds a sequence of same-shape fixed-totals problems whose
// priors drift slowly period to period — the temporal workload shape.
func driftingPeriods(t testing.TB, m, n, periods int) []*Problem {
	t.Helper()
	rng := rand.New(rand.NewPCG(99, 100))
	x0 := make([]float64, m*n)
	for k := range x0 {
		x0[k] = 1 + rng.Float64()*10
	}
	// Per-row/column growth factors are fixed for the whole sequence, so the
	// dual solution drifts as slowly as the prior does — the warm-start-able
	// structure of a real monthly series.
	rowGrowth := make([]float64, m)
	colGrowth := make([]float64, n)
	for i := range rowGrowth {
		rowGrowth[i] = 1.05 + 0.4*rng.Float64()
	}
	for j := range colGrowth {
		colGrowth[j] = 1.05 + 0.4*rng.Float64()
	}
	out := make([]*Problem, periods)
	for p := 0; p < periods; p++ {
		cur := make([]float64, m*n)
		gamma := make([]float64, m*n)
		for k := range cur {
			cur[k] = x0[k] * (1 + 0.02*float64(p)*(0.5+rng.Float64()))
			gamma[k] = 1 / cur[k]
		}
		// Non-proportional targets (rebalanced to a common mass) so the
		// optimum is not a trivial rescaling of the prior.
		s0 := make([]float64, m)
		d0 := make([]float64, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				s0[i] += rowGrowth[i] * cur[i*n+j]
			}
		}
		var totS, totD float64
		for _, v := range s0 {
			totS += v
		}
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				d0[j] += colGrowth[j] * cur[i*n+j]
			}
			totD += d0[j]
		}
		for j := range d0 {
			d0[j] *= totS / totD
		}
		dp, err := NewFixed(m, n, cur, gamma, s0, d0)
		if err != nil {
			t.Fatal(err)
		}
		out[p] = mustDiagonal(t, dp)
	}
	return out
}

// TestSessionChainedBitIdenticalToCold: the default session (arena chaining
// only) must return, for every period, a solution bit-identical to solving
// that period cold — reuse buys allocations, not different numbers.
func TestSessionChainedBitIdenticalToCold(t *testing.T) {
	periods := driftingPeriods(t, 10, 8, 6)
	opts := []Option{
		WithEpsilon(1e-9),
		WithMaxIterations(500000),
	}
	s := NewSession(opts...)
	defer s.Close()
	for i, p := range periods {
		chained, err := s.Solve(context.Background(), p)
		if err != nil {
			t.Fatalf("period %d chained: %v", i, err)
		}
		cold, err := SolveWith(context.Background(), p, opts...)
		if err != nil {
			t.Fatalf("period %d cold: %v", i, err)
		}
		if chained.Iterations != cold.Iterations {
			t.Fatalf("period %d: chained %d iterations, cold %d", i, chained.Iterations, cold.Iterations)
		}
		for k := range cold.X {
			if chained.X[k] != cold.X[k] {
				t.Fatalf("period %d: X[%d] = %v chained, %v cold — not bit-identical", i, k, chained.X[k], cold.X[k])
			}
		}
		for j := range cold.Mu {
			if chained.Mu[j] != cold.Mu[j] {
				t.Fatalf("period %d: Mu[%d] differs from cold", i, j)
			}
		}
	}
	st := s.Stats()
	if st.Periods != len(periods) || st.M != 10 || st.N != 8 || st.WarmDuals {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSessionSolutionsDetached: a period's solution must stay intact after
// later periods reuse the arena.
func TestSessionSolutionsDetached(t *testing.T) {
	periods := driftingPeriods(t, 6, 6, 3)
	s := NewSession(WithEpsilon(1e-8), WithMaxIterations(500000))
	defer s.Close()
	first, err := s.Solve(context.Background(), periods[0])
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]float64(nil), first.X...)
	for _, p := range periods[1:] {
		if _, err := s.Solve(context.Background(), p); err != nil {
			t.Fatal(err)
		}
	}
	for k := range snapshot {
		if first.X[k] != snapshot[k] {
			t.Fatalf("period 0's solution mutated at %d after later solves", k)
		}
	}
}

// TestSessionDualWarmStartSavesIterations: with WithDualWarmStart(true) on a
// drifting sequence, the chained periods converge in fewer total iterations
// than solving each period cold, and every solution stays KKT-valid.
func TestSessionDualWarmStartSavesIterations(t *testing.T) {
	periods := driftingPeriods(t, 14, 12, 6)
	opts := []Option{
		WithEpsilon(1e-9),
		WithMaxIterations(500000),
	}
	var coldIters int
	for _, p := range periods {
		sol, err := SolveWith(context.Background(), p, opts...)
		if err != nil {
			t.Fatal(err)
		}
		coldIters += sol.Iterations
	}
	s := NewSession(append(opts, WithDualWarmStart(true))...)
	defer s.Close()
	var warmIters int
	for i, p := range periods {
		sol, err := s.Solve(context.Background(), p)
		if err != nil {
			t.Fatalf("period %d: %v", i, err)
		}
		warmIters += sol.Iterations
		if rep := CheckKKT(p.Diagonal, sol); !rep.Satisfied(1e-6) {
			t.Fatalf("period %d warm solution fails KKT: %+v", i, rep)
		}
	}
	if warmIters >= coldIters {
		t.Fatalf("dual warm start saved nothing: %d warm vs %d cold iterations", warmIters, coldIters)
	}
	if st := s.Stats(); st.TotalIterations != warmIters || !st.WarmDuals {
		t.Fatalf("stats = %+v, want TotalIterations %d, WarmDuals", st, warmIters)
	}
}

// TestSessionEntropyObjective: sessions work for the entropy family too
// (Mu0 warm starts feed the generalized-scaling solver directly).
func TestSessionEntropyObjective(t *testing.T) {
	periods := driftingPeriods(t, 8, 7, 4)
	s := NewSession(
		WithObjective(ObjectiveEntropy),
		WithEpsilon(1e-9),
		WithMaxIterations(200000),
		WithDualWarmStart(true),
	)
	defer s.Close()
	for i, p := range periods {
		sol, err := s.Solve(context.Background(), p)
		if err != nil {
			t.Fatalf("period %d: %v", i, err)
		}
		if sol.ObjectiveKind != ObjectiveEntropy {
			t.Fatalf("period %d: ObjectiveKind = %v", i, sol.ObjectiveKind)
		}
		if rep := CheckKKTObjective(p.Diagonal, sol, ObjectiveEntropy); !rep.Satisfied(1e-6) {
			t.Fatalf("period %d entropy KKT: %+v", i, rep)
		}
	}
}

// TestSessionShapePinning: the first solve pins the shape; a mismatched
// period is rejected with ErrInvalidProblem.
func TestSessionShapePinning(t *testing.T) {
	s := NewSession(WithEpsilon(1e-6))
	defer s.Close()
	if _, err := s.Solve(context.Background(), mustDiagonal(t, testFixed(t, 4, 4, 1.2))); err != nil {
		t.Fatal(err)
	}
	_, err := s.Solve(context.Background(), mustDiagonal(t, testFixed(t, 5, 4, 1.2)))
	if !errors.Is(err, ErrInvalidProblem) {
		t.Fatalf("shape mismatch: err = %v, want ErrInvalidProblem", err)
	}
}

// TestSessionClosed: solving after Close fails with ErrSessionClosed.
func TestSessionClosed(t *testing.T) {
	s := NewSession()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close must be a no-op")
	}
	_, err := s.Solve(context.Background(), mustDiagonal(t, testFixed(t, 3, 3, 1.1)))
	if !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("err = %v, want ErrSessionClosed", err)
	}
}

// TestSolveWithFunctionalOptions: the option helpers assemble the same solve
// the struct form runs, and WithDeadline bounds the wall time.
func TestSolveWithFunctionalOptions(t *testing.T) {
	p := mustDiagonal(t, testFixed(t, 6, 5, 1.3))
	o := DefaultOptions()
	o.Epsilon = 1e-8
	o.Criterion = DualGradient
	o.MaxIterations = 200000
	ref, err := Solve(context.Background(), "sea", p, o)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolveWith(context.Background(), p,
		WithOptions(o),
		WithSolver("sea"),
	)
	if err != nil {
		t.Fatal(err)
	}
	for k := range ref.X {
		if got.X[k] != ref.X[k] {
			t.Fatalf("functional options changed the solve at %d", k)
		}
	}

	var col TraceCollector
	sol, err := SolveWith(context.Background(), p,
		WithEpsilon(1e-8),
		WithMaxIterations(200000),
		WithTrace(&col),
		WithProcs(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Events) != sol.Iterations {
		t.Fatalf("WithTrace: %d events, want %d", len(col.Events), sol.Iterations)
	}

	// An already-expired deadline must abort promptly with DeadlineExceeded.
	_, err = SolveWith(context.Background(), p,
		WithEpsilon(1e-300),
		WithMaxIterations(1<<30),
		WithDeadline(time.Now().Add(-time.Second)),
	)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WithDeadline: err = %v, want context.DeadlineExceeded", err)
	}
}
