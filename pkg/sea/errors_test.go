package sea

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
)

// TestUnknownSolverSentinel: lookup failures are matchable with errors.Is
// and name the registered solvers.
func TestUnknownSolverSentinel(t *testing.T) {
	if _, err := Get("nope"); !errors.Is(err, ErrUnknownSolver) {
		t.Fatalf("Get: err = %v, want ErrUnknownSolver", err)
	}
	_, err := Solve(context.Background(), "nope", mustDiagonal(t, testFixed(t, 3, 3, 1)), nil)
	if !errors.Is(err, ErrUnknownSolver) {
		t.Fatalf("Solve: err = %v, want ErrUnknownSolver", err)
	}
	if !strings.Contains(err.Error(), "sea") {
		t.Fatalf("error %q does not list the registered solvers", err)
	}
}

// TestInvalidProblemSentinel covers every construction- and routing-time
// failure path: all of them must be matchable with errors.Is(err,
// ErrInvalidProblem).
func TestInvalidProblemSentinel(t *testing.T) {
	valid := testFixed(t, 3, 3, 1.1)
	cases := []struct {
		name string
		err  func() error
	}{
		{"nil problem", func() error {
			var p *Problem
			return p.Validate()
		}},
		{"no representation", func() error {
			_, err := Solve(context.Background(), "sea", &Problem{}, nil)
			return err
		}},
		{"both representations", func() error {
			g, _ := liftDiagonal(valid)
			return (&Problem{Diagonal: valid, General: g}).Validate()
		}},
		{"general problem to a diagonal-only solver", func() error {
			g, err := liftDiagonal(valid)
			if err != nil {
				return err
			}
			_, err = Solve(context.Background(), "sea", mustGeneral(t, g), nil)
			return err
		}},
		{"ras on a non-fixed kind", func() error {
			elastic := *valid
			elastic.Kind = ElasticTotals
			elastic.Alpha = []float64{1, 1, 1}
			elastic.Beta = []float64{1, 1, 1}
			_, err := Solve(context.Background(), "ras", mustDiagonal(t, &elastic), nil)
			return err
		}},
		{"invalid representation via NewDiagonal", func() error {
			bad := *valid
			bad.Gamma = bad.Gamma[:len(bad.Gamma)-1]
			_, err := NewDiagonal(&bad)
			return err
		}},
		{"invalid representation via NewGeneral", func() error {
			_, err := NewGeneral(&GeneralProblem{M: 2, N: 2})
			return err
		}},
	}
	for _, tc := range cases {
		if err := tc.err(); !errors.Is(err, ErrInvalidProblem) {
			t.Errorf("%s: err = %v, want ErrInvalidProblem", tc.name, err)
		}
	}
}

// TestInfeasibleChainsUnderInvalidProblem: an infeasible constraint set
// detected at validation matches BOTH sentinels, so callers can branch on
// the cause without string matching.
func TestInfeasibleChainsUnderInvalidProblem(t *testing.T) {
	bad := *testFixed(t, 3, 3, 1.1)
	s0 := append([]float64(nil), bad.S0...)
	s0[0] += 100 // Σs⁰ ≠ Σd⁰: the transportation polytope is empty
	bad.S0 = s0
	_, err := NewDiagonal(&bad)
	if !errors.Is(err, ErrInvalidProblem) {
		t.Fatalf("err = %v, want ErrInvalidProblem", err)
	}
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want the ErrInfeasible cause preserved in the chain", err)
	}
}

// TestNotConvergedSentinel: iteration-limit exhaustion is matchable and
// still returns the best iterate, stamped StatusMaxIterations.
func TestNotConvergedSentinel(t *testing.T) {
	p, err := NewDiagonal(testFixed(t, 6, 5, 1.4))
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	o.Criterion = DualGradient
	o.Epsilon = 1e-300 // unreachable: the solve can only stop at the limit
	o.MaxIterations = 1
	sol, err := Solve(context.Background(), "sea", p, o)
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged", err)
	}
	if sol == nil || len(sol.X) == 0 {
		t.Fatal("no best iterate returned alongside ErrNotConverged")
	}
	if sol.Status != StatusMaxIterations {
		t.Fatalf("status = %v, want StatusMaxIterations", sol.Status)
	}
}

// TestStatusStamping: every terminal outcome carries its explicit status.
func TestStatusStamping(t *testing.T) {
	p, err := NewDiagonal(testFixed(t, 6, 5, 1.3))
	if err != nil {
		t.Fatal(err)
	}

	sol, err := Solve(context.Background(), "sea", p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusConverged {
		t.Fatalf("converged solve: status = %v, want StatusConverged", sol.Status)
	}

	// A context cancelled from inside the first observed iteration ends the
	// solve with StatusCancelled and the last consistent iterate.
	ctx, cancel := context.WithCancel(context.Background())
	o := DefaultOptions()
	o.Criterion = DualGradient
	o.Epsilon = 1e-300 // unreachable: the solve can only end by cancellation
	o.MaxIterations = 1 << 30
	o.Trace = TraceFunc(func(TraceEvent) { cancel() })
	sol, err = Solve(ctx, "sea", p, o)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled solve: err = %v, want context.Canceled", err)
	}
	if sol == nil || sol.Status != StatusCancelled {
		t.Fatalf("cancelled solve: sol = %+v, want StatusCancelled", sol)
	}
}

// TestStatusStrings pins the wire format used by seasolve and matio.
func TestStatusStrings(t *testing.T) {
	want := map[Status]string{
		StatusUnknown:       "unknown",
		StatusConverged:     "converged",
		StatusMaxIterations: "max-iterations",
		StatusCancelled:     "cancelled",
		StatusSaturated:     "saturated",
	}
	for status, s := range want {
		if status.String() != s {
			t.Errorf("Status(%d).String() = %q, want %q", status, status.String(), s)
		}
	}
}

// TestValidatedConstructors: NewDiagonal/NewGeneral accept what the
// deprecated Wrap variants accepted, but reject malformed input up front.
func TestValidatedConstructors(t *testing.T) {
	d := testFixed(t, 4, 4, 1.2)
	p, err := NewDiagonal(d)
	if err != nil {
		t.Fatal(err)
	}
	if p.Diagonal != d || p.General != nil {
		t.Fatal("NewDiagonal did not wrap the given representation")
	}
	if m, n := p.Size(); m != 4 || n != 4 {
		t.Fatalf("Size() = %dx%d, want 4x4", m, n)
	}

	g, err := liftDiagonal(d)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := NewGeneral(g)
	if err != nil {
		t.Fatal(err)
	}
	if pg.General != g || pg.Diagonal != nil {
		t.Fatal("NewGeneral did not wrap the given representation")
	}

	if _, err := NewDiagonal(nil); !errors.Is(err, ErrInvalidProblem) {
		t.Fatalf("NewDiagonal(nil): err = %v, want ErrInvalidProblem", err)
	}
	if _, err := NewGeneral(nil); !errors.Is(err, ErrInvalidProblem) {
		t.Fatalf("NewGeneral(nil): err = %v, want ErrInvalidProblem", err)
	}
}

// TestValidateEdgeCases exercises the representation validation the
// constructors now run: dimension mismatches, non-finite and negative data,
// and missing weight slices.
func TestValidateEdgeCases(t *testing.T) {
	base := func() *DiagonalProblem {
		d := *testFixed(t, 3, 4, 1.1)
		d.X0 = append([]float64(nil), d.X0...)
		d.Gamma = append([]float64(nil), d.Gamma...)
		d.S0 = append([]float64(nil), d.S0...)
		d.D0 = append([]float64(nil), d.D0...)
		return &d
	}
	cases := []struct {
		name       string
		mutate     func(*DiagonalProblem)
		infeasible bool // additionally expect ErrInfeasible in the chain
	}{
		{"short X0", func(d *DiagonalProblem) { d.X0 = d.X0[:5] }, false},
		{"NaN prior", func(d *DiagonalProblem) { d.X0[2] = math.NaN() }, false},
		{"infinite prior", func(d *DiagonalProblem) { d.X0[0] = math.Inf(1) }, false},
		{"nil Gamma", func(d *DiagonalProblem) { d.Gamma = nil }, false},
		{"zero weight", func(d *DiagonalProblem) { d.Gamma[1] = 0 }, false},
		{"negative weight", func(d *DiagonalProblem) { d.Gamma[1] = -2 }, false},
		{"nil S0", func(d *DiagonalProblem) { d.S0 = nil }, false},
		{"S0/D0 length swap", func(d *DiagonalProblem) { d.S0, d.D0 = d.D0, d.S0 }, false},
		{"NaN total", func(d *DiagonalProblem) { d.S0[0] = math.NaN() }, false},
		{"negative total", func(d *DiagonalProblem) {
			d.S0[0] = -d.S0[0] // also unbalances the totals
		}, true},
	}
	for _, tc := range cases {
		d := base()
		tc.mutate(d)
		_, err := NewDiagonal(d)
		if !errors.Is(err, ErrInvalidProblem) {
			t.Errorf("%s: err = %v, want ErrInvalidProblem", tc.name, err)
		}
		if tc.infeasible && !errors.Is(err, ErrInfeasible) {
			t.Errorf("%s: err = %v, want ErrInfeasible in the chain", tc.name, err)
		}
	}
}

// TestSolversDeterministic: the registry listing is sorted, stable across
// calls, and returns an independent copy.
func TestSolversDeterministic(t *testing.T) {
	first := Solvers()
	for i := 1; i < len(first); i++ {
		if first[i-1] >= first[i] {
			t.Fatalf("Solvers() not strictly sorted: %v", first)
		}
	}
	second := Solvers()
	if len(first) != len(second) {
		t.Fatalf("Solvers() length changed between calls: %d vs %d", len(first), len(second))
	}
	second[0] = "mutated"
	third := Solvers()
	if third[0] == "mutated" {
		t.Fatal("Solvers() returned a slice aliasing registry state")
	}
	for i := range first {
		if first[i] != third[i] {
			t.Fatalf("Solvers() unstable at %d: %q vs %q", i, first[i], third[i])
		}
	}
}
