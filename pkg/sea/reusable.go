package sea

import (
	"context"

	"sea/internal/core"
)

// Arena owns reusable solver state for steady-state workloads: attach one
// via Options.Arena (or use NewReusableSolver) and back-to-back solves on
// same-shape problems reuse every working buffer, the worker pool, and the
// equilibration kernel's warm-start permutations — (near) zero allocations
// per solve, with bit-identical results. The Solution returned by an
// arena-backed solve aliases arena-owned memory and is valid until the next
// solve on the same arena; arenas back at most one running solve at a time.
type Arena = core.Arena

// NewArena returns an empty reusable-state arena. The first solve
// populates it.
func NewArena() *Arena { return core.NewArena() }

// Reusable wraps a registered solver with a private Arena so every Solve
// call reuses the previous call's working state. It is the facade for
// serving-style workloads: construct once, call Solve per request with
// same-shape problems, Close when done.
//
// The arena accelerates the solvers built on the core equilibration state
// ("sea" and "sea-general"); other registered solvers run correctly but
// ignore it. A Reusable is not safe for concurrent Solve calls — the arena
// is single-flight and the returned Solution aliases arena memory until the
// next call.
type Reusable struct {
	solver Solver
	arena  *Arena
}

// NewReusableSolver looks up the named solver and pairs it with a fresh
// arena.
func NewReusableSolver(name string) (*Reusable, error) {
	s, err := Get(name)
	if err != nil {
		return nil, err
	}
	return &Reusable{solver: s, arena: NewArena()}, nil
}

// Name returns the wrapped solver's registry name.
func (r *Reusable) Name() string { return r.solver.Name() }

// Description returns the wrapped solver's description.
func (r *Reusable) Description() string { return r.solver.Description() }

// Arena exposes the wrapped arena (e.g. to Reset it between workloads).
func (r *Reusable) Arena() *Arena { return r.arena }

// Solve runs the wrapped solver with the reusable arena attached. opts may
// be nil; when it sets its own Arena, that arena wins (the caller is
// managing reuse explicitly).
func (r *Reusable) Solve(ctx context.Context, p *Problem, opts *Options) (*Solution, error) {
	var o Options
	if opts != nil {
		o = *opts
	} else {
		o = *DefaultOptions()
	}
	if o.Arena == nil {
		o.Arena = r.arena
	}
	return r.solver.Solve(ctx, p, &o)
}

// Close releases the arena's persistent worker pool.
func (r *Reusable) Close() { r.arena.Close() }
