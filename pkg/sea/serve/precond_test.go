package serve

import (
	"context"
	"math"
	"testing"

	"sea/pkg/sea"
)

// TestRequestOptionsContract pins the per-request preconditioning API:
// asking for the template's own mode returns nil (the warm zero-alloc
// submit path), any other mode returns a detached clone with the per-request
// machinery zeroed so submit can re-fill it.
func TestRequestOptionsContract(t *testing.T) {
	s, err := NewServer(Config{MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if o := s.RequestOptions(); o != nil {
		t.Fatalf("RequestOptions() = %+v, want nil", o)
	}
	if o := s.RequestOptions(WithPrecond(sea.PrecondNone)); o != nil {
		t.Fatalf("RequestOptions(template mode) = %+v, want nil", o)
	}
	o := s.RequestOptions(WithPrecond(sea.PrecondScale))
	if o == nil {
		t.Fatal("RequestOptions(override) = nil")
	}
	if o.Precondition != sea.PrecondScale {
		t.Fatalf("Precondition = %v", o.Precondition)
	}
	if o.Arena != nil || o.Runner != nil || o.Trace != nil || o.Counters != nil || o.Mu0 != nil {
		t.Fatalf("override clone carries per-request machinery: %+v", o)
	}

	// With a preconditioned template the polarity flips.
	base := sea.DefaultOptions()
	base.Precondition = sea.PrecondScale
	ps, err := NewServer(Config{MaxInFlight: 1, Options: base})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	if o := ps.RequestOptions(WithPrecond(sea.PrecondScale)); o != nil {
		t.Fatalf("preconditioned template: RequestOptions(scale) = %+v, want nil", o)
	}
	if o := ps.RequestOptions(WithPrecond(sea.PrecondNone)); o == nil || o.Precondition != sea.PrecondNone {
		t.Fatalf("preconditioned template: RequestOptions(none) = %+v", o)
	}

	// The objective override follows the same contract.
	if o := s.RequestOptions(WithObjective(sea.ObjectiveQuadratic)); o != nil {
		t.Fatalf("RequestOptions(template objective) = %+v, want nil", o)
	}
	if o := s.RequestOptions(WithObjective(sea.ObjectiveEntropy)); o == nil || o.Objective != sea.ObjectiveEntropy {
		t.Fatalf("RequestOptions(entropy) = %+v", o)
	}
}

// TestPrecondRequestSolves: a per-request preconditioned submit must solve
// the same problem as the plain path (same objective to rounding) and
// report the stage's wall time, over both the plain and sharded servers.
func TestPrecondRequestSolves(t *testing.T) {
	p := testProblem(t, 24, 18, 1.3, 91)
	ctx := context.Background()

	s, err := NewServer(Config{MaxInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sh, err := NewSharded(ShardedConfig{Shards: 2, Server: Config{MaxInFlight: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()

	plain, err := s.Submit(ctx, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.PrecondNs != 0 {
		t.Fatalf("plain solve reports PrecondNs = %d", plain.PrecondNs)
	}
	for name, backend := range map[string]interface {
		Submit(context.Context, *sea.Problem, *sea.Options) (*sea.Solution, error)
		RequestOptions(...Override) *sea.Options
	}{"server": s, "sharded": sh} {
		pre, err := backend.Submit(ctx, p, backend.RequestOptions(WithPrecond(sea.PrecondISP)))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if pre.PrecondNs <= 0 {
			t.Fatalf("%s: preconditioned solve reports PrecondNs = %d", name, pre.PrecondNs)
		}
		if gap := math.Abs(pre.Objective - plain.Objective); gap > 1e-8*(1+math.Abs(plain.Objective)) {
			t.Fatalf("%s: objective %g vs plain %g", name, pre.Objective, plain.Objective)
		}
	}
}

// TestPrecondWarmAllocations: with preconditioning in the server's template
// the scaling buffers live in the arena, so the steady-state hit path must
// stay within the serving layer's allocation promise.
func TestPrecondWarmAllocations(t *testing.T) {
	base := sea.DefaultOptions()
	base.Precondition = sea.PrecondScale
	s, err := NewServer(Config{MaxInFlight: 1, Options: base})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p := testProblem(t, 30, 30, 1.25, 14)
	ctx := context.Background()
	var out sea.Solution
	for i := 0; i < 3; i++ {
		if _, err := s.SubmitInto(ctx, p, nil, &out); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := s.SubmitInto(ctx, p, nil, &out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("preconditioned steady-state hit path allocates %.1f/op, want <= 2", allocs)
	}
}
