package serve

import (
	"fmt"
	"sort"
	"strings"

	"sea/internal/metrics"
)

// ShapeStats is one shape pool's snapshot.
type ShapeStats struct {
	// M, N and General identify the pool (General marks dense-weight
	// problems; false is the diagonal representation).
	M, N    int
	General bool
	// CSR marks pools serving sparse-storage diagonal problems; Nnz is their
	// stored-cell count (0 for dense pools).
	CSR bool
	Nnz int
	// Arenas is the pool's live arena count (idle + checked out); Idle the
	// free-list length.
	Arenas, Idle int
	// Hits and Misses count checkouts served warm vs created cold; Evicted
	// counts this pool's arenas dropped by the LRU/free-list bounds.
	Hits, Misses, Evicted uint64
}

// Stats is a point-in-time snapshot of the server's instrumentation.
type Stats struct {
	// Submitted counts every request that passed structural validation;
	// Completed those that finished with a nil error, Failed those that
	// finished with an error after starting (non-convergence, cancellation
	// mid-solve), Rejected those turned away before any solve ran
	// (saturation, closed server, context expiry while queued).
	Submitted, Completed, Failed, Rejected uint64
	// InFlight and Queued are current levels; the Peak fields are
	// high-water marks since the server started.
	InFlight, PeakInFlight int64
	Queued, PeakQueued     int64
	// ShapeHits/ShapeMisses aggregate pool checkouts across shapes; the
	// steady-state hit rate is the serving layer's key health figure.
	ShapeHits, ShapeMisses uint64
	// ArenasEvicted counts arenas closed by the LRU and free-list bounds.
	ArenasEvicted uint64
	// Shapes lists the live pools, most recently used first.
	Shapes []ShapeStats
	// QueueWait and Solve aggregate per-request queue time (only requests
	// that actually queued) and solve wall time.
	QueueWait, Solve metrics.LatencySnapshot
	// Solver aggregates the solvers' own instrumentation (iterations,
	// equilibrations, abstract operations) across every request served.
	Solver metrics.Snapshot
}

// HitRate returns the shape-pool hit fraction in [0, 1] (0 when nothing was
// checked out yet).
func (s Stats) HitRate() float64 {
	total := s.ShapeHits + s.ShapeMisses
	if total == 0 {
		return 0
	}
	return float64(s.ShapeHits) / float64(total)
}

func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "submitted=%d completed=%d failed=%d rejected=%d", s.Submitted, s.Completed, s.Failed, s.Rejected)
	fmt.Fprintf(&b, " inflight=%d/%d queued=%d/%d", s.InFlight, s.PeakInFlight, s.Queued, s.PeakQueued)
	fmt.Fprintf(&b, " hit=%.0f%% evicted=%d shapes=%d", 100*s.HitRate(), s.ArenasEvicted, len(s.Shapes))
	fmt.Fprintf(&b, " wait[%s] solve[%s]", s.QueueWait, s.Solve)
	return b.String()
}

// Stats returns a consistent snapshot of the server's counters, gauges,
// latency aggregates, and per-shape pool state.
func (s *Server) Stats() Stats {
	st := Stats{
		Submitted:    s.submitted.Load(),
		Completed:    s.completed.Load(),
		Failed:       s.failed.Load(),
		Rejected:     s.rejected.Load(),
		InFlight:     s.inFlight.Level(),
		PeakInFlight: s.inFlight.High(),
		Queued:       s.queued.Level(),
		PeakQueued:   s.queued.High(),
		QueueWait:    s.waitLat.Snapshot(),
		Solve:        s.solveLat.Snapshot(),
		Solver:       s.counters.Snapshot(),
	}
	s.mu.Lock()
	type ranked struct {
		stats   ShapeStats
		lastUse uint64
	}
	pools := make([]ranked, 0, len(s.shapes))
	for _, sp := range s.shapes {
		pools = append(pools, ranked{
			stats: ShapeStats{
				M: sp.key.m, N: sp.key.n, General: sp.key.general,
				CSR: sp.key.csr, Nnz: sp.key.nnz,
				Arenas: sp.total, Idle: len(sp.free),
				Hits: sp.hits, Misses: sp.misses, Evicted: sp.evicted,
			},
			lastUse: sp.lastUse,
		})
	}
	s.mu.Unlock()
	st.ShapeHits = s.hits.Load()
	st.ShapeMisses = s.misses.Load()
	st.ArenasEvicted = s.evictions.Load()
	sort.Slice(pools, func(i, j int) bool { return pools[i].lastUse > pools[j].lastUse })
	for _, r := range pools {
		st.Shapes = append(st.Shapes, r.stats)
	}
	return st
}
