package serve

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"sea/pkg/sea"
)

// ShardedConfig parameterizes a ShardedServer: N independent inner Servers
// plus the routing ring and the per-tenant admission gate layered above
// them.
type ShardedConfig struct {
	// Shards is the inner Server count (default 1). Requests are routed by
	// problem shape with consistent hashing, so every shape lands on one
	// shard and that shard's arena pools stay hot for it.
	Shards int
	// VirtualNodes is the number of ring points per shard (default 128).
	// More points smooth the shape-space split across shards; the routing
	// stays deterministic for any value.
	VirtualNodes int
	// TenantMaxInFlight, when positive, caps how many requests a single
	// tenant (see WithTenant) may have admitted at once across all shards.
	// Tenants at their cap wait in a per-tenant FIFO bounded by
	// TenantMaxQueue; a full queue rejects with ErrTenantQuota (wrapping
	// sea.ErrSaturated). Releases wake waiting tenants in round-robin
	// rotation — fair queueing across tenants, FIFO within one.
	TenantMaxInFlight int
	// TenantMaxQueue bounds each tenant's waiting queue (default
	// TenantMaxInFlight when the gate is enabled).
	TenantMaxQueue int
	// Server configures every inner shard (see Config). Each shard gets its
	// own arena pools, worker pools, and admission control with these
	// limits, so the process-wide in-flight bound is Shards×MaxInFlight.
	Server Config
}

// ShardedServer consistent-hash routes solve requests by problem shape
// across N inner Servers. Same-shape requests always land on the same
// shard, so each shard's LRU arena pools stay warm for its share of the
// shape space and the shards never contend on one lock or queue. All
// methods are safe for concurrent use.
type ShardedServer struct {
	cfg    ShardedConfig
	shards []*Server
	ring   hashRing
	gate   *tenantGate // nil when tenant quotas are disabled
	sesSeq atomic.Uint64

	mu     sync.Mutex
	closed bool
}

// NewSharded validates cfg and starts its Shards inner Servers.
func NewSharded(cfg ShardedConfig) (*ShardedServer, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.VirtualNodes <= 0 {
		cfg.VirtualNodes = 128
	}
	s := &ShardedServer{
		cfg:  cfg,
		ring: newHashRing(cfg.Shards, cfg.VirtualNodes),
		gate: newTenantGate(cfg.TenantMaxInFlight, cfg.TenantMaxQueue),
	}
	for i := 0; i < cfg.Shards; i++ {
		inner, err := NewServer(cfg.Server)
		if err != nil {
			for _, sh := range s.shards {
				sh.Close()
			}
			return nil, fmt.Errorf("serve: shard %d: %w", i, err)
		}
		s.shards = append(s.shards, inner)
	}
	return s, nil
}

// NumShards returns the inner Server count.
func (s *ShardedServer) NumShards() int { return len(s.shards) }

// ShardFor returns the shard index serving problems of the given shape.
// The mapping is a pure function of the configuration (Shards and
// VirtualNodes), so routing is reproducible across servers and restarts.
func (s *ShardedServer) ShardFor(m, n int, general bool) int {
	return s.ring.route(shapeHash(shapeKey{m: m, n: n, general: general}))
}

// Submit routes the problem to its shape's shard; semantics are those of
// Server.Submit, behind the per-tenant gate when one is configured.
func (s *ShardedServer) Submit(ctx context.Context, p *sea.Problem, opts *sea.Options) (*sea.Solution, error) {
	var out sea.Solution
	filled, err := s.submitInto(ctx, p, opts, &out)
	if !filled {
		return nil, err
	}
	return &out, err
}

// SubmitTraced is Submit with a per-request trace observer layered onto the
// request's options (see Server.SubmitTraced).
func (s *ShardedServer) SubmitTraced(ctx context.Context, p *sea.Problem, opts *sea.Options, obs sea.Trace) (*sea.Solution, error) {
	var out sea.Solution
	filled, err := s.submitIntoObserved(ctx, p, opts, &out, obs)
	if !filled {
		return nil, err
	}
	return &out, err
}

// RequestOptions resolves per-request overrides against the shards' shared
// template (see Server.RequestOptions). Every shard is built from the same
// Config, so the first shard's template answers for all.
func (s *ShardedServer) RequestOptions(overrides ...Override) *sea.Options {
	return s.shards[0].RequestOptions(overrides...)
}

// NewSession opens a sequence session (see Server.NewSession) on one of the
// shards, assigned round-robin. A session owns a dedicated arena rather than
// a pooled one, so shape-affinity routing buys it nothing; round-robin
// spreads the sessions' admission load evenly instead.
func (s *ShardedServer) NewSession(cfg SessionConfig) (*Session, error) {
	if s.isClosed() {
		return nil, ErrClosed
	}
	shard := int(s.sesSeq.Add(1)-1) % len(s.shards)
	return s.shards[shard].NewSession(cfg)
}

// SubmitInto routes the problem to its shape's shard; semantics are those
// of Server.SubmitInto, behind the per-tenant gate when one is configured.
func (s *ShardedServer) SubmitInto(ctx context.Context, p *sea.Problem, opts *sea.Options, into *sea.Solution) (bool, error) {
	if into == nil {
		return false, fmt.Errorf("serve: SubmitInto requires a non-nil destination")
	}
	return s.submitInto(ctx, p, opts, into)
}

func (s *ShardedServer) submitInto(ctx context.Context, p *sea.Problem, opts *sea.Options, into *sea.Solution) (bool, error) {
	return s.submitIntoObserved(ctx, p, opts, into, nil)
}

func (s *ShardedServer) submitIntoObserved(ctx context.Context, p *sea.Problem, opts *sea.Options, into *sea.Solution, obs sea.Trace) (bool, error) {
	key, err := requestKey(p)
	if err != nil {
		return false, err
	}
	if s.isClosed() {
		return false, ErrClosed
	}
	if s.gate != nil {
		tenant := TenantFromContext(ctx)
		if err := s.gate.acquire(ctx, tenant, s.shards[0].done); err != nil {
			return false, err
		}
		defer s.gate.release(tenant)
	}
	shard := s.shards[s.ring.route(shapeHash(key))]
	return shard.submit(ctx, p, opts, into, obs)
}

// SubmitAll fans a batch out across the shards with at most
// Shards×MaxInFlight submitting goroutines; results are index-aligned and
// individually routed, admitted, and failed, exactly as Server.SubmitAll.
func (s *ShardedServer) SubmitAll(ctx context.Context, problems []*sea.Problem, opts *sea.Options) []Result {
	results := make([]Result, len(problems))
	gate := make(chan struct{}, len(s.shards)*s.shards[0].cfg.MaxInFlight)
	var wg sync.WaitGroup
	for i, p := range problems {
		gate <- struct{}{}
		wg.Add(1)
		go func(i int, p *sea.Problem) {
			defer func() { <-gate; wg.Done() }()
			sol, err := s.Submit(ctx, p, opts)
			results[i] = Result{Solution: sol, Status: resultStatus(sol, err), Err: err}
		}(i, p)
	}
	wg.Wait()
	return results
}

// Prewarm provisions the owning shard's pool for p (see Server.Prewarm).
func (s *ShardedServer) Prewarm(ctx context.Context, p *sea.Problem, n int) error {
	key, err := requestKey(p)
	if err != nil {
		return err
	}
	if s.isClosed() {
		return ErrClosed
	}
	return s.shards[s.ring.route(shapeHash(key))].Prewarm(ctx, p, n)
}

// Stats returns the shard-merged snapshot: counters and latency aggregates
// summed across shards, shape pools concatenated (each shape lives on
// exactly one shard, so no two shards report the same pool).
func (s *ShardedServer) Stats() Stats {
	var merged Stats
	for i, sh := range s.shards {
		st := sh.Stats()
		if i == 0 {
			merged = st
			continue
		}
		merged.Submitted += st.Submitted
		merged.Completed += st.Completed
		merged.Failed += st.Failed
		merged.Rejected += st.Rejected
		merged.InFlight += st.InFlight
		merged.PeakInFlight += st.PeakInFlight
		merged.Queued += st.Queued
		merged.PeakQueued += st.PeakQueued
		merged.ShapeHits += st.ShapeHits
		merged.ShapeMisses += st.ShapeMisses
		merged.ArenasEvicted += st.ArenasEvicted
		merged.Shapes = append(merged.Shapes, st.Shapes...)
		merged.QueueWait = merged.QueueWait.Merge(st.QueueWait)
		merged.Solve = merged.Solve.Merge(st.Solve)
		merged.Solver = merged.Solver.Add(st.Solver)
	}
	return merged
}

// ShardStats returns each shard's own snapshot, index-aligned with the
// routing (ShardFor).
func (s *ShardedServer) ShardStats() []Stats {
	out := make([]Stats, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.Stats()
	}
	return out
}

func (s *ShardedServer) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close closes every shard (draining their in-flight solves) and is
// idempotent. Requests waiting at the tenant gate leave with ErrClosed once
// the first shard's done channel closes.
func (s *ShardedServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	for _, sh := range s.shards {
		sh.Close()
	}
}

// shapeHash hashes a shape-pool key onto the ring's key space: 64-bit
// FNV-1a over the dimensions, representation, and storage class, finished
// with mix64. Shapes and ring points are both counter-like inputs, and raw
// FNV leaves them clustered enough that 10k shapes can land 2.6× off a
// uniform split; the finalizer restores avalanche and brings the spread
// within ~15% (see TestShardRoutingBalance).
func shapeHash(key shapeKey) uint64 {
	var buf [26]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(key.m))
	binary.LittleEndian.PutUint64(buf[8:], uint64(key.n))
	if key.general {
		buf[16] = 1
	}
	if key.csr {
		buf[17] = 1
	}
	binary.LittleEndian.PutUint64(buf[18:], uint64(key.nnz))
	h := fnv.New64a()
	h.Write(buf[:])
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: a cheap bijective avalanche pass that
// spreads weakly mixed 64-bit values uniformly over the key space.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashRing is a fixed consistent-hash ring: VirtualNodes points per shard,
// sorted by point hash; a key routes to the first point clockwise from its
// hash. With a fixed shard count the ring is equivalent to any other
// deterministic balanced map, but it keeps the shape→shard assignment
// stable under shard-count changes (only ~1/N of shapes move), which is
// what lets a resized deployment keep most of its arena pools warm.
type hashRing struct {
	points []ringPoint
}

type ringPoint struct {
	hash  uint64
	shard int
}

func newHashRing(shards, virtual int) hashRing {
	r := hashRing{points: make([]ringPoint, 0, shards*virtual)}
	var buf [16]byte
	for s := 0; s < shards; s++ {
		for v := 0; v < virtual; v++ {
			binary.LittleEndian.PutUint64(buf[0:], uint64(s))
			binary.LittleEndian.PutUint64(buf[8:], uint64(v))
			h := fnv.New64a()
			h.Write(buf[:])
			r.points = append(r.points, ringPoint{hash: mix64(h.Sum64()), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties (vanishingly rare for FNV-64) break by shard index so the
		// ring order — and therefore routing — stays deterministic.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// route returns the shard owning key: the first ring point at or after the
// key's hash, wrapping at the top of the key space.
func (r hashRing) route(key uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}
