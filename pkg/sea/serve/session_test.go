package serve

import (
	"context"
	"errors"
	"testing"

	"sea/internal/problems"
	"sea/pkg/sea"
)

// temporalProblems wraps a temporal spec's periods in facade problems.
func temporalProblems(t *testing.T, spec problems.TemporalSpec) []*sea.Problem {
	t.Helper()
	raw := problems.Temporal(spec)
	out := make([]*sea.Problem, len(raw))
	for i, d := range raw {
		p, err := sea.NewDiagonalDense(d)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = p
	}
	return out
}

// TestServerSessionWarmDuals: a server-hosted sequence with dual warm starts
// must spend fewer total iterations than cold Submits of the same periods,
// stay KKT-valid, and be fully accounted in the server's stats.
func TestServerSessionWarmDuals(t *testing.T) {
	spec := problems.TemporalSpec{Name: "t", M: 14, N: 12, Periods: 6, Drift: 0.02, Seed: 3}
	periods := temporalProblems(t, spec)
	base := sea.DefaultOptions()
	base.Epsilon = 1e-9
	base.MaxIterations = 500000

	s, err := NewServer(Config{MaxInFlight: 2, Options: base})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()

	var coldIters int
	for _, p := range periods {
		sol, err := s.Submit(ctx, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		coldIters += sol.Iterations
	}

	ses, err := s.NewSession(SessionConfig{WarmDuals: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ses.Close()
	var warmIters int
	for i, p := range periods {
		sol, err := ses.Solve(ctx, p)
		if err != nil {
			t.Fatalf("period %d: %v", i, err)
		}
		warmIters += sol.Iterations
		if rep := sea.CheckKKT(p.Diagonal, sol); !rep.Satisfied(1e-6) {
			t.Fatalf("period %d warm solution fails KKT: %+v", i, rep)
		}
	}
	if warmIters >= coldIters {
		t.Fatalf("dual warm start saved nothing: %d warm vs %d cold iterations", warmIters, coldIters)
	}
	if st := ses.Stats(); st.Periods != len(periods) || st.TotalIterations != warmIters || !st.WarmDuals {
		t.Fatalf("session stats = %+v", st)
	}
	if st := s.Stats(); st.Submitted != uint64(2*len(periods)) || st.Completed != uint64(2*len(periods)) {
		t.Fatalf("server stats did not count session solves: %+v", st)
	}
}

// TestServerSessionDefaultMatchesSubmit: without warm duals a session period
// is bit-identical to a plain Submit of the same problem.
func TestServerSessionDefaultMatchesSubmit(t *testing.T) {
	spec := problems.TemporalSpec{Name: "t", M: 10, N: 8, Periods: 4, Drift: 0.02, Seed: 5}
	periods := temporalProblems(t, spec)
	base := sea.DefaultOptions()
	base.Epsilon = 1e-9
	base.MaxIterations = 500000
	s, err := NewServer(Config{MaxInFlight: 1, Options: base})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()

	ses, err := s.NewSession(SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ses.Close()
	for i, p := range periods {
		chained, err := ses.Solve(ctx, p)
		if err != nil {
			t.Fatalf("period %d: %v", i, err)
		}
		cold, err := s.Submit(ctx, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if chained.Iterations != cold.Iterations {
			t.Fatalf("period %d: chained %d iterations, cold %d", i, chained.Iterations, cold.Iterations)
		}
		for k := range cold.X {
			if chained.X[k] != cold.X[k] {
				t.Fatalf("period %d: X[%d] differs from cold", i, k)
			}
		}
	}
}

// TestServerSessionObjectiveOverride: a session opened on RequestOptions
// overrides solves the requested family.
func TestServerSessionObjectiveOverride(t *testing.T) {
	spec := problems.TemporalSpec{Name: "t", M: 8, N: 7, Periods: 3, Drift: 0.02, Seed: 8}
	periods := temporalProblems(t, spec)
	base := sea.DefaultOptions()
	base.Epsilon = 1e-9
	base.MaxIterations = 200000
	s, err := NewServer(Config{MaxInFlight: 1, Options: base})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ses, err := s.NewSession(SessionConfig{
		Options:   s.RequestOptions(WithObjective(sea.ObjectiveEntropy)),
		WarmDuals: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ses.Close()
	for i, p := range periods {
		sol, err := ses.Solve(context.Background(), p)
		if err != nil {
			t.Fatalf("period %d: %v", i, err)
		}
		if sol.ObjectiveKind != sea.ObjectiveEntropy {
			t.Fatalf("period %d: ObjectiveKind = %v", i, sol.ObjectiveKind)
		}
		if rep := sea.CheckKKTObjective(p.Diagonal, sol, sea.ObjectiveEntropy); !rep.Satisfied(1e-6) {
			t.Fatalf("period %d entropy KKT: %+v", i, rep)
		}
	}
}

// TestServerSessionLifecycle: shape pinning, ErrSessionClosed after Close,
// and server Close closing open sessions.
func TestServerSessionLifecycle(t *testing.T) {
	s, err := NewServer(Config{MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	ses, err := s.NewSession(SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ses.Solve(ctx, testProblem(t, 6, 6, 1.2, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := ses.Solve(ctx, testProblem(t, 7, 6, 1.2, 1)); !errors.Is(err, sea.ErrInvalidProblem) {
		t.Fatalf("shape mismatch: err = %v, want ErrInvalidProblem", err)
	}
	if err := ses.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ses.Close(); err != nil {
		t.Fatal("second Close must be a no-op")
	}
	if _, err := ses.Solve(ctx, testProblem(t, 6, 6, 1.2, 1)); !errors.Is(err, sea.ErrSessionClosed) {
		t.Fatalf("closed session: err = %v, want ErrSessionClosed", err)
	}

	// A session still open when the server closes is closed by the server.
	open, err := s.NewSession(SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := open.Solve(ctx, testProblem(t, 6, 6, 1.2, 1)); !errors.Is(err, sea.ErrSessionClosed) {
		t.Fatalf("after server Close: err = %v, want ErrSessionClosed", err)
	}
	if _, err := s.NewSession(SessionConfig{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("NewSession on closed server: err = %v, want ErrClosed", err)
	}
}

// TestShardedSession: the sharded server opens sessions too (round-robin
// across shards) and they solve normally.
func TestShardedSession(t *testing.T) {
	spec := problems.TemporalSpec{Name: "t", M: 9, N: 8, Periods: 3, Drift: 0.02, Seed: 13}
	periods := temporalProblems(t, spec)
	sh, err := NewSharded(ShardedConfig{Shards: 2, Server: Config{MaxInFlight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	for round := 0; round < 3; round++ {
		ses, err := sh.NewSession(SessionConfig{WarmDuals: true})
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range periods {
			if _, err := ses.Solve(context.Background(), p); err != nil {
				t.Fatalf("round %d period %d: %v", round, i, err)
			}
		}
		if err := ses.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
