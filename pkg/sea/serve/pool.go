package serve

import (
	"sea/pkg/sea"
)

// shapeKey identifies a pool of interchangeable solver arenas: two requests
// share warmed state exactly when their problems have the same dimensions,
// representation, and storage class (the arena's reuse key is the shape plus
// the stored-cell count; a mismatched checkout would still be correct, just
// cold). csr/nnz keep a CSR and a dense problem of equal (m, n) — whose
// working buffers differ in both layout and size — from ever aliasing each
// other's arenas.
type shapeKey struct {
	m, n    int
	general bool
	csr     bool
	nnz     int // stored cells for CSR problems, 0 for dense
}

// entry is one pooled reusable solver: an arena plus the prebuilt Options
// that attach it. The Options struct is reused across requests — the entry
// is checked out exclusively, so mutating opts.Runner per request is safe —
// which keeps the steady-state hit path free of per-request allocations.
type entry struct {
	key   shapeKey
	arena *sea.Arena
	opts  sea.Options
}

// shapePool is the per-shape free-list. All fields are guarded by the
// server's mu.
type shapePool struct {
	key     shapeKey
	free    []*entry // LIFO: the most recently warmed entry is reused first
	total   int      // live entries, free + checked out
	lastUse uint64   // LRU tick of the most recent checkout
	hits    uint64   // checkouts served from the free-list
	misses  uint64   // checkouts that created a fresh (cold) entry
	evicted uint64   // arenas dropped by LRU eviction or free-list overflow
}

// checkout hands an entry for key to a request, creating the shape's pool
// and/or a fresh entry on demand and bumping the LRU clock. It never blocks:
// the number of checked-out entries is bounded by the admission control's
// in-flight limit, not by the pool.
func (s *Server) checkout(key shapeKey) *entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	sp := s.shapes[key]
	if sp == nil {
		sp = &shapePool{key: key}
		s.shapes[key] = sp
		s.evictLocked(sp)
	}
	s.tick++
	sp.lastUse = s.tick
	if n := len(sp.free); n > 0 {
		e := sp.free[n-1]
		sp.free[n-1] = nil
		sp.free = sp.free[:n-1]
		sp.hits++
		s.hits.Add(1)
		return e
	}
	sp.misses++
	s.misses.Add(1)
	sp.total++
	e := &entry{key: key, arena: sea.NewArena()}
	e.opts = s.base
	e.opts.Arena = e.arena
	return e
}

// checkin returns a checked-out entry to its shape's free-list — or closes
// it when the shape was evicted meanwhile or the free-list is at capacity.
// The entry's solution memory (arena-owned) must already have been copied
// out: after checkin the next request may overwrite it.
func (s *Server) checkin(e *entry) {
	e.opts.Runner = nil
	s.mu.Lock()
	sp := s.shapes[e.key]
	keep := sp != nil && !s.closed && len(sp.free) < s.cfg.ArenasPerShape
	if keep {
		sp.free = append(sp.free, e)
	} else if sp != nil {
		sp.total--
		sp.evicted++
		s.evictions.Add(1)
	}
	s.mu.Unlock()
	if !keep {
		e.arena.Close()
	}
}

// evictLocked enforces the MaxShapes bound after keep was inserted: the
// least-recently-used other shape pool is dropped and its idle arenas
// closed. Checked-out entries of an evicted shape are closed lazily at
// checkin (their pool is gone from the map by then). Caller holds mu.
func (s *Server) evictLocked(keep *shapePool) {
	for len(s.shapes) > s.cfg.MaxShapes {
		var victim *shapePool
		for _, sp := range s.shapes {
			if sp == keep {
				continue
			}
			if victim == nil || sp.lastUse < victim.lastUse {
				victim = sp
			}
		}
		if victim == nil {
			return
		}
		delete(s.shapes, victim.key)
		victim.evicted += uint64(len(victim.free))
		s.evictions.Add(uint64(len(victim.free)))
		for _, e := range victim.free {
			e.arena.Close()
		}
		victim.free = nil
	}
}
