package serve

import (
	"context"
	"fmt"
	"time"

	"sea/internal/trace"
	"sea/pkg/sea"
)

// SessionConfig parameterizes a server-hosted sequence session.
type SessionConfig struct {
	// Options is the session's solve-options template; nil means the
	// server's configured template. RequestOptions composes cleanly here: a
	// transport resolves its per-request overrides and hands the result (nil
	// or a detached clone) straight to NewSession.
	Options *sea.Options
	// WarmDuals chains each period's converged column duals into the next
	// solve's Mu0. Off by default: the default session chains only
	// arena-owned state, so every period is bit-identical to a cold Submit.
	WarmDuals bool
}

// Session is a server-hosted temporal sequence: an ordered stream of
// same-shape problems solved through the server's admission control, chaining
// a dedicated arena (and optionally the previous period's duals) from each
// period into the next. It is the serving-layer face of sea.Session — same
// contract, but every Solve competes for the server's in-flight slots and is
// counted in its Stats.
//
// A Session serializes its own solves; concurrent callers queue on the
// session, not in the server's admission queue. Solutions are detached
// copies, safe to retain. Close releases the chained state; the owning
// server's Close also closes any sessions still open.
type Session struct {
	srv       *Server
	warmDuals bool

	mu     chan struct{} // session-serialization token (channel, so Close can't deadlock)
	opts   sea.Options
	arena  *sea.Arena
	prevMu []float64
	m, n   int
	stats  sea.SessionStats
	closed bool
}

// NewSession opens a sequence session on the server. The session owns a
// dedicated arena outside the shape pools — chained state must survive
// between periods, which pooled arenas (reused by unrelated requests) cannot
// guarantee.
func (s *Server) NewSession(cfg SessionConfig) (*Session, error) {
	if s.isClosed() {
		return nil, ErrClosed
	}
	base := s.base
	if cfg.Options != nil {
		base = *cfg.Options
		// Same per-request re-fill as submit: the server's synchronized
		// trace and shared counters, unless the caller brought their own.
		if base.Trace == nil {
			base.Trace = s.base.Trace
		} else {
			base.Trace = sea.MultiTrace(trace.Synchronized(base.Trace), s.base.Trace)
		}
		if base.Counters == nil {
			base.Counters = &s.counters
		}
	}
	base.Procs = s.cfg.Procs
	ses := &Session{
		srv:       s,
		warmDuals: cfg.WarmDuals,
		mu:        make(chan struct{}, 1),
		opts:      base,
		arena:     sea.NewArena(),
	}
	ses.stats.WarmDuals = cfg.WarmDuals
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ses.arena.Close()
		return nil, ErrClosed
	}
	s.sessions[ses] = struct{}{}
	s.mu.Unlock()
	return ses, nil
}

// Solve runs the next period through the server's admission control. The
// first period pins the session's shape; mismatched periods are rejected
// with sea.ErrInvalidProblem. The returned Solution is detached.
func (ses *Session) Solve(ctx context.Context, p *sea.Problem) (*sea.Solution, error) {
	if _, err := requestKey(p); err != nil {
		return nil, err
	}
	select {
	case ses.mu <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-ses.mu }()
	if ses.closed {
		return nil, sea.ErrSessionClosed
	}
	s := ses.srv
	m, n := p.Size()
	if ses.stats.Periods == 0 {
		ses.m, ses.n = m, n
	} else if m != ses.m || n != ses.n {
		return nil, fmt.Errorf("%w: session is pinned to %d×%d problems, got %d×%d (sequences chain shape-specific state; open a new session)",
			sea.ErrInvalidProblem, ses.m, ses.n, m, n)
	}

	if s.isClosed() {
		return nil, ErrClosed
	}
	s.submitted.Add(1)
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}

	o := ses.opts
	o.Arena = ses.arena
	if ses.warmDuals && ses.prevMu != nil {
		o.Mu0 = ses.prevMu
	}
	pool := s.pools.Get()
	o.Runner = pool

	start := time.Now()
	sol, err := s.solver.Solve(ctx, p, &o)
	s.solveLat.Observe(time.Since(start))
	s.pools.Put(pool)

	ses.stats.Periods++
	ses.stats.M, ses.stats.N = ses.m, ses.n
	if sol != nil {
		ses.stats.TotalIterations += sol.Iterations
		if ses.warmDuals && len(sol.Mu) == n {
			ses.prevMu = append(ses.prevMu[:0], sol.Mu...)
		}
		// Detach before the next period reuses the arena's backing arrays.
		sol = sol.Clone()
	}
	if err != nil {
		s.failed.Add(1)
	} else {
		s.completed.Add(1)
	}
	return sol, err
}

// Stats returns a snapshot of the session's accumulated statistics.
func (ses *Session) Stats() sea.SessionStats {
	ses.mu <- struct{}{}
	defer func() { <-ses.mu }()
	return ses.stats
}

// Close releases the session's chained arena and unregisters it from the
// server. It is idempotent; further Solves fail with sea.ErrSessionClosed.
func (ses *Session) Close() error {
	ses.mu <- struct{}{}
	defer func() { <-ses.mu }()
	if ses.closed {
		return nil
	}
	ses.closed = true
	ses.arena.Close()
	s := ses.srv
	s.mu.Lock()
	delete(s.sessions, ses)
	s.mu.Unlock()
	return nil
}
