package serve_test

import (
	"context"
	"fmt"
	"log"

	"sea/pkg/sea"
	"sea/pkg/sea/serve"
)

// ExampleServer stands up a small solve service, submits a fixed-totals
// problem, and reads back the typed status plus the pool statistics.
func ExampleServer() {
	// A 2×2 matrix scaled to new row totals {6, 14} and column totals
	// {9, 11} from the prior [[1 2] [3 4]].
	x0 := []float64{1, 2, 3, 4}
	gamma := []float64{1, 0.5, 1 / 3.0, 0.25}
	d, err := sea.NewFixed(2, 2, x0, gamma, []float64{6, 14}, []float64{9, 11})
	if err != nil {
		log.Fatal(err)
	}
	p, err := sea.NewDiagonal(d)
	if err != nil {
		log.Fatal(err)
	}

	srv, err := serve.NewServer(serve.Config{Solver: "sea", MaxInFlight: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	sol, err := srv.Submit(context.Background(), p, nil)
	if err != nil {
		log.Fatal(err)
	}
	st := srv.Stats()
	fmt.Printf("status=%s completed=%d shapes=%d\n", sol.Status, st.Completed, len(st.Shapes))
	// Output: status=converged completed=1 shapes=1
}
