// Package serve multiplexes concurrent solve requests over pools of
// reusable solver state — the serving layer the facade's arenas were built
// for. One Server owns:
//
//   - a registry solver (any name from pkg/sea — "sea" by default);
//   - shape-keyed pools of arenas: requests for the same problem shape
//     reuse warmed, preallocated solver state (near-zero allocations per
//     request on a pool hit), pools are created on demand, bounded per
//     shape, and the least-recently-used shape is evicted when the shape
//     count exceeds its cap;
//   - a fleet of persistent worker pools (internal/parallel.PoolSet), one
//     borrowed per in-flight solve, so parallel phases never pay goroutine
//     spawning and never share a (single-dispatcher) pool across solves;
//   - admission control: at most MaxInFlight solves run at once, at most
//     MaxQueue requests wait, and further requests are rejected immediately
//     with an error wrapping sea.ErrSaturated;
//   - instrumentation: queue depth and in-flight gauges with high-water
//     marks, per-shape hit/miss/eviction counts, queue-wait and solve
//     latency aggregates, and the solvers' own iteration counters, all
//     exposed as a Stats snapshot. A sea.Trace observer attached to the
//     Config is synchronized and receives every in-flight solve's events.
//
// The request API is Submit (one problem, detached result), SubmitInto
// (caller-owned result memory — the steady-state path for hot serving
// loops), and SubmitAll (a batch fanned out over the same admission gates).
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sea/internal/metrics"
	"sea/internal/parallel"
	"sea/internal/trace"
	"sea/pkg/sea"
)

// ErrClosed is returned by Submit variants after Close.
var ErrClosed = errors.New("serve: server closed")

// Config parameterizes a Server. The zero value of every field selects a
// sensible default, so Config{} is a working single-solver configuration.
type Config struct {
	// Solver is the registry name every request is routed to ("sea" when
	// empty). Arena reuse accelerates the core solvers ("sea",
	// "sea-general"); other registry solvers serve correctly but cold.
	Solver string
	// MaxInFlight caps concurrently running solves (default GOMAXPROCS).
	MaxInFlight int
	// MaxQueue caps requests waiting for an in-flight slot (default
	// 4×MaxInFlight). A request arriving with the queue full is rejected
	// with sea.ErrSaturated.
	MaxQueue int
	// MaxShapes caps the number of distinct shape pools kept warm; the
	// least-recently-used pool is evicted beyond it (default 8).
	MaxShapes int
	// ArenasPerShape caps each shape's idle free-list (default MaxInFlight,
	// the most a single shape can have checked out at once).
	ArenasPerShape int
	// Procs is the worker count of each borrowed scheduling pool — the
	// parallelism of one solve's row/column phases (default 1).
	Procs int
	// RequestTimeout, when positive, bounds each request's solve with a
	// per-request deadline (tightening any caller deadline).
	RequestTimeout time.Duration
	// Options is the base solve-options template (nil = sea.DefaultOptions).
	// Its Arena and Runner fields are owned by the server and overwritten.
	Options *sea.Options
	// Trace, when set, observes every iteration of every in-flight solve.
	// It is wrapped with a synchronizing adapter, so any observer works.
	Trace sea.Trace
}

// withDefaults resolves the documented defaults.
func (c Config) withDefaults() Config {
	if c.Solver == "" {
		c.Solver = "sea"
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInFlight
	}
	if c.MaxShapes <= 0 {
		c.MaxShapes = 8
	}
	if c.ArenasPerShape <= 0 {
		c.ArenasPerShape = c.MaxInFlight
	}
	if c.Procs <= 0 {
		c.Procs = 1
	}
	return c
}

// Server is a concurrent solve service. All methods are safe for concurrent
// use. See the package documentation for the architecture.
type Server struct {
	cfg    Config
	solver sea.Solver
	base   sea.Options // resolved template each entry's options copy

	slots chan struct{} // in-flight tokens (send = acquire)
	done  chan struct{} // closed by Close; unblocks queued waiters
	pools *parallel.PoolSet

	mu       sync.Mutex
	shapes   map[shapeKey]*shapePool
	sessions map[*Session]struct{} // live sequence sessions, for Close
	tick     uint64
	closed   bool

	submitted atomic.Uint64
	completed atomic.Uint64 // finished with err == nil
	failed    atomic.Uint64 // finished with err != nil (incl. cancellation)
	rejected  atomic.Uint64 // turned away by admission control
	evictions atomic.Uint64 // arenas closed by LRU / free-list bounds
	hits      atomic.Uint64 // checkouts served from a warm free-list
	misses    atomic.Uint64 // checkouts that built a cold arena

	inFlight metrics.Gauge
	queued   metrics.Gauge
	waitLat  metrics.Latency
	solveLat metrics.Latency
	counters metrics.Counters // aggregated solver instrumentation
}

// NewServer validates cfg, resolves the solver name, and starts the worker
// pools. The returned server must be Closed to release them.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	solver, err := sea.Get(cfg.Solver)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		solver: solver,
		slots:  make(chan struct{}, cfg.MaxInFlight),
		done:   make(chan struct{}),
		pools:  parallel.NewPoolSet(cfg.MaxInFlight, cfg.Procs),
		shapes: make(map[shapeKey]*shapePool),
	}
	s.sessions = make(map[*Session]struct{})
	if cfg.Options != nil {
		s.base = *cfg.Options
	} else {
		s.base = *sea.DefaultOptions()
	}
	s.base.Procs = cfg.Procs
	s.base.Arena = nil
	s.base.Runner = nil
	s.base.Trace = trace.Synchronized(cfg.Trace)
	// One shared, concurrency-safe counter set serves every solve: the
	// per-entry options pre-point at it so the solvers' withDefaults never
	// allocates a private one on the hot path.
	s.base.Counters = &s.counters
	return s, nil
}

// Submit solves one problem, returning a detached Solution (no aliasing of
// pooled memory). opts may be nil, meaning the server's configured options —
// the recommended, allocation-free-admission path; a non-nil opts is cloned
// for the request and its Arena/Runner fields are overridden by the server.
//
// Submit blocks while the request is queued (bounded by MaxQueue) and while
// it solves; it returns early with sea.ErrSaturated when the queue is full,
// ErrClosed after Close, or ctx.Err() when the caller's context ends first.
// On iteration-limit exhaustion the error wraps sea.ErrNotConverged and the
// returned Solution is the best iterate, per the facade's contract.
func (s *Server) Submit(ctx context.Context, p *sea.Problem, opts *sea.Options) (*sea.Solution, error) {
	var out sea.Solution
	filled, err := s.submit(ctx, p, opts, &out, nil)
	if !filled {
		return nil, err
	}
	return &out, err
}

// SubmitTraced is Submit with a per-request trace observer layered onto the
// request's options: the request solves exactly as a plain Submit with the
// same opts (nil = the server's template, arena, runner), and obs
// additionally receives its iteration events. The transport's streamed-trace
// jobs ride this path. obs is synchronized by the server; a nil obs degrades
// to Submit.
func (s *Server) SubmitTraced(ctx context.Context, p *sea.Problem, opts *sea.Options, obs sea.Trace) (*sea.Solution, error) {
	var out sea.Solution
	filled, err := s.submit(ctx, p, opts, &out, obs)
	if !filled {
		return nil, err
	}
	return &out, err
}

// An Override replaces one field of the server's option template for a
// single request. Transports build the list from whichever request
// parameters are actually present, so an absent parameter never perturbs
// the template.
type Override func(*sea.Options)

// WithPrecond overrides the preconditioning stage for one request.
func WithPrecond(pc sea.Precond) Override {
	return func(o *sea.Options) { o.Precondition = pc }
}

// WithObjective overrides the objective family for one request — the
// serving-layer face of sea.Options.Objective.
func WithObjective(obj sea.Objective) Override {
	return func(o *sea.Options) { o.Objective = obj }
}

// RequestOptions resolves per-request overrides into the opts argument of
// the Submit variants: it returns nil when every override matches the
// server's configured template (the zero-overhead path — the request solves
// on the prebuilt per-arena options), and otherwise a detached clone of the
// template with the overridden fields replaced. The clone's Arena, Runner,
// Trace and Counters are zeroed: submit re-fills all four per request, and
// handing back the template's already-synchronized Trace would double-wrap
// it. The returned options are the caller's to further adjust before
// submitting.
func (s *Server) RequestOptions(overrides ...Override) *sea.Options {
	if len(overrides) == 0 {
		return nil
	}
	o := s.base
	for _, ov := range overrides {
		if ov != nil {
			ov(&o)
		}
	}
	if o.Precondition == s.base.Precondition && o.Objective == s.base.Objective {
		return nil
	}
	o.Arena = nil
	o.Runner = nil
	o.Trace = nil
	o.Counters = nil
	o.Mu0 = nil
	return &o
}

// SubmitInto is Submit draining the result into caller-owned memory: into's
// slice capacity is reused when it suffices, so a serving loop that reuses
// one Solution per worker reaches steady-state hit-path allocations of
// ~1 alloc per request (the solver's internal options clone). It reports
// whether into was filled — true whenever a solve produced an iterate, even
// alongside a non-nil error (non-convergence, cancellation mid-solve).
func (s *Server) SubmitInto(ctx context.Context, p *sea.Problem, opts *sea.Options, into *sea.Solution) (bool, error) {
	if into == nil {
		return false, fmt.Errorf("serve: SubmitInto requires a non-nil destination")
	}
	return s.submit(ctx, p, opts, into, nil)
}

// Result is one problem's outcome in a SubmitAll batch.
type Result struct {
	// Solution is the detached solve result; nil when the request was
	// rejected or failed before producing an iterate.
	Solution *sea.Solution
	// Status is the explicit outcome: the Solution's status when one
	// exists, StatusSaturated for admission rejections, StatusCancelled for
	// context expiry before any iterate.
	Status sea.Status
	// Err is the request's error, if any (wraps the sea sentinel errors).
	Err error
}

// SubmitAll solves a batch, fanning the problems out over the server's
// admission gates with at most MaxInFlight submitting goroutines, and
// returns one Result per problem, index-aligned. Individual problems can
// fail or be rejected independently; the batch itself never fails.
func (s *Server) SubmitAll(ctx context.Context, problems []*sea.Problem, opts *sea.Options) []Result {
	results := make([]Result, len(problems))
	gate := make(chan struct{}, s.cfg.MaxInFlight)
	var wg sync.WaitGroup
	for i, p := range problems {
		gate <- struct{}{}
		wg.Add(1)
		go func(i int, p *sea.Problem) {
			defer func() { <-gate; wg.Done() }()
			sol, err := s.Submit(ctx, p, opts)
			results[i] = Result{Solution: sol, Status: resultStatus(sol, err), Err: err}
		}(i, p)
	}
	wg.Wait()
	return results
}

// resultStatus classifies a (solution, error) pair for a batch Result.
func resultStatus(sol *sea.Solution, err error) sea.Status {
	if sol != nil && sol.Status != sea.StatusUnknown {
		return sol.Status
	}
	switch {
	case errors.Is(err, sea.ErrSaturated):
		return sea.StatusSaturated
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return sea.StatusCancelled
	default:
		return sea.StatusUnknown
	}
}

// admit passes the server's admission control: an in-flight slot
// immediately, or a bounded wait in the queue. The queue bound is enforced
// optimistically (increment, test, undo), so a burst at the boundary is
// rejected conservatively. On success the caller holds an in-flight slot
// and must call release exactly once; on failure the rejection is already
// counted.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	select {
	case s.slots <- struct{}{}:
	default:
		if q := s.queued.Inc(); q > int64(s.cfg.MaxQueue) {
			s.queued.Dec()
			s.rejected.Add(1)
			return nil, fmt.Errorf("%w: %d solves in flight, %d queued (limits %d/%d)",
				sea.ErrSaturated, s.inFlight.Level(), q-1, s.cfg.MaxInFlight, s.cfg.MaxQueue)
		}
		waitStart := time.Now()
		select {
		case s.slots <- struct{}{}:
			s.queued.Dec()
			s.waitLat.Observe(time.Since(waitStart))
		case <-ctx.Done():
			s.queued.Dec()
			s.rejected.Add(1)
			return nil, ctx.Err()
		case <-s.done:
			s.queued.Dec()
			s.rejected.Add(1)
			return nil, ErrClosed
		}
	}
	if s.isClosed() {
		<-s.slots
		s.rejected.Add(1)
		return nil, ErrClosed
	}
	s.inFlight.Inc()
	return func() {
		s.inFlight.Dec()
		<-s.slots
	}, nil
}

// submit is the request path: admission, checkout, solve, copy-out,
// checkin. obs, when non-nil, is an extra per-request trace observer
// layered onto whichever options the request resolves to.
func (s *Server) submit(ctx context.Context, p *sea.Problem, opts *sea.Options, into *sea.Solution, obs sea.Trace) (filled bool, err error) {
	key, err := requestKey(p)
	if err != nil {
		return false, err
	}
	if s.isClosed() {
		return false, ErrClosed
	}
	s.submitted.Add(1)

	release, err := s.admit(ctx)
	if err != nil {
		return false, err
	}
	defer release()

	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}

	e := s.checkout(key)
	pool := s.pools.Get()
	runOpts := &e.opts
	if opts != nil {
		o := *opts
		o.Arena = e.arena
		o.Procs = s.cfg.Procs
		if o.Trace == nil {
			o.Trace = s.base.Trace
		} else {
			o.Trace = sea.MultiTrace(trace.Synchronized(o.Trace), s.base.Trace)
		}
		if o.Counters == nil {
			o.Counters = &s.counters
		}
		runOpts = &o
	}
	if obs != nil {
		// Layer the per-request observer without disturbing the entry's
		// prebuilt options (they are reused by the next checkout).
		o := *runOpts
		o.Trace = sea.MultiTrace(trace.Synchronized(obs), o.Trace)
		runOpts = &o
	}
	runOpts.Runner = pool

	start := time.Now()
	sol, err := s.solver.Solve(ctx, p, runOpts)
	s.solveLat.Observe(time.Since(start))
	if sol != nil {
		// The solution aliases arena memory that the next checkout may
		// overwrite — detach it before the entry goes back to the pool.
		sol.CopyInto(into)
		filled = true
	}
	s.pools.Put(pool)
	s.checkin(e)

	if err != nil {
		s.failed.Add(1)
	} else {
		s.completed.Add(1)
	}
	return filled, err
}

// Prewarm provisions the shape pool for p with up to n warmed arenas (n <= 0
// or n > ArenasPerShape means ArenasPerShape), running one solve per arena so
// the kernel warm-start state is populated before live traffic arrives. It is
// the deterministic way to reach the all-hits steady state: concurrent
// warm-up traffic only grows a pool as far as the scheduler actually
// overlaps requests. Prewarm solves bypass admission control and are not
// counted as submissions (the pool's miss counters do record the cold
// builds). It returns the first solve error, keeping any arenas already
// warmed.
func (s *Server) Prewarm(ctx context.Context, p *sea.Problem, n int) error {
	key, err := requestKey(p)
	if err != nil {
		return err
	}
	if s.isClosed() {
		return ErrClosed
	}
	if n <= 0 || n > s.cfg.ArenasPerShape {
		n = s.cfg.ArenasPerShape
	}
	// Hold all n entries before returning any: checkout pops the free-list,
	// so releasing early would re-warm the same arena n times.
	entries := make([]*entry, 0, n)
	defer func() {
		for _, e := range entries {
			s.checkin(e)
		}
	}()
	for i := 0; i < n; i++ {
		e := s.checkout(key)
		entries = append(entries, e)
		pool := s.pools.Get()
		e.opts.Runner = pool
		_, err := s.solver.Solve(ctx, p, &e.opts)
		s.pools.Put(pool)
		if err != nil {
			return err
		}
	}
	return nil
}

// requestKey derives the shape-pool key, rejecting structurally unusable
// problems before they occupy a queue slot. Full numerical validation is
// the solver's job (one pass per request, as for direct sea.Solve calls).
func requestKey(p *sea.Problem) (shapeKey, error) {
	if p == nil || (p.Diagonal == nil && p.General == nil) {
		return shapeKey{}, fmt.Errorf("%w: request carries no problem representation", sea.ErrInvalidProblem)
	}
	m, n := p.Size()
	if m <= 0 || n <= 0 {
		return shapeKey{}, fmt.Errorf("%w: request has dimensions %d×%d", sea.ErrInvalidProblem, m, n)
	}
	key := shapeKey{m: m, n: n, general: p.General != nil}
	if p.Diagonal != nil && p.Diagonal.Pattern != nil {
		key.csr = true
		key.nnz = p.Diagonal.Pattern.Nnz()
	}
	return key, nil
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close rejects further submissions, waits for in-flight solves to drain,
// and releases every pooled arena and worker pool. It is idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done) // queued waiters leave without consuming a slot token

	// Hold every in-flight slot: when all MaxInFlight tokens are ours, no
	// solve is running and none can start (submit re-checks closed after
	// acquiring). Queued waiters may interleave; they observe closed and
	// release their token, which we then re-acquire.
	for i := 0; i < s.cfg.MaxInFlight; i++ {
		s.slots <- struct{}{}
	}

	s.mu.Lock()
	for key, sp := range s.shapes {
		for _, e := range sp.free {
			e.arena.Close()
		}
		sp.free = nil
		delete(s.shapes, key)
	}
	sessions := make([]*Session, 0, len(s.sessions))
	for ses := range s.sessions {
		sessions = append(sessions, ses)
	}
	s.mu.Unlock()
	// With every slot held no session solve is in flight, so closing their
	// chained arenas here cannot race a solve.
	for _, ses := range sessions {
		ses.Close()
	}
	s.pools.Close()
}
