package serve

import (
	"context"
	"math"
	"testing"

	"sea/pkg/sea"
)

// testCSRProblem builds a CSR fixed-totals problem of order m×n with a
// cyclic band of the given width, wrapped for the facade.
func testCSRProblem(t testing.TB, m, n, band int) *sea.Problem {
	t.Helper()
	x0 := make([]float64, m*n)
	gamma := make([]float64, m*n)
	upper := make([]float64, m*n)
	for k := range gamma {
		gamma[k] = 1
	}
	s0 := make([]float64, m)
	d0 := make([]float64, n)
	for i := 0; i < m; i++ {
		for d := 0; d < band; d++ {
			j := (i%n + d) % n
			k := i*n + j
			x0[k] = 1 + float64(k%7)
			upper[k] = math.Inf(1)
			s0[i] += 1.4 * x0[k]
			d0[j] += 1.4 * x0[k]
		}
	}
	dp := &sea.DiagonalProblem{M: m, N: n, X0: x0, Gamma: gamma, S0: s0, D0: d0, Upper: upper, Kind: sea.FixedTotals}
	p, err := sea.NewDiagonalCSR(dp)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestShapePoolsKeyOnStorage: a dense and a CSR problem of the same m×n must
// land in different shape pools — their arena buffers have different lengths
// (m·n vs nnz), so sharing a pool would hand a CSR solve a dense-sized arena
// and vice versa. Two CSR problems with different nnz must split too.
func TestShapePoolsKeyOnStorage(t *testing.T) {
	s, err := NewServer(Config{MaxInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	dense := testProblem(t, 18, 12, 1.3, 1)
	csr3 := testCSRProblem(t, 18, 12, 3)
	csr5 := testCSRProblem(t, 18, 12, 5)
	for _, p := range []*sea.Problem{dense, csr3, csr5, dense, csr3, csr5} {
		if _, err := s.Submit(context.Background(), p, nil); err != nil {
			t.Fatal(err)
		}
	}

	st := s.Stats()
	if len(st.Shapes) != 3 {
		t.Fatalf("%d shape pools, want 3 (dense, csr nnz=54, csr nnz=90): %+v", len(st.Shapes), st.Shapes)
	}
	byNnz := map[int]ShapeStats{}
	for _, sh := range st.Shapes {
		if sh.M != 18 || sh.N != 12 {
			t.Fatalf("pool for %dx%d, want 18x12", sh.M, sh.N)
		}
		byNnz[sh.Nnz] = sh
	}
	if sh, ok := byNnz[0]; !ok || sh.CSR {
		t.Fatalf("no dense pool in %+v", st.Shapes)
	}
	for _, nnz := range []int{18 * 3, 18 * 5} {
		sh, ok := byNnz[nnz]
		if !ok || !sh.CSR {
			t.Fatalf("no csr pool with nnz=%d in %+v", nnz, st.Shapes)
		}
		// Each CSR shape was submitted twice: one cold miss, one warm hit.
		if sh.Hits != 1 || sh.Misses != 1 {
			t.Fatalf("csr pool nnz=%d: hits=%d misses=%d, want 1/1 (second solve must reuse the arena)", nnz, sh.Hits, sh.Misses)
		}
	}
}

// TestShardRoutingConsistentForStorage: a sharded server routes a shape's
// requests to one shard regardless of storage aliasing — and CSR solves come
// back correct through the full routing path.
func TestShardRoutingConsistentForStorage(t *testing.T) {
	s, err := NewSharded(ShardedConfig{Shards: 4, Server: Config{MaxInFlight: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p := testCSRProblem(t, 18, 12, 3)
	ref, err := s.Submit(context.Background(), p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.X) != p.Diagonal.Pattern.Nnz() {
		t.Fatalf("solution X has length %d, want nnz = %d", len(ref.X), p.Diagonal.Pattern.Nnz())
	}
	for rep := 0; rep < 3; rep++ {
		sol, err := s.Submit(context.Background(), p, nil)
		if err != nil {
			t.Fatal(err)
		}
		for k := range ref.X {
			if sol.X[k] != ref.X[k] {
				t.Fatalf("rep %d: X[%d] = %v, want %v (bit-exact across repeats)", rep, k, sol.X[k], ref.X[k])
			}
		}
	}
	// Exactly one shard saw the shape: its pool stats show 1 miss, 3 hits.
	var pools int
	for _, st := range s.ShardStats() {
		for _, sh := range st.Shapes {
			pools++
			if !sh.CSR || sh.Nnz != 18*3 {
				t.Fatalf("unexpected pool %+v", sh)
			}
			if sh.Misses != 1 || sh.Hits != 3 {
				t.Fatalf("pool stats hits=%d misses=%d, want 3/1", sh.Hits, sh.Misses)
			}
		}
	}
	if pools != 1 {
		t.Fatalf("shape spread across %d pools, want 1 (consistent routing)", pools)
	}
}
