package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"sea/pkg/sea"
)

// ErrTenantQuota is wrapped by ShardedServer submissions rejected by the
// per-tenant admission gate: the tenant is at its in-flight cap and its
// waiting queue is full. It always wraps sea.ErrSaturated too, so transports
// that only branch on the facade sentinel keep working.
var ErrTenantQuota = errors.New("serve: tenant over quota")

// tenantKey is the context key for the requesting tenant's name.
type tenantKey struct{}

// WithTenant tags ctx with the requesting tenant's name. The sharded
// server's per-tenant quotas and fair queueing key on it; an untagged
// context belongs to the anonymous tenant "".
func WithTenant(ctx context.Context, tenant string) context.Context {
	return context.WithValue(ctx, tenantKey{}, tenant)
}

// TenantFromContext returns the tenant name set by WithTenant ("" when
// unset).
func TenantFromContext(ctx context.Context) string {
	t, _ := ctx.Value(tenantKey{}).(string)
	return t
}

// tenantGate is the per-tenant fair admission gate layered above the
// shards' own MaxInFlight/bounded-queue admission control. Each tenant may
// hold at most maxInFlight grants at once; a tenant at its cap waits in its
// own FIFO queue (bounded by maxQueue), and releases grant waiting tenants
// in round-robin rotation so one heavy tenant can neither starve the others
// nor occupy every queue slot.
type tenantGate struct {
	maxInFlight int // grants a single tenant may hold (0 disables the gate)
	maxQueue    int // waiters a single tenant may park

	mu       sync.Mutex
	inflight map[string]int
	waiters  map[string][]chan struct{} // per-tenant FIFO of parked requests
	rotation []string                   // round-robin order over tenants with waiters
	next     int                        // rotation cursor
}

// newTenantGate returns a gate enforcing the given per-tenant caps; both
// <= 0 values are normalized (maxInFlight <= 0 disables the gate entirely,
// maxQueue <= 0 means a waiting queue as deep as the in-flight cap).
func newTenantGate(maxInFlight, maxQueue int) *tenantGate {
	if maxInFlight <= 0 {
		return nil
	}
	if maxQueue <= 0 {
		maxQueue = maxInFlight
	}
	return &tenantGate{
		maxInFlight: maxInFlight,
		maxQueue:    maxQueue,
		inflight:    make(map[string]int),
		waiters:     make(map[string][]chan struct{}),
	}
}

// acquire admits one request for tenant, blocking in the tenant's FIFO
// queue while the tenant is at its in-flight cap. It returns ErrTenantQuota
// (wrapping sea.ErrSaturated) when the tenant's queue is also full, ctx.Err()
// when the caller gives up, and ErrClosed when done closes first.
func (g *tenantGate) acquire(ctx context.Context, tenant string, done <-chan struct{}) error {
	g.mu.Lock()
	if g.inflight[tenant] < g.maxInFlight {
		g.inflight[tenant]++
		g.mu.Unlock()
		return nil
	}
	if len(g.waiters[tenant]) >= g.maxQueue {
		g.mu.Unlock()
		return fmt.Errorf("%w: %w: tenant %q at %d in flight with %d queued",
			sea.ErrSaturated, ErrTenantQuota, tenant, g.maxInFlight, g.maxQueue)
	}
	grant := make(chan struct{})
	if len(g.waiters[tenant]) == 0 {
		g.rotation = append(g.rotation, tenant)
	}
	g.waiters[tenant] = append(g.waiters[tenant], grant)
	g.mu.Unlock()

	select {
	case <-grant:
		return nil
	case <-ctx.Done():
		if g.abandon(tenant, grant) {
			return ctx.Err()
		}
		// The grant raced the cancellation and won; keep it so the
		// release accounting stays balanced, then hand it back.
		g.release(tenant)
		return ctx.Err()
	case <-done:
		if g.abandon(tenant, grant) {
			return ErrClosed
		}
		g.release(tenant)
		return ErrClosed
	}
}

// abandon removes a parked waiter that gave up; it reports false when the
// waiter had already been granted (the caller then owns a grant).
func (g *tenantGate) abandon(tenant string, grant chan struct{}) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	q := g.waiters[tenant]
	for i, w := range q {
		if w == grant {
			g.waiters[tenant] = append(q[:i:i], q[i+1:]...)
			if len(g.waiters[tenant]) == 0 {
				delete(g.waiters, tenant)
				g.dropFromRotation(tenant)
			}
			return true
		}
	}
	return false
}

// release returns tenant's grant and wakes the next waiting tenant in
// round-robin order (FIFO within a tenant).
func (g *tenantGate) release(tenant string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.inflight[tenant] > 1 {
		g.inflight[tenant]--
	} else {
		delete(g.inflight, tenant)
	}
	// Rotate over tenants with parked waiters, starting at the cursor, and
	// grant the first one still under its cap.
	for range g.rotation {
		if g.next >= len(g.rotation) {
			g.next = 0
		}
		cand := g.rotation[g.next]
		if g.inflight[cand] >= g.maxInFlight {
			g.next++
			continue
		}
		q := g.waiters[cand]
		grant := q[0]
		if len(q) == 1 {
			delete(g.waiters, cand)
			g.dropFromRotation(cand)
			// dropFromRotation keeps the cursor on the element after cand,
			// so the rotation resumes past the tenant just served.
		} else {
			g.waiters[cand] = q[1:]
			g.next++
		}
		g.inflight[cand]++
		close(grant)
		return
	}
}

// dropFromRotation removes tenant from the round-robin order, keeping the
// cursor pointing at the element that followed it. Caller holds mu.
func (g *tenantGate) dropFromRotation(tenant string) {
	for i, name := range g.rotation {
		if name != tenant {
			continue
		}
		g.rotation = append(g.rotation[:i:i], g.rotation[i+1:]...)
		if g.next > i {
			g.next--
		}
		if g.next >= len(g.rotation) {
			g.next = 0
		}
		return
	}
}

// snapshot reports the gate's current occupancy for Stats.
func (g *tenantGate) snapshot() (tenants int, inflight, queued int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, n := range g.inflight {
		inflight += n
	}
	for _, q := range g.waiters {
		queued += len(q)
	}
	seen := make(map[string]bool, len(g.inflight)+len(g.waiters))
	for t := range g.inflight {
		seen[t] = true
	}
	for t := range g.waiters {
		seen[t] = true
	}
	return len(seen), inflight, queued
}
