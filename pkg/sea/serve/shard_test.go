package serve

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"sea/internal/testutil"
	"sea/pkg/sea"
)

// tenShapes enumerates 10k distinct problem shapes: every (m, n) on a
// 100×100 grid. The property tests treat this as a sample of the shape
// space a long-lived multi-tenant server would see.
func tenShapes() [][2]int {
	shapes := make([][2]int, 0, 10000)
	for m := 1; m <= 100; m++ {
		for n := 1; n <= 100; n++ {
			shapes = append(shapes, [2]int{m, n})
		}
	}
	return shapes
}

// TestShardRoutingDeterministic: routing is a pure function of the
// configuration — the same shape maps to the same shard on every call, on
// every independently constructed server, for every shard count. This is
// what makes warm arena pools survive a server restart behind a stable
// load balancer.
func TestShardRoutingDeterministic(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			a, err := NewSharded(ShardedConfig{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			defer a.Close()
			b, err := NewSharded(ShardedConfig{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()

			for _, sh := range tenShapes() {
				m, n := sh[0], sh[1]
				first := a.ShardFor(m, n, false)
				if again := a.ShardFor(m, n, false); again != first {
					t.Fatalf("shape %dx%d: routing not stable on one server: %d then %d", m, n, first, again)
				}
				if other := b.ShardFor(m, n, false); other != first {
					t.Fatalf("shape %dx%d: independent servers disagree: %d vs %d", m, n, first, other)
				}
				if first < 0 || first >= shards {
					t.Fatalf("shape %dx%d: shard %d out of range [0,%d)", m, n, first, shards)
				}
			}
		})
	}
}

// TestShardRoutingSeparatesRepresentations: the general (dense-weight) and
// diagonal pools of one shape are distinct arena families, so the routing
// key includes the representation bit.
func TestShardRoutingSeparatesRepresentations(t *testing.T) {
	s, err := NewSharded(ShardedConfig{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	differs := 0
	for _, sh := range tenShapes()[:1000] {
		if s.ShardFor(sh[0], sh[1], false) != s.ShardFor(sh[0], sh[1], true) {
			differs++
		}
	}
	if differs == 0 {
		t.Error("general flag never changes routing: representation is not part of the key")
	}
}

// TestShardRoutingBalance: across 10k shapes, no shard receives more than
// 2× its uniform share and none receives less than half — the consistent
// hash with virtual nodes must split the shape space evenly enough that
// adding shards actually adds capacity.
func TestShardRoutingBalance(t *testing.T) {
	shapes := tenShapes()
	for _, shards := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s, err := NewSharded(ShardedConfig{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()

			counts := make([]int, shards)
			for _, sh := range shapes {
				counts[s.ShardFor(sh[0], sh[1], false)]++
			}
			uniform := float64(len(shapes)) / float64(shards)
			for i, c := range counts {
				if float64(c) > 2*uniform || float64(c) < uniform/2 {
					t.Errorf("shard %d holds %d of %d shapes (uniform %.0f): outside the 2x balance envelope (all: %v)",
						i, c, len(shapes), uniform, counts)
				}
			}
			t.Logf("shards=%d counts=%v (uniform %.0f)", shards, counts, uniform)
		})
	}
}

// --- tenantGate unit tests -------------------------------------------------

// mustAcquire acquires synchronously and fails the test on any error.
func mustAcquire(t *testing.T, g *tenantGate, tenant string) {
	t.Helper()
	if err := g.acquire(context.Background(), tenant, nil); err != nil {
		t.Fatalf("acquire(%q): %v", tenant, err)
	}
}

// parkWaiter starts an acquire that is expected to park, returning a channel
// that yields its result. It blocks until the gate reports the waiter queued,
// so callers can build deterministic queue orders.
func parkWaiter(t *testing.T, g *tenantGate, tenant string) <-chan error {
	t.Helper()
	_, _, before := g.snapshotQueued()
	res := make(chan error, 1)
	go func() { res <- g.acquire(context.Background(), tenant, nil) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, q := g.snapshotQueued(); q == before+1 {
			return res
		}
		select {
		case err := <-res:
			t.Fatalf("acquire(%q) did not park: %v", tenant, err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("acquire(%q) never parked", tenant)
		}
		time.Sleep(time.Millisecond)
	}
}

// snapshotQueued aliases snapshot for readability in the tests.
func (g *tenantGate) snapshotQueued() (tenants, inflight, queued int) { return g.snapshot() }

// TestTenantGateQuotaRejects: a tenant at its in-flight cap with a full
// waiting queue is rejected with ErrTenantQuota, which wraps the facade's
// ErrSaturated so sentinel-only callers behave.
func TestTenantGateQuotaRejects(t *testing.T) {
	testutil.CheckGoroutines(t)
	g := newTenantGate(1, 1)
	mustAcquire(t, g, "acme")
	waiter := parkWaiter(t, g, "acme")

	err := g.acquire(context.Background(), "acme", nil)
	if !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("err = %v, want ErrTenantQuota", err)
	}
	if !errors.Is(err, sea.ErrSaturated) {
		t.Fatalf("err = %v, must also wrap sea.ErrSaturated", err)
	}

	// Another tenant is unaffected by acme's saturation.
	mustAcquire(t, g, "zenith")

	g.release("acme") // wakes the parked waiter
	if err := <-waiter; err != nil {
		t.Fatalf("parked waiter: %v", err)
	}
	g.release("acme")
	g.release("zenith")
	if tenants, inflight, queued := g.snapshot(); tenants != 0 || inflight != 0 || queued != 0 {
		t.Errorf("gate not empty after releases: tenants=%d inflight=%d queued=%d", tenants, inflight, queued)
	}
}

// TestTenantGateFairQueueing: admission is fair across tenants — a heavy
// tenant's deep queue never delays a light tenant's own grant (each
// tenant's capacity is its own), and within one tenant the queue is strict
// FIFO. Heavy's two waiters park before light's one; light's release must
// still admit light's waiter immediately.
func TestTenantGateFairQueueing(t *testing.T) {
	testutil.CheckGoroutines(t)
	g := newTenantGate(1, 4)
	mustAcquire(t, g, "heavy")
	mustAcquire(t, g, "light")

	grants := make(chan string, 3)
	wrap := func(name string, res <-chan error) {
		go func() {
			if err := <-res; err == nil {
				grants <- name
			} else {
				grants <- "error:" + err.Error()
			}
		}()
	}
	wrap("heavy-1", parkWaiter(t, g, "heavy"))
	wrap("heavy-2", parkWaiter(t, g, "heavy"))
	wrap("light-1", parkWaiter(t, g, "light"))

	recv := func() string {
		select {
		case s := <-grants:
			return s
		case <-time.After(5 * time.Second):
			t.Fatal("no grant arrived")
			return ""
		}
	}

	// light releases: its own waiter is admitted at once, despite heavy's
	// earlier and deeper queue — heavy cannot occupy light's capacity.
	g.release("light")
	if got := recv(); got != "light-1" {
		t.Fatalf("first grant to %q, want light-1 (heavy's queue must not delay light)", got)
	}
	// heavy's releases serve heavy's queue in FIFO order.
	g.release("heavy")
	if got := recv(); got != "heavy-1" {
		t.Fatalf("second grant to %q, want heavy-1 (FIFO within tenant)", got)
	}
	g.release("heavy")
	if got := recv(); got != "heavy-2" {
		t.Fatalf("third grant to %q, want heavy-2 (FIFO within tenant)", got)
	}

	g.release("heavy")
	g.release("light")
	if tenants, inflight, queued := g.snapshot(); tenants != 0 || inflight != 0 || queued != 0 {
		t.Errorf("gate not empty after releases: tenants=%d inflight=%d queued=%d", tenants, inflight, queued)
	}
}

// TestTenantGateCancelWhileParked: a parked waiter whose context ends leaves
// the gate with balanced accounting, and the tenant's next release still
// grants cleanly.
func TestTenantGateCancelWhileParked(t *testing.T) {
	testutil.CheckGoroutines(t)
	g := newTenantGate(1, 2)
	mustAcquire(t, g, "acme")

	ctx, cancel := context.WithCancel(context.Background())
	res := make(chan error, 1)
	go func() { res <- g.acquire(ctx, "acme", nil) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, q := g.snapshot(); q == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-res; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
	}
	if _, _, q := g.snapshot(); q != 0 {
		t.Fatalf("queued = %d after cancellation, want 0", q)
	}

	g.release("acme")
	if tenants, inflight, queued := g.snapshot(); tenants != 0 || inflight != 0 || queued != 0 {
		t.Errorf("gate not empty: tenants=%d inflight=%d queued=%d", tenants, inflight, queued)
	}
	mustAcquire(t, g, "acme") // gate still functional
	g.release("acme")
}

// TestTenantContextHelpers: WithTenant/TenantFromContext round-trip, and the
// anonymous default.
func TestTenantContextHelpers(t *testing.T) {
	if got := TenantFromContext(context.Background()); got != "" {
		t.Errorf("anonymous tenant = %q, want \"\"", got)
	}
	ctx := WithTenant(context.Background(), "acme")
	if got := TenantFromContext(ctx); got != "acme" {
		t.Errorf("tenant = %q, want \"acme\"", got)
	}
}

// TestShardedSubmitHonorsTenantQuota: the gate is wired into the sharded
// submission path — a tenant saturating its quota is rejected with the
// sentinel pair while other tenants keep solving.
func TestShardedSubmitHonorsTenantQuota(t *testing.T) {
	testutil.CheckGoroutines(t)
	s, err := NewSharded(ShardedConfig{
		Shards:            2,
		TenantMaxInFlight: 1,
		TenantMaxQueue:    1,
		Server:            Config{MaxInFlight: 2, MaxQueue: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Occupy acme's single in-flight slot and its one queue seat directly
	// via the gate (deterministic, no timing), then submit as acme.
	if err := s.gate.acquire(context.Background(), "acme", nil); err != nil {
		t.Fatal(err)
	}
	parked := parkWaiter(t, s.gate, "acme")

	p := testProblem(t, 8, 8, 1.2, 21)
	_, err = s.Submit(WithTenant(context.Background(), "acme"), p, nil)
	if !errors.Is(err, ErrTenantQuota) || !errors.Is(err, sea.ErrSaturated) {
		t.Fatalf("acme submit: %v, want ErrTenantQuota wrapping sea.ErrSaturated", err)
	}

	// A different tenant's submission sails through.
	if _, err := s.Submit(WithTenant(context.Background(), "zenith"), p, nil); err != nil {
		t.Fatalf("zenith submit: %v", err)
	}

	s.gate.release("acme")
	if err := <-parked; err != nil {
		t.Fatalf("parked acme waiter: %v", err)
	}
	s.gate.release("acme")
}
