package seahttp

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	"sea/internal/matio"
	"sea/pkg/sea"
	"sea/pkg/sea/serve"
)

// sequence is one open temporal-sequence session plus the request
// parameters it was created with (echoed back by GET).
type sequence struct {
	id        string
	session   *serve.Session
	objective string
	precond   string
	warmDuals bool
}

// sequenceStore tracks open sequence sessions by id, bounded in count.
// Unlike jobs, sequences have no TTL: a sequence is a live resource the
// client closes explicitly (or the handler closes on shutdown).
type sequenceStore struct {
	max int

	mu   sync.Mutex
	seqs map[string]*sequence
	next atomic.Uint64
}

func newSequenceStore(max int) *sequenceStore {
	return &sequenceStore{max: max, seqs: make(map[string]*sequence)}
}

func (s *sequenceStore) add(seq *sequence) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.seqs) >= s.max {
		return "", fmt.Errorf("%w: %d sequences open (limit %d)", sea.ErrSaturated, len(s.seqs), s.max)
	}
	seq.id = fmt.Sprintf("q%06d", s.next.Add(1))
	s.seqs[seq.id] = seq
	return seq.id, nil
}

func (s *sequenceStore) get(id string) *sequence {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seqs[id]
}

func (s *sequenceStore) remove(id string) *sequence {
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := s.seqs[id]
	delete(s.seqs, id)
	return seq
}

func (s *sequenceStore) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.seqs)
}

// closeAll closes every open session; used by Handler.Close.
func (s *sequenceStore) closeAll() {
	s.mu.Lock()
	seqs := make([]*sequence, 0, len(s.seqs))
	for id, seq := range s.seqs {
		seqs = append(seqs, seq)
		delete(s.seqs, id)
	}
	s.mu.Unlock()
	for _, seq := range seqs {
		_ = seq.session.Close()
	}
}

// sequenceRequest is the POST /v1/sequences body. All fields are optional;
// the zero value opens a session on the backend's template options.
type sequenceRequest struct {
	// Objective selects the family every period minimizes ("quadratic",
	// "entropy"/"kl"; default the backend's template).
	Objective string `json:"objective,omitempty"`
	// Precondition selects the preconditioning stage ("none", "scale",
	// "sinkhorn"/"isp"; default the backend's template).
	Precondition string `json:"precondition,omitempty"`
	// WarmDuals chains each period's converged duals into the next solve.
	// Off by default: the default sequence is bit-identical to solving every
	// period cold.
	WarmDuals bool `json:"warm_duals,omitempty"`
}

// sequenceView is the GET /v1/sequences/{id} document (and the creation
// response, minus the endpoints).
type sequenceView struct {
	ID           string `json:"id"`
	Solve        string `json:"solve,omitempty"`
	Objective    string `json:"objective"`
	Precondition string `json:"precondition,omitempty"`
	WarmDuals    bool   `json:"warm_duals"`
	Periods      int    `json:"periods"`
	Iterations   int    `json:"total_iterations"`
	M            int    `json:"m,omitempty"`
	N            int    `json:"n,omitempty"`
}

func wireSequence(seq *sequence, withEndpoints bool) sequenceView {
	st := seq.session.Stats()
	v := sequenceView{
		ID:           seq.id,
		Objective:    seq.objective,
		Precondition: seq.precond,
		WarmDuals:    seq.warmDuals,
		Periods:      st.Periods,
		Iterations:   st.TotalIterations,
		M:            st.M,
		N:            st.N,
	}
	if withEndpoints {
		v.Solve = "/v1/sequences/" + seq.id + "/solve"
	}
	return v
}

// handleCreateSequence opens a sequence session. The body (optional)
// selects the objective family, preconditioning, and dual warm starts;
// unknown values fail with 400 before a session is opened.
func (h *Handler) handleCreateSequence(w http.ResponseWriter, r *http.Request) {
	var req sequenceRequest
	body := http.MaxBytesReader(w, r.Body, h.cfg.MaxBodyBytes)
	// An empty body is a valid zero-value request.
	if err := json.NewDecoder(body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, fmt.Errorf("%w: %v", errBadRequest, err))
		return
	}
	var overrides []serve.Override
	obj, err := sea.ParseObjective(req.Objective)
	if err != nil {
		writeError(w, fmt.Errorf("%w: %v", errBadRequest, err))
		return
	}
	if req.Objective != "" {
		overrides = append(overrides, serve.WithObjective(obj))
	}
	if req.Precondition != "" {
		pc, err := sea.ParsePrecond(req.Precondition)
		if err != nil {
			writeError(w, fmt.Errorf("%w: %v", errBadRequest, err))
			return
		}
		overrides = append(overrides, serve.WithPrecond(pc))
	}
	session, err := h.backend.NewSession(serve.SessionConfig{
		Options:   h.backend.RequestOptions(overrides...),
		WarmDuals: req.WarmDuals,
	})
	if err != nil {
		writeError(w, err)
		return
	}
	seq := &sequence{
		session:   session,
		objective: obj.String(),
		precond:   req.Precondition,
		warmDuals: req.WarmDuals,
	}
	if _, err := h.seqs.add(seq); err != nil {
		_ = session.Close()
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, wireSequence(seq, true))
}

// handleSequenceSolve runs the next period of a sequence: body = problem
// JSON (its objective attribute, if any, is ignored — the sequence pinned
// the family at creation), response = solution JSON, exactly as /v1/solve.
func (h *Handler) handleSequenceSolve(w http.ResponseWriter, r *http.Request) {
	seq := h.seqs.get(r.PathValue("id"))
	if seq == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Code: "unknown-sequence", Error: "seahttp: unknown sequence id"})
		return
	}
	p, _, _, err := h.readProblem(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel, err := requestContext(r.Context(), r)
	if err != nil {
		writeError(w, err)
		return
	}
	defer cancel()
	sol, err := seq.session.Solve(ctx, p)
	if err != nil && !(errors.Is(err, sea.ErrNotConverged) && sol != nil) {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Sea-Status", sol.Status.String())
	_ = json.NewEncoder(w).Encode(matio.SolutionFromCore(sol))
}

// handleSequenceStats reports a sequence's parameters and progress.
func (h *Handler) handleSequenceStats(w http.ResponseWriter, r *http.Request) {
	seq := h.seqs.get(r.PathValue("id"))
	if seq == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Code: "unknown-sequence", Error: "seahttp: unknown sequence id"})
		return
	}
	writeJSON(w, http.StatusOK, wireSequence(seq, true))
}

// handleCloseSequence closes a sequence and releases its chained state.
func (h *Handler) handleCloseSequence(w http.ResponseWriter, r *http.Request) {
	seq := h.seqs.remove(r.PathValue("id"))
	if seq == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Code: "unknown-sequence", Error: "seahttp: unknown sequence id"})
		return
	}
	_ = seq.session.Close()
	writeJSON(w, http.StatusOK, map[string]string{"id": seq.id, "state": "closed"})
}
