// Package seahttp is the HTTP/JSON transport over the serving layer: a
// net/http Handler exposing a serve.Server or serve.ShardedServer as a
// network service. The wire formats are internal/matio's problem and
// solution containers — the same JSON cmd/seasolve reads and writes — so a
// problem file solves identically from the CLI and over the network.
//
// Endpoints (all under /v1):
//
//	POST /v1/solve            solve synchronously; body = problem JSON,
//	                          response = solution JSON
//	POST /v1/jobs             submit asynchronously; returns a job id
//	GET  /v1/jobs/{id}        poll a job's state (and result when done)
//	GET  /v1/jobs/{id}/trace  stream the job's per-iteration trace events
//	                          as chunked NDJSON while it solves
//	DELETE /v1/jobs/{id}      cancel a running job
//	GET  /v1/stats            the backend's Stats snapshot (per shard too,
//	                          for sharded backends)
//	GET  /v1/healthz          liveness probe
//
// Failures map to typed statuses (see docs/API.md): invalid problems are
// 400, infeasible ones 422, admission-control rejections 429 (with a
// Retry-After), a closed server 503, and a request deadline 504. A solve
// that exhausts its iteration limit is not a transport failure: it returns
// 200 with the best iterate and "status": "max-iterations", mirroring the
// facade's ErrNotConverged contract.
//
// The requesting tenant is taken from the X-Sea-Tenant header and threaded
// to the backend's per-tenant quotas (serve.WithTenant); a per-request
// solve budget can be set with the ?timeout= query parameter.
package seahttp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"sea/internal/matio"
	"sea/pkg/sea"
	"sea/pkg/sea/serve"
)

// Backend is the serving surface the transport fronts. Both *serve.Server
// and *serve.ShardedServer implement it. The Handler does not own the
// backend: Close the Handler first (drains jobs and streams), then the
// backend.
type Backend interface {
	Submit(ctx context.Context, p *sea.Problem, opts *sea.Options) (*sea.Solution, error)
	// SubmitTraced solves with per-request options (nil = the backend's
	// configured template) plus a trace observer — the streamed-trace job
	// path.
	SubmitTraced(ctx context.Context, p *sea.Problem, opts *sea.Options, obs sea.Trace) (*sea.Solution, error)
	// RequestOptions resolves per-request overrides (preconditioning,
	// objective family) against the backend's configured template; nil means
	// the template already matches and the warm zero-alloc submit path
	// applies.
	RequestOptions(overrides ...serve.Override) *sea.Options
	// NewSession opens a temporal-sequence session: an ordered stream of
	// same-shape problems chaining warm state period to period. The /v1
	// sequences endpoints ride this.
	NewSession(cfg serve.SessionConfig) (*serve.Session, error)
	Stats() serve.Stats
}

// ShardedBackend is the optional per-shard view; *serve.ShardedServer
// implements it, and /v1/stats includes the per-shard breakdown when the
// backend does.
type ShardedBackend interface {
	ShardStats() []serve.Stats
	NumShards() int
}

// Config parameterizes a Handler. The zero value is a working default.
type Config struct {
	// MaxBodyBytes caps a request body (default 32 MiB). Oversized bodies
	// fail with 413 before the decoder sees them.
	MaxBodyBytes int64
	// MaxJobs caps concurrently tracked asynchronous jobs, running and
	// retained (default 1024). Beyond it, POST /v1/jobs answers 429.
	MaxJobs int
	// JobTTL is how long a finished job's result stays pollable (default
	// 10 minutes); expired jobs are purged lazily on job-store access.
	JobTTL time.Duration
	// TraceBuffer is the per-job backlog of trace events replayed to
	// subscribers that attach mid-solve (default 1024). Older events are
	// dropped oldest-first and reported in the stream's closing summary.
	TraceBuffer int
	// MaxSequences caps concurrently open sequence sessions (default 64).
	// Beyond it, POST /v1/sequences answers 429.
	MaxSequences int
}

func (c Config) withDefaults() Config {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.JobTTL <= 0 {
		c.JobTTL = 10 * time.Minute
	}
	if c.TraceBuffer <= 0 {
		c.TraceBuffer = 1024
	}
	if c.MaxSequences <= 0 {
		c.MaxSequences = 64
	}
	return c
}

// Handler serves the /v1 API over a Backend. Create with New, then mount it
// on any net/http server; Close it before closing the backend.
type Handler struct {
	backend Backend
	cfg     Config
	mux     *http.ServeMux
	jobs    *jobStore
	seqs    *sequenceStore

	// baseCtx parents every asynchronous job's context, so Close cancels
	// all running jobs at once.
	baseCtx context.Context
	cancel  context.CancelFunc

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup // running jobs and open trace streams
}

// New returns a Handler serving the /v1 API over b.
func New(b Backend, cfg Config) *Handler {
	h := &Handler{
		backend: b,
		cfg:     cfg.withDefaults(),
		mux:     http.NewServeMux(),
	}
	h.baseCtx, h.cancel = context.WithCancel(context.Background())
	h.jobs = newJobStore(h.cfg.MaxJobs, h.cfg.JobTTL)
	h.seqs = newSequenceStore(h.cfg.MaxSequences)
	h.mux.HandleFunc("POST /v1/solve", h.handleSolve)
	h.mux.HandleFunc("POST /v1/jobs", h.handleSubmitJob)
	h.mux.HandleFunc("GET /v1/jobs/{id}", h.handlePollJob)
	h.mux.HandleFunc("DELETE /v1/jobs/{id}", h.handleCancelJob)
	h.mux.HandleFunc("GET /v1/jobs/{id}/trace", h.handleTraceStream)
	h.mux.HandleFunc("POST /v1/sequences", h.handleCreateSequence)
	h.mux.HandleFunc("POST /v1/sequences/{id}/solve", h.handleSequenceSolve)
	h.mux.HandleFunc("GET /v1/sequences/{id}", h.handleSequenceStats)
	h.mux.HandleFunc("DELETE /v1/sequences/{id}", h.handleCloseSequence)
	h.mux.HandleFunc("GET /v1/stats", h.handleStats)
	h.mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.isClosed() {
		writeError(w, serve.ErrClosed)
		return
	}
	h.mux.ServeHTTP(w, r)
}

// Close stops accepting requests, cancels every running job, and waits for
// job goroutines and open trace streams to drain. It is idempotent and does
// not close the Backend (the caller owns it).
func (h *Handler) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	h.mu.Unlock()
	h.cancel()
	h.wg.Wait()
	// Sequence sessions close after the drain barrier: a session Solve in
	// flight holds the session's serialization token, and Close waits on it.
	h.seqs.closeAll()
}

func (h *Handler) isClosed() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.closed
}

// track registers one unit of background work (a job solve or an open
// stream) against Close's drain barrier; it fails once Close has begun.
func (h *Handler) track() (release func(), ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, false
	}
	h.wg.Add(1)
	return h.wg.Done, true
}

// readProblem decodes and validates the request body's problem JSON. The
// body's optional "objective" attribute is returned alongside (hasObj
// reports whether it was present); an unknown family fails here with 400.
func (h *Handler) readProblem(w http.ResponseWriter, r *http.Request) (p *sea.Problem, obj sea.Objective, hasObj bool, err error) {
	body := http.MaxBytesReader(w, r.Body, h.cfg.MaxBodyBytes)
	jp, err := matio.DecodeProblem(body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, 0, false, fmt.Errorf("%w: body exceeds %d bytes", errBodyTooLarge, tooLarge.Limit)
		}
		return nil, 0, false, fmt.Errorf("%w: %w", sea.ErrInvalidProblem, err)
	}
	obj, err = jp.ObjectiveKind()
	if err != nil {
		return nil, 0, false, fmt.Errorf("%w: %w", sea.ErrInvalidProblem, err)
	}
	d, err := jp.ToCore()
	if err != nil {
		return nil, 0, false, fmt.Errorf("%w: %w", sea.ErrInvalidProblem, err)
	}
	p, err = sea.NewDiagonal(d)
	return p, obj, jp.Objective != "", err
}

// requestContext derives the solve context: the caller's tenant header and
// optional ?timeout= budget applied to ctx.
func requestContext(ctx context.Context, r *http.Request) (context.Context, context.CancelFunc, error) {
	if tenant := r.Header.Get("X-Sea-Tenant"); tenant != "" {
		ctx = serve.WithTenant(ctx, tenant)
	}
	if v := r.URL.Query().Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return nil, nil, fmt.Errorf("%w: invalid timeout %q", errBadRequest, v)
		}
		ctx, cancel := context.WithTimeout(ctx, d)
		return ctx, cancel, nil
	}
	return ctx, func() {}, nil
}

// requestOverrides parses the per-request override parameters —
// ?precondition= and ?objective= — into serve overrides. The body's
// objective attribute participates too; the query parameter wins when both
// are present. Bad values fail with 400 before the backend is consulted.
func requestOverrides(r *http.Request, bodyObj sea.Objective, hasBodyObj bool) ([]serve.Override, error) {
	var overrides []serve.Override
	if v := r.URL.Query().Get("precondition"); v != "" {
		pc, err := sea.ParsePrecond(v)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errBadRequest, err)
		}
		overrides = append(overrides, serve.WithPrecond(pc))
	}
	if v := r.URL.Query().Get("objective"); v != "" {
		obj, err := sea.ParseObjective(v)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errBadRequest, err)
		}
		overrides = append(overrides, serve.WithObjective(obj))
	} else if hasBodyObj {
		overrides = append(overrides, serve.WithObjective(bodyObj))
	}
	return overrides, nil
}

// requestOptions resolves the request's override parameters against the
// backend's option template: absent or matching values return nil (the
// warm zero-alloc submit path), anything else a one-request option clone.
func (h *Handler) requestOptions(r *http.Request, bodyObj sea.Objective, hasBodyObj bool) (*sea.Options, error) {
	overrides, err := requestOverrides(r, bodyObj, hasBodyObj)
	if err != nil {
		return nil, err
	}
	if len(overrides) == 0 {
		return nil, nil
	}
	return h.backend.RequestOptions(overrides...), nil
}

// handleSolve is the synchronous path: decode, submit, encode. It is the
// hot endpoint the load generator drives; everything per-request lives on
// the stack or in the decoder.
func (h *Handler) handleSolve(w http.ResponseWriter, r *http.Request) {
	p, bodyObj, hasBodyObj, err := h.readProblem(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	opts, err := h.requestOptions(r, bodyObj, hasBodyObj)
	if err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel, err := requestContext(r.Context(), r)
	if err != nil {
		writeError(w, err)
		return
	}
	defer cancel()
	sol, err := h.backend.Submit(ctx, p, opts)
	// Iteration-limit exhaustion still carries the best iterate: per the
	// facade contract that is a result, not a transport failure.
	if err != nil && !(errors.Is(err, sea.ErrNotConverged) && sol != nil) {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Sea-Status", sol.Status.String())
	enc := json.NewEncoder(w)
	if err := enc.Encode(matio.SolutionFromCore(sol)); err != nil {
		// Too late for a status rewrite; the client sees the truncation.
		return
	}
}

// handleStats renders the backend's merged snapshot, plus the per-shard
// breakdown for sharded backends.
func (h *Handler) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{Stats: wireStats(h.backend.Stats())}
	if sb, ok := h.backend.(ShardedBackend); ok {
		resp.Shards = make([]statsJSON, 0, sb.NumShards())
		for _, st := range sb.ShardStats() {
			resp.Shards = append(resp.Shards, wireStats(st))
		}
	}
	resp.Jobs = h.jobs.counts()
	resp.Sequences = h.seqs.count()
	writeJSON(w, http.StatusOK, resp)
}
