package seahttp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"sea/internal/matio"
	"sea/pkg/sea"
	"sea/pkg/sea/serve"
)

// jobState is a job's lifecycle phase on the wire.
const (
	jobRunning = "running"
	jobDone    = "done"
	jobFailed  = "failed"
)

// job is one asynchronous solve: its cancellable context, the bounded
// backlog of trace events for late stream subscribers, and the result once
// finished. All mutable fields are guarded by mu; doneCh closes exactly
// once, when the solve returns.
type job struct {
	id     string
	cancel context.CancelFunc
	doneCh chan struct{}

	mu       sync.Mutex
	events   []sea.TraceEvent // backlog ring, capped at the handler's TraceBuffer
	dropped  int              // events aged out of the backlog
	subs     map[chan sea.TraceEvent]struct{}
	state    string
	sol      *sea.Solution
	err      error
	finished time.Time
	buffer   int
}

// ObserveIteration implements the trace observer attached to the job's
// solve: append to the backlog (oldest-first eviction beyond the buffer)
// and fan out to live subscribers. A slow subscriber's channel may be full;
// the event is then dropped for that subscriber only — streaming is
// best-effort, the backlog is the durable record.
func (j *job) ObserveIteration(e sea.TraceEvent) {
	j.mu.Lock()
	if len(j.events) == j.buffer {
		copy(j.events, j.events[1:])
		j.events[len(j.events)-1] = e
		j.dropped++
	} else {
		j.events = append(j.events, e)
	}
	for ch := range j.subs {
		select {
		case ch <- e:
		default:
		}
	}
	j.mu.Unlock()
}

// finish records the solve's outcome and wakes pollers and streams.
func (j *job) finish(sol *sea.Solution, err error) {
	j.mu.Lock()
	j.sol = sol
	j.err = err
	if err != nil && !(errors.Is(err, sea.ErrNotConverged) && sol != nil) {
		j.state = jobFailed
	} else {
		j.state = jobDone
	}
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.doneCh)
}

// subscribe registers a trace stream: it returns the backlog so far and a
// channel receiving subsequent events. The channel's buffer absorbs bursts;
// see ObserveIteration for the overflow contract.
func (j *job) subscribe() (backlog []sea.TraceEvent, ch chan sea.TraceEvent) {
	ch = make(chan sea.TraceEvent, 256)
	j.mu.Lock()
	backlog = append([]sea.TraceEvent(nil), j.events...)
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return backlog, ch
}

func (j *job) unsubscribe(ch chan sea.TraceEvent) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}

// jobStore tracks live jobs by id, bounded in count, with lazy TTL purge of
// finished entries.
type jobStore struct {
	max int
	ttl time.Duration

	mu   sync.Mutex
	jobs map[string]*job
	seq  atomic.Uint64
}

func newJobStore(max int, ttl time.Duration) *jobStore {
	return &jobStore{max: max, ttl: ttl, jobs: make(map[string]*job)}
}

// add registers a new job, enforcing the live-job cap after purging
// expired results.
func (s *jobStore) add(cancel context.CancelFunc, buffer int) (*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.purgeLocked()
	if len(s.jobs) >= s.max {
		return nil, fmt.Errorf("%w: %d jobs tracked (limit %d)", sea.ErrSaturated, len(s.jobs), s.max)
	}
	j := &job{
		id:     fmt.Sprintf("j%06d", s.seq.Add(1)),
		cancel: cancel,
		doneCh: make(chan struct{}),
		subs:   make(map[chan sea.TraceEvent]struct{}),
		state:  jobRunning,
		buffer: buffer,
	}
	s.jobs[j.id] = j
	return j, nil
}

func (s *jobStore) get(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.purgeLocked()
	return s.jobs[id]
}

// purgeLocked drops finished jobs older than the TTL. Caller holds mu.
func (s *jobStore) purgeLocked() {
	if s.ttl <= 0 {
		return
	}
	cutoff := time.Now().Add(-s.ttl)
	for id, j := range s.jobs {
		j.mu.Lock()
		expired := j.state != jobRunning && j.finished.Before(cutoff)
		j.mu.Unlock()
		if expired {
			delete(s.jobs, id)
		}
	}
}

// jobCounts is the job-store gauge pair reported by /v1/stats.
type jobCounts struct {
	Running  int `json:"running"`
	Retained int `json:"retained"`
}

func (s *jobStore) counts() jobCounts {
	s.mu.Lock()
	defer s.mu.Unlock()
	var c jobCounts
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.state == jobRunning {
			c.Running++
		} else {
			c.Retained++
		}
		j.mu.Unlock()
	}
	return c
}

// jobRef is the POST /v1/jobs response: the id plus the derived endpoints.
type jobRef struct {
	ID    string `json:"id"`
	Poll  string `json:"poll"`
	Trace string `json:"trace"`
}

// jobView is the GET /v1/jobs/{id} response.
type jobView struct {
	ID       string          `json:"id"`
	State    string          `json:"state"`
	Events   int             `json:"trace_events"`
	Solution *matio.Solution `json:"solution,omitempty"`
	Error    string          `json:"error,omitempty"`
	Code     string          `json:"code,omitempty"`
}

// handleSubmitJob starts an asynchronous solve: the problem decodes and
// validates synchronously (so malformed requests fail with 400 here, not in
// a poll), then the solve runs on the handler's base context — detached
// from the HTTP request, cancelled by DELETE or Close.
func (h *Handler) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	p, bodyObj, hasBodyObj, err := h.readProblem(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	opts, err := h.requestOptions(r, bodyObj, hasBodyObj)
	if err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel, err := requestContext(h.baseCtx, r)
	if err != nil {
		writeError(w, err)
		return
	}
	j, err := h.jobs.add(cancel, h.cfg.TraceBuffer)
	if err != nil {
		cancel()
		writeError(w, err)
		return
	}
	release, ok := h.track()
	if !ok {
		cancel()
		j.finish(nil, serve.ErrClosed)
		writeError(w, serve.ErrClosed)
		return
	}
	go func() {
		defer release()
		defer cancel()
		sol, err := h.backend.SubmitTraced(ctx, p, opts, j)
		j.finish(sol, err)
	}()
	writeJSON(w, http.StatusAccepted, jobRef{
		ID:    j.id,
		Poll:  "/v1/jobs/" + j.id,
		Trace: "/v1/jobs/" + j.id + "/trace",
	})
}

// handlePollJob reports a job's state and, once finished, its result.
func (h *Handler) handlePollJob(w http.ResponseWriter, r *http.Request) {
	j := h.jobs.get(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Code: "unknown-job", Error: "seahttp: unknown job id"})
		return
	}
	j.mu.Lock()
	view := jobView{ID: j.id, State: j.state, Events: len(j.events) + j.dropped}
	if j.sol != nil {
		view.Solution = matio.SolutionFromCore(j.sol)
	}
	if j.err != nil && j.state == jobFailed {
		_, view.Code = errorStatus(j.err)
		view.Error = j.err.Error()
	}
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}

// handleCancelJob cancels a running job's context; the job transitions via
// the solve's own cancellation path (last iterate, StatusCancelled).
func (h *Handler) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j := h.jobs.get(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Code: "unknown-job", Error: "seahttp: unknown job id"})
		return
	}
	j.cancel()
	writeJSON(w, http.StatusAccepted, map[string]string{"id": j.id, "state": "cancelling"})
}

// traceSummary is the stream's closing line, after the last event.
type traceSummary struct {
	Done    bool   `json:"done"`
	State   string `json:"state"`
	Dropped int    `json:"dropped_events,omitempty"`
}

// handleTraceStream streams a job's trace events as chunked NDJSON: first
// the backlog, then live events as the solver produces them, then a closing
// summary line when the job finishes. The stream ends early if the client
// disconnects or the handler closes; under Close the stream is drained and
// terminated before Close returns.
func (h *Handler) handleTraceStream(w http.ResponseWriter, r *http.Request) {
	j := h.jobs.get(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Code: "unknown-job", Error: "seahttp: unknown job id"})
		return
	}
	release, ok := h.track()
	if !ok {
		writeError(w, serve.ErrClosed)
		return
	}
	defer release()

	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no") // proxies: do not buffer the stream
	w.WriteHeader(http.StatusOK)

	backlog, ch := j.subscribe()
	defer j.unsubscribe(ch)
	write := func(v any) bool {
		if err := json.NewEncoder(w).Encode(v); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	for _, e := range backlog {
		if !write(wireTraceEvent(e)) {
			return
		}
	}
	for {
		select {
		case e := <-ch:
			if !write(wireTraceEvent(e)) {
				return
			}
		case <-j.doneCh:
			// Drain events that raced the finish, then close the stream.
			for {
				select {
				case e := <-ch:
					if !write(wireTraceEvent(e)) {
						return
					}
					continue
				default:
				}
				break
			}
			j.mu.Lock()
			sum := traceSummary{Done: true, State: j.state, Dropped: j.dropped}
			j.mu.Unlock()
			write(sum)
			return
		case <-r.Context().Done():
			return
		case <-h.baseCtx.Done():
			// Handler closing: the job's context is cancelled too, so its
			// finish is imminent; end the stream now so Close can drain.
			write(traceSummary{Done: false, State: jobRunning})
			return
		}
	}
}
