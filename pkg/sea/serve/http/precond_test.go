package seahttp

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"sea/internal/matio"
	"sea/internal/problems"
	"sea/pkg/sea/serve"
)

// TestSolvePrecondQueryParam: ?precondition= on the synchronous path must
// run the preconditioning stage (visible as precond_ns on the wire), and an
// unknown value must fail with 400 before any solve.
func TestSolvePrecondQueryParam(t *testing.T) {
	base, _, _, _ := newStack(t, serve.Config{MaxInFlight: 2}, Config{})
	body := problemBody(t, problems.RandomSAM(24, 5))

	resp, err := http.Post(base+"/v1/solve?precondition=scale", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var sol matio.Solution
	if err := json.NewDecoder(resp.Body).Decode(&sol); err != nil {
		t.Fatal(err)
	}
	if sol.Status != "converged" {
		t.Fatalf("status %q", sol.Status)
	}
	if sol.PrecondNs <= 0 {
		t.Fatalf("precond_ns = %d, want > 0", sol.PrecondNs)
	}

	bad, err := http.Post(base+"/v1/solve?precondition=bogus", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown precondition: status %d, want 400", bad.StatusCode)
	}
}

// TestJobPrecondQueryParam: the asynchronous path honors the same query
// parameter; the polled result carries the stage's wall time.
func TestJobPrecondQueryParam(t *testing.T) {
	base, _, _, _ := newStack(t, serve.Config{MaxInFlight: 2}, Config{})
	body := problemBody(t, problems.RandomSAM(24, 6))

	resp, err := http.Post(base+"/v1/jobs?precondition=scale", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ref struct {
		ID   string `json:"id"`
		Poll string `json:"poll"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ref); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		poll, err := http.Get(base + ref.Poll)
		if err != nil {
			t.Fatal(err)
		}
		var view struct {
			State    string          `json:"state"`
			Solution *matio.Solution `json:"solution"`
		}
		err = json.NewDecoder(poll.Body).Decode(&view)
		poll.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if view.State == "done" {
			if view.Solution == nil || view.Solution.PrecondNs <= 0 {
				t.Fatalf("job solution = %+v, want precond_ns > 0", view.Solution)
			}
			return
		}
		if view.State == "failed" {
			t.Fatalf("job failed: %+v", view)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %q at deadline", view.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
