package seahttp

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"time"

	"sea/pkg/sea"
	"sea/pkg/sea/serve"
)

// Transport-local failure sentinels for conditions that arise before the
// backend is consulted.
var (
	errBadRequest   = errors.New("seahttp: bad request")
	errBodyTooLarge = errors.New("seahttp: request body too large")
)

// StatusClientClosedRequest is the non-standard (nginx-convention) status
// reported when the client abandoned the request before the solve finished.
const StatusClientClosedRequest = 499

// errorBody is the JSON error envelope: a stable machine-readable code
// (matching the error-to-status table in docs/API.md) plus the full error
// text.
type errorBody struct {
	Code  string `json:"code"`
	Error string `json:"error"`
}

// errorStatus maps a failure to its HTTP status and wire code. Order
// matters where sentinels wrap each other: infeasibility wraps
// ErrInvalidProblem, and tenant-quota rejections wrap sea.ErrSaturated.
func errorStatus(err error) (int, string) {
	switch {
	case errors.Is(err, serve.ErrClosed):
		return http.StatusServiceUnavailable, "closed"
	case errors.Is(err, serve.ErrTenantQuota):
		return http.StatusTooManyRequests, "tenant-quota"
	case errors.Is(err, sea.ErrSaturated):
		return http.StatusTooManyRequests, "saturated"
	case errors.Is(err, sea.ErrSessionClosed):
		return http.StatusConflict, "sequence-closed"
	case errors.Is(err, sea.ErrInfeasible):
		return http.StatusUnprocessableEntity, "infeasible"
	case errors.Is(err, sea.ErrInvalidProblem):
		return http.StatusBadRequest, "invalid-problem"
	case errors.Is(err, sea.ErrUnknownSolver):
		return http.StatusBadRequest, "unknown-solver"
	case errors.Is(err, errBodyTooLarge):
		return http.StatusRequestEntityTooLarge, "body-too-large"
	case errors.Is(err, errBadRequest):
		return http.StatusBadRequest, "bad-request"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline"
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest, "cancelled"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// writeError renders err as its mapped status and JSON envelope. Admission
// rejections (429) advertise an immediate retry: saturation is transient by
// construction — it clears as soon as a slot frees.
func writeError(w http.ResponseWriter, err error) {
	status, code := errorStatus(err)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, errorBody{Code: code, Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// latencyJSON is a metrics.LatencySnapshot on the wire, in milliseconds.
type latencyJSON struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// shapeJSON is one shape pool's snapshot on the wire.
type shapeJSON struct {
	M       int    `json:"m"`
	N       int    `json:"n"`
	General bool   `json:"general,omitempty"`
	Arenas  int    `json:"arenas"`
	Idle    int    `json:"idle"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Evicted uint64 `json:"evicted"`
}

// statsJSON is a serve.Stats snapshot on the wire.
type statsJSON struct {
	Submitted     uint64      `json:"submitted"`
	Completed     uint64      `json:"completed"`
	Failed        uint64      `json:"failed"`
	Rejected      uint64      `json:"rejected"`
	InFlight      int64       `json:"in_flight"`
	PeakInFlight  int64       `json:"peak_in_flight"`
	Queued        int64       `json:"queued"`
	PeakQueued    int64       `json:"peak_queued"`
	ShapeHitRate  float64     `json:"shape_hit_rate"`
	ArenasEvicted uint64      `json:"arenas_evicted"`
	QueueWait     latencyJSON `json:"queue_wait"`
	Solve         latencyJSON `json:"solve"`
	Iterations    int64       `json:"solver_iterations"`
	Shapes        []shapeJSON `json:"shapes,omitempty"`
}

// statsResponse is the GET /v1/stats document.
type statsResponse struct {
	Stats     statsJSON   `json:"stats"`
	Shards    []statsJSON `json:"shards,omitempty"`
	Jobs      jobCounts   `json:"jobs"`
	Sequences int         `json:"sequences"`
}

func wireStats(st serve.Stats) statsJSON {
	out := statsJSON{
		Submitted:     st.Submitted,
		Completed:     st.Completed,
		Failed:        st.Failed,
		Rejected:      st.Rejected,
		InFlight:      st.InFlight,
		PeakInFlight:  st.PeakInFlight,
		Queued:        st.Queued,
		PeakQueued:    st.PeakQueued,
		ShapeHitRate:  st.HitRate(),
		ArenasEvicted: st.ArenasEvicted,
		QueueWait:     latencyJSON{Count: st.QueueWait.Count, MeanMs: ms(st.QueueWait.Mean), MaxMs: ms(st.QueueWait.Max)},
		Solve:         latencyJSON{Count: st.Solve.Count, MeanMs: ms(st.Solve.Mean), MaxMs: ms(st.Solve.Max)},
		Iterations:    st.Solver.Iterations,
	}
	for _, sh := range st.Shapes {
		out.Shapes = append(out.Shapes, shapeJSON{
			M: sh.M, N: sh.N, General: sh.General,
			Arenas: sh.Arenas, Idle: sh.Idle,
			Hits: sh.Hits, Misses: sh.Misses, Evicted: sh.Evicted,
		})
	}
	return out
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// traceEventJSON is one solver iteration on the trace stream (NDJSON, one
// object per line).
type traceEventJSON struct {
	Iteration int     `json:"iteration"`
	Inner     int     `json:"inner,omitempty"`
	Checked   bool    `json:"checked"`
	Residual  float64 `json:"residual,omitempty"` // omitted when unchecked or non-finite
	RowNs     int64   `json:"row_ns"`
	ColNs     int64   `json:"col_ns"`
	CheckNs   int64   `json:"check_ns,omitempty"`
	Equil     int64   `json:"equilibrations"`
	Ops       int64   `json:"ops"`
}

func wireTraceEvent(e sea.TraceEvent) traceEventJSON {
	out := traceEventJSON{
		Iteration: e.Iteration,
		Inner:     e.Inner,
		Checked:   e.Checked,
		RowNs:     int64(e.RowPhase),
		ColNs:     int64(e.ColPhase),
		CheckNs:   int64(e.CheckPhase),
		Equil:     e.Equilibrations,
		Ops:       e.Ops,
	}
	// JSON has no encoding for non-finite numbers and encoding/json fails
	// the whole Encode on one — which, mid-stream, would truncate the NDJSON
	// after the status line. Early iterations legitimately report an
	// infinite residual (nothing measured yet), so omit the field then.
	if e.Checked && !math.IsInf(e.Residual, 0) && !math.IsNaN(e.Residual) {
		out.Residual = e.Residual
	}
	return out
}
