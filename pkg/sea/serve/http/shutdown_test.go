package seahttp

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"sea/internal/matio"
	"sea/internal/problems"
	"sea/internal/testutil"
	"sea/pkg/sea"
	"sea/pkg/sea/serve"
)

// newStack starts a real Server behind a Handler on a loopback listener.
// The caller shuts the pieces down itself when the test exercises shutdown
// ordering; the registered cleanups are idempotent backstops.
func newStack(t *testing.T, cfg serve.Config, hcfg Config) (base string, srv *serve.Server, h *Handler, httpSrv *http.Server) {
	t.Helper()
	srv, err := serve.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h = New(srv, hcfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	httpSrv = &http.Server{Handler: h}
	go httpSrv.Serve(ln)
	t.Cleanup(func() {
		httpSrv.Close()
		h.Close()
		srv.Close()
	})
	return "http://" + ln.Addr().String(), srv, h, httpSrv
}

// slowOptions returns solve options that run effectively forever: an
// unreachable tolerance under the max-|Δ| criterion with an enormous
// iteration budget, so the solve ends only by cancellation (or by Δ
// underflowing to zero after far longer than any test step here).
func slowOptions() *sea.Options {
	o := sea.DefaultOptions()
	o.Criterion = sea.MaxAbsDelta
	o.Epsilon = 1e-300
	o.MaxIterations = 1 << 40
	return o
}

func problemBody(t *testing.T, d *sea.DiagonalProblem) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := matio.WriteProblemJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCloseDrainsInFlightTraceStream: Close while a chunked trace response
// is mid-stream must cancel the job, terminate the stream, and wait for
// both the job goroutine and the stream handler — with nothing left running
// afterwards. This is the shutdown path a seaserved SIGTERM takes.
func TestCloseDrainsInFlightTraceStream(t *testing.T) {
	testutil.CheckGoroutines(t)
	base, srv, h, httpSrv := newStack(t,
		serve.Config{Solver: "sea", MaxInFlight: 1, MaxQueue: 2, Options: slowOptions()},
		Config{})

	var job struct {
		ID    string `json:"id"`
		Trace string `json:"trace"`
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		bytes.NewReader(problemBody(t, problems.RandomSAM(48, 9))))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}

	// Attach to the stream and block until the first event line arrives, so
	// Close provably races an in-flight chunked response.
	stream, err := http.Get(base + job.Trace)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	sc := bufio.NewScanner(stream.Body)
	if !sc.Scan() {
		t.Fatalf("trace stream ended before any event: %v", sc.Err())
	}
	firstLine := sc.Text()
	if !strings.Contains(firstLine, `"iteration"`) {
		t.Fatalf("first stream line is not a trace event: %s", firstLine)
	}

	// Close with the stream open. It must return on its own (the drain
	// barrier), within the watchdog.
	closed := make(chan struct{})
	go func() {
		h.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("Handler.Close did not drain the in-flight trace stream")
	}

	// The server side has terminated the stream; reading to EOF must finish
	// and the stream's tail must be intact NDJSON ending in a summary line.
	rest, err := io.ReadAll(stream.Body)
	if err != nil {
		t.Fatalf("reading stream tail after Close: %v", err)
	}
	all := firstLine + "\n" + string(rest)
	lines := strings.Split(strings.TrimSpace(all), "\n")
	var summary struct {
		Done  *bool  `json:"done"`
		State string `json:"state"`
	}
	last := lines[len(lines)-1]
	if err := json.Unmarshal([]byte(last), &summary); err != nil {
		t.Fatalf("stream tail is not clean NDJSON, last line %q: %v", last, err)
	}
	if summary.Done == nil {
		t.Errorf("stream did not end with a summary line: %q", last)
	}

	// The job's goroutine finished too: its state moved past running.
	if j := h.jobs.get(job.ID); j != nil {
		j.mu.Lock()
		state := j.state
		j.mu.Unlock()
		if state == jobRunning {
			t.Errorf("job still running after Close")
		}
	}

	// New requests are refused with the documented code.
	resp2, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var envelope struct {
		Code string `json:"code"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusServiceUnavailable || envelope.Code != "closed" {
		t.Errorf("post-Close request: status %d code %q, want 503 \"closed\"", resp2.StatusCode, envelope.Code)
	}

	httpSrv.Close()
	srv.Close()
}

// TestCloseIdempotentAndConcurrent: any number of concurrent Close calls
// return, exactly one doing the work.
func TestCloseIdempotentAndConcurrent(t *testing.T) {
	testutil.CheckGoroutines(t)
	_, srv, h, httpSrv := newStack(t,
		serve.Config{Solver: "sea", MaxInFlight: 1, MaxQueue: 2},
		Config{})
	done := make(chan struct{}, 3)
	for i := 0; i < 3; i++ {
		go func() {
			h.Close()
			done <- struct{}{}
		}()
	}
	for i := 0; i < 3; i++ {
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("concurrent Close hung")
		}
	}
	httpSrv.Close()
	srv.Close()
}

// TestCloseCancelsRunningJob: a running job's solve observes the base
// context's cancellation and finishes; polls afterwards see a terminal
// state rather than a job stuck in running.
func TestCloseCancelsRunningJob(t *testing.T) {
	testutil.CheckGoroutines(t)
	base, srv, h, httpSrv := newStack(t,
		serve.Config{Solver: "sea", MaxInFlight: 1, MaxQueue: 2, Options: slowOptions()},
		Config{})

	resp, err := http.Post(base+"/v1/jobs", "application/json",
		bytes.NewReader(problemBody(t, problems.RandomSAM(48, 3))))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	h.Close()

	j := h.jobs.get(job.ID)
	if j == nil {
		t.Fatal("job vanished")
	}
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	if state == jobRunning {
		t.Errorf("job state %q after Close, want a terminal state", state)
	}

	httpSrv.Close()
	srv.Close()
}
