package seahttp

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"sea/internal/matio"
	"sea/internal/problems"
	"sea/pkg/sea"
	"sea/pkg/sea/serve"
)

// postJSON posts v (already-encoded JSON) and decodes the response into out.
func postJSON(t *testing.T, url string, body []byte, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestSolveObjectiveQueryParam: ?objective=entropy on /v1/solve must solve
// the entropy family (objective_kind on the wire), and an unknown family
// must fail with 400 before any solve.
func TestSolveObjectiveQueryParam(t *testing.T) {
	base, _, _, _ := newStack(t, serve.Config{MaxInFlight: 2}, Config{})
	body := problemBody(t, problems.RandomSAM(20, 4))

	var sol matio.Solution
	if code := postJSON(t, base+"/v1/solve?objective=entropy", body, &sol); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if sol.ObjectiveKind != "entropy" {
		t.Fatalf("objective_kind = %q, want entropy", sol.ObjectiveKind)
	}

	var plain matio.Solution
	if code := postJSON(t, base+"/v1/solve", body, &plain); code != http.StatusOK {
		t.Fatalf("plain status %d", code)
	}
	if plain.ObjectiveKind != "quadratic" {
		t.Fatalf("default objective_kind = %q, want quadratic", plain.ObjectiveKind)
	}

	var e errorBody
	if code := postJSON(t, base+"/v1/solve?objective=huber", body, &e); code != http.StatusBadRequest {
		t.Fatalf("unknown objective: status %d, want 400", code)
	}
	if e.Code != "bad-request" {
		t.Fatalf("unknown objective: code %q", e.Code)
	}
}

// TestSolveObjectiveBodyField: the problem body's own "objective" attribute
// selects the family, the query parameter wins over it, and an unknown body
// value is a 400 invalid-problem.
func TestSolveObjectiveBodyField(t *testing.T) {
	base, _, _, _ := newStack(t, serve.Config{MaxInFlight: 2}, Config{})

	withObjective := func(obj string) []byte {
		t.Helper()
		var doc map[string]any
		if err := json.Unmarshal(problemBody(t, problems.RandomSAM(16, 9)), &doc); err != nil {
			t.Fatal(err)
		}
		doc["objective"] = obj
		out, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	var sol matio.Solution
	if code := postJSON(t, base+"/v1/solve", withObjective("kl"), &sol); code != http.StatusOK {
		t.Fatalf("body objective: status %d", code)
	}
	if sol.ObjectiveKind != "entropy" {
		t.Fatalf("body objective: objective_kind = %q", sol.ObjectiveKind)
	}

	// The query parameter overrides the body attribute.
	if code := postJSON(t, base+"/v1/solve?objective=quadratic", withObjective("entropy"), &sol); code != http.StatusOK {
		t.Fatalf("override: status %d", code)
	}
	if sol.ObjectiveKind != "quadratic" {
		t.Fatalf("override: objective_kind = %q", sol.ObjectiveKind)
	}

	var e errorBody
	if code := postJSON(t, base+"/v1/solve", withObjective("huber"), &e); code != http.StatusBadRequest {
		t.Fatalf("bad body objective: status %d, want 400", code)
	}
	if e.Code != "invalid-problem" {
		t.Fatalf("bad body objective: code %q", e.Code)
	}
}

// TestJobObjectiveQueryParam: the asynchronous path honors ?objective= too.
func TestJobObjectiveQueryParam(t *testing.T) {
	base, _, _, _ := newStack(t, serve.Config{MaxInFlight: 2}, Config{})
	body := problemBody(t, problems.RandomSAM(16, 6))

	var e errorBody
	if code := postJSON(t, base+"/v1/jobs?objective=bogus", body, &e); code != http.StatusBadRequest {
		t.Fatalf("unknown objective: status %d, want 400", code)
	}

	var ref jobRef
	if code := postJSON(t, base+"/v1/jobs?objective=entropy", body, &ref); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	for {
		resp, err := http.Get(base + ref.Poll)
		if err != nil {
			t.Fatal(err)
		}
		var view jobView
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if view.State == jobFailed {
			t.Fatalf("job failed: %+v", view)
		}
		if view.State == jobDone {
			if view.Solution == nil || view.Solution.ObjectiveKind != "entropy" {
				t.Fatalf("job solution = %+v, want objective_kind entropy", view.Solution)
			}
			return
		}
	}
}

// TestSequenceLifecycle drives the sequences API end to end: create with an
// entropy objective and warm duals, solve a drifting series period by
// period, watch the stats accumulate, close, and get 404/409 afterwards.
func TestSequenceLifecycle(t *testing.T) {
	base, _, _, _ := newStack(t, serve.Config{MaxInFlight: 2}, Config{})
	spec := problems.TemporalSpec{Name: "t", M: 10, N: 8, Periods: 4, Drift: 0.02, Seed: 21}
	periods := problems.Temporal(spec)

	var view sequenceView
	req, _ := json.Marshal(sequenceRequest{Objective: "entropy", WarmDuals: true})
	if code := postJSON(t, base+"/v1/sequences", req, &view); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if view.Objective != "entropy" || !view.WarmDuals || view.Solve == "" {
		t.Fatalf("create: view = %+v", view)
	}

	for i, d := range periods {
		var sol matio.Solution
		if code := postJSON(t, base+view.Solve, problemBody(t, d), &sol); code != http.StatusOK {
			t.Fatalf("period %d: status %d", i, code)
		}
		if sol.Status != "converged" || sol.ObjectiveKind != "entropy" {
			t.Fatalf("period %d: status %q objective_kind %q", i, sol.Status, sol.ObjectiveKind)
		}
	}

	// A mismatched shape is rejected without disturbing the sequence.
	var e errorBody
	if code := postJSON(t, base+view.Solve, problemBody(t, problems.RandomSAM(7, 3)), &e); code != http.StatusBadRequest {
		t.Fatalf("shape mismatch: status %d, want 400", code)
	}

	resp, err := http.Get(base + "/v1/sequences/" + view.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got sequenceView
	err = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got.Periods != spec.Periods || got.Iterations <= 0 || got.M != spec.M || got.N != spec.N {
		t.Fatalf("stats view = %+v", got)
	}

	del, err := http.NewRequest(http.MethodDelete, base+"/v1/sequences/"+view.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", dresp.StatusCode)
	}
	if code := postJSON(t, base+view.Solve, problemBody(t, periods[0]), &e); code != http.StatusNotFound {
		t.Fatalf("solve after delete: status %d, want 404", code)
	}
}

// TestSequenceWarmDualsSaveIterationsOverHTTP: the wire-level chained
// sequence must spend fewer iterations than solving every period through
// /v1/solve — the serving-layer payoff the benchmark records.
func TestSequenceWarmDualsSaveIterationsOverHTTP(t *testing.T) {
	o := sea.DefaultOptions()
	o.Epsilon = 1e-9
	o.MaxIterations = 500000
	base, _, _, _ := newStack(t, serve.Config{MaxInFlight: 2, Options: o}, Config{})
	spec := problems.TemporalSpec{Name: "t", M: 14, N: 12, Periods: 6, Drift: 0.02, Seed: 31}
	periods := problems.Temporal(spec)

	var coldIters int
	for i, d := range periods {
		var sol matio.Solution
		if code := postJSON(t, base+"/v1/solve", problemBody(t, d), &sol); code != http.StatusOK {
			t.Fatalf("cold period %d: status %d", i, code)
		}
		coldIters += sol.Iterations
	}

	var view sequenceView
	req, _ := json.Marshal(sequenceRequest{WarmDuals: true})
	if code := postJSON(t, base+"/v1/sequences", req, &view); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	var warmIters int
	for i, d := range periods {
		var sol matio.Solution
		if code := postJSON(t, base+view.Solve, problemBody(t, d), &sol); code != http.StatusOK {
			t.Fatalf("chained period %d: status %d", i, code)
		}
		warmIters += sol.Iterations
	}
	if warmIters >= coldIters {
		t.Fatalf("chained sequence saved nothing over HTTP: %d warm vs %d cold iterations", warmIters, coldIters)
	}
}

// TestSequenceCapAndBadCreate: the sequence store enforces MaxSequences
// with 429, and bad creation parameters fail with 400.
func TestSequenceCapAndBadCreate(t *testing.T) {
	base, _, _, _ := newStack(t, serve.Config{MaxInFlight: 1}, Config{MaxSequences: 2})

	var e errorBody
	if code := postJSON(t, base+"/v1/sequences", []byte(`{"objective":"huber"}`), &e); code != http.StatusBadRequest {
		t.Fatalf("bad objective: status %d, want 400", code)
	}
	if code := postJSON(t, base+"/v1/sequences", []byte(`{"precondition":"bogus"}`), &e); code != http.StatusBadRequest {
		t.Fatalf("bad precondition: status %d, want 400", code)
	}

	for i := 0; i < 2; i++ {
		var v sequenceView
		if code := postJSON(t, base+"/v1/sequences", nil, &v); code != http.StatusCreated {
			t.Fatalf("create %d: status %d", i, code)
		}
	}
	if code := postJSON(t, base+"/v1/sequences", nil, &e); code != http.StatusTooManyRequests {
		t.Fatalf("over cap: status %d, want 429", code)
	}

	// /v1/stats reports the open-sequence gauge.
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats statsResponse
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sequences != 2 {
		t.Fatalf("stats sequences = %d, want 2", stats.Sequences)
	}
}
