package serve

import (
	"context"
	"errors"
	"math"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"sea/internal/testutil"
	"sea/pkg/sea"
)

// testProblem builds a feasible fixed-totals diagonal problem of order m×n
// wrapped for the facade.
func testProblem(t testing.TB, m, n int, growth float64, seed uint64) *sea.Problem {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 17))
	x0 := make([]float64, m*n)
	gamma := make([]float64, m*n)
	for k := range x0 {
		x0[k] = 0.5 + rng.Float64()*10
		gamma[k] = 1 / x0[k]
	}
	s0 := make([]float64, m)
	d0 := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s0[i] += growth * x0[i*n+j]
			d0[j] += growth * x0[i*n+j]
		}
	}
	d, err := sea.NewFixed(m, n, x0, gamma, s0, d0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sea.NewDiagonal(d)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// checkRowTotals verifies the solved matrix meets the problem's row totals.
func checkRowTotals(t *testing.T, p *sea.Problem, sol *sea.Solution) {
	t.Helper()
	d := p.Diagonal
	for i := 0; i < d.M; i++ {
		var rs float64
		for j := 0; j < d.N; j++ {
			rs += sol.X[i*d.N+j]
		}
		if math.Abs(rs-d.S0[i]) > 1e-4*(1+d.S0[i]) {
			t.Fatalf("row %d total %g, want %g", i, rs, d.S0[i])
		}
	}
}

// TestSubmitSolvesAndDetaches: a Submit result is correct, carries an
// explicit status, and does not alias pooled arena memory (a second solve
// on the same shape must not corrupt the first result).
func TestSubmitSolvesAndDetaches(t *testing.T) {
	s, err := NewServer(Config{MaxInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p := testProblem(t, 12, 9, 1.3, 1)
	sol1, err := s.Submit(context.Background(), p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol1.Status != sea.StatusConverged || !sol1.Converged {
		t.Fatalf("status = %v, converged = %v; want converged", sol1.Status, sol1.Converged)
	}
	checkRowTotals(t, p, sol1)

	snapshot := append([]float64(nil), sol1.X...)
	if _, err := s.Submit(context.Background(), testProblem(t, 12, 9, 1.1, 2), nil); err != nil {
		t.Fatal(err)
	}
	for k := range snapshot {
		if snapshot[k] != sol1.X[k] {
			t.Fatalf("result aliases pooled memory: X[%d] changed %g -> %g", k, snapshot[k], sol1.X[k])
		}
	}

	st := s.Stats()
	if st.Submitted != 2 || st.Completed != 2 {
		t.Fatalf("stats submitted/completed = %d/%d, want 2/2", st.Submitted, st.Completed)
	}
	if st.ShapeHits != 1 || st.ShapeMisses != 1 {
		t.Fatalf("stats hits/misses = %d/%d, want 1/1 (same shape twice)", st.ShapeHits, st.ShapeMisses)
	}
	if st.Solve.Count != 2 || st.Solver.Iterations == 0 {
		t.Fatalf("latency count %d / solver iterations %d; want 2 / >0", st.Solve.Count, st.Solver.Iterations)
	}
}

// TestConcurrentMixedShapes hammers the server from many submitters over
// three shapes and requires every result correct, shape pools bounded, and
// a warm hit rate once the pools are populated. Run under -race via
// `make serve-race`.
func TestConcurrentMixedShapes(t *testing.T) {
	testutil.CheckGoroutines(t)
	s, err := NewServer(Config{MaxInFlight: 4, MaxQueue: 64, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}

	shapes := []*sea.Problem{
		testProblem(t, 20, 20, 1.2, 3),
		testProblem(t, 35, 15, 1.3, 4),
		testProblem(t, 10, 40, 1.4, 5),
	}
	const submitters, perSubmitter = 8, 6
	var wg sync.WaitGroup
	errs := make(chan error, submitters*perSubmitter)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var out sea.Solution
			for i := 0; i < perSubmitter; i++ {
				p := shapes[(g+i)%len(shapes)]
				filled, err := s.SubmitInto(context.Background(), p, nil, &out)
				if err != nil {
					errs <- err
					return
				}
				if !filled || !out.Converged {
					t.Errorf("submitter %d request %d: filled=%v converged=%v", g, i, filled, out.Converged)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := s.Stats()
	if want := uint64(submitters * perSubmitter); st.Completed != want {
		t.Fatalf("completed %d, want %d", st.Completed, want)
	}
	if st.ShapeHits == 0 {
		t.Fatal("no shape-pool hits across repeated same-shape requests")
	}
	if len(st.Shapes) != len(shapes) {
		t.Fatalf("%d live shape pools, want %d", len(st.Shapes), len(shapes))
	}
	for _, sh := range st.Shapes {
		if sh.Arenas > 4 {
			t.Fatalf("shape %dx%d holds %d arenas, more than MaxInFlight=4", sh.M, sh.N, sh.Arenas)
		}
	}
	if st.PeakInFlight > 4 {
		t.Fatalf("peak in-flight %d exceeded the limit 4", st.PeakInFlight)
	}

	s.Close()
}

// TestSaturationRejects: with one in-flight slot and a queue of one, a
// third concurrent request is rejected immediately with sea.ErrSaturated.
func TestSaturationRejects(t *testing.T) {
	block := make(chan struct{})
	var startOnce sync.Once
	started := make(chan struct{})
	cfg := Config{
		MaxInFlight: 1,
		MaxQueue:    1,
		Trace: sea.TraceFunc(func(ev sea.TraceEvent) {
			startOnce.Do(func() { close(started) })
			<-block
		}),
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p := testProblem(t, 15, 15, 1.25, 6)
	var wg sync.WaitGroup
	results := make([]error, 2)
	wg.Add(1)
	go func() { defer wg.Done(); _, results[0] = s.Submit(context.Background(), p, nil) }()
	<-started // first request is solving (and will hold its slot until released)

	wg.Add(1)
	go func() { defer wg.Done(); _, results[1] = s.Submit(context.Background(), p, nil) }()
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Queued != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue full, slot busy: the third request must bounce.
	if _, err := s.Submit(context.Background(), p, nil); !errors.Is(err, sea.ErrSaturated) {
		t.Fatalf("err = %v, want sea.ErrSaturated", err)
	}

	close(block)
	wg.Wait()
	for i, err := range results {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.Rejected != 1 || st.Completed != 2 {
		t.Fatalf("rejected/completed = %d/%d, want 1/2", st.Rejected, st.Completed)
	}
	if st.PeakQueued < 1 {
		t.Fatalf("peak queued = %d, want >= 1", st.PeakQueued)
	}
	if st.QueueWait.Count != 1 {
		t.Fatalf("queue-wait observations = %d, want 1", st.QueueWait.Count)
	}
}

// TestQueuedRequestHonorsContext: a request waiting in the queue leaves it
// when its context is cancelled.
func TestQueuedRequestHonorsContext(t *testing.T) {
	block := make(chan struct{})
	var startOnce sync.Once
	started := make(chan struct{})
	s, err := NewServer(Config{
		MaxInFlight: 1,
		MaxQueue:    4,
		Trace: sea.TraceFunc(func(sea.TraceEvent) {
			startOnce.Do(func() { close(started) })
			<-block
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p := testProblem(t, 15, 15, 1.25, 7)
	done := make(chan error, 1)
	go func() { _, err := s.Submit(context.Background(), p, nil); done <- err }()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	queued := make(chan error, 1)
	go func() { _, err := s.Submit(ctx, p, nil); queued <- err }()
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Queued != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-queued; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued request err = %v, want context.Canceled", err)
	}
	close(block)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestRequestTimeoutCancelsSolve: the per-request deadline cuts an
// unconverging solve short with StatusCancelled and the last iterate.
func TestRequestTimeoutCancelsSolve(t *testing.T) {
	o := sea.DefaultOptions()
	o.Epsilon = 1e-300 // unreachable: only the deadline can end the solve
	o.Criterion = sea.DualGradient
	o.MaxIterations = 1 << 30
	s, err := NewServer(Config{MaxInFlight: 1, RequestTimeout: 20 * time.Millisecond, Options: o})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p := testProblem(t, 40, 40, 1.3, 8)
	sol, err := s.Submit(context.Background(), p, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if sol == nil || sol.Status != sea.StatusCancelled {
		t.Fatalf("sol = %+v, want last iterate with StatusCancelled", sol)
	}
	if st := s.Stats(); st.Failed != 1 {
		t.Fatalf("failed = %d, want 1", st.Failed)
	}
}

// TestSubmitAllMixedOutcomes: a batch mixes valid problems and a structurally
// invalid one; results are index-aligned with per-item statuses and errors.
func TestSubmitAllMixedOutcomes(t *testing.T) {
	s, err := NewServer(Config{MaxInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	batch := []*sea.Problem{
		testProblem(t, 8, 8, 1.2, 9),
		{}, // no representation: rejected before admission
		testProblem(t, 6, 10, 1.3, 10),
	}
	results := s.SubmitAll(context.Background(), batch, nil)
	if len(results) != len(batch) {
		t.Fatalf("%d results for %d problems", len(results), len(batch))
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil || results[i].Status != sea.StatusConverged {
			t.Fatalf("result %d: err=%v status=%v, want converged", i, results[i].Err, results[i].Status)
		}
		checkRowTotals(t, batch[i], results[i].Solution)
	}
	if !errors.Is(results[1].Err, sea.ErrInvalidProblem) {
		t.Fatalf("result 1 err = %v, want sea.ErrInvalidProblem", results[1].Err)
	}
	if results[1].Solution != nil || results[1].Status != sea.StatusUnknown {
		t.Fatalf("result 1 = %+v, want no solution", results[1])
	}
}

// TestShapeEviction: with MaxShapes = 1, a second shape evicts the first
// pool and its idle arenas; the server keeps serving both shapes correctly.
func TestShapeEviction(t *testing.T) {
	s, err := NewServer(Config{MaxInFlight: 1, MaxShapes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	a := testProblem(t, 9, 9, 1.2, 11)
	b := testProblem(t, 7, 13, 1.3, 12)
	for _, p := range []*sea.Problem{a, b, a, b} {
		if _, err := s.Submit(context.Background(), p, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if len(st.Shapes) != 1 {
		t.Fatalf("%d live shape pools, want 1 (MaxShapes)", len(st.Shapes))
	}
	if st.ArenasEvicted == 0 {
		t.Fatal("no arenas evicted despite shape churn beyond MaxShapes")
	}
	if st.Completed != 4 {
		t.Fatalf("completed = %d, want 4", st.Completed)
	}
}

// TestCloseRejectsAndDrains: Close is idempotent, waits for in-flight work,
// and later submissions fail with ErrClosed.
func TestCloseRejectsAndDrains(t *testing.T) {
	testutil.CheckGoroutines(t)
	s, err := NewServer(Config{MaxInFlight: 2, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := testProblem(t, 10, 10, 1.2, 13)
	if _, err := s.Submit(context.Background(), p, nil); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if _, err := s.Submit(context.Background(), p, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestPrewarmFillsPool: Prewarm provisions the full per-shape free-list
// deterministically, so the first real request is already a hit.
func TestPrewarmFillsPool(t *testing.T) {
	s, err := NewServer(Config{MaxInFlight: 1, ArenasPerShape: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p := testProblem(t, 11, 7, 1.2, 15)
	if err := s.Prewarm(context.Background(), p, 0); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if len(st.Shapes) != 1 || st.Shapes[0].Idle != 3 || st.Shapes[0].Arenas != 3 {
		t.Fatalf("after Prewarm: shapes = %+v, want one pool with 3 idle arenas", st.Shapes)
	}
	if st.Submitted != 0 {
		t.Fatalf("Prewarm counted as %d submissions, want 0", st.Submitted)
	}
	if _, err := s.Submit(context.Background(), p, nil); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.ShapeHits != 1 {
		t.Fatalf("first post-Prewarm request: hits = %d, want 1", st.ShapeHits)
	}

	if err := s.Prewarm(context.Background(), &sea.Problem{}, 1); !errors.Is(err, sea.ErrInvalidProblem) {
		t.Fatalf("Prewarm on an empty problem: err = %v, want sea.ErrInvalidProblem", err)
	}
}

// TestUnknownSolverConfig: NewServer surfaces the facade's typed error.
func TestUnknownSolverConfig(t *testing.T) {
	if _, err := NewServer(Config{Solver: "nope"}); !errors.Is(err, sea.ErrUnknownSolver) {
		t.Fatalf("err = %v, want sea.ErrUnknownSolver", err)
	}
}

// TestSteadyStateHitAllocations pins the serving promise: once a shape's
// pool is warm, a SubmitInto request costs at most 2 heap allocations.
func TestSteadyStateHitAllocations(t *testing.T) {
	s, err := NewServer(Config{MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p := testProblem(t, 30, 30, 1.25, 14)
	ctx := context.Background()
	var out sea.Solution
	for i := 0; i < 3; i++ { // warm the pool and the kernel warm starts
		if _, err := s.SubmitInto(ctx, p, nil, &out); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := s.SubmitInto(ctx, p, nil, &out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("steady-state hit path allocates %.1f/op, want <= 2", allocs)
	}
}
