package sea

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"os"
	"testing"

	"sea/internal/matio"
)

// TestObjectiveRoutingThroughSea: Solve(ctx, "sea", p, o) with an entropy
// objective must delegate to the "entropy" solver — same result, and the
// solution is stamped with the entropy family.
func TestObjectiveRoutingThroughSea(t *testing.T) {
	p := mustDiagonal(t, testFixed(t, 6, 5, 1.3))
	o := DefaultOptions()
	o.Epsilon = 1e-9
	o.MaxIterations = 200000
	o.Objective = ObjectiveEntropy
	viaSea, err := Solve(context.Background(), "sea", p, o)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Solve(context.Background(), "entropy", p, o)
	if err != nil {
		t.Fatal(err)
	}
	if viaSea.ObjectiveKind != ObjectiveEntropy || direct.ObjectiveKind != ObjectiveEntropy {
		t.Fatalf("ObjectiveKind: via sea %v, direct %v, want entropy", viaSea.ObjectiveKind, direct.ObjectiveKind)
	}
	for k := range viaSea.X {
		if viaSea.X[k] != direct.X[k] {
			t.Fatalf("routing changed the solution at %d: %v vs %v", k, viaSea.X[k], direct.X[k])
		}
	}
	rep := CheckKKTObjective(p.Diagonal, viaSea, ObjectiveEntropy)
	if !rep.Satisfied(1e-6) {
		t.Fatalf("entropy KKT violated through the facade: %+v", rep)
	}
}

// TestQuadraticOnlySolversRejectEntropy: every solver whose algorithm
// minimizes the quadratic family must reject an entropy objective with
// ErrInvalidProblem instead of silently minimizing the wrong function.
func TestQuadraticOnlySolversRejectEntropy(t *testing.T) {
	p := mustDiagonal(t, testFixed(t, 4, 4, 1.2))
	o := DefaultOptions()
	o.Objective = ObjectiveEntropy
	for _, name := range []string{"sea-general", "rc", "bk", "dykstra", "projgrad", "unsigned", "isp"} {
		if _, err := Solve(context.Background(), name, p, o); !errors.Is(err, ErrInvalidProblem) {
			t.Errorf("%s with entropy objective: err = %v, want ErrInvalidProblem", name, err)
		}
	}
}

// TestScalingBaselinesReportRequestedFamily: "ras" and "sinkhorn" are entropy
// solvers by construction; with an entropy objective they must report the KL
// objective value and family instead of the cross-family quadratic default.
func TestScalingBaselinesReportRequestedFamily(t *testing.T) {
	d := testFixed(t, 5, 5, 1.2)
	p := mustDiagonal(t, d)
	for _, name := range []string{"ras", "sinkhorn"} {
		o := DefaultOptions()
		o.Epsilon = 1e-10
		o.MaxIterations = 500000
		o.Objective = ObjectiveEntropy
		sol, err := Solve(context.Background(), name, p, o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sol.ObjectiveKind != ObjectiveEntropy {
			t.Errorf("%s: ObjectiveKind = %v, want entropy", name, sol.ObjectiveKind)
		}
		want := d.KLObjective(sol.X, sol.S, sol.D)
		if math.Abs(sol.Objective-want) > 1e-12*(1+math.Abs(want)) {
			t.Errorf("%s: Objective = %g, want the KL value %g", name, sol.Objective, want)
		}
	}
}

// TestParseObjective pins the wire spellings.
func TestParseObjective(t *testing.T) {
	for s, want := range map[string]Objective{
		"":          ObjectiveQuadratic,
		"quadratic": ObjectiveQuadratic,
		"entropy":   ObjectiveEntropy,
		"kl":        ObjectiveEntropy,
	} {
		got, err := ParseObjective(s)
		if err != nil || got != want {
			t.Errorf("ParseObjective(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseObjective("huber"); err == nil {
		t.Error("ParseObjective accepted an unknown family")
	}
	if ObjectiveQuadratic.String() != "quadratic" || ObjectiveEntropy.String() != "entropy" {
		t.Error("Objective.String() wire spellings changed")
	}
}

// TestObjectiveDivergenceFixture solves the committed fixture under both
// families and pins the documented divergence: each solution matches its
// golden matrix, certifies under its own objective's KKT conditions, and the
// two optima genuinely differ (they answer different questions).
func TestObjectiveDivergenceFixture(t *testing.T) {
	f, err := os.Open("testdata/objective_divergence.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var fx struct {
		Problem            *matio.Problem `json:"problem"`
		QuadraticX         []float64      `json:"quadratic_x"`
		QuadraticObjective float64        `json:"quadratic_objective"`
		EntropyX           []float64      `json:"entropy_x"`
		EntropyObjective   float64        `json:"entropy_objective"`
	}
	if err := json.NewDecoder(f).Decode(&fx); err != nil {
		t.Fatal(err)
	}
	d, err := fx.Problem.ToCore()
	if err != nil {
		t.Fatal(err)
	}
	p := mustDiagonal(t, d)

	oq := DefaultOptions()
	oq.Epsilon = 1e-10
	oq.Criterion = DualGradient
	oq.MaxIterations = 500000
	quad, err := Solve(context.Background(), "sea", p, oq)
	if err != nil {
		t.Fatal(err)
	}
	oe := DefaultOptions()
	oe.Epsilon = 1e-10
	oe.MaxIterations = 500000
	oe.Objective = ObjectiveEntropy
	ent, err := Solve(context.Background(), "sea", p, oe)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, got, golden []float64) {
		t.Helper()
		for k := range golden {
			if math.Abs(got[k]-golden[k]) > 1e-6*(1+math.Abs(golden[k])) {
				t.Fatalf("%s: X[%d] = %g, golden %g", name, k, got[k], golden[k])
			}
		}
	}
	check("quadratic", quad.X, fx.QuadraticX)
	check("entropy", ent.X, fx.EntropyX)
	if !CheckKKT(d, quad).Satisfied(1e-6) {
		t.Fatal("quadratic solution fails its own KKT conditions")
	}
	if !CheckKKTObjective(d, ent, ObjectiveEntropy).Satisfied(1e-6) {
		t.Fatal("entropy solution fails its own KKT conditions")
	}
	var maxRel float64
	for k := range quad.X {
		if r := math.Abs(quad.X[k]-ent.X[k]) / (1 + math.Abs(quad.X[k])); r > maxRel {
			maxRel = r
		}
	}
	if maxRel < 1e-3 {
		t.Fatalf("families coincide (max rel diff %g); the fixture should document a real divergence", maxRel)
	}
}
