package sea

import (
	"errors"

	"sea/internal/core"
)

// The facade's error surface. Every failure path of the public API wraps
// exactly one of these sentinels, so callers branch with errors.Is instead
// of matching message strings:
//
//	sol, err := sea.Solve(ctx, name, p, opts)
//	switch {
//	case errors.Is(err, sea.ErrUnknownSolver):  // bad registry name
//	case errors.Is(err, sea.ErrInvalidProblem): // p failed validation
//	case errors.Is(err, sea.ErrNotConverged):   // sol is the best iterate
//	case errors.Is(err, sea.ErrInfeasible):     // empty constraint set
//	case errors.Is(err, sea.ErrSaturated):      // serving layer rejected it
//	}
//
// ErrNotConverged and ErrInfeasible originate in the solvers (internal/core)
// and are re-exported; the rest are the facade's own.
var (
	// ErrUnknownSolver is wrapped by Get/Solve/NewReusableSolver when the
	// requested name is not in the registry. The full error lists the
	// registered names.
	ErrUnknownSolver = errors.New("sea: unknown solver")
	// ErrInvalidProblem is wrapped by Problem.Validate — and therefore by
	// every solve on an invalid problem — covering nil or ambiguous
	// representations, dimension mismatches, non-finite priors, and
	// representation/solver mismatches (a general problem handed to a
	// diagonal-only solver). Infeasibility errors additionally wrap
	// ErrInfeasible.
	ErrInvalidProblem = errors.New("sea: invalid problem")
	// ErrSaturated is returned by the serving layer (pkg/sea/serve) when
	// admission control rejects a request: the in-flight limit is reached
	// and the waiting queue is full.
	ErrSaturated = errors.New("sea: server saturated")
	// ErrSessionClosed is returned by Session.Solve after Close.
	ErrSessionClosed = errors.New("sea: session closed")

	// ErrNotConverged is returned (wrapped, alongside the best iterate) when
	// the iteration limit is exhausted before the criterion is met.
	ErrNotConverged = core.ErrNotConverged
	// ErrInfeasible is returned when the constraint set is empty.
	ErrInfeasible = core.ErrInfeasible
	// ErrArenaBusy is returned when a single-flight Arena is handed to two
	// concurrent solves.
	ErrArenaBusy = core.ErrArenaBusy
)
