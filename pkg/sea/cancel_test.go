package sea

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// waitGoroutines waits for the live goroutine count to settle back to the
// baseline, failing if it does not within the deadline — the leak detector
// for the solver-owned worker pools.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after cancellation: %d live, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCancelMidSolveDiagonal cancels a 500×500 diagonal solve from its own
// trace observer and requires the solve to return within one outer iteration
// with context.Canceled, the last consistent iterate attached, and no worker
// goroutines left behind.
func TestCancelMidSolveDiagonal(t *testing.T) {
	p := testFixed(t, 500, 500, 1.5)
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const cancelAt = 3
	o := DefaultOptions()
	o.Epsilon = 1e-300 // unreachable: the solve can only end by cancellation
	o.Criterion = DualGradient
	o.MaxIterations = 1 << 30
	o.Procs = 8
	o.Trace = TraceFunc(func(ev TraceEvent) {
		if ev.Iteration == cancelAt {
			cancel()
		}
	})

	sol, err := Solve(ctx, "sea", mustDiagonal(t, p), o)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sol == nil {
		t.Fatal("cancelled solve returned no iterate")
	}
	// Cancel fired during iteration cancelAt's observer call; the loop must
	// notice at the next iteration boundary.
	if sol.Iterations > cancelAt+1 {
		t.Fatalf("solve ran %d iterations after a cancel at %d; want return within one outer iteration", sol.Iterations, cancelAt)
	}
	if len(sol.X) != p.M*p.N {
		t.Fatalf("partial solution has %d entries, want %d", len(sol.X), p.M*p.N)
	}
	waitGoroutines(t, baseline)
}

// TestCancelPropagatesToEverySolver cancels each registry solver mid-solve
// via a pre-cancelled or observer-triggered context and requires ctx.Err()
// back. Solvers differ in how far a cancelled solve gets, but none may spin
// to completion or return a nil error.
func TestCancelPropagatesToEverySolver(t *testing.T) {
	p := testFixed(t, 12, 12, 1.4)
	for _, name := range Solvers() {
		if name == "unsigned" {
			// Single direct solve: cancellation is only observable before
			// the factorization, so use a pre-cancelled context.
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := Solve(ctx, name, mustDiagonal(t, p), nil); !errors.Is(err, context.Canceled) {
				t.Errorf("%s: err = %v, want context.Canceled", name, err)
			}
			continue
		}
		ctx, cancel := context.WithCancel(context.Background())
		o := DefaultOptions()
		o.Epsilon = 1e-300 // unreachable
		o.Criterion = DualGradient
		o.MaxIterations = 1 << 30
		// Cancel at the first observed iteration; the timer backstops
		// solvers whose first observable event is itself gated on an inner
		// solve that cannot converge (projgrad's Dykstra projections).
		o.Trace = TraceFunc(func(ev TraceEvent) { cancel() })
		timer := time.AfterFunc(15*time.Millisecond, cancel)
		_, err := Solve(ctx, name, mustDiagonal(t, p), o)
		timer.Stop()
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}

// TestDeadlineExceeded: an already-expired deadline aborts the solve
// promptly with context.DeadlineExceeded.
func TestDeadlineExceeded(t *testing.T) {
	p := testFixed(t, 50, 50, 1.3)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	o := DefaultOptions()
	o.Epsilon = 1e-300
	o.MaxIterations = 1 << 30
	if _, err := Solve(ctx, "sea", mustDiagonal(t, p), o); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestCancelWithSharedPool: cancellation must not kill a caller-owned pool —
// the workers park and stay reusable for the next solve.
func TestCancelWithSharedPool(t *testing.T) {
	p := testFixed(t, 100, 100, 1.4)
	o := DefaultOptions()
	o.Epsilon = 1e-300
	o.Criterion = DualGradient
	o.MaxIterations = 1 << 30
	o.Procs = 4

	ctx, cancel := context.WithCancel(context.Background())
	o.Trace = TraceFunc(func(ev TraceEvent) {
		if ev.Iteration == 2 {
			cancel()
		}
	})
	if _, err := Solve(ctx, "sea", mustDiagonal(t, p), o); !errors.Is(err, context.Canceled) {
		t.Fatalf("first solve: err = %v, want context.Canceled", err)
	}
	cancel()

	// The same options (fresh context, reachable tolerance) must solve fine.
	o2 := DefaultOptions()
	o2.Epsilon = 1e-6
	o2.Criterion = DualGradient
	o2.MaxIterations = 500000
	o2.Procs = 4
	sol, err := Solve(context.Background(), "sea", mustDiagonal(t, p), o2)
	if err != nil {
		t.Fatalf("solve after cancellation: %v", err)
	}
	if !sol.Converged {
		t.Fatal("solve after cancellation did not converge")
	}
}
