package sea

import (
	"context"
	"math"
	"math/rand/v2"
	"strings"
	"testing"
)

// testFixed builds a small feasible fixed-totals diagonal problem with
// strictly positive prior (so RAS is applicable too).
func testFixed(t testing.TB, m, n int, growth float64) *DiagonalProblem {
	t.Helper()
	rng := rand.New(rand.NewPCG(7, 11))
	x0 := make([]float64, m*n)
	gamma := make([]float64, m*n)
	for k := range x0 {
		x0[k] = 0.5 + rng.Float64()*10
		gamma[k] = 1 / x0[k]
	}
	s0 := make([]float64, m)
	d0 := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s0[i] += growth * x0[i*n+j]
			d0[j] += growth * x0[i*n+j]
		}
	}
	p, err := NewFixed(m, n, x0, gamma, s0, d0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// mustDiagonal wraps a valid diagonal representation through the validated
// constructor, failing the test on rejection.
func mustDiagonal(t testing.TB, d *DiagonalProblem) *Problem {
	t.Helper()
	p, err := NewDiagonal(d)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// mustGeneral is mustDiagonal for the general representation.
func mustGeneral(t testing.TB, g *GeneralProblem) *Problem {
	t.Helper()
	p, err := NewGeneral(g)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestRegistryListsAllSolvers pins the built-in registry contents.
func TestRegistryListsAllSolvers(t *testing.T) {
	want := []string{"bk", "dykstra", "projgrad", "ras", "rc", "sea", "sea-general", "unsigned"}
	got := Solvers()
	if len(got) < len(want) {
		t.Fatalf("registry lists %d solvers (%v), want at least %d", len(got), got, len(want))
	}
	have := map[string]bool{}
	for _, name := range got {
		have[name] = true
		if Describe(name) == "" {
			t.Errorf("solver %q has no description", name)
		}
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("solver %q not registered (got %v)", name, got)
		}
	}
}

// TestEverySolverSolvesFixedTotals runs each registered solver on the same
// small fixed-totals problem through the unified interface and checks the
// returned matrix meets the row totals. This is the facade's core promise:
// one problem, one call shape, every algorithm.
func TestEverySolverSolvesFixedTotals(t *testing.T) {
	p := testFixed(t, 6, 5, 1.3)
	for _, name := range Solvers() {
		o := DefaultOptions()
		o.Epsilon = 1e-8
		o.Criterion = DualGradient
		o.MaxIterations = 500000
		sol, err := Solve(context.Background(), name, mustDiagonal(t, p), o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !sol.Converged {
			t.Fatalf("%s: did not converge", name)
		}
		// Row totals of X must match the solved supplies (fixed totals: S0).
		for i := 0; i < p.M; i++ {
			var rs float64
			for j := 0; j < p.N; j++ {
				rs += sol.X[i*p.N+j]
			}
			if math.Abs(rs-p.S0[i]) > 1e-5*(1+p.S0[i]) {
				t.Fatalf("%s: row %d total %g, want %g", name, i, rs, p.S0[i])
			}
		}
	}
}

// TestQuadraticSolversAgree: every solver of the weighted least-squares
// objective must land on the same optimum; RAS and unsigned legitimately
// differ (different objective / no nonnegativity) and are excluded.
func TestQuadraticSolversAgree(t *testing.T) {
	p := testFixed(t, 5, 4, 1.25)
	o := DefaultOptions()
	o.Epsilon = 1e-9
	o.Criterion = DualGradient
	o.MaxIterations = 500000
	ref, err := Solve(context.Background(), "sea", mustDiagonal(t, p), o)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"sea-general", "rc", "bk", "dykstra", "projgrad"} {
		sol, err := Solve(context.Background(), name, mustDiagonal(t, p), o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(sol.Objective-ref.Objective) > 1e-3*(1+math.Abs(ref.Objective)) {
			t.Errorf("%s: objective %g, SEA %g", name, sol.Objective, ref.Objective)
		}
	}
}

func TestUnknownSolverErrorListsRegistry(t *testing.T) {
	_, err := Solve(context.Background(), "no-such-solver", mustDiagonal(t, testFixed(t, 2, 2, 1)), nil)
	if err == nil {
		t.Fatal("unknown solver accepted")
	}
	if !strings.Contains(err.Error(), "sea-general") {
		t.Errorf("error does not list registered solvers: %v", err)
	}
}

func TestRegisterRejectsDuplicatesAndEmptyNames(t *testing.T) {
	if err := Register(NewSolver("sea", "dup", nil)); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := Register(NewSolver("", "anon", nil)); err == nil {
		t.Error("empty name accepted")
	}
}

func TestProblemValidation(t *testing.T) {
	d := testFixed(t, 2, 2, 1)
	if err := (&Problem{}).Validate(); err == nil {
		t.Error("empty problem validated")
	}
	g, err := liftDiagonal(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := (&Problem{Diagonal: d, General: g}).Validate(); err == nil {
		t.Error("ambiguous problem validated")
	}
	// A general problem handed to a diagonal-only solver must error clearly.
	if _, err := Solve(context.Background(), "sea", mustGeneral(t, g), nil); err == nil {
		t.Error("diagonal-only solver accepted a general problem")
	}
}

// TestDiagonalLiftIsExact: the lifted general problem has the same optimum
// as the diagonal original.
func TestDiagonalLiftIsExact(t *testing.T) {
	d := testFixed(t, 4, 6, 1.4)
	o := DefaultOptions()
	o.Epsilon = 1e-9
	o.Criterion = DualGradient
	o.MaxIterations = 500000
	diag, err := Solve(context.Background(), "sea", mustDiagonal(t, d), o)
	if err != nil {
		t.Fatal(err)
	}
	g, err := liftDiagonal(d)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := Solve(context.Background(), "sea-general", mustGeneral(t, g), o)
	if err != nil {
		t.Fatal(err)
	}
	for k := range diag.X {
		if math.Abs(diag.X[k]-gen.X[k]) > 1e-5*(1+math.Abs(diag.X[k])) {
			t.Fatalf("lift changed the optimum at %d: %g vs %g", k, diag.X[k], gen.X[k])
		}
	}
}

// TestTraceObserverReceivesEvents: the facade's Trace option reports per-
// iteration events for registry solves.
func TestTraceObserverReceivesEvents(t *testing.T) {
	p := testFixed(t, 8, 8, 1.3)
	var col TraceCollector
	o := DefaultOptions()
	o.Epsilon = 1e-8
	o.Criterion = DualGradient
	o.MaxIterations = 100000
	o.Trace = &col
	sol, err := Solve(context.Background(), "sea", mustDiagonal(t, p), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Events) != sol.Iterations {
		t.Fatalf("%d events, want %d", len(col.Events), sol.Iterations)
	}
	var sb strings.Builder
	o2 := DefaultOptions()
	o2.Epsilon = 1e-8
	o2.Criterion = DualGradient
	o2.MaxIterations = 100000
	o2.Trace = MultiTrace(nil, NewTraceWriter(&sb, 1))
	if _, err := Solve(context.Background(), "sea", mustDiagonal(t, p), o2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "sea: iter=1") {
		t.Errorf("trace writer produced no progress lines: %q", sb.String())
	}
}
