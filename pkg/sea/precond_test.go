package sea

import (
	"context"
	"errors"
	"math"
	"testing"
)

// TestScalingSolversRejectNonFinitePrior: a NaN (or ±Inf) prior cell must
// surface as ErrInvalidProblem from every scaling-family solver at the
// facade, not as a quiet non-convergence or a poisoned solution.
func TestScalingSolversRejectNonFinitePrior(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		p := testFixed(t, 3, 3, 1.2)
		x0 := append([]float64(nil), p.X0...)
		x0[4] = bad
		p.X0 = x0
		for _, solver := range []string{"sea", "sinkhorn", "isp", "ras"} {
			// Deliberately-invalid data: skip the validating constructor and
			// let Solve's own validation surface the sentinel.
			_, err := Solve(context.Background(), solver, &Problem{Diagonal: p}, nil)
			if !errors.Is(err, ErrInvalidProblem) {
				t.Errorf("%s with X0 cell %v: err = %v, want ErrInvalidProblem", solver, bad, err)
			}
		}
	}
}

// TestFacadePreconditionOption: Options.Precondition drives the warm-start
// stage through the public facade — the solve records the stage's wall
// time and still lands on the same optimum as the plain solve.
func TestFacadePreconditionOption(t *testing.T) {
	p, err := NewDiagonal(testFixed(t, 12, 9, 1.4))
	if err != nil {
		t.Fatal(err)
	}
	opts := func(pc Precond) *Options {
		o := DefaultOptions()
		o.Criterion = DualGradient
		o.Epsilon = 1e-8
		o.Precondition = pc
		return o
	}
	base, err := Solve(context.Background(), "sea", p, opts(PrecondNone))
	if err != nil {
		t.Fatal(err)
	}
	for _, pc := range []Precond{PrecondScale, PrecondSinkhorn, PrecondISP} {
		sol, err := Solve(context.Background(), "sea", p, opts(pc))
		if err != nil {
			t.Fatalf("%v: %v", pc, err)
		}
		if sol.PrecondNs <= 0 {
			t.Errorf("%v: PrecondNs = %d, want > 0", pc, sol.PrecondNs)
		}
		if d := math.Abs(sol.Objective - base.Objective); d > 1e-6*(1+math.Abs(base.Objective)) {
			t.Errorf("%v: objective %v vs plain %v", pc, sol.Objective, base.Objective)
		}
	}
}
