package sea

import (
	"context"
	"fmt"
	"sync"
)

// Session solves an ordered stream of same-shape problems — a temporal
// sequence of monthly trade or migration tables — chaining warm state from
// each period into the next:
//
//	s := sea.NewSession(sea.WithSolver("sea"))
//	defer s.Close()
//	for _, p := range periods {
//		sol, err := s.Solve(ctx, p) // sol is detached; keep it as long as needed
//		...
//	}
//
// By default a session chains only arena-owned state (buffers, worker pool,
// kernel warm-start permutations), so every period's solution is bit-identical
// to solving it cold — the reuse buys allocation-free steady state, not a
// different answer. Opting in with WithDualWarmStart(true) additionally seeds
// each solve's column multipliers from the previous period's converged duals,
// which cuts iterations on slowly drifting sequences at the cost of the
// bit-identity-to-cold guarantee (the answers still converge to the same
// optimum within tolerance, and remain KKT-valid).
//
// The first Solve pins the session's problem shape; later periods must match
// it (same M×N), since the chained state is shape-specific. Unlike a raw
// Arena solve, Session.Solve returns a detached copy of the solution, safe to
// retain across periods. A Session serializes its solves internally; callers
// may share one across goroutines, but the solves run one at a time.
type Session struct {
	mu     sync.Mutex
	cfg    *solveConfig
	arena  *Arena
	prevMu []float64
	m, n   int
	stats  SessionStats
	closed bool
}

// SessionStats summarizes a session's work so far.
type SessionStats struct {
	// Periods is the number of completed Solve calls (successful or not).
	Periods int
	// TotalIterations sums the outer iterations across all periods.
	TotalIterations int
	// M, N is the pinned problem shape (0 before the first solve).
	M, N int
	// WarmDuals reports whether dual warm starts are enabled.
	WarmDuals bool
}

// NewSession creates a session configured by the same functional options as
// SolveWith (solver, objective, tolerance, deadline per period, dual warm
// starts). Close releases the chained state.
func NewSession(options ...Option) *Session {
	return &Session{cfg: newSolveConfig(options), arena: NewArena()}
}

// Solve runs the next period of the sequence. The returned Solution is a
// detached copy (it does not alias session-owned memory).
func (s *Session) Solve(ctx context.Context, p *Problem) (*Solution, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m, n := p.Size()
	if s.stats.Periods == 0 {
		s.m, s.n = m, n
	} else if m != s.m || n != s.n {
		return nil, fmt.Errorf("%w: session is pinned to %d×%d problems, got %d×%d (sequences chain shape-specific state; start a new session)",
			ErrInvalidProblem, s.m, s.n, m, n)
	}

	o := s.cfg.opts
	o.Arena = s.arena
	if s.cfg.warmDuals && s.prevMu != nil {
		o.Mu0 = s.prevMu
	}
	ctx, cancel := s.cfg.context(ctx)
	defer cancel()
	sol, err := Solve(ctx, s.cfg.solver, p, &o)

	s.stats.Periods++
	s.stats.M, s.stats.N = s.m, s.n
	s.stats.WarmDuals = s.cfg.warmDuals
	if sol != nil {
		s.stats.TotalIterations += sol.Iterations
		if s.cfg.warmDuals && len(sol.Mu) == n {
			s.prevMu = append(s.prevMu[:0], sol.Mu...)
		}
		// Detach before the arena's next solve reuses the backing arrays.
		sol = sol.Clone()
	}
	return sol, err
}

// Stats returns a snapshot of the session's accumulated statistics.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close releases the session's chained state (worker pool, buffers). Solving
// on a closed session returns ErrSessionClosed.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.arena.Close()
	return nil
}
