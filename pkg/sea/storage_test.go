package sea

import (
	"context"
	"errors"
	"math"
	"testing"
)

// pinnedDense builds an m×n fixed-totals problem whose Upper bounds pin all
// but a band of cells at zero — support density band/n.
func pinnedDense(t *testing.T, m, n, band int) *DiagonalProblem {
	t.Helper()
	x0 := make([]float64, m*n)
	gamma := make([]float64, m*n)
	upper := make([]float64, m*n)
	for k := range gamma {
		gamma[k] = 1
	}
	s0 := make([]float64, m)
	d0 := make([]float64, n)
	for i := 0; i < m; i++ {
		for d := 0; d < band; d++ {
			j := (i%n + d) % n
			k := i*n + j
			x0[k] = 1 + float64(k%5)
			upper[k] = math.Inf(1)
			s0[i] += 1.5 * x0[k]
			d0[j] += 1.5 * x0[k]
		}
	}
	p := &DiagonalProblem{M: m, N: n, X0: x0, Gamma: gamma, S0: s0, D0: d0, Upper: upper, Kind: FixedTotals}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestNewDiagonalAutoSparsifies: a large dense problem whose bounds pin most
// cells gets CSR storage automatically, and the solve returns support-order X.
func TestNewDiagonalAutoSparsifies(t *testing.T) {
	d := pinnedDense(t, 160, 120, 6) // 19200 cells ≥ 2^14, density 5%
	p, err := NewDiagonal(d)
	if err != nil {
		t.Fatal(err)
	}
	if p.Diagonal.Pattern == nil {
		t.Fatal("NewDiagonal kept dense storage for a sparse 19200-cell problem")
	}
	if got := p.Diagonal.Pattern.Nnz(); got != 160*6 {
		t.Fatalf("auto-sparsified to nnz = %d, want %d", got, 160*6)
	}
	o := DefaultOptions()
	o.Epsilon = 1e-8
	sol, err := Solve(context.Background(), "sea", p, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.X) != p.Diagonal.Pattern.Nnz() {
		t.Fatalf("solution X has length %d, want nnz = %d", len(sol.X), p.Diagonal.Pattern.Nnz())
	}
}

// TestNewDiagonalKeepsSmallAndDenseProblems: below the size threshold or
// above the density threshold the dense hot path is kept.
func TestNewDiagonalKeepsSmallAndDenseProblems(t *testing.T) {
	small := pinnedDense(t, 20, 20, 3) // 400 cells < 2^14
	p, err := NewDiagonal(small)
	if err != nil {
		t.Fatal(err)
	}
	if p.Diagonal.Pattern != nil {
		t.Fatal("NewDiagonal sparsified a 400-cell problem")
	}

	dense := testFixed(t, 140, 140, 1.2) // no Upper bounds: full support
	p, err = NewDiagonal(dense)
	if err != nil {
		t.Fatal(err)
	}
	if p.Diagonal.Pattern != nil {
		t.Fatal("NewDiagonal sparsified a full-support problem")
	}
}

// TestNewDiagonalDenseOptOut: the explicit dense constructor never converts,
// and rejects problems already in CSR storage.
func TestNewDiagonalDenseOptOut(t *testing.T) {
	d := pinnedDense(t, 160, 120, 6)
	p, err := NewDiagonalDense(d)
	if err != nil {
		t.Fatal(err)
	}
	if p.Diagonal.Pattern != nil {
		t.Fatal("NewDiagonalDense converted to CSR")
	}

	sp, err := d.Sparsify()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDiagonalDense(sp); !errors.Is(err, ErrInvalidProblem) {
		t.Fatalf("NewDiagonalDense(csr) error = %v, want ErrInvalidProblem", err)
	}
}

// TestNewDiagonalCSRForcesConversion: the CSR constructor converts regardless
// of size, and passes CSR problems through unchanged.
func TestNewDiagonalCSRForcesConversion(t *testing.T) {
	d := pinnedDense(t, 20, 20, 3) // too small for auto-detection
	p, err := NewDiagonalCSR(d)
	if err != nil {
		t.Fatal(err)
	}
	if p.Diagonal.Pattern == nil {
		t.Fatal("NewDiagonalCSR kept dense storage")
	}
	if got := p.Diagonal.Pattern.Nnz(); got != 20*3 {
		t.Fatalf("nnz = %d, want %d", got, 20*3)
	}
	again, err := NewDiagonalCSR(p.Diagonal)
	if err != nil {
		t.Fatal(err)
	}
	if again.Diagonal != p.Diagonal {
		t.Fatal("NewDiagonalCSR re-converted an already-CSR problem")
	}

	if _, err := NewDiagonalCSR(nil); !errors.Is(err, ErrInvalidProblem) {
		t.Fatalf("NewDiagonalCSR(nil) error = %v, want ErrInvalidProblem", err)
	}
}

// TestDenseOnlySolversRejectCSR: the solvers whose algorithms are defined on
// the full m×n grid (Dykstra's projections, the unsigned variant, RAS, and
// the general-representation lifts) refuse CSR storage with a typed error
// instead of misindexing.
func TestDenseOnlySolversRejectCSR(t *testing.T) {
	p, err := NewDiagonalCSR(pinnedDense(t, 20, 20, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, solver := range []string{"dykstra", "unsigned", "ras", "sea-general", "rc", "bk", "projgrad"} {
		if _, err := Solve(context.Background(), solver, p, DefaultOptions()); !errors.Is(err, ErrInvalidProblem) {
			t.Errorf("solver %q on a CSR problem: error = %v, want ErrInvalidProblem", solver, err)
		}
	}

	// The SEA solver itself accepts CSR.
	o := DefaultOptions()
	o.Epsilon = 1e-8
	if _, err := Solve(context.Background(), "sea", p, o); err != nil {
		t.Errorf(`solver "sea" on a CSR problem: %v`, err)
	}
}
