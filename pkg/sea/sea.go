// Package sea is the public facade of the splitting equilibration module:
// one problem type, one Solver interface, and a name-based registry covering
// every algorithm the repository implements — the SEA diagonal and general
// solvers, the RC and Bachem–Korte baselines, Dykstra's alternating
// projections, projected gradient, RAS biproportional scaling, and the
// unsigned (Stone/Byron) estimator.
//
// The paper frames these as interchangeable solvers for the same constrained
// matrix problem (its Section 5 compares SEA, RC and B-K head to head), and
// the facade makes that literal:
//
//	p, err := sea.NewDiagonal(diag)                    // or sea.NewGeneral
//	ctx, cancel := context.WithTimeout(ctx, time.Minute)
//	defer cancel()
//	sol, err := sea.Solve(ctx, "sea", p, sea.DefaultOptions())
//
// Failures wrap the package's sentinel errors (ErrUnknownSolver,
// ErrInvalidProblem, ErrNotConverged, ErrInfeasible, ErrSaturated) and every
// registry solve stamps Solution.Status with the explicit outcome; see
// errors.go and docs/API.md. For concurrent serving over pooled solver
// state, see the pkg/sea/serve subpackage.
//
// Every solver accepts a context.Context and observes cancellation between
// iterations, returning the last consistent iterate together with ctx.Err().
// Per-iteration progress is reported through the pluggable Trace observer in
// Options (see the Trace and TraceEvent aliases); a nil observer costs one
// pointer comparison per iteration.
//
// The layering below this package is documented in docs/ARCHITECTURE.md:
// pkg/sea (facade, registry) → internal/core + internal/baseline (solve
// loops) → internal/equilibrate (subproblem kernels) and internal/parallel
// (scheduling substrate) → internal/mat (dense/sparse primitives).
package sea

import (
	"fmt"
	"io"

	"sea/internal/core"
	"sea/internal/mat"
	"sea/internal/trace"
)

// Re-exported problem, option and result types. The facade's aliases are the
// supported import path for callers outside this module; the internal
// packages they point at are not importable directly.
type (
	// Options configures a solve; see core.Options for field semantics.
	Options = core.Options
	// Solution is a solve's result.
	Solution = core.Solution
	// DiagonalProblem is the diagonal quadratic constrained matrix problem.
	DiagonalProblem = core.DiagonalProblem
	// GeneralProblem is the dense-weight quadratic constrained matrix
	// problem.
	GeneralProblem = core.GeneralProblem
	// Kind selects the treatment of the row and column totals.
	Kind = core.Kind
	// Status classifies a solve's outcome (see Solution.Status).
	Status = core.Status
	// Precond selects the preconditioning stage run before the diagonal
	// solver's SEA sweeps (Options.Precondition).
	Precond = core.Precond
	// Objective selects the objective family a solve minimizes
	// (Options.Objective): the paper's weighted least squares, or the
	// KL/entropy divergence to the prior.
	Objective = core.Objective
	// KKTReport quantifies KKT satisfaction of a candidate solution (see
	// CheckKKT in the core); re-exported for callers verifying solutions.
	KKTReport = core.KKTReport
	// Trace is the pluggable per-iteration observer (Options.Trace).
	Trace = trace.Observer
	// TraceEvent is one observed iteration's progress report.
	TraceEvent = trace.Event
	// TraceFunc adapts a function to the Trace interface.
	TraceFunc = trace.Func
	// TraceCollector retains every observed event, for tests and analysis.
	TraceCollector = trace.Collector
)

// Problem kinds, re-exported from the core.
const (
	FixedTotals    = core.FixedTotals
	ElasticTotals  = core.ElasticTotals
	Balanced       = core.Balanced
	IntervalTotals = core.IntervalTotals
)

// Convenience criterion and kernel constants.
const (
	MaxAbsDelta  = core.MaxAbsDelta
	RelBalance   = core.RelBalance
	DualGradient = core.DualGradient
)

// Preconditioning modes (Options.Precondition); see core.Precond.
const (
	PrecondNone     = core.PrecondNone
	PrecondScale    = core.PrecondScale
	PrecondSinkhorn = core.PrecondSinkhorn
	PrecondISP      = core.PrecondISP
)

// ParsePrecond maps the flag/query spellings ("none", "scale", "sinkhorn",
// "isp") to a Precond value.
var ParsePrecond = core.ParsePrecond

// Objective families (Options.Objective); see core.Objective. The facade
// routes: Solve(ctx, "sea", p, opts) with ObjectiveEntropy delegates to the
// "entropy" solver, while the remaining quadratic-only solvers reject the
// entropy objective with ErrInvalidProblem rather than silently minimizing
// the wrong function. The scaling baselines "ras" and "sinkhorn" accept
// both (they are entropy solvers by construction) and report the requested
// family's objective value.
const (
	ObjectiveQuadratic = core.ObjectiveQuadratic
	ObjectiveEntropy   = core.ObjectiveEntropy
)

// ParseObjective maps the flag/query/wire spellings ("quadratic", "entropy",
// "kl") to an Objective value.
var ParseObjective = core.ParseObjective

// CheckKKT evaluates the KKT conditions of sol for the diagonal problem p
// under the quadratic objective; CheckKKTObjective selects the family —
// convexity makes KKT satisfaction a certificate of global optimality, so
// these are the solver-independent verification hooks.
var (
	CheckKKT          = core.CheckKKT
	CheckKKTObjective = core.CheckKKTObjective
)

// Solve outcome statuses; see Solution.Status and the Status type.
const (
	StatusUnknown       = core.StatusUnknown
	StatusConverged     = core.StatusConverged
	StatusMaxIterations = core.StatusMaxIterations
	StatusCancelled     = core.StatusCancelled
	StatusSaturated     = core.StatusSaturated
)

// Problem constructors, re-exported from the core.
var (
	NewFixed    = core.NewFixed
	NewElastic  = core.NewElastic
	NewBalanced = core.NewBalanced
	NewInterval = core.NewInterval
)

// NewTraceWriter returns a Trace observer that prints a one-line progress
// report for every every-th observed iteration to w (every ≤ 1 prints all).
func NewTraceWriter(w io.Writer, every int) Trace { return trace.NewWriter(w, every) }

// MultiTrace fans events out to several observers.
func MultiTrace(obs ...Trace) Trace { return trace.Multi(obs...) }

// DefaultOptions returns the options used throughout the paper's
// experiments: ε = .001, the relative-balance criterion, convergence checked
// every iteration, serial execution.
func DefaultOptions() *Options { return core.DefaultOptions() }

// Problem is the facade's unified problem: exactly one of Diagonal or
// General is set. Registered solvers declare which representation they
// need; a diagonal problem is lifted to an equivalent general one on demand
// (diagonal weight matrices), while a general problem handed to a
// diagonal-only solver is an error — dense weights carry information a
// diagonal solver cannot use.
type Problem struct {
	Diagonal *DiagonalProblem
	General  *GeneralProblem
}

// Auto-sparsification thresholds for NewDiagonal: a dense problem is
// converted to CSR over its support when it is large enough for the layout
// to matter and sparse enough for the conversion to pay. Small or mostly
// dense problems keep the dense hot path.
const (
	autoSparsifyMinCells   = 1 << 14
	autoSparsifyMaxDensity = 0.25
)

// NewDiagonal wraps a diagonal problem for the registry, validating it up
// front so malformed problems fail at construction rather than inside Solve.
// The returned error wraps ErrInvalidProblem.
//
// Large dense problems whose bounds pin most cells at zero (support density
// ≤ 25% with at least 2¹⁴ cells) are converted to CSR storage automatically:
// the solve is bit-identical, but the returned Problem's Diagonal carries a
// Pattern and Solution.X comes back in stored (support) order with length
// nnz. Use NewDiagonalDense to opt out, or NewDiagonalCSR to force the
// conversion regardless of size.
func NewDiagonal(d *DiagonalProblem) (*Problem, error) {
	p := &Problem{Diagonal: d}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if d.Pattern == nil && d.Upper != nil && d.M*d.N >= autoSparsifyMinCells &&
		d.SupportDensity() <= autoSparsifyMaxDensity {
		sp, err := d.Sparsify()
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrInvalidProblem, err)
		}
		p.Diagonal = sp
	}
	return p, nil
}

// NewDiagonalDense wraps a diagonal problem for the registry with the dense
// layout kept as given — the explicit opt-out from NewDiagonal's density
// auto-detection. A problem that already carries CSR storage is rejected.
func NewDiagonalDense(d *DiagonalProblem) (*Problem, error) {
	p := &Problem{Diagonal: d}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if d.Pattern != nil {
		return nil, fmt.Errorf("%w: NewDiagonalDense requires dense storage; call Densify() first or use NewDiagonal", ErrInvalidProblem)
	}
	return p, nil
}

// NewDiagonalCSR wraps a diagonal problem for the registry in CSR storage: a
// dense problem is converted over its support (the cells not pinned at zero
// by an Upper bound of 0), a CSR problem is validated and used as is. The
// solve is bit-identical to the dense form; Solution.X is in stored order
// with length Pattern.Nnz().
func NewDiagonalCSR(d *DiagonalProblem) (*Problem, error) {
	if d == nil {
		return nil, fmt.Errorf("%w: nil problem", ErrInvalidProblem)
	}
	sp, err := d.Sparsify() // validates; returns d unchanged when already CSR
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidProblem, err)
	}
	return &Problem{Diagonal: sp}, nil
}

// NewGeneral wraps a general (dense-weight) problem for the registry,
// validating it up front. The returned error wraps ErrInvalidProblem.
func NewGeneral(g *GeneralProblem) (*Problem, error) {
	p := &Problem{General: g}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Validate checks that exactly one representation is present and valid.
// Every failure wraps ErrInvalidProblem (infeasibilities additionally wrap
// ErrInfeasible through the representation's own validation).
func (p *Problem) Validate() error {
	switch {
	case p == nil:
		return fmt.Errorf("%w: nil problem", ErrInvalidProblem)
	case p.Diagonal == nil && p.General == nil:
		return fmt.Errorf("%w: neither a diagonal nor a general representation is set", ErrInvalidProblem)
	case p.Diagonal != nil && p.General != nil:
		return fmt.Errorf("%w: both a diagonal and a general representation are set; set exactly one", ErrInvalidProblem)
	case p.Diagonal != nil:
		if err := p.Diagonal.Validate(); err != nil {
			return fmt.Errorf("%w: %w", ErrInvalidProblem, err)
		}
		return nil
	default:
		if err := p.General.Validate(true); err != nil {
			return fmt.Errorf("%w: %w", ErrInvalidProblem, err)
		}
		return nil
	}
}

// Size returns the problem's matrix dimensions.
func (p *Problem) Size() (m, n int) {
	if p.Diagonal != nil {
		return p.Diagonal.M, p.Diagonal.N
	}
	if p.General != nil {
		return p.General.M, p.General.N
	}
	return 0, 0
}

// asDiagonal returns the diagonal representation or an error naming the
// solver that needed it.
func (p *Problem) asDiagonal(solver string) (*DiagonalProblem, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Diagonal == nil {
		return nil, fmt.Errorf("%w: solver %q requires a diagonal problem; general problems carry dense weights it cannot use (try \"sea-general\" or \"rc\")", ErrInvalidProblem, solver)
	}
	return p.Diagonal, nil
}

// asDiagonalDense returns the diagonal representation for a solver whose
// implementation assumes the dense layout, rejecting CSR storage with an
// actionable error instead of letting the solver index out of bounds.
func (p *Problem) asDiagonalDense(solver string) (*DiagonalProblem, error) {
	d, err := p.asDiagonal(solver)
	if err != nil {
		return nil, err
	}
	if d.Pattern != nil {
		return nil, fmt.Errorf("%w: solver %q supports dense storage only; use \"sea\" for CSR problems or call Densify() first", ErrInvalidProblem, solver)
	}
	return d, nil
}

// asGeneral returns the general representation, lifting a diagonal problem
// to its exact general equivalent (diagonal weight matrices) when needed.
// CSR diagonal problems are rejected: the general form is dense by
// definition, and silently densifying could allocate m·n cells behind the
// caller's back.
func (p *Problem) asGeneral(solver string) (*GeneralProblem, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.General != nil {
		return p.General, nil
	}
	if p.Diagonal.Pattern != nil {
		return nil, fmt.Errorf("%w: solver %q requires the dense general form; use \"sea\" for CSR problems or call Densify() first", ErrInvalidProblem, solver)
	}
	return liftDiagonal(p.Diagonal)
}

// liftDiagonal embeds a diagonal problem into the general form: the same
// objective with G = diag(γ), A = diag(α), B = diag(β). The lift is exact —
// both problems have identical optima — so diagonal problems are solvable by
// every general-problem algorithm in the registry.
func liftDiagonal(d *DiagonalProblem) (*GeneralProblem, error) {
	g := &GeneralProblem{
		M: d.M, N: d.N,
		X0: d.X0,
		S0: d.S0, D0: d.D0,
		SLo: d.SLo, SHi: d.SHi, DLo: d.DLo, DHi: d.DHi,
		Upper: d.Upper,
		Lower: d.Lower,
		Kind:  d.Kind,
	}
	var err error
	if g.G, err = mat.NewDiagonal(d.Gamma); err != nil {
		return nil, fmt.Errorf("sea: lifting diagonal problem: %w", err)
	}
	if d.Alpha != nil {
		if g.A, err = mat.NewDiagonal(d.Alpha); err != nil {
			return nil, fmt.Errorf("sea: lifting diagonal problem: %w", err)
		}
	}
	if d.Beta != nil {
		if g.B, err = mat.NewDiagonal(d.Beta); err != nil {
			return nil, fmt.Errorf("sea: lifting diagonal problem: %w", err)
		}
	}
	return g, nil
}
