// Package sea is a Go reproduction of the Splitting Equilibration Algorithm
// (SEA) of Nagurney and Eydeland for large-scale constrained matrix
// problems, together with the substrates, baselines, datasets and benchmark
// harness needed to regenerate every table and figure of the paper's
// evaluation.
//
// Start with README.md for the architecture, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for the
// paper-versus-measured results. The core solver lives in internal/core;
// cmd/seabench regenerates the experiments; the examples directory holds
// runnable application scenarios.
package sea
