// Contingency-table estimation with uncertain margins (the statistics
// application of the paper's introduction, in the interval-constrained
// formulation of Harrigan and Buchanan (1984) that the paper cites): a
// sampled two-way frequency table is adjusted so that its margins fall
// within confidence intervals around externally known totals, moving as
// little as possible from the sample in the chi-square metric — the
// Deming–Stephan adjustment problem with interval rather than exact margins.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"sea/internal/core"
)

func main() {
	// A sampled 4×5 contingency table (education level × income bracket).
	rows := []string{"NoDiploma", "HighSchool", "College", "Graduate"}
	cols := []string{"<20k", "20-40k", "40-60k", "60-100k", ">100k"}
	sample := []float64{
		38, 25, 12, 5, 1,
		52, 78, 45, 20, 6,
		15, 49, 70, 52, 18,
		3, 12, 30, 41, 28,
	}
	m, n := len(rows), len(cols)

	// Census margins with ±5% confidence intervals.
	rowCensus := []float64{90, 210, 220, 120}
	colCensus := []float64{115, 180, 170, 120, 55}
	slo := make([]float64, m)
	shi := make([]float64, m)
	for i, v := range rowCensus {
		slo[i], shi[i] = 0.95*v, 1.05*v
	}
	dlo := make([]float64, n)
	dhi := make([]float64, n)
	for j, v := range colCensus {
		dlo[j], dhi[j] = 0.95*v, 1.05*v
	}

	// Chi-square weights 1/x⁰ (Deming–Stephan): cells observed more often
	// are adjusted proportionally less.
	gamma := make([]float64, m*n)
	for k, v := range sample {
		gamma[k] = 1 / math.Max(v, 0.5)
	}

	p, err := core.NewInterval(m, n, sample, gamma, slo, shi, dlo, dhi)
	if err != nil {
		log.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Criterion = core.DualGradient
	opts.Epsilon = 1e-9
	sol, err := core.SolveDiagonal(context.Background(), p, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("adjusted in %d SEA iterations; objective %.4f\n\n", sol.Iterations, sol.Objective)
	fmt.Printf("%-11s", "")
	for _, c := range cols {
		fmt.Printf("%9s", c)
	}
	fmt.Printf("%11s\n", "row total")
	for i := 0; i < m; i++ {
		fmt.Printf("%-11s", rows[i])
		var rs float64
		for j := 0; j < n; j++ {
			rs += sol.X[i*n+j]
			fmt.Printf("%9.1f", sol.X[i*n+j])
		}
		fmt.Printf("%11.1f  in [%.1f, %.1f]\n", rs, slo[i], shi[i])
	}
	fmt.Printf("%-11s", "col total")
	for j := 0; j < n; j++ {
		var cs float64
		for i := 0; i < m; i++ {
			cs += sol.X[i*n+j]
		}
		fmt.Printf("%9.1f", cs)
	}
	fmt.Println()
	fmt.Printf("%-11s", "interval")
	for j := 0; j < n; j++ {
		fmt.Printf(" [%3.0f,%3.0f]", dlo[j], dhi[j])
	}
	fmt.Println()

	rep := core.CheckKKT(p, sol)
	fmt.Printf("\nKKT max violation: %.2e (certified optimal)\n", rep.Max())

	// Compare against pinning the margins exactly at the census values:
	// the interval version moves less mass from the sample.
	rowFixed, colFixed := scale(rowCensus, colCensus)
	pf, err := core.NewFixed(m, n, sample, gamma, rowFixed, colFixed)
	if err != nil {
		log.Fatal(err)
	}
	solF, err := core.SolveDiagonal(context.Background(), pf, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("objective with exact margins: %.4f  vs interval margins: %.4f\n",
		solF.Objective, sol.Objective)
	fmt.Println("(interval margins always cost no more — the feasible set is larger)")
}

// scale rescales the column census so the fixed-margin problem is feasible
// (Σ rows = Σ cols exactly), returning (rows, cols).
func scale(rowCensus, colCensus []float64) ([]float64, []float64) {
	var rs, cs float64
	for _, v := range rowCensus {
		rs += v
	}
	for _, v := range colCensus {
		cs += v
	}
	out := make([]float64, len(colCensus))
	for j, v := range colCensus {
		out[j] = v * rs / cs
	}
	return rowCensus, out
}
