// Social accounting matrix balancing (the Table 3 scenario): the embedded
// Stone-style 5-account SAM, assembled from disparate sources, is estimated
// so that every account's receipts (row total) equal its expenditures
// (column total) — the definitional balance constraint — while staying close
// to the raw data in the chi-square metric and estimating the account totals
// themselves (paper eq. (9)).
package main

import (
	"context"
	"fmt"
	"log"

	"sea/internal/core"
	"sea/internal/datasets"
	"sea/internal/problems"
)

func main() {
	sam := datasets.Stone()
	n := sam.N()

	fmt.Printf("raw %s SAM (%d accounts, %d transactions):\n", sam.Name, n, sam.Transactions())
	printSAM(sam.Accounts, sam.X0, n)
	fmt.Println("\naccount imbalances in the raw data (receipts − expenditures):")
	for i := 0; i < n; i++ {
		var row, col float64
		for j := 0; j < n; j++ {
			row += sam.X0[i*n+j]
			col += sam.X0[j*n+i]
		}
		fmt.Printf("  %-12s %+8.2f\n", sam.Accounts[i], row-col)
	}

	p := problems.SAMFromDataset(sam)
	opts := core.DefaultOptions()
	opts.Criterion = core.RelBalance
	opts.Epsilon = 1e-6

	sol, err := core.SolveDiagonal(context.Background(), p, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nbalanced SAM after %d SEA iterations:\n", sol.Iterations)
	printSAM(sam.Accounts, sol.X, n)
	fmt.Println("\nestimated account totals (receipts = expenditures):")
	for i := 0; i < n; i++ {
		var row, col float64
		for j := 0; j < n; j++ {
			row += sol.X[i*n+j]
			col += sol.X[j*n+i]
		}
		fmt.Printf("  %-12s receipts %8.2f  expenditures %8.2f  (prior total %8.2f)\n",
			sam.Accounts[i], row, col, sam.S0[i])
	}
}

func printSAM(accounts []string, x []float64, n int) {
	fmt.Printf("%14s", "")
	for j := 0; j < n; j++ {
		fmt.Printf("%10.8s", accounts[j])
	}
	fmt.Println()
	for i := 0; i < n; i++ {
		fmt.Printf("%-14.12s", accounts[i])
		for j := 0; j < n; j++ {
			fmt.Printf("%10.2f", x[i*n+j])
		}
		fmt.Println()
	}
}
