// Input/output table update (the Table 2 scenario): a base inter-industry
// flow table is projected to a new year with grown sector totals. The
// example also contrasts SEA with the classical RAS method, including the
// infeasible-RAS situation (Mohr, Crown and Polenske 1987) that RAS cannot
// solve but SEA can: a sparsity pattern under which no biproportional
// scaling reaches the target totals.
package main

import (
	"context"
	"fmt"
	"log"

	"sea/internal/baseline"
	"sea/internal/core"
	"sea/internal/problems"
)

func main() {
	// A 60-sector table at 50% density, totals grown 10% — a miniature of
	// the paper's IOC72a experiment.
	spec := problems.IOSpec{Name: "demo", Sectors: 60, Density: 0.5, Variant: problems.IOGrowth10, Seed: 11}
	p := problems.IOTable(spec)

	opts := core.DefaultOptions()
	opts.Criterion = core.MaxAbsDelta
	opts.Epsilon = 0.01 // the paper's Table 2 tolerance

	sol, err := core.SolveDiagonal(context.Background(), p, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SEA: updated %d-sector table in %d iterations\n", spec.Sectors, sol.Iterations)
	fmt.Printf("     objective %.4f, max KKT violation %.2e\n",
		sol.Objective, core.CheckKKT(p, sol).Max())

	// RAS on the same instance (positivity pattern is feasible here).
	rasOpts := core.DefaultOptions()
	rasOpts.Epsilon = 1e-6
	rasOpts.MaxIterations = 10000
	ras, err := baseline.RAS(context.Background(), p.M, p.N, p.X0, p.S0, p.D0, rasOpts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RAS: converged=%v in %d sweeps (different objective: RAS solves the biproportional, not the weighted least-squares, problem)\n\n",
		ras.Converged, ras.Iterations)

	// The infeasible-RAS case: sector 1 only ships to sector 1, but sector
	// 1's purchases must shrink while sector 1's sales must grow. RAS,
	// which preserves zeros, oscillates forever; SEA opens the zero cells.
	x0 := []float64{
		50, 0, 0,
		5, 10, 10,
		5, 10, 10,
	}
	s0 := []float64{60, 25, 25} // row 1 must grow to 60...
	d0 := []float64{40, 35, 35} // ...but column 1 must shrink to 40.
	fmt.Println("infeasible-RAS instance (zero pattern blocks the totals):")
	rasBadOpts := core.DefaultOptions()
	rasBadOpts.Epsilon = 1e-6
	rasBadOpts.MaxIterations = 2000
	rasBad, err := baseline.RAS(context.Background(), 3, 3, x0, s0, d0, rasBadOpts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  RAS after %d sweeps: converged=%v (row err %.3f, col err %.3f)\n",
		rasBad.Iterations, rasBad.Converged, rasBad.MaxRowErr, rasBad.MaxColErr)

	gamma := make([]float64, 9)
	for k := range gamma {
		gamma[k] = 1
	}
	p2, err := core.NewFixed(3, 3, x0, gamma, s0, d0)
	if err != nil {
		log.Fatal(err)
	}
	o2 := core.DefaultOptions()
	o2.Criterion = core.DualGradient
	o2.Epsilon = 1e-9
	sol2, err := core.SolveDiagonal(context.Background(), p2, o2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  SEA: converged=%v in %d iterations; estimate:\n", sol2.Converged, sol2.Iterations)
	for i := 0; i < 3; i++ {
		fmt.Print("   ")
		for j := 0; j < 3; j++ {
			fmt.Printf("%8.3f", sol2.X[i*3+j])
		}
		fmt.Println()
	}
	fmt.Println("  (mass has moved into the structurally zero cells, which RAS can never do)")
}
