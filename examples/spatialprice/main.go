// Spatial price equilibrium (the Table 5 scenario): a market network with
// linear supply price, demand price and transport cost functions is brought
// to equilibrium via the isomorphism with the elastic constrained matrix
// problem (paper Section 2), and the equilibrium conditions — delivered
// supply price ≥ demand price, with equality on used routes — are verified
// explicitly.
package main

import (
	"context"
	"fmt"
	"log"

	"sea/internal/core"
	"sea/internal/spe"
)

func main() {
	const m, n = 12, 10
	p := spe.Generate(m, n, 2026)

	opts := core.DefaultOptions()
	opts.Criterion = core.DualGradient
	opts.Epsilon = 1e-8
	opts.MaxIterations = 500000

	eq, err := p.Solve(context.Background(), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("equilibrium over %d supply and %d demand markets in %d SEA iterations\n\n",
		m, n, eq.Iterations)

	fmt.Println("supply markets:  production   price")
	for i := 0; i < m; i++ {
		fmt.Printf("  s%-3d %16.2f %8.2f\n", i, eq.S[i], eq.SupplyPrice[i])
	}
	fmt.Println("demand markets:  consumption  price")
	for j := 0; j < n; j++ {
		fmt.Printf("  d%-3d %16.2f %8.2f\n", j, eq.D[j], eq.DemandPrice[j])
	}

	var used, unused int
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if eq.X[i*n+j] > 1e-7 {
				used++
			} else {
				unused++
			}
		}
	}
	fmt.Printf("\nroutes used: %d of %d\n", used, used+unused)

	// The economics check: on every used route the delivered price equals
	// the demand price; on every unused route it is at least as high.
	v := p.Verify(eq, 1e-7)
	fmt.Printf("equilibrium condition violations:\n")
	fmt.Printf("  |π_i + c_ij − ρ_j| on used routes: %.2e\n", v.MaxComplementarity)
	fmt.Printf("  unused-route underpricing:         %.2e\n", v.MaxUnderprice)
	fmt.Printf("  conservation:                      %.2e\n", v.MaxConservation)
	if v.Max() < 1e-5 {
		fmt.Println("=> a genuine spatial price equilibrium")
	}
}
