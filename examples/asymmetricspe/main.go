// Asymmetric spatial price equilibrium: supply and demand prices couple
// markets through asymmetric cross-price effects, so no equivalent
// optimization problem exists (the variational-inequality setting the
// paper's Section 2 relates constrained matrix problems to). The projection
// method computes the equilibrium by solving a sequence of diagonal elastic
// constrained matrix problems with the splitting equilibration algorithm,
// and the example quantifies how the asymmetric interactions shift the
// equilibrium away from the separable model's.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"sea/internal/mat"
	"sea/internal/spe"
)

func main() {
	const m, n = 6, 6
	p := spe.GenerateAsymmetric(m, n, 7)

	eq, err := p.SolveAsymmetric(context.Background(), 1e-9, 50000, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("asymmetric equilibrium in %d projection steps\n", eq.Iterations)
	v := p.VerifyAsymmetric(eq, 1e-7)
	fmt.Printf("equilibrium violations: complementarity %.2e, underprice %.2e, conservation %.2e\n\n",
		v.MaxComplementarity, v.MaxUnderprice, v.MaxConservation)

	fmt.Println("market   production  supply price   consumption  demand price")
	for i := 0; i < m; i++ {
		fmt.Printf("  %-6d %11.2f %13.2f %13.2f %13.2f\n",
			i, eq.S[i], eq.SupplyPrice[i], eq.D[i], eq.DemandPrice[i])
	}

	// The same instance with the cross-price effects removed: how much do
	// the asymmetric interactions matter?
	sep := &spe.AsymmetricProblem{
		M: m, N: n,
		SupplyIntercept: p.SupplyIntercept,
		DemandIntercept: p.DemandIntercept,
		CostIntercept:   p.CostIntercept,
		CostSlope:       p.CostSlope,
	}
	rd := make([]float64, m*m)
	wd := make([]float64, n*n)
	for i := 0; i < m; i++ {
		rd[i*m+i] = p.SupplyMatrix.Diag(i)
	}
	for j := 0; j < n; j++ {
		wd[j*n+j] = p.DemandMatrix.Diag(j)
	}
	sep.SupplyMatrix = mat.MustDenseGeneral(m, rd)
	sep.DemandMatrix = mat.MustDenseGeneral(n, wd)
	eqSep, err := sep.SolveAsymmetric(context.Background(), 1e-9, 50000, nil)
	if err != nil {
		log.Fatal(err)
	}

	var maxShift, totA, totS float64
	for k := range eq.X {
		if d := math.Abs(eq.X[k] - eqSep.X[k]); d > maxShift {
			maxShift = d
		}
		totA += eq.X[k]
		totS += eqSep.X[k]
	}
	fmt.Printf("\nignoring the cross-price effects would misestimate flows by up to %.2f units\n", maxShift)
	fmt.Printf("total trade: %.2f (asymmetric) vs %.2f (separable approximation)\n", totA, totS)
}
