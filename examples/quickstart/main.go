// Quickstart: estimate a small matrix subject to known row and column
// totals — the classical constrained matrix problem (paper eq. (13)) —
// using the splitting equilibration algorithm.
//
// A prior 3×4 trade table is updated so that its rows sum to new supply
// totals and its columns to new demand totals, staying as close to the
// prior as possible in the chi-square metric.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"sea/internal/core"
)

func main() {
	const m, n = 3, 4
	// Prior matrix: last year's observed flows.
	x0 := []float64{
		10, 20, 5, 15,
		8, 12, 30, 10,
		25, 5, 10, 20,
	}
	// Chi-square weights γ = 1/x⁰: proportionally reliable priors.
	gamma := make([]float64, m*n)
	for k, v := range x0 {
		gamma[k] = 1 / math.Max(v, 0.1)
	}
	// This year's known totals: rows grew unevenly; columns rebalanced.
	s0 := []float64{60, 66, 66}
	d0 := []float64{50, 40, 50, 52}

	p, err := core.NewFixed(m, n, x0, gamma, s0, d0)
	if err != nil {
		log.Fatal(err)
	}

	opts := core.DefaultOptions()
	opts.Criterion = core.DualGradient
	opts.Epsilon = 1e-9

	sol, err := core.SolveDiagonal(context.Background(), p, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("converged in %d iterations (residual %.2g)\n\n", sol.Iterations, sol.Residual)
	fmt.Println("prior  ->  estimate (row totals)")
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			fmt.Printf("%6.1f", x0[i*n+j])
		}
		fmt.Print("   ->")
		var rs float64
		for j := 0; j < n; j++ {
			v := sol.X[i*n+j]
			rs += v
			fmt.Printf("%7.2f", v)
		}
		fmt.Printf("   (%.2f = %.2f)\n", rs, s0[i])
	}
	fmt.Println()
	fmt.Println("column totals:")
	for j := 0; j < n; j++ {
		var cs float64
		for i := 0; i < m; i++ {
			cs += sol.X[i*n+j]
		}
		fmt.Printf("  col %d: %.2f (target %.2f)\n", j, cs, d0[j])
	}
	fmt.Printf("\nobjective (weighted squared deviation): %.4f\n", sol.Objective)
	fmt.Printf("duality gap: %.2e\n", sol.Gap())

	// Certify optimality independently of the solver.
	rep := core.CheckKKT(p, sol)
	fmt.Printf("KKT max violation: %.2e\n", rep.Max())
}
