// Migration-table projection (the Table 4 scenario): a 48×48 state-to-state
// migration flow table is projected forward under uncertain origin and
// destination totals — the elastic constrained matrix problem (paper
// eq. (5)) with unit weights, exactly as the paper sets up its MIG…a
// examples. The output highlights the largest projected interstate flows
// and the states with the largest estimated net migration.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"sea/internal/core"
	"sea/internal/datasets"
	"sea/internal/problems"
)

func main() {
	spec := problems.MigrationSpec{
		Name: "MIG7580a", Period: "7580",
		Variant: problems.MigGrowthSmall, Seed: 75,
	}
	p := problems.MigrationProblem(spec)
	states := datasets.States()
	n := len(states)

	opts := core.DefaultOptions()
	opts.Criterion = core.DualGradient
	opts.Epsilon = 0.01 // the paper's Table 4 tolerance
	opts.MaxIterations = 500000

	sol, err := core.SolveDiagonal(context.Background(), p, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("projected %s in %d SEA iterations (residual %.3g)\n\n",
		spec.Name, sol.Iterations, sol.Residual)

	type flow struct {
		from, to string
		v        float64
	}
	var flows []flow
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				flows = append(flows, flow{states[i].Name, states[j].Name, sol.X[i*n+j]})
			}
		}
	}
	sort.Slice(flows, func(a, b int) bool { return flows[a].v > flows[b].v })
	fmt.Println("ten largest projected interstate flows (thousands of movers):")
	for _, f := range flows[:10] {
		fmt.Printf("  %-15s -> %-15s %9.0f\n", f.from, f.to, f.v)
	}

	type net struct {
		state string
		v     float64
	}
	nets := make([]net, n)
	for i := 0; i < n; i++ {
		nets[i] = net{state: states[i].Name, v: sol.D[i] - sol.S[i]} // in − out
	}
	sort.Slice(nets, func(a, b int) bool { return nets[a].v > nets[b].v })
	fmt.Println("\nlargest projected net gainers:")
	for _, e := range nets[:5] {
		fmt.Printf("  %-15s %+9.0f\n", e.state, e.v)
	}
	fmt.Println("largest projected net losers:")
	for _, e := range nets[n-5:] {
		fmt.Printf("  %-15s %+9.0f\n", e.state, e.v)
	}
}
