package equilibrate

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// bisect finds the root of p.Phi(λ) = p.R by bisection, as an independent
// reference for the sweep-based solver.
func bisect(p *Problem) (float64, bool) {
	lo, hi := -1.0, 1.0
	for i := 0; p.Phi(lo) > p.R; i++ {
		lo *= 2
		if i > 200 {
			return 0, false
		}
	}
	for i := 0; p.Phi(hi) < p.R; i++ {
		hi *= 2
		if i > 200 {
			return 0, false
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if p.Phi(mid) < p.R {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, true
}

func solveOK(t *testing.T, p *Problem) ([]float64, Result) {
	t.Helper()
	x := make([]float64, len(p.C))
	res, err := p.Solve(x, nil)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return x, res
}

func TestSimpleFixed(t *testing.T) {
	// min (x1-1)² + (x2-1)²  s.t. x1+x2 = 4  →  x = (2,2), λ = 2.
	p := &Problem{C: []float64{1, 1}, A: []float64{0.5, 0.5}, R: 4}
	x, res := solveOK(t, p)
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Errorf("x = %v, want (2,2)", x)
	}
	if math.Abs(res.Lambda-2) > 1e-12 {
		t.Errorf("lambda = %g, want 2", res.Lambda)
	}
	if math.Abs(res.Total-4) > 1e-12 {
		t.Errorf("total = %g, want 4", res.Total)
	}
	if res.Ops <= 0 {
		t.Error("ops not charged")
	}
}

func TestNonnegativityBinds(t *testing.T) {
	// c = (3,-2), a = (.5,.5), fixed total 1: only term 1 active,
	// 3 + λ/2 = 1 → λ = -4; term 2 value -2-2 < 0 stays at zero.
	p := &Problem{C: []float64{3, -2}, A: []float64{0.5, 0.5}, R: 1}
	x, res := solveOK(t, p)
	if math.Abs(x[0]-1) > 1e-12 || x[1] != 0 {
		t.Errorf("x = %v, want (1,0)", x)
	}
	if math.Abs(res.Lambda+4) > 1e-12 {
		t.Errorf("lambda = %g, want -4", res.Lambda)
	}
}

func TestElasticTotal(t *testing.T) {
	// min (x-1)² + (s-3)²  s.t. x = s, x ≥ 0.
	// Optimum: x = s = 2, λ from s = s0 - eλ: 2 = 3 - 0.5λ → λ = 2.
	p := &Problem{C: []float64{1}, A: []float64{0.5}, E: 0.5, R: 3}
	x, res := solveOK(t, p)
	if math.Abs(x[0]-2) > 1e-12 {
		t.Errorf("x = %v, want 2", x)
	}
	if math.Abs(res.Lambda-2) > 1e-12 {
		t.Errorf("lambda = %g, want 2", res.Lambda)
	}
}

func TestUpperBounds(t *testing.T) {
	// Both variables want to be large, but x1 ≤ 1.5 saturates.
	p := &Problem{
		C: []float64{1, 1},
		A: []float64{0.5, 0.5},
		U: []float64{1.5, math.Inf(1)},
		R: 4,
	}
	x, res := solveOK(t, p)
	if math.Abs(x[0]-1.5) > 1e-12 {
		t.Errorf("x[0] = %g, want saturated 1.5", x[0])
	}
	if math.Abs(x[1]-2.5) > 1e-12 {
		t.Errorf("x[1] = %g, want 2.5", x[1])
	}
	// λ: x2 = 1 + λ/2 = 2.5 → λ = 3.
	if math.Abs(res.Lambda-3) > 1e-12 {
		t.Errorf("lambda = %g, want 3", res.Lambda)
	}
}

func TestTargetAtSumOfBounds(t *testing.T) {
	p := &Problem{
		C: []float64{0, 0},
		A: []float64{1, 1},
		U: []float64{1, 2},
		R: 3,
	}
	x, _ := solveOK(t, p)
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-2) > 1e-9 {
		t.Errorf("x = %v, want (1,2)", x)
	}
}

func TestZeroTarget(t *testing.T) {
	p := &Problem{C: []float64{2, 5}, A: []float64{1, 1}, R: 0}
	x, res := solveOK(t, p)
	if x[0] != 0 || x[1] != 0 {
		t.Errorf("x = %v, want zeros", x)
	}
	if got := p.Phi(res.Lambda); math.Abs(got) > 1e-12 {
		t.Errorf("Phi(lambda) = %g, want 0", got)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{C: []float64{1}, A: []float64{1}, R: -1}
	x := make([]float64, 1)
	if _, err := p.Solve(x, nil); !errors.Is(err, ErrInfeasible) {
		t.Errorf("negative fixed total: err = %v, want ErrInfeasible", err)
	}
	p2 := &Problem{C: []float64{0}, A: []float64{1}, U: []float64{1}, R: 2}
	if _, err := p2.Solve(x, nil); !errors.Is(err, ErrInfeasible) {
		t.Errorf("target above bound sum: err = %v, want ErrInfeasible", err)
	}
}

func TestEmptyProblem(t *testing.T) {
	p := &Problem{E: 0.5, R: 3}
	_, res := solveOK(t, p)
	if math.Abs(res.Lambda-6) > 1e-12 {
		t.Errorf("lambda = %g, want 6", res.Lambda)
	}
	pFixed := &Problem{R: 0}
	if _, err := pFixed.Solve(nil, nil); err != nil {
		t.Errorf("empty fixed zero-target: %v", err)
	}
	pBad := &Problem{R: 1}
	if _, err := pBad.Solve(nil, nil); !errors.Is(err, ErrInfeasible) {
		t.Errorf("empty fixed positive target: err = %v", err)
	}
}

func TestValidation(t *testing.T) {
	x := make([]float64, 2)
	p := &Problem{C: []float64{1, 1}, A: []float64{1}, R: 1}
	if _, err := p.Solve(x, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	p2 := &Problem{C: []float64{1}, A: []float64{0}, R: 1}
	if _, err := p2.Solve(x[:1], nil); err == nil {
		t.Error("zero slope accepted")
	}
	p3 := &Problem{C: []float64{1}, A: []float64{1}, E: -1, R: 1}
	if _, err := p3.Solve(x[:1], nil); err == nil {
		t.Error("negative elastic slope accepted")
	}
}

// randomProblem builds a random feasible instance. withElastic and withBounds
// toggle those features.
func randomProblem(rng *rand.Rand, n int, withElastic, withBounds bool) *Problem {
	p := &Problem{
		C: make([]float64, n),
		A: make([]float64, n),
	}
	for j := 0; j < n; j++ {
		p.C[j] = rng.NormFloat64() * 10
		p.A[j] = 0.01 + rng.Float64()*5
	}
	if withBounds {
		p.U = make([]float64, n)
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.5 {
				p.U[j] = math.Inf(1)
			} else {
				p.U[j] = 0.5 + rng.Float64()*10
			}
		}
	}
	if withElastic {
		p.E = 0.01 + rng.Float64()
		p.R = rng.NormFloat64() * 20
	} else {
		// Pick a reachable target.
		maxR := 0.0
		if p.U == nil {
			maxR = 1000
		} else {
			for _, u := range p.U {
				if math.IsInf(u, 1) {
					maxR = 1000
					break
				}
				maxR += u
			}
		}
		p.R = rng.Float64() * maxR
	}
	return p
}

// checkSolution verifies the KKT conditions of a solve: the root property
// φ(λ)=R, the clamp form of x, and feasibility Σx + eλ = R.
func checkSolution(t *testing.T, p *Problem, x []float64, res Result) {
	t.Helper()
	scale := 1 + math.Abs(p.R) + math.Abs(res.Lambda)
	if got := p.Phi(res.Lambda); math.Abs(got-p.R) > 1e-8*scale {
		t.Errorf("Phi(λ)=%g, want R=%g", got, p.R)
	}
	var total float64
	for j := range x {
		want := p.C[j] + p.A[j]*res.Lambda
		if want < 0 {
			want = 0
		}
		if p.U != nil && want > p.U[j] {
			want = p.U[j]
		}
		if math.Abs(x[j]-want) > 1e-9*(1+math.Abs(want)) {
			t.Errorf("x[%d]=%g, want clamp %g", j, x[j], want)
		}
		if x[j] < 0 {
			t.Errorf("x[%d]=%g negative", j, x[j])
		}
		total += x[j]
	}
	if math.Abs(total-res.Total) > 1e-8*(1+math.Abs(total)) {
		t.Errorf("Total=%g, but Σx=%g", res.Total, total)
	}
}

func TestRandomAgainstBisection(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	ws := NewWorkspace(64)
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.IntN(60)
		p := randomProblem(rng, n, trial%2 == 0, trial%3 == 0)
		x := make([]float64, n)
		res, err := p.Solve(x, ws)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkSolution(t, p, x, res)
		ref, ok := bisect(p)
		if !ok {
			continue
		}
		// Compare via Phi, since flat segments make λ non-unique.
		if math.Abs(p.Phi(ref)-p.Phi(res.Lambda)) > 1e-6*(1+math.Abs(p.R)) {
			t.Errorf("trial %d: sweep λ=%g vs bisection λ=%g disagree in Phi", trial, res.Lambda, ref)
		}
	}
}

// Property: the multiplier is monotone nondecreasing in the target R.
func TestLambdaMonotoneInTarget(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 1))
		p := randomProblem(r, 1+r.IntN(20), false, false)
		x := make([]float64, len(p.C))
		p.R = 1 + r.Float64()*100
		res1, err1 := p.Solve(x, nil)
		p2 := *p
		p2.R = p.R + 1 + r.Float64()*100
		res2, err2 := p2.Solve(x, nil)
		if err1 != nil || err2 != nil {
			return false
		}
		return res2.Lambda >= res1.Lambda-1e-9
	}
	cfg := &quick.Config{MaxCount: 200, Rand: nil}
	_ = rng
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: scaling all weights γ by a constant leaves the primal solution
// unchanged (the objective is scaled but the minimizer is not) for fixed
// totals.
func TestWeightScaleInvariance(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 16))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.IntN(20)
		p := randomProblem(rng, n, false, false)
		k := 0.1 + rng.Float64()*10
		// Scaling γ by k scales a = 1/(2γ) by 1/k. c = x⁰ + aμ also changes
		// unless μ = 0; emulate μ = 0 by treating C as x⁰ directly.
		p2 := &Problem{C: p.C, A: make([]float64, n), R: p.R}
		for j := range p.A {
			p2.A[j] = p.A[j] / k
		}
		x1 := make([]float64, n)
		x2 := make([]float64, n)
		if _, err := p.Solve(x1, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := p2.Solve(x2, nil); err != nil {
			t.Fatal(err)
		}
		for j := range x1 {
			if math.Abs(x1[j]-x2[j]) > 1e-6*(1+math.Abs(x1[j])) {
				t.Fatalf("trial %d: scale invariance violated at %d: %g vs %g", trial, j, x1[j], x2[j])
			}
		}
	}
}

func TestWorkspaceReuse(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 18))
	ws := NewWorkspace(8)
	var first []float64
	p := randomProblem(rng, 40, true, true)
	for i := 0; i < 3; i++ {
		x := make([]float64, 40)
		res, err := p.Solve(x, ws)
		if err != nil {
			t.Fatal(err)
		}
		checkSolution(t, p, x, res)
		if first == nil {
			first = x
		} else {
			for j := range x {
				if x[j] != first[j] {
					t.Fatalf("workspace reuse changed results at %d", j)
				}
			}
		}
	}
}

func TestWorkspaceGrow(t *testing.T) {
	ws := NewWorkspace(2)
	ws.grow(10)
	if len(ws.C) != 10 || len(ws.A) != 10 {
		t.Errorf("grow failed: len C=%d A=%d", len(ws.C), len(ws.A))
	}
	ws.grow(5)
	if len(ws.C) != 5 {
		t.Errorf("shrink view failed: len C=%d", len(ws.C))
	}
}

func TestDuplicateBreakpoints(t *testing.T) {
	// All breakpoints identical: c_j = 0, a_j = 1 → θ_j = 0 for all j.
	n := 10
	p := &Problem{C: make([]float64, n), A: make([]float64, n), R: 5}
	for j := 0; j < n; j++ {
		p.A[j] = 1
	}
	x, res := solveOK(t, p)
	for j := range x {
		if math.Abs(x[j]-0.5) > 1e-12 {
			t.Errorf("x[%d] = %g, want 0.5", j, x[j])
		}
	}
	if math.Abs(res.Lambda-0.5) > 1e-12 {
		t.Errorf("lambda = %g, want 0.5", res.Lambda)
	}
}

func TestHugeSpread(t *testing.T) {
	// Mimic the paper's data spread: x⁰ ∈ [.1, 10000], γ = 1/x⁰.
	rng := rand.New(rand.NewPCG(19, 20))
	n := 500
	p := &Problem{C: make([]float64, n), A: make([]float64, n)}
	var sum float64
	for j := 0; j < n; j++ {
		x0 := 0.1 + rng.Float64()*9999.9
		p.C[j] = x0
		p.A[j] = x0 / 2 // a = 1/(2γ) with γ = 1/x⁰
		sum += x0
	}
	p.R = 2 * sum // the paper doubles the totals
	x, res := solveOK(t, p)
	checkSolution(t, p, x, res)
	if math.Abs(res.Total-p.R) > 1e-6*p.R {
		t.Errorf("total = %g, want %g", res.Total, p.R)
	}
}

func BenchmarkSolve1000(b *testing.B) {
	rng := rand.New(rand.NewPCG(21, 22))
	p := randomProblem(rng, 1000, false, false)
	ws := NewWorkspace(1000)
	x := make([]float64, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Solve(x, ws); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveElastic1000(b *testing.B) {
	rng := rand.New(rand.NewPCG(23, 24))
	p := randomProblem(rng, 1000, true, false)
	ws := NewWorkspace(1000)
	x := make([]float64, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Solve(x, ws); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSolveIntervalSlack(t *testing.T) {
	// Free total 3 lies inside [2, 5]: constraint slack, λ = 0.
	p := &Problem{C: []float64{1, 2}, A: []float64{1, 1}}
	x := make([]float64, 2)
	res, err := p.SolveInterval(2, 5, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda != 0 || x[0] != 1 || x[1] != 2 {
		t.Errorf("slack case wrong: λ=%g x=%v", res.Lambda, x)
	}
	if res.Total != 3 {
		t.Errorf("total = %g", res.Total)
	}
}

func TestSolveIntervalUpperBinds(t *testing.T) {
	// Free total 3 exceeds hi = 2: behaves like a fixed total at 2, λ < 0.
	p := &Problem{C: []float64{1, 2}, A: []float64{1, 1}}
	x := make([]float64, 2)
	res, err := p.SolveInterval(0, 2, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda >= 0 {
		t.Errorf("λ = %g, want negative at the upper bound", res.Lambda)
	}
	if math.Abs(res.Total-2) > 1e-12 {
		t.Errorf("total = %g, want 2", res.Total)
	}
}

func TestSolveIntervalLowerBinds(t *testing.T) {
	p := &Problem{C: []float64{1, 2}, A: []float64{1, 1}}
	x := make([]float64, 2)
	res, err := p.SolveInterval(5, 9, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda <= 0 {
		t.Errorf("λ = %g, want positive at the lower bound", res.Lambda)
	}
	if math.Abs(res.Total-5) > 1e-12 {
		t.Errorf("total = %g, want 5", res.Total)
	}
}

func TestSolveIntervalWithUpperBounds(t *testing.T) {
	// Box bounds clamp the free solution before the interval test.
	p := &Problem{C: []float64{5, 5}, A: []float64{1, 1}, U: []float64{1, 1}}
	x := make([]float64, 2)
	res, err := p.SolveInterval(0, 10, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 2 || x[0] != 1 || x[1] != 1 {
		t.Errorf("bounded slack case wrong: %v total %g", x, res.Total)
	}
}

func TestSolveIntervalErrors(t *testing.T) {
	p := &Problem{C: []float64{1}, A: []float64{1}, E: 0.5}
	x := make([]float64, 1)
	if _, err := p.SolveInterval(0, 1, x, nil); err == nil {
		t.Error("elastic slope accepted")
	}
	p2 := &Problem{C: []float64{1}, A: []float64{1}}
	if _, err := p2.SolveInterval(3, 2, x, nil); err == nil {
		t.Error("empty interval accepted")
	}
	if _, err := p2.SolveInterval(0, 1, make([]float64, 2), nil); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestSolveBisectionMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.IntN(40)
		p := randomProblem(rng, n, trial%2 == 0, trial%3 == 0)
		xe := make([]float64, n)
		xb := make([]float64, n)
		exact, err := p.Solve(xe, nil)
		if err != nil {
			t.Fatal(err)
		}
		bis, err := p.SolveBisection(xb, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p.Phi(bis.Lambda)-p.Phi(exact.Lambda)) > 1e-6*(1+math.Abs(p.R)) {
			t.Fatalf("trial %d: bisection and exact disagree", trial)
		}
		for j := range xe {
			if math.Abs(xe[j]-xb[j]) > 1e-6*(1+math.Abs(xe[j])) {
				t.Fatalf("trial %d: x[%d] differs: %g vs %g", trial, j, xe[j], xb[j])
			}
		}
	}
}

func TestSolveBisectionInfeasible(t *testing.T) {
	p := &Problem{C: []float64{1}, A: []float64{1}, R: -5}
	x := make([]float64, 1)
	if _, err := p.SolveBisection(x, 1e-10); err == nil {
		t.Error("unreachable target accepted")
	}
}

// FuzzKernel feeds arbitrary coefficients to the kernel; whenever a solve
// succeeds, the root property and the clamp form must hold.
func FuzzKernel(f *testing.F) {
	f.Add(1.0, 0.5, 2.0, 0.25, 3.0, 0.0)
	f.Add(-2.0, 1.0, 5.0, 2.0, 0.0, 0.5)
	f.Add(0.0, 0.1, 0.0, 0.1, 1.0, 0.0)
	f.Fuzz(func(t *testing.T, c1, a1, c2, a2, r, e float64) {
		for _, v := range []float64{c1, a1, c2, a2, r, e} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return
			}
		}
		if a1 <= 1e-9 || a2 <= 1e-9 || e < 0 {
			return
		}
		p := &Problem{C: []float64{c1, c2}, A: []float64{a1, a2}, E: e, R: r}
		x := make([]float64, 2)
		res, err := p.Solve(x, nil)
		if err != nil {
			return // infeasible inputs are fine
		}
		scale := 1 + math.Abs(r) + math.Abs(res.Lambda)*(a1+a2+e)
		if got := p.Phi(res.Lambda); math.Abs(got-r) > 1e-6*scale {
			t.Fatalf("Phi(λ)=%g, want %g (λ=%g)", got, r, res.Lambda)
		}
		for j, v := range x {
			if v < 0 {
				t.Fatalf("x[%d] = %g negative", j, v)
			}
		}
	})
}

func TestLowerBoundsBind(t *testing.T) {
	// Both variables want to be small, but x₁ ≥ 3 holds it up:
	// min (x₁−1)² + (x₂−1)² s.t. x₁+x₂ = 5, x₁ ≥ 3 → x = (3, 2), λ = 2.
	p := &Problem{
		C: []float64{1, 1},
		A: []float64{0.5, 0.5},
		L: []float64{3, 0},
		R: 5,
	}
	x, res := solveOK(t, p)
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Errorf("x = %v, want (3,2)", x)
	}
	if math.Abs(res.Lambda-2) > 1e-12 {
		t.Errorf("λ = %g, want 2", res.Lambda)
	}
}

func TestLowerBoundsSlack(t *testing.T) {
	// Lower bounds below the unconstrained optimum change nothing.
	base := &Problem{C: []float64{2, 3}, A: []float64{1, 1}, R: 8}
	bounded := &Problem{C: []float64{2, 3}, A: []float64{1, 1}, L: []float64{0.5, 0.5}, R: 8}
	xb := make([]float64, 2)
	xu := make([]float64, 2)
	rb, err := bounded.Solve(xb, nil)
	if err != nil {
		t.Fatal(err)
	}
	ru, err := base.Solve(xu, nil)
	if err != nil {
		t.Fatal(err)
	}
	if xb[0] != xu[0] || xb[1] != xu[1] || rb.Lambda != ru.Lambda {
		t.Errorf("slack lower bounds changed the solution: %v vs %v", xb, xu)
	}
}

func TestLowerBoundsInfeasible(t *testing.T) {
	p := &Problem{C: []float64{0, 0}, A: []float64{1, 1}, L: []float64{3, 3}, R: 5}
	x := make([]float64, 2)
	if _, err := p.Solve(x, nil); !errors.Is(err, ErrInfeasible) {
		t.Errorf("target below Σl accepted: %v", err)
	}
}

func TestLowerEqualsUpperPinsEntry(t *testing.T) {
	// l = u pins a variable exactly.
	p := &Problem{
		C: []float64{1, 1},
		A: []float64{0.5, 0.5},
		L: []float64{2, 0},
		U: []float64{2, math.Inf(1)},
		R: 7,
	}
	x, _ := solveOK(t, p)
	if x[0] != 2 {
		t.Errorf("pinned entry = %g, want 2", x[0])
	}
	if math.Abs(x[1]-5) > 1e-12 {
		t.Errorf("free entry = %g, want 5", x[1])
	}
}

func TestLowerBoundsAgainstBisection(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 34))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.IntN(30)
		p := randomProblem(rng, n, trial%2 == 0, trial%3 == 0)
		p.L = make([]float64, n)
		var lsum float64
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.5 {
				p.L[j] = rng.Float64() * 3
			}
			if p.U != nil && p.U[j] < p.L[j] {
				p.U[j] = p.L[j] + rng.Float64()
			}
			lsum += p.L[j]
		}
		if p.E == 0 && p.R < lsum {
			p.R = lsum + rng.Float64()*10
			if p.U != nil {
				var usum float64
				for _, u := range p.U {
					usum += u
				}
				if p.R > usum {
					p.R = (lsum + usum) / 2
				}
			}
		}
		x := make([]float64, n)
		res, err := p.Solve(x, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := p.Phi(res.Lambda); math.Abs(got-p.R) > 1e-8*(1+math.Abs(p.R)+math.Abs(res.Lambda)) {
			t.Fatalf("trial %d: Phi(λ)=%g, want %g", trial, got, p.R)
		}
		for j := range x {
			if x[j] < p.L[j]-1e-12 {
				t.Fatalf("trial %d: x[%d]=%g below lower %g", trial, j, x[j], p.L[j])
			}
		}
		ref, ok := bisect(p)
		if ok && math.Abs(p.Phi(ref)-p.Phi(res.Lambda)) > 1e-6*(1+math.Abs(p.R)) {
			t.Fatalf("trial %d: disagrees with bisection", trial)
		}
	}
}
