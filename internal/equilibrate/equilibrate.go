// Package equilibrate implements exact equilibration, the closed-form solver
// for the single-constraint separable quadratic subproblems that the
// splitting equilibration algorithm creates — the supply-market / demand-
// market exact equilibration of Eydeland and Nagurney (1989), extended with
// the elastic total of the paper's Section 3.1.1, the box bounds of the
// Ohuchi–Kaji (1984) variant, and the interval totals of Harrigan–Buchanan
// (1984).
//
// Every row (or column) subproblem of SEA has the form
//
//	min_{l≤x≤u, s}  Σ_j γ_j (x_j − x⁰_j)² − Σ_j μ_j x_j + α (s − s⁰)²
//	s.t.            Σ_j x_j = s
//
// whose KKT conditions reduce, with a_j = 1/(2γ_j) and c_j = x⁰_j + a_j μ_j,
// to the scalar piecewise-linear equation
//
//	φ(λ) = Σ_j clamp(c_j + a_j λ, l_j, u_j) + e·λ = r
//
// where e = 1/(2α) (0 for a fixed total), r = s⁰ (or the fixed total), the
// box defaults to [0, ∞) — the classical nonnegativity constraint — and λ is
// the Lagrange multiplier of the conservation constraint. φ is
// nondecreasing, so the root is found by sorting the breakpoints of the
// clamps and sweeping the segments once: O(n log n) total, dominated by the
// sort — the paper's "7n + n ln n + 2n operations".
//
// Across SEA's outer iterations the duals settle, so consecutive solves of
// the same subproblem slot see nearly identical breakpoint orders. A
// persistent State caches the previous solve's sorted permutation; replaying
// it and repairing the handful of drifted positions with a budgeted
// insertion pass makes steady-state re-solves amortized O(n) instead of
// O(n log n). The sort operates on compact (position-bits, build-index) keys
// rather than the event payloads; the canonical order — position, then build
// index — is a strict total order, so the sorted key array is unique
// whichever sort produced it, and warm-started solves are bit-identical to
// cold ones.
package equilibrate

import (
	"errors"
	"fmt"
	"math"

	"sea/internal/sortx"
)

// ErrInfeasible is returned when the subproblem has no feasible point:
// a fixed total that is negative, or that exceeds the sum of the upper
// bounds.
var ErrInfeasible = errors.New("equilibrate: infeasible subproblem")

// event is a slope change of φ: at position pos, the total slope changes by
// da and the total intercept by dc. A term j activating at its lower
// breakpoint contributes (+a_j, +c_j); a term saturating at its upper bound
// contributes (−a_j, u_j − c_j). Events stay in build order; the sort runs
// over a parallel array of compact sortx.Key values — (order-preserving
// position bits, build index) — and the sweep follows the sorted keys back
// into this array. The (position, build index) pair is a strict total order,
// so the sorted key array is unique regardless of which sort algorithm (or
// starting permutation) produced it — the invariant behind bit-identical
// warm starts.
type event struct {
	pos float64
	da  float64
	dc  float64
}

// canonicalKeys sorts the build-order key list ws.keys[:m] into the
// canonical (position, build index) order and returns the sorted slice
// (which may alias ws.keys or ws.keyAlt).
//
// Short arrays use straight insertion under the full (Bits, Idx) order —
// the paper's choice below the threshold, still unbeaten there. Long arrays
// use a stable LSD radix sort on the position bits: stability makes ties
// keep build order, which IS index order, so the canonical order falls out
// with no tie repair — and tie-heavy instances (reciprocal weighting
// γ ∝ 1/x⁰ puts every first-iteration row breakpoint within a few ulps of
// −2) are nearly free, because byte positions that are constant across the
// cluster are skipped entirely. The paper used HEAPSORT here; the operation-
// count model still charges its n·log₂ n (see Result.Ops).
func (ws *Workspace) canonicalKeys(m int) []sortx.Key {
	keys := ws.keys[:m]
	if m <= sortx.InsertionThreshold {
		sortx.InsertionKeys(keys)
		return keys
	}
	return sortx.RadixKeys(keys, ws.ensureKeyAlt(m))
}

// State carries warm-start information for one subproblem slot (one row or
// one column of SEA) across repeated solves. The zero value is a cold state.
// A State must not be shared between concurrent solves, and it only helps —
// and only guarantees bit-identical results — when reused for the same slot
// with the same event-build shape (same bound pattern and length); a shape
// change is detected and falls back to a cold sort.
type State struct {
	// perm[k] is the build index of the k-th event in the previous solve's
	// sorted order. Replaying it pre-orders the next solve's events.
	perm []int32
	nev  int

	// LastSeg is the sorted-segment index where the previous root landed;
	// exposed as a diagnostic for locality studies.
	LastSeg int
	// cool counts solves left to skip the replay after a failed one: a
	// replay that exhausts the insertion budget has paid a gather plus the
	// burned budget for nothing, so the state backs off for a few solves
	// (still refreshing the permutation each time) before trying again.
	cool uint8
	// FastSorts counts warm re-solves whose breakpoint order was recovered
	// by the budgeted nearly-sorted pass; FullSorts counts solves that paid
	// the full O(n log n) sort (including every cold solve).
	FastSorts int64
	FullSorts int64
}

// Reset discards the cached permutation so the next solve runs cold. The
// counters are kept; they describe the State's lifetime.
func (st *State) Reset() { st.nev, st.cool = 0, 0 }

// replayCooldown is how many solves a state sits out after a failed replay.
const replayCooldown = 3

// Workspace holds reusable scratch buffers so that per-subproblem solves do
// not allocate. One Workspace must not be shared between concurrent solves;
// allocate one per worker.
//
// The workspace bounds its retained capacity: it tracks the high-water
// subproblem size over a sliding window of solves and shrinks its buffers
// when the recent peak is far below the allocated capacity, so a single
// outsized solve in a mixed-size workload does not pin the largest-ever
// buffers forever. Callers must therefore re-acquire coefficient buffers via
// Scratch for every subproblem instead of retaining slices across solves.
type Workspace struct {
	events []event
	keys   []sortx.Key // sort keys parallel to events, in build order
	keyAlt []sortx.Key // radix ping-pong / warm-start gather target
	// C and A are scratch coefficient buffers for callers that build the
	// kernel inputs in place; acquire them with Scratch.
	C []float64
	A []float64

	peak   int // largest subproblem seen in the current window
	solves int // solves since the window opened
}

// NewWorkspace returns a Workspace pre-sized for subproblems of up to n
// variables. It grows on demand if larger subproblems appear.
func NewWorkspace(n int) *Workspace {
	return &Workspace{
		events: make([]event, 0, 2*n),
		keys:   make([]sortx.Key, 0, 2*n),
		C:      make([]float64, n),
		A:      make([]float64, n),
	}
}

// grow ensures the coefficient buffers can hold n entries.
func (ws *Workspace) grow(n int) {
	if cap(ws.C) < n {
		ws.C = make([]float64, n)
		ws.A = make([]float64, n)
	}
	ws.C = ws.C[:n]
	ws.A = ws.A[:n]
}

// Scratch returns the C and A coefficient buffers resized to n, growing them
// on demand. Acquire fresh slices for every subproblem — the workspace may
// shrink its buffers between solves, so retained slices can go stale.
func (ws *Workspace) Scratch(n int) (c, a []float64) {
	ws.grow(n)
	return ws.C, ws.A
}

// ensureKeyAlt returns the secondary key buffer with length m.
func (ws *Workspace) ensureKeyAlt(m int) []sortx.Key {
	if cap(ws.keyAlt) < m {
		ws.keyAlt = make([]sortx.Key, m)
	}
	return ws.keyAlt[:m]
}

// Retained-capacity policy: every shrinkWindow solves, if the window's peak
// subproblem used at most a quarter of the allocated coefficient capacity
// (and that capacity is worth reclaiming), the buffers are reallocated to
// the recent peak.
const (
	shrinkWindow = 64
	shrinkMin    = 256
)

// note records a completed solve of size n and applies the shrink policy at
// window boundaries. Reallocation is safe mid-stream because callers hold
// their own aliases of the old arrays for the duration of one solve only.
func (ws *Workspace) note(n int) {
	if n > ws.peak {
		ws.peak = n
	}
	if ws.solves++; ws.solves < shrinkWindow {
		return
	}
	if c := cap(ws.C); c > shrinkMin && ws.peak*4 <= c {
		ws.C = make([]float64, ws.peak)
		ws.A = make([]float64, ws.peak)
		ws.events = make([]event, 0, 2*ws.peak)
		ws.keys = make([]sortx.Key, 0, 2*ws.peak)
		ws.keyAlt = nil
	}
	ws.peak, ws.solves = 0, 0
}

// Problem is one exact-equilibration instance in kernel form. See the
// package comment for the mapping from SEA subproblems.
type Problem struct {
	// C and A define the unconstrained stationary values c_j + a_j·λ of
	// each variable. A must be strictly positive (it is 1/(2γ_j)).
	C []float64
	A []float64
	// U holds optional upper bounds u_j > 0; nil means all +Inf (the
	// classical problem). Entries may be math.Inf(1).
	U []float64
	// L holds optional lower bounds 0 ≤ l_j (< u_j); nil means all zero —
	// the classical nonnegativity constraint (4). Together with U this is
	// the full Ohuchi–Kaji box.
	L []float64
	// E is the elastic slope e = 1/(2α) ≥ 0; zero for a fixed total.
	E float64
	// R is the target: the fixed total, or s⁰ for an elastic total.
	R float64
}

// lower returns the j-th lower bound.
func (p *Problem) lower(j int) float64 {
	if p.L == nil {
		return 0
	}
	return p.L[j]
}

// clampVal applies the box to a stationary value.
func (p *Problem) clampVal(j int, v float64) float64 {
	if lo := p.lower(j); v < lo {
		return lo
	}
	if p.U != nil && v > p.U[j] {
		return p.U[j]
	}
	return v
}

// Result reports the solution of one subproblem.
type Result struct {
	// Lambda is the Lagrange multiplier of the conservation constraint.
	Lambda float64
	// Total is Σ_j x_j at Lambda.
	Total float64
	// Ops is the abstract operation count charged, following the paper's
	// model: linear build and sweep work plus n·log₂n for the sort.
	Ops int64
}

// Solve computes the multiplier and writes the optimal block into x, which
// must have length len(p.C). It returns ErrInfeasible when no feasible point
// exists. ws may be nil, in which case a temporary workspace is allocated.
func (p *Problem) Solve(x []float64, ws *Workspace) (Result, error) {
	return p.SolveState(x, ws, nil)
}

// SolveState is Solve with an optional warm-start State. A non-nil st caches
// the sorted breakpoint permutation across calls; re-solves of the same slot
// with drifted coefficients then repair the order in near-linear time. The
// result is bit-identical to a cold Solve — the (pos, idx) total order makes
// the sorted event array unique — so warm starting is purely a performance
// choice.
func (p *Problem) SolveState(x []float64, ws *Workspace, st *State) (Result, error) {
	n := len(p.C)
	if err := p.validate(x); err != nil {
		return Result{}, err
	}
	if ws == nil {
		ws = NewWorkspace(n)
	}

	lambda, ops, err := p.findRoot(ws, st)
	if err != nil {
		return Result{}, err
	}

	total := p.recoverPrimal(x, lambda)
	ops += int64(2 * n)
	ws.note(n)
	return Result{Lambda: lambda, Total: total, Ops: ops}, nil
}

// recoverPrimal writes the optimal block at lambda into x and returns its
// total (branch-free clamp in the classical unbounded case).
func (p *Problem) recoverPrimal(x []float64, lambda float64) float64 {
	n := len(p.C)
	var total float64
	if p.L == nil && p.U == nil {
		cs, as, xs := p.C[:n], p.A[:n], x[:n]
		for j := 0; j < n; j++ {
			v := cs[j] + as[j]*lambda
			if v < 0 {
				v = 0
			}
			xs[j] = v
			total += v
		}
	} else {
		for j := 0; j < n; j++ {
			v := p.clampVal(j, p.C[j]+p.A[j]*lambda)
			x[j] = v
			total += v
		}
	}
	return total
}

// findRoot locates λ with φ(λ) = R by the sorted-breakpoint sweep. It is a
// composition of the stages shared with the batched kernel (Batch): the
// feasibility pre-checks, the event build, the canonical sort (warm replay or
// cold), and the segment sweep — so the two paths stay bit-identical by
// construction.
func (p *Problem) findRoot(ws *Workspace, st *State) (lambda float64, ops int64, err error) {
	n := len(p.C)
	if n == 0 {
		return p.emptyRoot()
	}
	lb := p.sumLower()
	if err := p.feasible(lb); err != nil {
		return 0, int64(n), err
	}

	ev, keys, err := p.appendEvents(ws.events[:0], ws.keys[:0])
	if err != nil {
		return 0, 0, err
	}
	ws.events, ws.keys = ev, keys // keep grown capacity

	// Sort the keys under the (position, build index) total order. Cold
	// path: straight insertion for short arrays, stable radix for long ones
	// (see canonicalKeys). Warm path: gather the keys in the previous
	// solve's sorted order and repair the few drifted positions with the
	// budgeted nearly-sorted pass. Both paths produce the unique sorted key
	// array, so the sweep below — and hence the root — is bit-identical
	// either way.
	m := len(ev)
	var sk []sortx.Key
	if st != nil && st.nev == m && st.cool == 0 {
		sk = ws.ensureKeyAlt(m)
		if replayKeys(sk, keys, st.perm[:m], 0) {
			st.FastSorts++
		} else {
			// The drift outran the budget: discard the gather, sort from
			// the pristine build order, and back off before trying again.
			sk = ws.canonicalKeys(m)
			st.FullSorts++
			st.cool = replayCooldown
		}
	} else {
		sk = ws.canonicalKeys(m)
		if st != nil {
			st.FullSorts++
			if st.cool > 0 {
				st.cool--
			}
		}
	}
	if st != nil {
		st.save(sk, 0)
	}
	// Charge the paper's cost model: linear build + sort + sweep. The warm
	// fast path usually does less real work than n·log₂n; the charge keeps
	// the paper's model so reported operation counts stay comparable.
	ops = int64(7*m) + int64(float64(m)*math.Log2(float64(m)+1))

	lambda, extra, err := p.sweep(ev, sk, lb, st)
	return lambda, ops + extra, err
}

// emptyRoot solves the n = 0 subproblem: only the elastic term remains.
func (p *Problem) emptyRoot() (float64, int64, error) {
	if p.E > 0 {
		return p.R / p.E, 1, nil
	}
	if p.R == 0 {
		return 0, 1, nil
	}
	return 0, 1, ErrInfeasible
}

// sumLower returns Σ_j l_j, identically zero with no explicit lower bounds.
func (p *Problem) sumLower() float64 {
	var lb float64
	for _, l := range p.L {
		lb += l
	}
	return lb
}

// feasible pre-checks a fixed total against the reachable range [Σl, Σu] of
// Σx. Elastic totals are always feasible.
func (p *Problem) feasible(lb float64) error {
	if p.E != 0 {
		return nil
	}
	if p.R < lb-1e-9*(1+math.Abs(lb)) {
		return ErrInfeasible
	}
	if p.U != nil {
		var ub float64
		for _, u := range p.U {
			ub += u
		}
		if !math.IsInf(ub, 1) && p.R > ub {
			return ErrInfeasible
		}
	}
	return nil
}

// appendEvents builds p's breakpoint events onto ev, with each sort key's
// Idx set to its event's index in ev — the local build index for a single
// solve starting from ev[:0], or the concatenated-array index when ev
// already carries the events of earlier batch segments. One activation event
// per term (where it leaves its lower bound), plus one saturation event per
// finite upper bound. The classical unbounded case (L = U = nil, by far the
// hottest) gets a branch-free build loop with the bounds checks hoisted. A
// -0.0 position is normalized to +0.0 so the key order agrees with float
// comparison (±0 tie under ==, split by their bit patterns). Positions must
// not be NaN — the canonical comparison is a total order only then — so NaN
// breakpoints (from NaN coefficients) are rejected here. On error the
// returned slices may carry partial appends; callers truncate.
func (p *Problem) appendEvents(ev []event, keys []sortx.Key) ([]event, []sortx.Key, error) {
	n := len(p.C)
	cs, as := p.C[:n], p.A[:n]
	if p.L == nil && p.U == nil {
		base := int32(len(ev))
		for j := 0; j < n; j++ {
			a, c := as[j], cs[j]
			if !(a > 0) {
				return ev, keys, fmt.Errorf("equilibrate: a[%d] = %g, want > 0", j, a)
			}
			pos := -c / a
			if pos != pos {
				return ev, keys, fmt.Errorf("equilibrate: NaN breakpoint at %d (c=%g, a=%g)", j, c, a)
			}
			if pos == 0 {
				pos = 0
			}
			ev = append(ev, event{pos: pos, da: a, dc: c})
			keys = append(keys, sortx.Key{Bits: sortx.FloatBits(pos), Idx: base + int32(j)})
		}
	} else {
		for j := 0; j < n; j++ {
			a, c := as[j], cs[j]
			if !(a > 0) {
				return ev, keys, fmt.Errorf("equilibrate: a[%d] = %g, want > 0", j, a)
			}
			l := p.lower(j)
			if p.U != nil && p.U[j] == l && !math.IsInf(l, 0) {
				// Pinned variable (u = l): x_j ≡ l for every λ, already
				// counted in Σl by sumLower, so it contributes no events.
				// Skipping it — rather than emitting a coincident
				// activation/saturation pair whose dc contributions cancel
				// only in exact arithmetic — keeps the event stream (and
				// hence the sweep's floating-point trajectory) identical to
				// a problem that omits the variable entirely. That identity
				// is what makes a densified CSR problem solve bit-identically
				// to its sparse form.
				continue
			}
			pos := (l - c) / a
			if pos != pos {
				return ev, keys, fmt.Errorf("equilibrate: NaN breakpoint at %d (c=%g, a=%g, l=%g)", j, c, a, l)
			}
			if pos == 0 {
				pos = 0
			}
			keys = append(keys, sortx.Key{Bits: sortx.FloatBits(pos), Idx: int32(len(ev))})
			ev = append(ev, event{pos: pos, da: a, dc: c - l})
			if p.U != nil && !math.IsInf(p.U[j], 1) {
				u := p.U[j]
				if u < l {
					return ev, keys, fmt.Errorf("equilibrate: bounds [%g, %g] empty at %d", l, u, j)
				}
				pos = (u - c) / a
				if pos != pos {
					return ev, keys, fmt.Errorf("equilibrate: NaN breakpoint at %d (c=%g, a=%g, u=%g)", j, c, a, u)
				}
				if pos == 0 {
					pos = 0
				}
				keys = append(keys, sortx.Key{Bits: sortx.FloatBits(pos), Idx: int32(len(ev))})
				ev = append(ev, event{pos: pos, da: -a, dc: u - c})
			}
		}
	}
	return ev, keys, nil
}

// replayKeys gathers the build-order keys into dst following perm (segment-
// local build indices; base is the offset of the segment's first key when
// keys is a batch's concatenated array, 0 for a single solve) and repairs
// coefficient drift with the budgeted nearly-sorted insertion pass,
// reporting whether the budget held.
func replayKeys(dst, keys []sortx.Key, perm []int32, base int32) bool {
	for k, id := range perm {
		dst[k] = keys[base+id] // keys are in build order: keys[base+id].Idx == base+id
	}
	return sortx.InsertionBudgetKeys(dst)
}

// save caches sk as the slot's sorted permutation, rebasing concatenated-
// array indices of a batch (base > 0) back to segment-local build indices.
func (st *State) save(sk []sortx.Key, base int32) {
	m := len(sk)
	if cap(st.perm) < m {
		st.perm = make([]int32, m)
	}
	st.perm = st.perm[:m]
	if base == 0 {
		for k, e := range sk {
			st.perm[k] = e.Idx
		}
	} else {
		for k, e := range sk {
			st.perm[k] = e.Idx - base
		}
	}
	st.nev = m
}

// sweep walks the sorted segments left to right. Before the first event
// every term sits at its lower bound: φ(λ) = Σl + e·λ. On each segment φ
// agrees with the linear function inter + slope·λ; because φ is monotone
// nondecreasing, the first segment whose right-endpoint value reaches the
// target contains the root. The per-segment test is division-free —
// slope·right + inter ≥ R, one multiply-add per segment — and the single
// division happens once, at the root segment, clamped into the segment to
// stay robust to rounding at the boundaries.
//
// ev may be a batch's concatenated event array: sk's Idx values index into
// it directly, so the exact same code serves the single and batched paths.
// The returned extra op count is the sweep's contribution to the cost model
// (the segment index where the root landed).
func (p *Problem) sweep(ev []event, sk []sortx.Key, lb float64, st *State) (lambda float64, extra int64, err error) {
	m := len(sk)
	slope := p.E
	inter := lb // φ(λ) = inter + slope·λ on the current segment
	prev := math.Inf(-1)
	for k := 0; k <= m; k++ {
		var e event
		right := math.Inf(1)
		if k < m {
			e = ev[sk[k].Idx]
			right = e.pos
		}
		if slope > 0 {
			if v := slope*right + inter; v >= p.R {
				cand := (p.R - inter) / slope
				if cand < prev {
					cand = prev // rounding pushed the root left of the segment
				}
				if cand > right {
					cand = right // ...or right of it
				}
				if st != nil {
					st.LastSeg = k
				}
				return cand, int64(k), nil
			}
		} else if inter == p.R {
			// Flat segment exactly at the target (e.g. fixed total 0 with
			// no terms active yet, or all terms saturated at Σu = R): the
			// multiplier is any point of the segment; take a finite,
			// canonical endpoint.
			if st != nil {
				st.LastSeg = k
			}
			if !math.IsInf(right, 1) {
				return right, int64(k), nil
			}
			if !math.IsInf(prev, -1) {
				return prev, int64(k), nil
			}
			return 0, int64(k), nil
		}
		if k < m {
			slope += e.da
			inter += e.dc
			prev = right
		}
	}

	// No root. With E > 0 the final slope is positive so this cannot
	// happen; with E == 0 and finite bounds the target may sit just beyond
	// the reachable range by rounding — accept it at the last breakpoint if
	// it is within tolerance, otherwise the subproblem is infeasible.
	if p.E == 0 {
		if math.Abs(inter-p.R) <= 1e-9*(1+math.Abs(p.R)) {
			if st != nil {
				st.LastSeg = m
			}
			return prev, 0, nil
		}
		return 0, 0, ErrInfeasible
	}
	return 0, 0, fmt.Errorf("equilibrate: internal error: no root found (R=%g)", p.R)
}

// SolveInterval solves the subproblem with an interval total
// lo ≤ Σ_j x_j ≤ hi instead of an equality — the Harrigan–Buchanan (1984)
// variant for input/output estimation with uncertain margins. The elastic
// slope must be zero (interval and elastic totals are alternative models of
// the same uncertainty).
//
// The multiplier follows the concave dual of the interval constraint: if
// the unconstrained block total lies inside [lo, hi] the constraint is
// slack and λ = 0; a total above hi is pulled down to hi (λ < 0); one below
// lo is pushed up to lo (λ > 0).
func (p *Problem) SolveInterval(lo, hi float64, x []float64, ws *Workspace) (Result, error) {
	return p.SolveIntervalState(lo, hi, x, ws, nil)
}

// SolveIntervalState is SolveInterval with an optional warm-start State.
// The event list does not depend on the target, so the cached permutation
// stays valid even as the active side of the interval flips between solves.
func (p *Problem) SolveIntervalState(lo, hi float64, x []float64, ws *Workspace, st *State) (Result, error) {
	if p.E != 0 {
		return Result{}, fmt.Errorf("equilibrate: SolveInterval requires E = 0, got %g", p.E)
	}
	if !(lo <= hi) {
		return Result{}, fmt.Errorf("equilibrate: empty interval [%g, %g]", lo, hi)
	}
	n := len(p.C)
	if err := p.validate(x); err != nil {
		return Result{}, err
	}
	// Free solution at λ = 0.
	var total float64
	for j := 0; j < n; j++ {
		v := p.clampVal(j, p.C[j])
		x[j] = v
		total += v
	}
	switch {
	case total > hi:
		q := *p
		q.R = hi
		return q.SolveState(x, ws, st)
	case total < lo:
		q := *p
		q.R = lo
		return q.SolveState(x, ws, st)
	default:
		return Result{Lambda: 0, Total: total, Ops: int64(2 * n)}, nil
	}
}

// SolveBisection solves the same subproblem by bracketing-and-bisection on
// φ instead of the sort-and-sweep exact equilibration: O(n·log(range/tol))
// versus O(n·log n), with an answer accurate to tol rather than exact. It
// exists as the ablation partner for the paper's sorting-based kernel (the
// benchmark suite compares the two) and as an in-package independent
// reference.
func (p *Problem) SolveBisection(x []float64, tol float64) (Result, error) {
	n := len(p.C)
	if len(p.A) != n || (p.U != nil && len(p.U) != n) || (p.L != nil && len(p.L) != n) || len(x) != n {
		return Result{}, fmt.Errorf("equilibrate: inconsistent lengths (c=%d a=%d u=%d l=%d x=%d)",
			len(p.C), len(p.A), len(p.U), len(p.L), len(x))
	}
	if p.E < 0 {
		return Result{}, fmt.Errorf("equilibrate: negative elastic slope %g", p.E)
	}
	if tol <= 0 {
		tol = 1e-12
	}
	var ops int64
	lo, hi := -1.0, 1.0
	for i := 0; p.Phi(lo) > p.R; i++ {
		lo *= 2
		ops += int64(n)
		if i > 300 {
			return Result{}, ErrInfeasible
		}
	}
	for i := 0; p.Phi(hi) < p.R; i++ {
		hi *= 2
		ops += int64(n)
		if i > 300 {
			return Result{}, ErrInfeasible
		}
	}
	for hi-lo > tol*(1+math.Abs(lo)+math.Abs(hi)) {
		mid := (lo + hi) / 2
		if p.Phi(mid) < p.R {
			lo = mid
		} else {
			hi = mid
		}
		ops += int64(n)
	}
	lambda := (lo + hi) / 2
	var total float64
	for j := 0; j < n; j++ {
		v := p.clampVal(j, p.C[j]+p.A[j]*lambda)
		x[j] = v
		total += v
	}
	return Result{Lambda: lambda, Total: total, Ops: ops + int64(2*n)}, nil
}

// Phi evaluates φ(λ) = Σ_j clamp(c_j + a_j λ, l_j, u_j) + e·λ. It is
// exported for verification and tests.
func (p *Problem) Phi(lambda float64) float64 {
	s := p.E * lambda
	for j := range p.C {
		s += p.clampVal(j, p.C[j]+p.A[j]*lambda)
	}
	return s
}
