// Package equilibrate implements exact equilibration, the closed-form solver
// for the single-constraint separable quadratic subproblems that the
// splitting equilibration algorithm creates — the supply-market / demand-
// market exact equilibration of Eydeland and Nagurney (1989), extended with
// the elastic total of the paper's Section 3.1.1, the box bounds of the
// Ohuchi–Kaji (1984) variant, and the interval totals of Harrigan–Buchanan
// (1984).
//
// Every row (or column) subproblem of SEA has the form
//
//	min_{l≤x≤u, s}  Σ_j γ_j (x_j − x⁰_j)² − Σ_j μ_j x_j + α (s − s⁰)²
//	s.t.            Σ_j x_j = s
//
// whose KKT conditions reduce, with a_j = 1/(2γ_j) and c_j = x⁰_j + a_j μ_j,
// to the scalar piecewise-linear equation
//
//	φ(λ) = Σ_j clamp(c_j + a_j λ, l_j, u_j) + e·λ = r
//
// where e = 1/(2α) (0 for a fixed total), r = s⁰ (or the fixed total), the
// box defaults to [0, ∞) — the classical nonnegativity constraint — and λ is
// the Lagrange multiplier of the conservation constraint. φ is
// nondecreasing, so the root is found by sorting the breakpoints of the
// clamps and sweeping the segments once: O(n log n) total, dominated by the
// sort — the paper's "7n + n ln n + 2n operations".
package equilibrate

import (
	"errors"
	"fmt"
	"math"

	"sea/internal/sortx"
)

// ErrInfeasible is returned when the subproblem has no feasible point:
// a fixed total that is negative, or that exceeds the sum of the upper
// bounds.
var ErrInfeasible = errors.New("equilibrate: infeasible subproblem")

// event is a slope change of φ: at position pos, the total slope changes by
// da and the total intercept by dc. A term j activating at its lower
// breakpoint contributes (+a_j, +c_j); a term saturating at its upper bound
// contributes (−a_j, u_j − c_j).
type event struct {
	pos float64
	da  float64
	dc  float64
}

// Workspace holds reusable scratch buffers so that per-subproblem solves do
// not allocate. One Workspace must not be shared between concurrent solves;
// allocate one per worker.
type Workspace struct {
	events []event
	// C and A are scratch coefficient buffers for the convenience wrappers.
	C []float64
	A []float64
}

// NewWorkspace returns a Workspace pre-sized for subproblems of up to n
// variables. It grows on demand if larger subproblems appear.
func NewWorkspace(n int) *Workspace {
	return &Workspace{
		events: make([]event, 0, 2*n),
		C:      make([]float64, n),
		A:      make([]float64, n),
	}
}

// grow ensures the coefficient buffers can hold n entries.
func (ws *Workspace) grow(n int) {
	if cap(ws.C) < n {
		ws.C = make([]float64, n)
		ws.A = make([]float64, n)
	}
	ws.C = ws.C[:n]
	ws.A = ws.A[:n]
}

// Problem is one exact-equilibration instance in kernel form. See the
// package comment for the mapping from SEA subproblems.
type Problem struct {
	// C and A define the unconstrained stationary values c_j + a_j·λ of
	// each variable. A must be strictly positive (it is 1/(2γ_j)).
	C []float64
	A []float64
	// U holds optional upper bounds u_j > 0; nil means all +Inf (the
	// classical problem). Entries may be math.Inf(1).
	U []float64
	// L holds optional lower bounds 0 ≤ l_j (< u_j); nil means all zero —
	// the classical nonnegativity constraint (4). Together with U this is
	// the full Ohuchi–Kaji box.
	L []float64
	// E is the elastic slope e = 1/(2α) ≥ 0; zero for a fixed total.
	E float64
	// R is the target: the fixed total, or s⁰ for an elastic total.
	R float64
}

// lower returns the j-th lower bound.
func (p *Problem) lower(j int) float64 {
	if p.L == nil {
		return 0
	}
	return p.L[j]
}

// clampVal applies the box to a stationary value.
func (p *Problem) clampVal(j int, v float64) float64 {
	if lo := p.lower(j); v < lo {
		return lo
	}
	if p.U != nil && v > p.U[j] {
		return p.U[j]
	}
	return v
}

// Result reports the solution of one subproblem.
type Result struct {
	// Lambda is the Lagrange multiplier of the conservation constraint.
	Lambda float64
	// Total is Σ_j x_j at Lambda.
	Total float64
	// Ops is the abstract operation count charged, following the paper's
	// model: linear build and sweep work plus n·log₂n for the sort.
	Ops int64
}

// Solve computes the multiplier and writes the optimal block into x, which
// must have length len(p.C). It returns ErrInfeasible when no feasible point
// exists. ws may be nil, in which case a temporary workspace is allocated.
func (p *Problem) Solve(x []float64, ws *Workspace) (Result, error) {
	n := len(p.C)
	if len(p.A) != n || (p.U != nil && len(p.U) != n) || (p.L != nil && len(p.L) != n) || len(x) != n {
		return Result{}, fmt.Errorf("equilibrate: inconsistent lengths (c=%d a=%d u=%d l=%d x=%d)",
			len(p.C), len(p.A), len(p.U), len(p.L), len(x))
	}
	if p.E < 0 {
		return Result{}, fmt.Errorf("equilibrate: negative elastic slope %g", p.E)
	}
	if ws == nil {
		ws = NewWorkspace(n)
	}

	lambda, ops, err := p.findRoot(ws)
	if err != nil {
		return Result{}, err
	}

	// Recover the primal block and its total (branch-free clamp in the
	// classical unbounded case).
	var total float64
	if p.L == nil && p.U == nil {
		for j := 0; j < n; j++ {
			v := p.C[j] + p.A[j]*lambda
			if v < 0 {
				v = 0
			}
			x[j] = v
			total += v
		}
	} else {
		for j := 0; j < n; j++ {
			v := p.clampVal(j, p.C[j]+p.A[j]*lambda)
			x[j] = v
			total += v
		}
	}
	ops += int64(2 * n)
	return Result{Lambda: lambda, Total: total, Ops: ops}, nil
}

// findRoot locates λ with φ(λ) = R by the sorted-breakpoint sweep.
func (p *Problem) findRoot(ws *Workspace) (lambda float64, ops int64, err error) {
	n := len(p.C)

	// Empty subproblem: only the elastic term remains.
	if n == 0 {
		if p.E > 0 {
			return p.R / p.E, 1, nil
		}
		if p.R == 0 {
			return 0, 1, nil
		}
		return 0, 1, ErrInfeasible
	}

	// Feasibility pre-checks for fixed totals: the reachable range of Σx is
	// [Σl, Σu]. With no explicit lower bounds Σl is identically zero.
	var lb float64
	if p.L != nil {
		for _, l := range p.L {
			lb += l
		}
	}
	if p.E == 0 {
		if p.R < lb-1e-9*(1+math.Abs(lb)) {
			return 0, int64(n), ErrInfeasible
		}
		if p.U != nil {
			var ub float64
			for _, u := range p.U {
				ub += u
			}
			if !math.IsInf(ub, 1) && p.R > ub {
				return 0, int64(n), ErrInfeasible
			}
		}
	}

	// Build the event list: one activation event per term (where it leaves
	// its lower bound), plus one saturation event per finite upper bound.
	// The classical unbounded case (L = U = nil, by far the hottest) gets a
	// branch-free build loop.
	ev := ws.events[:0]
	if p.L == nil && p.U == nil {
		for j := 0; j < n; j++ {
			a, c := p.A[j], p.C[j]
			if !(a > 0) {
				return 0, 0, fmt.Errorf("equilibrate: a[%d] = %g, want > 0", j, a)
			}
			ev = append(ev, event{pos: -c / a, da: a, dc: c})
		}
	} else {
		for j := 0; j < n; j++ {
			a, c := p.A[j], p.C[j]
			if !(a > 0) {
				return 0, 0, fmt.Errorf("equilibrate: a[%d] = %g, want > 0", j, a)
			}
			l := p.lower(j)
			ev = append(ev, event{pos: (l - c) / a, da: a, dc: c - l})
			if p.U != nil && !math.IsInf(p.U[j], 1) {
				u := p.U[j]
				if u < l {
					return 0, 0, fmt.Errorf("equilibrate: bounds [%g, %g] empty at %d", l, u, j)
				}
				ev = append(ev, event{pos: (u - c) / a, da: -a, dc: u - c})
			}
		}
	}
	ws.events = ev // keep grown capacity

	// Sort events by position: straight insertion sort for short arrays (the
	// paper's choice), pdqsort for long ones (the paper used HEAPSORT there;
	// see sortx.AdaptiveCmp on the substitution).
	sortx.AdaptiveCmp(ev, func(a, b event) int {
		switch {
		case a.pos < b.pos:
			return -1
		case a.pos > b.pos:
			return 1
		default:
			return 0
		}
	})

	m := len(ev)
	// Charge the paper's cost model: linear build + sort + sweep.
	ops = int64(7*m) + int64(float64(m)*math.Log2(float64(m)+1))

	// Sweep segments left to right. Before the first event every term sits
	// at its lower bound: φ(λ) = Σl + e·λ. On each segment φ agrees with
	// the linear function inter + slope·λ; because φ is monotone
	// nondecreasing, the first segment whose linear root does not exceed
	// the segment's right endpoint contains the solution, so a single
	// `cand <= right` test suffices and is robust to rounding at segment
	// boundaries.
	slope := p.E
	inter := lb // φ(λ) = inter + slope·λ on the current segment
	prev := math.Inf(-1)
	for k := 0; k <= m; k++ {
		var right float64
		if k < m {
			right = ev[k].pos
		} else {
			right = math.Inf(1)
		}
		if slope > 0 {
			cand := (p.R - inter) / slope
			if cand <= right {
				if cand < prev {
					cand = prev // rounding pushed the root left of the segment
				}
				return cand, ops + int64(k), nil
			}
		} else if inter == p.R {
			// Flat segment exactly at the target (e.g. fixed total 0 with
			// no terms active yet, or all terms saturated at Σu = R): the
			// multiplier is any point of the segment; take a finite,
			// canonical endpoint.
			if !math.IsInf(right, 1) {
				return right, ops + int64(k), nil
			}
			if !math.IsInf(prev, -1) {
				return prev, ops + int64(k), nil
			}
			return 0, ops + int64(k), nil
		}
		if k < m {
			slope += ev[k].da
			inter += ev[k].dc
			prev = right
		}
	}

	// No root. With E > 0 the final slope is positive so this cannot
	// happen; with E == 0 and finite bounds the target may sit just beyond
	// the reachable range by rounding — accept it at the last breakpoint if
	// it is within tolerance, otherwise the subproblem is infeasible.
	if p.E == 0 {
		if math.Abs(inter-p.R) <= 1e-9*(1+math.Abs(p.R)) {
			return prev, ops, nil
		}
		return 0, ops, ErrInfeasible
	}
	return 0, ops, fmt.Errorf("equilibrate: internal error: no root found (R=%g)", p.R)
}

// SolveInterval solves the subproblem with an interval total
// lo ≤ Σ_j x_j ≤ hi instead of an equality — the Harrigan–Buchanan (1984)
// variant for input/output estimation with uncertain margins. The elastic
// slope must be zero (interval and elastic totals are alternative models of
// the same uncertainty).
//
// The multiplier follows the concave dual of the interval constraint: if
// the unconstrained block total lies inside [lo, hi] the constraint is
// slack and λ = 0; a total above hi is pulled down to hi (λ < 0); one below
// lo is pushed up to lo (λ > 0).
func (p *Problem) SolveInterval(lo, hi float64, x []float64, ws *Workspace) (Result, error) {
	if p.E != 0 {
		return Result{}, fmt.Errorf("equilibrate: SolveInterval requires E = 0, got %g", p.E)
	}
	if !(lo <= hi) {
		return Result{}, fmt.Errorf("equilibrate: empty interval [%g, %g]", lo, hi)
	}
	n := len(p.C)
	if len(p.A) != n || (p.U != nil && len(p.U) != n) || (p.L != nil && len(p.L) != n) || len(x) != n {
		return Result{}, fmt.Errorf("equilibrate: inconsistent lengths (c=%d a=%d u=%d l=%d x=%d)",
			len(p.C), len(p.A), len(p.U), len(p.L), len(x))
	}
	// Free solution at λ = 0.
	var total float64
	for j := 0; j < n; j++ {
		v := p.clampVal(j, p.C[j])
		x[j] = v
		total += v
	}
	switch {
	case total > hi:
		q := *p
		q.R = hi
		return q.Solve(x, ws)
	case total < lo:
		q := *p
		q.R = lo
		return q.Solve(x, ws)
	default:
		return Result{Lambda: 0, Total: total, Ops: int64(2 * n)}, nil
	}
}

// SolveBisection solves the same subproblem by bracketing-and-bisection on
// φ instead of the sort-and-sweep exact equilibration: O(n·log(range/tol))
// versus O(n·log n), with an answer accurate to tol rather than exact. It
// exists as the ablation partner for the paper's sorting-based kernel (the
// benchmark suite compares the two) and as an in-package independent
// reference.
func (p *Problem) SolveBisection(x []float64, tol float64) (Result, error) {
	n := len(p.C)
	if len(p.A) != n || (p.U != nil && len(p.U) != n) || (p.L != nil && len(p.L) != n) || len(x) != n {
		return Result{}, fmt.Errorf("equilibrate: inconsistent lengths (c=%d a=%d u=%d l=%d x=%d)",
			len(p.C), len(p.A), len(p.U), len(p.L), len(x))
	}
	if p.E < 0 {
		return Result{}, fmt.Errorf("equilibrate: negative elastic slope %g", p.E)
	}
	if tol <= 0 {
		tol = 1e-12
	}
	var ops int64
	lo, hi := -1.0, 1.0
	for i := 0; p.Phi(lo) > p.R; i++ {
		lo *= 2
		ops += int64(n)
		if i > 300 {
			return Result{}, ErrInfeasible
		}
	}
	for i := 0; p.Phi(hi) < p.R; i++ {
		hi *= 2
		ops += int64(n)
		if i > 300 {
			return Result{}, ErrInfeasible
		}
	}
	for hi-lo > tol*(1+math.Abs(lo)+math.Abs(hi)) {
		mid := (lo + hi) / 2
		if p.Phi(mid) < p.R {
			lo = mid
		} else {
			hi = mid
		}
		ops += int64(n)
	}
	lambda := (lo + hi) / 2
	var total float64
	for j := 0; j < n; j++ {
		v := p.clampVal(j, p.C[j]+p.A[j]*lambda)
		x[j] = v
		total += v
	}
	return Result{Lambda: lambda, Total: total, Ops: ops + int64(2*n)}, nil
}

// Phi evaluates φ(λ) = Σ_j clamp(c_j + a_j λ, l_j, u_j) + e·λ. It is
// exported for verification and tests.
func (p *Problem) Phi(lambda float64) float64 {
	s := p.E * lambda
	for j := range p.C {
		s += p.clampVal(j, p.C[j]+p.A[j]*lambda)
	}
	return s
}
