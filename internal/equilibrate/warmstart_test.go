package equilibrate

import (
	"math"
	"math/rand/v2"
	"testing"
)

// warmCase is one randomized subproblem family for the warm-start property
// test.
type warmCase struct {
	name     string
	n        int
	elastic  bool
	bounded  bool
	lowered  bool
	interval bool
}

// buildProblem constructs a random instance of the case's family. C is
// rebuilt (perturbed) by the caller between re-solves.
func buildProblem(rng *rand.Rand, c warmCase) *Problem {
	p := &Problem{
		C: make([]float64, c.n),
		A: make([]float64, c.n),
	}
	for j := 0; j < c.n; j++ {
		p.C[j] = rng.NormFloat64() * 10
		p.A[j] = 0.1 + rng.Float64()
	}
	if c.bounded {
		p.U = make([]float64, c.n)
		for j := 0; j < c.n; j++ {
			p.U[j] = 1 + rng.Float64()*20
			if rng.Float64() < 0.1 {
				p.U[j] = math.Inf(1)
			}
		}
	}
	if c.lowered {
		p.L = make([]float64, c.n)
		for j := 0; j < c.n; j++ {
			p.L[j] = rng.Float64() * 0.5
			if p.U != nil && p.L[j] > p.U[j] {
				p.L[j] = 0
			}
		}
	}
	if c.elastic {
		p.E = 0.1 + rng.Float64()
	}
	p.R = feasibleTarget(rng, p)
	return p
}

// feasibleTarget picks a target inside the reachable range of Σx.
func feasibleTarget(rng *rand.Rand, p *Problem) float64 {
	if p.E > 0 {
		return rng.NormFloat64() * 20
	}
	var lb, ub float64
	for j := range p.C {
		lb += p.lower(j)
		if p.U != nil && !math.IsInf(p.U[j], 1) {
			ub += p.U[j]
		} else {
			ub += p.lower(j) + 30
		}
	}
	return lb + rng.Float64()*(ub-lb)
}

// TestWarmStartBitIdentical is the warm-start contract: over random
// sequences of perturbed coefficients and targets — including perturbations
// large enough to flip bound activations and reorder breakpoints — a
// re-solve through a persistent State is bit-identical to a cold solve of
// the same instance, for every subproblem family (fixed, elastic, bounded,
// interval totals) and for sizes on both sides of the sort's
// insertion/pdqsort threshold.
func TestWarmStartBitIdentical(t *testing.T) {
	cases := []warmCase{
		{name: "fixed-classical-small", n: 7},
		{name: "fixed-classical-mid", n: 64},
		{name: "fixed-classical-large", n: 300},
		{name: "elastic-classical", n: 120, elastic: true},
		{name: "fixed-bounded", n: 90, bounded: true},
		{name: "fixed-box", n: 150, bounded: true, lowered: true},
		{name: "elastic-box", n: 80, elastic: true, bounded: true, lowered: true},
		{name: "interval", n: 110, bounded: true, interval: true},
		{name: "single", n: 1},
	}
	const steps = 40
	for ci, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rng := rand.New(rand.NewPCG(31, uint64(ci)))
			p := buildProblem(rng, c)
			st := &State{}
			wsWarm := NewWorkspace(c.n)
			xWarm := make([]float64, c.n)
			xCold := make([]float64, c.n)
			var lo, hi float64
			for step := 0; step < steps; step++ {
				// Perturb the linear terms: usually a small dual drift, and
				// occasionally a violent shake that flips activations and
				// scrambles the breakpoint order (forcing the sort fallback).
				scale := 0.05
				if rng.Float64() < 0.2 {
					scale = 20
				}
				for j := 0; j < c.n; j++ {
					p.C[j] += rng.NormFloat64() * scale
				}
				if rng.Float64() < 0.3 {
					p.R = feasibleTarget(rng, p)
				}
				if c.interval {
					mid := feasibleTarget(rng, p)
					span := rng.Float64() * 10
					lo, hi = mid-span, mid+span
				}

				var warmRes, coldRes Result
				var warmErr, coldErr error
				if c.interval {
					warmRes, warmErr = p.SolveIntervalState(lo, hi, xWarm, wsWarm, st)
					coldRes, coldErr = p.SolveInterval(lo, hi, xCold, NewWorkspace(c.n))
				} else {
					warmRes, warmErr = p.SolveState(xWarm, wsWarm, st)
					coldRes, coldErr = p.Solve(xCold, NewWorkspace(c.n))
				}
				if (warmErr == nil) != (coldErr == nil) {
					t.Fatalf("step %d: warm err %v, cold err %v", step, warmErr, coldErr)
				}
				if warmErr != nil {
					continue // both infeasible the same way; state untouched
				}
				if warmRes.Lambda != coldRes.Lambda {
					t.Fatalf("step %d: warm λ=%v cold λ=%v (must be bit-identical)", step, warmRes.Lambda, coldRes.Lambda)
				}
				if warmRes.Total != coldRes.Total {
					t.Fatalf("step %d: warm total=%v cold total=%v", step, warmRes.Total, coldRes.Total)
				}
				if warmRes.Ops != coldRes.Ops {
					t.Fatalf("step %d: warm ops=%d cold ops=%d (cost model must not depend on the path)", step, warmRes.Ops, coldRes.Ops)
				}
				for j := 0; j < c.n; j++ {
					if xWarm[j] != xCold[j] {
						t.Fatalf("step %d: x[%d] warm=%v cold=%v", step, j, xWarm[j], xCold[j])
					}
				}
			}
			if c.n > 1 && st.FastSorts == 0 {
				t.Errorf("warm path never took the fast sort (%d full sorts) — the cache is not being exercised", st.FullSorts)
			}
		})
	}
}

// TestStateReset: after Reset the next solve runs cold (a full sort) and
// still matches.
func TestStateReset(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 9))
	p := buildProblem(rng, warmCase{n: 50})
	st := &State{}
	ws := NewWorkspace(50)
	x := make([]float64, 50)
	if _, err := p.SolveState(x, ws, st); err != nil {
		t.Fatal(err)
	}
	full := st.FullSorts
	st.Reset()
	if _, err := p.SolveState(x, ws, st); err != nil {
		t.Fatal(err)
	}
	if st.FullSorts != full+1 {
		t.Errorf("post-Reset solve should cold-sort: FullSorts %d, want %d", st.FullSorts, full+1)
	}
}

// TestStateShapeChange: a State reused across a size change must detect the
// mismatch, cold-sort, and stay correct.
func TestStateShapeChange(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 10))
	st := &State{}
	ws := NewWorkspace(64)
	for _, n := range []int{40, 64, 12, 64} {
		p := buildProblem(rng, warmCase{n: n})
		xWarm := make([]float64, n)
		xCold := make([]float64, n)
		warmRes, err := p.SolveState(xWarm, ws, st)
		if err != nil {
			t.Fatal(err)
		}
		coldRes, err := p.Solve(xCold, NewWorkspace(n))
		if err != nil {
			t.Fatal(err)
		}
		if warmRes.Lambda != coldRes.Lambda {
			t.Fatalf("n=%d: warm λ=%v cold λ=%v", n, warmRes.Lambda, coldRes.Lambda)
		}
		for j := range xWarm {
			if xWarm[j] != xCold[j] {
				t.Fatalf("n=%d: x[%d] differs", n, j)
			}
		}
	}
}

// TestWorkspaceShrinks: a workspace that once served a huge subproblem must
// release that capacity after a window of small solves, then grow again on
// demand — the retained-capacity bound for mixed-size workloads.
func TestWorkspaceShrinks(t *testing.T) {
	big, small := 4096, 8
	ws := NewWorkspace(big)
	solve := func(n int) {
		p := &Problem{C: make([]float64, n), A: make([]float64, n)}
		for j := 0; j < n; j++ {
			p.C[j] = float64(j%17) - 8
			p.A[j] = 1
		}
		p.R = float64(n)
		x := make([]float64, n)
		if _, err := p.Solve(x, ws); err != nil {
			t.Fatal(err)
		}
	}
	solve(big)
	if cap(ws.C) < big {
		t.Fatalf("workspace did not grow to %d", big)
	}
	for i := 0; i < 2*shrinkWindow; i++ {
		solve(small)
	}
	if cap(ws.C) >= big {
		t.Errorf("workspace retained cap %d after %d solves of size %d; want shrink", cap(ws.C), 2*shrinkWindow, small)
	}
	if cap(ws.events) >= 2*big {
		t.Errorf("event buffer retained cap %d; want shrink", cap(ws.events))
	}
	// Must grow back transparently: the event buffer through a big solve,
	// the coefficient buffers through the next Scratch acquisition.
	solve(big)
	if cap(ws.events) < 2*small {
		t.Errorf("event buffer failed to regrow after shrink")
	}
	if c, a := ws.Scratch(big); len(c) != big || len(a) != big {
		t.Errorf("Scratch(%d) after shrink returned len %d/%d", big, len(c), len(a))
	}
}

// TestWorkspaceKeepsSteadyCapacity: a steady stream of same-size solves must
// never shrink (no realloc churn at the steady state).
func TestWorkspaceKeepsSteadyCapacity(t *testing.T) {
	n := 512
	ws := NewWorkspace(n)
	p := &Problem{C: make([]float64, n), A: make([]float64, n), R: float64(n)}
	for j := 0; j < n; j++ {
		p.C[j] = float64(j % 31)
		p.A[j] = 1
	}
	x := make([]float64, n)
	if _, err := p.Solve(x, ws); err != nil {
		t.Fatal(err)
	}
	c0 := &ws.C[0]
	for i := 0; i < 3*shrinkWindow; i++ {
		if _, err := p.Solve(x, ws); err != nil {
			t.Fatal(err)
		}
	}
	if &ws.C[0] != c0 {
		t.Error("steady same-size workload reallocated the coefficient buffer")
	}
}
