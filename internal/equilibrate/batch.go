package equilibrate

import (
	"fmt"
	"math"

	"sea/internal/sortx"
)

// Batch solves many exact-equilibration subproblems as one fused unit
// instead of m independent sort-and-sweeps. Subproblems are accumulated with
// Add/AddInterval — each contributes a contiguous segment of the shared
// event array, with sort keys indexed into that concatenated array — and
// Solve then runs:
//
//  1. warm replays: segments whose State carries a valid permutation gather
//     their keys straight into their slot of the canonical array and repair
//     drift with the budgeted insertion pass, exactly as the single path;
//  2. one fused stable LSD radix over the *concatenated* keys of every cold
//     segment (the per-segment XOR byte masks were folded during Add, so no
//     extra pre-pass), followed by a single stable counting pass that
//     distributes keys into their segment slots. Stability is what makes the
//     segmentation free: after the position-byte passes, ties — including
//     keys of different segments sharing a position — are in global build
//     order, so distributing by segment preserves per-segment (position,
//     build index) order, which IS the canonical order each slot needs. No
//     per-segment fixup of any kind runs afterwards;
//  3. a sweep and primal recovery per segment, in add order, over the exact
//     same sweep code as the single path.
//
// Because the canonical sorted key array of each segment is unique (strict
// total order) and every stage after the sort is shared code on identical
// float values, batch results are bit-identical to per-subproblem SolveState
// calls — batching, like warm starting, is purely a performance choice.
//
// The one observable difference is error *attribution* under multiple
// simultaneous failures: Add surfaces validation and feasibility errors
// immediately, before earlier segments' sweeps have run, so when subproblem
// 3 would fail in its sweep and subproblem 5 in its pre-check, the batch
// reports 5 where a sequential loop reports 3. Some subproblem fails either
// way, and callers abort the phase on the first error in both designs.
//
// A Batch must not be shared between concurrent solves; allocate one per
// worker. Buffers grow on demand and are retained across Reset.
type Batch struct {
	segs   []batchSeg
	events []event     // concatenated, in add order
	keys   []sortx.Key // build order, Idx global into events; clobbered by Solve
	sorted []sortx.Key // canonical order, per-segment slots
	alt    []sortx.Key // radix ping-pong / cold-key gather
	alt2   []sortx.Key // second ping-pong buffer when warm slots force a gather
	segOf  []int32     // global event index -> segment index
	next   []int32     // per-segment write cursors of the distribution pass
	coef   []float64   // Coef arena
	b0     uint64      // XOR reference for the per-segment byte masks
	b0set  bool
}

// batchSeg is one accumulated subproblem: a value copy of its Problem (the
// referenced slices must stay valid until Solve), its output block, optional
// warm-start State, and its [off, off+nev) window of the shared event array.
type batchSeg struct {
	p     Problem
	x     []float64
	st    *State
	off   int32
	nev   int32
	diff  uint64 // OR of (key bits ^ first) over the segment's keys
	first uint64 // Bits of the segment's first key (the diff reference)
	lb    float64
	warm  bool // this solve replayed its cached permutation
	done  bool // solved at Add time (empty or slack-interval subproblem)
	done2 bool // cold-sorted individually by Solve (insertion or own radix)
	res   Result
}

// NewBatch returns an empty batch pre-sized for about hint concatenated
// events per Solve (the caller's event budget plus one subproblem of
// overshoot), so steady dispatching never grows buffers through repeated
// append doubling. hint ≤ 0 starts empty; everything still grows on demand.
func NewBatch(hint int) *Batch {
	if hint <= 0 {
		return &Batch{}
	}
	return &Batch{
		segs:   make([]batchSeg, 0, 64),
		events: make([]event, 0, hint),
		keys:   make([]sortx.Key, 0, hint),
		segOf:  make([]int32, 0, hint),
		sorted: make([]sortx.Key, hint),
		alt:    make([]sortx.Key, hint),
		alt2:   make([]sortx.Key, hint),
		coef:   make([]float64, 0, hint),
	}
}

// Reset discards accumulated subproblems, keeping buffer capacity.
func (b *Batch) Reset() {
	b.segs = b.segs[:0]
	b.events = b.events[:0]
	b.keys = b.keys[:0]
	b.segOf = b.segOf[:0]
	b.coef = b.coef[:0]
	b.b0set = false
}

// Len returns the number of subproblems added since the last Reset.
func (b *Batch) Len() int { return len(b.segs) }

// Result returns the i-th (in add order) subproblem's result. Valid only
// after a successful Solve and until the next Reset.
func (b *Batch) Result(i int) Result { return b.segs[i].res }

// Coef returns a fresh n-length coefficient slice from the batch's arena,
// valid until the next Reset — the batch analogue of Workspace.Scratch, for
// callers that build each subproblem's linear term in place. Slices returned
// earlier in the same batch stay valid even when the arena grows: segments
// hold their own headers into the previous backing array.
func (b *Batch) Coef(n int) []float64 {
	off := len(b.coef)
	if cap(b.coef)-off < n {
		c := 2 * cap(b.coef)
		if c < off+n {
			c = off + n
		}
		b.coef = make([]float64, 0, c)
		off = 0
	}
	b.coef = b.coef[:off+n]
	return b.coef[off : off+n : off+n]
}

// Add appends one subproblem with output block x (length len(p.C)) and
// optional warm-start State. It mirrors SolveState's validation and
// feasibility pre-checks, so structural errors surface here rather than at
// Solve. p's slices and x must stay valid until Solve returns.
func (b *Batch) Add(p *Problem, x []float64, st *State) error {
	if err := p.validate(x); err != nil {
		return err
	}
	return b.add(p, x, st)
}

// validate is the shared argument check of SolveState and Batch.Add.
func (p *Problem) validate(x []float64) error {
	n := len(p.C)
	if len(p.A) != n || (p.U != nil && len(p.U) != n) || (p.L != nil && len(p.L) != n) || len(x) != n {
		return fmt.Errorf("equilibrate: inconsistent lengths (c=%d a=%d u=%d l=%d x=%d)",
			len(p.C), len(p.A), len(p.U), len(p.L), len(x))
	}
	if p.E < 0 {
		return fmt.Errorf("equilibrate: negative elastic slope %g", p.E)
	}
	return nil
}

// add is the shared tail of Add and AddInterval: fast paths, feasibility
// pre-checks, the event build, and the byte-mask fold.
func (b *Batch) add(p *Problem, x []float64, st *State) error {
	n := len(p.C)
	if n == 0 {
		lambda, ops, err := p.emptyRoot()
		if err != nil {
			return err
		}
		b.segs = append(b.segs, batchSeg{p: *p, x: x, st: st, done: true,
			res: Result{Lambda: lambda, Ops: ops}})
		return nil
	}
	// Append the segment first and fill it through the pointer: batchSeg is
	// large (it embeds a Problem copy), and building it on the stack first
	// would copy it twice per subproblem.
	b.segs = append(b.segs, batchSeg{p: *p, x: x, st: st})
	seg := &b.segs[len(b.segs)-1]
	seg.lb = p.sumLower()
	if err := p.feasible(seg.lb); err != nil {
		b.segs = b.segs[:len(b.segs)-1]
		return err
	}
	off := len(b.events)
	ev, keys, err := seg.p.appendEvents(b.events, b.keys)
	if err != nil {
		b.events, b.keys = ev[:off], keys[:off]
		b.segs = b.segs[:len(b.segs)-1]
		return err
	}
	b.events, b.keys = ev, keys
	seg.off = int32(off)
	seg.nev = int32(len(ev) - off)
	if !b.b0set {
		b.b0 = keys[off].Bits
		b.b0set = true
	}
	// Fold the differing-byte mask over the fresh keys (still in cache) so
	// neither sort mode needs a pre-pass. The reference is the segment's own
	// first key, keeping the mask tight for the per-segment radix; the fused
	// pass bridges to the batch-global reference b0 with one extra term per
	// segment (k^b0 = (k^first)^(first^b0)). The event→segment map the fused
	// distribution pass needs is NOT built here: most batches never take
	// that route, so Solve fills it lazily for just the fused segments.
	seg.first = keys[off].Bits
	var diff uint64
	for _, k := range keys[off:] {
		diff |= k.Bits ^ seg.first
	}
	seg.diff = diff
	return nil
}

// AddInterval appends one interval-total subproblem lo ≤ Σx ≤ hi — the
// batched form of SolveIntervalState. The free solution at λ = 0 is computed
// immediately; only a binding side contributes a segment to the batch.
func (b *Batch) AddInterval(p *Problem, lo, hi float64, x []float64, st *State) error {
	if p.E != 0 {
		return fmt.Errorf("equilibrate: SolveInterval requires E = 0, got %g", p.E)
	}
	if !(lo <= hi) {
		return fmt.Errorf("equilibrate: empty interval [%g, %g]", lo, hi)
	}
	if err := p.validate(x); err != nil {
		return err
	}
	n := len(p.C)
	var total float64
	for j := 0; j < n; j++ {
		v := p.clampVal(j, p.C[j])
		x[j] = v
		total += v
	}
	q := *p
	switch {
	case total > hi:
		q.R = hi
	case total < lo:
		q.R = lo
	default:
		b.segs = append(b.segs, batchSeg{p: q, x: x, st: st, done: true,
			res: Result{Lambda: 0, Total: total, Ops: int64(2 * n)}})
		return nil
	}
	return b.add(&q, x, st)
}

// The cold-segment routing thresholds (vars only so the route benchmarks
// can force each path; see BenchmarkBatchRoute and docs/PERFORMANCE.md):
//
//   - batchInsertionMax: at or below this event count a segment sorts by
//     straight insertion in its slot. Lower than the single path's
//     sortx.InsertionThreshold because the batch amortizes radix fixed
//     costs across segments, moving the insertion/radix crossover down.
//   - segRadixMin: from this event count a cold segment runs its own radix
//     over the shared ping-pong buffers — its per-segment byte mask is
//     tighter than any union and it skips the distribution pass, which
//     beats the fused pass once the per-sort fixed costs amortize within
//     the segment itself.
//
// Segments between the two join the fused radix + stable distribution pass.
var (
	batchInsertionMax = 48
	segRadixMin       = 257
)

// Solve sorts and sweeps every pending segment. On success it returns
// (-1, nil) and every Result is readable; on failure it returns the add-order
// index of the failing subproblem with the error (earlier segments' States
// may already be refreshed, exactly as a sequential loop would have left
// them before aborting).
func (b *Batch) Solve() (int, error) {
	total := len(b.events)
	b.sorted = growKeys(b.sorted, total)
	keys := b.keys

	// Stage 1: warm replays into each segment's slot of the canonical
	// array, with the single path's counter and cooldown bookkeeping.
	warm := 0
	cold := total
	for i := range b.segs {
		seg := &b.segs[i]
		if seg.done {
			continue
		}
		st := seg.st
		m := int(seg.nev)
		if st != nil && st.nev == m && st.cool == 0 {
			slot := b.sorted[seg.off : int(seg.off)+m]
			if replayKeys(slot, keys, st.perm[:m], seg.off) {
				st.FastSorts++
				seg.warm = true
				warm++
				cold -= m
				continue
			}
			st.FullSorts++
			st.cool = replayCooldown
			continue
		}
		if st != nil {
			st.FullSorts++
			if st.cool > 0 {
				st.cool--
			}
		}
	}

	// Stage 2: sort the cold segments, each by the cheapest correct route.
	// Segments at or below the insertion threshold use per-slot straight
	// insertion (exactly the single path's choice); segments of at least
	// segRadixMin events run their own radix over the shared ping-pong
	// buffers — their per-segment byte masks are tighter than any union and
	// they skip the distribution pass entirely; the small-but-not-tiny
	// remainder, where per-sort fixed costs would dominate, is gathered into
	// ONE fused radix over its concatenated keys followed by a single stable
	// segment-distribution pass. Every route lands the same canonical
	// per-slot order, so the choice is invisible in the results.
	if cold > 0 {
		fused := 0
		for i := range b.segs {
			seg := &b.segs[i]
			if seg.done || seg.warm {
				continue
			}
			m := int(seg.nev)
			slot := b.sorted[seg.off : int(seg.off)+m]
			switch {
			case m <= batchInsertionMax:
				copy(slot, keys[seg.off:int(seg.off)+m])
				sortx.InsertionKeys(slot)
				seg.done2 = true
			case m >= segRadixMin:
				// Radix in place over the build-order keys (clobbered by
				// contract), ping-ponging against the canonical slot: an odd
				// pass count ends in the slot for free, an even one copies.
				res := sortx.RadixKeysMask(keys[seg.off:int(seg.off)+m], slot, seg.diff)
				if &res[0] != &slot[0] {
					copy(slot, res)
				}
				seg.done2 = true
			default:
				fused += m
			}
		}
		if fused > 0 {
			// Gather the remaining cold keys contiguously and bridge each
			// segment's mask to the batch-global reference b0. The
			// event→segment map is filled here, for just these segments —
			// batches that never reach this route never pay for it.
			b.alt = growKeys(b.alt, fused)
			b.segOf = growInt32(b.segOf, total)
			var diff uint64
			g := b.alt[:0]
			for i := range b.segs {
				seg := &b.segs[i]
				if seg.done || seg.warm || seg.done2 {
					continue
				}
				g = append(g, keys[seg.off:seg.off+seg.nev]...)
				for j := seg.off; j < seg.off+seg.nev; j++ {
					b.segOf[j] = int32(i)
				}
				diff |= seg.diff | (seg.first ^ b.b0)
			}
			b.alt2 = growKeys(b.alt2, fused)
			src := sortx.RadixKeysMask(g, b.alt2[:fused], diff)
			// Final stable pass: distribute by segment into each slot. With
			// ties already in global build order after the position-byte
			// passes, stability makes every slot canonical by construction.
			b.next = growInt32(b.next, len(b.segs))
			next, segOf, sorted := b.next, b.segOf, b.sorted
			for i := range b.segs {
				next[i] = b.segs[i].off
			}
			for _, k := range src {
				s := segOf[k.Idx]
				sorted[next[s]] = k
				next[s]++
			}
		}
	}

	// Stage 3: save states, sweep, and recover each block, in add order —
	// shared code with the single path from here on.
	for i := range b.segs {
		seg := &b.segs[i]
		if seg.done {
			continue
		}
		m := int(seg.nev)
		sk := b.sorted[int(seg.off) : int(seg.off)+m]
		if st := seg.st; st != nil {
			st.save(sk, seg.off)
		}
		p := &seg.p
		ops := int64(7*m) + int64(float64(m)*math.Log2(float64(m)+1))
		lambda, extra, err := p.sweep(b.events, sk, seg.lb, seg.st)
		if err != nil {
			return i, err
		}
		tot := p.recoverPrimal(seg.x, lambda)
		seg.res = Result{Lambda: lambda, Total: tot, Ops: ops + extra + int64(2*len(p.C))}
	}
	return -1, nil
}

// growKeys returns buf resized to n, reallocating only when capacity is
// short.
func growKeys(buf []sortx.Key, n int) []sortx.Key {
	if cap(buf) < n {
		return make([]sortx.Key, n)
	}
	return buf[:n]
}

func growInt32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// PresizeStates gives each cold State in sts permutation capacity for nev
// events, carved from one shared slab — engaging a phase's warm starts then
// costs two allocations instead of one per subproblem (the table5/spe250
// cold-solve alloc regression). States already carrying a permutation keep
// it, and solves whose event count exceeds nev simply grow individually:
// presizing is purely an allocation-count optimization.
func PresizeStates(sts []State, nev int) {
	if nev <= 0 || len(sts) == 0 {
		return
	}
	slab := make([]int32, len(sts)*nev)
	for i := range sts {
		if cap(sts[i].perm) < nev {
			sts[i].perm = slab[i*nev : i*nev : (i+1)*nev]
		}
	}
}
