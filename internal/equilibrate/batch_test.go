package equilibrate

import (
	"math"
	"math/rand/v2"
	"testing"
)

// batchSlot is one subproblem tracked through the batched-vs-single property
// test: the instance, its interval (when applicable), and one warm-start
// State plus output block per path.
type batchSlot struct {
	c      warmCase
	p      *Problem
	lo, hi float64
	stS    State // single path
	stB    State // batched path
	xS     []float64
	xB     []float64
	ties   bool
}

// batchSlots builds the adversarial mix: empty subproblems, single-
// breakpoint rows, all-ties keys, sizes on both sides of the insertion/radix
// threshold, every bound pattern, and interval totals — all in one batch.
func batchSlots(rng *rand.Rand) []*batchSlot {
	cases := []struct {
		c    warmCase
		ties bool
	}{
		{c: warmCase{name: "empty", n: 0, elastic: true}},
		{c: warmCase{name: "single", n: 1}},
		{c: warmCase{name: "ties-small", n: 12}, ties: true},
		{c: warmCase{name: "ties-large", n: 200}, ties: true},
		{c: warmCase{name: "fixed-small", n: 7}},
		{c: warmCase{name: "fixed-large", n: 300}},
		{c: warmCase{name: "elastic", n: 120, elastic: true}},
		{c: warmCase{name: "bounded", n: 90, bounded: true}},
		{c: warmCase{name: "box", n: 150, bounded: true, lowered: true}},
		{c: warmCase{name: "interval", n: 110, bounded: true, interval: true}},
		{c: warmCase{name: "empty-fixed", n: 0}},
		{c: warmCase{name: "single-elastic", n: 1, elastic: true}},
	}
	slots := make([]*batchSlot, len(cases))
	for i, tc := range cases {
		s := &batchSlot{c: tc.c, ties: tc.ties, p: buildProblem(rng, tc.c)}
		if tc.ties {
			// Every breakpoint at the same position: all sort keys are
			// equal, within the segment and across tied segments, so the
			// fused radix's byte mask is empty and only stability separates
			// build orders.
			for j := 0; j < tc.c.n; j++ {
				s.p.A[j] = 1
				s.p.C[j] = 2.5
			}
			s.p.R = feasibleTarget(rng, s.p)
		}
		if tc.c.n == 0 && !tc.c.elastic {
			s.p.R = 0 // the only feasible empty fixed-total subproblem
		}
		s.xS = make([]float64, tc.c.n)
		s.xB = make([]float64, tc.c.n)
		slots[i] = s
	}
	return slots
}

// perturb drifts a slot's instance the way SEA's outer iterations do —
// usually small dual drift, occasionally a violent shake — identically for
// both solve paths.
func (s *batchSlot) perturb(rng *rand.Rand) {
	scale := 0.05
	if rng.Float64() < 0.2 {
		scale = 20
	}
	for j := 0; j < s.c.n; j++ {
		s.p.C[j] += rng.NormFloat64() * scale
	}
	if s.ties && rng.Float64() < 0.5 {
		// Keep the all-ties structure through some perturbations.
		for j := 0; j < s.c.n; j++ {
			s.p.C[j] = s.p.C[0]
		}
	}
	if s.c.n > 0 && rng.Float64() < 0.3 {
		s.p.R = feasibleTarget(rng, s.p)
	}
	if s.c.interval {
		mid := feasibleTarget(rng, s.p)
		span := rng.Float64() * 10
		s.lo, s.hi = mid-span, mid+span
	}
}

// TestBatchBitIdenticalToSingle is the batched kernel's contract: over
// random sequences of perturbed adversarial subproblems — solved one-by-one
// through SolveState/SolveIntervalState on one side and through a Batch on
// the other, with independent warm-start States on each side — every result,
// primal block, op count, and warm-start counter is bit-identical, for batch
// group sizes of 1 (degenerate), a few, and all-at-once (> number of
// subproblems never splits).
func TestBatchBitIdenticalToSingle(t *testing.T) {
	for _, group := range []int{1, 4, 1 << 20} {
		t.Run(groupName(group), func(t *testing.T) {
			rng := rand.New(rand.NewPCG(97, uint64(group)))
			slots := batchSlots(rng)
			ws := NewWorkspace(300)
			b := NewBatch(0)
			const steps = 30
			for step := 0; step < steps; step++ {
				for _, s := range slots {
					s.perturb(rng)
				}
				// Single path.
				type single struct {
					res Result
					err error
				}
				want := make([]single, len(slots))
				for i, s := range slots {
					if s.c.interval {
						want[i].res, want[i].err = s.p.SolveIntervalState(s.lo, s.hi, s.xS, ws, &s.stS)
					} else {
						want[i].res, want[i].err = s.p.SolveState(s.xS, ws, &s.stS)
					}
					if want[i].err != nil {
						t.Fatalf("step %d slot %s: single path error %v", step, s.c.name, want[i].err)
					}
				}
				// Batched path, in groups.
				for lo := 0; lo < len(slots); lo += group {
					hi := lo + group
					if hi > len(slots) {
						hi = len(slots)
					}
					b.Reset()
					for _, s := range slots[lo:hi] {
						var err error
						if s.c.interval {
							err = b.AddInterval(s.p, s.lo, s.hi, s.xB, &s.stB)
						} else {
							err = b.Add(s.p, s.xB, &s.stB)
						}
						if err != nil {
							t.Fatalf("step %d slot %s: Add error %v", step, s.c.name, err)
						}
					}
					if bad, err := b.Solve(); err != nil {
						t.Fatalf("step %d: batch Solve failed at %d: %v", step, lo+bad, err)
					}
					for k, s := range slots[lo:hi] {
						got, w := b.Result(k), want[lo+k]
						if got.Lambda != w.res.Lambda || got.Total != w.res.Total || got.Ops != w.res.Ops {
							t.Fatalf("step %d slot %s: batch %+v, single %+v (must be bit-identical)",
								step, s.c.name, got, w.res)
						}
					}
				}
				for _, s := range slots {
					for j := range s.xS {
						if s.xS[j] != s.xB[j] {
							t.Fatalf("step %d slot %s: x[%d] single=%v batch=%v", step, s.c.name, j, s.xS[j], s.xB[j])
						}
					}
					if s.stS.FastSorts != s.stB.FastSorts || s.stS.FullSorts != s.stB.FullSorts {
						t.Fatalf("step %d slot %s: warm counters diverged (single %d/%d, batch %d/%d)",
							step, s.c.name, s.stS.FastSorts, s.stS.FullSorts, s.stB.FastSorts, s.stB.FullSorts)
					}
					if s.stS.LastSeg != s.stB.LastSeg {
						t.Fatalf("step %d slot %s: LastSeg single=%d batch=%d", step, s.c.name, s.stS.LastSeg, s.stB.LastSeg)
					}
				}
			}
			for _, s := range slots {
				// The ties slots flip between two unrelated orderings by
				// design, so their replays legitimately keep failing.
				if s.c.n > 1 && !s.ties && s.stB.FastSorts == 0 {
					t.Errorf("slot %s: batched warm path never replayed (%d full sorts)", s.c.name, s.stB.FullSorts)
				}
			}
		})
	}
}

func groupName(g int) string {
	switch g {
	case 1:
		return "group-1"
	case 1 << 20:
		return "group-all"
	default:
		return "group-few"
	}
}

// TestBatchColdNoStates runs the same comparison with nil States (the cold
// path core uses before warm onset): all segments cold, pure fused radix.
func TestBatchColdNoStates(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 3))
	slots := batchSlots(rng)
	ws := NewWorkspace(300)
	b := NewBatch(0)
	for step := 0; step < 10; step++ {
		for _, s := range slots {
			s.perturb(rng)
		}
		b.Reset()
		for _, s := range slots {
			var err error
			if s.c.interval {
				err = b.AddInterval(s.p, s.lo, s.hi, s.xB, nil)
			} else {
				err = b.Add(s.p, s.xB, nil)
			}
			if err != nil {
				t.Fatalf("step %d slot %s: Add error %v", step, s.c.name, err)
			}
		}
		if bad, err := b.Solve(); err != nil {
			t.Fatalf("step %d: Solve failed at %d: %v", step, bad, err)
		}
		for i, s := range slots {
			var want Result
			var err error
			if s.c.interval {
				want, err = s.p.SolveIntervalState(s.lo, s.hi, s.xS, ws, nil)
			} else {
				want, err = s.p.SolveState(s.xS, ws, nil)
			}
			if err != nil {
				t.Fatalf("step %d slot %s: single path error %v", step, s.c.name, err)
			}
			if got := b.Result(i); got != want {
				t.Fatalf("step %d slot %s: batch %+v, single %+v", step, s.c.name, got, want)
			}
			for j := range s.xS {
				if s.xS[j] != s.xB[j] {
					t.Fatalf("step %d slot %s: x[%d] differs", step, s.c.name, j)
				}
			}
		}
	}
}

// TestBatchAllTiesAcrossSegments puts every key of every segment at the same
// position: the radix byte mask is identically zero, so the canonical order
// of each slot comes purely from the stability of the segment-distribution
// pass over the build order.
func TestBatchAllTiesAcrossSegments(t *testing.T) {
	for _, n := range []int{5, 40, 90} { // totals straddle InsertionThreshold
		b := NewBatch(0)
		ws := NewWorkspace(n)
		xB := make([][]float64, 3)
		for s := 0; s < 3; s++ {
			p := &Problem{C: make([]float64, n), A: make([]float64, n), R: float64(n)}
			for j := 0; j < n; j++ {
				p.C[j] = 1.5
				p.A[j] = 1
			}
			xB[s] = make([]float64, n)
			if err := b.Add(p, xB[s], nil); err != nil {
				t.Fatal(err)
			}
		}
		if bad, err := b.Solve(); err != nil {
			t.Fatalf("n=%d: Solve failed at %d: %v", n, bad, err)
		}
		p := &Problem{C: make([]float64, n), A: make([]float64, n), R: float64(n)}
		for j := 0; j < n; j++ {
			p.C[j] = 1.5
			p.A[j] = 1
		}
		x := make([]float64, n)
		want, err := p.Solve(x, ws)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 3; s++ {
			if got := b.Result(s); got != want {
				t.Fatalf("n=%d seg %d: batch %+v, single %+v", n, s, got, want)
			}
			for j := range x {
				if xB[s][j] != x[j] {
					t.Fatalf("n=%d seg %d: x[%d] differs", n, s, j)
				}
			}
		}
	}
}

// TestBatchAddErrors: structural and feasibility failures surface at Add,
// and the batch stays usable after a Reset.
func TestBatchAddErrors(t *testing.T) {
	b := NewBatch(0)
	x2 := make([]float64, 2)
	if err := b.Add(&Problem{C: []float64{1, 2}, A: []float64{1}}, x2, nil); err == nil {
		t.Fatal("length mismatch not rejected")
	}
	if err := b.Add(&Problem{C: []float64{1, 2}, A: []float64{1, 1}, E: -1}, x2, nil); err == nil {
		t.Fatal("negative elastic slope not rejected")
	}
	if err := b.Add(&Problem{C: []float64{math.NaN(), 2}, A: []float64{1, 1}, R: 1}, x2, nil); err == nil {
		t.Fatal("NaN breakpoint not rejected")
	}
	if err := b.Add(&Problem{C: []float64{1, 2}, A: []float64{1, 1}, U: []float64{1, 1}, R: 5}, x2, nil); err == nil {
		t.Fatal("infeasible fixed total not rejected")
	}
	if err := b.AddInterval(&Problem{C: []float64{1, 2}, A: []float64{1, 1}}, 3, 1, x2, nil); err == nil {
		t.Fatal("empty interval not rejected")
	}
	// After the failed adds the batch must still solve cleanly.
	b.Reset()
	if err := b.Add(&Problem{C: []float64{1, 2}, A: []float64{1, 1}, R: 2}, x2, nil); err != nil {
		t.Fatal(err)
	}
	if bad, err := b.Solve(); err != nil {
		t.Fatalf("Solve after Reset failed at %d: %v", bad, err)
	}
	want, err := (&Problem{C: []float64{1, 2}, A: []float64{1, 1}, R: 2}).Solve(make([]float64, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Result(0); got != want {
		t.Fatalf("post-Reset result %+v, want %+v", got, want)
	}
}

// TestBatchSteadyZeroAlloc: once warm, Reset/Add/Solve cycles of stable
// shapes allocate nothing — the property the core phases rely on for
// 0-alloc steady solves.
func TestBatchSteadyZeroAlloc(t *testing.T) {
	const n, segs = 64, 8
	b := NewBatch(segs * n)
	probs := make([]*Problem, segs)
	xs := make([][]float64, segs)
	sts := make([]State, segs)
	rng := rand.New(rand.NewPCG(5, 5))
	for s := range probs {
		probs[s] = buildProblem(rng, warmCase{n: n})
		xs[s] = make([]float64, n)
	}
	run := func() {
		b.Reset()
		for s, p := range probs {
			if err := b.Add(p, xs[s], &sts[s]); err != nil {
				t.Fatal(err)
			}
		}
		if bad, err := b.Solve(); err != nil {
			t.Fatalf("Solve failed at %d: %v", bad, err)
		}
	}
	run() // engage the warm states and any lazy growth
	run()
	if avg := testing.AllocsPerRun(20, run); avg != 0 {
		t.Fatalf("steady batch cycle allocates %.1f objects/run, want 0", avg)
	}
}

// TestPresizeStates: presized states absorb saves up to the slab capacity
// without allocating, and solves exceeding it still work.
func TestPresizeStates(t *testing.T) {
	sts := make([]State, 4)
	PresizeStates(sts, 16)
	for i := range sts {
		if cap(sts[i].perm) != 16 {
			t.Fatalf("state %d: perm cap %d, want 16", i, cap(sts[i].perm))
		}
	}
	// Saving beyond the slab capacity must grow independently, not spill
	// into the neighbor's slab region.
	rng := rand.New(rand.NewPCG(9, 9))
	p := buildProblem(rng, warmCase{n: 32})
	x := make([]float64, 32)
	if _, err := p.SolveState(x, nil, &sts[0]); err != nil {
		t.Fatal(err)
	}
	if sts[0].nev != 32 {
		t.Fatalf("state 0 nev = %d, want 32", sts[0].nev)
	}
	if cap(sts[1].perm) != 16 || sts[1].nev != 0 {
		t.Fatal("neighbor state disturbed by out-of-slab growth")
	}
}
