package equilibrate

import (
	"math/rand/v2"
	"testing"
)

// benchBatch builds a cold batch of segs elastic subproblems of n breakpoints
// each and solves it, with the route thresholds forced by the caller.
func benchBatchRoutes(b *testing.B, n, segs, insMax, radixMin int) {
	oldIns, oldMin := batchInsertionMax, segRadixMin
	batchInsertionMax, segRadixMin = insMax, radixMin
	defer func() { batchInsertionMax, segRadixMin = oldIns, oldMin }()

	rng := rand.New(rand.NewPCG(1, 2))
	ps := make([]Problem, segs)
	xs := make([][]float64, segs)
	for s := range ps {
		c := make([]float64, n)
		a := make([]float64, n)
		for j := range c {
			c[j] = rng.NormFloat64() * 100
			a[j] = 0.5 + rng.Float64()
		}
		ps[s] = Problem{C: c, A: a, R: float64(n) * 0.3, E: 0}
		xs[s] = make([]float64, n)
	}
	batch := NewBatch(n*segs + n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.Reset()
		for s := range ps {
			if err := batch.Add(&ps[s], xs[s], nil); err != nil {
				b.Fatal(err)
			}
		}
		if idx, err := batch.Solve(); err != nil {
			b.Fatalf("seg %d: %v", idx, err)
		}
	}
}

func BenchmarkBatchRoute(b *testing.B) {
	for _, n := range []int{32, 64, 96, 128, 192, 256} {
		segs := 4096 / n
		b.Run("n="+itoa(n)+"/insertion", func(b *testing.B) { benchBatchRoutes(b, n, segs, 1<<30, 1<<30) })
		b.Run("n="+itoa(n)+"/fused", func(b *testing.B) { benchBatchRoutes(b, n, segs, 0, 1<<30) })
		b.Run("n="+itoa(n)+"/perseg", func(b *testing.B) { benchBatchRoutes(b, n, segs, 0, 0) })
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
