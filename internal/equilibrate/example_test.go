package equilibrate_test

import (
	"fmt"

	"sea/internal/equilibrate"
)

// ExampleProblem_Solve solves one row subproblem in closed form:
// min (x₁−1)² + (x₂−1)² subject to x₁+x₂ = 4, x ≥ 0.
func ExampleProblem_Solve() {
	p := &equilibrate.Problem{
		C: []float64{1, 1},   // stationary values at λ = 0
		A: []float64{.5, .5}, // a_j = 1/(2γ_j)
		R: 4,                 // the fixed total
	}
	x := make([]float64, 2)
	res, err := p.Solve(x, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("x = %v, multiplier = %g\n", x, res.Lambda)
	// Output:
	// x = [2 2], multiplier = 2
}
