package matio

import (
	"bytes"
	"math"
	"testing"

	"sea/internal/core"
	"sea/internal/problems"
)

// FuzzReadProblem hardens the JSON problem reader — the parser every
// network-facing surface (the HTTP transport's request path, seasolve's
// file input) funnels untrusted bytes through. Properties enforced:
//
//  1. ReadProblemJSON never panics, whatever the bytes.
//  2. A problem that reads successfully re-encodes, and the encoding is a
//     fixed point: read → write → read → write yields identical bytes
//     (no drift from defaulting, no loss from omitted fields).
//  3. Re-reading our own encoding never fails: everything WriteProblemJSON
//     emits is accepted back.
func FuzzReadProblem(f *testing.F) {
	// Seed with real encodings from each example family the repo ships,
	// covering the default-γ path (Gamma omitted) and the explicit one.
	for _, p := range []*core.DiagonalProblem{
		problems.Table1(8, 1),
		problems.Table1(14, 3),
		problems.RandomSAM(6, 2),
		problems.IOTable(problems.IOSpec{Name: "fuzz", Sectors: 5, Density: 0.8, Variant: problems.IOGrowth10, Seed: 4}),
		problems.MigrationProblem(problems.StandardMigrationSpecs()[0]),
		problems.SparseTable1(9, 3, 5),
		problems.SparseSAM(7, 3, 6),
	} {
		var buf bytes.Buffer
		if err := WriteProblemJSON(&buf, p); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}

	// Hand-written seeds: the non-fixed kinds, defaulted fields, and the
	// malformed shapes the reader's guards exist for.
	for _, s := range []string{
		`{"kind":"fixed","m":2,"n":2,"x0":[1,2,3,4],"s0":[3,7],"d0":[4,6]}`,
		`{"kind":"balanced","m":2,"n":2,"x0":[1,2,3,4],"alpha":[1,1]}`,
		`{"kind":"elastic","m":2,"n":2,"x0":[1,2,3,4],"s0":[3,7],"d0":[4,6],"alpha":[1,1],"beta":[1,1]}`,
		`{"kind":"interval","m":2,"n":2,"x0":[1,2,3,4],"alpha":[1,1],"slo":[1,1],"shi":[9,9],"dlo":[1,1],"dhi":[9,9]}`,
		`{"m":1,"n":1,"x0":[1],"s0":[1],"d0":[1],"upper":[2],"lower":[0.5]}`,
		`{}`,
		`{"kind":"fixed"}`,
		`{"kind":"nope","m":1,"n":1,"x0":[1]}`,
		`{"m":-1,"n":2,"x0":[]}`,
		`{"m":4611686018427387904,"n":4611686018427387904,"x0":[]}`,
		`{"m":2,"n":2,"x0":[1,2,3]}`,
		`{"m":1,"n":1,"x0":[1e999]}`,
		`{"m":1,"n":1,"x0":[1],"gamma":[0]}`,
		`{"m":1,"n":1,"x0":[1],"gamma":[-1]}`,
		`not json at all`,
		`[1,2,3]`,
		`"a string"`,
		``,
		// Sparse triplet encodings: a valid minimal CSR problem, then the
		// malformed shapes the sparse guards reject — triplet/value length
		// disagreement, totals not sized to the claimed dimensions (the
		// allocation bound), non-canonical order, and stray triplets on a
		// dense encoding.
		`{"kind":"fixed","storage":"csr","m":2,"n":2,"rows":[0,0,1],"cols":[0,1,1],"x0":[1,2,3],"s0":[3,3],"d0":[1,5]}`,
		`{"kind":"balanced","storage":"csr","m":2,"n":2,"rows":[0,1],"cols":[1,0],"x0":[2,2],"s0":[2,2],"alpha":[1,1]}`,
		`{"kind":"interval","storage":"csr","m":2,"n":2,"rows":[0,1],"cols":[0,1],"x0":[1,1],"slo":[0,0],"shi":[9,9],"dlo":[0,0],"dhi":[9,9]}`,
		`{"kind":"fixed","storage":"csr","m":2,"n":2,"rows":[0,1],"cols":[0,1],"x0":[1],"s0":[1,1],"d0":[1,1]}`,
		`{"kind":"fixed","storage":"csr","m":4611686018427387904,"n":2,"rows":[0],"cols":[0],"x0":[1],"s0":[1],"d0":[1,0]}`,
		`{"kind":"fixed","storage":"csr","m":2,"n":2,"rows":[1,0],"cols":[0,0],"x0":[1,2],"s0":[1,2],"d0":[1,2]}`,
		`{"kind":"fixed","storage":"csr","m":2,"n":2,"rows":[0,0],"cols":[1,1],"x0":[1,2],"s0":[1,2],"d0":[1,2]}`,
		`{"kind":"fixed","storage":"coo","m":1,"n":1,"x0":[1],"s0":[1],"d0":[1]}`,
		`{"kind":"fixed","m":1,"n":1,"rows":[0],"cols":[0],"x0":[1],"s0":[1],"d0":[1]}`,
		// Extreme dynamic range: the inputs the preconditioning layer exists
		// for. Cells and totals spanning ~30 orders of magnitude, subnormal
		// priors, near-overflow magnitudes, and mixed-scale weight vectors —
		// all finite, so the reader must accept them and round-trip exactly.
		`{"kind":"fixed","m":2,"n":2,"x0":[1e-30,1e30,1e30,1e-30],"s0":[1e30,1e30],"d0":[1e30,1e30]}`,
		`{"kind":"fixed","m":2,"n":2,"x0":[5e-324,1,1,1.7e308],"s0":[1,1.7e308],"d0":[1,1.7e308]}`,
		`{"kind":"elastic","m":2,"n":2,"x0":[1e-200,1e200,1,1],"s0":[1e200,2],"d0":[1e200,2],"alpha":[1e-12,1e12],"beta":[1e12,1e-12]}`,
		`{"kind":"balanced","m":2,"n":2,"x0":[1e-15,1e15,1e15,1e-15],"alpha":[1e-9,1e9]}`,
		`{"m":2,"n":2,"x0":[1e-100,1e100,1e100,1e-100],"gamma":[1e-150,1e150,1e150,1e-150],"s0":[1e100,1e100],"d0":[1e100,1e100]}`,
		`{"kind":"fixed","storage":"csr","m":3,"n":3,"rows":[0,1,2],"cols":[0,1,2],"x0":[1e-290,1,1e290],"s0":[1e-290,1,1e290],"d0":[1e-290,1,1e290]}`,
		// The objective attribute: the canonical spellings, the "kl" alias,
		// and an unknown family. The parser accepts all of them — the field
		// is solver routing, validated by ObjectiveKind at the request layer
		// — and the core conversion drops it, so round-trips stay exact.
		`{"kind":"fixed","m":2,"n":2,"x0":[1,2,3,4],"s0":[3,7],"d0":[4,6],"objective":"entropy"}`,
		`{"kind":"fixed","m":2,"n":2,"x0":[1,2,3,4],"s0":[3,7],"d0":[4,6],"objective":"quadratic"}`,
		`{"kind":"elastic","m":2,"n":2,"x0":[1,2,3,4],"s0":[3,7],"d0":[4,6],"alpha":[1,1],"beta":[1,1],"objective":"kl"}`,
		`{"kind":"fixed","m":1,"n":1,"x0":[1],"s0":[1],"d0":[1],"objective":"huber"}`,
		`{"kind":"fixed","storage":"csr","m":2,"n":2,"rows":[0,1],"cols":[0,1],"x0":[1,2],"s0":[1,2],"d0":[1,2],"objective":"entropy"}`,
	} {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadProblemJSON(bytes.NewReader(data))
		if err != nil {
			// Rejected input: the only contract is no panic.
			return
		}
		// Accepted problems carry only finite numbers — JSON cannot encode
		// NaN/Inf, and an accepted-then-unencodable problem would poison
		// the HTTP transport's response path.
		for _, vs := range [][]float64{p.X0, p.Gamma, p.S0, p.D0, p.Alpha, p.Beta} {
			for _, v := range vs {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("accepted problem contains non-finite value %v", v)
				}
			}
		}

		var w1 bytes.Buffer
		if err := WriteProblemJSON(&w1, p); err != nil {
			t.Fatalf("write of accepted problem failed: %v", err)
		}
		p2, err := ReadProblemJSON(bytes.NewReader(w1.Bytes()))
		if err != nil {
			t.Fatalf("re-read of own encoding failed: %v\nencoding:\n%s", err, w1.Bytes())
		}
		var w2 bytes.Buffer
		if err := WriteProblemJSON(&w2, p2); err != nil {
			t.Fatalf("second write failed: %v", err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatalf("encoding is not a fixed point:\nfirst:\n%s\nsecond:\n%s", w1.Bytes(), w2.Bytes())
		}
	})
}
