package matio

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"sea/internal/core"
	"sea/internal/problems"
)

// sparseExamples builds one small CSR problem per kind via the generators and
// conversions the repo ships.
func sparseExamples(t *testing.T) map[string]*core.DiagonalProblem {
	t.Helper()
	out := map[string]*core.DiagonalProblem{
		"fixed":    problems.SparseTable1(12, 3, 1),
		"balanced": problems.SparseSAM(10, 3, 2),
	}

	// An interval CSR problem and a bounded one come from sparsifying dense
	// instances whose zero cells are pinned.
	n := 6
	x0 := make([]float64, n*n)
	gamma := make([]float64, n*n)
	upper := make([]float64, n*n)
	for k := range x0 {
		gamma[k] = 1
		if k%3 == 0 {
			upper[k] = 0 // structural zero
			continue
		}
		x0[k] = float64(k%7) + 0.5
		upper[k] = math.Inf(1)
	}
	slo := make([]float64, n)
	shi := make([]float64, n)
	dlo := make([]float64, n)
	dhi := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			slo[i] += 0.5 * x0[i*n+j]
			shi[i] += 2 * x0[i*n+j]
			dlo[j] += 0.5 * x0[i*n+j]
			dhi[j] += 2 * x0[i*n+j]
		}
	}
	dense := &core.DiagonalProblem{
		M: n, N: n, X0: x0, Gamma: gamma, Upper: upper,
		SLo: slo, SHi: shi, DLo: dlo, DHi: dhi,
		Kind: core.IntervalTotals,
	}
	sp, err := dense.Sparsify()
	if err != nil {
		t.Fatalf("sparsify interval example: %v", err)
	}
	if sp.Pattern == nil || sp.Pattern.Nnz() == n*n {
		t.Fatal("interval example did not sparsify")
	}
	out["interval"] = sp
	return out
}

// TestSparseProblemJSONRoundTrip: a CSR problem's JSON encoding carries the
// triplets, reads back to the same pattern and values, and is a fixed point
// (read → write → read → write yields identical bytes).
func TestSparseProblemJSONRoundTrip(t *testing.T) {
	for name, p := range sparseExamples(t) {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteProblemJSON(&buf, p); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), `"storage": "csr"`) {
				t.Fatalf("encoding lacks the csr storage marker:\n%s", buf.String())
			}
			q, err := ReadProblemJSON(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("read back: %v", err)
			}
			if q.Pattern == nil {
				t.Fatal("read back a dense problem from a csr encoding")
			}
			if q.Pattern.Nnz() != p.Pattern.Nnz() {
				t.Fatalf("nnz %d, want %d", q.Pattern.Nnz(), p.Pattern.Nnz())
			}
			for i := range p.Pattern.RowPtr {
				if q.Pattern.RowPtr[i] != p.Pattern.RowPtr[i] {
					t.Fatalf("RowPtr[%d] = %d, want %d", i, q.Pattern.RowPtr[i], p.Pattern.RowPtr[i])
				}
			}
			for k := range p.Pattern.ColIdx {
				if q.Pattern.ColIdx[k] != p.Pattern.ColIdx[k] {
					t.Fatalf("ColIdx[%d] = %d, want %d", k, q.Pattern.ColIdx[k], p.Pattern.ColIdx[k])
				}
				if q.X0[k] != p.X0[k] || q.Gamma[k] != p.Gamma[k] {
					t.Fatalf("cell %d values drifted in round trip", k)
				}
			}
			// Fixed point after one read: defaulting may add fields (e.g. an
			// interval problem gains unit alpha), but from then on
			// read → write must be stable byte for byte.
			var w1 bytes.Buffer
			if err := WriteProblemJSON(&w1, q); err != nil {
				t.Fatal(err)
			}
			q2, err := ReadProblemJSON(bytes.NewReader(w1.Bytes()))
			if err != nil {
				t.Fatalf("re-read of own encoding failed: %v", err)
			}
			var w2 bytes.Buffer
			if err := WriteProblemJSON(&w2, q2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
				t.Fatalf("csr encoding is not a fixed point:\nfirst:\n%s\nsecond:\n%s", w1.Bytes(), w2.Bytes())
			}
		})
	}
}

// TestSparseProblemJSONRejects covers the reader's sparse guards: every
// malformed shape must fail cleanly (and before any dimension-sized
// allocation driven by untrusted M/N).
func TestSparseProblemJSONRejects(t *testing.T) {
	cases := map[string]string{
		"rows without csr storage": `{"kind":"fixed","m":2,"n":2,"rows":[0],"cols":[0],"x0":[1,2,3,4],"s0":[3,7],"d0":[4,6]}`,
		"unknown storage":          `{"kind":"fixed","storage":"coo","m":2,"n":2,"x0":[1,2,3,4],"s0":[3,7],"d0":[4,6]}`,
		"nnz length disagreement":  `{"kind":"fixed","storage":"csr","m":2,"n":2,"rows":[0,1],"cols":[0,1],"x0":[1],"s0":[1,1],"d0":[1,1]}`,
		"cols shorter than rows":   `{"kind":"fixed","storage":"csr","m":2,"n":2,"rows":[0,1],"cols":[0],"x0":[1,2],"s0":[1,2],"d0":[1,2]}`,
		"totals not sized to m":    `{"kind":"fixed","storage":"csr","m":99999999,"n":2,"rows":[0,1],"cols":[0,1],"x0":[1,2],"s0":[1,2],"d0":[1,2]}`,
		"balanced totals missing":  `{"kind":"balanced","storage":"csr","m":2,"n":2,"rows":[0,1],"cols":[0,1],"x0":[1,2],"alpha":[1,1]}`,
		"interval bounds missing":  `{"kind":"interval","storage":"csr","m":2,"n":2,"rows":[0,1],"cols":[0,1],"x0":[1,2]}`,
		"triplets out of order":    `{"kind":"fixed","storage":"csr","m":2,"n":2,"rows":[1,0],"cols":[0,0],"x0":[1,2],"s0":[1,2],"d0":[1,2]}`,
		"duplicate triplet":        `{"kind":"fixed","storage":"csr","m":2,"n":2,"rows":[0,0],"cols":[1,1],"x0":[1,2],"s0":[1,2],"d0":[3]}`,
		"triplet out of range":     `{"kind":"fixed","storage":"csr","m":2,"n":2,"rows":[0,5],"cols":[0,0],"x0":[1,2],"s0":[1,2],"d0":[1,2]}`,
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadProblemJSON(strings.NewReader(body)); err == nil {
				t.Fatalf("reader accepted malformed input: %s", body)
			}
		})
	}
}

// TestSparseSolveFromJSON: a CSR problem decoded from the wire solves, and
// its solution's X carries one entry per stored cell.
func TestSparseSolveFromJSON(t *testing.T) {
	p := problems.SparseTable1(12, 3, 4)
	var buf bytes.Buffer
	if err := WriteProblemJSON(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadProblemJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	o := core.DefaultOptions()
	o.Criterion = core.MaxAbsDelta
	o.Epsilon = 1e-8
	sol, err := core.SolveDiagonal(t.Context(), q, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.X) != q.Pattern.Nnz() {
		t.Fatalf("solution X has length %d, want nnz = %d", len(sol.X), q.Pattern.Nnz())
	}
	var out bytes.Buffer
	if err := WriteSolutionJSON(&out, sol); err != nil {
		t.Fatal(err)
	}
}
