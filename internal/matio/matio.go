// Package matio reads and writes constrained matrix problems and solutions:
// plain CSV for matrices and a JSON container for whole problems, used by
// cmd/seasolve and cmd/seagen.
package matio

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"sea/internal/core"
)

// ReadMatrixCSV parses a rectangular numeric CSV into a row-major matrix.
func ReadMatrixCSV(r io.Reader) (m, n int, data []float64, err error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return 0, 0, nil, fmt.Errorf("matio: %w", err)
	}
	if len(records) == 0 {
		return 0, 0, nil, fmt.Errorf("matio: empty matrix")
	}
	m = len(records)
	n = len(records[0])
	data = make([]float64, 0, m*n)
	for i, rec := range records {
		if len(rec) != n {
			return 0, 0, nil, fmt.Errorf("matio: row %d has %d fields, want %d", i, len(rec), n)
		}
		for j, cell := range rec {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return 0, 0, nil, fmt.Errorf("matio: cell (%d,%d): %w", i, j, err)
			}
			data = append(data, v)
		}
	}
	return m, n, data, nil
}

// WriteMatrixCSV writes a row-major matrix as CSV with full precision.
func WriteMatrixCSV(w io.Writer, m, n int, data []float64) error {
	if len(data) != m*n {
		return fmt.Errorf("matio: data length %d != %d×%d", len(data), m, n)
	}
	cw := csv.NewWriter(w)
	rec := make([]string, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			rec[j] = strconv.FormatFloat(data[i*n+j], 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Problem is the JSON container for a diagonal constrained matrix problem.
// Matrices are row-major flat arrays with explicit dimensions. Omitted
// Gamma defaults to the chi-square weighting 1/max(x⁰, 0.1); omitted
// Alpha/Beta (for elastic problems) default to 1.
//
// With Storage "csr" the per-cell arrays (x0, gamma, upper, lower) carry one
// entry per stored cell instead of m×n, and the parallel rows/cols arrays
// give each stored cell's coordinates in canonical order: row-major, column
// strictly increasing within a row. The writer emits exactly that order, and
// the reader rejects any other, so read→write→read is a fixed point.
type Problem struct {
	Kind string `json:"kind"` // "fixed", "elastic", "balanced" or "interval"
	// Objective selects the objective family to minimize: "" or "quadratic"
	// for the paper's weighted least squares, "entropy" (or "kl") for the
	// KL divergence to the prior. It is a solve request attribute rather
	// than problem data — ToCore ignores it; use ObjectiveKind.
	Objective string `json:"objective,omitempty"`
	M         int    `json:"m"`
	N         int    `json:"n"`
	// Storage selects the per-cell layout: "" or "dense" for row-major m×n
	// arrays, "csr" for support-only arrays indexed by rows/cols triplets.
	Storage string    `json:"storage,omitempty"`
	Rows    []int     `json:"rows,omitempty"`
	Cols    []int     `json:"cols,omitempty"`
	X0      []float64 `json:"x0"`
	Gamma   []float64 `json:"gamma,omitempty"`
	S0      []float64 `json:"s0,omitempty"`
	D0      []float64 `json:"d0,omitempty"`
	Alpha   []float64 `json:"alpha,omitempty"`
	Beta    []float64 `json:"beta,omitempty"`
	Upper   []float64 `json:"upper,omitempty"`
	Lower   []float64 `json:"lower,omitempty"`
	// Interval-totals bounds (kind "interval").
	SLo []float64 `json:"slo,omitempty"`
	SHi []float64 `json:"shi,omitempty"`
	DLo []float64 `json:"dlo,omitempty"`
	DHi []float64 `json:"dhi,omitempty"`
}

// FromCore converts a core problem to its JSON container.
func FromCore(p *core.DiagonalProblem) *Problem {
	out := &Problem{
		Kind: p.Kind.String(),
		M:    p.M, N: p.N,
		X0: p.X0, Gamma: p.Gamma,
		S0: p.S0, D0: p.D0,
		Alpha: p.Alpha, Beta: p.Beta,
		Upper: p.Upper, Lower: p.Lower,
		SLo: p.SLo, SHi: p.SHi, DLo: p.DLo, DHi: p.DHi,
	}
	if p.Pattern != nil {
		out.Storage = core.CSR.String()
		out.Rows, out.Cols = p.Pattern.Triplets()
	}
	return out
}

// ToCore converts the JSON container to a validated core problem.
//
// The dimensions are vetted before any defaulting allocates: the container
// is decoded from untrusted bytes (files, HTTP bodies), and a huge claimed
// M or N must fail cleanly rather than drive a multi-terabyte allocation.
// Requiring len(X0) == M×N up front bounds every subsequent allocation by
// the input's own size.
func (j *Problem) ToCore() (*core.DiagonalProblem, error) {
	if j.M <= 0 || j.N <= 0 {
		return nil, fmt.Errorf("matio: invalid dimensions %d×%d", j.M, j.N)
	}
	sparse := false
	switch j.Storage {
	case "", "dense":
		if j.Rows != nil || j.Cols != nil {
			return nil, fmt.Errorf("matio: rows/cols present without storage \"csr\"")
		}
		if j.M > math.MaxInt/j.N {
			return nil, fmt.Errorf("matio: dimensions %d×%d overflow", j.M, j.N)
		}
		if len(j.X0) != j.M*j.N {
			return nil, fmt.Errorf("matio: len(x0) = %d, want m×n = %d", len(j.X0), j.M*j.N)
		}
	case "csr":
		sparse = true
		if len(j.X0) != len(j.Rows) || len(j.Cols) != len(j.Rows) {
			return nil, fmt.Errorf("matio: csr arrays disagree: len(x0) = %d, len(rows) = %d, len(cols) = %d",
				len(j.X0), len(j.Rows), len(j.Cols))
		}
	default:
		return nil, fmt.Errorf("matio: unknown storage %q", j.Storage)
	}
	p := &core.DiagonalProblem{
		M: j.M, N: j.N,
		X0: j.X0, Gamma: j.Gamma,
		S0: j.S0, D0: j.D0,
		Alpha: j.Alpha, Beta: j.Beta,
		Upper: j.Upper, Lower: j.Lower,
		SLo: j.SLo, SHi: j.SHi, DLo: j.DLo, DHi: j.DHi,
	}
	if sparse {
		// Building the pattern allocates a RowPtr of length M+1 from an
		// untrusted claimed M, so bound M (and N) by arrays the problem must
		// carry anyway — the kind's own total vectors — before allocating.
		rowLen, colLen := len(j.S0), len(j.D0)
		switch j.Kind {
		case "balanced":
			colLen = len(j.S0)
		case "interval":
			rowLen, colLen = len(j.SLo), len(j.DLo)
		}
		if rowLen != j.M || colLen != j.N {
			return nil, fmt.Errorf("matio: csr problem needs its totals sized to %d×%d (got %d row-side, %d column-side)",
				j.M, j.N, rowLen, colLen)
		}
		pt, err := core.NewPatternFromTriplets(j.M, j.N, j.Rows, j.Cols)
		if err != nil {
			return nil, fmt.Errorf("matio: %w", err)
		}
		p.Pattern = pt
	}
	switch j.Kind {
	case "fixed", "":
		p.Kind = core.FixedTotals
	case "elastic":
		p.Kind = core.ElasticTotals
	case "balanced":
		p.Kind = core.Balanced
	case "interval":
		p.Kind = core.IntervalTotals
	default:
		return nil, fmt.Errorf("matio: unknown kind %q", j.Kind)
	}
	if p.Gamma == nil {
		p.Gamma = make([]float64, len(p.X0))
		for k, v := range p.X0 {
			p.Gamma[k] = 1 / math.Max(v, 0.1)
		}
	}
	if p.Kind != core.FixedTotals && p.Alpha == nil {
		p.Alpha = ones(p.M)
	}
	if p.Kind == core.ElasticTotals && p.Beta == nil {
		p.Beta = ones(p.N)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// ObjectiveKind parses the container's objective field ("" defaults to
// quadratic; "kl" is accepted as an alias for entropy).
func (j *Problem) ObjectiveKind() (core.Objective, error) {
	obj, err := core.ParseObjective(j.Objective)
	if err != nil {
		return core.ObjectiveQuadratic, fmt.Errorf("matio: %w", err)
	}
	return obj, nil
}

func ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// DecodeProblem decodes the raw JSON container without converting it to a
// core problem, for callers that need request attributes (the objective
// family) alongside the problem data. Call ToCore to validate.
func DecodeProblem(r io.Reader) (*Problem, error) {
	var j Problem
	if err := json.NewDecoder(r).Decode(&j); err != nil {
		return nil, fmt.Errorf("matio: %w", err)
	}
	return &j, nil
}

// ReadProblemJSON decodes and validates a problem.
func ReadProblemJSON(r io.Reader) (*core.DiagonalProblem, error) {
	j, err := DecodeProblem(r)
	if err != nil {
		return nil, err
	}
	return j.ToCore()
}

// WriteProblemJSON encodes a problem with indentation.
func WriteProblemJSON(w io.Writer, p *core.DiagonalProblem) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(FromCore(p))
}

// Solution is the JSON container for a solve result.
type Solution struct {
	X          []float64 `json:"x"`
	S          []float64 `json:"s"`
	D          []float64 `json:"d"`
	Lambda     []float64 `json:"lambda,omitempty"`
	Mu         []float64 `json:"mu,omitempty"`
	Iterations int       `json:"iterations"`
	Converged  bool      `json:"converged"`
	// Status is the solve's explicit outcome ("converged",
	// "max-iterations", "cancelled", "saturated", or "unknown").
	Status    string  `json:"status"`
	Residual  float64 `json:"residual"`
	Objective float64 `json:"objective"`
	// ObjectiveKind names the objective family the reported Objective value
	// belongs to: "quadratic" or "entropy".
	ObjectiveKind string `json:"objective_kind"`
	// PrecondNs is the preconditioning stage's wall time in nanoseconds;
	// zero (and omitted) when the solve did not precondition.
	PrecondNs int64 `json:"precond_ns,omitempty"`
}

// SolutionFromCore converts a solve result to its JSON container — the
// wire encoding shared by cmd/seasolve and the HTTP transport.
func SolutionFromCore(sol *core.Solution) *Solution {
	return &Solution{
		X: sol.X, S: sol.S, D: sol.D,
		Lambda: sol.Lambda, Mu: sol.Mu,
		Iterations:    sol.Iterations,
		Converged:     sol.Converged,
		Status:        sol.Status.String(),
		Residual:      sol.Residual,
		Objective:     sol.Objective,
		ObjectiveKind: sol.ObjectiveKind.String(),
		PrecondNs:     sol.PrecondNs,
	}
}

// WriteSolutionJSON encodes a solution with indentation.
func WriteSolutionJSON(w io.Writer, sol *core.Solution) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(SolutionFromCore(sol))
}
