package matio

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"sea/internal/core"
)

func TestMatrixCSVRoundTrip(t *testing.T) {
	data := []float64{1.5, -2, 3e-8, 4, 5.25, 6}
	var buf bytes.Buffer
	if err := WriteMatrixCSV(&buf, 2, 3, data); err != nil {
		t.Fatal(err)
	}
	m, n, got, err := ReadMatrixCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m != 2 || n != 3 {
		t.Fatalf("dims %d×%d", m, n)
	}
	for k := range data {
		if got[k] != data[k] {
			t.Errorf("entry %d: %g != %g", k, got[k], data[k])
		}
	}
}

func TestReadMatrixCSVErrors(t *testing.T) {
	if _, _, _, err := ReadMatrixCSV(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, _, err := ReadMatrixCSV(strings.NewReader("1,x\n2,3\n")); err == nil {
		t.Error("non-numeric cell accepted")
	}
	// The csv package itself rejects ragged rows.
	if _, _, _, err := ReadMatrixCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Error("ragged rows accepted")
	}
}

func TestWriteMatrixCSVValidation(t *testing.T) {
	if err := WriteMatrixCSV(&bytes.Buffer{}, 2, 2, []float64{1}); err == nil {
		t.Error("short data accepted")
	}
}

func TestProblemJSONRoundTrip(t *testing.T) {
	p := &core.DiagonalProblem{
		M: 2, N: 2,
		X0:    []float64{1, 2, 3, 4},
		Gamma: []float64{1, 0.5, 1, 0.25},
		S0:    []float64{3, 7},
		D0:    []float64{4, 6},
		Kind:  core.FixedTotals,
	}
	var buf bytes.Buffer
	if err := WriteProblemJSON(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProblemJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != core.FixedTotals || got.M != 2 || got.N != 2 {
		t.Fatalf("round trip mangled: %+v", got)
	}
	for k := range p.X0 {
		if got.X0[k] != p.X0[k] || got.Gamma[k] != p.Gamma[k] {
			t.Errorf("entry %d differs", k)
		}
	}
}

func TestProblemJSONDefaults(t *testing.T) {
	in := `{"kind":"elastic","m":1,"n":2,"x0":[1,2],"s0":[3],"d0":[1,2]}`
	p, err := ReadProblemJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != core.ElasticTotals {
		t.Errorf("kind %v", p.Kind)
	}
	// Default chi-square gamma and unit alpha/beta.
	if math.Abs(p.Gamma[0]-1) > 1e-12 || math.Abs(p.Gamma[1]-0.5) > 1e-12 {
		t.Errorf("default gamma wrong: %v", p.Gamma)
	}
	if p.Alpha[0] != 1 || p.Beta[1] != 1 {
		t.Errorf("default weights wrong: %v %v", p.Alpha, p.Beta)
	}
}

func TestProblemJSONRejectsBad(t *testing.T) {
	if _, err := ReadProblemJSON(strings.NewReader(`{"kind":"nope"}`)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := ReadProblemJSON(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
	// Infeasible fixed totals must be rejected through validation.
	bad := `{"kind":"fixed","m":1,"n":1,"x0":[1],"s0":[1],"d0":[5]}`
	if _, err := ReadProblemJSON(strings.NewReader(bad)); err == nil {
		t.Error("infeasible problem accepted")
	}
}

func TestSolveFromJSON(t *testing.T) {
	in := `{"kind":"fixed","m":2,"n":2,"x0":[1,1,1,1],"s0":[4,4],"d0":[4,4]}`
	p, err := ReadProblemJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	o := core.DefaultOptions()
	o.Criterion = core.DualGradient
	o.Epsilon = 1e-9
	sol, err := core.SolveDiagonal(context.Background(), p, o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSolutionJSON(&buf, sol); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"converged": true`) {
		t.Errorf("solution JSON missing fields: %s", out)
	}
}

func TestIntervalProblemJSONRoundTrip(t *testing.T) {
	in := `{"kind":"interval","m":1,"n":2,"x0":[1,2],
		"slo":[2.5],"shi":[3.5],"dlo":[0.5,1.5],"dhi":[1.5,2.5]}`
	p, err := ReadProblemJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != core.IntervalTotals {
		t.Fatalf("kind %v", p.Kind)
	}
	var buf bytes.Buffer
	if err := WriteProblemJSON(&buf, p); err != nil {
		t.Fatal(err)
	}
	p2, err := ReadProblemJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p2.SLo[0] != 2.5 || p2.DHi[1] != 2.5 {
		t.Errorf("interval bounds mangled: %+v", p2)
	}
	// And it solves.
	o := core.DefaultOptions()
	o.Criterion = core.DualGradient
	o.Epsilon = 1e-9
	sol, err := core.SolveDiagonal(context.Background(), p2, o)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Converged {
		t.Error("interval JSON problem did not converge")
	}
}
