package datasets

// SAM is a miniature social accounting matrix: an initial, deliberately
// inconsistent estimate of the transactions in an economy, assembled — as in
// practice — from disparate sources, together with prior totals for each
// account. Estimation must produce a matrix whose row i total (receipts)
// equals its column i total (expenditures), the "definitional" balance
// constraint of Section 2.
type SAM struct {
	Name     string
	Accounts []string
	// X0 is the initial transaction estimate (n×n row-major). Structural
	// zeros (impossible transactions) are exactly zero.
	X0 []float64
	// S0 holds prior estimates of the account totals.
	S0 []float64
}

// N returns the number of accounts.
func (s *SAM) N() int { return len(s.Accounts) }

// Transactions returns the number of nonzero entries in X0.
func (s *SAM) Transactions() int {
	var c int
	for _, v := range s.X0 {
		if v != 0 {
			c++
		}
	}
	return c
}

// Stone returns the 5-account example in the style of Stone (1962) and
// Byron (1978): production, households, government, capital and the rest of
// the world, with 12 recorded transactions. The entries are stylized; the
// dimensions and sparsity match the paper's Table 3 row "STONE".
func Stone() *SAM {
	// Accounts: 0 production, 1 households, 2 government, 3 capital, 4 row.
	// Row = receipts, column = expenditures.
	x0 := []float64{
		//  prod   hh     gov    cap    row
		0, 74.1, 17.2, 26.0, 13.5, // production sells to hh, gov, investment, exports
		105.2, 0, 5.9, 0, 0, // households receive value added and transfers
		22.4, 13.1, 0, 0, 0, // government: indirect taxes, income taxes
		0, 24.8, 6.3, 0, 0, // capital account: savings
		10.7, 0, 0, 1.9, 0, // rest of world: imports, capital outflow
	}
	s0 := []float64{131.0, 112.5, 35.8, 31.4, 12.8}
	return &SAM{
		Name:     "STONE",
		Accounts: []string{"Production", "Households", "Government", "Capital", "RestOfWorld"},
		X0:       x0,
		S0:       s0,
	}
}

// SriLanka returns the 6-account example in the style of the Sri Lanka 1970
// SAM in King (1985), with 20 recorded transactions.
func SriLanka() *SAM {
	x0 := []float64{
		//  agr    ind    svc    hh     gov    row
		0, 2.2, 0, 9.8, 0.9, 2.6, // agriculture
		1.8, 0, 2.1, 7.2, 0, 1.9, // industry
		0, 2.4, 0, 6.1, 2.2, 0, // services
		11.9, 6.8, 7.4, 0, 0, 0.8, // households (value added, remittances)
		0.9, 1.6, 0, 2.3, 0, 0, // government (taxes)
		1.1, 1.5, 0, 0, 0, 0, // rest of world (imports)
	}
	s0 := []float64{15.5, 13.0, 10.7, 26.9, 4.8, 2.6}
	return &SAM{
		Name:     "SRI",
		Accounts: []string{"Agriculture", "Industry", "Services", "Households", "Government", "RestOfWorld"},
		X0:       x0,
		S0:       s0,
	}
}

// Turkey returns the 8-account example in the style of the 1973 Turkish
// economy SAM of Dervis, De Melo and Robinson (1982), with 19 recorded
// transactions.
func Turkey() *SAM {
	x0 := []float64{
		//  agr    ind    svc    lab    cap    hh     gov    row
		0, 31.2, 0, 0, 0, 58.4, 0, 12.3, // agriculture
		0, 0, 22.5, 0, 0, 96.2, 15.8, 0, // industry
		0, 0, 0, 0, 0, 71.3, 18.2, 0, // services
		41.5, 52.8, 38.1, 0, 0, 0, 0, 0, // labor
		27.2, 44.6, 0, 0, 0, 0, 0, 0, // capital
		0, 0, 0, 132.4, 72.3, 0, 12.5, 0, // households
		14.3, 0, 0, 0, 0, 13.6, 0, 0, // government
		7.9, 0, 0, 0, 0, 0, 0, 0, // rest of world
	}
	s0 := []float64{101.9, 134.5, 89.5, 132.4, 71.8, 217.2, 27.9, 8.0}
	return &SAM{
		Name: "TURK",
		Accounts: []string{
			"Agriculture", "Industry", "Services", "Labor",
			"Capital", "Households", "Government", "RestOfWorld",
		},
		X0: x0,
		S0: s0,
	}
}

// All returns the three embedded miniature SAMs.
func All() []*SAM {
	return []*SAM{Stone(), Turkey(), SriLanka()}
}
