package datasets

import "testing"

func TestStates(t *testing.T) {
	states := States()
	if len(states) != 48 {
		t.Fatalf("got %d states, want 48 (contiguous, per the paper)", len(states))
	}
	seen := map[string]bool{}
	for _, s := range states {
		if seen[s.Name] {
			t.Errorf("duplicate state %q", s.Name)
		}
		seen[s.Name] = true
		if s.Name == "Alaska" || s.Name == "Hawaii" {
			t.Errorf("%s should be excluded like the paper's tables", s.Name)
		}
		if s.Lat < 24 || s.Lat > 50 || s.Lon > -66 || s.Lon < -125 {
			t.Errorf("%s centroid (%g,%g) outside the contiguous US", s.Name, s.Lat, s.Lon)
		}
		if s.Pop1955 <= 0 || s.Pop1965 <= 0 || s.Pop1975 <= 0 {
			t.Errorf("%s has nonpositive population", s.Name)
		}
	}
	// Populations should mostly grow over the periods nationally.
	var p55, p75 float64
	for _, s := range states {
		p55 += s.Pop1955
		p75 += s.Pop1975
	}
	if p75 <= p55 {
		t.Errorf("national population shrank: %g -> %g", p55, p75)
	}
}

func TestPopulationsForPeriod(t *testing.T) {
	for _, period := range []string{"5560", "6570", "7580", "bogus"} {
		pops := PopulationsForPeriod(period)
		if len(pops) != 48 {
			t.Fatalf("period %s: %d entries", period, len(pops))
		}
		for i, p := range pops {
			if p <= 0 {
				t.Errorf("period %s: state %d population %g", period, i, p)
			}
		}
	}
}

func TestSAMTransactionCounts(t *testing.T) {
	// The counts the paper's Table 3 reports.
	want := map[string]struct{ n, tx int }{
		"STONE": {5, 12},
		"TURK":  {8, 19},
		"SRI":   {6, 20},
	}
	for _, sam := range All() {
		w, ok := want[sam.Name]
		if !ok {
			t.Fatalf("unexpected SAM %q", sam.Name)
		}
		if sam.N() != w.n {
			t.Errorf("%s: %d accounts, want %d", sam.Name, sam.N(), w.n)
		}
		if got := sam.Transactions(); got != w.tx {
			t.Errorf("%s: %d transactions, want %d", sam.Name, got, w.tx)
		}
		if len(sam.X0) != w.n*w.n || len(sam.S0) != w.n {
			t.Errorf("%s: inconsistent array lengths", sam.Name)
		}
		for i, v := range sam.X0 {
			if v < 0 {
				t.Errorf("%s: negative transaction at %d", sam.Name, i)
			}
		}
		for i, v := range sam.S0 {
			if v <= 0 {
				t.Errorf("%s: account %d prior total %g", sam.Name, i, v)
			}
		}
		if len(sam.Accounts) != w.n {
			t.Errorf("%s: %d account names", sam.Name, len(sam.Accounts))
		}
	}
}

// TestSAMInconsistency: the embedded SAMs must be *unbalanced* as given
// (receipts ≠ expenditures for at least one account) — otherwise there would
// be nothing to estimate.
func TestSAMInconsistency(t *testing.T) {
	for _, sam := range All() {
		n := sam.N()
		unbalanced := false
		for i := 0; i < n; i++ {
			var row, col float64
			for j := 0; j < n; j++ {
				row += sam.X0[i*n+j]
				col += sam.X0[j*n+i]
			}
			if row != col {
				unbalanced = true
			}
		}
		if !unbalanced {
			t.Errorf("%s is already balanced; estimation would be trivial", sam.Name)
		}
	}
}
