// Package datasets embeds the small "real-like" datasets the experiment
// generators build on: the 48 contiguous U.S. states (the paper's migration
// tables drop Alaska, Hawaii and Washington, DC) with approximate centroids
// and historical populations for the gravity-model flow generator, and
// stylized miniature social accounting matrices with the transaction counts
// of the paper's Table 3.
//
// The paper's original inputs (Tobler's state-to-state migration tables,
// the Polenske input/output tables, the USDA and World Bank SAMs) are not
// redistributable; these embedded datasets and the generators in package
// problems reproduce their dimensions, sparsity and magnitude structure.
// See DESIGN.md, substitution 2.
package datasets

// State describes one contiguous U.S. state.
type State struct {
	Name string
	// Lat and Lon are the approximate geographic centroid in degrees.
	Lat, Lon float64
	// Pop1955, Pop1965, Pop1975 are approximate populations (thousands) at
	// the starts of the paper's three migration periods.
	Pop1955, Pop1965, Pop1975 float64
}

// States returns the 48 contiguous states in alphabetical order.
func States() []State {
	return []State{
		{"Alabama", 32.8, -86.8, 3100, 3450, 3650},
		{"Arizona", 34.3, -111.7, 1000, 1600, 2250},
		{"Arkansas", 34.8, -92.4, 1800, 1950, 2100},
		{"California", 37.2, -119.3, 13000, 18600, 21500},
		{"Colorado", 39.0, -105.5, 1500, 1950, 2550},
		{"Connecticut", 41.6, -72.7, 2200, 2850, 3100},
		{"Delaware", 39.0, -75.5, 390, 500, 580},
		{"Florida", 28.6, -82.4, 3600, 5900, 8400},
		{"Georgia", 32.6, -83.4, 3700, 4400, 5000},
		{"Idaho", 44.4, -114.6, 620, 690, 820},
		{"Illinois", 40.0, -89.2, 9300, 10650, 11200},
		{"Indiana", 39.9, -86.3, 4300, 4900, 5300},
		{"Iowa", 42.0, -93.5, 2700, 2750, 2870},
		{"Kansas", 38.5, -98.4, 2050, 2250, 2280},
		{"Kentucky", 37.5, -85.3, 3000, 3180, 3400},
		{"Louisiana", 31.1, -92.0, 2900, 3500, 3840},
		{"Maine", 45.4, -69.2, 930, 990, 1060},
		{"Maryland", 39.0, -76.8, 2700, 3500, 4100},
		{"Massachusetts", 42.3, -71.8, 4800, 5350, 5750},
		{"Michigan", 44.3, -85.4, 7200, 8300, 9100},
		{"Minnesota", 46.3, -94.3, 3200, 3550, 3920},
		{"Mississippi", 32.7, -89.7, 2150, 2250, 2350},
		{"Missouri", 38.4, -92.5, 4100, 4450, 4770},
		{"Montana", 47.0, -109.6, 620, 700, 750},
		{"Nebraska", 41.5, -99.8, 1380, 1450, 1540},
		{"Nevada", 39.3, -116.6, 230, 420, 590},
		{"New Hampshire", 43.7, -71.6, 560, 660, 810},
		{"New Jersey", 40.2, -74.7, 5300, 6700, 7330},
		{"New Mexico", 34.4, -106.1, 770, 1000, 1140},
		{"New York", 42.9, -75.5, 15700, 17900, 18100},
		{"North Carolina", 35.5, -79.4, 4300, 4900, 5450},
		{"North Dakota", 47.4, -100.5, 630, 650, 640},
		{"Ohio", 40.2, -82.7, 9000, 10200, 10700},
		{"Oklahoma", 35.6, -97.5, 2200, 2450, 2710},
		{"Oregon", 43.9, -120.6, 1700, 1950, 2280},
		{"Pennsylvania", 40.9, -77.8, 10900, 11500, 11800},
		{"Rhode Island", 41.7, -71.6, 830, 890, 930},
		{"South Carolina", 33.9, -80.9, 2250, 2500, 2850},
		{"South Dakota", 44.4, -100.2, 670, 680, 680},
		{"Tennessee", 35.8, -86.3, 3400, 3800, 4200},
		{"Texas", 31.5, -99.3, 8500, 10600, 12300},
		{"Utah", 39.3, -111.7, 780, 1000, 1230},
		{"Vermont", 44.1, -72.7, 370, 400, 470},
		{"Virginia", 37.5, -78.8, 3550, 4400, 5000},
		{"Washington", 47.4, -120.4, 2550, 3000, 3560},
		{"West Virginia", 38.6, -80.6, 1950, 1820, 1800},
		{"Wisconsin", 44.6, -89.7, 3700, 4150, 4570},
		{"Wyoming", 43.0, -107.5, 310, 330, 380},
	}
}

// PopulationsForPeriod returns the state populations at the start of a
// migration period ("5560", "6570" or "7580").
func PopulationsForPeriod(period string) []float64 {
	states := States()
	pops := make([]float64, len(states))
	for i, s := range states {
		switch period {
		case "5560":
			pops[i] = s.Pop1955
		case "6570":
			pops[i] = s.Pop1965
		case "7580":
			pops[i] = s.Pop1975
		default:
			pops[i] = s.Pop1965
		}
	}
	return pops
}
