// Package graphx provides the small graph substrate the paper's Modified
// Algorithm needs: union-find over the bipartite support graph of an
// iterate, whose connected components are the sets within which row and
// column multipliers may be shifted by a constant without changing the dual
// value (paper, end of Section 3.1).
package graphx

// UnionFind is a disjoint-set forest with union by rank and path
// compression.
type UnionFind struct {
	parent []int
	rank   []uint8
	count  int
}

// NewUnionFind returns a forest of n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int, n),
		rank:   make([]uint8, n),
		count:  n,
	}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the canonical representative of x's set.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets containing x and y and reports whether they were
// previously distinct.
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.count--
	return true
}

// Connected reports whether x and y are in the same set.
func (uf *UnionFind) Connected(x, y int) bool { return uf.Find(x) == uf.Find(y) }

// Count returns the number of disjoint sets.
func (uf *UnionFind) Count() int { return uf.count }

// Components returns a map from representative to the members of its set,
// in index order.
func (uf *UnionFind) Components() map[int][]int {
	out := make(map[int][]int)
	for i := range uf.parent {
		r := uf.Find(i)
		out[r] = append(out[r], i)
	}
	return out
}
