package graphx

import (
	"math/rand/v2"
	"testing"
)

func TestBasics(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Count() != 5 {
		t.Fatalf("Count = %d, want 5", uf.Count())
	}
	if !uf.Union(0, 1) {
		t.Error("Union(0,1) should merge")
	}
	if uf.Union(1, 0) {
		t.Error("repeat Union should report already merged")
	}
	if !uf.Connected(0, 1) {
		t.Error("0 and 1 should be connected")
	}
	if uf.Connected(0, 2) {
		t.Error("0 and 2 should not be connected")
	}
	uf.Union(2, 3)
	uf.Union(0, 3)
	if !uf.Connected(1, 2) {
		t.Error("transitive connection failed")
	}
	if uf.Count() != 2 {
		t.Errorf("Count = %d, want 2", uf.Count())
	}
}

func TestComponents(t *testing.T) {
	uf := NewUnionFind(6)
	uf.Union(0, 2)
	uf.Union(2, 4)
	uf.Union(1, 5)
	comps := uf.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	sizes := map[int]int{}
	for _, members := range comps {
		sizes[len(members)]++
	}
	if sizes[3] != 1 || sizes[2] != 1 || sizes[1] != 1 {
		t.Errorf("component sizes wrong: %v", comps)
	}
}

func TestRandomAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	n := 50
	uf := NewUnionFind(n)
	// Naive labels array.
	label := make([]int, n)
	for i := range label {
		label[i] = i
	}
	relabel := func(from, to int) {
		for i := range label {
			if label[i] == from {
				label[i] = to
			}
		}
	}
	for k := 0; k < 200; k++ {
		a, b := rng.IntN(n), rng.IntN(n)
		uf.Union(a, b)
		if label[a] != label[b] {
			relabel(label[a], label[b])
		}
		// Spot-check a random pair.
		x, y := rng.IntN(n), rng.IntN(n)
		if uf.Connected(x, y) != (label[x] == label[y]) {
			t.Fatalf("step %d: Connected(%d,%d) disagrees with naive", k, x, y)
		}
	}
	// Component count agreement.
	distinct := map[int]bool{}
	for _, l := range label {
		distinct[l] = true
	}
	if uf.Count() != len(distinct) {
		t.Errorf("Count = %d, naive says %d", uf.Count(), len(distinct))
	}
}
