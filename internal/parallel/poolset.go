package parallel

// PoolSet owns a fixed fleet of persistent Pools and checks them out to
// concurrent solves. A single Pool is driven by one goroutine at a time
// (ForChunks is not reentrant), so a serving layer that runs many solves at
// once cannot share one pool — but creating a pool per request would throw
// away the worker-reuse amortization the pool exists for. The set is the
// middle ground: count pools of procs workers each, created once, borrowed
// per solve, returned on completion.
//
// Get blocks until a pool is free, so a set sized to the admission-control
// in-flight limit never blocks in practice. All methods are safe for
// concurrent use; Close must be called once, after every borrowed pool has
// been returned.
type PoolSet struct {
	free  chan *Pool
	pools []*Pool
}

// NewPoolSet starts count pools of procs workers each (count and procs are
// treated as 1 when < 1).
func NewPoolSet(count, procs int) *PoolSet {
	if count < 1 {
		count = 1
	}
	s := &PoolSet{
		free:  make(chan *Pool, count),
		pools: make([]*Pool, count),
	}
	for i := range s.pools {
		s.pools[i] = NewPool(procs)
		s.free <- s.pools[i]
	}
	return s
}

// Get checks a pool out, blocking until one is free.
func (s *PoolSet) Get() *Pool { return <-s.free }

// TryGet checks a pool out without blocking; ok is false when all pools are
// borrowed.
func (s *PoolSet) TryGet() (p *Pool, ok bool) {
	select {
	case p = <-s.free:
		return p, true
	default:
		return nil, false
	}
}

// Put returns a borrowed pool to the set.
func (s *PoolSet) Put(p *Pool) { s.free <- p }

// Size returns the number of pools in the set.
func (s *PoolSet) Size() int { return len(s.pools) }

// Close shuts every pool down. All borrowed pools must have been returned.
func (s *PoolSet) Close() {
	for _, p := range s.pools {
		p.Close()
	}
	s.pools = nil
	// Drain the free list so a late Get cannot hand out a closed pool's
	// stale pointer more than once; closed pools degrade to serial anyway.
	for {
		select {
		case <-s.free:
		default:
			return
		}
	}
}
