package parallel

import (
	"sync/atomic"
	"testing"
)

func TestPoolCoversAllIndices(t *testing.T) {
	for _, p := range []int{0, 1, 2, 3, 7, 16} {
		pool := NewPool(p)
		for _, n := range []int{0, 1, 2, 5, 100} {
			seen := make([]atomic.Int32, n)
			pool.For(n, func(i int) { seen[i].Add(1) })
			for i := range seen {
				if got := seen[i].Load(); got != 1 {
					t.Errorf("p=%d n=%d: index %d visited %d times", p, n, i, got)
				}
			}
		}
		pool.Close()
	}
}

func TestPoolMatchesChunkBounds(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	for _, n := range []int{1, 3, 4, 17, 100} {
		var calls atomic.Int32
		pool.ForChunks(n, func(c, lo, hi int) {
			calls.Add(1)
			wantLo, wantHi := ChunkBounds(c, 4, n)
			if lo != wantLo || hi != wantHi {
				t.Errorf("n=%d chunk %d: got [%d,%d), want [%d,%d)", n, c, lo, hi, wantLo, wantHi)
			}
		})
		wantCalls := 4
		if n < 4 {
			wantCalls = n
		}
		if int(calls.Load()) != wantCalls {
			t.Errorf("n=%d: %d chunks ran, want %d", n, calls.Load(), wantCalls)
		}
	}
}

// TestPoolReuse drives many dispatches through one pool — the steady-state
// pattern of the solver's alternating phases.
func TestPoolReuse(t *testing.T) {
	pool := NewPool(3)
	defer pool.Close()
	n := 50
	acc := make([]int, n)
	for round := 0; round < 200; round++ {
		pool.For(n, func(i int) { acc[i]++ })
	}
	for i, v := range acc {
		if v != 200 {
			t.Fatalf("index %d accumulated %d, want 200", i, v)
		}
	}
}

// TestPoolMatchesSpawner asserts the pool and the goroutine-per-call path
// produce bit-identical outputs for every worker count — the scheduling-
// substrate half of the determinism contract (the solver-level half lives in
// internal/core).
func TestPoolMatchesSpawner(t *testing.T) {
	n := 512
	ref := make([]float64, n)
	Spawner{P: 1}.ForChunks(n, fill(ref))
	for _, p := range []int{1, 2, 7, 16} {
		spawned := make([]float64, n)
		Spawner{P: p}.ForChunks(n, fill(spawned))
		pooled := make([]float64, n)
		pool := NewPool(p)
		pool.ForChunks(n, fill(pooled))
		pool.Close()
		for i := range ref {
			if spawned[i] != ref[i] || pooled[i] != ref[i] {
				t.Fatalf("p=%d: results differ at %d", p, i)
			}
		}
	}
}

func fill(dst []float64) func(chunk, lo, hi int) {
	return func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = float64(i)*1.5 + 1
		}
	}
}

func TestPoolCloseDegradesToSerial(t *testing.T) {
	pool := NewPool(4)
	pool.Close()
	count := 0
	pool.ForChunks(10, func(c, lo, hi int) {
		if c != 0 || lo != 0 || hi != 10 {
			t.Errorf("closed pool chunk (%d, %d, %d), want (0, 0, 10)", c, lo, hi)
		}
		count++
	})
	if count != 1 {
		t.Errorf("closed pool ran %d chunks, want 1 serial chunk", count)
	}
}

// The dispatch-overhead pair: a tiny body makes scheduling cost dominate, so
// the gap between these two is the per-phase goroutine-creation tax the pool
// removes.
func BenchmarkDispatchSpawn(b *testing.B) {
	benchDispatch(b, Spawner{P: 8})
}

func BenchmarkDispatchPool(b *testing.B) {
	pool := NewPool(8)
	defer pool.Close()
	benchDispatch(b, pool)
}

func benchDispatch(b *testing.B, r Runner) {
	var sink atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.ForChunks(64, func(_, lo, hi int) {
			sink.Add(int64(hi - lo))
		})
	}
}
