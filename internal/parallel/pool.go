package parallel

import (
	"context"
	"sync"
)

// Runner abstracts the scheduling substrate behind a parallel phase. Both
// implementations honor the same contract as the package-level ForChunks:
// [0,n) is partitioned into min(Workers(), n) contiguous chunks via
// ChunkBounds and fn runs exactly once per chunk, so results are
// bit-identical for every Runner — only timing differs.
type Runner interface {
	// Workers returns the maximum parallelism, the p of ForChunks.
	Workers() int
	// ForChunks runs fn(chunk, lo, hi) over the partition of [0,n) and
	// blocks until every chunk completes.
	ForChunks(n int, fn func(chunk, lo, hi int))
	// ForChunksCtx is ForChunks with a cancellation gate: when ctx is
	// already done it dispatches nothing and returns ctx.Err(); otherwise
	// it runs the phase to completion and returns nil. Cancellation is
	// observed *between* phases, never inside one — a dispatched phase
	// always finishes, so the disjoint-partition determinism contract is
	// unaffected and no worker is ever abandoned mid-chunk.
	ForChunksCtx(ctx context.Context, n int, fn func(chunk, lo, hi int)) error
}

// forChunksCtx implements the shared ForChunksCtx contract on top of any
// Runner's ForChunks.
func forChunksCtx(ctx context.Context, r Runner, n int, fn func(chunk, lo, hi int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	r.ForChunks(n, fn)
	return nil
}

// Spawner is the Runner that launches fresh goroutines on every call — the
// original scheduling path, kept as the comparison baseline for the pool's
// dispatch-overhead benchmarks and the cross-path determinism tests.
type Spawner struct{ P int }

func (s Spawner) Workers() int {
	if s.P < 1 {
		return 1
	}
	return s.P
}

func (s Spawner) ForChunks(n int, fn func(chunk, lo, hi int)) {
	ForChunks(s.P, n, fn)
}

// ForChunksCtx implements the Runner cancellation gate for the Spawner.
func (s Spawner) ForChunksCtx(ctx context.Context, n int, fn func(chunk, lo, hi int)) error {
	return forChunksCtx(ctx, s, n, fn)
}

// Pool is a persistent worker pool: p−1 long-lived background workers plus
// the calling goroutine, so a phase dispatch costs p−1 channel sends instead
// of p goroutine creations. The equilibration phases of one solve run
// thousands of dispatches over the same workers, which is where the
// amortization pays (the paper's IBM 3090-600E analogue is tasks dispatched
// to already-attached processors, not processors attached per task).
//
// A Pool is meant to be driven by one goroutine at a time: ForChunks blocks
// until the phase completes, and concurrent ForChunks calls from different
// goroutines are not allowed. Close must be called once, after the last
// ForChunks, to release the workers; a closed Pool degrades to serial
// inline execution.
type Pool struct {
	procs int
	ch    []chan poolTask // one per background worker
	wg    sync.WaitGroup  // outstanding chunks of the current dispatch
}

// poolTask is one chunk descriptor handed to a background worker.
type poolTask struct {
	fn            func(chunk, lo, hi int)
	chunk, lo, hi int
}

// NewPool starts a pool with parallelism p (treated as 1 when p < 1). The
// pool spawns p−1 background workers; chunk 0 of every dispatch runs on the
// calling goroutine.
func NewPool(p int) *Pool {
	if p < 1 {
		p = 1
	}
	pool := &Pool{procs: p, ch: make([]chan poolTask, p-1)}
	for w := range pool.ch {
		// Buffer 1: each worker receives at most one task per dispatch, so
		// the dispatch loop never blocks behind a busy worker.
		ch := make(chan poolTask, 1)
		pool.ch[w] = ch
		go func() {
			for t := range ch {
				t.fn(t.chunk, t.lo, t.hi)
				pool.wg.Done()
			}
		}()
	}
	return pool
}

// Workers returns the pool's parallelism.
func (pool *Pool) Workers() int { return pool.procs }

// ForChunks partitions [0,n) exactly as the package-level ForChunks does for
// p = Workers() and runs fn on every chunk, blocking until all complete.
// Worker c always executes chunk c, so per-chunk scratch space (workspaces
// indexed by chunk) is never shared between OS threads within a dispatch.
func (pool *Pool) ForChunks(n int, fn func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	p := pool.procs
	if p > n {
		p = n
	}
	if p == 1 {
		fn(0, 0, n)
		return
	}
	pool.wg.Add(p - 1)
	for c := 1; c < p; c++ {
		pool.ch[c-1] <- poolTask{fn: fn, chunk: c, lo: c * n / p, hi: (c + 1) * n / p}
	}
	fn(0, 0, n/p) // chunk 0 on the caller
	pool.wg.Wait()
}

// ForChunksCtx implements the Runner cancellation gate for the Pool: a done
// context skips the dispatch entirely (no channel sends, no goroutine
// handoff) and surfaces ctx.Err(); the workers stay parked on their channels
// for the next phase or for Close.
func (pool *Pool) ForChunksCtx(ctx context.Context, n int, fn func(chunk, lo, hi int)) error {
	return forChunksCtx(ctx, pool, n, fn)
}

// For runs fn(i) for every i in [0,n) over the pool's partition.
func (pool *Pool) For(n int, fn func(i int)) {
	pool.ForChunks(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Close shuts the background workers down. It must not race with an active
// ForChunks call.
func (pool *Pool) Close() {
	for _, ch := range pool.ch {
		close(ch)
	}
	pool.ch = nil
	pool.procs = 1
}
