package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestPoolSetCheckoutBounds: the set never hands out more pools than it
// owns, and every borrowed pool schedules work correctly.
func TestPoolSetCheckoutBounds(t *testing.T) {
	const count, procs, loops = 3, 2, 50
	s := NewPoolSet(count, procs)
	defer s.Close()

	var borrowed, high atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < loops; i++ {
				p := s.Get()
				if b := borrowed.Add(1); b > int64(count) {
					t.Errorf("%d pools borrowed at once, set owns %d", b, count)
				} else {
					for {
						h := high.Load()
						if b <= h || high.CompareAndSwap(h, b) {
							break
						}
					}
				}
				var sum atomic.Int64
				p.ForChunks(100, func(_, lo, hi int) {
					for k := lo; k < hi; k++ {
						sum.Add(int64(k))
					}
				})
				if sum.Load() != 4950 {
					t.Errorf("borrowed pool computed %d, want 4950", sum.Load())
				}
				borrowed.Add(-1)
				s.Put(p)
			}
		}()
	}
	wg.Wait()
	if high.Load() == 0 {
		t.Fatal("no pool was ever borrowed")
	}
}

// TestPoolSetTryGet: TryGet fails fast when the set is exhausted and
// succeeds after a Put.
func TestPoolSetTryGet(t *testing.T) {
	s := NewPoolSet(1, 1)
	defer s.Close()
	p, ok := s.TryGet()
	if !ok {
		t.Fatal("TryGet failed on a full set")
	}
	if _, ok := s.TryGet(); ok {
		t.Fatal("TryGet succeeded on an exhausted set")
	}
	s.Put(p)
	if _, ok := s.TryGet(); !ok {
		t.Fatal("TryGet failed after Put")
	}
}

// TestPoolSetSizeClamp: degenerate sizes are clamped to one pool.
func TestPoolSetSizeClamp(t *testing.T) {
	s := NewPoolSet(0, 0)
	if s.Size() != 1 {
		t.Fatalf("Size() = %d, want 1", s.Size())
	}
	p := s.Get()
	ran := false
	p.ForChunks(1, func(_, lo, hi int) { ran = lo == 0 && hi == 1 })
	if !ran {
		t.Fatal("clamped pool did not run the chunk")
	}
	s.Put(p)
	s.Close()
}
