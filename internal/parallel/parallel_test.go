package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, p := range []int{0, 1, 2, 3, 7, 16} {
		for _, n := range []int{0, 1, 2, 5, 100} {
			seen := make([]atomic.Int32, n)
			For(p, n, func(i int) { seen[i].Add(1) })
			for i := range seen {
				if got := seen[i].Load(); got != 1 {
					t.Errorf("p=%d n=%d: index %d visited %d times", p, n, i, got)
				}
			}
		}
	}
}

func TestForChunksPartition(t *testing.T) {
	for _, p := range []int{1, 2, 3, 6} {
		n := 17
		covered := make([]bool, n)
		ForChunks(p, n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				if covered[i] {
					t.Errorf("p=%d: index %d covered twice", p, i)
				}
				covered[i] = true
			}
		})
		for i, c := range covered {
			if !c {
				t.Errorf("p=%d: index %d not covered", p, i)
			}
		}
	}
}

func TestForChunksChunkIDs(t *testing.T) {
	var ids [4]atomic.Int32
	ForChunks(4, 100, func(c, lo, hi int) {
		ids[c].Add(1)
		wantLo, wantHi := ChunkBounds(c, 4, 100)
		if lo != wantLo || hi != wantHi {
			t.Errorf("chunk %d: got [%d,%d), want [%d,%d)", c, lo, hi, wantLo, wantHi)
		}
	})
	for c := range ids {
		if ids[c].Load() != 1 {
			t.Errorf("chunk %d ran %d times", c, ids[c].Load())
		}
	}
}

func TestChunkBoundsClamp(t *testing.T) {
	// More workers than items: each worker gets at most one item, extras get
	// an empty range.
	lo, hi := ChunkBounds(5, 10, 3)
	if lo != hi {
		t.Errorf("out-of-range chunk got non-empty range [%d,%d)", lo, hi)
	}
	lo, hi = ChunkBounds(0, 0, 5)
	if lo != 0 || hi != 5 {
		t.Errorf("p=0 should behave as p=1: [%d,%d)", lo, hi)
	}
}

func TestDeterministicResults(t *testing.T) {
	n := 1000
	ref := make([]float64, n)
	For(1, n, func(i int) { ref[i] = float64(i * i) })
	for _, p := range []int{2, 4, 8} {
		out := make([]float64, n)
		For(p, n, func(i int) { out[i] = float64(i * i) })
		for i := range out {
			if out[i] != ref[i] {
				t.Fatalf("p=%d: result differs at %d", p, i)
			}
		}
	}
}

func TestZeroItems(t *testing.T) {
	called := false
	ForChunks(4, 0, func(_, _, _ int) { called = true })
	if called {
		t.Error("callback invoked for n=0")
	}
}
