// Package parallel provides the shared-memory task-allocation substrate for
// the row and column equilibration phases: a chunked parallel-for over
// independent subproblems, the Go analogue of the paper's Parallel FORTRAN
// task constructs on the IBM 3090-600E.
//
// All scheduling here is deterministic in its *results*: workers write only
// to disjoint index ranges, so the output is bit-identical for any worker
// count. Only timing varies with P.
package parallel

import "sync"

// ForChunks partitions [0,n) into p contiguous chunks of near-equal size and
// runs fn(chunk, lo, hi) for each, concurrently when p > 1. chunk identifies
// the worker (0..p-1), useful for per-worker scratch space. It blocks until
// all chunks complete. p < 1 is treated as 1; p > n is clamped to n.
func ForChunks(p, n int, fn func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	if p == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for c := 0; c < p; c++ {
		lo := c * n / p
		hi := (c + 1) * n / p
		go func(c, lo, hi int) {
			defer wg.Done()
			fn(c, lo, hi)
		}(c, lo, hi)
	}
	wg.Wait()
}

// For runs fn(i) for every i in [0,n) using p workers with contiguous
// chunking. fn must be safe to call concurrently for distinct i.
func For(p, n int, fn func(i int)) {
	ForChunks(p, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ChunkBounds returns the [lo,hi) range worker c of p handles over [0,n),
// matching the partition used by ForChunks.
func ChunkBounds(c, p, n int) (lo, hi int) {
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	if c >= p {
		return n, n
	}
	return c * n / p, (c + 1) * n / p
}
