package scale

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randCSR builds an m×n banded support with deterministic positive values,
// returning both the CSR view and its densified twin (zeros off support).
func randCSR(t *testing.T, m, n, band int, seed int64) (csr Matrix, dense Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rowPtr := make([]int, m+1)
	var colIdx []int32
	var val []float64
	dval := make([]float64, m*n)
	for i := 0; i < m; i++ {
		rowPtr[i] = len(colIdx)
		for b := 0; b < band; b++ {
			j := (i + b*7) % n
			// Keep column indices strictly ascending per row.
			if len(colIdx) > rowPtr[i] && int32(j) <= colIdx[len(colIdx)-1] {
				continue
			}
			x := 0.1 + 10*rng.Float64()
			colIdx = append(colIdx, int32(j))
			val = append(val, x)
			dval[i*n+j] = x
		}
	}
	rowPtr[m] = len(colIdx)
	return CSR(m, n, val, rowPtr, colIdx), Dense(m, n, dval)
}

func TestSinkhornBalancesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, n := 17, 23
	val := make([]float64, m*n)
	for k := range val {
		val[k] = 0.5 + rng.Float64()
	}
	a := Dense(m, n, val)
	r := make([]float64, m)
	c := make([]float64, n)
	// Consistent targets: Σr = Σc by construction.
	for i := range r {
		r[i] = 1 + float64(i)
	}
	var total float64
	for _, x := range r {
		total += x
	}
	for j := range c {
		c[j] = total / float64(n)
	}
	u, v, res, err := Sinkhorn(a, r, c, nil, nil, SinkhornOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	// Verify the scaled row/column sums directly.
	for i := 0; i < m; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += u[i] * val[i*n+j] * v[j]
		}
		if math.Abs(s-r[i]) > 1e-9*r[i] {
			t.Fatalf("row %d: sum %g want %g", i, s, r[i])
		}
	}
	for j := 0; j < n; j++ {
		var s float64
		for i := 0; i < m; i++ {
			s += u[i] * val[i*n+j] * v[j]
		}
		if math.Abs(s-c[j]) > 1e-9*c[j] {
			t.Fatalf("col %d: sum %g want %g", j, s, c[j])
		}
	}
}

// A rank-one matrix balances exactly in one sweep — the Nathanson
// finite-termination case the detector must flag.
func TestSinkhornExactTermination(t *testing.T) {
	m, n := 6, 9
	val := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			val[i*n+j] = float64(i+1) * float64(j+2)
		}
	}
	r := make([]float64, m)
	c := make([]float64, n)
	for i := range r {
		r[i] = float64(n)
	}
	for j := range c {
		c[j] = float64(m)
	}
	_, _, res, err := Sinkhorn(Dense(m, n, val), r, c, nil, nil, SinkhornOptions{Tol: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatalf("rank-one prior should terminate exactly, got %+v", res)
	}
	if res.ExactIteration > 2 {
		t.Fatalf("exact termination took %d sweeps, want ≤ 2", res.ExactIteration)
	}
}

func TestSinkhornZeroRowColumn(t *testing.T) {
	// Row 1 is entirely zero. Target 0 is fine; positive target is
	// structurally infeasible.
	val := []float64{1, 2, 0, 0, 3, 4}
	a := Dense(3, 2, val)
	r := []float64{3, 0, 7}
	c := []float64{4, 6}
	if _, _, _, err := Sinkhorn(a, r, c, nil, nil, SinkhornOptions{}); err != nil {
		t.Fatalf("zero row with zero target: %v", err)
	}
	r[1] = 5
	if _, _, _, err := Sinkhorn(a, r, c, nil, nil, SinkhornOptions{}); !errors.Is(err, ErrStructure) {
		t.Fatalf("want ErrStructure, got %v", err)
	}
	// Zero column, positive target.
	val2 := []float64{1, 0, 2, 0}
	if _, _, _, err := Sinkhorn(Dense(2, 2, val2), []float64{1, 2}, []float64{3, 1}, nil, nil, SinkhornOptions{}); !errors.Is(err, ErrStructure) {
		t.Fatalf("want ErrStructure for zero column, got %v", err)
	}
}

func TestValidateRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		a := Dense(2, 2, []float64{1, bad, 2, 3})
		if err := a.Validate(); !errors.Is(err, ErrNotFinite) {
			t.Fatalf("Validate(%v) = %v, want ErrNotFinite", bad, err)
		}
		if _, _, _, err := Sinkhorn(a, []float64{1, 1}, []float64{1, 1}, nil, nil, SinkhornOptions{}); !errors.Is(err, ErrNotFinite) {
			t.Fatalf("Sinkhorn(%v) = %v, want ErrNotFinite", bad, err)
		}
		sys := &System{A: Dense(2, 2, []float64{1, 1, 1, 1}), X0: []float64{1, bad, 1, 1},
			RowTarget: []float64{1, 1}, ColTarget: []float64{1, 1}}
		if err := sys.Validate(); !errors.Is(err, ErrNotFinite) {
			t.Fatalf("System.Validate(%v) = %v, want ErrNotFinite", bad, err)
		}
	}
	if _, _, _, err := Sinkhorn(Dense(1, 1, []float64{1}), []float64{math.Inf(1)}, []float64{1}, nil, nil, SinkhornOptions{}); !errors.Is(err, ErrNotFinite) {
		t.Fatalf("non-finite target accepted: %v", err)
	}
}

// The procedures must treat a CSR matrix and its densified twin
// identically, bit for bit: the dense zeros contribute exact float zeros
// to every accumulation, in the same left-to-right order.
func TestCSRMatchesDenseBitwise(t *testing.T) {
	csr, dense := randCSR(t, 40, 31, 5, 7)
	r := make([]float64, 40)
	c := make([]float64, 31)
	csr.RowSums(r)
	rs2 := make([]float64, 40)
	dense.RowSums(rs2)
	for i := range r {
		if r[i] != rs2[i] {
			t.Fatalf("RowSums diverge at %d: %v vs %v", i, r[i], rs2[i])
		}
	}
	// Consistent positive targets from the support's own sums.
	csr.ColSums(c)
	u1, v1, res1, err := Sinkhorn(csr, r, c, nil, nil, SinkhornOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	u2, v2, res2, err := Sinkhorn(dense, r, c, nil, nil, SinkhornOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Iterations != res2.Iterations || res1.Residual != res2.Residual {
		t.Fatalf("results diverge: %+v vs %+v", res1, res2)
	}
	for i := range u1 {
		if u1[i] != u2[i] {
			t.Fatalf("u[%d]: %v vs %v", i, u1[i], u2[i])
		}
	}
	for j := range v1 {
		if v1[j] != v2[j] {
			t.Fatalf("v[%d]: %v vs %v", j, v1[j], v2[j])
		}
	}
	// MaxNorm equally.
	mu1, mv1, err := MaxNorm(csr, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	mu2, mv2, err := MaxNorm(dense, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mu1 {
		if mu1[i] != mu2[i] {
			t.Fatalf("maxnorm u[%d]: %v vs %v", i, mu1[i], mu2[i])
		}
	}
	for j := range mv1 {
		if mv1[j] != mv2[j] {
			t.Fatalf("maxnorm v[%d]: %v vs %v", j, mv1[j], mv2[j])
		}
	}
}

// ISP on an unbounded system is exact block Gauss–Seidel on a linear
// system: it must converge to the KKT point, and the implied primal must
// satisfy both constraint families.
func TestISPUnboundedConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, n := 12, 15
	a := make([]float64, m*n)
	x0 := make([]float64, m*n)
	for k := range a {
		a[k] = 0.2 + rng.Float64()
		x0[k] = -5 + 10*rng.Float64()
	}
	r := make([]float64, m)
	c := make([]float64, n)
	var total float64
	for i := range r {
		r[i] = 10 + float64(i)
		total += r[i]
	}
	for j := range c {
		c[j] = total / float64(n)
	}
	lo := make([]float64, m*n)
	for k := range lo {
		lo[k] = math.Inf(-1) // unbounded below: no clamping anywhere
	}
	sys := &System{A: Dense(m, n, a), X0: x0, Lo: lo, RowTarget: r, ColTarget: c}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	lambda := make([]float64, m)
	mu := make([]float64, n)
	res := sys.Run(lambda, mu, 500, 1e-11, nil, nil, nil)
	if !res.Converged {
		t.Fatalf("unbounded ISP did not converge: %+v", res)
	}
	x := make([]float64, m*n)
	if worst := sys.Eval(lambda, mu, x, nil, nil); worst > 1e-9 {
		t.Fatalf("final equation violation %g", worst)
	}
}

// Clamped ISP with elastic totals: the fixed point satisfies the KKT
// system including complementary slackness at the active bounds.
func TestISPClampedElastic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, n := 10, 10
	a := make([]float64, m*n)
	x0 := make([]float64, m*n)
	for k := range a {
		a[k] = 0.5 + rng.Float64()
		x0[k] = -2 + 3*rng.Float64() // many negative priors → active x ≥ 0
	}
	r := make([]float64, m)
	c := make([]float64, n)
	e := make([]float64, m)
	f := make([]float64, n)
	for i := range r {
		r[i] = 5 + float64(i)
		e[i] = 0.3
	}
	for j := range c {
		c[j] = 6 + float64(j)
		f[j] = 0.4
	}
	sys := &System{A: Dense(m, n, a), X0: x0, RowTarget: r, ColTarget: c, RowDiag: e, ColDiag: f}
	lambda := make([]float64, m)
	mu := make([]float64, n)
	res := sys.Run(lambda, mu, 2000, 1e-10, nil, nil, nil)
	if !res.Converged {
		t.Fatalf("clamped elastic ISP did not converge: %+v", res)
	}
	x := make([]float64, m*n)
	if worst := sys.Eval(lambda, mu, x, nil, nil); worst > 1e-8 {
		t.Fatalf("final equation violation %g", worst)
	}
	// Spot-check clamping actually engaged (otherwise the test is vacuous).
	zeros := 0
	for _, v := range x {
		if v == 0 {
			zeros++
		}
	}
	if zeros == 0 {
		t.Fatal("expected some entries clamped at zero")
	}
}

func TestISPObserverAndSweepCap(t *testing.T) {
	sys := &System{
		A: Dense(2, 2, []float64{1, 1, 1, 1}), X0: []float64{0, 0, 0, 0},
		RowTarget: []float64{1, 1}, ColTarget: []float64{1, 1},
	}
	var iters []int
	res := sys.Run(make([]float64, 2), make([]float64, 2), 3, 0, nil, nil, func(t int, r float64) {
		iters = append(iters, t)
	})
	if res.Iterations != 3 || len(iters) != 3 {
		t.Fatalf("sweep cap not honored: %+v observed %v", res, iters)
	}
}

func TestMaxNormEquilibrates(t *testing.T) {
	// Extreme dynamic range: row scales 1e-8 … 1e8.
	rng := rand.New(rand.NewSource(5))
	m, n := 9, 11
	val := make([]float64, m*n)
	for i := 0; i < m; i++ {
		rs := math.Pow(10, float64(i*2-8))
		for j := 0; j < n; j++ {
			val[i*n+j] = rs * (0.5 + rng.Float64())
		}
	}
	u, v, err := MaxNorm(Dense(m, n, val), nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		var mx float64
		for j := 0; j < n; j++ {
			if x := math.Abs(u[i] * val[i*n+j] * v[j]); x > mx {
				mx = x
			}
		}
		if mx < 0.25 || mx > 4 {
			t.Fatalf("row %d max-norm %g after equilibration, want within [0.25, 4]", i, mx)
		}
	}
	// Power-of-two factors: mantissa must be exactly 0.5 (Frexp convention).
	for _, f := range append(append([]float64{}, u...), v...) {
		if frac, _ := math.Frexp(f); frac != 0.5 {
			t.Fatalf("factor %g is not a power of two", f)
		}
	}
}

func TestPow2Near(t *testing.T) {
	cases := map[float64]float64{
		1: 1, 2: 2, 3: 4, 1.4: 1, 1.5: 2, 0.75: 1, 0.70: 0.5,
		1024: 1024, 0: 1, math.Inf(1): 1, math.NaN(): 1, -3: 1,
	}
	for in, want := range cases {
		if got := Pow2Near(in); got != want {
			t.Fatalf("Pow2Near(%v) = %v, want %v", in, got, want)
		}
	}
}
