// Package scale implements diagonal matrix-scaling procedures over dense
// and CSR storage: Sinkhorn–Knopp biproportional balancing, the additive
// iterative scaling procedure (ISP) on the dual of the diagonal quadratic
// constrained matrix problem, and a Ruiz-style max-norm (∞-norm)
// equilibration with power-of-two factors.
//
// The package is the computational substrate of two consumers:
//
//   - the core solver's Options.Precondition stage, which uses ISP (or a
//     Sinkhorn-derived heuristic) to warm-start the SEA dual before the
//     expensive equilibration sweeps begin; and
//   - the "sinkhorn" and "isp" registry solvers in pkg/sea, which run the
//     procedures to convergence as solvers in their own right, next to the
//     dense-only "ras" baseline.
//
// scale deliberately sits below internal/core in the layering (core imports
// scale, never the reverse), so everything here speaks plain slices plus an
// optional CSR skeleton.
package scale

import (
	"errors"
	"fmt"
	"math"
)

// ErrStructure is returned when a scaling procedure cannot possibly reach
// its targets because of the support's zero structure — a zero row or
// column with a positive target total (the infeasible-RAS situation of
// Mohr, Crown and Polenske).
var ErrStructure = errors.New("scale: zero row/column in support with positive target")

// ErrNotFinite is returned when matrix or target data contains NaN or ±Inf
// entries. Callers in pkg/sea wrap it in ErrInvalidProblem.
var ErrNotFinite = errors.New("scale: non-finite entry")

// Matrix is a read-only view of an m×n array in dense row-major or CSR
// storage. A nil RowPtr means dense: Val has length M·N and cell (i,j) is
// Val[i·N+j]. With RowPtr/ColIdx set, Val has length Nnz and row i occupies
// Val[RowPtr[i]:RowPtr[i+1]], with ColIdx giving each stored position's
// column. The view never owns or mutates its slices.
type Matrix struct {
	M, N   int
	Val    []float64
	RowPtr []int
	ColIdx []int32
}

// Dense wraps a dense row-major array.
func Dense(m, n int, val []float64) Matrix { return Matrix{M: m, N: n, Val: val} }

// CSR wraps a CSR array with the given skeleton.
func CSR(m, n int, val []float64, rowPtr []int, colIdx []int32) Matrix {
	return Matrix{M: m, N: n, Val: val, RowPtr: rowPtr, ColIdx: colIdx}
}

// Nnz returns the stored-cell count.
func (a Matrix) Nnz() int {
	if a.RowPtr != nil {
		return a.RowPtr[a.M]
	}
	return a.M * a.N
}

// Row returns row i's index span into Val.
func (a Matrix) Row(i int) (lo, hi int) {
	if a.RowPtr != nil {
		return a.RowPtr[i], a.RowPtr[i+1]
	}
	return i * a.N, (i + 1) * a.N
}

// Col returns the column of stored position k within row i's span.
func (a Matrix) Col(i, k int) int {
	if a.ColIdx != nil {
		return int(a.ColIdx[k])
	}
	return k - i*a.N
}

// Validate checks the view's structural consistency and rejects non-finite
// entries. The CSR skeleton itself is assumed already validated by the
// owner (core.Pattern.Validate); only lengths are rechecked here.
func (a Matrix) Validate() error {
	if a.M <= 0 || a.N <= 0 {
		return fmt.Errorf("scale: invalid dimensions %d×%d", a.M, a.N)
	}
	if a.RowPtr != nil {
		if len(a.RowPtr) != a.M+1 {
			return fmt.Errorf("scale: len(RowPtr) = %d, want %d", len(a.RowPtr), a.M+1)
		}
		if len(a.ColIdx) != a.RowPtr[a.M] {
			return fmt.Errorf("scale: len(ColIdx) = %d, want %d", len(a.ColIdx), a.RowPtr[a.M])
		}
	}
	if want := a.Nnz(); len(a.Val) != want {
		return fmt.Errorf("scale: len(Val) = %d, want %d", len(a.Val), want)
	}
	for k, v := range a.Val {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: Val[%d] = %v", ErrNotFinite, k, v)
		}
	}
	return nil
}

// RowSums accumulates Σ_j a_ij into dst (length M).
func (a Matrix) RowSums(dst []float64) {
	for i := 0; i < a.M; i++ {
		lo, hi := a.Row(i)
		var s float64
		for k := lo; k < hi; k++ {
			s += a.Val[k]
		}
		dst[i] = s
	}
}

// ColSums accumulates Σ_i a_ij into dst (length N).
func (a Matrix) ColSums(dst []float64) {
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < a.M; i++ {
		lo, hi := a.Row(i)
		for k := lo; k < hi; k++ {
			dst[a.Col(i, k)] += a.Val[k]
		}
	}
}

// Result reports a scaling procedure's outcome.
type Result struct {
	// Iterations is the number of full row+column sweeps performed.
	Iterations int
	// Residual is the final convergence measure (procedure-specific; see
	// Sinkhorn and System.Run).
	Residual float64
	// Converged reports whether Residual reached the tolerance.
	Converged bool
	// Exact reports Nathanson-style finite termination: the residual hit
	// exactly zero in floating point, so every later sweep is the identity
	// and the limit was attained in finitely many iterations (rank-one
	// priors and block-separable supports terminate this way).
	Exact bool
	// ExactIteration is the sweep on which Exact was detected (0 if not).
	ExactIteration int
}

// Pow2Near returns the power of two nearest to x in log scale (the exact
// scaling factors used by the preconditioning stage: multiplying or
// dividing by the result is exact in floating point, barring overflow and
// subnormal underflow). Non-positive and non-finite inputs return 1.
func Pow2Near(x float64) float64 {
	if !(x > 0) || math.IsInf(x, 1) {
		return 1
	}
	frac, exp := math.Frexp(x) // x = frac·2^exp, frac ∈ [0.5, 1)
	if frac > 0.70710678118654752440 {
		exp++ // closer (geometrically) to 2^exp than to 2^(exp−1)
	}
	return math.Ldexp(1, exp-1)
}
