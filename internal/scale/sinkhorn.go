package scale

import (
	"fmt"
	"math"
)

// SinkhornOptions parameterizes a Sinkhorn run. The zero value selects the
// documented defaults.
type SinkhornOptions struct {
	// Tol is the convergence tolerance on the relative row-total residual
	// (column totals hold exactly after each column step). Default 1e-8.
	Tol float64
	// MaxIters caps the number of full row+column sweeps. Default 1000.
	MaxIters int
	// Observe, when non-nil, receives every sweep's index and residual —
	// the hook the registry solver uses to forward per-sweep progress to
	// the trace.Observer machinery.
	Observe func(iter int, residual float64)
	// Warm keeps the incoming u and v as the starting factors instead of
	// resetting them to 1, so a caller can run the iteration in chunks
	// without losing progress.
	Warm bool
	// Stop, when non-nil, is polled after every sweep; returning true
	// aborts the iteration with the current factors and a non-converged
	// Result (how the registry solver threads context cancellation into
	// the loop).
	Stop func() bool
}

func (o SinkhornOptions) withDefaults() SinkhornOptions {
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 1000
	}
	return o
}

// Sinkhorn computes positive diagonal factors u (length m) and v (length n)
// such that diag(u)·A·diag(v) has row sums r and column sums c — the
// Sinkhorn–Knopp / biproportional balancing iteration, over dense or CSR
// storage. A must be elementwise nonnegative and the targets nonnegative
// with Σr = Σc for exact convergence (the iteration still runs and reports
// its residual otherwise, as in regularized-Sinkhorn preconditioning use).
//
// u and v supply the factor storage (reused across calls for pooling);
// either may be nil to allocate. Rows and columns with an all-zero support
// get factor 1 when their target is zero and ErrStructure when it is
// positive — scaling cannot move mass into structural zeros.
//
// The residual is max_i |u_i·Σ_j a_ij v_j − r_i| / max(r_i, 1), measured
// after the column step of each sweep. A residual of exactly zero triggers
// Nathanson-style finite-termination detection (Result.Exact): the sweep
// map has reached a fixed point in floating point and every further sweep
// is the identity.
func Sinkhorn(a Matrix, r, c []float64, u, v []float64, opts SinkhornOptions) ([]float64, []float64, Result, error) {
	o := opts.withDefaults()
	var res Result
	if err := a.Validate(); err != nil {
		return u, v, res, err
	}
	if len(r) != a.M || len(c) != a.N {
		return u, v, res, fmt.Errorf("scale: targets are %d/%d, want %d/%d", len(r), len(c), a.M, a.N)
	}
	for i, t := range r {
		if math.IsNaN(t) || math.IsInf(t, 0) || t < 0 {
			return u, v, res, fmt.Errorf("%w: row target %d = %v", ErrNotFinite, i, t)
		}
	}
	for j, t := range c {
		if math.IsNaN(t) || math.IsInf(t, 0) || t < 0 {
			return u, v, res, fmt.Errorf("%w: column target %d = %v", ErrNotFinite, j, t)
		}
	}
	for k, x := range a.Val {
		if x < 0 {
			return u, v, res, fmt.Errorf("scale: negative entry Val[%d] = %g (Sinkhorn needs a nonnegative matrix)", k, x)
		}
	}
	warm := o.Warm && len(u) == a.M && len(v) == a.N
	u = resize(u, a.M)
	v = resize(v, a.N)
	if !warm {
		for i := range u {
			u[i] = 1
		}
		for j := range v {
			v[j] = 1
		}
	}

	// Structural feasibility: a zero row/column of the support cannot meet a
	// positive target by scaling.
	rowSum := make([]float64, a.M)
	colSum := make([]float64, a.N)
	a.RowSums(rowSum)
	a.ColSums(colSum)
	for i, s := range rowSum {
		if s == 0 && r[i] > 0 {
			return u, v, res, fmt.Errorf("%w (row %d)", ErrStructure, i)
		}
	}
	for j, s := range colSum {
		if s == 0 && c[j] > 0 {
			return u, v, res, fmt.Errorf("%w (column %d)", ErrStructure, j)
		}
	}

	for t := 1; t <= o.MaxIters; t++ {
		res.Iterations = t
		// Row step: u_i ← r_i / Σ_j a_ij v_j.
		for i := 0; i < a.M; i++ {
			lo, hi := a.Row(i)
			var s float64
			for k := lo; k < hi; k++ {
				s += a.Val[k] * v[a.Col(i, k)]
			}
			if s > 0 {
				u[i] = r[i] / s
			}
		}
		// Column step: v_j ← c_j / Σ_i u_i a_ij, accumulated row-major.
		for j := range colSum {
			colSum[j] = 0
		}
		for i := 0; i < a.M; i++ {
			lo, hi := a.Row(i)
			for k := lo; k < hi; k++ {
				colSum[a.Col(i, k)] += u[i] * a.Val[k]
			}
		}
		for j := 0; j < a.N; j++ {
			if colSum[j] > 0 {
				v[j] = c[j] / colSum[j]
			}
		}
		// Row residual at the new factors (columns are exact by
		// construction after the column step).
		var worst float64
		for i := 0; i < a.M; i++ {
			lo, hi := a.Row(i)
			var s float64
			for k := lo; k < hi; k++ {
				s += a.Val[k] * v[a.Col(i, k)]
			}
			d := math.Abs(u[i]*s - r[i])
			if r[i] > 1 {
				d /= r[i]
			}
			if d > worst {
				worst = d
			}
		}
		res.Residual = worst
		if o.Observe != nil {
			o.Observe(t, worst)
		}
		if worst == 0 && !res.Exact {
			res.Exact = true
			res.ExactIteration = t
		}
		if worst <= o.Tol {
			res.Converged = true
			return u, v, res, nil
		}
		if o.Stop != nil && o.Stop() {
			return u, v, res, nil
		}
	}
	return u, v, res, nil
}

// resize returns buf with length n, reallocating only when capacity is
// short.
func resize(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}
