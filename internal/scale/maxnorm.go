package scale

import "math"

// MaxNorm computes Ruiz-style ∞-norm equilibration factors u (length M)
// and v (length N) such that every row and column of diag(u)·|A|·diag(v)
// has maximum absolute entry near 1. Each pass divides the running factors
// by the square root of the current row/column max-norms; iters passes
// (≤ 0 selects the customary 10) converge geometrically.
//
// Every factor is rounded to the nearest power of two (Pow2Near), so
// applying and removing the scaling is exact in floating point — the
// property the preconditioning stage's bit-for-bit unscaling contract
// rests on. Zero rows and columns keep factor 1.
//
// u and v supply the factor storage (nil to allocate); the scaled matrix
// is never materialized — callers combine the factors with their own data.
func MaxNorm(a Matrix, u, v []float64, iters int) ([]float64, []float64, error) {
	if err := a.Validate(); err != nil {
		return u, v, err
	}
	if iters <= 0 {
		iters = 10
	}
	u = resize(u, a.M)
	v = resize(v, a.N)
	for i := range u {
		u[i] = 1
	}
	for j := range v {
		v[j] = 1
	}
	colMax := make([]float64, a.N)
	for t := 0; t < iters; t++ {
		// Row pass: u_i ← u_i / pow2(√(max_j |u_i a_ij v_j|)).
		for i := 0; i < a.M; i++ {
			lo, hi := a.Row(i)
			var mx float64
			for k := lo; k < hi; k++ {
				if x := math.Abs(u[i] * a.Val[k] * v[a.Col(i, k)]); x > mx {
					mx = x
				}
			}
			if mx > 0 {
				u[i] /= Pow2Near(math.Sqrt(mx))
			}
		}
		// Column pass, accumulated row-major.
		for j := range colMax {
			colMax[j] = 0
		}
		for i := 0; i < a.M; i++ {
			lo, hi := a.Row(i)
			for k := lo; k < hi; k++ {
				j := a.Col(i, k)
				if x := math.Abs(u[i] * a.Val[k] * v[j]); x > colMax[j] {
					colMax[j] = x
				}
			}
		}
		for j := 0; j < a.N; j++ {
			if colMax[j] > 0 {
				v[j] /= Pow2Near(math.Sqrt(colMax[j]))
			}
		}
	}
	return u, v, nil
}
