package scale

import (
	"fmt"
	"math"
)

// System is the additive dual-scaling view of a diagonal quadratic
// constrained matrix problem:
//
//	x_ij(λ,μ) = clamp(x⁰_ij + a_ij·(λ_i + μ_j), l_ij, u_ij)
//	row i:    Σ_j x_ij = R_i − e_i·λ_i        (e_i = 0: fixed total)
//	column j: Σ_i x_ij = C_j − f_j·μ_j        (f_j = 0: fixed total)
//
// where a_ij = 1/(2γ_ij) are the dual slopes. This is exactly the KKT
// system SEA ascends; the iterative scaling procedure (ISP) here is the
// cheap additive analogue of a SEA iteration — a linearized, clamped
// Gauss–Seidel sweep over (λ, μ) with no sorting, O(nnz) per sweep. A
// fixed point of the sweep satisfies the full KKT system (the clamp IS
// complementary slackness), so ISP doubles as an exact solver for
// unbounded problems and as the dual warm start for bounded ones.
//
// For Balanced (SAM) problems set Coupled: row i and column i then share
// the total R_i with the coupling term e_i·(λ_i + μ_i) on both sides.
type System struct {
	// A is the slope matrix a_ij = 1/(2γ_ij), strictly positive on the
	// support; its storage (dense or CSR) fixes the layout of X0/Lo/Up.
	A Matrix
	// X0 is the prior, in A's storage order.
	X0 []float64
	// Lo and Up are the box bounds in storage order; nil means the
	// classical constraint set (lower 0, upper +∞).
	Lo, Up []float64
	// RowTarget and ColTarget are R_i and C_j.
	RowTarget, ColTarget []float64
	// RowDiag and ColDiag are the elastic diagonal terms e_i = 1/(2α_i),
	// f_j = 1/(2β_j); nil means fixed totals on that side.
	RowDiag, ColDiag []float64
	// Coupled marks the Balanced kind: m = n, ColTarget/ColDiag are
	// ignored in favour of RowTarget/RowDiag, and the elastic term reads
	// e_i·(λ_i + μ_i) on both the row and column equations.
	Coupled bool

	// Per-column Newton brackets, lazily sized scratch for the column
	// half-sweep (see Run).
	colLo, colHi []float64

	// Relaxed/exact escalation state (see Run). It persists across Run
	// calls like the duals do, so chunked runs behave exactly like one
	// long run.
	runInit  bool
	runExact bool
	lastRes  float64
	winBest  float64
	prevWin  float64
	winCount int
}

// Validate checks the system's dimensions and entry ranges.
func (s *System) Validate() error {
	if err := s.A.Validate(); err != nil {
		return err
	}
	nv := s.A.Nnz()
	if len(s.X0) != nv {
		return fmt.Errorf("scale: len(X0) = %d, want %d", len(s.X0), nv)
	}
	for k, v := range s.X0 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: X0[%d] = %v", ErrNotFinite, k, v)
		}
	}
	for k, v := range s.A.Val {
		if !(v > 0) {
			return fmt.Errorf("scale: slope A[%d] = %g, want positive", k, v)
		}
	}
	if len(s.RowTarget) != s.A.M {
		return fmt.Errorf("scale: len(RowTarget) = %d, want %d", len(s.RowTarget), s.A.M)
	}
	if s.Coupled {
		if s.A.M != s.A.N {
			return fmt.Errorf("scale: coupled system must be square, got %d×%d", s.A.M, s.A.N)
		}
		if s.RowDiag == nil {
			return fmt.Errorf("scale: coupled system requires RowDiag (the shared elastic term)")
		}
	} else if len(s.ColTarget) != s.A.N {
		return fmt.Errorf("scale: len(ColTarget) = %d, want %d", len(s.ColTarget), s.A.N)
	}
	if s.RowDiag != nil && len(s.RowDiag) != s.A.M {
		return fmt.Errorf("scale: len(RowDiag) = %d, want %d", len(s.RowDiag), s.A.M)
	}
	if s.ColDiag != nil && len(s.ColDiag) != s.A.N {
		return fmt.Errorf("scale: len(ColDiag) = %d, want %d", len(s.ColDiag), s.A.N)
	}
	if (s.Lo != nil && len(s.Lo) != nv) || (s.Up != nil && len(s.Up) != nv) {
		return fmt.Errorf("scale: bounds length mismatch (lo=%d up=%d, want %d)", len(s.Lo), len(s.Up), nv)
	}
	return nil
}

// clampAt evaluates x_k = clamp(x⁰_k + a_k·d, l_k, u_k) and reports whether
// the entry is strictly interior (contributing slope a_k to the row/column
// derivative).
func (s *System) clampAt(k int, d float64) (x float64, interior bool) {
	x = s.X0[k] + s.A.Val[k]*d
	lo := 0.0
	if s.Lo != nil {
		lo = s.Lo[k]
	}
	if x <= lo {
		return lo, false
	}
	if s.Up != nil && x >= s.Up[k] {
		return s.Up[k], false
	}
	return x, true
}

// rowAbs returns row i's equation in absolute form: with z = λ_i,
//
//	Σ_j clamp(x⁰_ij + a_ij(z + μ_j)) + diag·z = target.
func (s *System) rowAbs(i int, mu []float64) (target, diag float64) {
	target = s.RowTarget[i]
	if s.RowDiag == nil {
		return target, 0
	}
	e := s.RowDiag[i]
	if s.Coupled {
		return target - e*mu[i], e
	}
	return target, e
}

// colAbs returns column j's equation in absolute form: with z = μ_j,
//
//	Σ_i clamp(x⁰_ij + a_ij(λ_i + z)) + diag·z = target.
func (s *System) colAbs(j int, lambda []float64) (target, diag float64) {
	if s.Coupled {
		e := s.RowDiag[j]
		return s.RowTarget[j] - e*lambda[j], e
	}
	target = s.ColTarget[j]
	if s.ColDiag == nil {
		return target, 0
	}
	return target, s.ColDiag[j]
}

// ispMaxInner caps the safeguarded-Newton iterations spent on one equation
// (rows) or one batched column pass per half-sweep. Piecewise-linear
// monotone equations resolve in a handful of steps; the cap only bounds the
// flat infeasible tails.
const ispMaxInner = 32

// newtonStep advances one safeguarded Newton step on a monotone increasing
// piecewise-linear equation g(z) = 0 evaluated at z: the bracket tightens on
// the current sign's side, a Newton candidate outside the open bracket (or
// with a vanishing slope) falls back to bisection, and a one-sided bracket
// expands geometrically via step. ok = false means the iteration cannot
// move any further.
func newtonStep(z, g, slope float64, blo, bhi, step *float64) (next float64, ok bool) {
	if g > 0 {
		*bhi = z
	} else {
		*blo = z
	}
	if slope > 0 {
		next = z - g/slope
		if next > *blo && next < *bhi {
			return next, true
		}
	}
	if !math.IsInf(*blo, 0) && !math.IsInf(*bhi, 0) {
		next = 0.5 * (*blo + *bhi)
		return next, next > *blo && next < *bhi
	}
	if g > 0 {
		next = z - *step*(1+math.Abs(z))
	} else {
		next = z + *step*(1+math.Abs(z))
	}
	*step *= 2
	return next, true
}

// solveRow solves row i's piecewise-linear equation in λ_i by safeguarded
// Newton, spending at most inner steps, and returns the equation's absolute
// violation at the incoming λ_i — this row's contribution to the staggered
// residual.
func (s *System) solveRow(i int, lambda, mu []float64, innerTol float64, inner int) (first float64) {
	target, diag := s.rowAbs(i, mu)
	lo, hi := s.A.Row(i)
	z := lambda[i]
	blo, bhi := math.Inf(-1), math.Inf(1)
	step := 1.0
	for it := 0; it < inner; it++ {
		var sum, asum float64
		for k := lo; k < hi; k++ {
			x, interior := s.clampAt(k, z+mu[s.A.Col(i, k)])
			sum += x
			if interior {
				asum += s.A.Val[k]
			}
		}
		g := sum + diag*z - target
		if it == 0 {
			first = math.Abs(g)
		}
		if math.Abs(g) <= innerTol {
			break
		}
		next, ok := newtonStep(z, g, asum+diag, &blo, &bhi, &step)
		if !ok {
			break
		}
		z = next
	}
	lambda[i] = z
	return first
}

// solveColumns runs the column half-sweep. Columns are independent given λ,
// and each batched pass accumulates every column's sum and interior slope in
// one row-major pass over the matrix (no CSC mirror needed), then advances
// every unconverged μ_j one safeguarded Newton step; passes repeat until all
// column equations hold. The return value is the worst absolute violation
// of the first pass — the columns' contribution to the staggered residual.
func (s *System) solveColumns(lambda, mu, colSum, colASum []float64, innerTol float64, inner int) (first float64) {
	m, n := s.A.M, s.A.N
	for j := 0; j < n; j++ {
		s.colLo[j] = math.Inf(-1)
		s.colHi[j] = math.Inf(1)
	}
	step := 1.0
	for pass := 0; pass < inner; pass++ {
		for j := 0; j < n; j++ {
			colSum[j] = 0
			colASum[j] = 0
		}
		for i := 0; i < m; i++ {
			lo, hi := s.A.Row(i)
			for k := lo; k < hi; k++ {
				j := s.A.Col(i, k)
				x, interior := s.clampAt(k, lambda[i]+mu[j])
				colSum[j] += x
				if interior {
					colASum[j] += s.A.Val[k]
				}
			}
		}
		var worst float64
		moved := false
		for j := 0; j < n; j++ {
			target, diag := s.colAbs(j, lambda)
			g := colSum[j] + diag*mu[j] - target
			if ag := math.Abs(g); ag > worst {
				worst = ag
			}
			if math.Abs(g) <= innerTol {
				continue
			}
			if next, ok := newtonStep(mu[j], g, colASum[j]+diag, &s.colLo[j], &s.colHi[j], &step); ok {
				mu[j] = next
				moved = true
			}
		}
		if pass == 0 {
			first = worst
		}
		if worst <= innerTol || !moved {
			break
		}
	}
	return first
}

// Run performs up to sweeps full row+column ISP sweeps on (lambda, mu),
// both length M/N and updated in place (zeros are the cold start; warm
// duals continue from where they are). It stops early when the residual —
// the largest absolute row/column equation violation at the staggered
// iterates, the ∞-norm of the dual gradient — reaches tol (tol ≤ 0 never
// stops early). observe, when non-nil, receives every sweep's index and
// residual.
//
// Sweeps start in a relaxed mode — one linearized Newton step per equation,
// two matrix passes per sweep, the cheapest useful unit of dual progress —
// and escalate to exact half-sweeps (safeguarded Newton per row, batched
// Newton passes per column, each an exact two-block coordinate-ascent step
// on the concave dual, globally convergent) as soon as the relaxed residual
// stalls or the endgame nears. Mostly-interior problems therefore pay the
// single-step price per sweep, while heavily clamped ones — where single
// linearized steps can cycle across breakpoints — self-correct within a few
// sweeps.
//
// colSum and colASum are caller scratch of length N (nil to allocate): the
// column half-sweep accumulates per-column sums row-major instead of
// requiring a CSC mirror, so a pass reads the matrix once and allocates
// nothing.
func (s *System) Run(lambda, mu []float64, sweeps int, tol float64, colSum, colASum []float64, observe func(int, float64)) Result {
	n := s.A.N
	colSum = resize(colSum, n)
	colASum = resize(colASum, n)
	s.colLo = resize(s.colLo, n)
	s.colHi = resize(s.colHi, n)
	innerTol := 0.0
	if tol > 0 {
		innerTol = tol / 4
	}
	if !s.runInit {
		s.runInit = true
		s.lastRes = math.Inf(1)
		s.winBest = math.Inf(1)
		s.prevWin = math.Inf(1)
	}
	var res Result
	for t := 1; t <= sweeps; t++ {
		res.Iterations = t
		inner := 1
		if s.runExact || (tol > 0 && s.lastRes <= 8*tol) {
			inner = ispMaxInner
		}
		var worst float64
		// Row half-sweep: every λ_i solve is independent given μ.
		for i := 0; i < s.A.M; i++ {
			if r := s.solveRow(i, lambda, mu, innerTol, inner); r > worst {
				worst = r
			}
		}
		if r := s.solveColumns(lambda, mu, colSum, colASum, innerTol, inner); r > worst {
			worst = r
		}
		res.Residual = worst
		s.lastRes = worst
		if observe != nil {
			observe(t, worst)
		}
		if worst == 0 && !res.Exact {
			res.Exact = true
			res.ExactIteration = t
		}
		if tol > 0 && worst <= tol {
			res.Converged = true
			return res
		}
		// Escalate once a 6-sweep window's best residual stops improving on
		// the previous window's — relaxed sweeps oscillate with period 2 at
		// the staggered iterates, so consecutive-sweep comparisons would
		// misread a healthy downward trend as a stall.
		if !s.runExact {
			if worst < s.winBest {
				s.winBest = worst
			}
			if s.winCount++; s.winCount >= 6 {
				if s.winBest >= 0.98*s.prevWin {
					s.runExact = true
				}
				s.prevWin = s.winBest
				s.winBest = math.Inf(1)
				s.winCount = 0
			}
		}
	}
	return res
}

// Eval writes the primal iterate x(λ,μ) implied by the duals into x
// (storage order, length Nnz) and returns the largest absolute row/column
// equation violation at exactly these duals — the measure a solver built on
// Run reports as its final residual.
func (s *System) Eval(lambda, mu []float64, x, rowSum, colSum []float64) float64 {
	m, n := s.A.M, s.A.N
	rowSum = resize(rowSum, m)
	colSum = resize(colSum, n)
	for j := 0; j < n; j++ {
		colSum[j] = 0
	}
	for i := 0; i < m; i++ {
		lo, hi := s.A.Row(i)
		var sum float64
		for k := lo; k < hi; k++ {
			j := s.A.Col(i, k)
			xv, _ := s.clampAt(k, lambda[i]+mu[j])
			x[k] = xv
			sum += xv
			colSum[j] += xv
		}
		rowSum[i] = sum
	}
	var worst float64
	for i := 0; i < m; i++ {
		target, diag := s.rowAbs(i, mu)
		if r := math.Abs(rowSum[i] + diag*lambda[i] - target); r > worst {
			worst = r
		}
	}
	for j := 0; j < n; j++ {
		target, diag := s.colAbs(j, lambda)
		if r := math.Abs(colSum[j] + diag*mu[j] - target); r > worst {
			worst = r
		}
	}
	return worst
}
