// Package spe implements classical spatial price equilibrium problems
// (Enke 1951; Samuelson 1952; Takayama and Judge 1971) with linear,
// separable supply price, demand price and transportation cost functions,
// and their isomorphism with constrained matrix problems with unknown row
// and column totals (paper Section 2 and Table 5).
//
// A spatial price equilibrium over m supply markets and n demand markets is
// a flow pattern x ≥ 0 with induced supplies s_i = Σ_j x_ij and demands
// d_j = Σ_i x_ij such that for every pair (i,j)
//
//	π_i(s_i) + c_ij(x_ij)  ≥ ρ_j(d_j),  with equality whenever x_ij > 0,
//
// i.e. trade occurs exactly between markets whose delivered supply price
// meets the demand price. With π_i(s) = P_i + R_i s, ρ_j(d) = Q_j − W_j d,
// and c_ij(x) = C_ij + H_ij x, the equilibrium conditions are the KKT
// system of the elastic constrained matrix problem with
//
//	α_i = R_i/2, s⁰_i = −P_i/R_i,  γ_ij = H_ij/2, x⁰_ij = −C_ij/H_ij,
//	β_j = W_j/2, d⁰_j = Q_j/W_j,
//
// which is how the splitting equilibration algorithm computes it.
package spe

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"

	"sea/internal/core"
)

// Problem is a linear separable spatial price equilibrium instance.
type Problem struct {
	M, N int
	// Supply price π_i(s) = SupplyIntercept[i] + SupplySlope[i]·s.
	SupplyIntercept, SupplySlope []float64
	// Demand price ρ_j(d) = DemandIntercept[j] − DemandSlope[j]·d.
	DemandIntercept, DemandSlope []float64
	// Transport cost c_ij(x) = CostIntercept[i·n+j] + CostSlope[i·n+j]·x.
	CostIntercept, CostSlope []float64
}

// Validate checks dimensions and slope positivity (strict monotonicity of
// all functions, the condition for a unique equilibrium).
func (p *Problem) Validate() error {
	if p.M <= 0 || p.N <= 0 {
		return fmt.Errorf("spe: invalid dimensions %d×%d", p.M, p.N)
	}
	if len(p.SupplyIntercept) != p.M || len(p.SupplySlope) != p.M {
		return fmt.Errorf("spe: supply function lengths %d/%d, want %d", len(p.SupplyIntercept), len(p.SupplySlope), p.M)
	}
	if len(p.DemandIntercept) != p.N || len(p.DemandSlope) != p.N {
		return fmt.Errorf("spe: demand function lengths %d/%d, want %d", len(p.DemandIntercept), len(p.DemandSlope), p.N)
	}
	mn := p.M * p.N
	if len(p.CostIntercept) != mn || len(p.CostSlope) != mn {
		return fmt.Errorf("spe: cost function lengths %d/%d, want %d", len(p.CostIntercept), len(p.CostSlope), mn)
	}
	for i, v := range p.SupplySlope {
		if !(v > 0) {
			return fmt.Errorf("spe: SupplySlope[%d] = %g, want > 0", i, v)
		}
	}
	for j, v := range p.DemandSlope {
		if !(v > 0) {
			return fmt.Errorf("spe: DemandSlope[%d] = %g, want > 0", j, v)
		}
	}
	for k, v := range p.CostSlope {
		if !(v > 0) {
			return fmt.Errorf("spe: CostSlope[%d] = %g, want > 0", k, v)
		}
	}
	return nil
}

// ToConstrainedMatrix converts the equilibrium problem to its isomorphic
// elastic constrained matrix problem.
func (p *Problem) ToConstrainedMatrix() (*core.DiagonalProblem, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m, n := p.M, p.N
	mn := m * n
	x0 := make([]float64, mn)
	gamma := make([]float64, mn)
	for k := 0; k < mn; k++ {
		gamma[k] = p.CostSlope[k] / 2
		x0[k] = -p.CostIntercept[k] / p.CostSlope[k]
	}
	s0 := make([]float64, m)
	alpha := make([]float64, m)
	for i := 0; i < m; i++ {
		alpha[i] = p.SupplySlope[i] / 2
		s0[i] = -p.SupplyIntercept[i] / p.SupplySlope[i]
	}
	d0 := make([]float64, n)
	beta := make([]float64, n)
	for j := 0; j < n; j++ {
		beta[j] = p.DemandSlope[j] / 2
		d0[j] = p.DemandIntercept[j] / p.DemandSlope[j]
	}
	return core.NewElastic(m, n, x0, gamma, s0, alpha, d0, beta)
}

// Equilibrium is a computed spatial price equilibrium.
type Equilibrium struct {
	// X holds the trade flows (m×n row-major); S and D the induced
	// supplies and demands.
	X, S, D []float64
	// SupplyPrice and DemandPrice are the market prices at equilibrium.
	SupplyPrice, DemandPrice []float64
	// Iterations is the SEA iteration count; Converged its status.
	Iterations int
	Converged  bool
}

// Solve computes the equilibrium via the splitting equilibration algorithm.
// Cancellation of ctx propagates to the underlying solve.
func (p *Problem) Solve(ctx context.Context, opts *core.Options) (*Equilibrium, error) {
	cmp, err := p.ToConstrainedMatrix()
	if err != nil {
		return nil, err
	}
	sol, err := core.SolveDiagonal(ctx, cmp, opts)
	if sol == nil {
		return nil, err
	}
	eq := &Equilibrium{
		X: sol.X, S: sol.S, D: sol.D,
		SupplyPrice: make([]float64, p.M),
		DemandPrice: make([]float64, p.N),
		Iterations:  sol.Iterations,
		Converged:   sol.Converged,
	}
	for i := 0; i < p.M; i++ {
		eq.SupplyPrice[i] = p.SupplyIntercept[i] + p.SupplySlope[i]*sol.S[i]
	}
	for j := 0; j < p.N; j++ {
		eq.DemandPrice[j] = p.DemandIntercept[j] - p.DemandSlope[j]*sol.D[j]
	}
	return eq, err
}

// Violations quantifies how far eq is from satisfying the equilibrium
// conditions.
type Violations struct {
	// MaxComplementarity is the largest |π_i + c_ij − ρ_j| over pairs with
	// positive flow.
	MaxComplementarity float64
	// MaxUnderprice is the largest ρ_j − (π_i + c_ij) over all pairs (a
	// positive value means an arbitrage opportunity was left unused).
	MaxUnderprice float64
	// MaxConservation is the largest |s_i − Σ_j x_ij| or |d_j − Σ_i x_ij|.
	MaxConservation float64
	// MinFlow is the most negative flow (0 if all are nonnegative).
	MinFlow float64
}

// Max returns the largest violation.
func (v Violations) Max() float64 {
	worst := v.MaxComplementarity
	for _, u := range []float64{v.MaxUnderprice, v.MaxConservation, -v.MinFlow} {
		if u > worst {
			worst = u
		}
	}
	return worst
}

// Verify checks the spatial price equilibrium conditions of eq against the
// model p. flowTol decides which flows count as positive for the
// complementarity check.
func (p *Problem) Verify(eq *Equilibrium, flowTol float64) Violations {
	m, n := p.M, p.N
	var v Violations
	rowSum := make([]float64, m)
	colSum := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			x := eq.X[i*n+j]
			if x < v.MinFlow {
				v.MinFlow = x
			}
			rowSum[i] += x
			colSum[j] += x
			delivered := eq.SupplyPrice[i] + p.CostIntercept[i*n+j] + p.CostSlope[i*n+j]*x
			gap := delivered - eq.DemandPrice[j]
			if x > flowTol {
				if a := math.Abs(gap); a > v.MaxComplementarity {
					v.MaxComplementarity = a
				}
			}
			if -gap > v.MaxUnderprice {
				v.MaxUnderprice = -gap
			}
		}
	}
	for i := 0; i < m; i++ {
		if a := math.Abs(rowSum[i] - eq.S[i]); a > v.MaxConservation {
			v.MaxConservation = a
		}
	}
	for j := 0; j < n; j++ {
		if a := math.Abs(colSum[j] - eq.D[j]); a > v.MaxConservation {
			v.MaxConservation = a
		}
	}
	return v
}

// Generate builds a random instance of the class used in the paper's
// Table 5: m supply and n demand markets with linear separable functions.
// The ranges are chosen so that a substantial fraction of market pairs trade
// at equilibrium, mimicking agricultural/energy market models.
func Generate(m, n int, seed uint64) *Problem {
	rng := rand.New(rand.NewPCG(seed, 0x5EA))
	p := &Problem{
		M: m, N: n,
		SupplyIntercept: make([]float64, m),
		SupplySlope:     make([]float64, m),
		DemandIntercept: make([]float64, n),
		DemandSlope:     make([]float64, n),
		CostIntercept:   make([]float64, m*n),
		CostSlope:       make([]float64, m*n),
	}
	for i := 0; i < m; i++ {
		p.SupplyIntercept[i] = 10 + rng.Float64()*20 // π(0) ∈ [10,30]
		p.SupplySlope[i] = 0.3 + rng.Float64()*0.7   // R ∈ [.3,1)
	}
	for j := 0; j < n; j++ {
		p.DemandIntercept[j] = 150 + rng.Float64()*150 // ρ(0) ∈ [150,300]
		p.DemandSlope[j] = 0.3 + rng.Float64()*0.7
	}
	for k := 0; k < m*n; k++ {
		p.CostIntercept[k] = 1 + rng.Float64()*24 // c(0) ∈ [1,25]
		p.CostSlope[k] = 0.3 + rng.Float64()*1.2  // H ∈ [.3,1.5]
	}
	return p
}
