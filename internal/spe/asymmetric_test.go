package spe

import (
	"context"
	"math"
	"testing"

	"sea/internal/mat"
)

// TestAsymmetricReducesToSeparable: with diagonal interaction matrices the
// asymmetric solver must reproduce the separable solver's equilibrium.
func TestAsymmetricReducesToSeparable(t *testing.T) {
	m, n := 4, 5
	base := Generate(m, n, 31)
	ap := &AsymmetricProblem{
		M: m, N: n,
		SupplyIntercept: base.SupplyIntercept,
		DemandIntercept: base.DemandIntercept,
		CostIntercept:   base.CostIntercept,
		CostSlope:       base.CostSlope,
	}
	rdata := make([]float64, m*m)
	for i := 0; i < m; i++ {
		rdata[i*m+i] = base.SupplySlope[i]
	}
	wdata := make([]float64, n*n)
	for j := 0; j < n; j++ {
		wdata[j*n+j] = base.DemandSlope[j]
	}
	ap.SupplyMatrix = mat.MustDenseGeneral(m, rdata)
	ap.DemandMatrix = mat.MustDenseGeneral(n, wdata)

	want, err := base.Solve(context.Background(), speOpts())
	if err != nil {
		t.Fatal(err)
	}
	got, err := ap.SolveAsymmetric(context.Background(), 1e-8, 10000, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k := range want.X {
		if math.Abs(want.X[k]-got.X[k]) > 1e-4*(1+math.Abs(want.X[k])) {
			t.Fatalf("diagonal-interaction asymmetric solve differs at %d: %g vs %g",
				k, got.X[k], want.X[k])
		}
	}
}

// TestAsymmetricEquilibriumConditions: genuinely asymmetric instances
// converge to points satisfying the equilibrium conditions.
func TestAsymmetricEquilibriumConditions(t *testing.T) {
	for _, size := range []struct{ m, n int }{{3, 3}, {8, 6}, {15, 15}} {
		p := GenerateAsymmetric(size.m, size.n, 33)
		eq, err := p.SolveAsymmetric(context.Background(), 1e-8, 20000, nil)
		if err != nil {
			t.Fatalf("%dx%d: %v", size.m, size.n, err)
		}
		v := p.VerifyAsymmetric(eq, 1e-6)
		if v.Max() > 1e-4 {
			t.Errorf("%dx%d: equilibrium violated: %+v", size.m, size.n, v)
		}
		var traded int
		for _, x := range eq.X {
			if x > 1e-6 {
				traded++
			}
		}
		if traded == 0 {
			t.Errorf("%dx%d: no trade at equilibrium", size.m, size.n)
		}
	}
}

// TestAsymmetryMatters: an asymmetric cross-price effect must change the
// equilibrium relative to the purely separable model.
func TestAsymmetryMatters(t *testing.T) {
	m, n := 4, 4
	p := GenerateAsymmetric(m, n, 35)
	eqA, err := p.SolveAsymmetric(context.Background(), 1e-8, 20000, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Strip the off-diagonal interactions.
	sep := &AsymmetricProblem{
		M: m, N: n,
		SupplyIntercept: p.SupplyIntercept,
		DemandIntercept: p.DemandIntercept,
		CostIntercept:   p.CostIntercept,
		CostSlope:       p.CostSlope,
	}
	rdata := make([]float64, m*m)
	wdata := make([]float64, n*n)
	for i := 0; i < m; i++ {
		rdata[i*m+i] = p.SupplyMatrix.Diag(i)
	}
	for j := 0; j < n; j++ {
		wdata[j*n+j] = p.DemandMatrix.Diag(j)
	}
	sep.SupplyMatrix = mat.MustDenseGeneral(m, rdata)
	sep.DemandMatrix = mat.MustDenseGeneral(n, wdata)
	eqS, err := sep.SolveAsymmetric(context.Background(), 1e-8, 20000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mat.MaxAbsDiff(eqA.X, eqS.X) < 1e-3 {
		t.Error("asymmetric interactions had no effect; generator degenerate")
	}
}

func TestAsymmetricValidation(t *testing.T) {
	p := GenerateAsymmetric(3, 3, 37)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Non-dominant supply matrix rejected.
	bad := GenerateAsymmetric(2, 2, 37)
	bad.SupplyMatrix = mat.MustDenseGeneral(2, []float64{1, 5, 5, 1})
	if err := bad.Validate(); err == nil {
		t.Error("non-dominant interaction matrix accepted")
	}
	bad2 := GenerateAsymmetric(2, 2, 37)
	bad2.CostSlope[0] = 0
	if err := bad2.Validate(); err == nil {
		t.Error("zero cost slope accepted")
	}
}

func TestDenseGeneralOps(t *testing.T) {
	w := mat.MustDenseGeneral(2, []float64{1, 2, 3, 4})
	if w.At(0, 1) != 2 || w.At(1, 0) != 3 || w.Diag(1) != 4 {
		t.Error("At/Diag wrong")
	}
	dst := make([]float64, 2)
	w.MulVec(dst, []float64{1, 1})
	if dst[0] != 3 || dst[1] != 7 {
		t.Errorf("MulVec = %v", dst)
	}
	row := make([]float64, 2)
	w.Row(1, row)
	if row[0] != 3 || row[1] != 4 {
		t.Errorf("Row = %v", row)
	}
	if _, err := mat.NewDenseGeneral(2, []float64{1}); err == nil {
		t.Error("short data accepted")
	}
}
