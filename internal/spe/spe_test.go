package spe

import (
	"context"
	"math"
	"testing"

	"sea/internal/core"
)

func speOpts() *core.Options {
	o := core.DefaultOptions()
	o.Criterion = core.DualGradient
	o.Epsilon = 1e-9
	o.MaxIterations = 500000
	return o
}

// TestTwoMarketAnalytic solves the classic single-pair equilibrium by hand:
// one supply market, one demand market.
//
//	π(s) = 10 + s, ρ(d) = 100 − d, c(x) = 2 + x.
//	Trade: 10 + x + 2 + x = 100 − x → 3x = 88 → x = 88/3.
func TestTwoMarketAnalytic(t *testing.T) {
	p := &Problem{
		M: 1, N: 1,
		SupplyIntercept: []float64{10}, SupplySlope: []float64{1},
		DemandIntercept: []float64{100}, DemandSlope: []float64{1},
		CostIntercept: []float64{2}, CostSlope: []float64{1},
	}
	eq, err := p.Solve(context.Background(), speOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := 88.0 / 3
	if math.Abs(eq.X[0]-want) > 1e-6 {
		t.Errorf("flow = %g, want %g", eq.X[0], want)
	}
	// Delivered price equals demand price at equilibrium.
	if math.Abs(eq.SupplyPrice[0]+2+eq.X[0]-eq.DemandPrice[0]) > 1e-6 {
		t.Errorf("price gap at equilibrium: π=%g ρ=%g", eq.SupplyPrice[0], eq.DemandPrice[0])
	}
}

// TestNoTradeWhenCostProhibitive: if delivered cost exceeds the maximum
// demand price, no trade occurs.
func TestNoTradeWhenCostProhibitive(t *testing.T) {
	p := &Problem{
		M: 1, N: 1,
		SupplyIntercept: []float64{50}, SupplySlope: []float64{1},
		DemandIntercept: []float64{40}, DemandSlope: []float64{1},
		CostIntercept: []float64{20}, CostSlope: []float64{1},
	}
	eq, err := p.Solve(context.Background(), speOpts())
	if err != nil {
		t.Fatal(err)
	}
	if eq.X[0] > 1e-9 {
		t.Errorf("flow = %g, want 0 (autarky)", eq.X[0])
	}
	// With zero flow, supply and demand are zero.
	if math.Abs(eq.S[0]) > 1e-9 || math.Abs(eq.D[0]) > 1e-9 {
		t.Errorf("s = %g, d = %g, want 0", eq.S[0], eq.D[0])
	}
}

func TestGeneratedEquilibriumConditions(t *testing.T) {
	for _, size := range []struct{ m, n int }{{3, 4}, {10, 10}, {25, 20}} {
		p := Generate(size.m, size.n, 42)
		eq, err := p.Solve(context.Background(), speOpts())
		if err != nil {
			t.Fatalf("%dx%d: %v", size.m, size.n, err)
		}
		if !eq.Converged {
			t.Fatalf("%dx%d: not converged", size.m, size.n)
		}
		v := p.Verify(eq, 1e-7)
		if v.Max() > 1e-5 {
			t.Errorf("%dx%d: equilibrium conditions violated: %+v", size.m, size.n, v)
		}
		// A healthy instance should actually trade.
		var traded int
		for _, x := range eq.X {
			if x > 1e-6 {
				traded++
			}
		}
		if traded == 0 {
			t.Errorf("%dx%d: no pair trades; generator ranges degenerate", size.m, size.n)
		}
	}
}

func TestIsomorphismRoundTrip(t *testing.T) {
	p := Generate(5, 6, 7)
	cmp, err := p.ToConstrainedMatrix()
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Kind != core.ElasticTotals {
		t.Fatalf("Kind = %v, want elastic", cmp.Kind)
	}
	// Spot-check the coefficient mapping.
	if math.Abs(cmp.Alpha[0]-p.SupplySlope[0]/2) > 1e-15 {
		t.Error("alpha mapping wrong")
	}
	if math.Abs(cmp.S0[0]+p.SupplyIntercept[0]/p.SupplySlope[0]) > 1e-12 {
		t.Error("s0 mapping wrong")
	}
	if math.Abs(cmp.D0[0]-p.DemandIntercept[0]/p.DemandSlope[0]) > 1e-12 {
		t.Error("d0 mapping wrong")
	}
	k := 7 // arbitrary entry
	if math.Abs(cmp.Gamma[k]-p.CostSlope[k]/2) > 1e-15 {
		t.Error("gamma mapping wrong")
	}
	if math.Abs(cmp.X0[k]+p.CostIntercept[k]/p.CostSlope[k]) > 1e-12 {
		t.Error("x0 mapping wrong")
	}
}

// TestEquilibriumPricesConsistent: multipliers of the constrained matrix
// problem reproduce the market prices: at equilibrium λ_i = −π_i and
// μ_j = ρ_j.
func TestEquilibriumPricesConsistent(t *testing.T) {
	p := Generate(4, 4, 9)
	cmp, err := p.ToConstrainedMatrix()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.SolveDiagonal(context.Background(), cmp, speOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.M; i++ {
		pi := p.SupplyIntercept[i] + p.SupplySlope[i]*sol.S[i]
		// From (21): λ_i = 2α_i(s⁰_i − s_i) = R_i(−P_i/R_i − s_i) = −π_i.
		if math.Abs(sol.Lambda[i]+pi) > 1e-6*(1+math.Abs(pi)) {
			t.Errorf("λ_%d = %g, want −π = %g", i, sol.Lambda[i], -pi)
		}
	}
	for j := 0; j < p.N; j++ {
		rho := p.DemandIntercept[j] - p.DemandSlope[j]*sol.D[j]
		if math.Abs(sol.Mu[j]-rho) > 1e-6*(1+math.Abs(rho)) {
			t.Errorf("μ_%d = %g, want ρ = %g", j, sol.Mu[j], rho)
		}
	}
}

func TestValidate(t *testing.T) {
	p := Generate(2, 2, 1)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Generate(2, 2, 1)
	bad.SupplySlope[0] = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero supply slope accepted")
	}
	bad2 := Generate(2, 2, 1)
	bad2.CostSlope[3] = -1
	if err := bad2.Validate(); err == nil {
		t.Error("negative cost slope accepted")
	}
	short := Generate(2, 2, 1)
	short.DemandIntercept = short.DemandIntercept[:1]
	if err := short.Validate(); err == nil {
		t.Error("short demand intercepts accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(3, 3, 5)
	b := Generate(3, 3, 5)
	for k := range a.CostIntercept {
		if a.CostIntercept[k] != b.CostIntercept[k] {
			t.Fatal("Generate not deterministic")
		}
	}
	c := Generate(3, 3, 6)
	if a.CostIntercept[0] == c.CostIntercept[0] {
		t.Error("different seeds gave identical instance")
	}
}
