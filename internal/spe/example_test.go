package spe_test

import (
	"context"
	"fmt"

	"sea/internal/core"
	"sea/internal/spe"
)

// ExampleProblem_Solve computes a one-pair spatial price equilibrium:
// π(s) = 10 + s, ρ(d) = 100 − d, c(x) = 2 + x ⇒ trade 88/3.
func ExampleProblem_Solve() {
	p := &spe.Problem{
		M: 1, N: 1,
		SupplyIntercept: []float64{10}, SupplySlope: []float64{1},
		DemandIntercept: []float64{100}, DemandSlope: []float64{1},
		CostIntercept: []float64{2}, CostSlope: []float64{1},
	}
	opts := core.DefaultOptions()
	opts.Criterion = core.DualGradient
	opts.Epsilon = 1e-10
	eq, err := p.Solve(context.Background(), opts)
	if err != nil {
		panic(err)
	}
	fmt.Printf("flow %.4f, supply price %.4f, demand price %.4f\n",
		eq.X[0], eq.SupplyPrice[0], eq.DemandPrice[0])
	// Output:
	// flow 29.3333, supply price 39.3333, demand price 70.6667
}
