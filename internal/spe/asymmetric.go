package spe

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"

	"sea/internal/core"
	"sea/internal/mat"
)

// AsymmetricProblem is a spatial price equilibrium whose supply and demand
// price functions couple markets through possibly *asymmetric* interaction
// matrices:
//
//	π_i(s) = P_i + Σ_k R_ik s_k,   ρ_j(d) = Q_j − Σ_l W_jl d_l,
//	c_ij(x) = C_ij + H_ij x_ij.
//
// With R or W asymmetric there is no equivalent optimization formulation —
// the situation the paper's Section 2 points to when it relates constrained
// matrix problems to variational inequality theory. The equilibrium is the
// solution of the VI
//
//	⟨F(z*), z − z*⟩ ≥ 0  for all z = (x, s, d) in the conservation set
//	                      {Σ_j x_ij = s_i, Σ_i x_ij = d_j, x ≥ 0},
//
// with F(x, s, d) = (c_ij(x_ij), π_i(s), −ρ_j(d)), and is computed by the
// Dafermos projection method: each iteration solves a diagonal *elastic*
// constrained matrix problem (by the splitting equilibration algorithm)
// whose quadratic terms are the diagonals of H, R, W and whose linear terms
// are updated from F at the current iterate — exactly the structure of the
// paper's Section 3.2 applied to a non-symmetric operator.
type AsymmetricProblem struct {
	M, N int
	// SupplyIntercept P and SupplyMatrix R (m×m, positive diagonal,
	// strictly diagonally dominant for convergence).
	SupplyIntercept []float64
	SupplyMatrix    *mat.DenseGeneral
	// DemandIntercept Q and DemandMatrix W (n×n, same conditions).
	DemandIntercept []float64
	DemandMatrix    *mat.DenseGeneral
	// CostIntercept and CostSlope define the separable transport costs.
	CostIntercept, CostSlope []float64
}

// Validate checks dimensions, slope positivity, and strict diagonal
// dominance of the interaction matrices (the projection method's
// convergence condition for the VI).
func (p *AsymmetricProblem) Validate() error {
	if p.M <= 0 || p.N <= 0 {
		return fmt.Errorf("spe: invalid dimensions %d×%d", p.M, p.N)
	}
	if len(p.SupplyIntercept) != p.M || p.SupplyMatrix == nil || p.SupplyMatrix.Dim() != p.M {
		return fmt.Errorf("spe: supply side mis-sized")
	}
	if len(p.DemandIntercept) != p.N || p.DemandMatrix == nil || p.DemandMatrix.Dim() != p.N {
		return fmt.Errorf("spe: demand side mis-sized")
	}
	mn := p.M * p.N
	if len(p.CostIntercept) != mn || len(p.CostSlope) != mn {
		return fmt.Errorf("spe: cost functions mis-sized")
	}
	for k, v := range p.CostSlope {
		if !(v > 0) {
			return fmt.Errorf("spe: CostSlope[%d] = %g, want > 0", k, v)
		}
	}
	for name, w := range map[string]*mat.DenseGeneral{"R": p.SupplyMatrix, "W": p.DemandMatrix} {
		if margin := mat.DominanceMargin(w); margin <= 0 {
			return fmt.Errorf("spe: interaction matrix %s not strictly diagonally dominant (margin %g)", name, margin)
		}
	}
	return nil
}

// SolveAsymmetric computes the equilibrium by the projection method with
// diagonal SEA subproblems. eps is the outer tolerance on |Δx|∞; opts
// configures the inner diagonal solves (tolerance, workers). Cancellation of
// ctx is observed between projection steps (and inside each inner solve) and
// returns the current iterate with ctx.Err().
func (p *AsymmetricProblem) SolveAsymmetric(ctx context.Context, eps float64, maxIter int, opts *core.Options) (*Equilibrium, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if maxIter <= 0 {
		maxIter = 10000
	}
	m, n := p.M, p.N
	mn := m * n

	inner := core.DefaultOptions()
	if opts != nil {
		*inner = *opts
	}
	if inner.Epsilon <= 0 || inner.Epsilon > eps/10 {
		inner.Epsilon = eps / 10
	}
	inner.Criterion = core.DualGradient

	// Diagonal elastic subproblem skeleton: quadratic terms from the
	// operator Jacobian's diagonal.
	dp := &core.DiagonalProblem{
		M: m, N: n,
		X0:    make([]float64, mn),
		Gamma: make([]float64, mn),
		S0:    make([]float64, m),
		Alpha: make([]float64, m),
		D0:    make([]float64, n),
		Beta:  make([]float64, n),
		Kind:  core.ElasticTotals,
	}
	for k := 0; k < mn; k++ {
		dp.Gamma[k] = p.CostSlope[k] / 2
	}
	for i := 0; i < m; i++ {
		dp.Alpha[i] = p.SupplyMatrix.Diag(i) / 2
	}
	for j := 0; j < n; j++ {
		dp.Beta[j] = p.DemandMatrix.Diag(j) / 2
	}

	// Start at autarky (no trade), which satisfies the conservation set.
	x := make([]float64, mn)
	s := make([]float64, m)
	d := make([]float64, n)
	pi := make([]float64, m)
	rho := make([]float64, n)
	var mu0 []float64

	eq := &Equilibrium{}
	var ctxErr error
	for t := 1; t <= maxIter; t++ {
		if err := ctx.Err(); err != nil {
			ctxErr = err
			break
		}
		eq.Iterations = t
		// F at the current iterate.
		p.SupplyMatrix.MulVec(pi, s)
		for i := 0; i < m; i++ {
			pi[i] += p.SupplyIntercept[i]
		}
		p.DemandMatrix.MulVec(rho, d)
		for j := 0; j < n; j++ {
			rho[j] = p.DemandIntercept[j] - rho[j]
		}
		// Equivalent priors of the projection subproblem:
		// z = current − F/(2·quadratic term).
		for k := 0; k < mn; k++ {
			fx := p.CostIntercept[k] + p.CostSlope[k]*x[k]
			dp.X0[k] = x[k] - fx/(2*dp.Gamma[k])
		}
		for i := 0; i < m; i++ {
			dp.S0[i] = s[i] - pi[i]/(2*dp.Alpha[i])
		}
		for j := 0; j < n; j++ {
			// F_d = −ρ_j(d).
			dp.D0[j] = d[j] + rho[j]/(2*dp.Beta[j])
		}

		inner.Mu0 = mu0
		sol, err := core.SolveDiagonal(ctx, dp, inner)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				ctxErr = cerr
				break
			}
			return nil, fmt.Errorf("spe: asymmetric projection step %d: %w", t, err)
		}
		mu0 = sol.Mu
		delta := mat.MaxAbsDiff(sol.X, x)
		copy(x, sol.X)
		copy(s, sol.S)
		copy(d, sol.D)
		if delta <= eps {
			eq.Converged = true
			break
		}
	}

	eq.X, eq.S, eq.D = x, s, d
	eq.SupplyPrice = make([]float64, m)
	eq.DemandPrice = make([]float64, n)
	p.SupplyMatrix.MulVec(eq.SupplyPrice, s)
	for i := 0; i < m; i++ {
		eq.SupplyPrice[i] += p.SupplyIntercept[i]
	}
	p.DemandMatrix.MulVec(eq.DemandPrice, d)
	for j := 0; j < n; j++ {
		eq.DemandPrice[j] = p.DemandIntercept[j] - eq.DemandPrice[j]
	}
	if ctxErr != nil {
		return eq, ctxErr
	}
	if !eq.Converged {
		return eq, fmt.Errorf("%w: asymmetric SPE after %d projection steps", core.ErrNotConverged, maxIter)
	}
	return eq, nil
}

// VerifyAsymmetric checks the equilibrium conditions of eq against the
// asymmetric model: delivered price π_i + c_ij versus ρ_j with the usual
// complementarity, plus conservation of the induced totals.
func (p *AsymmetricProblem) VerifyAsymmetric(eq *Equilibrium, flowTol float64) Violations {
	m, n := p.M, p.N
	var v Violations
	rowSum := make([]float64, m)
	colSum := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			x := eq.X[i*n+j]
			if x < v.MinFlow {
				v.MinFlow = x
			}
			rowSum[i] += x
			colSum[j] += x
			delivered := eq.SupplyPrice[i] + p.CostIntercept[i*n+j] + p.CostSlope[i*n+j]*x
			gap := delivered - eq.DemandPrice[j]
			if x > flowTol {
				if a := math.Abs(gap); a > v.MaxComplementarity {
					v.MaxComplementarity = a
				}
			}
			if -gap > v.MaxUnderprice {
				v.MaxUnderprice = -gap
			}
		}
	}
	for i := 0; i < m; i++ {
		if a := math.Abs(rowSum[i] - eq.S[i]); a > v.MaxConservation {
			v.MaxConservation = a
		}
	}
	for j := 0; j < n; j++ {
		if a := math.Abs(colSum[j] - eq.D[j]); a > v.MaxConservation {
			v.MaxConservation = a
		}
	}
	return v
}

// GenerateAsymmetric builds a random asymmetric instance: diagonally
// dominant interaction matrices with genuinely asymmetric off-diagonal
// cross-price effects, scaled like Generate's separable instances.
func GenerateAsymmetric(m, n int, seed uint64) *AsymmetricProblem {
	rng := rand.New(rand.NewPCG(seed, 0xA5E))
	base := Generate(m, n, seed)
	p := &AsymmetricProblem{
		M: m, N: n,
		SupplyIntercept: base.SupplyIntercept,
		DemandIntercept: base.DemandIntercept,
		CostIntercept:   base.CostIntercept,
		CostSlope:       base.CostSlope,
	}
	p.SupplyMatrix = asymDominant(rng, m, base.SupplySlope)
	p.DemandMatrix = asymDominant(rng, n, base.DemandSlope)
	return p
}

// asymDominant builds a strictly diagonally dominant matrix with the given
// diagonal and asymmetric off-diagonal entries of either sign.
func asymDominant(rng *rand.Rand, n int, diag []float64) *mat.DenseGeneral {
	data := make([]float64, n*n)
	for i := 0; i < n; i++ {
		data[i*n+i] = diag[i]
		if n == 1 {
			continue
		}
		budget := 0.8 * diag[i] / float64(n-1)
		for j := 0; j < n; j++ {
			if j != i {
				data[i*n+j] = (rng.Float64()*2 - 1) * budget
			}
		}
	}
	return mat.MustDenseGeneral(n, data)
}
