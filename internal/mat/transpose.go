package mat

// transposeTile is the tile edge of the blocked transpose: two 32×32 float64
// tiles are 16 KiB together, comfortably inside an L1 data cache, so both the
// row-major reads and the column-major writes stay cache-resident.
const transposeTile = 32

// Transpose writes the n×m transpose of the m×n row-major src into dst:
// dst[j*m+i] = src[i*n+j]. It walks the matrix in square tiles so that,
// unlike a naive loop, neither side's accesses stride across cache lines.
// dst and src must not alias.
func Transpose(dst, src []float64, m, n int) {
	TransposeRange(dst, src, m, n, 0, m)
}

// TransposeRange transposes the row band [rlo,rhi) of the m×n row-major src
// into the corresponding columns of the n×m dst. Disjoint row bands write
// disjoint dst entries, so bands can be transposed concurrently.
func TransposeRange(dst, src []float64, m, n, rlo, rhi int) {
	for ib := rlo; ib < rhi; ib += transposeTile {
		imax := ib + transposeTile
		if imax > rhi {
			imax = rhi
		}
		for jb := 0; jb < n; jb += transposeTile {
			jmax := jb + transposeTile
			if jmax > n {
				jmax = n
			}
			for i := ib; i < imax; i++ {
				row := src[i*n : i*n+n]
				for j := jb; j < jmax; j++ {
					dst[j*m+i] = row[j]
				}
			}
		}
	}
}
