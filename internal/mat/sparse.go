package mat

import (
	"fmt"
	"sort"
)

// SparseEntry is one (i, j, v) coordinate of a sparse matrix.
type SparseEntry struct {
	I, J int
	V    float64
}

// SparseSym is a symmetric weight matrix in compressed sparse row form.
// Real weighting matrices are often structurally sparse — banded
// variance–covariance inverses, block-diagonal reliability classes — and a
// dense mn×mn G is the paper's worst case, not the common one. SparseSym
// stores both triangles explicitly so row access and mat-vec products are
// single contiguous scans.
type SparseSym struct {
	n      int
	rowPtr []int32
	colIdx []int32
	values []float64
}

// NewSparseSym builds an n×n symmetric matrix from coordinate entries.
// Entries may be given for either (or both) triangles: each off-diagonal
// entry is mirrored, and conflicting duplicates are rejected. Diagonal
// entries must be present and positive for the matrix to be usable as a
// weight.
func NewSparseSym(n int, entries []SparseEntry) (*SparseSym, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mat: NewSparseSym: n = %d", n)
	}
	type key struct{ i, j int }
	seen := make(map[key]float64, 2*len(entries))
	for _, e := range entries {
		if e.I < 0 || e.I >= n || e.J < 0 || e.J >= n {
			return nil, fmt.Errorf("mat: NewSparseSym: entry (%d,%d) out of range", e.I, e.J)
		}
		for _, k := range []key{{e.I, e.J}, {e.J, e.I}} {
			if prev, ok := seen[k]; ok {
				if prev != e.V {
					return nil, fmt.Errorf("mat: NewSparseSym: conflicting values %g and %g at (%d,%d)", prev, e.V, k.i, k.j)
				}
			} else {
				seen[k] = e.V
			}
		}
	}
	// Bucket by row, sort by column.
	rows := make([][]SparseEntry, n)
	for k, v := range seen {
		rows[k.i] = append(rows[k.i], SparseEntry{I: k.i, J: k.j, V: v})
	}
	s := &SparseSym{
		n:      n,
		rowPtr: make([]int32, n+1),
		colIdx: make([]int32, 0, len(seen)),
		values: make([]float64, 0, len(seen)),
	}
	for i := 0; i < n; i++ {
		sort.Slice(rows[i], func(a, b int) bool { return rows[i][a].J < rows[i][b].J })
		for _, e := range rows[i] {
			s.colIdx = append(s.colIdx, int32(e.J))
			s.values = append(s.values, e.V)
		}
		s.rowPtr[i+1] = int32(len(s.colIdx))
	}
	return s, nil
}

// MustSparseSym is NewSparseSym but panics on invalid input.
func MustSparseSym(n int, entries []SparseEntry) *SparseSym {
	s, err := NewSparseSym(n, entries)
	if err != nil {
		panic(err)
	}
	return s
}

// NNZ returns the number of stored entries (both triangles).
func (s *SparseSym) NNZ() int { return len(s.values) }

func (s *SparseSym) Dim() int { return s.n }

func (s *SparseSym) Diag(i int) float64 { return s.At(i, i) }

// At returns the (i,j) entry, using binary search within row i.
func (s *SparseSym) At(i, j int) float64 {
	lo, hi := int(s.rowPtr[i]), int(s.rowPtr[i+1])
	idx := lo + sort.Search(hi-lo, func(k int) bool { return int(s.colIdx[lo+k]) >= j })
	if idx < hi && int(s.colIdx[idx]) == j {
		return s.values[idx]
	}
	return 0
}

func (s *SparseSym) Row(i int, dst []float64) {
	Fill(dst, 0)
	for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
		dst[s.colIdx[k]] = s.values[k]
	}
}

func (s *SparseSym) MulVec(dst, x []float64) {
	s.MulVecRange(dst, x, 0, s.n)
}

func (s *SparseSym) MulVecRange(dst, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var acc float64
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			acc += s.values[k] * x[s.colIdx[k]]
		}
		dst[i] = acc
	}
}

// Materialize converts to an explicit DenseSym (for tests and small n).
func (s *SparseSym) Materialize() *DenseSym {
	data := make([]float64, s.n*s.n)
	for i := 0; i < s.n; i++ {
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			data[i*s.n+int(s.colIdx[k])] = s.values[k]
		}
	}
	return MustDenseSym(s.n, data)
}

var _ Weight = (*SparseSym)(nil)

// BandedDominant builds a banded symmetric strictly diagonally dominant
// sparse matrix: diagonal in [diagLo, diagHi], entries within the given
// bandwidth of either sign, scaled for dominance. It is the sparse analogue
// of the paper's dense Section 5 generator, for experiments whose weight
// coupling is local (e.g. adjacent sectors or time periods).
func BandedDominant(n int, bandwidth int, seed uint64, diagLo, diagHi float64) *SparseSym {
	if bandwidth < 0 {
		bandwidth = 0
	}
	var entries []SparseEntry
	scale := 0.0
	if bandwidth > 0 {
		scale = 0.9 * diagLo / float64(2*bandwidth)
	}
	h := seed
	next := func() float64 {
		h = splitmix64(h + 0x9E3779B97F4A7C15)
		return unit(h)
	}
	for i := 0; i < n; i++ {
		entries = append(entries, SparseEntry{I: i, J: i, V: diagLo + next()*(diagHi-diagLo)})
		for b := 1; b <= bandwidth && i+b < n; b++ {
			entries = append(entries, SparseEntry{I: i, J: i + b, V: (2*next() - 1) * scale})
		}
	}
	return MustSparseSym(n, entries)
}
