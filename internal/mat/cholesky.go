package mat

import (
	"fmt"
	"math"
)

// CholeskySolve solves A·x = b for a symmetric positive definite A given
// row-major (length n²). A and b are not modified. It returns an error if A
// is not positive definite (to within a small pivot tolerance).
//
// This is the little direct-solver substrate behind the Stone/Byron class
// of unsigned estimators, whose KKT systems are dense SPD.
func CholeskySolve(n int, a, b []float64) ([]float64, error) {
	if len(a) != n*n || len(b) != n {
		return nil, fmt.Errorf("mat: CholeskySolve: bad shapes (a=%d b=%d, n=%d)", len(a), len(b), n)
	}
	// Factor A = L·Lᵀ into a working copy (lower triangle).
	l := make([]float64, n*n)
	copy(l, a)
	for j := 0; j < n; j++ {
		d := l[j*n+j]
		for k := 0; k < j; k++ {
			d -= l[j*n+k] * l[j*n+k]
		}
		if d <= 1e-12*math.Max(1, math.Abs(a[j*n+j])) {
			return nil, fmt.Errorf("mat: CholeskySolve: not positive definite at pivot %d (%g)", j, d)
		}
		d = math.Sqrt(d)
		l[j*n+j] = d
		for i := j + 1; i < n; i++ {
			s := l[i*n+j]
			for k := 0; k < j; k++ {
				s -= l[i*n+k] * l[j*n+k]
			}
			l[i*n+j] = s / d
		}
	}
	// Forward substitution L·y = b.
	x := make([]float64, n)
	copy(x, b)
	for i := 0; i < n; i++ {
		for k := 0; k < i; k++ {
			x[i] -= l[i*n+k] * x[k]
		}
		x[i] /= l[i*n+i]
	}
	// Back substitution Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		for k := i + 1; k < n; k++ {
			x[i] -= l[k*n+i] * x[k]
		}
		x[i] /= l[i*n+i]
	}
	return x, nil
}
