package mat

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestSparseSymBasics(t *testing.T) {
	s := MustSparseSym(3, []SparseEntry{
		{0, 0, 4}, {1, 1, 5}, {2, 2, 6},
		{0, 1, 1}, {1, 2, 2}, {0, 2, -1},
	})
	if s.Dim() != 3 {
		t.Fatalf("Dim = %d", s.Dim())
	}
	if s.NNZ() != 9 {
		t.Errorf("NNZ = %d, want 9 (both triangles)", s.NNZ())
	}
	if s.At(1, 0) != 1 || s.At(2, 1) != 2 || s.At(2, 0) != -1 {
		t.Error("mirrored entries wrong")
	}
	if s.At(0, 0) != 4 || s.Diag(2) != 6 {
		t.Error("diagonal wrong")
	}
	// Dense equivalence.
	d := s.Materialize()
	x := []float64{1, 2, 3}
	a := make([]float64, 3)
	b := make([]float64, 3)
	s.MulVec(a, x)
	d.MulVec(b, x)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Errorf("MulVec[%d] = %g vs dense %g", i, a[i], b[i])
		}
	}
	row := make([]float64, 3)
	s.Row(1, row)
	if row[0] != 1 || row[1] != 5 || row[2] != 2 {
		t.Errorf("Row(1) = %v", row)
	}
}

func TestSparseSymValidation(t *testing.T) {
	if _, err := NewSparseSym(0, nil); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewSparseSym(2, []SparseEntry{{0, 5, 1}}); err == nil {
		t.Error("out-of-range entry accepted")
	}
	if _, err := NewSparseSym(2, []SparseEntry{{0, 1, 1}, {1, 0, 2}}); err == nil {
		t.Error("conflicting mirror values accepted")
	}
	// Duplicate consistent entries are fine.
	if _, err := NewSparseSym(2, []SparseEntry{{0, 0, 1}, {1, 1, 1}, {0, 1, 3}, {1, 0, 3}}); err != nil {
		t.Errorf("consistent duplicates rejected: %v", err)
	}
}

func TestSparseSymRandomAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 62))
	n := 30
	var entries []SparseEntry
	for i := 0; i < n; i++ {
		entries = append(entries, SparseEntry{i, i, 1 + rng.Float64()*10})
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.15 {
				entries = append(entries, SparseEntry{i, j, rng.NormFloat64()})
			}
		}
	}
	s := MustSparseSym(n, entries)
	d := s.Materialize()
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	a := make([]float64, n)
	b := make([]float64, n)
	s.MulVecRange(a, x, 0, 13)
	s.MulVecRange(a, x, 13, n)
	d.MulVec(b, x)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-10 {
			t.Fatalf("product differs at %d", i)
		}
	}
	// At agreement on a grid.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if s.At(i, j) != d.At(i, j) {
				t.Fatalf("At(%d,%d) differs", i, j)
			}
		}
	}
}

func TestBandedDominant(t *testing.T) {
	s := BandedDominant(50, 3, 7, 500, 800)
	if m := DominanceMargin(s); m <= 0 {
		t.Errorf("banded matrix not dominant: margin %g", m)
	}
	// Band structure: nothing beyond the bandwidth.
	for i := 0; i < 50; i++ {
		for j := 0; j < 50; j++ {
			if absInt(i-j) > 3 && s.At(i, j) != 0 {
				t.Fatalf("entry outside band at (%d,%d)", i, j)
			}
		}
	}
	// Deterministic.
	s2 := BandedDominant(50, 3, 7, 500, 800)
	if s.At(10, 12) != s2.At(10, 12) {
		t.Error("not deterministic")
	}
	// NNZ ≈ n·(1+2·bw) minus edge effects.
	if s.NNZ() > 50*7 || s.NNZ() < 50*5 {
		t.Errorf("NNZ = %d implausible for bandwidth 3", s.NNZ())
	}
	// Degenerate bandwidths.
	d0 := BandedDominant(5, 0, 1, 10, 20)
	if d0.NNZ() != 5 {
		t.Errorf("bandwidth 0 should be diagonal: NNZ %d", d0.NNZ())
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func BenchmarkSparseMulVecBanded(b *testing.B) {
	n := 10000
	s := BandedDominant(n, 5, 3, 500, 800)
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i % 7)
	}
	dst := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MulVec(dst, x)
	}
}
