package mat

import (
	"fmt"
	"math"
)

// Weight is a symmetric positive-definite weight matrix of a constrained
// matrix problem (the A, B or G of objective (1) in the paper). The splitting
// equilibration algorithm only ever needs the diagonal (for the projection
// step's fixed quadratic) and matrix–vector products (for the linear-term
// update), so that is all the interface exposes.
type Weight interface {
	// Dim returns the order of the matrix.
	Dim() int
	// Diag returns the i-th diagonal entry.
	Diag(i int) float64
	// At returns the (i,j) entry.
	At(i, j int) float64
	// Row copies row i into dst, which must have length Dim.
	Row(i int, dst []float64)
	// MulVec computes dst = W·x. dst and x must have length Dim and must
	// not alias.
	MulVec(dst, x []float64)
	// MulVecRange computes dst[i] = (W·x)[i] for lo <= i < hi, leaving the
	// other entries of dst untouched. It exists so callers can split a
	// product across processors.
	MulVecRange(dst, x []float64, lo, hi int)
}

// Diagonal is a diagonal weight matrix, stored as its diagonal.
type Diagonal struct {
	d []float64
}

// NewDiagonal returns a Diagonal with the given diagonal entries, which must
// all be strictly positive for the matrix to be positive definite.
func NewDiagonal(d []float64) (*Diagonal, error) {
	for i, v := range d {
		if !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
			return nil, fmt.Errorf("mat: diagonal entry %d is %v, want finite positive", i, v)
		}
	}
	return &Diagonal{d: d}, nil
}

// MustDiagonal is NewDiagonal but panics on invalid input. Intended for
// generators and tests with known-good data.
func MustDiagonal(d []float64) *Diagonal {
	w, err := NewDiagonal(d)
	if err != nil {
		panic(err)
	}
	return w
}

// UniformDiagonal returns an n×n diagonal weight with every entry v.
func UniformDiagonal(n int, v float64) *Diagonal {
	d := make([]float64, n)
	Fill(d, v)
	return MustDiagonal(d)
}

func (w *Diagonal) Dim() int           { return len(w.d) }
func (w *Diagonal) Diag(i int) float64 { return w.d[i] }

func (w *Diagonal) At(i, j int) float64 {
	if i == j {
		return w.d[i]
	}
	return 0
}

func (w *Diagonal) Row(i int, dst []float64) {
	Fill(dst, 0)
	dst[i] = w.d[i]
}

func (w *Diagonal) MulVec(dst, x []float64) {
	for i, v := range w.d {
		dst[i] = v * x[i]
	}
}

func (w *Diagonal) MulVecRange(dst, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i] = w.d[i] * x[i]
	}
}

// DenseSym is a fully dense symmetric weight matrix stored row-major.
type DenseSym struct {
	n    int
	data []float64 // n*n, row-major
}

// NewDenseSym wraps data (row-major, length n*n) as a symmetric matrix. It
// returns an error if the data is not symmetric to within a small relative
// tolerance, since the dual analysis of the paper assumes symmetry.
func NewDenseSym(n int, data []float64) (*DenseSym, error) {
	if len(data) != n*n {
		return nil, fmt.Errorf("mat: NewDenseSym: data length %d != %d", len(data), n*n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b := data[i*n+j], data[j*n+i]
			if diff := math.Abs(a - b); diff > 1e-9*(1+math.Abs(a)) {
				return nil, fmt.Errorf("mat: NewDenseSym: asymmetric at (%d,%d): %g vs %g", i, j, a, b)
			}
		}
	}
	return &DenseSym{n: n, data: data}, nil
}

// MustDenseSym is NewDenseSym but panics on invalid input.
func MustDenseSym(n int, data []float64) *DenseSym {
	w, err := NewDenseSym(n, data)
	if err != nil {
		panic(err)
	}
	return w
}

func (w *DenseSym) Dim() int           { return w.n }
func (w *DenseSym) Diag(i int) float64 { return w.data[i*w.n+i] }

// At returns the (i,j) entry.
func (w *DenseSym) At(i, j int) float64 { return w.data[i*w.n+j] }

func (w *DenseSym) Row(i int, dst []float64) {
	copy(dst, w.data[i*w.n:(i+1)*w.n])
}

func (w *DenseSym) MulVec(dst, x []float64) {
	w.MulVecRange(dst, x, 0, w.n)
}

func (w *DenseSym) MulVecRange(dst, x []float64, lo, hi int) {
	n := w.n
	for i := lo; i < hi; i++ {
		row := w.data[i*n : (i+1)*n]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// ImplicitSym is a dense symmetric strictly diagonally dominant matrix whose
// entries are computed on demand from a seed, requiring O(1) storage. It
// stands in for the paper's fully dense randomly generated G matrices when
// the matrix itself would dominate memory. Diagonal entries lie in
// [DiagLo, DiagHi] and off-diagonal entries in [-offScale, offScale] with
// offScale chosen so that every row is strictly diagonally dominant with the
// requested margin.
type ImplicitSym struct {
	n        int
	seed     uint64
	diagLo   float64
	diagHi   float64
	offScale float64
}

// NewImplicitSym constructs an ImplicitSym of order n. dominance must lie in
// (0,1); the sum of off-diagonal magnitudes in any row is at most
// dominance·diagLo, guaranteeing strict diagonal dominance.
func NewImplicitSym(n int, seed uint64, diagLo, diagHi, dominance float64) (*ImplicitSym, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mat: NewImplicitSym: n = %d", n)
	}
	if !(diagLo > 0) || diagHi < diagLo {
		return nil, fmt.Errorf("mat: NewImplicitSym: bad diagonal range [%g,%g]", diagLo, diagHi)
	}
	if !(dominance > 0 && dominance < 1) {
		return nil, fmt.Errorf("mat: NewImplicitSym: dominance %g not in (0,1)", dominance)
	}
	off := 0.0
	if n > 1 {
		off = dominance * diagLo / float64(n-1)
	}
	return &ImplicitSym{n: n, seed: seed, diagLo: diagLo, diagHi: diagHi, offScale: off}, nil
}

// MustImplicitSym is NewImplicitSym but panics on invalid input.
func MustImplicitSym(n int, seed uint64, diagLo, diagHi, dominance float64) *ImplicitSym {
	w, err := NewImplicitSym(n, seed, diagLo, diagHi, dominance)
	if err != nil {
		panic(err)
	}
	return w
}

// splitmix64 is the SplitMix64 finalizer, a high-quality 64-bit mixer used
// to derive deterministic pseudorandom entries from (seed, i, j).
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit maps a 64-bit hash to a float in [0,1).
func unit(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// At returns the (i,j) entry, computed deterministically from the seed.
func (w *ImplicitSym) At(i, j int) float64 {
	if i == j {
		h := splitmix64(w.seed ^ splitmix64(uint64(i)+1))
		return w.diagLo + unit(h)*(w.diagHi-w.diagLo)
	}
	if i > j {
		i, j = j, i
	}
	h := splitmix64(w.seed ^ splitmix64(uint64(i)*0x100000001b3+uint64(j)+7))
	return (2*unit(h) - 1) * w.offScale
}

func (w *ImplicitSym) Dim() int           { return w.n }
func (w *ImplicitSym) Diag(i int) float64 { return w.At(i, i) }

func (w *ImplicitSym) Row(i int, dst []float64) {
	for j := 0; j < w.n; j++ {
		dst[j] = w.At(i, j)
	}
}

func (w *ImplicitSym) MulVec(dst, x []float64) {
	w.MulVecRange(dst, x, 0, w.n)
}

func (w *ImplicitSym) MulVecRange(dst, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var s float64
		for j := 0; j < w.n; j++ {
			s += w.At(i, j) * x[j]
		}
		dst[i] = s
	}
}

// Materialize converts w into an explicit DenseSym. Useful in tests; the
// result requires n² storage.
func (w *ImplicitSym) Materialize() *DenseSym {
	data := make([]float64, w.n*w.n)
	for i := 0; i < w.n; i++ {
		for j := 0; j < w.n; j++ {
			data[i*w.n+j] = w.At(i, j)
		}
	}
	return MustDenseSym(w.n, data)
}

// DominanceMargin returns the minimum over rows of
// (diag - Σ_{j≠i}|off|) / diag. A positive margin certifies strict diagonal
// dominance (and hence, with positive diagonal, positive definiteness).
func DominanceMargin(w Weight) float64 {
	n := w.Dim()
	row := make([]float64, n)
	margin := math.Inf(1)
	for i := 0; i < n; i++ {
		w.Row(i, row)
		var off float64
		for j, v := range row {
			if j != i {
				off += math.Abs(v)
			}
		}
		d := row[i]
		if d <= 0 {
			return math.Inf(-1)
		}
		if m := (d - off) / d; m < margin {
			margin = m
		}
	}
	return margin
}

// IsStrictlyDiagonallyDominant reports whether every row of w has
// diag > Σ_{j≠i}|off|.
func IsStrictlyDiagonallyDominant(w Weight) bool {
	return DominanceMargin(w) > 0
}
