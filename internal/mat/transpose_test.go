package mat

import "testing"

func TestTranspose(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {3, 5}, {32, 32}, {33, 31}, {70, 100}, {100, 70}} {
		m, n := dims[0], dims[1]
		src := make([]float64, m*n)
		for k := range src {
			src[k] = float64(k)
		}
		dst := make([]float64, m*n)
		Transpose(dst, src, m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				if dst[j*m+i] != src[i*n+j] {
					t.Fatalf("%dx%d: dst[%d][%d] = %g, want %g", m, n, j, i, dst[j*m+i], src[i*n+j])
				}
			}
		}
	}
}

func TestTransposeRangeBands(t *testing.T) {
	m, n := 67, 45
	src := make([]float64, m*n)
	for k := range src {
		src[k] = float64(3*k + 1)
	}
	want := make([]float64, m*n)
	Transpose(want, src, m, n)
	got := make([]float64, m*n)
	// Transposing disjoint bands must reassemble the full transpose.
	for _, band := range [][2]int{{0, 10}, {10, 40}, {40, 67}} {
		TransposeRange(got, src, m, n, band[0], band[1])
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("banded transpose differs at %d: got %g, want %g", k, got[k], want[k])
		}
	}
}

func BenchmarkTranspose500(b *testing.B) {
	m, n := 500, 500
	src := make([]float64, m*n)
	for k := range src {
		src[k] = float64(k)
	}
	dst := make([]float64, m*n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Transpose(dst, src, m, n)
	}
}
