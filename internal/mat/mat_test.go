package mat

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestVecHelpers(t *testing.T) {
	xs := []float64{1, -2, 3}
	ys := []float64{4, 5, -6}
	if got := Sum(xs); got != 2 {
		t.Errorf("Sum = %g, want 2", got)
	}
	if got := Dot(xs, ys); got != 4-10-18 {
		t.Errorf("Dot = %g, want -24", got)
	}
	if got := MaxAbs(xs); got != 3 {
		t.Errorf("MaxAbs = %g, want 3", got)
	}
	if got := MaxAbsDiff(xs, ys); got != 9 {
		t.Errorf("MaxAbsDiff = %g, want 9", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Errorf("Norm2 = %g, want 5", got)
	}
	zs := Clone(xs)
	AXPY(2, ys, zs)
	want := []float64{9, 8, -9}
	for i := range want {
		if zs[i] != want[i] {
			t.Errorf("AXPY[%d] = %g, want %g", i, zs[i], want[i])
		}
	}
	Scale(0.5, zs)
	if zs[0] != 4.5 {
		t.Errorf("Scale failed: %v", zs)
	}
	Fill(zs, 7)
	for _, v := range zs {
		if v != 7 {
			t.Errorf("Fill failed: %v", zs)
		}
	}
	if !AllPositive([]float64{1, 2}) || AllPositive([]float64{1, 0}) {
		t.Error("AllPositive wrong")
	}
	if !AllNonNegative([]float64{0, 2}) || AllNonNegative([]float64{-1}) {
		t.Error("AllNonNegative wrong")
	}
}

func TestVecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot with mismatched lengths did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestDiagonal(t *testing.T) {
	w := MustDiagonal([]float64{2, 3, 4})
	if w.Dim() != 3 {
		t.Fatalf("Dim = %d", w.Dim())
	}
	if w.Diag(1) != 3 {
		t.Errorf("Diag(1) = %g", w.Diag(1))
	}
	dst := make([]float64, 3)
	w.MulVec(dst, []float64{1, 1, 2})
	if dst[0] != 2 || dst[1] != 3 || dst[2] != 8 {
		t.Errorf("MulVec = %v", dst)
	}
	row := make([]float64, 3)
	w.Row(2, row)
	if row[0] != 0 || row[1] != 0 || row[2] != 4 {
		t.Errorf("Row = %v", row)
	}
	if !IsStrictlyDiagonallyDominant(w) {
		t.Error("diagonal matrix should be dominant")
	}
}

func TestNewDiagonalRejectsNonPositive(t *testing.T) {
	for _, bad := range [][]float64{{1, 0}, {-1}, {math.NaN()}, {math.Inf(1)}} {
		if _, err := NewDiagonal(bad); err == nil {
			t.Errorf("NewDiagonal(%v) accepted", bad)
		}
	}
}

func TestUniformDiagonal(t *testing.T) {
	w := UniformDiagonal(4, 2.5)
	for i := 0; i < 4; i++ {
		if w.Diag(i) != 2.5 {
			t.Errorf("Diag(%d) = %g", i, w.Diag(i))
		}
	}
}

func TestDenseSym(t *testing.T) {
	data := []float64{
		4, 1, -1,
		1, 5, 2,
		-1, 2, 6,
	}
	w := MustDenseSym(3, data)
	if w.Diag(2) != 6 {
		t.Errorf("Diag(2) = %g", w.Diag(2))
	}
	if w.At(0, 2) != -1 {
		t.Errorf("At(0,2) = %g", w.At(0, 2))
	}
	x := []float64{1, 2, 3}
	dst := make([]float64, 3)
	w.MulVec(dst, x)
	want := []float64{4 + 2 - 3, 1 + 10 + 6, -1 + 4 + 18}
	for i := range want {
		if math.Abs(dst[i]-want[i]) > 1e-12 {
			t.Errorf("MulVec[%d] = %g, want %g", i, dst[i], want[i])
		}
	}
	if !IsStrictlyDiagonallyDominant(w) {
		t.Error("expected dominant")
	}
}

func TestNewDenseSymRejectsAsymmetric(t *testing.T) {
	if _, err := NewDenseSym(2, []float64{1, 2, 3, 4}); err == nil {
		t.Error("asymmetric matrix accepted")
	}
	if _, err := NewDenseSym(2, []float64{1, 2, 3}); err == nil {
		t.Error("short data accepted")
	}
}

func TestMulVecRangeMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	n := 17
	data := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			data[i*n+j] = v
			data[j*n+i] = v
		}
	}
	w := MustDenseSym(n, data)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	full := make([]float64, n)
	w.MulVec(full, x)
	part := make([]float64, n)
	w.MulVecRange(part, x, 0, 5)
	w.MulVecRange(part, x, 5, 11)
	w.MulVecRange(part, x, 11, n)
	for i := range full {
		if full[i] != part[i] {
			t.Errorf("range product differs at %d: %g vs %g", i, full[i], part[i])
		}
	}
}

func TestImplicitSym(t *testing.T) {
	w := MustImplicitSym(40, 99, 500, 800, 0.9)
	// Symmetry.
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			if w.At(i, j) != w.At(j, i) {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
	// Diagonal range.
	for i := 0; i < 40; i++ {
		d := w.Diag(i)
		if d < 500 || d > 800 {
			t.Errorf("diag %d = %g out of [500,800]", i, d)
		}
	}
	// Strict diagonal dominance by construction.
	if m := DominanceMargin(w); m <= 0 {
		t.Errorf("dominance margin %g <= 0", m)
	}
	// Determinism.
	w2 := MustImplicitSym(40, 99, 500, 800, 0.9)
	if w.At(3, 17) != w2.At(3, 17) {
		t.Error("not deterministic for same seed")
	}
	w3 := MustImplicitSym(40, 100, 500, 800, 0.9)
	if w.At(3, 17) == w3.At(3, 17) {
		t.Error("different seeds gave identical off-diagonal entry")
	}
	// Materialize agrees entrywise and on products.
	d := w.Materialize()
	x := make([]float64, 40)
	for i := range x {
		x[i] = float64(i%5) - 2
	}
	a := make([]float64, 40)
	b := make([]float64, 40)
	w.MulVec(a, x)
	d.MulVec(b, x)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Errorf("materialized product differs at %d", i)
		}
	}
}

func TestImplicitSymValidation(t *testing.T) {
	if _, err := NewImplicitSym(0, 1, 500, 800, 0.9); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewImplicitSym(5, 1, -1, 800, 0.9); err == nil {
		t.Error("negative diagLo accepted")
	}
	if _, err := NewImplicitSym(5, 1, 500, 400, 0.9); err == nil {
		t.Error("diagHi<diagLo accepted")
	}
	if _, err := NewImplicitSym(5, 1, 500, 800, 1.5); err == nil {
		t.Error("dominance>1 accepted")
	}
}

func TestDominanceMarginNegative(t *testing.T) {
	w := MustDenseSym(2, []float64{1, 5, 5, 1})
	if IsStrictlyDiagonallyDominant(w) {
		t.Error("non-dominant matrix passed")
	}
	bad := MustDenseSym(2, []float64{-1, 0, 0, 1})
	if m := DominanceMargin(bad); !math.IsInf(m, -1) {
		t.Errorf("non-positive diagonal should give -Inf margin, got %g", m)
	}
}

// Property: for any vector x, the implicit matrix–vector product is linear:
// W(ax) = a(Wx).
func TestImplicitLinearityProperty(t *testing.T) {
	w := MustImplicitSym(12, 5, 500, 800, 0.5)
	f := func(scale float64) bool {
		if math.IsNaN(scale) || math.IsInf(scale, 0) || math.Abs(scale) > 1e100 {
			return true
		}
		x := make([]float64, 12)
		for i := range x {
			x[i] = float64(i) - 6
		}
		ax := Clone(x)
		Scale(scale, ax)
		wx := make([]float64, 12)
		wax := make([]float64, 12)
		w.MulVec(wx, x)
		w.MulVec(wax, ax)
		for i := range wx {
			if math.Abs(wax[i]-scale*wx[i]) > 1e-6*(1+math.Abs(scale*wx[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDenseMulVec1000(b *testing.B) {
	n := 1000
	w := MustImplicitSym(n, 1, 500, 800, 0.9).Materialize()
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
	}
	dst := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.MulVec(dst, x)
	}
}

func BenchmarkImplicitMulVec1000(b *testing.B) {
	n := 1000
	w := MustImplicitSym(n, 1, 500, 800, 0.9)
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
	}
	dst := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.MulVec(dst, x)
	}
}
