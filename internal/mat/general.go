package mat

import "fmt"

// DenseGeneral is a dense, not necessarily symmetric, square matrix stored
// row-major. It backs the asymmetric interaction matrices of variational
// inequality problems (e.g. asymmetric spatial price equilibrium), which
// have no symmetric-objective equivalent.
type DenseGeneral struct {
	n    int
	data []float64
}

// NewDenseGeneral wraps data (row-major, length n*n).
func NewDenseGeneral(n int, data []float64) (*DenseGeneral, error) {
	if len(data) != n*n {
		return nil, fmt.Errorf("mat: NewDenseGeneral: data length %d != %d", len(data), n*n)
	}
	return &DenseGeneral{n: n, data: data}, nil
}

// MustDenseGeneral is NewDenseGeneral but panics on invalid input.
func MustDenseGeneral(n int, data []float64) *DenseGeneral {
	w, err := NewDenseGeneral(n, data)
	if err != nil {
		panic(err)
	}
	return w
}

func (w *DenseGeneral) Dim() int            { return w.n }
func (w *DenseGeneral) Diag(i int) float64  { return w.data[i*w.n+i] }
func (w *DenseGeneral) At(i, j int) float64 { return w.data[i*w.n+j] }
func (w *DenseGeneral) Row(i int, dst []float64) {
	copy(dst, w.data[i*w.n:(i+1)*w.n])
}

func (w *DenseGeneral) MulVec(dst, x []float64) {
	w.MulVecRange(dst, x, 0, w.n)
}

func (w *DenseGeneral) MulVecRange(dst, x []float64, lo, hi int) {
	n := w.n
	for i := lo; i < hi; i++ {
		row := w.data[i*n : (i+1)*n]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// Interface check: DenseGeneral provides everything a Weight does, though
// using a non-symmetric matrix as an objective weight is the caller's
// responsibility (the VI solvers use it as an operator Jacobian instead).
var _ Weight = (*DenseGeneral)(nil)
