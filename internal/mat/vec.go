// Package mat provides the small dense linear-algebra substrate needed by
// the splitting equilibration algorithm: vectors and symmetric weight
// matrices (the A, B and G matrices of the constrained matrix problem).
//
// Weight matrices come in three physical representations: Diagonal (the
// diagonal problems of the paper's Section 4), DenseSym (the fully dense
// variance–covariance-style matrices of Section 5, up to 14400×14400), and
// ImplicitSym (a seeded, storage-free dense matrix for experiments whose G
// would not fit in memory). All satisfy the Weight interface.
package mat

import "math"

// Sum returns the sum of the elements of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s
}

// Dot returns the inner product of xs and ys, which must have equal length.
func Dot(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("mat: Dot length mismatch")
	}
	var s float64
	for i, v := range xs {
		s += v * ys[i]
	}
	return s
}

// AXPY computes dst[i] += a*x[i] for all i.
func AXPY(a float64, x, dst []float64) {
	if len(x) != len(dst) {
		panic("mat: AXPY length mismatch")
	}
	for i, v := range x {
		dst[i] += a * v
	}
}

// MaxAbs returns max_i |xs[i]|, or 0 for an empty slice.
func MaxAbs(xs []float64) float64 {
	var m float64
	for _, v := range xs {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// MaxAbsDiff returns max_i |xs[i]-ys[i]|. The slices must have equal length.
func MaxAbsDiff(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("mat: MaxAbsDiff length mismatch")
	}
	var m float64
	for i, v := range xs {
		if a := math.Abs(v - ys[i]); a > m {
			m = a
		}
	}
	return m
}

// Norm2 returns the Euclidean norm of xs.
func Norm2(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v * v
	}
	return math.Sqrt(s)
}

// Fill sets every element of xs to v.
func Fill(xs []float64, v float64) {
	for i := range xs {
		xs[i] = v
	}
}

// Scale multiplies every element of xs by a.
func Scale(a float64, xs []float64) {
	for i := range xs {
		xs[i] *= a
	}
}

// Clone returns a fresh copy of xs.
func Clone(xs []float64) []float64 {
	ys := make([]float64, len(xs))
	copy(ys, xs)
	return ys
}

// AllPositive reports whether every element of xs is strictly positive.
func AllPositive(xs []float64) bool {
	for _, v := range xs {
		if !(v > 0) {
			return false
		}
	}
	return true
}

// AllNonNegative reports whether every element of xs is >= 0.
func AllNonNegative(xs []float64) bool {
	for _, v := range xs {
		if v < 0 {
			return false
		}
	}
	return true
}
