package parsim

import (
	"math/rand/v2"
	"testing"

	"sea/internal/core"
)

// plain returns a machine with no overheads, for exact-arithmetic checks.
func plain(procs int) Machine { return Machine{Procs: procs} }

func TestPhaseMakespanSerial(t *testing.T) {
	m := plain(1)
	if got := m.PhaseMakespan([]int64{3, 4, 5}); got != 12 {
		t.Errorf("serial makespan = %d, want 12", got)
	}
	if got := m.PhaseMakespan(nil); got != 0 {
		t.Errorf("empty phase = %d, want 0", got)
	}
}

func TestPhaseMakespanLPT(t *testing.T) {
	m := plain(2)
	// LPT on {5,4,3,3,3}: P1={5,3}, P2={4,3,3} → makespan 10.
	if got := m.PhaseMakespan([]int64{3, 3, 5, 4, 3}); got != 10 {
		t.Errorf("LPT makespan = %d, want 10", got)
	}
	// Perfectly divisible equal tasks.
	m4 := plain(4)
	tasks := make([]int64, 8)
	for i := range tasks {
		tasks[i] = 7
	}
	if got := m4.PhaseMakespan(tasks); got != 14 {
		t.Errorf("equal-task makespan = %d, want 14", got)
	}
}

func TestMakespanBounds(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.IntN(50)
		tasks := make([]int64, n)
		var total, max int64
		for i := range tasks {
			tasks[i] = int64(1 + rng.IntN(1000))
			total += tasks[i]
			if tasks[i] > max {
				max = tasks[i]
			}
		}
		for _, p := range []int{1, 2, 3, 6} {
			got := plain(p).PhaseMakespan(tasks)
			lower := total / int64(p)
			if max > lower {
				lower = max
			}
			if got < lower || got > total {
				t.Fatalf("p=%d: makespan %d outside [%d,%d]", p, got, lower, total)
			}
		}
	}
}

func TestMakespanMonotoneInProcs(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	tasks := make([]int64, 100)
	for i := range tasks {
		tasks[i] = int64(1 + rng.IntN(10000))
	}
	prev := plain(1).PhaseMakespan(tasks)
	for p := 2; p <= 8; p++ {
		cur := plain(p).PhaseMakespan(tasks)
		if cur > prev {
			t.Fatalf("makespan increased from %d to %d at p=%d", prev, cur, p)
		}
		prev = cur
	}
}

func makeTrace(iters, m, n int, taskCost, serial int64) *core.CostTrace {
	tr := &core.CostTrace{}
	for t := 0; t < iters; t++ {
		ph := core.PhaseCosts{Row: make([]int64, m), Col: make([]int64, n), Serial: serial}
		for i := range ph.Row {
			ph.Row[i] = taskCost
		}
		for j := range ph.Col {
			ph.Col[j] = taskCost
		}
		tr.Phases = append(tr.Phases, ph)
	}
	return tr
}

func TestExecute(t *testing.T) {
	tr := makeTrace(2, 4, 4, 10, 5)
	// Per iteration: row 40 + col 40 + serial 5; two iterations = 170.
	if got := plain(1).Execute(tr); got != 170 {
		t.Errorf("Execute(1) = %d, want 170", got)
	}
	// p=4: row 10 + col 10 + serial 5 = 25 per iteration → 50.
	if got := plain(4).Execute(tr); got != 50 {
		t.Errorf("Execute(4) = %d, want 50", got)
	}
}

func TestSpeedupsShape(t *testing.T) {
	// A big parallel load with a small serial phase: speedups near-linear
	// but decaying with N, efficiency decreasing — the Table 6 shape.
	tr := makeTrace(1, 1000, 1000, 20_000, 1_000_000)
	ms := Speedups(tr, []int{2, 4, 6})
	if len(ms) != 3 {
		t.Fatal("wrong measurement count")
	}
	prevS, prevE := 1.0, 1.01
	for _, mrow := range ms {
		if mrow.Speedup <= prevS {
			t.Errorf("speedup not increasing: %+v", ms)
		}
		if mrow.Efficiency >= prevE {
			t.Errorf("efficiency not decreasing: %+v", ms)
		}
		if mrow.Speedup > float64(mrow.Procs) {
			t.Errorf("superlinear speedup: %+v", mrow)
		}
		prevS, prevE = mrow.Speedup, mrow.Efficiency
	}
	// With this serial share, the 2-CPU speedup should be in the paper's
	// band (~1.8–1.97).
	if ms[0].Speedup < 1.7 || ms[0].Speedup > 2.0 {
		t.Errorf("2-CPU speedup %g outside plausible band", ms[0].Speedup)
	}
}

func TestSerialDominatedTraceNoSpeedup(t *testing.T) {
	tr := makeTrace(1, 2, 2, 10, 1_000_000)
	ms := Speedups(tr, []int{6})
	if ms[0].Speedup > 1.05 {
		t.Errorf("serial-dominated trace sped up %gx", ms[0].Speedup)
	}
}

func TestMoreIterationsMoreOverhead(t *testing.T) {
	// Same total work split over many iterations suffers more fork/join
	// overhead — the reason the paper's elastic examples show lower
	// efficiency than the fixed ones.
	few := makeTrace(1, 500, 500, 100_000, 250_000)
	many := makeTrace(100, 500, 500, 1_000, 2_500)
	sFew := Speedups(few, []int{6})[0].Speedup
	sMany := Speedups(many, []int{6})[0].Speedup
	if sMany >= sFew {
		t.Errorf("many-phase trace sped up %g >= few-phase %g", sMany, sFew)
	}
}

func TestDefaultMachine(t *testing.T) {
	m := DefaultMachine(4)
	if m.Procs != 4 || m.ForkJoinBase <= 0 || m.TaskOverhead <= 0 {
		t.Errorf("DefaultMachine misconfigured: %+v", m)
	}
}

// TestLPTApproximationBound: LPT is a (4/3 − 1/(3p))-approximation of the
// optimal makespan; with the trivial lower bounds (max task, total/p) this
// gives a checkable certificate on random instances.
func TestLPTApproximationBound(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for trial := 0; trial < 40; trial++ {
		p := 2 + rng.IntN(6)
		n := p + rng.IntN(40)
		tasks := make([]int64, n)
		var total, max int64
		for i := range tasks {
			tasks[i] = int64(1 + rng.IntN(1000))
			total += tasks[i]
			if tasks[i] > max {
				max = tasks[i]
			}
		}
		got := plain(p).PhaseMakespan(tasks)
		lower := total / int64(p)
		if max > lower {
			lower = max
		}
		bound := float64(lower) * (4.0/3.0 - 1.0/(3.0*float64(p)))
		// +1 absorbs the integer division in the lower bound.
		if float64(got) > bound+float64(max) {
			t.Fatalf("trial %d: LPT makespan %d exceeds approximation bound %g (lower %d)",
				trial, got, bound, lower)
		}
	}
}

// TestCheckPhasePiggybacks: a parallelized convergence check must not be
// charged fork/join overhead.
func TestCheckPhasePiggybacks(t *testing.T) {
	m := DefaultMachine(4)
	tr := &core.CostTrace{Phases: []core.PhaseCosts{{
		Row:   []int64{100, 100, 100, 100},
		Check: []int64{10, 10, 10, 10},
	}}}
	withCheck := m.Execute(tr)
	trNo := &core.CostTrace{Phases: []core.PhaseCosts{{
		Row: []int64{100, 100, 100, 100},
	}}}
	without := m.Execute(trNo)
	// The check should add only its makespan (~10 + task overhead), not a
	// second fork/join block.
	delta := withCheck - without
	if delta <= 0 || delta > 10+2*m.TaskOverhead {
		t.Errorf("check phase delta = %d, want small (no fork/join)", delta)
	}
}

func TestSerialFraction(t *testing.T) {
	tr := makeTrace(2, 2, 2, 10, 20)
	// Per iteration: 40 parallel + 20 serial → serial share = 40/120.
	got := SerialFraction(tr)
	want := 40.0 / 120.0
	if got != want {
		t.Errorf("SerialFraction = %g, want %g", got, want)
	}
	if SerialFraction(&core.CostTrace{}) != 0 {
		t.Error("empty trace should be 0")
	}
}
