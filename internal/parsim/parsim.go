// Package parsim simulates a shared-memory multiprocessor executing the
// phase structure of an equilibration algorithm — the stand-in for the
// paper's six-CPU IBM 3090-600E (see DESIGN.md, substitution 1).
//
// The simulator consumes a core.CostTrace recorded by an instrumented solve:
// for every iteration it knows the operation cost of each independent row
// and column equilibration task and of the serial convergence-verification
// phase. Executing the trace on N virtual processors schedules each parallel
// phase with longest-processing-time list scheduling, charges a fork/join
// dispatch overhead per parallel phase (the Parallel FORTRAN task-allocation
// cost), and runs serial phases on one processor. Speedup and efficiency
// are then ratios of simulated makespans, exactly as the paper computes them
// from elapsed times.
package parsim

import (
	"container/heap"
	"sort"

	"sea/internal/core"
)

// Machine is the simulated multiprocessor configuration.
type Machine struct {
	// Procs is the number of processors N.
	Procs int
	// ForkJoinBase and ForkJoinPerProc model the serial dispatch/barrier
	// cost of one parallel phase: Base + PerProc·N operations. The defaults
	// are calibrated so the diagonal speedup experiments land in the
	// paper's Table 6 band.
	ForkJoinBase    int64
	ForkJoinPerProc int64
	// TaskOverhead is added to every scheduled task (per-task dispatch).
	TaskOverhead int64
}

// DefaultMachine returns the calibrated machine model with N processors.
func DefaultMachine(procs int) Machine {
	return Machine{
		Procs:           procs,
		ForkJoinBase:    100_000,
		ForkJoinPerProc: 50_000,
		TaskOverhead:    50,
	}
}

// loadHeap is a min-heap of processor loads.
type loadHeap []int64

func (h loadHeap) Len() int            { return len(h) }
func (h loadHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h loadHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *loadHeap) Push(x interface{}) { *h = append(*h, x.(int64)) }
func (h *loadHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// PhaseMakespan returns the simulated duration of one parallel phase: LPT
// list scheduling of the tasks onto Procs processors, plus the fork/join
// overhead. A phase with no tasks costs nothing.
func (m Machine) PhaseMakespan(tasks []int64) int64 {
	if len(tasks) == 0 {
		return 0
	}
	procs := m.Procs
	if procs < 1 {
		procs = 1
	}
	overhead := int64(0)
	if procs > 1 {
		overhead = m.ForkJoinBase + m.ForkJoinPerProc*int64(procs)
	}
	if procs == 1 {
		var total int64
		for _, t := range tasks {
			total += t + m.TaskOverhead
		}
		return total + overhead
	}
	// LPT: largest tasks first onto the least-loaded processor.
	sorted := make([]int64, len(tasks))
	copy(sorted, tasks)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	h := make(loadHeap, procs)
	heap.Init(&h)
	for _, t := range sorted {
		least := heap.Pop(&h).(int64)
		heap.Push(&h, least+t+m.TaskOverhead)
	}
	var makespan int64
	for _, load := range h {
		if load > makespan {
			makespan = load
		}
	}
	return makespan + overhead
}

// Execute returns the simulated duration of the whole trace: for each
// recorded iteration, the row phase and the column phase run as separate
// parallel phases (the column equilibrations need the row multipliers, so
// there is a barrier between them), followed by the serial phase.
func (m Machine) Execute(tr *core.CostTrace) int64 {
	// A parallelized convergence check (ph.Check) piggybacks on the workers
	// the column phase already dispatched, so it pays no additional
	// fork/join cost — only its own makespan.
	check := m
	check.ForkJoinBase, check.ForkJoinPerProc = 0, 0
	var total int64
	for _, ph := range tr.Phases {
		total += m.PhaseMakespan(ph.Row)
		total += m.PhaseMakespan(ph.Col)
		total += check.PhaseMakespan(ph.Check)
		total += ph.Serial
	}
	return total
}

// Measurement is one row of a speedup table.
type Measurement struct {
	Procs      int
	Makespan   int64
	Speedup    float64
	Efficiency float64
}

// Speedups executes the trace on 1 processor and on each requested N,
// returning the paper's S_N = T₁/T_N and E_N = S_N/N.
func Speedups(tr *core.CostTrace, procs []int) []Measurement {
	t1 := DefaultMachine(1).Execute(tr)
	out := make([]Measurement, 0, len(procs))
	for _, n := range procs {
		tn := DefaultMachine(n).Execute(tr)
		s := float64(t1) / float64(tn)
		out = append(out, Measurement{
			Procs:      n,
			Makespan:   tn,
			Speedup:    s,
			Efficiency: s / float64(n),
		})
	}
	return out
}

// SerialFraction returns the share of the trace's total operations spent in
// serial phases — the Amdahl bound's input: S_∞ ≤ 1/SerialFraction.
func SerialFraction(tr *core.CostTrace) float64 {
	var serial, total int64
	for _, ph := range tr.Phases {
		serial += ph.Serial
		for _, v := range ph.Row {
			total += v
		}
		for _, v := range ph.Col {
			total += v
		}
		for _, v := range ph.Check {
			total += v
		}
	}
	total += serial
	if total == 0 {
		return 0
	}
	return float64(serial) / float64(total)
}
