package core

import (
	"fmt"
	"math"
	"sort"
)

// Storage identifies the memory layout of a problem's per-cell data (X0,
// Gamma, Upper, Lower).
type Storage int

const (
	// Dense is the classical layout: flat row-major []float64 of length m·n.
	Dense Storage = iota
	// CSR stores only the prior's support: a row-pointer/column-index
	// pattern plus value arrays of length nnz. Cells outside the support are
	// structurally zero — pinned at x = 0 — and are skipped by both
	// equilibration phases, so per-iteration cost and resident memory scale
	// with nnz instead of m·n.
	CSR
)

func (s Storage) String() string {
	switch s {
	case Dense:
		return "dense"
	case CSR:
		return "csr"
	default:
		return fmt.Sprintf("Storage(%d)", int(s))
	}
}

// Pattern is the sparsity pattern of a CSR problem: RowPtr has length m+1
// with RowPtr[i] ≤ RowPtr[i+1], and ColIdx[RowPtr[i]:RowPtr[i+1]] holds row
// i's column indices in strictly increasing order (no duplicates). Every
// per-cell array of the problem (X0, Gamma, Upper, Lower) is indexed by the
// same positions, so cell k of a CSR problem lives at row i with
// RowPtr[i] ≤ k < RowPtr[i+1] and column ColIdx[k].
//
// A Pattern is immutable once attached to a problem: solver state caches
// derived structures (the column mirror) keyed by the pattern's identity.
type Pattern struct {
	RowPtr []int
	ColIdx []int32
}

// Nnz returns the number of stored cells.
func (pt *Pattern) Nnz() int { return len(pt.ColIdx) }

// RowNnz returns the number of stored cells in row i.
func (pt *Pattern) RowNnz(i int) int { return pt.RowPtr[i+1] - pt.RowPtr[i] }

// Validate checks the pattern's structural invariants against an m×n shape:
// row-pointer length and monotonicity, column indices in range and strictly
// increasing within each row (which also rejects duplicate entries).
func (pt *Pattern) Validate(m, n int) error {
	if pt == nil {
		return fmt.Errorf("core: nil pattern")
	}
	if len(pt.RowPtr) != m+1 {
		return fmt.Errorf("core: len(RowPtr) = %d, want m+1 = %d", len(pt.RowPtr), m+1)
	}
	if pt.RowPtr[0] != 0 {
		return fmt.Errorf("core: RowPtr[0] = %d, want 0", pt.RowPtr[0])
	}
	if pt.RowPtr[m] != len(pt.ColIdx) {
		return fmt.Errorf("core: RowPtr[%d] = %d, want len(ColIdx) = %d", m, pt.RowPtr[m], len(pt.ColIdx))
	}
	if n > math.MaxInt32 {
		return fmt.Errorf("core: column count %d exceeds the CSR index range", n)
	}
	for i := 0; i < m; i++ {
		lo, hi := pt.RowPtr[i], pt.RowPtr[i+1]
		if lo > hi {
			return fmt.Errorf("core: RowPtr not monotone at row %d: %d > %d", i, lo, hi)
		}
		prev := int32(-1)
		for k := lo; k < hi; k++ {
			c := pt.ColIdx[k]
			if c < 0 || int(c) >= n {
				return fmt.Errorf("core: ColIdx[%d] = %d out of range [0,%d)", k, c, n)
			}
			if c <= prev {
				if c == prev {
					return fmt.Errorf("core: duplicate column %d in row %d", c, i)
				}
				return fmt.Errorf("core: ColIdx out of order in row %d: %d after %d", i, c, prev)
			}
			prev = c
		}
	}
	return nil
}

// Cell returns the (row, column) coordinates of stored position k.
func (pt *Pattern) Cell(k int) (i, j int) {
	i = sort.Search(len(pt.RowPtr)-1, func(r int) bool { return pt.RowPtr[r+1] > k })
	return i, int(pt.ColIdx[k])
}

// Triplets expands the pattern into parallel row/column index arrays in
// stored (row-major) order — the wire form used by the sparse JSON encoding.
func (pt *Pattern) Triplets() (rows, cols []int) {
	nnz := pt.Nnz()
	rows = make([]int, nnz)
	cols = make([]int, nnz)
	for i := 0; i < len(pt.RowPtr)-1; i++ {
		for k := pt.RowPtr[i]; k < pt.RowPtr[i+1]; k++ {
			rows[k] = i
			cols[k] = int(pt.ColIdx[k])
		}
	}
	return rows, cols
}

// NewPatternFromTriplets builds a Pattern from parallel row/column index
// arrays. The triplets must already be in canonical stored order — row-major,
// strictly increasing column within each row — which is what Triplets (and
// the JSON writer) emit; disordered or duplicate entries are rejected rather
// than silently sorted, so the encoding stays a fixed point.
func NewPatternFromTriplets(m, n int, rows, cols []int) (*Pattern, error) {
	if len(rows) != len(cols) {
		return nil, fmt.Errorf("core: len(rows) = %d but len(cols) = %d", len(rows), len(cols))
	}
	pt := &Pattern{
		RowPtr: make([]int, m+1),
		ColIdx: make([]int32, len(cols)),
	}
	prevRow, prevCol := 0, -1
	for k, r := range rows {
		c := cols[k]
		if r < 0 || r >= m || c < 0 || c >= n {
			return nil, fmt.Errorf("core: triplet %d = (%d,%d) out of range %d×%d", k, r, c, m, n)
		}
		if r < prevRow || (r == prevRow && c <= prevCol) {
			return nil, fmt.Errorf("core: triplet %d = (%d,%d) breaks canonical row-major order after (%d,%d)",
				k, r, c, prevRow, prevCol)
		}
		if r > prevRow {
			for i := prevRow; i < r; i++ {
				pt.RowPtr[i+1] = k
			}
			prevCol = -1
		}
		pt.ColIdx[k] = int32(c)
		prevRow, prevCol = r, c
	}
	for i := prevRow; i < m; i++ {
		pt.RowPtr[i+1] = len(cols)
	}
	return pt, nil
}

// Storage returns the problem's storage layout.
func (p *DiagonalProblem) Storage() Storage {
	if p.Pattern != nil {
		return CSR
	}
	return Dense
}

// Nnz returns the number of stored cells: the pattern's nnz for CSR
// problems, m·n for dense ones.
func (p *DiagonalProblem) Nnz() int {
	if p.Pattern != nil {
		return p.Pattern.Nnz()
	}
	return p.M * p.N
}

// Clone returns a deep copy of the problem: every slice is copied, and a CSR
// problem's pattern is copied too (patterns are immutable, but a clone must
// not be invalidated by the original's owner mutating arrays in place).
func (p *DiagonalProblem) Clone() *DiagonalProblem {
	q := *p
	q.X0 = cloneF(p.X0)
	q.Gamma = cloneF(p.Gamma)
	q.S0 = cloneF(p.S0)
	q.D0 = cloneF(p.D0)
	q.Alpha = cloneF(p.Alpha)
	q.Beta = cloneF(p.Beta)
	q.SLo, q.SHi = cloneF(p.SLo), cloneF(p.SHi)
	q.DLo, q.DHi = cloneF(p.DLo), cloneF(p.DHi)
	q.Upper = cloneF(p.Upper)
	q.Lower = cloneF(p.Lower)
	if p.Pattern != nil {
		q.Pattern = &Pattern{
			RowPtr: append([]int(nil), p.Pattern.RowPtr...),
			ColIdx: append([]int32(nil), p.Pattern.ColIdx...),
		}
	}
	return &q
}

func cloneF(s []float64) []float64 {
	if s == nil {
		return nil
	}
	return append([]float64(nil), s...)
}

// Sparsify converts a dense problem to CSR over its support: the cells NOT
// structurally pinned at zero (Upper = 0 with lower bound 0). The conversion
// is semantics-preserving — a pinned-at-zero cell contributes nothing to the
// objective's optimum or the constraints — and solving the CSR form yields
// bit-identical X (on the support), S, D, multipliers, and iteration counts.
// A problem with no Upper bounds has full support, so sparsifying it is
// legal but saves nothing. CSR problems are returned unchanged.
func (p *DiagonalProblem) Sparsify() (*DiagonalProblem, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Pattern != nil {
		return p, nil
	}
	m, n := p.M, p.N
	pinned := func(k int) bool {
		if p.Upper == nil || p.Upper[k] != 0 {
			return false
		}
		return p.Lower == nil || p.Lower[k] == 0
	}
	nnz := 0
	for k := range p.X0 {
		if !pinned(k) {
			nnz++
		}
	}
	pt := &Pattern{RowPtr: make([]int, m+1), ColIdx: make([]int32, 0, nnz)}
	q := &DiagonalProblem{
		M: m, N: n, Kind: p.Kind,
		X0:    make([]float64, 0, nnz),
		Gamma: make([]float64, 0, nnz),
		S0:    cloneF(p.S0), D0: cloneF(p.D0),
		Alpha: cloneF(p.Alpha), Beta: cloneF(p.Beta),
		SLo: cloneF(p.SLo), SHi: cloneF(p.SHi),
		DLo: cloneF(p.DLo), DHi: cloneF(p.DHi),
		Pattern: pt,
	}
	if p.Upper != nil {
		q.Upper = make([]float64, 0, nnz)
	}
	if p.Lower != nil {
		q.Lower = make([]float64, 0, nnz)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			k := i*n + j
			if pinned(k) {
				continue
			}
			pt.ColIdx = append(pt.ColIdx, int32(j))
			q.X0 = append(q.X0, p.X0[k])
			q.Gamma = append(q.Gamma, p.Gamma[k])
			if q.Upper != nil {
				q.Upper = append(q.Upper, p.Upper[k])
			}
			if q.Lower != nil {
				q.Lower = append(q.Lower, p.Lower[k])
			}
		}
		pt.RowPtr[i+1] = len(pt.ColIdx)
	}
	// Canonicalize vacuous bounds so sparsify∘densify is the identity on CSR
	// problems that had none: a support Upper of all +Inf (or Lower of all
	// zeros) encodes no constraint.
	if q.Upper != nil && allInf(q.Upper) {
		q.Upper = nil
	}
	if q.Lower != nil && allZero(q.Lower) {
		q.Lower = nil
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("core: sparsify produced an invalid problem: %w", err)
	}
	return q, nil
}

// Densify expands a CSR problem to the dense layout. Cells outside the
// support get X0 = 0, Gamma = 1, and the box [0, 0] (Upper = 0) — the
// explicit form of the structural pin — so the densified problem has exactly
// the same optimum, and (because the equilibration kernel skips pinned
// variables when building its breakpoint events) solves to bit-identical
// X/S/D and iteration counts. Dense problems are returned unchanged.
func (p *DiagonalProblem) Densify() (*DiagonalProblem, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Pattern == nil {
		return p, nil
	}
	m, n := p.M, p.N
	if n != 0 && m > math.MaxInt/n {
		return nil, fmt.Errorf("core: densify: dimensions %d×%d overflow", m, n)
	}
	pt := p.Pattern
	q := &DiagonalProblem{
		M: m, N: n, Kind: p.Kind,
		X0:    make([]float64, m*n),
		Gamma: make([]float64, m*n),
		Upper: make([]float64, m*n),
		S0:    cloneF(p.S0), D0: cloneF(p.D0),
		Alpha: cloneF(p.Alpha), Beta: cloneF(p.Beta),
		SLo: cloneF(p.SLo), SHi: cloneF(p.SHi),
		DLo: cloneF(p.DLo), DHi: cloneF(p.DHi),
	}
	for k := range q.Gamma {
		q.Gamma[k] = 1 // holes need a valid positive weight; x is pinned there anyway
	}
	if p.Lower != nil {
		q.Lower = make([]float64, m*n)
	}
	for i := 0; i < m; i++ {
		for k := pt.RowPtr[i]; k < pt.RowPtr[i+1]; k++ {
			d := i*n + int(pt.ColIdx[k])
			q.X0[d] = p.X0[k]
			q.Gamma[d] = p.Gamma[k]
			if p.Upper != nil {
				q.Upper[d] = p.Upper[k]
			} else {
				q.Upper[d] = math.Inf(1)
			}
			if p.Lower != nil {
				q.Lower[d] = p.Lower[k]
			}
		}
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("core: densify produced an invalid problem: %w", err)
	}
	return q, nil
}

// SupportDensity returns the fraction of the m×n cells in the problem's
// support: Nnz/(m·n) for CSR storage, and for dense storage the fraction of
// cells not structurally pinned at zero by the bounds — the density Sparsify
// would produce.
func (p *DiagonalProblem) SupportDensity() float64 {
	if p.Pattern != nil {
		return float64(p.Pattern.Nnz()) / (float64(p.M) * float64(p.N))
	}
	nnz := 0
	for k := range p.X0 {
		if p.Upper == nil || p.Upper[k] != 0 || (p.Lower != nil && p.Lower[k] != 0) {
			nnz++
		}
	}
	return float64(nnz) / (float64(p.M) * float64(p.N))
}

func allInf(s []float64) bool {
	for _, v := range s {
		if !math.IsInf(v, 1) {
			return false
		}
	}
	return true
}

func allZero(s []float64) bool {
	for _, v := range s {
		if v != 0 {
			return false
		}
	}
	return true
}

// resizeI returns buf with length n, reallocating only when capacity is
// short (the []int counterpart of resizeF).
func resizeI(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// resizeI32 is resizeI for []int32.
func resizeI32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}
