package core

import (
	"fmt"

	"sea/internal/equilibrate"
)

// Sparse (CSR) phase bodies. Each row subproblem works on the row's stored
// segment of the flat per-cell arrays; each column subproblem works on the
// CSC mirror segment built by buildCSC. Structural zeros never enter a
// kernel call, so per-iteration cost is O(nnz) — and because the kernel
// skips pinned (u = l) variables, a densified copy of the same problem walks
// a bit-identical event stream and produces bit-identical iterates.

// rowChunkSparse is the CSR row-phase body for one worker's index range.
func (st *diagState) rowChunkSparse(chunk, lo, hi int) {
	if st.useBatch {
		st.rowChunkBatchedSparse(chunk, lo, hi)
		return
	}
	p, o := st.p, st.o
	pt := st.pat
	ws := st.workspaces[chunk]
	ph := st.curPH
	for i := lo; i < hi; i++ {
		s, e := pt.RowPtr[i], pt.RowPtr[i+1]
		w := e - s
		x0 := p.X0[s:e]
		a := st.aRow[s:e]
		cols := pt.ColIdx[s:e]
		c, _ := ws.Scratch(w)
		for t := 0; t < w; t++ {
			c[t] = x0[t] + a[t]*st.mu[cols[t]]
		}
		prob := equilibrate.Problem{C: c, A: a}
		if p.Upper != nil {
			prob.U = p.Upper[s:e]
		}
		if p.Lower != nil {
			prob.L = p.Lower[s:e]
		}
		switch p.Kind {
		case FixedTotals:
			prob.R = p.S0[i]
		case ElasticTotals:
			prob.E = 0.5 / p.Alpha[i]
			prob.R = p.S0[i]
		case Balanced:
			el := 0.5 / p.Alpha[i]
			prob.E = el
			prob.R = p.S0[i] - el*st.mu[i]
		}
		var est *equilibrate.State
		if st.curRowStates != nil {
			est = &st.curRowStates[i]
		}
		var res equilibrate.Result
		var err error
		if p.Kind == IntervalTotals {
			res, err = prob.SolveIntervalState(p.SLo[i], p.SHi[i], st.x[s:e], ws, est)
		} else if o.Kernel == KernelBisection {
			res, err = prob.SolveBisection(st.x[s:e], o.KernelTol)
		} else {
			res, err = prob.SolveState(st.x[s:e], ws, est)
		}
		if err != nil {
			if st.errs[chunk] == nil {
				st.errs[chunk] = fmt.Errorf("row %d: %w", i, err)
			}
			return
		}
		st.lambda[i] = res.Lambda
		st.rowSum[i] = res.Total
		cost := res.Ops + int64(2*w)
		if ph != nil {
			ph.Row[i] = cost
		}
		if o.Counters != nil {
			o.Counters.Equilibrations.Add(1)
			o.Counters.Ops.Add(cost)
		}
	}
}

// sparseBatchEnd returns the end of the batch starting at lo: as many
// subproblems as fit the event budget given their actual stored widths
// (spans(k) returning subproblem k's storage segment), always at least one,
// capped at maxBatchRows.
func sparseBatchEnd(lo, hi, perEntry, target int, spans func(int) (int, int)) int {
	events := 0
	end := lo
	for end < hi {
		s, e := spans(end)
		ev := perEntry * (e - s)
		if end > lo && (events+ev > target || end-lo >= maxBatchRows) {
			break
		}
		events += ev
		end++
	}
	return end
}

// rowChunkBatchedSparse is the batched CSR row-phase body; like
// rowChunkBatched it is bit-exact with the solo body, so batching is purely
// a throughput decision. Batches are sized by cumulative row nnz, not row
// count, so skewed supports cannot blow the event budget.
func (st *diagState) rowChunkBatchedSparse(chunk, lo, hi int) {
	p, o := st.p, st.o
	pt := st.pat
	b := st.batches[chunk]
	ph := st.curPH
	perEntry := 1
	if p.Upper != nil {
		perEntry = 2
	}
	rowSpan := func(i int) (int, int) { return pt.RowPtr[i], pt.RowPtr[i+1] }
	for lo < hi {
		end := sparseBatchEnd(lo, hi, perEntry, st.batchTarget, rowSpan)
		b.Reset()
		for i := lo; i < end; i++ {
			s, e := pt.RowPtr[i], pt.RowPtr[i+1]
			w := e - s
			x0 := p.X0[s:e]
			a := st.aRow[s:e]
			cols := pt.ColIdx[s:e]
			c := b.Coef(w)
			for t := 0; t < w; t++ {
				c[t] = x0[t] + a[t]*st.mu[cols[t]]
			}
			prob := equilibrate.Problem{C: c, A: a}
			if p.Upper != nil {
				prob.U = p.Upper[s:e]
			}
			if p.Lower != nil {
				prob.L = p.Lower[s:e]
			}
			switch p.Kind {
			case FixedTotals:
				prob.R = p.S0[i]
			case ElasticTotals:
				prob.E = 0.5 / p.Alpha[i]
				prob.R = p.S0[i]
			case Balanced:
				el := 0.5 / p.Alpha[i]
				prob.E = el
				prob.R = p.S0[i] - el*st.mu[i]
			}
			var est *equilibrate.State
			if st.curRowStates != nil {
				est = &st.curRowStates[i]
			}
			var err error
			if p.Kind == IntervalTotals {
				err = b.AddInterval(&prob, p.SLo[i], p.SHi[i], st.x[s:e], est)
			} else {
				err = b.Add(&prob, st.x[s:e], est)
			}
			if err != nil {
				if st.errs[chunk] == nil {
					st.errs[chunk] = fmt.Errorf("row %d: %w", i, err)
				}
				return
			}
		}
		if bad, err := b.Solve(); err != nil {
			if st.errs[chunk] == nil {
				st.errs[chunk] = fmt.Errorf("row %d: %w", lo+bad, err)
			}
			return
		}
		var costSum int64
		for i := lo; i < end; i++ {
			res := b.Result(i - lo)
			st.lambda[i] = res.Lambda
			st.rowSum[i] = res.Total
			cost := res.Ops + int64(2*(pt.RowPtr[i+1]-pt.RowPtr[i]))
			costSum += cost
			if ph != nil {
				ph.Row[i] = cost
			}
		}
		if o.Counters != nil {
			o.Counters.Equilibrations.Add(int64(end - lo))
			o.Counters.Ops.Add(costSum)
		}
		lo = end
	}
}

// colChunkSparse is the CSR column-phase body for one worker's index range,
// working entirely on the CSC mirror.
func (st *diagState) colChunkSparse(chunk, lo, hi int) {
	if st.useBatch {
		st.colChunkBatchedSparse(chunk, lo, hi)
		return
	}
	p, o := st.p, st.o
	ws := st.workspaces[chunk]
	ph := st.curPH
	for j := lo; j < hi; j++ {
		s, e := st.cscPtr[j], st.cscPtr[j+1]
		w := e - s
		x0c := st.x0T[s:e]
		a := st.aT[s:e]
		rows := st.cscRow[s:e]
		c, _ := ws.Scratch(w)
		for t := 0; t < w; t++ {
			c[t] = x0c[t] + a[t]*st.lambda[rows[t]]
		}
		prob := equilibrate.Problem{C: c, A: a}
		if st.upperT != nil {
			prob.U = st.upperT[s:e]
		}
		if st.lowerT != nil {
			prob.L = st.lowerT[s:e]
		}
		switch p.Kind {
		case FixedTotals:
			prob.R = p.D0[j]
		case ElasticTotals:
			prob.E = 0.5 / p.Beta[j]
			prob.R = p.D0[j]
		case Balanced:
			el := 0.5 / p.Alpha[j]
			prob.E = el
			prob.R = p.S0[j] - el*st.lambda[j]
		}
		var est *equilibrate.State
		if st.curColStates != nil {
			est = &st.curColStates[j]
		}
		xcol := st.xT[s:e]
		var res equilibrate.Result
		var err error
		if p.Kind == IntervalTotals {
			res, err = prob.SolveIntervalState(p.DLo[j], p.DHi[j], xcol, ws, est)
		} else if o.Kernel == KernelBisection {
			res, err = prob.SolveBisection(xcol, o.KernelTol)
		} else {
			res, err = prob.SolveState(xcol, ws, est)
		}
		if err != nil {
			if st.errs[chunk] == nil {
				st.errs[chunk] = fmt.Errorf("column %d: %w", j, err)
			}
			return
		}
		st.mu[j] = res.Lambda
		st.colSum[j] = res.Total
		cost := res.Ops + int64(2*w)
		if ph != nil {
			ph.Col[j] = cost
		}
		if o.Counters != nil {
			o.Counters.Equilibrations.Add(1)
			o.Counters.Ops.Add(cost)
		}
	}
}

// colChunkBatchedSparse is the batched CSR column-phase body; see
// rowChunkBatchedSparse.
func (st *diagState) colChunkBatchedSparse(chunk, lo, hi int) {
	p, o := st.p, st.o
	b := st.batches[chunk]
	ph := st.curPH
	perEntry := 1
	if st.upperT != nil {
		perEntry = 2
	}
	colSpan := func(j int) (int, int) { return st.cscPtr[j], st.cscPtr[j+1] }
	for lo < hi {
		end := sparseBatchEnd(lo, hi, perEntry, st.batchTarget, colSpan)
		b.Reset()
		for j := lo; j < end; j++ {
			s, e := st.cscPtr[j], st.cscPtr[j+1]
			w := e - s
			x0c := st.x0T[s:e]
			a := st.aT[s:e]
			rows := st.cscRow[s:e]
			c := b.Coef(w)
			for t := 0; t < w; t++ {
				c[t] = x0c[t] + a[t]*st.lambda[rows[t]]
			}
			prob := equilibrate.Problem{C: c, A: a}
			if st.upperT != nil {
				prob.U = st.upperT[s:e]
			}
			if st.lowerT != nil {
				prob.L = st.lowerT[s:e]
			}
			switch p.Kind {
			case FixedTotals:
				prob.R = p.D0[j]
			case ElasticTotals:
				prob.E = 0.5 / p.Beta[j]
				prob.R = p.D0[j]
			case Balanced:
				el := 0.5 / p.Alpha[j]
				prob.E = el
				prob.R = p.S0[j] - el*st.lambda[j]
			}
			var est *equilibrate.State
			if st.curColStates != nil {
				est = &st.curColStates[j]
			}
			xcol := st.xT[s:e]
			var err error
			if p.Kind == IntervalTotals {
				err = b.AddInterval(&prob, p.DLo[j], p.DHi[j], xcol, est)
			} else {
				err = b.Add(&prob, xcol, est)
			}
			if err != nil {
				if st.errs[chunk] == nil {
					st.errs[chunk] = fmt.Errorf("column %d: %w", j, err)
				}
				return
			}
		}
		if bad, err := b.Solve(); err != nil {
			if st.errs[chunk] == nil {
				st.errs[chunk] = fmt.Errorf("column %d: %w", lo+bad, err)
			}
			return
		}
		var costSum int64
		for j := lo; j < end; j++ {
			res := b.Result(j - lo)
			st.mu[j] = res.Lambda
			st.colSum[j] = res.Total
			cost := res.Ops + int64(2*(st.cscPtr[j+1]-st.cscPtr[j]))
			costSum += cost
			if ph != nil {
				ph.Col[j] = cost
			}
		}
		if o.Counters != nil {
			o.Counters.Equilibrations.Add(int64(end - lo))
			o.Counters.Ops.Add(costSum)
		}
		lo = end
	}
}
