package core

// Status is a solve's explicit outcome, so callers need not infer it from
// the (error, Converged, Iterations) triple. The zero value StatusUnknown
// marks a Solution whose producer predates (or bypasses) the status
// protocol; the pkg/sea facade fills it in for every registry solve.
type Status int

const (
	// StatusUnknown: the producer did not classify the outcome.
	StatusUnknown Status = iota
	// StatusConverged: the convergence criterion was met.
	StatusConverged
	// StatusMaxIterations: the iteration limit was exhausted first; the
	// Solution is the best iterate found (the error wraps ErrNotConverged).
	StatusMaxIterations
	// StatusCancelled: the context was cancelled or its deadline passed; the
	// Solution is the last consistent iterate (the error is ctx.Err()).
	StatusCancelled
	// StatusSaturated: the serving layer rejected the request before any
	// solve ran (admission control; the error wraps the facade's
	// ErrSaturated). No solver sets this — only pkg/sea/serve.
	StatusSaturated
)

func (s Status) String() string {
	switch s {
	case StatusConverged:
		return "converged"
	case StatusMaxIterations:
		return "max-iterations"
	case StatusCancelled:
		return "cancelled"
	case StatusSaturated:
		return "saturated"
	default:
		return "unknown"
	}
}

// Solution holds the result of a solve.
type Solution struct {
	// X is the matrix estimate (m×n row-major).
	X []float64
	// S and D are the row and column total estimates. For FixedTotals they
	// equal the given totals; for Balanced, D equals S (shared totals).
	S, D []float64
	// Lambda and Mu are the Lagrange multipliers of the row and column
	// constraints — the dual variables the algorithm ascends.
	Lambda, Mu []float64

	// Iterations is the number of row+column sweeps performed (diagonal
	// solver) or projection steps (general solver, which also reports the
	// total inner sweeps in InnerIterations).
	Iterations      int
	InnerIterations int
	// Converged reports whether the convergence criterion was met.
	Converged bool
	// Status classifies the outcome explicitly; see Status.
	Status Status
	// Residual is the final value of the convergence measure.
	Residual float64
	// Objective is the objective value at X (and S, D), evaluated under the
	// ObjectiveKind family.
	Objective float64
	// ObjectiveKind is the objective family Objective was evaluated under:
	// ObjectiveQuadratic for every solver except "entropy" (and the scaling
	// baselines when an entropy objective was requested).
	ObjectiveKind Objective
	// DualValue is ζ_l(λ, μ); at the optimum it equals Objective (strong
	// duality), so Objective − DualValue is a computable optimality gap.
	DualValue float64
	// PrecondNs is the wall-clock nanoseconds spent in the preconditioning
	// stage (scaling plus dual warm start); zero when Options.Precondition
	// is PrecondNone.
	PrecondNs int64
}

// Gap returns the duality gap Objective − DualValue (nonnegative up to
// rounding; near zero at the optimum).
func (s *Solution) Gap() float64 { return s.Objective - s.DualValue }

// Clone returns a deep copy whose slices share no memory with s. It is how
// a caller detaches an arena-backed Solution (which aliases arena memory
// valid only until the next solve on that arena) from its arena.
func (s *Solution) Clone() *Solution {
	if s == nil {
		return nil
	}
	out := &Solution{}
	s.CopyInto(out)
	return out
}

// CopyInto deep-copies s into dst, reusing dst's slice capacity when it
// suffices — the zero-allocation steady-state path for serving loops that
// drain many same-shape results into one caller-owned Solution.
func (s *Solution) CopyInto(dst *Solution) {
	dst.X = resizeF(dst.X, len(s.X))
	dst.S = resizeF(dst.S, len(s.S))
	dst.D = resizeF(dst.D, len(s.D))
	copy(dst.X, s.X)
	copy(dst.S, s.S)
	copy(dst.D, s.D)
	if s.Lambda == nil {
		dst.Lambda = nil
	} else {
		dst.Lambda = resizeF(dst.Lambda, len(s.Lambda))
		copy(dst.Lambda, s.Lambda)
	}
	if s.Mu == nil {
		dst.Mu = nil
	} else {
		dst.Mu = resizeF(dst.Mu, len(s.Mu))
		copy(dst.Mu, s.Mu)
	}
	dst.Iterations = s.Iterations
	dst.InnerIterations = s.InnerIterations
	dst.Converged = s.Converged
	dst.Status = s.Status
	dst.Residual = s.Residual
	dst.Objective = s.Objective
	dst.ObjectiveKind = s.ObjectiveKind
	dst.DualValue = s.DualValue
	dst.PrecondNs = s.PrecondNs
}
