package core

// Solution holds the result of a solve.
type Solution struct {
	// X is the matrix estimate (m×n row-major).
	X []float64
	// S and D are the row and column total estimates. For FixedTotals they
	// equal the given totals; for Balanced, D equals S (shared totals).
	S, D []float64
	// Lambda and Mu are the Lagrange multipliers of the row and column
	// constraints — the dual variables the algorithm ascends.
	Lambda, Mu []float64

	// Iterations is the number of row+column sweeps performed (diagonal
	// solver) or projection steps (general solver, which also reports the
	// total inner sweeps in InnerIterations).
	Iterations      int
	InnerIterations int
	// Converged reports whether the convergence criterion was met.
	Converged bool
	// Residual is the final value of the convergence measure.
	Residual float64
	// Objective is the objective value at X (and S, D).
	Objective float64
	// DualValue is ζ_l(λ, μ); at the optimum it equals Objective (strong
	// duality), so Objective − DualValue is a computable optimality gap.
	DualValue float64
}

// Gap returns the duality gap Objective − DualValue (nonnegative up to
// rounding; near zero at the optimum).
func (s *Solution) Gap() float64 { return s.Objective - s.DualValue }
