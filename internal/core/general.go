package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"sea/internal/mat"
	"sea/internal/metrics"
	"sea/internal/trace"
)

// GeneralProblem is the general quadratic constrained matrix problem
// (objective (1)): the weight matrices A (m×m, row totals), G (mn×mn,
// matrix entries) and B (n×n, column totals) may be fully dense, e.g.
// inverses of variance–covariance matrices.
//
// The splitting equilibration algorithm solves it through the Dafermos
// projection method (Section 3.2): each equilibration phase works on the
// diagonal problem with fixed quadratic terms diag(A), diag(G), diag(B) and
// linear terms updated from the dense-matrix gradient at the current
// iterate. Convergence requires the weight matrices to be strictly
// diagonally dominant.
type GeneralProblem struct {
	M, N int

	// X0 is the prior matrix (m×n row-major); the variable index of entry
	// (i,j) in G is i·n+j.
	X0 []float64
	// G is the mn×mn weight of the matrix deviations.
	G mat.Weight

	// S0 and D0 are the prior totals (D0 unused for Balanced; both unused
	// for IntervalTotals).
	S0, D0 []float64
	// A is the m×m weight of the row-total deviations (ElasticTotals and
	// Balanced); B the n×n weight of the column-total deviations
	// (ElasticTotals only).
	A, B mat.Weight
	// SLo/SHi and DLo/DHi are the total intervals for IntervalTotals.
	SLo, SHi, DLo, DHi []float64

	// Upper and Lower hold optional entry bounds (m×n row-major), as in
	// the diagonal problem's Ohuchi–Kaji box.
	Upper []float64
	Lower []float64

	Kind Kind
}

// Validate checks dimensions and, unless skipDominance, strict diagonal
// dominance of the weight matrices (the projection method's contraction
// condition).
func (p *GeneralProblem) Validate(skipDominance bool) error {
	if p.M <= 0 || p.N <= 0 {
		return fmt.Errorf("core: invalid dimensions %d×%d", p.M, p.N)
	}
	mn := p.M * p.N
	if len(p.X0) != mn {
		return fmt.Errorf("core: len(X0) = %d, want %d", len(p.X0), mn)
	}
	if p.G == nil || p.G.Dim() != mn {
		return fmt.Errorf("core: G must be %d×%d", mn, mn)
	}
	if p.Kind != IntervalTotals && len(p.S0) != p.M {
		return fmt.Errorf("core: len(S0) = %d, want %d", len(p.S0), p.M)
	}
	switch p.Kind {
	case FixedTotals:
		if len(p.D0) != p.N {
			return fmt.Errorf("core: len(D0) = %d, want %d", len(p.D0), p.N)
		}
		ss, sd := mat.Sum(p.S0), mat.Sum(p.D0)
		if math.Abs(ss-sd) > totalsImbalanceTol*math.Max(1, math.Abs(ss)) {
			return fmt.Errorf("core: %w: Σs⁰ = %g but Σd⁰ = %g", ErrInfeasible, ss, sd)
		}
	case ElasticTotals:
		if len(p.D0) != p.N {
			return fmt.Errorf("core: len(D0) = %d, want %d", len(p.D0), p.N)
		}
		if p.A == nil || p.A.Dim() != p.M {
			return fmt.Errorf("core: A must be %d×%d", p.M, p.M)
		}
		if p.B == nil || p.B.Dim() != p.N {
			return fmt.Errorf("core: B must be %d×%d", p.N, p.N)
		}
	case Balanced:
		if p.M != p.N {
			return fmt.Errorf("core: balanced problem must be square, got %d×%d", p.M, p.N)
		}
		if p.A == nil || p.A.Dim() != p.N {
			return fmt.Errorf("core: A must be %d×%d", p.N, p.N)
		}
	case IntervalTotals:
		if err := validInterval("S", p.SLo, p.SHi, p.M); err != nil {
			return err
		}
		if err := validInterval("D", p.DLo, p.DHi, p.N); err != nil {
			return err
		}
	default:
		return fmt.Errorf("core: unknown Kind %d", p.Kind)
	}
	if !skipDominance {
		for name, w := range map[string]mat.Weight{"G": p.G, "A": p.A, "B": p.B} {
			if w == nil {
				continue
			}
			if margin := mat.DominanceMargin(w); margin <= 0 {
				return fmt.Errorf("core: weight matrix %s is not strictly diagonally dominant (margin %g); the projection method may diverge — fix the data or set SkipDominanceCheck", name, margin)
			}
		}
	}
	return nil
}

// FeasibleStart returns a feasible initial point (x, s, d) for the problem
// (Step 0 of Section 3.2.1). For fixed totals it uses the proportional fill
// x_ij = s⁰_i·d⁰_j / Σs⁰; for elastic totals the clamped prior with its own
// sums; for balanced problems the symmetrized clamped prior, whose row and
// column sums coincide.
func (p *GeneralProblem) FeasibleStart() (x, s, d []float64) {
	m, n := p.M, p.N
	x = make([]float64, m*n)
	s = make([]float64, m)
	d = make([]float64, n)
	switch p.Kind {
	case FixedTotals:
		total := mat.Sum(p.S0)
		copy(s, p.S0)
		copy(d, p.D0)
		if total <= 0 {
			return
		}
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				x[i*n+j] = p.S0[i] * p.D0[j] / total
			}
		}
	case ElasticTotals:
		for k, v := range p.X0 {
			if v < 0 {
				v = 0
			}
			if p.Upper != nil && v > p.Upper[k] {
				v = p.Upper[k]
			}
			x[k] = v
		}
		for i := 0; i < m; i++ {
			s[i] = mat.Sum(x[i*n : (i+1)*n])
		}
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				d[j] += x[i*n+j]
			}
		}
	case Balanced:
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := (p.X0[i*n+j] + p.X0[j*n+i]) / 2
				if v < 0 {
					v = 0
				}
				if p.Upper != nil && v > p.Upper[i*n+j] {
					v = p.Upper[i*n+j]
				}
				x[i*n+j] = v
			}
		}
		for i := 0; i < n; i++ {
			s[i] = mat.Sum(x[i*n : (i+1)*n])
		}
		copy(d, s)
	case IntervalTotals:
		// Start from the clamped prior; the first column phase restores
		// interval feasibility exactly.
		for k, v := range p.X0 {
			if v < 0 {
				v = 0
			}
			if p.Upper != nil && v > p.Upper[k] {
				v = p.Upper[k]
			}
			x[k] = v
		}
		for i := 0; i < m; i++ {
			s[i] = math.Min(math.Max(mat.Sum(x[i*n:(i+1)*n]), p.SLo[i]), p.SHi[i])
		}
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				d[j] += x[i*n+j]
			}
		}
		for j := 0; j < n; j++ {
			d[j] = math.Min(math.Max(d[j], p.DLo[j]), p.DHi[j])
		}
	}
	return
}

// Objective evaluates the general objective at (x, s, d).
func (p *GeneralProblem) Objective(x, s, d []float64) float64 {
	mn := p.M * p.N
	dev := make([]float64, mn)
	for k := range dev {
		dev[k] = x[k] - p.X0[k]
	}
	tmp := make([]float64, mn)
	p.G.MulVec(tmp, dev)
	obj := mat.Dot(dev, tmp)
	switch p.Kind {
	case ElasticTotals:
		obj += quadForm(p.A, s, p.S0)
		obj += quadForm(p.B, d, p.D0)
	case Balanced:
		obj += quadForm(p.A, s, p.S0)
	}
	return obj
}

// quadForm computes (v−v0)ᵀ W (v−v0).
func quadForm(w mat.Weight, v, v0 []float64) float64 {
	n := w.Dim()
	dev := make([]float64, n)
	for i := range dev {
		dev[i] = v[i] - v0[i]
	}
	tmp := make([]float64, n)
	w.MulVec(tmp, dev)
	return mat.Dot(dev, tmp)
}

// SolveGeneral runs the splitting equilibration algorithm for general
// problems (Section 3.2.1, Figure 4). Each half-iteration diagonalizes the
// dense weight matrices at the current iterate — updating only the linear
// terms of subproblem (79) — and performs one parallel exact-equilibration
// phase (rows, then columns) of the resulting diagonal problem, carrying the
// dual variables across phases exactly as the diagonal SEA does. The single
// serial phase is the convergence verification |x^t − x^{t−1}| ≤ ε, done
// once per full iteration (the structural advantage over RC, whose
// projection stages each verify their own convergence serially; cf.
// Figures 4 and 6 and Table 9).
//
// At a fixed point the subproblem multipliers are the multipliers of the
// general problem, so the returned Solution's Lambda and Mu satisfy the
// general KKT system (see CheckKKTGeneral).
//
// Cancellation is observed between phases: when ctx is cancelled or its
// deadline passes, the solve returns within one outer iteration with
// ctx.Err(). A nil ctx means context.Background.
func SolveGeneral(ctx context.Context, p *GeneralProblem, opts *Options) (*Solution, error) {
	o := opts.withDefaults()
	if o.Objective != ObjectiveQuadratic {
		return nil, fmt.Errorf("core: SolveGeneral minimizes the quadratic objective only; route Objective=%v through the facade's \"entropy\" solver", o.Objective)
	}
	if err := p.Validate(o.SkipDominanceCheck); err != nil {
		return nil, err
	}
	if err := o.Arena.acquire(); err != nil {
		return nil, err
	}
	defer o.Arena.release()
	m, n := p.M, p.N
	mn := m * n
	rho := o.Relaxation

	// The mutable diagonalized problem: fixed quadratic terms diag(·)/ρ,
	// linear terms (equivalent priors) rewritten before every phase.
	dp := &DiagonalProblem{
		M: m, N: n,
		X0:    make([]float64, mn),
		Gamma: make([]float64, mn),
		Kind:  p.Kind,
		Upper: p.Upper,
		Lower: p.Lower,
	}
	for k := 0; k < mn; k++ {
		g := p.G.Diag(k)
		if !(g > 0) {
			return nil, fmt.Errorf("core: G diagonal entry %d is %g, want positive", k, g)
		}
		dp.Gamma[k] = g / rho
	}
	switch p.Kind {
	case FixedTotals:
		dp.S0, dp.D0 = p.S0, p.D0
	case ElasticTotals:
		dp.S0 = make([]float64, m)
		dp.D0 = make([]float64, n)
		dp.Alpha = make([]float64, m)
		dp.Beta = make([]float64, n)
		for i := 0; i < m; i++ {
			dp.Alpha[i] = p.A.Diag(i) / rho
		}
		for j := 0; j < n; j++ {
			dp.Beta[j] = p.B.Diag(j) / rho
		}
	case Balanced:
		dp.S0 = make([]float64, n)
		dp.Alpha = make([]float64, n)
		for j := 0; j < n; j++ {
			dp.Alpha[j] = p.A.Diag(j) / rho
		}
	case IntervalTotals:
		dp.SLo, dp.SHi = p.SLo, p.SHi
		dp.DLo, dp.DHi = p.DLo, p.DHi
	}

	st := newDiagState(ctx, dp, o)
	defer st.close()
	x, s, d := p.FeasibleStart()
	copy(st.x, x)

	xdev := make([]float64, mn)
	gx := make([]float64, mn)
	var sdev, gs, ddev, gd []float64
	if p.Kind != FixedTotals {
		sdev = make([]float64, m)
		gs = make([]float64, m)
		if p.Kind == ElasticTotals {
			ddev = make([]float64, n)
			gd = make([]float64, n)
		}
	}

	// updateLinear rewrites the diagonalized problem's equivalent priors
	// from the current iterate: z = x − ρ·[G(x−x⁰)]/diag(G) (and the totals
	// analogues). The dense product is computed in parallel over the rows
	// of G; its cost belongs to the equilibration phase that consumes it
	// (per-row/-column shares), which is how the trace attributes it.
	updateLinear := func() {
		for k := 0; k < mn; k++ {
			xdev[k] = st.x[k] - p.X0[k]
		}
		st.runner.ForChunks(mn, func(_, lo, hi int) {
			p.G.MulVecRange(gx, xdev, lo, hi)
		})
		for k := 0; k < mn; k++ {
			dp.X0[k] = st.x[k] - gx[k]/dp.Gamma[k]
		}
		if o.Counters != nil {
			o.Counters.Ops.Add(int64(mn) * int64(mn))
		}
		switch p.Kind {
		case ElasticTotals:
			for i := 0; i < m; i++ {
				sdev[i] = s[i] - p.S0[i]
			}
			p.A.MulVec(gs, sdev)
			for i := 0; i < m; i++ {
				dp.S0[i] = s[i] - gs[i]/dp.Alpha[i]
			}
			for j := 0; j < n; j++ {
				ddev[j] = d[j] - p.D0[j]
			}
			p.B.MulVec(gd, ddev)
			for j := 0; j < n; j++ {
				dp.D0[j] = d[j] - gd[j]/dp.Beta[j]
			}
		case Balanced:
			for i := 0; i < n; i++ {
				sdev[i] = s[i] - p.S0[i]
			}
			p.A.MulVec(gs, sdev)
			for i := 0; i < n; i++ {
				dp.S0[i] = s[i] - gs[i]/dp.Alpha[i]
			}
		}
	}

	xPrev := mat.Clone(st.x)
	var converged bool
	var residual float64 = math.NaN()
	iterations := 0
	obs := o.Trace
	var prevSnap metrics.Snapshot
	if obs != nil {
		prevSnap = o.Counters.Snapshot()
	}
	for t := 1; t <= o.MaxIterations; t++ {
		if err := st.ctx.Err(); err != nil {
			return nil, err
		}
		iterations = t
		st.iterations = t // drives the warm-start slot policy in the phases
		var ph *PhaseCosts
		if o.CostTrace != nil {
			o.CostTrace.Phases = append(o.CostTrace.Phases, PhaseCosts{
				Row: make([]int64, m),
				Col: make([]int64, n),
			})
			ph = &o.CostTrace.Phases[len(o.CostTrace.Phases)-1]
		}
		var ev trace.Event
		var mark time.Time
		if obs != nil {
			ev = trace.Event{Solver: "sea-general", Iteration: t, Inner: 2}
			mark = time.Now()
		}

		updateLinear()
		if err := st.rowPhase(ph); err != nil {
			return nil, fmt.Errorf("core: general iteration %d: %w", t, err)
		}
		st.supplies(s)
		if obs != nil {
			now := time.Now()
			ev.RowPhase = now.Sub(mark)
			mark = now
		}

		updateLinear()
		st.refreshX0T() // the column phase reads the rewritten prior transposed
		if err := st.colPhase(ph); err != nil {
			return nil, fmt.Errorf("core: general iteration %d: %w", t, err)
		}
		st.demands(d)
		if p.Kind == Balanced {
			st.supplies(s)
		}
		if obs != nil {
			now := time.Now()
			ev.ColPhase = now.Sub(mark)
			mark = now
		}

		// Fold the dense linear-update cost into the phase's task costs:
		// each row owns n rows of G (n·mn operations), each column m.
		if ph != nil {
			for i := range ph.Row {
				ph.Row[i] += int64(n) * int64(mn)
			}
			for j := range ph.Col {
				ph.Col[j] += int64(m) * int64(mn)
			}
		}
		if o.Counters != nil {
			o.Counters.OuterIterations.Add(1)
		}

		// Serial convergence verification, once per full iteration.
		checked := t%o.CheckEvery == 0
		if checked {
			residual = mat.MaxAbsDiff(st.x, xPrev)
			if o.Counters != nil {
				o.Counters.ConvChecks.Add(1)
				o.Counters.SerialOps.Add(int64(mn))
			}
			if ph != nil {
				ph.Serial = int64(mn)
			}
			if residual <= o.Epsilon {
				converged = true
			}
		}
		if obs != nil {
			ev.CheckPhase = time.Since(mark)
			ev.Checked = checked
			ev.Residual = math.NaN()
			if checked {
				ev.Residual = residual
			}
			snap := o.Counters.Snapshot()
			ev.Equilibrations = snap.Equilibrations - prevSnap.Equilibrations
			ev.Ops = snap.Ops - prevSnap.Ops
			ev.SerialOps = snap.SerialOps - prevSnap.SerialOps
			prevSnap = snap
			obs.ObserveIteration(ev)
		}
		if converged {
			break
		}
		copy(xPrev, st.x)
	}

	sol := &Solution{
		X: mat.Clone(st.x), S: mat.Clone(s), D: mat.Clone(d),
		Lambda: mat.Clone(st.lambda), Mu: mat.Clone(st.mu),
		Iterations:      iterations,
		InnerIterations: 2 * iterations, // equilibration half-sweeps
		Converged:       converged,
		Residual:        residual,
	}
	sol.Objective = p.Objective(sol.X, sol.S, sol.D)
	sol.DualValue = math.NaN() // general dual not tracked; use CheckKKTGeneral
	if !converged {
		return sol, fmt.Errorf("%w after %d general iterations", ErrNotConverged, o.MaxIterations)
	}
	return sol, nil
}

// CheckKKTGeneral evaluates the KKT conditions of the general problem at
// sol: feasibility and the variational conditions
// 2[G(x−x⁰)]_ij − λ_i − μ_j ⊥ x_ij, 2[A(s−s⁰)]_i + λ_i = 0,
// 2[B(d−d⁰)]_j + μ_j = 0.
func CheckKKTGeneral(p *GeneralProblem, sol *Solution) KKTReport {
	m, n := p.M, p.N
	mn := m * n
	var r KKTReport

	rowSum := make([]float64, m)
	colSum := make([]float64, n)
	for i := 0; i < m; i++ {
		rowSum[i] = mat.Sum(sol.X[i*n : (i+1)*n])
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			colSum[j] += sol.X[i*n+j]
		}
	}
	for i := 0; i < m; i++ {
		if v := math.Abs(rowSum[i] - sol.S[i]); v > r.MaxRowViolation {
			r.MaxRowViolation = v
		}
	}
	for j := 0; j < n; j++ {
		if v := math.Abs(colSum[j] - sol.D[j]); v > r.MaxColViolation {
			r.MaxColViolation = v
		}
	}
	lowerOf := func(k int) float64 {
		if p.Lower != nil {
			return p.Lower[k]
		}
		return 0
	}
	for k, v := range sol.X {
		if under := v - lowerOf(k); under < r.MinX {
			r.MinX = under
		}
		if p.Upper != nil {
			if over := v - p.Upper[k]; over > r.MaxBoundViolation {
				r.MaxBoundViolation = over
			}
		}
	}

	dev := make([]float64, mn)
	for k := range dev {
		dev[k] = sol.X[k] - p.X0[k]
	}
	grad := make([]float64, mn)
	p.G.MulVec(grad, dev)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			k := i*n + j
			gk := 2*grad[k] - sol.Lambda[i] - sol.Mu[j]
			scale := 1 + math.Abs(sol.Lambda[i]) + math.Abs(sol.Mu[j]) + 2*math.Abs(grad[k])
			var viol float64
			switch {
			case sol.X[k] <= lowerOf(k)+activeTol*scale:
				viol = math.Max(0, -gk)
			case p.Upper != nil && sol.X[k] >= p.Upper[k]-activeTol*scale:
				viol = math.Max(0, gk)
			default:
				viol = math.Abs(gk)
			}
			if viol > r.MaxStationarity {
				r.MaxStationarity = viol
			}
		}
	}

	switch p.Kind {
	case ElasticTotals:
		r.MaxTotalsStationarity = math.Max(
			totalsStationarity(p.A, sol.S, p.S0, sol.Lambda),
			totalsStationarity(p.B, sol.D, p.D0, sol.Mu))
	case Balanced:
		lm := make([]float64, n)
		for j := 0; j < n; j++ {
			lm[j] = sol.Lambda[j] + sol.Mu[j]
		}
		r.MaxTotalsStationarity = totalsStationarity(p.A, sol.S, p.S0, lm)
	case IntervalTotals:
		for i := 0; i < m; i++ {
			if v := intervalMultViolation(rowSum[i], p.SLo[i], p.SHi[i], sol.Lambda[i]); v > r.MaxTotalsStationarity {
				r.MaxTotalsStationarity = v
			}
		}
		for j := 0; j < n; j++ {
			if v := intervalMultViolation(colSum[j], p.DLo[j], p.DHi[j], sol.Mu[j]); v > r.MaxTotalsStationarity {
				r.MaxTotalsStationarity = v
			}
		}
	}
	return r
}

// totalsStationarity returns max_i |2[W(v−v0)]_i + mult_i|.
func totalsStationarity(w mat.Weight, v, v0, mult []float64) float64 {
	n := w.Dim()
	dev := make([]float64, n)
	for i := range dev {
		dev[i] = v[i] - v0[i]
	}
	g := make([]float64, n)
	w.MulVec(g, dev)
	var worst float64
	for i := range g {
		if a := math.Abs(2*g[i] + mult[i]); a > worst {
			worst = a
		}
	}
	return worst
}
