package core

import (
	"context"
	"math"
	"math/rand/v2"
	"testing"
)

// testPattern builds an m×n support with every row and column covered: a
// cyclic band of the given width plus extra random cells, emitted in
// canonical CSR order. m ≥ n keeps the band covering every column.
func testPattern(t *testing.T, m, n, band, extra int, rng *rand.Rand) *Pattern {
	t.Helper()
	on := make([]bool, m*n)
	for i := 0; i < m; i++ {
		for d := 0; d < band; d++ {
			on[i*n+(i%n+d)%n] = true
		}
	}
	for e := 0; e < extra; e++ {
		on[rng.IntN(m*n)] = true
	}
	var rows, cols []int
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if on[i*n+j] {
				rows = append(rows, i)
				cols = append(cols, j)
			}
		}
	}
	pt, err := NewPatternFromTriplets(m, n, rows, cols)
	if err != nil {
		t.Fatalf("testPattern: %v", err)
	}
	return pt
}

// sparseFamily builds a small CSR problem of the given kind on a banded
// random support, optionally with box bounds on the stored cells. Every
// instance is feasible by construction.
func sparseFamily(t *testing.T, kind Kind, bounded bool, seed uint64) *DiagonalProblem {
	t.Helper()
	m, n := 24, 17
	if kind == Balanced {
		m, n = 20, 20
	}
	rng := rand.New(rand.NewPCG(seed, 11))
	pt := testPattern(t, m, n, 3, m*n/6, rng)
	nnz := pt.Nnz()
	x0 := make([]float64, nnz)
	gamma := make([]float64, nnz)
	for k := range x0 {
		x0[k] = 0.1 + rng.Float64()*10
		gamma[k] = 0.5 + rng.Float64()
	}
	rowSum := make([]float64, m)
	colSum := make([]float64, n)
	for i := 0; i < m; i++ {
		for k := pt.RowPtr[i]; k < pt.RowPtr[i+1]; k++ {
			rowSum[i] += x0[k]
			colSum[pt.ColIdx[k]] += x0[k]
		}
	}
	p := &DiagonalProblem{M: m, N: n, X0: x0, Gamma: gamma, Pattern: pt, Kind: kind}
	switch kind {
	case FixedTotals:
		p.S0 = make([]float64, m)
		p.D0 = make([]float64, n)
		for i := range p.S0 {
			p.S0[i] = 1.25 * rowSum[i]
		}
		for j := range p.D0 {
			p.D0[j] = 1.25 * colSum[j]
		}
	case ElasticTotals:
		p.S0 = make([]float64, m)
		p.Alpha = make([]float64, m)
		for i := range p.S0 {
			p.S0[i] = 1.1 * rowSum[i]
			p.Alpha[i] = 0.5 + rng.Float64()
		}
		p.D0 = make([]float64, n)
		p.Beta = make([]float64, n)
		for j := range p.D0 {
			p.D0[j] = 0.95 * colSum[j]
			p.Beta[j] = 0.5 + rng.Float64()
		}
	case Balanced:
		p.S0 = make([]float64, n)
		p.Alpha = make([]float64, n)
		for i := range p.S0 {
			p.S0[i] = (rowSum[i] + colSum[i]) / 2 * (0.9 + 0.2*rng.Float64())
			p.Alpha[i] = 1 / p.S0[i]
		}
	case IntervalTotals:
		p.SLo = make([]float64, m)
		p.SHi = make([]float64, m)
		for i := range p.SLo {
			p.SLo[i] = 0.9 * rowSum[i]
			p.SHi[i] = 1.4 * rowSum[i]
		}
		p.DLo = make([]float64, n)
		p.DHi = make([]float64, n)
		for j := range p.DLo {
			p.DLo[j] = 0.9 * colSum[j]
			p.DHi[j] = 1.4 * colSum[j]
		}
	}
	if bounded {
		p.Upper = make([]float64, nnz)
		p.Lower = make([]float64, nnz)
		for k := range p.Upper {
			// Generous boxes keep the instance feasible; every fourth cell is
			// unbounded above to exercise the +Inf path.
			p.Upper[k] = 3*x0[k] + 5
			if k%4 == 0 {
				p.Upper[k] = math.Inf(1)
			}
			p.Lower[k] = 0.01 * x0[k]
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("sparseFamily(%v, bounded=%v): %v", kind, bounded, err)
	}
	return p
}

// sparseFamilies enumerates the CSR example families the storage tests run
// over: every problem kind, with and without box bounds.
func sparseFamilies(t *testing.T) map[string]*DiagonalProblem {
	t.Helper()
	return map[string]*DiagonalProblem{
		"fixed":            sparseFamily(t, FixedTotals, false, 1),
		"fixed/bounded":    sparseFamily(t, FixedTotals, true, 2),
		"elastic":          sparseFamily(t, ElasticTotals, false, 3),
		"elastic/bounded":  sparseFamily(t, ElasticTotals, true, 4),
		"balanced":         sparseFamily(t, Balanced, false, 5),
		"interval":         sparseFamily(t, IntervalTotals, false, 6),
		"interval/bounded": sparseFamily(t, IntervalTotals, true, 7),
	}
}

// TestCSRMatchesDensifiedAcrossProcs is the storage refactor's core property:
// a CSR problem and its densified form (structural zeros made explicit as
// [0,0]-pinned cells) solve to bit-identical X on the support, exact zeros on
// the holes, and bit-identical S, D, multipliers, and iteration counts — for
// every family and every worker count. The kernel skips pinned variables when
// building its breakpoint events, so the two solves follow the same
// floating-point trajectory.
func TestCSRMatchesDensifiedAcrossProcs(t *testing.T) {
	for name, sp := range sparseFamilies(t) {
		t.Run(name, func(t *testing.T) {
			dense, err := sp.Densify()
			if err != nil {
				t.Fatalf("densify: %v", err)
			}
			pt := sp.Pattern
			m, n := sp.M, sp.N
			for _, procs := range []int{1, 2, 7, 16} {
				opts := func() *Options {
					o := DefaultOptions()
					o.Criterion = MaxAbsDelta
					o.Epsilon = 1e-8
					o.Procs = procs
					return o
				}
				cs, err := SolveDiagonal(context.Background(), sp, opts())
				if err != nil {
					t.Fatalf("procs=%d: csr solve: %v", procs, err)
				}
				ds, err := SolveDiagonal(context.Background(), dense, opts())
				if err != nil {
					t.Fatalf("procs=%d: dense solve: %v", procs, err)
				}
				if cs.Iterations != ds.Iterations || cs.Converged != ds.Converged {
					t.Fatalf("procs=%d: csr %d iterations (converged=%v), dense %d (converged=%v)",
						procs, cs.Iterations, cs.Converged, ds.Iterations, ds.Converged)
				}
				if len(cs.X) != pt.Nnz() {
					t.Fatalf("procs=%d: csr X has length %d, want nnz = %d", procs, len(cs.X), pt.Nnz())
				}
				// Support cells bit-identical; holes exactly zero (compared by
				// value: the sign of a zero is not observable through the
				// pinned box).
				seen := make([]bool, m*n)
				for i := 0; i < m; i++ {
					for k := pt.RowPtr[i]; k < pt.RowPtr[i+1]; k++ {
						d := i*n + int(pt.ColIdx[k])
						seen[d] = true
						if math.Float64bits(cs.X[k]) != math.Float64bits(ds.X[d]) {
							t.Fatalf("procs=%d: X at cell %d (dense %d) = %v csr vs %v dense",
								procs, k, d, cs.X[k], ds.X[d])
						}
					}
				}
				for d, s := range seen {
					if !s && ds.X[d] != 0 {
						t.Fatalf("procs=%d: structural zero at dense index %d solved to %v", procs, d, ds.X[d])
					}
				}
				bitEq := func(field string, a, b []float64) {
					t.Helper()
					if len(a) != len(b) {
						t.Fatalf("procs=%d: %s length %d vs %d", procs, field, len(a), len(b))
					}
					for i := range a {
						if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
							t.Fatalf("procs=%d: %s[%d] = %v csr vs %v dense", procs, field, i, a[i], b[i])
						}
					}
				}
				bitEq("S", cs.S, ds.S)
				bitEq("D", cs.D, ds.D)
				bitEq("Lambda", cs.Lambda, ds.Lambda)
				bitEq("Mu", cs.Mu, ds.Mu)
			}
		})
	}
}

// TestSparsifyDensifyRoundTrip: densify∘sparsify is the identity on every CSR
// family, and sparsify recovers a densified problem's pattern exactly.
func TestSparsifyDensifyRoundTrip(t *testing.T) {
	for name, sp := range sparseFamilies(t) {
		t.Run(name, func(t *testing.T) {
			dense, err := sp.Densify()
			if err != nil {
				t.Fatalf("densify: %v", err)
			}
			back, err := dense.Sparsify()
			if err != nil {
				t.Fatalf("sparsify: %v", err)
			}
			if back.Pattern.Nnz() != sp.Pattern.Nnz() {
				t.Fatalf("round trip nnz %d, want %d", back.Pattern.Nnz(), sp.Pattern.Nnz())
			}
			for i := range sp.Pattern.RowPtr {
				if back.Pattern.RowPtr[i] != sp.Pattern.RowPtr[i] {
					t.Fatalf("RowPtr[%d] = %d, want %d", i, back.Pattern.RowPtr[i], sp.Pattern.RowPtr[i])
				}
			}
			for k := range sp.Pattern.ColIdx {
				if back.Pattern.ColIdx[k] != sp.Pattern.ColIdx[k] {
					t.Fatalf("ColIdx[%d] = %d, want %d", k, back.Pattern.ColIdx[k], sp.Pattern.ColIdx[k])
				}
				if back.X0[k] != sp.X0[k] || back.Gamma[k] != sp.Gamma[k] {
					t.Fatalf("cell %d values changed in round trip", k)
				}
				if sp.Upper != nil && back.Upper[k] != sp.Upper[k] {
					t.Fatalf("Upper[%d] = %v, want %v", k, back.Upper[k], sp.Upper[k])
				}
				if sp.Lower != nil && back.Lower[k] != sp.Lower[k] {
					t.Fatalf("Lower[%d] = %v, want %v", k, back.Lower[k], sp.Lower[k])
				}
			}
			if sp.Upper == nil && back.Upper != nil {
				t.Fatal("round trip materialized Upper bounds the original did not have")
			}
			if sp.Lower == nil && back.Lower != nil {
				t.Fatal("round trip materialized Lower bounds the original did not have")
			}
		})
	}
}

// TestValidateSparse covers the CSR structural rejections: disordered and
// duplicate column indices, broken row pointers, out-of-range columns, and
// per-cell arrays (including bounds) not aligned to nnz.
func TestValidateSparse(t *testing.T) {
	base := func() *DiagonalProblem { return sparseFamily(t, FixedTotals, true, 8) }

	if err := base().Validate(); err != nil {
		t.Fatalf("base problem invalid: %v", err)
	}

	cases := map[string]func(*DiagonalProblem){
		"out-of-order columns": func(p *DiagonalProblem) {
			lo := p.Pattern.RowPtr[0]
			p.Pattern.ColIdx[lo], p.Pattern.ColIdx[lo+1] = p.Pattern.ColIdx[lo+1], p.Pattern.ColIdx[lo]
		},
		"duplicate columns": func(p *DiagonalProblem) {
			lo := p.Pattern.RowPtr[0]
			p.Pattern.ColIdx[lo+1] = p.Pattern.ColIdx[lo]
		},
		"row pointer not monotone": func(p *DiagonalProblem) {
			p.Pattern.RowPtr[1] = p.Pattern.RowPtr[2] + 1
		},
		"row pointer origin": func(p *DiagonalProblem) {
			p.Pattern.RowPtr[0] = 1
		},
		"row pointer total": func(p *DiagonalProblem) {
			p.Pattern.RowPtr[p.M]--
		},
		"column out of range": func(p *DiagonalProblem) {
			p.Pattern.ColIdx[p.Pattern.Nnz()-1] = int32(p.N)
		},
		"x0 not nnz-aligned": func(p *DiagonalProblem) {
			p.X0 = p.X0[:len(p.X0)-1]
		},
		"gamma not nnz-aligned": func(p *DiagonalProblem) {
			p.Gamma = append(p.Gamma, 1)
		},
		"upper not nnz-aligned": func(p *DiagonalProblem) {
			p.Upper = p.Upper[:len(p.Upper)-1]
		},
		"lower not nnz-aligned": func(p *DiagonalProblem) {
			p.Lower = append(p.Lower, 0)
		},
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			p := base()
			corrupt(p)
			if err := p.Validate(); err == nil {
				t.Fatal("Validate accepted a corrupted CSR problem")
			}
		})
	}
}

// TestNewPatternFromTripletsRejects: the triplet reader accepts only the
// canonical stored order, so the JSON encoding stays a fixed point.
func TestNewPatternFromTripletsRejects(t *testing.T) {
	cases := map[string]struct {
		rows, cols []int
	}{
		"length mismatch":      {[]int{0, 0}, []int{0}},
		"row out of range":     {[]int{3}, []int{0}},
		"column out of range":  {[]int{0}, []int{4}},
		"negative row":         {[]int{-1}, []int{0}},
		"rows out of order":    {[]int{1, 0}, []int{0, 0}},
		"columns out of order": {[]int{0, 0}, []int{2, 1}},
		"duplicate cell":       {[]int{0, 0}, []int{1, 1}},
	}
	for name, c := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := NewPatternFromTriplets(3, 4, c.rows, c.cols); err == nil {
				t.Fatal("NewPatternFromTriplets accepted a non-canonical input")
			}
		})
	}
	pt, err := NewPatternFromTriplets(3, 4, []int{0, 0, 2}, []int{1, 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	rows, cols := pt.Triplets()
	want := [][2]int{{0, 1}, {0, 3}, {2, 0}}
	for k, w := range want {
		if rows[k] != w[0] || cols[k] != w[1] {
			t.Fatalf("triplet %d = (%d,%d), want (%d,%d)", k, rows[k], cols[k], w[0], w[1])
		}
	}
	if pt.RowNnz(1) != 0 {
		t.Fatalf("RowNnz(1) = %d, want 0 (empty row)", pt.RowNnz(1))
	}
	if i, j := pt.Cell(2); i != 2 || j != 0 {
		t.Fatalf("Cell(2) = (%d,%d), want (2,0)", i, j)
	}
}

// TestCSRSteadyStateAllocs guards the sparse hot path's allocation flatness:
// repeated same-shape CSR solves on one arena must not allocate per entry —
// the CSC mirror, phase buffers, and kernel scratch are all adopted from the
// previous solve.
func TestCSRSteadyStateAllocs(t *testing.T) {
	p := sparseFamily(t, FixedTotals, false, 9)
	ar := NewArena()
	defer ar.Close()
	solve := func() {
		o := DefaultOptions()
		o.Criterion = MaxAbsDelta
		o.Epsilon = 1e-8
		o.Arena = ar
		if _, err := SolveDiagonal(context.Background(), p, o); err != nil {
			t.Fatal(err)
		}
	}
	solve() // cold: builds the arena state, CSC mirror, and kernel warm starts
	avg := testing.AllocsPerRun(20, solve)
	if avg > 8 {
		t.Errorf("steady-state CSR solve allocates %.1f allocs/op, want ≤ 8 (allocation-flat)", avg)
	}
}
