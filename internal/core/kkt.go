package core

import "math"

// KKTReport quantifies how well a candidate solution satisfies the
// Karush–Kuhn–Tucker conditions of its problem. Since the problems are
// convex with affine constraints, KKT satisfaction certifies global
// optimality — this is the solver-independent check the test suite relies
// on.
type KKTReport struct {
	// MaxRowViolation is max_i |Σ_j x_ij − s_i|.
	MaxRowViolation float64
	// MaxColViolation is max_j |Σ_i x_ij − d_j|.
	MaxColViolation float64
	// MinX is the largest lower-bound violation, reported as the most
	// negative value of x_ij − l_ij (0 when every entry respects its lower
	// bound; l = 0 for the classical problem).
	MinX float64
	// MaxBoundViolation is the largest amount by which an entry exceeds its
	// upper bound (0 without bounds).
	MaxBoundViolation float64
	// MaxStationarity is the largest violation of the x stationarity
	// conditions (20): for interior entries |∂L/∂x| must vanish; for
	// entries at zero ∂L/∂x ≥ 0; for entries at an upper bound ∂L/∂x ≤ 0.
	MaxStationarity float64
	// MaxTotalsStationarity is the largest violation of the s and d
	// stationarity conditions (21), (22) (zero for fixed totals).
	MaxTotalsStationarity float64
}

// Max returns the largest violation in the report.
func (r KKTReport) Max() float64 {
	worst := r.MaxRowViolation
	for _, v := range []float64{
		r.MaxColViolation, -r.MinX, r.MaxBoundViolation,
		r.MaxStationarity, r.MaxTotalsStationarity,
	} {
		if v > worst {
			worst = v
		}
	}
	return worst
}

// Satisfied reports whether every violation is at most tol.
func (r KKTReport) Satisfied(tol float64) bool { return r.Max() <= tol }

// activeTol is the threshold below which an entry counts as at its bound for
// the complementary-slackness classification.
const activeTol = 1e-9

// CheckKKT evaluates the KKT conditions of sol for problem p under the
// quadratic objective.
func CheckKKT(p *DiagonalProblem, sol *Solution) KKTReport {
	return CheckKKTObjective(p, sol, ObjectiveQuadratic)
}

// CheckKKTObjective evaluates the KKT conditions of sol for problem p under
// the given objective family. Feasibility and the totals stationarity are
// family-independent (the elastic penalties are quadratic in both families);
// only the x stationarity gradient changes: 2γ(x−x⁰) − λ − μ for the
// quadratic family, γ·ln(x/x⁰) − λ − μ for the entropy family. Entropy-KKT
// over a zero prior cell has no finite gradient — the KL term pins the cell
// at zero, so the check there is simply x = 0.
func CheckKKTObjective(p *DiagonalProblem, sol *Solution, obj Objective) KKTReport {
	m, n := p.M, p.N
	var r KKTReport

	// Feasibility.
	rowSum := make([]float64, m)
	colSum := make([]float64, n)
	p.RowSums(sol.X, rowSum)
	p.ColSums(sol.X, colSum)
	for i := 0; i < m; i++ {
		if v := math.Abs(rowSum[i] - sol.S[i]); v > r.MaxRowViolation {
			r.MaxRowViolation = v
		}
	}
	for j := 0; j < n; j++ {
		if v := math.Abs(colSum[j] - sol.D[j]); v > r.MaxColViolation {
			r.MaxColViolation = v
		}
	}
	lowerOf := func(k int) float64 {
		if p.Lower != nil {
			return p.Lower[k]
		}
		return 0
	}
	for k, v := range sol.X {
		if under := v - lowerOf(k); under < r.MinX {
			r.MinX = under
		}
		if p.Upper != nil {
			if over := v - p.Upper[k]; over > r.MaxBoundViolation {
				r.MaxBoundViolation = over
			}
		}
	}

	// Stationarity in x (20): grad = 2γ(x−x⁰) − λ_i − μ_j. Structural zeros
	// of a CSR problem are pinned in [0,0] — both bounds active, so every
	// gradient sign is admissible and they impose no condition to check.
	statAt := func(i, j, k int) {
		scale := 1 + math.Abs(sol.Lambda[i]) + math.Abs(sol.Mu[j]) + 2*p.Gamma[k]*math.Abs(p.X0[k])
		var grad float64
		if obj == ObjectiveEntropy {
			if p.X0[k] == 0 {
				// The KL term pins the cell: any positive value is a
				// violation, and no multiplier condition applies.
				if v := math.Abs(sol.X[k]); v > r.MaxStationarity {
					r.MaxStationarity = v
				}
				return
			}
			if sol.X[k] <= 0 {
				// Over a positive prior the entropy gradient at zero is −∞:
				// the optimum never touches zero, so a zero entry only
				// appears when the dual pushed x below the underflow floor.
				// Its primal value (how far the true stationary point could
				// sit above zero) is bounded by the row residual, which
				// feasibility already measures; no multiplier condition
				// remains here.
				return
			}
			grad = p.Gamma[k]*math.Log(sol.X[k]/p.X0[k]) - sol.Lambda[i] - sol.Mu[j]
		} else {
			grad = 2*p.Gamma[k]*(sol.X[k]-p.X0[k]) - sol.Lambda[i] - sol.Mu[j]
		}
		var viol float64
		switch {
		case sol.X[k] <= lowerOf(k)+activeTol*scale:
			viol = math.Max(0, -grad) // at lower bound: grad ≥ 0
		case p.Upper != nil && sol.X[k] >= p.Upper[k]-activeTol*scale:
			viol = math.Max(0, grad) // at upper bound: grad ≤ 0
		default:
			viol = math.Abs(grad)
		}
		if viol > r.MaxStationarity {
			r.MaxStationarity = viol
		}
	}
	if pt := p.Pattern; pt != nil {
		for i := 0; i < m; i++ {
			for k := pt.RowPtr[i]; k < pt.RowPtr[i+1]; k++ {
				statAt(i, int(pt.ColIdx[k]), k)
			}
		}
	} else {
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				statAt(i, j, i*n+j)
			}
		}
	}

	// Stationarity in the totals.
	switch p.Kind {
	case ElasticTotals:
		for i := 0; i < m; i++ {
			// (21): 2α(s−s⁰) + λ = 0.
			if v := math.Abs(2*p.Alpha[i]*(sol.S[i]-p.S0[i]) + sol.Lambda[i]); v > r.MaxTotalsStationarity {
				r.MaxTotalsStationarity = v
			}
		}
		for j := 0; j < n; j++ {
			// (22): 2β(d−d⁰) + μ = 0.
			if v := math.Abs(2*p.Beta[j]*(sol.D[j]-p.D0[j]) + sol.Mu[j]); v > r.MaxTotalsStationarity {
				r.MaxTotalsStationarity = v
			}
		}
	case Balanced:
		for j := 0; j < n; j++ {
			// (39): 2α(s−s⁰) + λ + μ = 0.
			if v := math.Abs(2*p.Alpha[j]*(sol.S[j]-p.S0[j]) + sol.Lambda[j] + sol.Mu[j]); v > r.MaxTotalsStationarity {
				r.MaxTotalsStationarity = v
			}
		}
	case IntervalTotals:
		// Sign conditions of the interval multipliers: λ ≥ 0 where the
		// lower bound binds, λ ≤ 0 at the upper bound, λ = 0 inside.
		for i := 0; i < m; i++ {
			if v := intervalMultViolation(rowSum[i], p.SLo[i], p.SHi[i], sol.Lambda[i]); v > r.MaxTotalsStationarity {
				r.MaxTotalsStationarity = v
			}
		}
		for j := 0; j < n; j++ {
			if v := intervalMultViolation(colSum[j], p.DLo[j], p.DHi[j], sol.Mu[j]); v > r.MaxTotalsStationarity {
				r.MaxTotalsStationarity = v
			}
		}
	}
	return r
}

// intervalMultViolation measures how badly a multiplier violates the sign
// conditions of its interval constraint at the total value tot.
func intervalMultViolation(tot, lo, hi, mult float64) float64 {
	scale := 1 + math.Abs(lo) + math.Abs(hi)
	atLo := tot <= lo+activeTol*scale
	atHi := tot >= hi-activeTol*scale
	switch {
	case atLo && atHi: // pinned interval: any sign allowed
		return 0
	case atLo:
		return math.Max(0, -mult)
	case atHi:
		return math.Max(0, mult)
	default:
		return math.Abs(mult)
	}
}
