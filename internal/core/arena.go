package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"sea/internal/parallel"
)

// ErrArenaBusy is returned when a solve is handed an Arena that is already
// backing a running solve — arenas are single-flight. Layers that multiplex
// concurrent requests over arenas (pkg/sea/serve) must check one out per
// request; this sentinel is the safety net when that discipline is violated.
var ErrArenaBusy = errors.New("core: arena already backs a running solve")

// Arena owns the reusable working state of repeated diagonal (or general)
// solves: the full iterate/mirror/multiplier buffer set, the per-worker
// equilibration workspaces, the per-row and per-column warm-start states of
// the kernel, a persistent worker pool when the caller supplies no Runner,
// and the backing arrays of the returned Solution. Attach one via
// Options.Arena and back-to-back Solve calls on same-shape problems run with
// (near) zero steady-state allocations and warm-started breakpoint sorts.
//
// Shape is the reuse key: a solve whose dimensions differ from the cached
// state simply rebuilds the buffers (correct, just cold). Reuse never
// changes results — warm-started kernel solves are bit-identical to cold
// ones — so an arena is purely a performance vehicle.
//
// An Arena is not safe for concurrent use: it may back at most one running
// solve at a time (enforced; a second concurrent solve fails fast). The
// Solution returned by an arena-backed solve aliases arena-owned buffers and
// is valid until the next solve on the same arena; callers that need the
// data longer must copy it out.
type Arena struct {
	inUse atomic.Bool

	st *diagState

	// pool is the arena-owned worker pool, created (and re-created on a
	// Procs change) only when Options.Runner is nil. It outlives individual
	// solves; Close releases it.
	pool      *parallel.Pool
	poolProcs int

	// pre owns the preconditioning stage's buffers (scaled problem copies,
	// warm-start scratch); populated on the first preconditioned solve.
	pre *precondState

	// Solution backing, reused across solves.
	solX, solS, solD, solLambda, solMu []float64
	sol                                Solution
}

// NewArena returns an empty arena. The first solve populates it.
func NewArena() *Arena { return &Arena{} }

// acquire marks the arena as backing a running solve. A nil arena is a
// no-op (the non-reusing path).
func (a *Arena) acquire() error {
	if a == nil {
		return nil
	}
	if !a.inUse.CompareAndSwap(false, true) {
		return fmt.Errorf("%w; arenas are single-flight", ErrArenaBusy)
	}
	return nil
}

// InUse reports whether the arena currently backs a running solve. It is a
// point-in-time observation — by the time the caller acts the state may have
// changed — so it is for diagnostics and double-checkout assertions, not for
// synchronization.
func (a *Arena) InUse() bool { return a != nil && a.inUse.Load() }

func (a *Arena) release() {
	if a != nil {
		a.inUse.Store(false)
	}
}

// Reset drops the cached solver state (buffers and kernel warm-start
// permutations) while keeping the worker pool. The next solve runs cold.
func (a *Arena) Reset() { a.st = nil; a.pre = nil }

// Close releases the arena's persistent worker pool, if it created one. The
// cached buffers need no teardown beyond garbage collection.
func (a *Arena) Close() {
	if a.pool != nil {
		a.pool.Close()
		a.pool = nil
		a.poolProcs = 0
	}
}

// resizeF returns buf with length n, reallocating only when capacity is
// short.
func resizeF(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}
