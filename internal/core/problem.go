// Package core implements the Splitting Equilibration Algorithm (SEA) of
// Nagurney and Eydeland for the full spectrum of constrained matrix
// problems: diagonal and general (dense-weight) objectives, with fixed,
// elastic (estimated), or balanced (social accounting matrix) row and column
// totals.
//
// The diagonal solver is dual block-coordinate ascent on the explicit dual
// function ζ_l(λ,μ) of the paper's Section 3.1: a row equilibration phase
// solves m independent single-constraint subproblems in closed form
// (package equilibrate), a column equilibration phase solves n, and the two
// alternate until the constraint residuals — which equal the gradient of the
// dual — vanish. Both phases are embarrassingly parallel.
//
// The general solver (Section 3.2) wraps the diagonal solver in the Dafermos
// projection method: each outer iteration diagonalizes the dense weight
// matrices A, G, B and updates only linear terms.
package core

import (
	"errors"
	"fmt"
	"math"

	"sea/internal/mat"
)

// Kind selects the treatment of the row and column totals, i.e. which of the
// paper's three problem classes is being solved.
type Kind int

const (
	// FixedTotals: s = s⁰ and d = d⁰ are known with certainty
	// (objective (13)/(10); constraints (11), (12)).
	FixedTotals Kind = iota
	// ElasticTotals: s and d are estimated along with the matrix
	// (objective (5)/(1); constraints (2), (3)).
	ElasticTotals
	// Balanced: the social accounting matrix case — m = n and the row i
	// total equals the column i total, both estimated
	// (objective (9)/(6); constraints (7), (8)).
	Balanced
	// IntervalTotals: each row and column total is only known to lie in an
	// interval, SLo_i ≤ Σ_j x_ij ≤ SHi_i and DLo_j ≤ Σ_i x_ij ≤ DHi_j —
	// the Harrigan–Buchanan (1984) input/output estimation variant the
	// paper cites in Section 2.
	IntervalTotals
)

func (k Kind) String() string {
	switch k {
	case FixedTotals:
		return "fixed"
	case ElasticTotals:
		return "elastic"
	case Balanced:
		return "balanced"
	case IntervalTotals:
		return "interval"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// DiagonalProblem is a diagonal quadratic constrained matrix problem:
//
//	min  Σ_i α_i (s_i−s⁰_i)² + Σ_ij γ_ij (x_ij−x⁰_ij)² + Σ_j β_j (d_j−d⁰_j)²
//	s.t. Σ_j x_ij = s_i,  Σ_i x_ij = d_j,  0 ≤ x_ij (≤ u_ij)
//
// with the totals fixed, elastic, or balanced according to Kind. All dense
// m×n data is stored row-major.
type DiagonalProblem struct {
	M, N int

	// X0 is the prior matrix x⁰ (m×n row-major). Entries may be any sign,
	// though applications use nonnegative priors.
	X0 []float64
	// Gamma holds the strictly positive weights γ_ij (m×n row-major).
	Gamma []float64

	// S0 and D0 are the prior row and column totals. For Balanced problems
	// D0 is ignored (the shared totals are S0); for IntervalTotals both
	// are ignored in favour of the interval bounds below.
	S0, D0 []float64
	// Alpha and Beta are the strictly positive total weights α_i, β_j.
	// They are required for ElasticTotals (both) and Balanced (Alpha only)
	// and ignored for FixedTotals and IntervalTotals.
	Alpha, Beta []float64

	// SLo/SHi and DLo/DHi are the row- and column-total intervals for
	// IntervalTotals problems (ignored otherwise). Entries may repeat a
	// value to pin a total exactly, and SHi/DHi entries may be
	// math.Inf(1).
	SLo, SHi, DLo, DHi []float64

	// Upper, if non-nil, holds upper bounds u_ij ≥ 0 (use math.Inf(1) for
	// unbounded entries; u_ij equal to the lower bound pins the cell).
	// Lower, if non-nil, holds lower bounds 0 ≤ l_ij ≤ u_ij, replacing the
	// plain nonnegativity constraint (4). Together they are the full
	// Ohuchi–Kaji (1984) box extension; the classical problem leaves both
	// nil.
	Upper []float64
	Lower []float64

	// Pattern, if non-nil, switches the per-cell arrays (X0, Gamma, Upper,
	// Lower) to CSR storage: each has length Pattern.Nnz() and is indexed by
	// stored position instead of i·n+j. Cells outside the pattern are
	// structurally zero — pinned at x = 0 — and are skipped by both solve
	// phases. See Storage, Sparsify, and Densify. Solutions of a CSR problem
	// carry X in the same stored order (length nnz).
	Pattern *Pattern

	Kind Kind
}

// Sentinel errors returned by problem validation and the solvers.
var (
	// ErrNotConverged is returned (wrapped) when the iteration limit is hit
	// before the convergence criterion is met. The accompanying Solution is
	// still the best iterate found.
	ErrNotConverged = errors.New("core: not converged within iteration limit")
	// ErrInfeasible is returned when the constraint set is empty, e.g.
	// fixed totals with Σs⁰ ≠ Σd⁰.
	ErrInfeasible = errors.New("core: infeasible problem")
)

// NewFixed constructs a fixed-totals diagonal problem (objective (13)).
func NewFixed(m, n int, x0, gamma, s0, d0 []float64) (*DiagonalProblem, error) {
	p := &DiagonalProblem{M: m, N: n, X0: x0, Gamma: gamma, S0: s0, D0: d0, Kind: FixedTotals}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// NewElastic constructs an elastic-totals diagonal problem (objective (5)).
func NewElastic(m, n int, x0, gamma, s0, alpha, d0, beta []float64) (*DiagonalProblem, error) {
	p := &DiagonalProblem{
		M: m, N: n, X0: x0, Gamma: gamma,
		S0: s0, Alpha: alpha, D0: d0, Beta: beta,
		Kind: ElasticTotals,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// NewBalanced constructs a SAM estimation problem (objective (9)): an n×n
// matrix whose row i and column i totals are equal and estimated with
// weights alpha around the priors s0.
func NewBalanced(n int, x0, gamma, s0, alpha []float64) (*DiagonalProblem, error) {
	p := &DiagonalProblem{
		M: n, N: n, X0: x0, Gamma: gamma,
		S0: s0, Alpha: alpha,
		Kind: Balanced,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// NewInterval constructs an interval-totals problem (the Harrigan–Buchanan
// variant): minimize the weighted deviation from the prior subject to
// slo ≤ rowsums ≤ shi and dlo ≤ colsums ≤ dhi.
func NewInterval(m, n int, x0, gamma, slo, shi, dlo, dhi []float64) (*DiagonalProblem, error) {
	p := &DiagonalProblem{
		M: m, N: n, X0: x0, Gamma: gamma,
		SLo: slo, SHi: shi, DLo: dlo, DHi: dhi,
		Kind: IntervalTotals,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// totalsImbalanceTol is the relative tolerance applied to Σs⁰ vs Σd⁰ for
// fixed-totals problems.
const totalsImbalanceTol = 1e-8

// Validate checks dimensions, weight positivity and, for fixed totals,
// feasibility of the transportation polytope. For CSR problems the pattern's
// structural invariants (row-pointer monotonicity, ordered and deduplicated
// column indices) are checked first and every per-cell array must have
// length nnz.
func (p *DiagonalProblem) Validate() error {
	if p.M <= 0 || p.N <= 0 {
		return fmt.Errorf("core: invalid dimensions %d×%d", p.M, p.N)
	}
	nv := p.M * p.N
	if p.Pattern != nil {
		if err := p.Pattern.Validate(p.M, p.N); err != nil {
			return err
		}
		nv = p.Pattern.Nnz()
	}
	if len(p.X0) != nv {
		return fmt.Errorf("core: len(X0) = %d, want %d", len(p.X0), nv)
	}
	for k, v := range p.X0 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			i, j := p.cell(k)
			return fmt.Errorf("core: X0[%d,%d] = %v, want finite", i, j, v)
		}
	}
	if len(p.Gamma) != nv {
		return fmt.Errorf("core: len(Gamma) = %d, want %d", len(p.Gamma), nv)
	}
	for k, g := range p.Gamma {
		if !(g > 0) || math.IsInf(g, 1) || math.IsNaN(g) {
			i, j := p.cell(k)
			return fmt.Errorf("core: Gamma[%d,%d] = %v, want finite positive", i, j, g)
		}
	}
	if p.Upper != nil {
		if len(p.Upper) != nv {
			return fmt.Errorf("core: len(Upper) = %d, want %d", len(p.Upper), nv)
		}
		for k, u := range p.Upper {
			if !(u >= 0) {
				i, j := p.cell(k)
				return fmt.Errorf("core: Upper[%d,%d] = %v, want nonnegative", i, j, u)
			}
		}
	}
	if p.Lower != nil {
		if len(p.Lower) != nv {
			return fmt.Errorf("core: len(Lower) = %d, want %d", len(p.Lower), nv)
		}
		for k, l := range p.Lower {
			if l < 0 || math.IsNaN(l) {
				i, j := p.cell(k)
				return fmt.Errorf("core: Lower[%d,%d] = %v, want >= 0", i, j, l)
			}
			if p.Upper != nil && l > p.Upper[k] {
				i, j := p.cell(k)
				return fmt.Errorf("core: %w: empty box [%g,%g] at (%d,%d)", ErrInfeasible, l, p.Upper[k], i, j)
			}
		}
	}
	if p.Kind != IntervalTotals {
		if len(p.S0) != p.M {
			return fmt.Errorf("core: len(S0) = %d, want %d", len(p.S0), p.M)
		}
		if err := finiteTotals("S0", p.S0); err != nil {
			return err
		}
		if p.Kind != Balanced {
			if err := finiteTotals("D0", p.D0); err != nil {
				return err
			}
		}
	}

	switch p.Kind {
	case FixedTotals:
		if len(p.D0) != p.N {
			return fmt.Errorf("core: len(D0) = %d, want %d", len(p.D0), p.N)
		}
		for i, s := range p.S0 {
			if s < 0 {
				return fmt.Errorf("core: %w: S0[%d] = %g < 0", ErrInfeasible, i, s)
			}
		}
		for j, d := range p.D0 {
			if d < 0 {
				return fmt.Errorf("core: %w: D0[%d] = %g < 0", ErrInfeasible, j, d)
			}
		}
		ss, sd := mat.Sum(p.S0), mat.Sum(p.D0)
		if math.Abs(ss-sd) > totalsImbalanceTol*math.Max(1, math.Abs(ss)) {
			return fmt.Errorf("core: %w: Σs⁰ = %g but Σd⁰ = %g", ErrInfeasible, ss, sd)
		}
	case ElasticTotals:
		if len(p.D0) != p.N {
			return fmt.Errorf("core: len(D0) = %d, want %d", len(p.D0), p.N)
		}
		if err := positiveWeights("Alpha", p.Alpha, p.M); err != nil {
			return err
		}
		if err := positiveWeights("Beta", p.Beta, p.N); err != nil {
			return err
		}
	case Balanced:
		if p.M != p.N {
			return fmt.Errorf("core: balanced problem must be square, got %d×%d", p.M, p.N)
		}
		if err := positiveWeights("Alpha", p.Alpha, p.N); err != nil {
			return err
		}
	case IntervalTotals:
		if err := validInterval("S", p.SLo, p.SHi, p.M); err != nil {
			return err
		}
		if err := validInterval("D", p.DLo, p.DHi, p.N); err != nil {
			return err
		}
		// Transportation feasibility with interval margins: the total-mass
		// intervals must intersect (up to rounding in the sums).
		sLo, sHi := mat.Sum(p.SLo), mat.Sum(p.SHi)
		dLo, dHi := mat.Sum(p.DLo), mat.Sum(p.DHi)
		tol := totalsImbalanceTol * math.Max(1, math.Abs(sHi)+math.Abs(dHi))
		if sLo > dHi+tol || dLo > sHi+tol {
			return fmt.Errorf("core: %w: row-total mass [%g,%g] and column-total mass [%g,%g] do not intersect",
				ErrInfeasible, sLo, sHi, dLo, dHi)
		}
	default:
		return fmt.Errorf("core: unknown Kind %d", p.Kind)
	}
	return nil
}

// validInterval checks one side's interval arrays.
func validInterval(name string, lo, hi []float64, n int) error {
	if len(lo) != n || len(hi) != n {
		return fmt.Errorf("core: len(%sLo/%sHi) = %d/%d, want %d", name, name, len(lo), len(hi), n)
	}
	for i := range lo {
		if lo[i] < 0 || math.IsNaN(lo[i]) {
			return fmt.Errorf("core: %w: %sLo[%d] = %g", ErrInfeasible, name, i, lo[i])
		}
		if hi[i] < lo[i] || math.IsNaN(hi[i]) {
			return fmt.Errorf("core: %w: %s interval %d is [%g,%g]", ErrInfeasible, name, i, lo[i], hi[i])
		}
	}
	return nil
}

// finiteTotals rejects NaN or infinite prior totals (length mismatches are
// caught by the per-Kind checks, so only the entries are verified here).
func finiteTotals(name string, t []float64) error {
	for i, v := range t {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: %s[%d] = %v, want finite", name, i, v)
		}
	}
	return nil
}

func positiveWeights(name string, w []float64, n int) error {
	if len(w) != n {
		return fmt.Errorf("core: len(%s) = %d, want %d", name, len(w), n)
	}
	for i, v := range w {
		if !(v > 0) || math.IsInf(v, 1) || math.IsNaN(v) {
			return fmt.Errorf("core: %s[%d] = %v, want finite positive", name, i, v)
		}
	}
	return nil
}

// Objective evaluates the problem's objective Θ_l at (x, s, d). For
// FixedTotals only x matters; for Balanced, s holds the shared totals and d
// is ignored.
func (p *DiagonalProblem) Objective(x, s, d []float64) float64 {
	var obj float64
	for k, v := range x {
		dev := v - p.X0[k]
		obj += p.Gamma[k] * dev * dev
	}
	switch p.Kind {
	case ElasticTotals:
		for i, v := range s {
			dev := v - p.S0[i]
			obj += p.Alpha[i] * dev * dev
		}
		for j, v := range d {
			dev := v - p.D0[j]
			obj += p.Beta[j] * dev * dev
		}
	case Balanced:
		for i, v := range s {
			dev := v - p.S0[i]
			obj += p.Alpha[i] * dev * dev
		}
	}
	return obj
}

// KLObjective evaluates the entropy-family objective at (x, s, d): the
// weighted generalized Kullback–Leibler divergence of x from the prior,
//
//	Σ_ij γ_ij (x_ij·ln(x_ij/x⁰_ij) − x_ij + x⁰_ij)
//
// plus the same quadratic penalties on elastic totals as the quadratic
// family (so the elastic dual relations s = s⁰ − λ/(2α) carry over
// unchanged). The divergence is +∞ outside its domain: negative entries, or
// a positive entry over a zero prior cell.
func (p *DiagonalProblem) KLObjective(x, s, d []float64) float64 {
	var obj float64
	for k, v := range x {
		x0 := p.X0[k]
		switch {
		case v < 0 || x0 < 0:
			return math.Inf(1)
		case v == 0:
			obj += p.Gamma[k] * x0
		case x0 == 0:
			return math.Inf(1)
		default:
			obj += p.Gamma[k] * (v*math.Log(v/x0) - v + x0)
		}
	}
	switch p.Kind {
	case ElasticTotals:
		for i, v := range s {
			dev := v - p.S0[i]
			obj += p.Alpha[i] * dev * dev
		}
		for j, v := range d {
			dev := v - p.D0[j]
			obj += p.Beta[j] * dev * dev
		}
	case Balanced:
		for i, v := range s {
			dev := v - p.S0[i]
			obj += p.Alpha[i] * dev * dev
		}
	}
	return obj
}

// ObjectiveFor evaluates the objective of the given family at (x, s, d).
func (p *DiagonalProblem) ObjectiveFor(obj Objective, x, s, d []float64) float64 {
	if obj == ObjectiveEntropy {
		return p.KLObjective(x, s, d)
	}
	return p.Objective(x, s, d)
}

// clampEntry applies entry k's box constraints to a stationary value.
func (p *DiagonalProblem) clampEntry(k int, v float64) float64 {
	lo := 0.0
	if p.Lower != nil {
		lo = p.Lower[k]
	}
	if v < lo {
		return lo
	}
	if p.Upper != nil && v > p.Upper[k] {
		return p.Upper[k]
	}
	return v
}

// cell maps a stored position k to its (row, column) coordinates in either
// storage layout; used by diagnostics and error messages.
func (p *DiagonalProblem) cell(k int) (i, j int) {
	if p.Pattern != nil {
		return p.Pattern.Cell(k)
	}
	return k / p.N, k % p.N
}

// RowSums computes Σ_j x_ij into dst (length M). x is in the problem's
// storage order (length m·n dense, nnz CSR).
func (p *DiagonalProblem) RowSums(x, dst []float64) {
	if pt := p.Pattern; pt != nil {
		for i := 0; i < p.M; i++ {
			dst[i] = mat.Sum(x[pt.RowPtr[i]:pt.RowPtr[i+1]])
		}
		return
	}
	for i := 0; i < p.M; i++ {
		dst[i] = mat.Sum(x[i*p.N : (i+1)*p.N])
	}
}

// ColSums computes Σ_i x_ij into dst (length N). x is in the problem's
// storage order.
func (p *DiagonalProblem) ColSums(x, dst []float64) {
	mat.Fill(dst, 0)
	if pt := p.Pattern; pt != nil {
		for k, v := range x {
			dst[pt.ColIdx[k]] += v
		}
		return
	}
	for i := 0; i < p.M; i++ {
		row := x[i*p.N : (i+1)*p.N]
		for j, v := range row {
			dst[j] += v
		}
	}
}
