package core_test

import (
	"context"
	"fmt"
	"math"

	"sea/internal/core"
)

// ExampleSolveDiagonal updates a 2×2 trade table to new known totals.
func ExampleSolveDiagonal() {
	x0 := []float64{10, 20, 30, 40}
	gamma := make([]float64, 4)
	for k, v := range x0 {
		gamma[k] = 1 / v // chi-square weighting
	}
	p, err := core.NewFixed(2, 2, x0, gamma,
		[]float64{36, 84}, // row totals grew 20%
		[]float64{48, 72}) // column totals
	if err != nil {
		panic(err)
	}
	opts := core.DefaultOptions()
	opts.Criterion = core.DualGradient
	opts.Epsilon = 1e-10
	sol, err := core.SolveDiagonal(context.Background(), p, opts)
	if err != nil {
		panic(err)
	}
	fmt.Printf("converged=%v\n", sol.Converged)
	for i := 0; i < 2; i++ {
		fmt.Printf("%.2f %.2f\n", sol.X[i*2], sol.X[i*2+1])
	}
	// With chi-square weights and uniformly grown totals, the update is the
	// exact 1.2× proportional scaling.
	// Output:
	// converged=true
	// 12.00 24.00
	// 36.00 48.00
}

// ExampleNewBalanced balances a tiny social accounting matrix: the row and
// column totals of each account must coincide.
func ExampleNewBalanced() {
	x0 := []float64{
		0, 8, 2,
		7, 0, 1,
		4, 1, 0,
	}
	gamma := make([]float64, 9)
	for k, v := range x0 {
		gamma[k] = 1 / math.Max(v, 0.1)
	}
	s0 := []float64{10, 8, 5}
	alpha := []float64{0.1, 0.125, 0.2}
	p, err := core.NewBalanced(3, x0, gamma, s0, alpha)
	if err != nil {
		panic(err)
	}
	opts := core.DefaultOptions()
	opts.Criterion = core.RelBalance
	opts.Epsilon = 1e-10
	sol, err := core.SolveDiagonal(context.Background(), p, opts)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 3; i++ {
		var receipts, expenditures float64
		for j := 0; j < 3; j++ {
			receipts += sol.X[i*3+j]
			expenditures += sol.X[j*3+i]
		}
		fmt.Printf("account %d: |receipts-expenditures| < 1e-9: %v\n",
			i, math.Abs(receipts-expenditures) < 1e-9)
	}
	// Output:
	// account 0: |receipts-expenditures| < 1e-9: true
	// account 1: |receipts-expenditures| < 1e-9: true
	// account 2: |receipts-expenditures| < 1e-9: true
}

// ExampleCheckKKT certifies a solution's optimality independently of the
// solver.
func ExampleCheckKKT() {
	p, _ := core.NewFixed(2, 2,
		[]float64{1, 1, 1, 1}, []float64{1, 1, 1, 1},
		[]float64{4, 4}, []float64{4, 4})
	opts := core.DefaultOptions()
	opts.Criterion = core.DualGradient
	opts.Epsilon = 1e-12
	sol, _ := core.SolveDiagonal(context.Background(), p, opts)
	rep := core.CheckKKT(p, sol)
	fmt.Printf("optimal within 1e-9: %v\n", rep.Satisfied(1e-9))
	// Output:
	// optimal within 1e-9: true
}
