package core

import (
	"math"
	"time"

	"sea/internal/scale"
)

// precondState owns the preconditioning stage's working memory: the scaled
// problem's data arrays, the warm-start procedure's scratch, and the
// unscaling factors for the solve that follows. It lives on the Arena when
// one is attached, so steady-state preconditioned solves reuse every buffer.
//
// The stage has two independent effects, selected by Options.Precondition:
//
//  1. Exact rescaling (all modes). The problem's mass data (X0, totals,
//     bounds) is divided by a power-of-two σ and its weight data (Γ, α, β)
//     multiplied by a power-of-two τ, both chosen to center the data's
//     magnitude near 1. No two-sided diagonal scaling can preserve the
//     unit-coefficient transportation constraints, so these two global
//     scalars are the ONLY exact data scalings available — and because
//     they are powers of two, every scaled entry, every arithmetic step of
//     the solve, and every unscaled output is bit-for-bit a relabeling of
//     the unpreconditioned computation (under KernelExact; the bisection
//     kernel's absolute brackets are not scale-covariant). Tolerances move
//     with the data: ε and the kernel/multiplier tolerances are rescaled
//     by the same exact factors (RelBalance's relative residual is
//     unitless and keeps ε, at the cost of its tiny-denominator guard
//     |s̃| > 1e-12 testing the scaled supply — the one documented
//     tolerance wart).
//
//  2. Dual warm start (PrecondSinkhorn, PrecondISP). Scaling alone cannot
//     cut iteration counts — dual block-coordinate ascent is invariant
//     under it — so the iteration win comes from estimating the column
//     multipliers μ⁰ on the scaled data and handing them to the solver
//     via Mu0. SEA's first row phase then derives the matching λ exactly.
//     ISP runs clamped additive Gauss–Seidel sweeps on the true KKT
//     system (see scale.System); Sinkhorn balances the positive-floored
//     prior and converts the multiplicative column factors to additive
//     multipliers. Warm starts change the trajectory (that is the point)
//     but not the fixed points: the preconditioned solution satisfies the
//     original KKT system to the solver's tolerance.
type precondState struct {
	// Scaled problem storage (prob's slices point into these).
	prob  DiagonalProblem
	x0    []float64
	gamma []float64
	s0    []float64
	d0    []float64
	alpha []float64
	beta  []float64
	upper []float64
	lower []float64
	slo   []float64
	shi   []float64
	dlo   []float64
	dhi   []float64

	// Warm-start scratch.
	slopes  []float64
	mu0     []float64
	lambda0 []float64
	colA    []float64
	colB    []float64

	// Unscaling factors and bookkeeping for the current solve.
	sigma     float64
	tau       float64
	criterion Criterion
	ns        int64
}

// apply builds the scaled problem and (for the warm-starting modes) the μ⁰
// estimate, mutating o in place — o is already the solver's private
// withDefaults copy. It returns the problem the solve should run on.
func (ps *precondState) apply(p *DiagonalProblem, o *Options) *DiagonalProblem {
	start := time.Now()
	ps.sigma = massScale(p)
	ps.tau = weightScale(p)
	ps.criterion = o.Criterion
	sp := ps.scaleProblem(p)

	// Tolerances move with the data, by exact power-of-two factors. ε is in
	// mass units for MaxAbsDelta (|Δx|) and DualGradient (constraint
	// residual); RelBalance is unitless. The kernel and multiplier bounds
	// are in multiplier units (·τ/σ).
	if o.Criterion != RelBalance {
		o.Epsilon /= ps.sigma
	}
	o.KernelTol *= ps.tau / ps.sigma
	if o.BoundMultipliers {
		o.MultiplierBound *= ps.tau / ps.sigma
	}
	if o.Mu0 != nil {
		// A caller-supplied warm start is in original units; rescale it
		// (and let ISP refine it below).
		ps.mu0 = resizeF(ps.mu0, len(o.Mu0))
		f := ps.tau / ps.sigma
		for j, v := range o.Mu0 {
			ps.mu0[j] = v * f
		}
		o.Mu0 = ps.mu0
	}

	switch o.Precondition {
	case PrecondISP:
		if ps.ispWarmStart(sp, o) {
			o.Mu0 = ps.mu0
		}
	case PrecondSinkhorn:
		if ps.sinkhornWarmStart(sp, o) {
			o.Mu0 = ps.mu0
		}
	}
	ps.ns = time.Since(start).Nanoseconds()
	return sp
}

// unscale converts the scaled solve's Solution back to original units in
// place. Every factor is a power of two, so under KernelExact the result is
// bit-for-bit the unpreconditioned solution (PrecondScale) or an exact
// relabeling of the warm-started trajectory's limit.
func (ps *precondState) unscale(sol *Solution) {
	σ, τ := ps.sigma, ps.tau
	if σ != 1 {
		scaleBy(sol.X, σ)
		scaleBy(sol.S, σ)
		scaleBy(sol.D, σ)
		if ps.criterion != RelBalance {
			sol.Residual *= σ
		}
	}
	if f := σ / τ; f != 1 {
		scaleBy(sol.Lambda, f)
		scaleBy(sol.Mu, f)
	}
	if f := σ * σ / τ; f != 1 {
		sol.Objective *= f
		sol.DualValue *= f
	}
	sol.PrecondNs = ps.ns
}

func scaleBy(xs []float64, f float64) {
	for i := range xs {
		xs[i] *= f
	}
}

// massScale picks the power-of-two σ that centers the problem's mass data
// (prior cells, totals, finite bounds) near 1: the largest magnitude is the
// robust, deterministic choice for taming overflow on wide-range data.
func massScale(p *DiagonalProblem) float64 {
	var mx float64
	scan := func(xs []float64) {
		for _, v := range xs {
			if a := math.Abs(v); a > mx && !math.IsInf(a, 1) {
				mx = a
			}
		}
	}
	scan(p.X0)
	scan(p.S0)
	scan(p.D0)
	scan(p.SLo)
	scan(p.SHi)
	scan(p.DLo)
	scan(p.DHi)
	scan(p.Lower)
	scan(p.Upper)
	return scale.Pow2Near(mx)
}

// weightScale picks the power-of-two 1/τ at the geometric midpoint of the
// Γ range, so Γ·τ straddles 1.
func weightScale(p *DiagonalProblem) float64 {
	gmin, gmax := math.Inf(1), 0.0
	for _, g := range p.Gamma {
		if g < gmin {
			gmin = g
		}
		if g > gmax {
			gmax = g
		}
	}
	return 1 / scale.Pow2Near(math.Sqrt(gmin*gmax))
}

// scaleProblem fills ps.prob with the σ/τ-scaled copy of p. The Pattern
// pointer is shared verbatim so an arena-adopted diagState keeps its CSC
// mirror warm across preconditioned solves.
func (ps *precondState) scaleProblem(p *DiagonalProblem) *DiagonalProblem {
	σ, τ := ps.sigma, ps.tau
	div := func(dst *[]float64, src []float64) []float64 {
		if src == nil {
			return nil
		}
		*dst = resizeF(*dst, len(src))
		for i, v := range src {
			(*dst)[i] = v / σ
		}
		return *dst
	}
	mul := func(dst *[]float64, src []float64) []float64 {
		if src == nil {
			return nil
		}
		*dst = resizeF(*dst, len(src))
		for i, v := range src {
			(*dst)[i] = v * τ
		}
		return *dst
	}
	ps.prob = DiagonalProblem{
		M: p.M, N: p.N, Kind: p.Kind, Pattern: p.Pattern,
		X0:    div(&ps.x0, p.X0),
		Gamma: mul(&ps.gamma, p.Gamma),
		S0:    div(&ps.s0, p.S0),
		D0:    div(&ps.d0, p.D0),
		Alpha: mul(&ps.alpha, p.Alpha),
		Beta:  mul(&ps.beta, p.Beta),
		Upper: div(&ps.upper, p.Upper),
		Lower: div(&ps.lower, p.Lower),
		SLo:   div(&ps.slo, p.SLo),
		SHi:   div(&ps.shi, p.SHi),
		DLo:   div(&ps.dlo, p.DLo),
		DHi:   div(&ps.dhi, p.DHi),
	}
	return &ps.prob
}

// matrixView wraps the scaled problem's cell layout as a scale.Matrix over
// the given per-cell values.
func matrixView(sp *DiagonalProblem, val []float64) scale.Matrix {
	if sp.Pattern != nil {
		return scale.CSR(sp.M, sp.N, val, sp.Pattern.RowPtr, sp.Pattern.ColIdx)
	}
	return scale.Dense(sp.M, sp.N, val)
}

// ispWarmStart runs PrecondSweeps clamped ISP sweeps on the scaled
// problem's exact KKT system and leaves the column-multiplier estimate in
// ps.mu0. It reports false (leaving Options untouched) for problem kinds
// the additive system does not model (IntervalTotals) or when the system
// fails validation; preconditioning then degrades to pure scaling.
func (ps *precondState) ispWarmStart(sp *DiagonalProblem, o *Options) bool {
	if sp.Kind == IntervalTotals {
		return false
	}
	nv := len(sp.Gamma)
	ps.slopes = resizeF(ps.slopes, nv)
	for k, g := range sp.Gamma {
		ps.slopes[k] = 0.5 / g
	}
	sys := scale.System{
		A:         matrixView(sp, ps.slopes),
		X0:        sp.X0,
		Lo:        sp.Lower,
		Up:        sp.Upper,
		RowTarget: sp.S0,
	}
	switch sp.Kind {
	case FixedTotals:
		sys.ColTarget = sp.D0
	case ElasticTotals:
		sys.ColTarget = sp.D0
		sys.RowDiag = halfInv(&ps.colA, sp.Alpha)
		sys.ColDiag = halfInv(&ps.colB, sp.Beta)
	case Balanced:
		sys.Coupled = true
		sys.RowDiag = halfInv(&ps.colA, sp.Alpha)
	}
	if sys.Validate() != nil {
		return false
	}
	ps.lambda0 = zeroed(ps.lambda0, sp.M)
	mu := zeroed(ps.mu0, sp.N)
	if o.Mu0 != nil {
		copy(mu, o.Mu0) // refine the caller's (already rescaled) estimate
	}
	ps.mu0 = mu
	sys.Run(ps.lambda0, mu, o.PrecondSweeps, o.Epsilon, nil, nil, nil)
	return true
}

// sinkhornWarmStart balances the positive-floored scaled prior to the
// scaled totals and converts the multiplicative column factors v_j into
// additive multiplier estimates μ⁰_j ≈ (v_j−1)·colsum⁰_j / Σ_i a_ij: the
// additive column adjustment that moves the same mass the balancing
// factors would. Reports false on structural failure (zero rows/columns
// with positive targets) or kinds without per-side targets.
func (ps *precondState) sinkhornWarmStart(sp *DiagonalProblem, o *Options) bool {
	if sp.Kind == IntervalTotals {
		return false
	}
	nv := len(sp.X0)
	ps.slopes = resizeF(ps.slopes, nv)
	// The balancing matrix is the prior floored to a small positive value
	// (scaled data is O(1), so the floor is absolute).
	const floor = 1e-8
	for k, v := range sp.X0 {
		if v > floor {
			ps.slopes[k] = v
		} else {
			ps.slopes[k] = floor
		}
	}
	a := matrixView(sp, ps.slopes)
	r := zeroed(ps.lambda0, sp.M)
	for i, v := range sp.S0 {
		if v > 0 {
			r[i] = v
		}
	}
	ps.lambda0 = r
	cSrc := sp.D0
	if sp.Kind == Balanced {
		cSrc = sp.S0
	}
	c := zeroed(ps.colA, sp.N)
	for j, v := range cSrc {
		if v > 0 {
			c[j] = v
		}
	}
	ps.colA = c
	u, v, _, err := scale.Sinkhorn(a, r, c, nil, nil, scale.SinkhornOptions{MaxIters: o.PrecondSweeps})
	if err != nil {
		return false
	}
	_ = u
	// Column sums of the floored prior and of the dual slopes.
	colSum0 := zeroed(ps.colB, sp.N)
	a.ColSums(colSum0)
	ps.colB = colSum0
	mu := zeroed(ps.mu0, sp.N)
	ps.mu0 = mu
	ga := matrixView(sp, sp.Gamma)
	for i := 0; i < ga.M; i++ {
		lo, hi := ga.Row(i)
		for k := lo; k < hi; k++ {
			mu[ga.Col(i, k)] += 0.5 / ga.Val[k]
		}
	}
	for j := 0; j < sp.N; j++ {
		if mu[j] > 0 {
			mu[j] = (v[j] - 1) * colSum0[j] / mu[j]
		}
	}
	return true
}

// halfInv fills dst with 0.5/src (the elastic diagonal terms e = 1/(2α)).
func halfInv(dst *[]float64, src []float64) []float64 {
	if src == nil {
		return nil
	}
	*dst = resizeF(*dst, len(src))
	for i, v := range src {
		(*dst)[i] = 0.5 / v
	}
	return *dst
}

func zeroed(buf []float64, n int) []float64 {
	buf = resizeF(buf, n)
	for i := range buf {
		buf[i] = 0
	}
	return buf
}
