package core

import (
	"context"
	"math/rand/v2"
	"testing"

	"sea/internal/parallel"
)

// sameSolution asserts bit-exact equality of two solutions.
func sameSolution(t *testing.T, name string, got, want *Solution) {
	t.Helper()
	for k := range want.X {
		if got.X[k] != want.X[k] {
			t.Fatalf("%s: X[%d] = %v, want %v (bit-exact)", name, k, got.X[k], want.X[k])
		}
	}
	for i := range want.Lambda {
		if got.Lambda[i] != want.Lambda[i] {
			t.Fatalf("%s: Lambda[%d] = %v, want %v", name, i, got.Lambda[i], want.Lambda[i])
		}
	}
	for j := range want.Mu {
		if got.Mu[j] != want.Mu[j] {
			t.Fatalf("%s: Mu[%d] = %v, want %v", name, j, got.Mu[j], want.Mu[j])
		}
	}
	if got.Iterations != want.Iterations {
		t.Fatalf("%s: %d iterations, want %d", name, got.Iterations, want.Iterations)
	}
	if got.Objective != want.Objective || got.DualValue != want.DualValue {
		t.Fatalf("%s: objective/dual %v/%v, want %v/%v", name, got.Objective, got.DualValue, want.Objective, want.DualValue)
	}
}

// TestWarmStartAblationBitExact: the kernel's warm-started sorts must be a
// pure performance choice — disabling them (Options.DisableWarmStart)
// changes nothing in the result, for every worker count.
func TestWarmStartAblationBitExact(t *testing.T) {
	p := determinismProblem(t)
	opts := func(disable bool) *Options {
		o := DefaultOptions()
		o.Criterion = MaxAbsDelta
		o.Epsilon = 1e-6
		o.DisableWarmStart = disable
		return o
	}
	ref, err := SolveDiagonal(context.Background(), p, opts(true))
	if err != nil {
		t.Fatalf("cold reference: %v", err)
	}
	for _, procs := range []int{1, 2, 7, 16} {
		o := opts(false)
		o.Procs = procs
		warm, err := SolveDiagonal(context.Background(), p, o)
		if err != nil {
			t.Fatalf("warm procs=%d: %v", procs, err)
		}
		sameSolution(t, "warm vs cold", warm, ref)
	}
}

// TestArenaReuseBitExact: repeated solves through one arena — first cold,
// then fully warm — must match a fresh, arena-free solve bit for bit, and
// the arena must survive shape changes by rebuilding.
func TestArenaReuseBitExact(t *testing.T) {
	p := determinismProblem(t)
	opts := func() *Options {
		o := DefaultOptions()
		o.Criterion = MaxAbsDelta
		o.Epsilon = 1e-6
		return o
	}
	ref, err := SolveDiagonal(context.Background(), p, opts())
	if err != nil {
		t.Fatalf("reference: %v", err)
	}

	ar := NewArena()
	defer ar.Close()
	for trial := 0; trial < 3; trial++ {
		o := opts()
		o.Arena = ar
		sol, err := SolveDiagonal(context.Background(), p, o)
		if err != nil {
			t.Fatalf("arena solve %d: %v", trial, err)
		}
		sameSolution(t, "arena", sol, ref)
	}

	// A different shape through the same arena rebuilds and stays correct.
	small := smallProblem(t, 13, 9)
	refSmall, err := SolveDiagonal(context.Background(), small, opts())
	if err != nil {
		t.Fatalf("small reference: %v", err)
	}
	o := opts()
	o.Arena = ar
	sol, err := SolveDiagonal(context.Background(), small, o)
	if err != nil {
		t.Fatalf("arena small solve: %v", err)
	}
	sameSolution(t, "arena after shape change", sol, refSmall)

	// And back to the original shape (cold again after the rebuild).
	o = opts()
	o.Arena = ar
	sol, err = SolveDiagonal(context.Background(), p, o)
	if err != nil {
		t.Fatalf("arena refill solve: %v", err)
	}
	sameSolution(t, "arena refilled", sol, ref)
}

// smallProblem builds a fixed-seed bounded fixed-totals instance of the
// given shape.
func smallProblem(t *testing.T, m, n int) *DiagonalProblem {
	t.Helper()
	rng := rand.New(rand.NewPCG(9, 11))
	x0 := make([]float64, m*n)
	gamma := make([]float64, m*n)
	for k := range x0 {
		x0[k] = rng.Float64() * 5
		gamma[k] = 0.5 + rng.Float64()
	}
	s0 := make([]float64, m)
	d0 := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			v := 1.1 * x0[i*n+j]
			s0[i] += v
			d0[j] += v
		}
	}
	p, err := NewFixed(m, n, x0, gamma, s0, d0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestArenaSteadyStateAllocs: with an arena and a caller-owned runner,
// repeated same-shape solves must allocate (near) nothing — the acceptance
// criterion for the reusable-arena layer.
func TestArenaSteadyStateAllocs(t *testing.T) {
	p := determinismProblem(t)
	pool := parallel.NewPool(1)
	defer pool.Close()
	ar := NewArena()
	defer ar.Close()
	o := DefaultOptions()
	o.Criterion = MaxAbsDelta
	o.Epsilon = 1e-6
	o.Runner = pool
	o.Arena = ar

	ctx := context.Background()
	// Warm up: populate the arena and the kernel states.
	for i := 0; i < 2; i++ {
		if _, err := SolveDiagonal(ctx, p, o); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := SolveDiagonal(ctx, p, o); err != nil {
			t.Fatal(err)
		}
	})
	// The steady state is a handful of fixed-size allocations (the options
	// copy); anything growing with the problem or iteration count is a leak.
	if allocs > 8 {
		t.Errorf("steady-state solve allocates %.0f objects/op; want ≤ 8", allocs)
	}
}

// TestArenaSingleFlight: an arena backing a running solve must reject a
// second concurrent acquisition rather than corrupt shared state.
func TestArenaSingleFlight(t *testing.T) {
	ar := NewArena()
	if err := ar.acquire(); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if err := ar.acquire(); err == nil {
		t.Fatal("second acquire succeeded; arenas must be single-flight")
	}
	ar.release()
	if err := ar.acquire(); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	ar.release()
}

// TestArenaGeneralSolver: the general solver accepts an arena for its inner
// diagonal state and stays bit-exact across reuse.
func TestArenaGeneralSolver(t *testing.T) {
	gp := randGeneralFixed(rand.New(rand.NewPCG(21, 22)), 6, 8)
	o := DefaultOptions()
	o.Criterion = MaxAbsDelta
	o.Epsilon = 1e-6
	ref, err := SolveGeneral(context.Background(), gp, o)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	ar := NewArena()
	defer ar.Close()
	for trial := 0; trial < 2; trial++ {
		oa := DefaultOptions()
		oa.Criterion = MaxAbsDelta
		oa.Epsilon = 1e-6
		oa.Arena = ar
		sol, err := SolveGeneral(context.Background(), gp, oa)
		if err != nil {
			t.Fatalf("arena general solve %d: %v", trial, err)
		}
		for k := range ref.X {
			if sol.X[k] != ref.X[k] {
				t.Fatalf("trial %d: X[%d] = %v, want %v", trial, k, sol.X[k], ref.X[k])
			}
		}
		if sol.Iterations != ref.Iterations {
			t.Fatalf("trial %d: %d iterations, want %d", trial, sol.Iterations, ref.Iterations)
		}
	}
}
