package core

import (
	"context"
	"math/rand/v2"
	"testing"
)

// TestBatchedMatchesUnbatchedAcrossProcs is the batched kernel's core-level
// contract: for every worker count and batch chunk size — including the
// degenerate one-subproblem-per-batch and everything-in-one-batch extremes —
// the batched phases produce the same solution, bit for bit, as the
// unbatched ablation path (Options.DisableBatch).
func TestBatchedMatchesUnbatchedAcrossProcs(t *testing.T) {
	p := determinismProblem(t)
	opts := func() *Options {
		o := DefaultOptions()
		o.Criterion = MaxAbsDelta
		o.Epsilon = 1e-6
		return o
	}

	refOpts := opts()
	refOpts.DisableBatch = true
	ref, err := SolveDiagonal(context.Background(), p, refOpts)
	if err != nil {
		t.Fatalf("unbatched reference solve: %v", err)
	}
	if !ref.Converged {
		t.Fatal("unbatched reference did not converge")
	}

	for _, procs := range []int{1, 2, 7, 16} {
		for _, events := range []int{0, 1, 997, 1 << 20} {
			o := opts()
			o.Procs = procs
			o.BatchEvents = events
			sol, err := SolveDiagonal(context.Background(), p, o)
			if err != nil {
				t.Fatalf("procs=%d events=%d: %v", procs, events, err)
			}
			sameSolution(t, testName(procs, events), sol, ref)
		}
	}
}

func testName(procs, events int) string {
	return "procs=" + itoa(procs) + "/events=" + itoa(events)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// onsetProblem builds an elastic instance whose dual descent takes well over
// warmOnset iterations to converge (elastic totals couple the two phases
// through the multipliers, so tight tolerances mean long runs).
func onsetProblem(t *testing.T) *DiagonalProblem {
	t.Helper()
	m, n := 40, 60
	rng := rand.New(rand.NewPCG(17, 23))
	x0 := make([]float64, m*n)
	gamma := make([]float64, m*n)
	for k := range x0 {
		x0[k] = rng.Float64() * 10
		gamma[k] = 0.5 + rng.Float64()
	}
	s0 := make([]float64, m)
	d0 := make([]float64, n)
	alpha := make([]float64, m)
	beta := make([]float64, n)
	for i := range s0 {
		s0[i] = 100 + rng.Float64()*50
		alpha[i] = 0.05 + rng.Float64()*0.05
	}
	for j := range d0 {
		d0[j] = 80 + rng.Float64()*40
		beta[j] = 0.05 + rng.Float64()*0.05
	}
	p, err := NewElastic(m, n, x0, gamma, s0, alpha, d0, beta)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestBatchedLongSolveWarmOnset drives the solve past the warm-start onset
// (iterations > warmOnset without an arena) with a tight tolerance, so the
// batched path exercises warm replays through the mid-solve State slots —
// and still matches the unbatched path bit for bit.
func TestBatchedLongSolveWarmOnset(t *testing.T) {
	p := onsetProblem(t)
	opts := func() *Options {
		o := DefaultOptions()
		o.Criterion = MaxAbsDelta
		o.Epsilon = 1e-11
		o.MaxIterations = 5000
		return o
	}

	refOpts := opts()
	refOpts.DisableBatch = true
	ref, err := SolveDiagonal(context.Background(), p, refOpts)
	if err != nil {
		t.Fatalf("unbatched reference solve: %v", err)
	}
	if ref.Iterations <= warmOnset {
		t.Fatalf("instance converged in %d iterations; the test needs > %d to engage warm onset",
			ref.Iterations, warmOnset)
	}

	o := opts()
	sol, err := SolveDiagonal(context.Background(), p, o)
	if err != nil {
		t.Fatal(err)
	}
	sameSolution(t, "batched-onset", sol, ref)
}

// TestBatchedArenaWarmBitExact runs back-to-back arena solves — the second
// replays per-iteration warm slots through the batch — against unbatched
// arena solves of the same sequence.
func TestBatchedArenaWarmBitExact(t *testing.T) {
	p := determinismProblem(t)
	opts := func(disable bool) *Options {
		o := DefaultOptions()
		o.Criterion = MaxAbsDelta
		o.Epsilon = 1e-6
		o.DisableBatch = disable
		o.Arena = NewArena()
		return o
	}
	ob, ou := opts(false), opts(true)
	for round := 0; round < 3; round++ {
		want, err := SolveDiagonal(context.Background(), p, ou)
		if err != nil {
			t.Fatalf("round %d unbatched: %v", round, err)
		}
		got, err := SolveDiagonal(context.Background(), p, ob)
		if err != nil {
			t.Fatalf("round %d batched: %v", round, err)
		}
		sameSolution(t, "arena-round-"+itoa(round), got, want)
	}
}
