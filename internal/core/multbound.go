package core

import (
	"math"

	"sea/internal/graphx"
)

// boundMultipliers implements the paper's Modified Algorithm (end of
// Section 3.1): when a row multiplier grows past the chosen R in absolute
// value, subtract it from every λ and add it to every μ in its support-graph
// connected component, which leaves λ_i + μ_j invariant on every positive
// entry and hence preserves the dual trajectory while keeping the iterates
// in a bounded set. The paper applies this to the Balanced and FixedTotals
// duals (l = 2, 3), whose level sets are unbounded along these shift
// directions.
//
// For Balanced problems the shared total s_j couples λ_j and μ_j through
// the term (2α_j s⁰_j − λ_j − μ_j)², so row node j and column node j are
// treated as always connected; the shift then preserves λ_j + μ_j too.
func (st *diagState) boundMultipliers() {
	R := st.o.MultiplierBound
	worst := 0.0
	for _, l := range st.lambda {
		if a := math.Abs(l); a > worst {
			worst = a
		}
	}
	if worst <= R {
		return
	}

	m, n := st.p.M, st.p.N
	uf := graphx.NewUnionFind(m + n)
	if pt := st.pat; pt != nil {
		for i := 0; i < m; i++ {
			for k := pt.RowPtr[i]; k < pt.RowPtr[i+1]; k++ {
				if st.x[k] > 0 {
					uf.Union(i, m+int(pt.ColIdx[k]))
				}
			}
		}
	} else {
		for i := 0; i < m; i++ {
			row := st.x[i*n : (i+1)*n]
			for j, v := range row {
				if v > 0 {
					uf.Union(i, m+j)
				}
			}
		}
	}
	if st.p.Kind == Balanced {
		for j := 0; j < n; j++ {
			uf.Union(j, m+j)
		}
	}

	// For each component containing an offending row, shift by that row's
	// multiplier (the largest offender in the component wins).
	shift := make(map[int]float64)
	for i, l := range st.lambda {
		if math.Abs(l) > R {
			root := uf.Find(i)
			if cur, ok := shift[root]; !ok || math.Abs(l) > math.Abs(cur) {
				shift[root] = l
			}
		}
	}
	if len(shift) == 0 {
		return
	}
	for i := range st.lambda {
		if c, ok := shift[uf.Find(i)]; ok {
			st.lambda[i] -= c
		}
	}
	for j := range st.mu {
		if c, ok := shift[uf.Find(m+j)]; ok {
			st.mu[j] += c
		}
	}
}
