package core

import (
	"context"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// TestQuickFixedAlwaysOptimal: property-based sweep — every randomly drawn
// feasible fixed-totals problem yields a KKT-certified optimum.
func TestQuickFixedAlwaysOptimal(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xC0FFEE))
		m := 1 + rng.IntN(7)
		n := 1 + rng.IntN(7)
		p := randFixed(rng, m, n, 1+rng.Float64()*1000, 0.5+rng.Float64()*3)
		sol, err := SolveDiagonal(context.Background(), p, tightOpts())
		if err != nil {
			return false
		}
		// Scale the KKT tolerance by the data magnitude.
		scale := 1.0
		for _, v := range p.S0 {
			if v > scale {
				scale = v
			}
		}
		return CheckKKT(p, sol).Satisfied(1e-6 * scale)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickElasticDualityGap: for every random elastic problem, strong
// duality holds at the computed solution.
func TestQuickElasticDualityGap(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xD0))
		p := randElastic(rng, 1+rng.IntN(6), 1+rng.IntN(6))
		sol, err := SolveDiagonal(context.Background(), p, tightOpts())
		if err != nil {
			return false
		}
		return math.Abs(sol.Gap()) <= 1e-5*(1+math.Abs(sol.Objective))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSEAObjectiveBeatsFeasiblePoints: the SEA optimum's objective is no
// worse than that of other feasible points (here: the proportional fill and
// scaled perturbations of the optimum projected back to feasibility).
func TestSEAObjectiveBeatsFeasiblePoints(t *testing.T) {
	rng := rand.New(rand.NewPCG(71, 72))
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.IntN(5)
		n := 2 + rng.IntN(5)
		p := randFixed(rng, m, n, 100, 2)
		sol, err := SolveDiagonal(context.Background(), p, tightOpts())
		if err != nil {
			t.Fatal(err)
		}
		// Proportional fill is feasible for consistent totals.
		total := 0.0
		for _, v := range p.S0 {
			total += v
		}
		fill := make([]float64, m*n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				fill[i*n+j] = p.S0[i] * p.D0[j] / total
			}
		}
		if fillObj := p.Objective(fill, nil, nil); fillObj < sol.Objective-1e-6*(1+sol.Objective) {
			t.Errorf("trial %d: proportional fill (%g) beat SEA (%g)", trial, fillObj, sol.Objective)
		}
	}
}

// TestUpperBoundsElastic exercises the Ohuchi–Kaji bounds together with
// elastic totals.
func TestUpperBoundsElastic(t *testing.T) {
	rng := rand.New(rand.NewPCG(73, 74))
	for trial := 0; trial < 10; trial++ {
		p := randElastic(rng, 4, 5)
		p.Upper = make([]float64, 20)
		for k := range p.Upper {
			if rng.Float64() < 0.3 {
				p.Upper[k] = 1 + rng.Float64()*20
			} else {
				p.Upper[k] = math.Inf(1)
			}
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		sol, err := SolveDiagonal(context.Background(), p, tightOpts())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for k, v := range sol.X {
			if v > p.Upper[k]+1e-9 {
				t.Fatalf("trial %d: bound violated at %d: %g > %g", trial, k, v, p.Upper[k])
			}
		}
		if rep := CheckKKT(p, sol); !rep.Satisfied(1e-6) {
			t.Errorf("trial %d: KKT %+v", trial, rep)
		}
	}
}

// TestUpperBoundsBalanced exercises bounds on the SAM variant.
func TestUpperBoundsBalanced(t *testing.T) {
	rng := rand.New(rand.NewPCG(75, 76))
	p := randBalanced(rng, 5)
	p.Upper = make([]float64, 25)
	for k := range p.Upper {
		p.Upper[k] = 5 + rng.Float64()*30
	}
	sol, err := SolveDiagonal(context.Background(), p, tightOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep := CheckKKT(p, sol); !rep.Satisfied(1e-6) {
		t.Errorf("KKT %+v", rep)
	}
}

// TestMuZeroMatchesDefault: passing an explicit zero warm start must equal
// the default initialization (Step 0: μ¹ = 0).
func TestMuZeroMatchesDefault(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 78))
	p := randFixed(rng, 6, 6, 100, 2)
	a, err := SolveDiagonal(context.Background(), p, tightOpts())
	if err != nil {
		t.Fatal(err)
	}
	o := tightOpts()
	o.Mu0 = make([]float64, p.N)
	b, err := SolveDiagonal(context.Background(), p, o)
	if err != nil {
		t.Fatal(err)
	}
	for k := range a.X {
		if a.X[k] != b.X[k] {
			t.Fatalf("explicit zero warm start diverged at %d", k)
		}
	}
	if a.Iterations != b.Iterations {
		t.Errorf("iteration counts differ: %d vs %d", a.Iterations, b.Iterations)
	}
}

// TestSolutionIndependentOfTraceAndCounters: instrumentation must not alter
// the numerics.
func TestSolutionIndependentOfTraceAndCounters(t *testing.T) {
	rng := rand.New(rand.NewPCG(79, 80))
	p := randBalanced(rng, 7)
	plain, err := SolveDiagonal(context.Background(), p, tightOpts())
	if err != nil {
		t.Fatal(err)
	}
	o := tightOpts()
	o.CostTrace = &CostTrace{}
	traced, err := SolveDiagonal(context.Background(), p, o)
	if err != nil {
		t.Fatal(err)
	}
	for k := range plain.X {
		if plain.X[k] != traced.X[k] {
			t.Fatalf("tracing changed the solution at %d", k)
		}
	}
}

// TestParallelConvCheckInvariance: parallelizing the convergence check must
// not change results, iteration counts, or convergence decisions — only the
// trace's cost attribution.
func TestParallelConvCheckInvariance(t *testing.T) {
	rng := rand.New(rand.NewPCG(111, 112))
	for _, mk := range []func() *DiagonalProblem{
		func() *DiagonalProblem { return randFixed(rng, 7, 5, 100, 2) },
		func() *DiagonalProblem { return randElastic(rng, 6, 8) },
	} {
		p := mk()
		for _, crit := range []Criterion{MaxAbsDelta, DualGradient} {
			base := tightOpts()
			base.Criterion = crit
			base.Epsilon = 1e-8
			ref, err := SolveDiagonal(context.Background(), p, base)
			if err != nil {
				t.Fatal(err)
			}
			par := tightOpts()
			par.Criterion = crit
			par.Epsilon = 1e-8
			par.ParallelConvCheck = true
			par.Procs = 3
			tr := &CostTrace{}
			par.CostTrace = tr
			got, err := SolveDiagonal(context.Background(), p, par)
			if err != nil {
				t.Fatal(err)
			}
			if got.Iterations != ref.Iterations {
				t.Errorf("%v: iterations %d vs %d", crit, got.Iterations, ref.Iterations)
			}
			for k := range ref.X {
				if got.X[k] != ref.X[k] {
					t.Fatalf("%v: X[%d] differs under parallel check", crit, k)
				}
			}
			// The trace must mark the check as parallel tasks with a small
			// serial remainder.
			last := tr.Phases[len(tr.Phases)-1]
			if len(last.Check) != p.M {
				t.Errorf("%v: check tasks = %d, want %d", crit, len(last.Check), p.M)
			}
			if last.Serial >= int64(p.M*p.N) {
				t.Errorf("%v: serial part %d not reduced", crit, last.Serial)
			}
		}
	}
}

// TestKernelBisectionMatchesExact: the solver produces the same optimum
// (within kernel tolerance) under either subproblem kernel, for every
// problem kind the bisection kernel supports.
func TestKernelBisectionMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(113, 114))
	for _, mk := range []func() *DiagonalProblem{
		func() *DiagonalProblem { return randFixed(rng, 6, 7, 100, 2) },
		func() *DiagonalProblem { return randElastic(rng, 5, 6) },
		func() *DiagonalProblem { return randBalanced(rng, 6) },
	} {
		p := mk()
		exact, err := SolveDiagonal(context.Background(), p, tightOpts())
		if err != nil {
			t.Fatal(err)
		}
		o := tightOpts()
		o.Epsilon = 1e-8
		o.Kernel = KernelBisection
		bis, err := SolveDiagonal(context.Background(), p, o)
		if err != nil {
			t.Fatalf("%v: %v", p.Kind, err)
		}
		for k := range exact.X {
			if math.Abs(exact.X[k]-bis.X[k]) > 1e-5*(1+math.Abs(exact.X[k])) {
				t.Fatalf("%v: kernels disagree at %d: %g vs %g", p.Kind, k, exact.X[k], bis.X[k])
			}
		}
		if rep := CheckKKT(p, bis); !rep.Satisfied(1e-4) {
			t.Errorf("%v: bisection-kernel KKT: %+v", p.Kind, rep)
		}
	}
}

// TestLowerBoundsSolver: the full Ohuchi–Kaji box on a fixed-totals solve.
func TestLowerBoundsSolver(t *testing.T) {
	rng := rand.New(rand.NewPCG(115, 116))
	for trial := 0; trial < 8; trial++ {
		m := 3 + rng.IntN(4)
		n := 3 + rng.IntN(4)
		p := randFixed(rng, m, n, 100, 2)
		p.Lower = make([]float64, m*n)
		for k := range p.Lower {
			if rng.Float64() < 0.4 {
				// Modest floors, small enough to keep the polytope nonempty.
				p.Lower[k] = rng.Float64() * p.S0[0] / float64(4*n)
			}
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		sol, err := SolveDiagonal(context.Background(), p, tightOpts())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for k, v := range sol.X {
			if v < p.Lower[k]-1e-9 {
				t.Fatalf("trial %d: X[%d]=%g below floor %g", trial, k, v, p.Lower[k])
			}
		}
		if rep := CheckKKT(p, sol); !rep.Satisfied(1e-5) {
			t.Errorf("trial %d: KKT %+v", trial, rep)
		}
		// Floors can only raise the objective versus the unconstrained-
		// below problem.
		free := *p
		free.Lower = nil
		fsol, err := SolveDiagonal(context.Background(), &free, tightOpts())
		if err != nil {
			t.Fatal(err)
		}
		if sol.Objective < fsol.Objective-1e-6*(1+fsol.Objective) {
			t.Errorf("trial %d: floored objective %g below free %g", trial, sol.Objective, fsol.Objective)
		}
	}
}
