package core

import "math"

// DualValue evaluates the dual function ζ_l(λ, μ) of the paper's Section 3.1
// — the minimum of the Lagrangian over x ≥ 0 (and the free totals). At the
// optimal multipliers it equals the optimal objective (strong duality), so
// Objective − DualValue is a computable optimality gap.
//
// The evaluation substitutes the closed-form Lagrangian minimizer, which
// also covers the upper-bounded (Ohuchi–Kaji) extension the algebraic
// formulas (24), (41), (51) do not.
func DualValue(p *DiagonalProblem, lambda, mu []float64) float64 {
	m, n := p.M, p.N
	var z float64
	if pt := p.Pattern; pt != nil {
		// Structural zeros are pinned in [0,0]: their minimizer is 0, their
		// deviation 0, so they contribute exactly nothing — skipping them is
		// an identity, not an approximation.
		for i := 0; i < m; i++ {
			li := lambda[i]
			for k := pt.RowPtr[i]; k < pt.RowPtr[i+1]; k++ {
				t := li + mu[pt.ColIdx[k]]
				g := p.Gamma[k]
				xh := p.clampEntry(k, p.X0[k]+t/(2*g))
				dev := xh - p.X0[k]
				z += g*dev*dev - t*xh
			}
		}
	} else {
		for i := 0; i < m; i++ {
			li := lambda[i]
			for j := 0; j < n; j++ {
				k := i*n + j
				t := li + mu[j]
				g := p.Gamma[k]
				xh := p.clampEntry(k, p.X0[k]+t/(2*g))
				dev := xh - p.X0[k]
				z += g*dev*dev - t*xh
			}
		}
	}
	switch p.Kind {
	case FixedTotals:
		for i := 0; i < m; i++ {
			z += lambda[i] * p.S0[i]
		}
		for j := 0; j < n; j++ {
			z += mu[j] * p.D0[j]
		}
	case ElasticTotals:
		for i := 0; i < m; i++ {
			// min over s: α(s−s⁰)² + λs at ŝ = s⁰ − λ/(2α).
			z += lambda[i]*p.S0[i] - lambda[i]*lambda[i]/(4*p.Alpha[i])
		}
		for j := 0; j < n; j++ {
			z += mu[j]*p.D0[j] - mu[j]*mu[j]/(4*p.Beta[j])
		}
	case Balanced:
		for j := 0; j < n; j++ {
			t := lambda[j] + mu[j]
			z += t*p.S0[j] - t*t/(4*p.Alpha[j])
		}
	case IntervalTotals:
		// min over t ∈ [lo, hi] of λ·t: the support term of the interval
		// constraint's concave dual.
		for i := 0; i < m; i++ {
			z += intervalSupport(lambda[i], p.SLo[i], p.SHi[i])
		}
		for j := 0; j < n; j++ {
			z += intervalSupport(mu[j], p.DLo[j], p.DHi[j])
		}
	}
	return z
}

// intervalSupport returns min_{t ∈ [lo,hi]} λ·t.
func intervalSupport(lambda, lo, hi float64) float64 {
	if lambda >= 0 {
		return lambda * lo
	}
	return lambda * hi
}

// DualPrimal recovers the Lagrangian-minimizing primal point X(λ,μ), S(λ,μ),
// D(λ,μ) of equations (23a–c)/(40a–b) — the point the equilibration phases
// manipulate implicitly. x must have length p.Nnz() (M·N dense, stored order
// for CSR); s length M; d length N.
func DualPrimal(p *DiagonalProblem, lambda, mu, x, s, d []float64) {
	m, n := p.M, p.N
	if pt := p.Pattern; pt != nil {
		for i := 0; i < m; i++ {
			li := lambda[i]
			for k := pt.RowPtr[i]; k < pt.RowPtr[i+1]; k++ {
				g := p.Gamma[k]
				x[k] = p.clampEntry(k, p.X0[k]+(li+mu[pt.ColIdx[k]])/(2*g))
			}
		}
	} else {
		for i := 0; i < m; i++ {
			li := lambda[i]
			for j := 0; j < n; j++ {
				k := i*n + j
				g := p.Gamma[k]
				x[k] = p.clampEntry(k, p.X0[k]+(li+mu[j])/(2*g))
			}
		}
	}
	switch p.Kind {
	case FixedTotals:
		copy(s, p.S0)
		copy(d, p.D0)
	case ElasticTotals:
		for i := 0; i < m; i++ {
			s[i] = p.S0[i] - lambda[i]/(2*p.Alpha[i])
		}
		for j := 0; j < n; j++ {
			d[j] = p.D0[j] - mu[j]/(2*p.Beta[j])
		}
	case Balanced:
		for j := 0; j < n; j++ {
			s[j] = p.S0[j] - (lambda[j]+mu[j])/(2*p.Alpha[j])
			d[j] = s[j]
		}
	case IntervalTotals:
		// The dual-consistent total asserts a multiplier's binding bound
		// (see intervalTarget), so the ∂ζ components measure both interval
		// violation and complementarity failure.
		if pt := p.Pattern; pt != nil {
			for i := 0; i < m; i++ {
				var rs float64
				for k := pt.RowPtr[i]; k < pt.RowPtr[i+1]; k++ {
					rs += x[k]
				}
				s[i] = intervalTarget(lambda[i], rs, p.SLo[i], p.SHi[i])
			}
			clear(d)
			for k, v := range x {
				d[pt.ColIdx[k]] += v
			}
			for j := 0; j < n; j++ {
				d[j] = intervalTarget(mu[j], d[j], p.DLo[j], p.DHi[j])
			}
			return
		}
		for i := 0; i < m; i++ {
			var rs float64
			for j := 0; j < n; j++ {
				rs += x[i*n+j]
			}
			s[i] = intervalTarget(lambda[i], rs, p.SLo[i], p.SHi[i])
		}
		for j := 0; j < n; j++ {
			var cs float64
			for i := 0; i < m; i++ {
				cs += x[i*n+j]
			}
			d[j] = intervalTarget(mu[j], cs, p.DLo[j], p.DHi[j])
		}
	}
}

// DualResiduals computes the gradient of ζ at (λ, μ): the row residuals
// S_i(λ,μ) − Σ_j X_ij(λ,μ) and column residuals D_j(λ,μ) − Σ_i X_ij(λ,μ)
// (equations (25), (26), (42)). ‖∇ζ‖ ≤ ε is exactly the theoretical
// stopping criterion (27)/(43)/(52).
func DualResiduals(p *DiagonalProblem, lambda, mu, gradL, gradM []float64) {
	m, n := p.M, p.N
	x := make([]float64, p.Nnz())
	s := make([]float64, m)
	d := make([]float64, n)
	DualPrimal(p, lambda, mu, x, s, d)
	if pt := p.Pattern; pt != nil {
		for i := 0; i < m; i++ {
			var rs float64
			for k := pt.RowPtr[i]; k < pt.RowPtr[i+1]; k++ {
				rs += x[k]
			}
			gradL[i] = s[i] - rs
		}
		clear(gradM)
		for k, v := range x {
			gradM[pt.ColIdx[k]] += v
		}
		for j := 0; j < n; j++ {
			gradM[j] = d[j] - gradM[j]
		}
		return
	}
	for i := 0; i < m; i++ {
		var rs float64
		for j := 0; j < n; j++ {
			rs += x[i*n+j]
		}
		gradL[i] = s[i] - rs
	}
	for j := 0; j < n; j++ {
		var cs float64
		for i := 0; i < m; i++ {
			cs += x[i*n+j]
		}
		gradM[j] = d[j] - cs
	}
}

// MaxDualResidual returns ‖∇ζ(λ,μ)‖∞.
func MaxDualResidual(p *DiagonalProblem, lambda, mu []float64) float64 {
	gl := make([]float64, p.M)
	gm := make([]float64, p.N)
	DualResiduals(p, lambda, mu, gl, gm)
	var worst float64
	for _, v := range gl {
		if a := math.Abs(v); a > worst {
			worst = a
		}
	}
	for _, v := range gm {
		if a := math.Abs(v); a > worst {
			worst = a
		}
	}
	return worst
}
