package core

import (
	"context"
	"math"
	"testing"
)

// TestSingleCell: the 1×1 problem in every flavour.
func TestSingleCell(t *testing.T) {
	gamma := []float64{2}
	// Fixed: x must equal the total.
	pf, err := NewFixed(1, 1, []float64{3}, gamma, []float64{7}, []float64{7})
	if err != nil {
		t.Fatal(err)
	}
	sf, err := SolveDiagonal(context.Background(), pf, tightOpts())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sf.X[0]-7) > 1e-12 {
		t.Errorf("fixed 1×1: X = %g, want 7", sf.X[0])
	}
	// Elastic: min 2(x−3)² + (s−5)² + (d−9)² s.t. x=s=d.
	// Objective g(x) = 2(x−3)²+(x−5)²+(x−9)²; g'(x) = 4x−12+2x−10+2x−18 = 8x−40 → x = 5.
	pe, err := NewElastic(1, 1, []float64{3}, gamma, []float64{5}, []float64{1}, []float64{9}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	se, err := SolveDiagonal(context.Background(), pe, tightOpts())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(se.X[0]-5) > 1e-9 {
		t.Errorf("elastic 1×1: X = %g, want 5", se.X[0])
	}
	// Balanced 1×1: row total equals column total trivially; the estimate
	// trades x against the total prior: min 2(x−3)² + (s−6)², x=s →
	// g'(x) = 4x−12+2x−12 = 0 → x = 4.
	pb, err := NewBalanced(1, []float64{3}, gamma, []float64{6}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := SolveDiagonal(context.Background(), pb, tightOpts())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sb.X[0]-4) > 1e-9 {
		t.Errorf("balanced 1×1: X = %g, want 4", sb.X[0])
	}
}

// TestSingleRowAndColumn: degenerate shapes 1×n and m×1.
func TestSingleRowAndColumn(t *testing.T) {
	// 1×3 fixed: the row constraint and the columns pin everything:
	// x_j = d_j exactly.
	p, err := NewFixed(1, 3,
		[]float64{1, 2, 3}, []float64{1, 1, 1},
		[]float64{12}, []float64{3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveDiagonal(context.Background(), p, tightOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 4, 5}
	for j, w := range want {
		if math.Abs(sol.X[j]-w) > 1e-9 {
			t.Errorf("1×3: X[%d] = %g, want %g", j, sol.X[j], w)
		}
	}
	// 3×1 mirror.
	p2, err := NewFixed(3, 1,
		[]float64{1, 2, 3}, []float64{1, 1, 1},
		[]float64{3, 4, 5}, []float64{12})
	if err != nil {
		t.Fatal(err)
	}
	sol2, err := SolveDiagonal(context.Background(), p2, tightOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if math.Abs(sol2.X[i]-w) > 1e-9 {
			t.Errorf("3×1: X[%d] = %g, want %g", i, sol2.X[i], w)
		}
	}
}

// TestZeroTotals: rows or columns pinned to zero force their cells to zero.
func TestZeroTotals(t *testing.T) {
	p, err := NewFixed(2, 2,
		[]float64{5, 5, 5, 5}, []float64{1, 1, 1, 1},
		[]float64{0, 10}, []float64{4, 6})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveDiagonal(context.Background(), p, tightOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Entries sitting exactly on a kernel breakpoint may leak O(ε) mass.
	if sol.X[0] > 1e-9 || sol.X[1] > 1e-9 {
		t.Errorf("zero-total row not zeroed: %v", sol.X[:2])
	}
	if math.Abs(sol.X[2]-4) > 1e-9 || math.Abs(sol.X[3]-6) > 1e-9 {
		t.Errorf("remaining row wrong: %v", sol.X[2:])
	}
}

// TestNegativePrior: negative prior entries are legal (the estimate is
// still constrained to be nonnegative) — the SPE isomorphism depends on it.
func TestNegativePrior(t *testing.T) {
	p, err := NewFixed(2, 2,
		[]float64{-3, 2, 2, -1}, []float64{1, 1, 1, 1},
		[]float64{2, 2}, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveDiagonal(context.Background(), p, tightOpts())
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range sol.X {
		if v < 0 {
			t.Errorf("X[%d] = %g negative", k, v)
		}
	}
	if rep := CheckKKT(p, sol); !rep.Satisfied(1e-7) {
		t.Errorf("KKT: %+v", rep)
	}
}

// TestExtremeWeightSpread: γ spanning six orders of magnitude must not
// break the kernel or the dual ascent. (The convergence rate degrades with
// the spread exactly as the paper's m_l/M_l² bound (63) predicts, so the
// spread and tolerance here are chosen to stay within a sane iteration
// budget; ten orders of magnitude would satisfy the theory but not a CI
// timeout.)
func TestExtremeWeightSpread(t *testing.T) {
	m, n := 3, 3
	x0 := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	gamma := []float64{1e-3, 1, 1e3, 1, 1e-2, 10, 1e2, 1, 1e-3}
	s0 := []float64{12, 30, 48}
	d0 := []float64{24, 30, 36}
	p, err := NewFixed(m, n, x0, gamma, s0, d0)
	if err != nil {
		t.Fatal(err)
	}
	o := tightOpts()
	o.Epsilon = 1e-6
	sol, err := SolveDiagonal(context.Background(), p, o)
	if err != nil {
		t.Fatal(err)
	}
	if rep := CheckKKT(p, sol); !rep.Satisfied(1e-4) {
		t.Errorf("KKT under extreme spread: %+v", rep)
	}
}

// TestHugeTotals: magnitudes around 1e12 (national accounts in dollars).
func TestHugeTotals(t *testing.T) {
	scale := 1e12
	p, err := NewFixed(2, 2,
		[]float64{1 * scale, 2 * scale, 3 * scale, 4 * scale},
		[]float64{1 / scale, 1 / scale, 1 / scale, 1 / scale},
		[]float64{4 * scale, 8 * scale}, []float64{5 * scale, 7 * scale})
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	o.Criterion = RelBalance // relative criterion for huge magnitudes
	o.Epsilon = 1e-12
	o.MaxIterations = 500000
	sol, err := SolveDiagonal(context.Background(), p, o)
	if err != nil {
		t.Fatal(err)
	}
	rs := make([]float64, 2)
	p.RowSums(sol.X, rs)
	for i := range rs {
		if math.Abs(rs[i]-p.S0[i]) > 1e-3*scale*1e-9 {
			t.Errorf("row %d total off by %g", i, rs[i]-p.S0[i])
		}
	}
}

// TestSTONERegression pins the balanced STONE solve to a snapshot of its
// account totals, guarding the whole diagonal-balanced pipeline against
// behavioural drift.
func TestSTONERegression(t *testing.T) {
	// Mirror problems.SAMFromDataset without importing it (cycle).
	x0 := []float64{
		0, 74.1, 17.2, 26.0, 13.5,
		105.2, 0, 5.9, 0, 0,
		22.4, 13.1, 0, 0, 0,
		0, 24.8, 6.3, 0, 0,
		10.7, 0, 0, 1.9, 0,
	}
	s0 := []float64{131.0, 112.5, 35.8, 31.4, 12.8}
	gamma := make([]float64, 25)
	for k, v := range x0 {
		gamma[k] = 1 / math.Max(v, 0.1)
	}
	alpha := make([]float64, 5)
	for i, v := range s0 {
		alpha[i] = 1 / v
	}
	p, err := NewBalanced(5, x0, gamma, s0, alpha)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveDiagonal(context.Background(), p, tightOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Invariants rather than exact floats: balance, objective band, and
	// receipts ordering (production remains the largest account).
	var rowSums [5]float64
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			rowSums[i] += sol.X[i*5+j]
		}
	}
	if rowSums[0] <= rowSums[1] || rowSums[1] <= rowSums[2] {
		t.Errorf("account size ordering changed: %v", rowSums)
	}
	if sol.Objective <= 0 || sol.Objective > 50 {
		t.Errorf("objective %g outside historical band (0, 50]", sol.Objective)
	}
	if !sol.Converged {
		t.Error("STONE did not converge")
	}
}
