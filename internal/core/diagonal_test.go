package core

import (
	"context"
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"sea/internal/metrics"
)

// tightOpts returns options for high-accuracy solves in tests.
func tightOpts() *Options {
	o := DefaultOptions()
	o.Epsilon = 1e-10
	o.Criterion = DualGradient
	o.MaxIterations = 500000
	return o
}

// randFixed generates a random feasible fixed-totals problem with the
// paper's Table 1 construction: x⁰ uniform in [.1, hi], γ = 1/x⁰, totals a
// multiple of the prior sums.
func randFixed(rng *rand.Rand, m, n int, hi, factor float64) *DiagonalProblem {
	x0 := make([]float64, m*n)
	gamma := make([]float64, m*n)
	for k := range x0 {
		x0[k] = 0.1 + rng.Float64()*(hi-0.1)
		gamma[k] = 1 / x0[k]
	}
	s0 := make([]float64, m)
	d0 := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s0[i] += factor * x0[i*n+j]
			d0[j] += factor * x0[i*n+j]
		}
	}
	p, err := NewFixed(m, n, x0, gamma, s0, d0)
	if err != nil {
		panic(err)
	}
	return p
}

// randElastic generates a random elastic-totals problem.
func randElastic(rng *rand.Rand, m, n int) *DiagonalProblem {
	x0 := make([]float64, m*n)
	gamma := make([]float64, m*n)
	for k := range x0 {
		x0[k] = rng.Float64() * 100
		gamma[k] = 0.1 + rng.Float64()
	}
	s0 := make([]float64, m)
	alpha := make([]float64, m)
	for i := range s0 {
		s0[i] = rng.Float64() * 100 * float64(n)
		alpha[i] = 0.1 + rng.Float64()
	}
	d0 := make([]float64, n)
	beta := make([]float64, n)
	for j := range d0 {
		d0[j] = rng.Float64() * 100 * float64(m)
		beta[j] = 0.1 + rng.Float64()
	}
	p, err := NewElastic(m, n, x0, gamma, s0, alpha, d0, beta)
	if err != nil {
		panic(err)
	}
	return p
}

// randBalanced generates a random SAM estimation problem.
func randBalanced(rng *rand.Rand, n int) *DiagonalProblem {
	x0 := make([]float64, n*n)
	gamma := make([]float64, n*n)
	for k := range x0 {
		x0[k] = rng.Float64() * 50
		gamma[k] = 0.1 + rng.Float64()
	}
	s0 := make([]float64, n)
	alpha := make([]float64, n)
	for i := range s0 {
		s0[i] = rng.Float64() * 50 * float64(n)
		alpha[i] = 0.1 + rng.Float64()
	}
	p, err := NewBalanced(n, x0, gamma, s0, alpha)
	if err != nil {
		panic(err)
	}
	return p
}

func TestFixedExactRecovery(t *testing.T) {
	// If the prior already satisfies the totals, the solution is the prior.
	rng := rand.New(rand.NewPCG(1, 1))
	p := randFixed(rng, 5, 7, 100, 1) // factor 1: totals equal the prior sums
	sol, err := SolveDiagonal(context.Background(), p, tightOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Converged {
		t.Fatal("not converged")
	}
	for k := range sol.X {
		if math.Abs(sol.X[k]-p.X0[k]) > 1e-7 {
			t.Fatalf("X[%d] = %g, want prior %g", k, sol.X[k], p.X0[k])
		}
	}
	if sol.Objective > 1e-10 {
		t.Errorf("objective = %g, want ~0", sol.Objective)
	}
}

func TestFixedUniformKnownSolution(t *testing.T) {
	// γ = 1, x⁰ = 0, all totals equal: by symmetry x_ij = c/n.
	n := 4
	x0 := make([]float64, n*n)
	gamma := make([]float64, n*n)
	s0 := make([]float64, n)
	d0 := make([]float64, n)
	for k := range gamma {
		gamma[k] = 1
	}
	for i := range s0 {
		s0[i] = 8
		d0[i] = 8
	}
	p, err := NewFixed(n, n, x0, gamma, s0, d0)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveDiagonal(context.Background(), p, tightOpts())
	if err != nil {
		t.Fatal(err)
	}
	for k := range sol.X {
		if math.Abs(sol.X[k]-2) > 1e-8 {
			t.Fatalf("X[%d] = %g, want 2", k, sol.X[k])
		}
	}
}

func TestFixedKKT(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	for trial := 0; trial < 10; trial++ {
		m := 2 + rng.IntN(8)
		n := 2 + rng.IntN(8)
		p := randFixed(rng, m, n, 1000, 2)
		sol, err := SolveDiagonal(context.Background(), p, tightOpts())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rep := CheckKKT(p, sol)
		// Row residual is the stopping quantity; everything else is exact
		// by construction of the phases.
		if !rep.Satisfied(1e-6) {
			t.Errorf("trial %d (%d×%d): KKT violated: %+v", trial, m, n, rep)
		}
	}
}

func TestElasticExactRecovery(t *testing.T) {
	// Priors that are already mutually consistent are reproduced exactly.
	rng := rand.New(rand.NewPCG(3, 3))
	m, n := 4, 6
	p := randElastic(rng, m, n)
	// Overwrite totals with the prior sums so (x⁰, rowsums, colsums) is
	// feasible with zero objective.
	for i := 0; i < m; i++ {
		p.S0[i] = 0
		for j := 0; j < n; j++ {
			p.S0[i] += p.X0[i*n+j]
		}
	}
	for j := 0; j < n; j++ {
		p.D0[j] = 0
		for i := 0; i < m; i++ {
			p.D0[j] += p.X0[i*n+j]
		}
	}
	sol, err := SolveDiagonal(context.Background(), p, tightOpts())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective > 1e-8 {
		t.Errorf("objective = %g, want ~0", sol.Objective)
	}
	for k := range sol.X {
		if math.Abs(sol.X[k]-p.X0[k]) > 1e-6 {
			t.Fatalf("X[%d] = %g, want %g", k, sol.X[k], p.X0[k])
		}
	}
}

func TestElasticKKTAndDuality(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	for trial := 0; trial < 10; trial++ {
		m := 2 + rng.IntN(6)
		n := 2 + rng.IntN(6)
		p := randElastic(rng, m, n)
		sol, err := SolveDiagonal(context.Background(), p, tightOpts())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rep := CheckKKT(p, sol)
		if !rep.Satisfied(1e-6) {
			t.Errorf("trial %d: KKT violated: %+v", trial, rep)
		}
		// Strong duality at the optimum.
		gap := sol.Gap()
		if math.Abs(gap) > 1e-5*(1+math.Abs(sol.Objective)) {
			t.Errorf("trial %d: duality gap %g (obj %g, dual %g)", trial, gap, sol.Objective, sol.DualValue)
		}
	}
}

func TestBalancedKKTAndBalance(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.IntN(8)
		p := randBalanced(rng, n)
		sol, err := SolveDiagonal(context.Background(), p, tightOpts())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rep := CheckKKT(p, sol)
		if !rep.Satisfied(1e-6) {
			t.Errorf("trial %d: KKT violated: %+v", trial, rep)
		}
		// Definitional SAM property: row i total equals column i total.
		rowSum := make([]float64, n)
		colSum := make([]float64, n)
		p.RowSums(sol.X, rowSum)
		p.ColSums(sol.X, colSum)
		for i := 0; i < n; i++ {
			if math.Abs(rowSum[i]-colSum[i]) > 1e-6*(1+math.Abs(rowSum[i])) {
				t.Errorf("trial %d: account %d unbalanced: receipts %g vs expenditures %g",
					trial, i, rowSum[i], colSum[i])
			}
		}
		if sol.D[0] != sol.S[0] {
			t.Error("balanced solution should share totals")
		}
	}
}

func TestBalancedExactRecovery(t *testing.T) {
	// A symmetric prior with matching totals is already optimal.
	n := 5
	rng := rand.New(rand.NewPCG(6, 6))
	x0 := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.Float64() * 10
			x0[i*n+j] = v
			x0[j*n+i] = v
		}
	}
	gamma := make([]float64, n*n)
	alpha := make([]float64, n)
	s0 := make([]float64, n)
	for k := range gamma {
		gamma[k] = 1
	}
	for i := 0; i < n; i++ {
		alpha[i] = 1
		for j := 0; j < n; j++ {
			s0[i] += x0[i*n+j]
		}
	}
	p, err := NewBalanced(n, x0, gamma, s0, alpha)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveDiagonal(context.Background(), p, tightOpts())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective > 1e-9 {
		t.Errorf("objective = %g, want ~0", sol.Objective)
	}
}

func TestProcsInvariance(t *testing.T) {
	// The parallel phases write disjoint ranges, so the result must be
	// bit-identical for any worker count.
	rng := rand.New(rand.NewPCG(7, 7))
	p := randFixed(rng, 12, 9, 500, 2)
	o := tightOpts()
	o.Procs = 1
	ref, err := SolveDiagonal(context.Background(), p, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{2, 4, 7} {
		o := tightOpts()
		o.Procs = procs
		sol, err := SolveDiagonal(context.Background(), p, o)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Iterations != ref.Iterations {
			t.Errorf("procs=%d: iterations %d vs %d", procs, sol.Iterations, ref.Iterations)
		}
		for k := range sol.X {
			if sol.X[k] != ref.X[k] {
				t.Fatalf("procs=%d: X[%d] differs: %g vs %g", procs, k, sol.X[k], ref.X[k])
			}
		}
	}
}

func TestCriteriaAgree(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	p := randFixed(rng, 6, 6, 100, 2)
	var objs []float64
	for _, crit := range []Criterion{MaxAbsDelta, RelBalance, DualGradient} {
		o := DefaultOptions()
		o.Criterion = crit
		o.Epsilon = 1e-9
		o.MaxIterations = 500000
		sol, err := SolveDiagonal(context.Background(), p, o)
		if err != nil {
			t.Fatalf("%v: %v", crit, err)
		}
		objs = append(objs, sol.Objective)
	}
	for i := 1; i < len(objs); i++ {
		if math.Abs(objs[i]-objs[0]) > 1e-5*(1+math.Abs(objs[0])) {
			t.Errorf("criteria disagree on objective: %v", objs)
		}
	}
}

func TestCheckEvery(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	p := randElastic(rng, 8, 8)
	var checks [2]int64
	for idx, every := range []int{1, 5} {
		o := tightOpts()
		o.CheckEvery = every
		var c metrics.Counters
		o.Counters = &c
		sol, err := SolveDiagonal(context.Background(), p, o)
		if err != nil {
			t.Fatal(err)
		}
		if !sol.Converged {
			t.Fatal("not converged")
		}
		if every > 1 && sol.Iterations%every != 0 {
			t.Errorf("CheckEvery=%d but stopped at iteration %d", every, sol.Iterations)
		}
		checks[idx] = c.Snapshot().ConvChecks
	}
	if checks[1] >= checks[0] {
		t.Errorf("CheckEvery=5 ran %d checks, CheckEvery=1 ran %d; want fewer", checks[1], checks[0])
	}
}

func TestWarmStart(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 10))
	p := randElastic(rng, 10, 10)
	o := tightOpts()
	cold, err := SolveDiagonal(context.Background(), p, o)
	if err != nil {
		t.Fatal(err)
	}
	o2 := tightOpts()
	o2.Mu0 = cold.Mu
	warm, err := SolveDiagonal(context.Background(), p, o2)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations > cold.Iterations {
		t.Errorf("warm start took %d iterations vs cold %d", warm.Iterations, cold.Iterations)
	}
	if warm.Iterations > 2 {
		t.Errorf("warm start from the optimum took %d iterations, want <= 2", warm.Iterations)
	}
}

func TestUpperBounds(t *testing.T) {
	// Without bounds one entry wants to be large; cap it and verify the
	// bound binds and KKT still holds.
	m, n := 3, 3
	x0 := []float64{
		10, 0, 0,
		0, 0, 0,
		0, 0, 0,
	}
	gamma := make([]float64, 9)
	for k := range gamma {
		gamma[k] = 1
	}
	s0 := []float64{9, 3, 3}
	d0 := []float64{9, 3, 3}
	upper := make([]float64, 9)
	for k := range upper {
		upper[k] = math.Inf(1)
	}
	upper[0] = 4 // cap x_00
	p := &DiagonalProblem{M: m, N: n, X0: x0, Gamma: gamma, S0: s0, D0: d0, Upper: upper, Kind: FixedTotals}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	sol, err := SolveDiagonal(context.Background(), p, tightOpts())
	if err != nil {
		t.Fatal(err)
	}
	if sol.X[0] > 4+1e-9 {
		t.Errorf("X[0,0] = %g exceeds bound 4", sol.X[0])
	}
	rep := CheckKKT(p, sol)
	if !rep.Satisfied(1e-6) {
		t.Errorf("KKT violated with bounds: %+v", rep)
	}
}

func TestNotConverged(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	p := randElastic(rng, 10, 10)
	o := tightOpts()
	o.MaxIterations = 1
	sol, err := SolveDiagonal(context.Background(), p, o)
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged", err)
	}
	if sol == nil || sol.Converged {
		t.Error("should return non-converged last iterate")
	}
	if sol.Iterations != 1 {
		t.Errorf("iterations = %d, want 1", sol.Iterations)
	}
}

func TestInfeasibleTotals(t *testing.T) {
	x0 := []float64{1, 1, 1, 1}
	gamma := []float64{1, 1, 1, 1}
	if _, err := NewFixed(2, 2, x0, gamma, []float64{3, 3}, []float64{1, 1}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("unbalanced totals: err = %v, want ErrInfeasible", err)
	}
	if _, err := NewFixed(2, 2, x0, gamma, []float64{-1, 5}, []float64{2, 2}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("negative total: err = %v, want ErrInfeasible", err)
	}
}

func TestValidationErrors(t *testing.T) {
	x0 := []float64{1, 1, 1, 1}
	gamma := []float64{1, 1, 1, 1}
	if _, err := NewFixed(0, 2, nil, nil, nil, nil); err == nil {
		t.Error("zero dims accepted")
	}
	if _, err := NewFixed(2, 2, x0[:3], gamma, []float64{2, 2}, []float64{2, 2}); err == nil {
		t.Error("short X0 accepted")
	}
	badGamma := []float64{1, 0, 1, 1}
	if _, err := NewFixed(2, 2, x0, badGamma, []float64{2, 2}, []float64{2, 2}); err == nil {
		t.Error("zero gamma accepted")
	}
	if _, err := NewBalanced(2, x0, gamma, []float64{2, 2}, []float64{1, -1}); err == nil {
		t.Error("negative alpha accepted")
	}
	p := &DiagonalProblem{M: 2, N: 3, X0: make([]float64, 6), Gamma: []float64{1, 1, 1, 1, 1, 1}, S0: []float64{1, 1}, Alpha: []float64{1, 1}, Kind: Balanced}
	if err := p.Validate(); err == nil {
		t.Error("non-square balanced accepted")
	}
}

func TestCountersAndTrace(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 12))
	p := randFixed(rng, 5, 4, 100, 2)
	o := tightOpts()
	var c metrics.Counters
	tr := &CostTrace{}
	o.Counters = &c
	o.CostTrace = tr
	sol, err := SolveDiagonal(context.Background(), p, o)
	if err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if snap.Iterations != int64(sol.Iterations) {
		t.Errorf("counter iterations %d != solution iterations %d", snap.Iterations, sol.Iterations)
	}
	wantEq := int64(sol.Iterations) * int64(p.M+p.N)
	if snap.Equilibrations != wantEq {
		t.Errorf("equilibrations = %d, want %d", snap.Equilibrations, wantEq)
	}
	if snap.Ops <= 0 || snap.SerialOps <= 0 || snap.ConvChecks <= 0 {
		t.Errorf("counters not populated: %v", snap)
	}
	if len(tr.Phases) != sol.Iterations {
		t.Errorf("trace has %d phases, want %d", len(tr.Phases), sol.Iterations)
	}
	for i, ph := range tr.Phases {
		if len(ph.Row) != p.M || len(ph.Col) != p.N {
			t.Fatalf("phase %d: task vectors sized %d/%d", i, len(ph.Row), len(ph.Col))
		}
		for _, v := range ph.Row {
			if v <= 0 {
				t.Fatalf("phase %d: zero row task cost", i)
			}
		}
	}
	if tr.TotalOps() <= 0 {
		t.Error("TotalOps = 0")
	}
}

func TestBoundMultipliersAgrees(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 13))
	p := randFixed(rng, 6, 6, 100, 2)
	ref, err := SolveDiagonal(context.Background(), p, tightOpts())
	if err != nil {
		t.Fatal(err)
	}
	o := tightOpts()
	o.BoundMultipliers = true
	o.MultiplierBound = 1 // absurdly tight to force renormalization
	sol, err := SolveDiagonal(context.Background(), p, o)
	if err != nil {
		t.Fatal(err)
	}
	for k := range sol.X {
		if math.Abs(sol.X[k]-ref.X[k]) > 1e-5*(1+math.Abs(ref.X[k])) {
			t.Fatalf("bounded-multiplier run diverged at %d: %g vs %g", k, sol.X[k], ref.X[k])
		}
	}
	rep := CheckKKT(p, sol)
	if !rep.Satisfied(1e-6) {
		t.Errorf("KKT violated after renormalization: %+v", rep)
	}
}

func TestPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewPCG(14, 14))
	m, n := 5, 6
	p := randFixed(rng, m, n, 100, 2)
	sol, err := SolveDiagonal(context.Background(), p, tightOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Permute rows by reversal and solve the permuted problem.
	perm := func(src []float64, rows bool) []float64 {
		out := make([]float64, m*n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				if rows {
					out[(m-1-i)*n+j] = src[i*n+j]
				}
			}
		}
		return out
	}
	p2 := &DiagonalProblem{
		M: m, N: n,
		X0:    perm(p.X0, true),
		Gamma: perm(p.Gamma, true),
		S0:    make([]float64, m),
		D0:    p.D0,
		Kind:  FixedTotals,
	}
	for i := 0; i < m; i++ {
		p2.S0[m-1-i] = p.S0[i]
	}
	sol2, err := SolveDiagonal(context.Background(), p2, tightOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a := sol.X[i*n+j]
			b := sol2.X[(m-1-i)*n+j]
			if math.Abs(a-b) > 1e-6*(1+math.Abs(a)) {
				t.Fatalf("permutation invariance violated at (%d,%d): %g vs %g", i, j, a, b)
			}
		}
	}
}

// TestIterationsAdditiveInTolerance checks the paper's observation under
// (77): decreasing ε̄ by 10× should produce an additive, not multiplicative,
// increase in iterations (geometric convergence).
func TestIterationsAdditiveInTolerance(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 15))
	p := randElastic(rng, 10, 10)
	var iters []int
	for _, eps := range []float64{1e-4, 1e-6, 1e-8} {
		o := DefaultOptions()
		o.Criterion = DualGradient
		o.Epsilon = eps
		o.MaxIterations = 500000
		sol, err := SolveDiagonal(context.Background(), p, o)
		if err != nil {
			t.Fatal(err)
		}
		iters = append(iters, sol.Iterations)
	}
	// Additive: the increment per decade should be roughly constant, so the
	// second increment must not blow up relative to the first.
	inc1 := iters[1] - iters[0]
	inc2 := iters[2] - iters[1]
	if inc1 > 0 && inc2 > 3*inc1+5 {
		t.Errorf("iteration growth not additive: %v (increments %d, %d)", iters, inc1, inc2)
	}
}

func TestMaxAbsDeltaCriterion(t *testing.T) {
	rng := rand.New(rand.NewPCG(16, 16))
	p := randFixed(rng, 6, 6, 100, 2)
	o := DefaultOptions()
	o.Criterion = MaxAbsDelta
	o.Epsilon = 1e-8
	o.MaxIterations = 500000
	sol, err := SolveDiagonal(context.Background(), p, o)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Converged {
		t.Fatal("not converged")
	}
	if sol.Iterations < 2 {
		t.Errorf("MaxAbsDelta needs at least two iterations, got %d", sol.Iterations)
	}
	rep := CheckKKT(p, sol)
	if !rep.Satisfied(1e-4) {
		t.Errorf("KKT: %+v", rep)
	}
}

func TestObjectiveAndSums(t *testing.T) {
	p := &DiagonalProblem{
		M: 2, N: 2,
		X0:    []float64{1, 2, 3, 4},
		Gamma: []float64{1, 1, 1, 1},
		S0:    []float64{3, 7},
		D0:    []float64{4, 6},
		Kind:  FixedTotals,
	}
	x := []float64{2, 2, 2, 4}
	rs := make([]float64, 2)
	cs := make([]float64, 2)
	p.RowSums(x, rs)
	p.ColSums(x, cs)
	if rs[0] != 4 || rs[1] != 6 {
		t.Errorf("RowSums = %v", rs)
	}
	if cs[0] != 4 || cs[1] != 6 {
		t.Errorf("ColSums = %v", cs)
	}
	if got := p.Objective(x, nil, nil); got != 1+0+1+0 {
		t.Errorf("Objective = %g, want 2", got)
	}
}

func TestKindString(t *testing.T) {
	if FixedTotals.String() != "fixed" || ElasticTotals.String() != "elastic" || Balanced.String() != "balanced" {
		t.Error("Kind.String wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown Kind should still format")
	}
}
