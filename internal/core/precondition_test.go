package core

import (
	"context"
	"math"
	"math/rand/v2"
	"testing"
)

// precondFamilies enumerates dense problems of every kind plus the CSR
// families, the instance set the preconditioning properties quantify over.
func precondFamilies(t *testing.T) map[string]*DiagonalProblem {
	t.Helper()
	rng := rand.New(rand.NewPCG(41, 7))
	fams := map[string]*DiagonalProblem{
		"dense/fixed":    randFixed(rng, 14, 11, 100, 1.3),
		"dense/elastic":  randElastic(rng, 12, 9),
		"dense/balanced": randBalanced(rng, 10),
		"dense/interval": randInterval(rng, 9, 12, 0.3),
	}
	for name, p := range sparseFamilies(t) {
		fams["csr/"+name] = p
	}
	return fams
}

// TestPrecondScaleBitIdentical is the tentpole's exactness property: under
// the exact kernel, PrecondScale rescales the problem by power-of-two
// factors, solves, and unscales — and the result is bit-for-bit the
// unpreconditioned solution (trajectory relabeling), for every kind, both
// storages, and every worker count.
func TestPrecondScaleBitIdentical(t *testing.T) {
	for name, p := range precondFamilies(t) {
		for _, procs := range []int{1, 2, 7, 16} {
			opts := DefaultOptions()
			opts.Epsilon = 1e-6
			opts.Criterion = DualGradient
			opts.Procs = procs
			base, err := SolveDiagonal(context.Background(), p, opts)
			if err != nil {
				t.Fatalf("%s procs=%d: base solve: %v", name, procs, err)
			}
			opts2 := *opts
			opts2.Precondition = PrecondScale
			pre, err := SolveDiagonal(context.Background(), p, &opts2)
			if err != nil {
				t.Fatalf("%s procs=%d: preconditioned solve: %v", name, procs, err)
			}
			if pre.Iterations != base.Iterations {
				t.Errorf("%s procs=%d: iterations %d vs %d", name, procs, pre.Iterations, base.Iterations)
			}
			bitEqual(t, name+"/X", pre.X, base.X)
			bitEqual(t, name+"/S", pre.S, base.S)
			bitEqual(t, name+"/D", pre.D, base.D)
			bitEqual(t, name+"/Lambda", pre.Lambda, base.Lambda)
			bitEqual(t, name+"/Mu", pre.Mu, base.Mu)
			if pre.Objective != base.Objective {
				t.Errorf("%s procs=%d: objective %v vs %v", name, procs, pre.Objective, base.Objective)
			}
			if pre.Residual != base.Residual {
				t.Errorf("%s procs=%d: residual %v vs %v", name, procs, pre.Residual, base.Residual)
			}
			if pre.PrecondNs <= 0 {
				t.Errorf("%s procs=%d: PrecondNs not recorded", name, procs)
			}
			if t.Failed() {
				t.FailNow()
			}
		}
	}
}

func bitEqual(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: length %d vs %d", what, len(got), len(want))
		return
	}
	for k := range got {
		if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
			t.Errorf("%s[%d]: %v vs %v (not bit-identical)", what, k, got[k], want[k])
			return
		}
	}
}

// TestPrecondWarmStartsSatisfyOriginalKKT: the warm-started modes change the
// solve trajectory, so their solutions are compared against the ORIGINAL
// problem's KKT system, not against the baseline iterate: after unscaling,
// the solution must satisfy feasibility and stationarity to the solver's
// tolerance.
func TestPrecondWarmStartsSatisfyOriginalKKT(t *testing.T) {
	for name, p := range precondFamilies(t) {
		for _, mode := range []Precond{PrecondSinkhorn, PrecondISP} {
			opts := DefaultOptions()
			opts.Epsilon = 1e-8
			opts.Criterion = DualGradient
			opts.Precondition = mode
			sol, err := SolveDiagonal(context.Background(), p, opts)
			if err != nil {
				t.Fatalf("%s %v: %v", name, mode, err)
			}
			if !sol.Converged {
				t.Fatalf("%s %v: not converged", name, mode)
			}
			rep := CheckKKT(p, sol)
			// The dual-gradient tolerance bounds the constraint residuals;
			// stationarity of the interior cells is exact by construction, so
			// the headroom factor covers accumulated rounding only.
			if m := rep.Max(); !(m <= 1e-6) {
				t.Fatalf("%s %v: KKT violation %g (report %+v)", name, mode, m, rep)
			}
		}
	}
}

// TestPrecondISPCutsIterations asserts the warm start actually pays on an
// elastic instance: the preconditioned solve must need at most the
// unpreconditioned solve's outer iterations (and strictly fewer on this
// construction, where the prior is far from the totals).
func TestPrecondISPCutsIterations(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 3))
	p := randElastic(rng, 40, 30)
	opts := DefaultOptions()
	opts.Epsilon = 1e-8
	opts.Criterion = DualGradient
	base, err := SolveDiagonal(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts2 := *opts
	opts2.Precondition = PrecondISP
	pre, err := SolveDiagonal(context.Background(), p, &opts2)
	if err != nil {
		t.Fatal(err)
	}
	if pre.Iterations >= base.Iterations {
		t.Fatalf("ISP warm start did not cut iterations: %d vs %d", pre.Iterations, base.Iterations)
	}
	t.Logf("outer iterations: %d → %d", base.Iterations, pre.Iterations)
}

// TestPrecondArenaSteadyState: repeated preconditioned solves on one arena
// must stay allocation-flat once warm (the scaled-problem and warm-start
// buffers are arena-owned).
func TestPrecondArenaSteadyState(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 5))
	p := randElastic(rng, 20, 15)
	ar := NewArena()
	defer ar.Close()
	opts := DefaultOptions()
	opts.Epsilon = 1e-6
	opts.Criterion = DualGradient
	opts.Precondition = PrecondISP
	opts.Arena = ar
	for i := 0; i < 3; i++ { // warm-up
		if _, err := SolveDiagonal(context.Background(), p, opts); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := SolveDiagonal(context.Background(), p, opts); err != nil {
			t.Fatal(err)
		}
	})
	// The non-precondition arena steady state is ~a handful of allocs
	// (options copy, state adoption); preconditioning must not add per-solve
	// allocations beyond its own small constant.
	if allocs > 12 {
		t.Fatalf("preconditioned arena solve allocates %.0f/op, want ≤ 12", allocs)
	}
}

// TestPrecondIntervalFallsBackToScale: ISP does not model interval totals,
// so preconditioning degrades to pure scaling — which must remain
// bit-identical to the unpreconditioned solve.
func TestPrecondIntervalFallsBackToScale(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 1))
	p := randInterval(rng, 8, 10, 0.5)
	opts := DefaultOptions()
	opts.Epsilon = 1e-7
	opts.Criterion = DualGradient
	base, err := SolveDiagonal(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts2 := *opts
	opts2.Precondition = PrecondISP
	pre, err := SolveDiagonal(context.Background(), p, &opts2)
	if err != nil {
		t.Fatal(err)
	}
	if pre.Iterations != base.Iterations {
		t.Fatalf("interval fallback iterations %d vs %d", pre.Iterations, base.Iterations)
	}
	bitEqual(t, "X", pre.X, base.X)
	bitEqual(t, "Lambda", pre.Lambda, base.Lambda)
}

func TestParsePrecond(t *testing.T) {
	for s, want := range map[string]Precond{
		"": PrecondNone, "none": PrecondNone, "scale": PrecondScale,
		"sinkhorn": PrecondSinkhorn, "isp": PrecondISP,
	} {
		got, err := ParsePrecond(s)
		if err != nil || got != want {
			t.Fatalf("ParsePrecond(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePrecond("bogus"); err == nil {
		t.Fatal("ParsePrecond accepted bogus")
	}
	if PrecondISP.String() != "isp" || PrecondNone.String() != "none" {
		t.Fatal("Precond.String mismatch")
	}
}
