package core

import (
	"context"
	"math"
	"math/rand/v2"
	"testing"
)

// TestWeakDuality: ζ(λ,μ) ≤ Θ(x_feasible) for arbitrary multipliers and any
// feasible primal point.
func TestWeakDuality(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	for trial := 0; trial < 30; trial++ {
		var p *DiagonalProblem
		switch trial % 3 {
		case 0:
			p = randFixed(rng, 3+rng.IntN(4), 3+rng.IntN(4), 100, 2)
		case 1:
			p = randElastic(rng, 3+rng.IntN(4), 3+rng.IntN(4))
		default:
			p = randBalanced(rng, 3+rng.IntN(4))
		}
		// A feasible primal point from a converged solve.
		sol, err := SolveDiagonal(context.Background(), p, tightOpts())
		if err != nil {
			t.Fatal(err)
		}
		primal := sol.Objective
		// Random multipliers must give a dual value below the optimum.
		lambda := make([]float64, p.M)
		mu := make([]float64, p.N)
		for i := range lambda {
			lambda[i] = rng.NormFloat64() * 10
		}
		for j := range mu {
			mu[j] = rng.NormFloat64() * 10
		}
		if z := DualValue(p, lambda, mu); z > primal+1e-6*(1+math.Abs(primal)) {
			t.Errorf("trial %d (%v): weak duality violated: ζ=%g > Θ*=%g", trial, p.Kind, z, primal)
		}
	}
}

// TestDualAscent: the iterates of SEA produce nondecreasing dual values —
// the monotonicity (71) underlying the convergence proof.
func TestDualAscent(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 24))
	p := randElastic(rng, 8, 8)
	o := DefaultOptions()
	o.Criterion = DualGradient
	o.Epsilon = 1e-9
	o.MaxIterations = 500000

	// Re-run the solve manually, one iteration at a time, via warm starts.
	var mu []float64
	prev := math.Inf(-1)
	for it := 0; it < 30; it++ {
		oo := *o
		oo.MaxIterations = 1
		oo.Mu0 = mu
		sol, err := SolveDiagonal(context.Background(), p, &oo)
		if sol == nil {
			t.Fatal(err)
		}
		z := DualValue(p, sol.Lambda, sol.Mu)
		if z < prev-1e-8*(1+math.Abs(prev)) {
			t.Fatalf("iteration %d: dual decreased from %g to %g", it, prev, z)
		}
		prev = z
		mu = sol.Mu
		if sol.Converged {
			break
		}
	}
}

func TestDualResidualsVanishAtOptimum(t *testing.T) {
	rng := rand.New(rand.NewPCG(25, 26))
	for _, mk := range []func() *DiagonalProblem{
		func() *DiagonalProblem { return randFixed(rng, 5, 6, 100, 2) },
		func() *DiagonalProblem { return randElastic(rng, 5, 6) },
		func() *DiagonalProblem { return randBalanced(rng, 5) },
	} {
		p := mk()
		sol, err := SolveDiagonal(context.Background(), p, tightOpts())
		if err != nil {
			t.Fatal(err)
		}
		if r := MaxDualResidual(p, sol.Lambda, sol.Mu); r > 1e-7 {
			t.Errorf("%v: ‖∇ζ‖∞ = %g at optimum", p.Kind, r)
		}
	}
}

func TestDualPrimalMatchesSolution(t *testing.T) {
	rng := rand.New(rand.NewPCG(27, 28))
	p := randElastic(rng, 6, 5)
	sol, err := SolveDiagonal(context.Background(), p, tightOpts())
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, p.M*p.N)
	s := make([]float64, p.M)
	d := make([]float64, p.N)
	DualPrimal(p, sol.Lambda, sol.Mu, x, s, d)
	for k := range x {
		if math.Abs(x[k]-sol.X[k]) > 1e-9*(1+math.Abs(sol.X[k])) {
			t.Fatalf("DualPrimal X[%d] = %g, solver returned %g", k, x[k], sol.X[k])
		}
	}
	for i := range s {
		if math.Abs(s[i]-sol.S[i]) > 1e-9*(1+math.Abs(sol.S[i])) {
			t.Fatalf("DualPrimal S[%d] = %g, solver returned %g", i, s[i], sol.S[i])
		}
	}
	for j := range d {
		if math.Abs(d[j]-sol.D[j]) > 1e-9*(1+math.Abs(sol.D[j])) {
			t.Fatalf("DualPrimal D[%d] = %g, solver returned %g", j, d[j], sol.D[j])
		}
	}
}

// TestDualGradientIsResidual verifies (25)–(26): the components of ∇ζ are
// exactly the constraint residuals of the dual-primal point.
func TestDualGradientIsResidual(t *testing.T) {
	rng := rand.New(rand.NewPCG(29, 30))
	p := randBalanced(rng, 6)
	lambda := make([]float64, p.M)
	mu := make([]float64, p.N)
	for i := range lambda {
		lambda[i] = rng.NormFloat64()
	}
	for j := range mu {
		mu[j] = rng.NormFloat64()
	}
	gl := make([]float64, p.M)
	gm := make([]float64, p.N)
	DualResiduals(p, lambda, mu, gl, gm)

	// Compare against a numerical gradient of DualValue.
	const h = 1e-6
	for i := 0; i < p.M; i++ {
		lp := make([]float64, p.M)
		copy(lp, lambda)
		lp[i] += h
		lm := make([]float64, p.M)
		copy(lm, lambda)
		lm[i] -= h
		num := (DualValue(p, lp, mu) - DualValue(p, lm, mu)) / (2 * h)
		if math.Abs(num-gl[i]) > 1e-3*(1+math.Abs(num)) {
			t.Errorf("∂ζ/∂λ_%d: analytic %g vs numeric %g", i, gl[i], num)
		}
	}
	for j := 0; j < p.N; j++ {
		mp := make([]float64, p.N)
		copy(mp, mu)
		mp[j] += h
		mm := make([]float64, p.N)
		copy(mm, mu)
		mm[j] -= h
		num := (DualValue(p, lambda, mp) - DualValue(p, lambda, mm)) / (2 * h)
		if math.Abs(num-gm[j]) > 1e-3*(1+math.Abs(num)) {
			t.Errorf("∂ζ/∂μ_%d: analytic %g vs numeric %g", j, gm[j], num)
		}
	}
}

// TestGeometricRate verifies the linear convergence of the paper's (76):
// the dual gap δ^t = ζ* − ζ(λ^t, μ^t) contracts by a roughly constant
// factor per iteration, so that halving the tolerance costs an additive,
// not multiplicative, number of iterations.
func TestGeometricRate(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 42))
	p := randElastic(rng, 8, 8)
	// Reference optimum.
	opt, err := SolveDiagonal(context.Background(), p, tightOpts())
	if err != nil {
		t.Fatal(err)
	}
	zStar := DualValue(p, opt.Lambda, opt.Mu)

	var mu []float64
	var gaps []float64
	for it := 0; it < 25; it++ {
		oo := DefaultOptions()
		oo.MaxIterations = 1
		oo.Mu0 = mu
		sol, _ := SolveDiagonal(context.Background(), p, oo)
		if sol == nil {
			t.Fatal("no iterate")
		}
		gap := zStar - DualValue(p, sol.Lambda, sol.Mu)
		if gap < 1e-14*(1+math.Abs(zStar)) {
			break // converged to machine precision
		}
		gaps = append(gaps, gap)
		mu = sol.Mu
	}
	if len(gaps) < 5 {
		t.Skip("converged too fast to estimate a rate")
	}
	// Monotone decrease and a contraction factor bounded away from 1 on
	// average over the tail.
	worst := 0.0
	for i := 1; i < len(gaps); i++ {
		ratio := gaps[i] / gaps[i-1]
		if ratio > 1+1e-9 {
			t.Fatalf("dual gap increased at step %d: %g -> %g", i, gaps[i-1], gaps[i])
		}
		if ratio > worst {
			worst = ratio
		}
	}
	if worst >= 0.999 {
		t.Errorf("contraction factor %g not bounded away from 1: gaps %v", worst, gaps)
	}
}
