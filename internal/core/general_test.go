package core

import (
	"context"
	"math"
	"math/rand/v2"
	"testing"

	"sea/internal/mat"
	"sea/internal/metrics"
)

// denseDominant builds a random symmetric strictly diagonally dominant
// matrix following the paper's Section 5 generator: diagonal in
// [diagLo, diagHi], off-diagonal entries of either sign.
func denseDominant(rng *rand.Rand, n int, diagLo, diagHi float64) *mat.DenseSym {
	data := make([]float64, n*n)
	rowAbs := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			// Keep each row's off-diagonal mass below the minimum diagonal.
			v := (rng.Float64()*2 - 1) * diagLo * 0.9 / float64(n)
			data[i*n+j] = v
			data[j*n+i] = v
			rowAbs[i] += math.Abs(v)
			rowAbs[j] += math.Abs(v)
		}
	}
	for i := 0; i < n; i++ {
		d := diagLo + rng.Float64()*(diagHi-diagLo)
		if d <= rowAbs[i] {
			d = rowAbs[i]*1.1 + 1
		}
		data[i*n+i] = d
	}
	return mat.MustDenseSym(n, data)
}

// randGeneralFixed builds a random general fixed-totals problem with a dense
// dominant G, as in Table 7.
func randGeneralFixed(rng *rand.Rand, m, n int) *GeneralProblem {
	mn := m * n
	x0 := make([]float64, mn)
	for k := range x0 {
		x0[k] = rng.Float64() * 100
	}
	s0 := make([]float64, m)
	d0 := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s0[i] += 1.5 * x0[i*n+j]
			d0[j] += 1.5 * x0[i*n+j]
		}
	}
	return &GeneralProblem{
		M: m, N: n, X0: x0,
		G:  denseDominant(rng, mn, 500, 800),
		S0: s0, D0: d0,
		Kind: FixedTotals,
	}
}

func generalOpts() *Options {
	o := DefaultOptions()
	o.Epsilon = 1e-8
	o.InnerEpsilon = 1e-10
	o.Criterion = DualGradient
	o.MaxIterations = 5000
	return o
}

func TestGeneralDiagonalGEqualsDiagonalSolve(t *testing.T) {
	// A general problem whose G is diagonal must reproduce the diagonal
	// solver's answer.
	rng := rand.New(rand.NewPCG(31, 32))
	m, n := 4, 5
	dp := randFixed(rng, m, n, 100, 2)
	gdata := make([]float64, m*n)
	copy(gdata, dp.Gamma)
	gp := &GeneralProblem{
		M: m, N: n,
		X0: dp.X0,
		G:  mat.MustDiagonal(gdata),
		S0: dp.S0, D0: dp.D0,
		Kind: FixedTotals,
	}
	want, err := SolveDiagonal(context.Background(), dp, tightOpts())
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolveGeneral(context.Background(), gp, generalOpts())
	if err != nil {
		t.Fatal(err)
	}
	for k := range got.X {
		if math.Abs(got.X[k]-want.X[k]) > 1e-5*(1+math.Abs(want.X[k])) {
			t.Fatalf("X[%d]: general %g vs diagonal %g", k, got.X[k], want.X[k])
		}
	}
	if got.Iterations > 3 {
		t.Errorf("diagonal-G general solve took %d outer iterations, want ≤ 3", got.Iterations)
	}
}

func TestGeneralFixedKKT(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 34))
	for trial := 0; trial < 5; trial++ {
		m := 3 + rng.IntN(4)
		n := 3 + rng.IntN(4)
		p := randGeneralFixed(rng, m, n)
		var c metrics.Counters
		o := generalOpts()
		o.Counters = &c
		sol, err := SolveGeneral(context.Background(), p, o)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rep := CheckKKTGeneral(p, sol)
		// Stationarity tolerance scales with G (diag ~800) and x (~100).
		if !rep.Satisfied(1e-2) {
			t.Errorf("trial %d (%d×%d): general KKT violated: %+v", trial, m, n, rep)
		}
		if c.Snapshot().OuterIterations != int64(sol.Iterations) {
			t.Errorf("outer iterations counter mismatch")
		}
		if sol.InnerIterations < sol.Iterations {
			t.Errorf("inner iterations %d < outer %d", sol.InnerIterations, sol.Iterations)
		}
	}
}

func TestGeneralElasticKKT(t *testing.T) {
	rng := rand.New(rand.NewPCG(35, 36))
	m, n := 4, 4
	mn := m * n
	x0 := make([]float64, mn)
	for k := range x0 {
		x0[k] = rng.Float64() * 50
	}
	s0 := make([]float64, m)
	d0 := make([]float64, n)
	for i := range s0 {
		s0[i] = rng.Float64() * 300
	}
	for j := range d0 {
		d0[j] = rng.Float64() * 300
	}
	p := &GeneralProblem{
		M: m, N: n, X0: x0,
		G:  denseDominant(rng, mn, 10, 20),
		A:  denseDominant(rng, m, 5, 8),
		B:  denseDominant(rng, n, 5, 8),
		S0: s0, D0: d0,
		Kind: ElasticTotals,
	}
	sol, err := SolveGeneral(context.Background(), p, generalOpts())
	if err != nil {
		t.Fatal(err)
	}
	rep := CheckKKTGeneral(p, sol)
	if !rep.Satisfied(1e-3) {
		t.Errorf("elastic general KKT violated: %+v", rep)
	}
}

func TestGeneralBalancedKKT(t *testing.T) {
	rng := rand.New(rand.NewPCG(37, 38))
	n := 5
	nn := n * n
	x0 := make([]float64, nn)
	for k := range x0 {
		x0[k] = rng.Float64() * 40
	}
	s0 := make([]float64, n)
	for i := range s0 {
		s0[i] = rng.Float64() * 40 * float64(n)
	}
	p := &GeneralProblem{
		M: n, N: n, X0: x0,
		G:    denseDominant(rng, nn, 10, 20),
		A:    denseDominant(rng, n, 5, 8),
		S0:   s0,
		Kind: Balanced,
	}
	sol, err := SolveGeneral(context.Background(), p, generalOpts())
	if err != nil {
		t.Fatal(err)
	}
	rep := CheckKKTGeneral(p, sol)
	if !rep.Satisfied(1e-3) {
		t.Errorf("balanced general KKT violated: %+v", rep)
	}
	// Balance property.
	for i := 0; i < n; i++ {
		var rs, cs float64
		for j := 0; j < n; j++ {
			rs += sol.X[i*n+j]
			cs += sol.X[j*n+i]
		}
		if math.Abs(rs-cs) > 1e-4*(1+math.Abs(rs)) {
			t.Errorf("account %d unbalanced: %g vs %g", i, rs, cs)
		}
	}
}

func TestGeneralImplicitMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(39, 40))
	m, n := 3, 4
	mn := m * n
	x0 := make([]float64, mn)
	for k := range x0 {
		x0[k] = rng.Float64() * 100
	}
	s0 := make([]float64, m)
	d0 := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s0[i] += 2 * x0[i*n+j]
			d0[j] += 2 * x0[i*n+j]
		}
	}
	imp := mat.MustImplicitSym(mn, 77, 500, 800, 0.9)
	pi := &GeneralProblem{M: m, N: n, X0: x0, G: imp, S0: s0, D0: d0, Kind: FixedTotals}
	pd := &GeneralProblem{M: m, N: n, X0: x0, G: imp.Materialize(), S0: s0, D0: d0, Kind: FixedTotals}
	si, err := SolveGeneral(context.Background(), pi, generalOpts())
	if err != nil {
		t.Fatal(err)
	}
	sd, err := SolveGeneral(context.Background(), pd, generalOpts())
	if err != nil {
		t.Fatal(err)
	}
	for k := range si.X {
		if math.Abs(si.X[k]-sd.X[k]) > 1e-6*(1+math.Abs(sd.X[k])) {
			t.Fatalf("implicit vs dense differ at %d: %g vs %g", k, si.X[k], sd.X[k])
		}
	}
}

func TestGeneralRejectsNonDominant(t *testing.T) {
	m, n := 2, 2
	data := []float64{
		1, 5, 0, 0,
		5, 1, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
	p := &GeneralProblem{
		M: m, N: n,
		X0: make([]float64, 4),
		G:  mat.MustDenseSym(4, data),
		S0: []float64{1, 1}, D0: []float64{1, 1},
		Kind: FixedTotals,
	}
	if _, err := SolveGeneral(context.Background(), p, generalOpts()); err == nil {
		t.Error("non-dominant G accepted")
	}
	o := generalOpts()
	o.SkipDominanceCheck = true
	o.MaxIterations = 50
	// With the check skipped it may iterate (and possibly fail to
	// converge); it must not be rejected up front.
	if _, err := SolveGeneral(context.Background(), p, o); err != nil && !errorsIsNotConverged(err) {
		t.Errorf("skip-dominance solve failed validation: %v", err)
	}
}

func errorsIsNotConverged(err error) bool {
	for e := err; e != nil; {
		if e == ErrNotConverged {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

func TestFeasibleStart(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 42))
	p := randGeneralFixed(rng, 4, 6)
	x, s, d := p.FeasibleStart()
	for i := 0; i < p.M; i++ {
		if math.Abs(mat.Sum(x[i*p.N:(i+1)*p.N])-s[i]) > 1e-9*(1+s[i]) {
			t.Errorf("start row %d infeasible", i)
		}
	}
	cs := make([]float64, p.N)
	for i := 0; i < p.M; i++ {
		for j := 0; j < p.N; j++ {
			cs[j] += x[i*p.N+j]
		}
	}
	for j := 0; j < p.N; j++ {
		if math.Abs(cs[j]-d[j]) > 1e-9*(1+d[j]) {
			t.Errorf("start column %d infeasible", j)
		}
	}
	if !mat.AllNonNegative(x) {
		t.Error("start has negative entries")
	}
}

func TestGeneralValidation(t *testing.T) {
	p := &GeneralProblem{M: 0}
	if err := p.Validate(true); err == nil {
		t.Error("zero dims accepted")
	}
	p2 := &GeneralProblem{M: 2, N: 2, X0: make([]float64, 4), G: mat.UniformDiagonal(3, 1), S0: []float64{1, 1}, D0: []float64{1, 1}}
	if err := p2.Validate(true); err == nil {
		t.Error("wrong G order accepted")
	}
	p3 := &GeneralProblem{M: 2, N: 2, X0: make([]float64, 4), G: mat.UniformDiagonal(4, 1), S0: []float64{1, 1}, D0: []float64{5, 5}}
	if err := p3.Validate(true); err == nil {
		t.Error("imbalanced fixed totals accepted")
	}
}

func TestGeneralObjective(t *testing.T) {
	// Diagonal G: general objective must equal the diagonal objective.
	rng := rand.New(rand.NewPCG(43, 44))
	dp := randFixed(rng, 3, 3, 10, 2)
	gp := &GeneralProblem{
		M: 3, N: 3, X0: dp.X0,
		G:  mat.MustDiagonal(mat.Clone(dp.Gamma)),
		S0: dp.S0, D0: dp.D0,
		Kind: FixedTotals,
	}
	x := make([]float64, 9)
	for k := range x {
		x[k] = rng.Float64() * 20
	}
	want := dp.Objective(x, nil, nil)
	got := gp.Objective(x, dp.S0, dp.D0)
	if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
		t.Errorf("Objective = %g, want %g", got, want)
	}
}

// TestGeneralAsymmetricGAsVI: SolveGeneral never uses the symmetry of G, so
// with a non-symmetric G it computes the solution of the variational
// inequality with operator F(x) = 2G(x−x⁰) over the transportation polytope
// — the asymmetric setting the paper's Section 2 relates to VI theory
// (where no equivalent optimization formulation exists). CheckKKTGeneral's
// conditions are exactly the VI conditions for that operator.
func TestGeneralAsymmetricGAsVI(t *testing.T) {
	rng := rand.New(rand.NewPCG(45, 46))
	m, n := 4, 4
	mn := m * n
	data := make([]float64, mn*mn)
	for i := 0; i < mn; i++ {
		data[i*mn+i] = 500 + rng.Float64()*300
		for j := 0; j < mn; j++ {
			if j != i {
				data[i*mn+j] = (rng.Float64()*2 - 1) * 400 / float64(mn)
			}
		}
	}
	g := mat.MustDenseGeneral(mn, data)
	if mat.DominanceMargin(g) <= 0 {
		t.Fatal("generator failed dominance")
	}
	x0 := make([]float64, mn)
	for k := range x0 {
		x0[k] = rng.Float64() * 50
	}
	s0 := make([]float64, m)
	d0 := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s0[i] += 1.4 * x0[i*n+j]
			d0[j] += 1.4 * x0[i*n+j]
		}
	}
	p := &GeneralProblem{M: m, N: n, X0: x0, G: g, S0: s0, D0: d0, Kind: FixedTotals}
	o := generalOpts()
	sol, err := SolveGeneral(context.Background(), p, o)
	if err != nil {
		t.Fatal(err)
	}
	if rep := CheckKKTGeneral(p, sol); !rep.Satisfied(1e-2) {
		t.Errorf("asymmetric-G VI conditions violated: %+v", rep)
	}
	// Asymmetry must matter: the symmetrized problem has a different
	// solution.
	sym := make([]float64, mn*mn)
	for i := 0; i < mn; i++ {
		for j := 0; j < mn; j++ {
			sym[i*mn+j] = (data[i*mn+j] + data[j*mn+i]) / 2
		}
	}
	ps := &GeneralProblem{M: m, N: n, X0: x0, G: mat.MustDenseSym(mn, sym), S0: s0, D0: d0, Kind: FixedTotals}
	sols, err := SolveGeneral(context.Background(), ps, o)
	if err != nil {
		t.Fatal(err)
	}
	if mat.MaxAbsDiff(sol.X, sols.X) < 1e-9 {
		t.Log("note: symmetrized and asymmetric solutions coincide on this instance")
	}
}

// TestGeneralSparseGMatchesDense: a banded sparse G must produce the same
// solution as its materialized dense form.
func TestGeneralSparseGMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(47, 48))
	m, n := 5, 6
	mn := m * n
	sg := mat.BandedDominant(mn, 4, 99, 500, 800)
	x0 := make([]float64, mn)
	for k := range x0 {
		x0[k] = rng.Float64() * 80
	}
	s0 := make([]float64, m)
	d0 := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s0[i] += 1.3 * x0[i*n+j]
			d0[j] += 1.3 * x0[i*n+j]
		}
	}
	ps := &GeneralProblem{M: m, N: n, X0: x0, G: sg, S0: s0, D0: d0, Kind: FixedTotals}
	pd := &GeneralProblem{M: m, N: n, X0: x0, G: sg.Materialize(), S0: s0, D0: d0, Kind: FixedTotals}
	o := generalOpts()
	ss, err := SolveGeneral(context.Background(), ps, o)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := SolveGeneral(context.Background(), pd, o)
	if err != nil {
		t.Fatal(err)
	}
	for k := range ss.X {
		if math.Abs(ss.X[k]-sd.X[k]) > 1e-9*(1+math.Abs(sd.X[k])) {
			t.Fatalf("sparse vs dense differ at %d: %g vs %g", k, ss.X[k], sd.X[k])
		}
	}
	if rep := CheckKKTGeneral(ps, ss); !rep.Satisfied(1e-2) {
		t.Errorf("sparse-G KKT: %+v", rep)
	}
}
