package core

import (
	"fmt"

	"sea/internal/metrics"
	"sea/internal/parallel"
	"sea/internal/trace"
)

// Kernel selects how each row/column equilibrium subproblem is solved.
type Kernel int

const (
	// KernelExact is the paper's sort-and-sweep exact equilibration:
	// machine-exact multipliers in O(n log n).
	KernelExact Kernel = iota
	// KernelBisection brackets and bisects the piecewise-linear KKT
	// equation instead of sorting: O(n·log(range/tol)) with answers
	// accurate to a small tolerance. On modern hardware the linear scans
	// often beat the sort (see the kernel ablation benchmarks); the paper's
	// algorithm is KernelExact.
	KernelBisection
)

func (k Kernel) String() string {
	switch k {
	case KernelExact:
		return "exact"
	case KernelBisection:
		return "bisection"
	default:
		return "unknown"
	}
}

// Precond selects the preconditioning stage run before the diagonal
// solver's SEA sweeps (Options.Precondition).
type Precond int

const (
	// PrecondNone disables preconditioning (the default).
	PrecondNone Precond = iota
	// PrecondScale rescales the problem by global power-of-two mass and
	// weight factors (σ, τ) chosen from the data's magnitude, solves the
	// scaled problem, and unscales the solution. Because the factors are
	// powers of two and the scaled KKT system is an exact relabeling of the
	// original, the unscaled solution is bit-for-bit identical to the
	// unpreconditioned one under KernelExact — this mode exists to tame
	// overflow/underflow on badly ranged data, not to cut iterations.
	PrecondScale
	// PrecondSinkhorn additionally warm-starts the dual from a
	// Sinkhorn–Knopp balancing of the (positive-floored) prior: the
	// multiplicative factors are converted to additive column multipliers
	// μ⁰. Falls back to PrecondScale when the prior's structure rules
	// balancing out (zero rows/columns with positive targets).
	PrecondSinkhorn
	// PrecondISP warm-starts the dual with the iterative scaling procedure:
	// clamped additive Gauss–Seidel sweeps on the exact KKT system
	// (internal/scale.System), the cheap O(nnz)-per-sweep analogue of a SEA
	// iteration. This is the recommended mode for the elastic tiers, where
	// it cuts outer iterations severalfold (see docs/PERFORMANCE.md).
	PrecondISP
)

// DefaultPrecondSweeps is the warm-start sweep budget used when
// Options.PrecondSweeps is zero. The value is tuned on the paper tiers:
// past ~this many ISP sweeps the dual estimate's marginal iteration
// savings no longer repay the O(nnz) sweep cost — on the elastic spe250
// tier the wall-clock minimum sits near 150 sweeps (see EXPERIMENTS.md).
const DefaultPrecondSweeps = 150

func (p Precond) String() string {
	switch p {
	case PrecondNone:
		return "none"
	case PrecondScale:
		return "scale"
	case PrecondSinkhorn:
		return "sinkhorn"
	case PrecondISP:
		return "isp"
	default:
		return "unknown"
	}
}

// ParsePrecond maps the flag/query spellings to a Precond value.
func ParsePrecond(s string) (Precond, error) {
	switch s {
	case "", "none":
		return PrecondNone, nil
	case "scale":
		return PrecondScale, nil
	case "sinkhorn":
		return PrecondSinkhorn, nil
	case "isp":
		return PrecondISP, nil
	default:
		return PrecondNone, fmt.Errorf("unknown precondition %q (want none, scale, sinkhorn or isp)", s)
	}
}

// Objective selects the objective family a solve minimizes. The problem
// data (prior, weights, totals, bounds) is shared between the families; only
// the distance-to-prior measure changes.
type Objective int

const (
	// ObjectiveQuadratic is the paper's weighted least-squares objective
	// Σ γ_ij (x_ij−x⁰_ij)² (+ the elastic totals terms) — the default, and
	// what every solver except "entropy" minimizes.
	ObjectiveQuadratic Objective = iota
	// ObjectiveEntropy is the weighted generalized Kullback–Leibler
	// divergence to the prior, Σ γ_ij (x_ij·ln(x_ij/x⁰_ij) − x_ij + x⁰_ij),
	// with the same quadratic penalties on elastic totals. It requires a
	// nonnegative prior; cells with x⁰_ij = 0 are pinned at zero (the KL
	// term is +∞ for any positive value there). This is Oikonomou's
	// "most likely matrix" model; with fixed totals and a positive prior it
	// is the biproportional (RAS/Sinkhorn) limit. Solved by the "entropy"
	// registry solver (internal/entropy).
	ObjectiveEntropy
)

func (o Objective) String() string {
	switch o {
	case ObjectiveQuadratic:
		return "quadratic"
	case ObjectiveEntropy:
		return "entropy"
	default:
		return "unknown"
	}
}

// ParseObjective maps the flag/query/wire spellings to an Objective value.
func ParseObjective(s string) (Objective, error) {
	switch s {
	case "", "quadratic":
		return ObjectiveQuadratic, nil
	case "entropy", "kl":
		return ObjectiveEntropy, nil
	default:
		return ObjectiveQuadratic, fmt.Errorf("unknown objective %q (want quadratic or entropy)", s)
	}
}

// Criterion selects the convergence test used by the diagonal solver.
type Criterion int

const (
	// MaxAbsDelta terminates when |x^t_ij − x^{t−1}_ij| ≤ ε for all i,j —
	// the test of the paper's Section 3.1.1 (Step 3).
	MaxAbsDelta Criterion = iota
	// RelBalance terminates when |Σ_j x_ij − s_i| / max(|s_i|, 1) ≤ ε for
	// all rows — the test of Section 3.1.2 (Step 3). Column constraints
	// hold exactly after each column equilibration, so only row residuals
	// are checked.
	RelBalance
	// DualGradient terminates when ‖∇ζ‖∞ ≤ ε, i.e. the absolute constraint
	// residuals are at most ε — the theoretical criterion (27)/(43)/(52).
	DualGradient
)

func (c Criterion) String() string {
	switch c {
	case MaxAbsDelta:
		return "max-abs-delta"
	case RelBalance:
		return "rel-balance"
	case DualGradient:
		return "dual-gradient"
	default:
		return "unknown"
	}
}

// Options configures a solve. The zero value is not usable; call
// DefaultOptions and override fields.
type Options struct {
	// Epsilon is the convergence tolerance ε.
	Epsilon float64
	// Criterion selects the convergence test.
	Criterion Criterion
	// Objective selects the objective family (quadratic by default). The
	// core SEA solvers minimize the quadratic objective only; the pkg/sea
	// facade routes ObjectiveEntropy to the "entropy" solver, and handing
	// an entropy objective directly to SolveDiagonal/SolveGeneral is an
	// error rather than a silent wrong answer.
	Objective Objective
	// CheckEvery verifies convergence only every k-th iteration. The paper
	// checks every iteration for the fixed examples and every other
	// iteration for the elastic ones, noting the check is a serial phase.
	CheckEvery int
	// ParallelConvCheck computes the convergence verification's row sums
	// (or deltas) in parallel instead of serially — the enhancement the
	// paper suggests at the end of Section 4.2. The residual reduction
	// remains serial but is O(m) instead of O(m·n).
	ParallelConvCheck bool
	// Kernel selects the subproblem solver (exact equilibration or
	// bisection). Interval-totals subproblems always use the exact kernel.
	Kernel Kernel
	// KernelTol is the bisection kernel's multiplier tolerance; it defaults
	// to Epsilon·1e-4 so kernel error stays far below the outer tolerance.
	KernelTol float64
	// MaxIterations caps the number of row+column sweeps (diagonal solver)
	// or projection steps (general solver).
	MaxIterations int
	// Procs is the number of workers for the parallel row and column
	// phases (the paper's N CPUs). 1 means serial.
	Procs int
	// Runner, if non-nil, supplies the scheduling substrate for the
	// parallel phases — typically a shared *parallel.Pool reused across
	// many solves, whose lifecycle the caller owns. When nil the solver
	// creates a persistent pool of Procs workers for the duration of the
	// solve and tears it down on return. Every Runner honors the same
	// disjoint-partition contract, so results never depend on this choice
	// (see docs/PERFORMANCE.md).
	Runner parallel.Runner
	// Mu0, if non-nil, warm-starts the column multipliers (length N).
	// Otherwise μ¹ = 0 per the paper's initialization step.
	Mu0 []float64
	// Precondition selects a preconditioning stage run before the SEA
	// sweeps: the solver rescales the problem data by exact power-of-two
	// factors (and, for PrecondSinkhorn/PrecondISP, computes a dual warm
	// start on the scaled data), solves, and unscales the solution so that
	// it satisfies the ORIGINAL problem's KKT system. Time spent here is
	// reported in Solution.PrecondNs. Applies to the diagonal solver only;
	// the general solver's inner diagonal solves never precondition.
	Precondition Precond
	// PrecondSweeps caps the warm-start procedure's sweeps for
	// PrecondSinkhorn/PrecondISP. 0 selects the tuned default
	// (DefaultPrecondSweeps).
	PrecondSweeps int
	// Counters, if non-nil, accumulates instrumentation.
	Counters *metrics.Counters
	// Trace, if non-nil, receives one trace.Event per outer iteration:
	// iteration index, convergence residual, wall-clock phase timings, and
	// the per-iteration instrumentation deltas (so attaching an observer
	// subsumes Counters — a solve with a Trace always maintains counters
	// internally and reports their deltas on every event). A nil Trace
	// costs one pointer comparison per iteration.
	Trace trace.Observer
	// CostTrace, if non-nil, records per-task abstract operation costs for
	// the simulated-multiprocessor speedup experiments (package parsim).
	CostTrace *CostTrace
	// BoundMultipliers enables the paper's Modified Algorithm: when a
	// multiplier exceeds MultiplierBound in absolute value, its support-
	// graph connected component is renormalized (a constant added to its
	// λ's and subtracted from its μ's), keeping iterates in a bounded set
	// without changing ζ. Applies to the Balanced and FixedTotals duals.
	BoundMultipliers bool
	// MultiplierBound is the paper's R > 0 (used when BoundMultipliers).
	MultiplierBound float64

	// Inner options for the general solver's diagonal subproblems.
	// InnerEpsilon defaults to Epsilon/10; InnerMaxIterations to
	// MaxIterations.
	InnerEpsilon       float64
	InnerMaxIterations int
	// Relaxation is the projection-method step scaling ρ ∈ (0,1]; the
	// fixed diagonal of the subproblem is diag(G)/ρ. 1 reproduces the
	// paper's subproblem (79).
	Relaxation float64
	// SkipDominanceCheck disables the strict-diagonal-dominance validation
	// of general problems. Checking a dense 14400×14400 G costs a full
	// scan; generators that construct dominant matrices by design may skip
	// it.
	SkipDominanceCheck bool

	// Arena, if non-nil, supplies reusable solver state for steady-state
	// workloads: back-to-back solves on same-shape problems reuse every
	// working buffer, the worker pool (when Runner is nil), and the kernel's
	// warm-start permutations, reaching (near) zero allocations per solve.
	// The returned Solution then aliases arena-owned memory — valid until
	// the next solve on the same arena. See Arena.
	Arena *Arena
	// DisableWarmStart turns off the equilibration kernel's warm-started
	// breakpoint sort, forcing a full cold sort in every subproblem. Results
	// are bit-identical either way (warm starts are exact); this exists as
	// the ablation switch that makes the warm-start speedup attributable.
	DisableWarmStart bool
	// DisableBatch turns off the batched equilibration kernel, solving every
	// row/column subproblem with an individual sort-and-sweep. Results are
	// bit-identical either way (the batch produces each subproblem's unique
	// canonical breakpoint order); this exists as the ablation switch that
	// makes the fused-sort speedup attributable, and as the reference path
	// the batched-vs-unbatched property tests compare against.
	DisableBatch bool
	// BatchEvents overrides the batched kernel's per-chunk event budget —
	// the number of concatenated breakpoint events one fused radix pass
	// covers. 0 means the tuned default (see docs/PERFORMANCE.md); 1
	// degenerates to one subproblem per batch. Exposed for the segment-
	// boundary property tests; solutions do not depend on it.
	BatchEvents int
}

// DefaultOptions returns the options used throughout the paper's
// experiments: ε = .001, the relative-balance criterion, convergence checked
// every iteration, serial execution.
func DefaultOptions() *Options {
	return &Options{
		Epsilon:       1e-3,
		Criterion:     RelBalance,
		CheckEvery:    1,
		MaxIterations: 100000,
		Procs:         1,
		Relaxation:    1,
	}
}

// withDefaults fills unset fields of o (nil o gets DefaultOptions).
func (o *Options) withDefaults() *Options {
	if o == nil {
		return DefaultOptions()
	}
	out := *o
	if out.Epsilon <= 0 {
		out.Epsilon = 1e-3
	}
	if out.CheckEvery <= 0 {
		out.CheckEvery = 1
	}
	if out.MaxIterations <= 0 {
		out.MaxIterations = 100000
	}
	if out.Procs <= 0 {
		out.Procs = 1
	}
	if out.Relaxation <= 0 || out.Relaxation > 1 {
		out.Relaxation = 1
	}
	if out.InnerEpsilon <= 0 {
		out.InnerEpsilon = out.Epsilon / 10
	}
	if out.InnerMaxIterations <= 0 {
		out.InnerMaxIterations = out.MaxIterations
	}
	if out.BoundMultipliers && out.MultiplierBound <= 0 {
		out.MultiplierBound = 1e12
	}
	if out.KernelTol <= 0 {
		out.KernelTol = out.Epsilon * 1e-4
	}
	if out.PrecondSweeps <= 0 {
		out.PrecondSweeps = DefaultPrecondSweeps
	}
	// An iteration observer subsumes the counters: events report the
	// per-iteration counter deltas, so a solve with a Trace always keeps
	// counters, private ones when the caller attached none.
	if out.Trace != nil && out.Counters == nil {
		out.Counters = &metrics.Counters{}
	}
	return &out
}

// CostTrace records, per iteration, the abstract operation cost of every
// parallel task and of the serial convergence phase. The parsim package
// replays a trace on a simulated N-processor machine to produce the paper's
// speedup and efficiency tables.
type CostTrace struct {
	Phases []PhaseCosts
}

// PhaseCosts is the cost breakdown of one iteration (one row phase, one
// column phase, and any serial work that follows them).
type PhaseCosts struct {
	// Row[i] is the op count of row subproblem i; Col[j] of column
	// subproblem j. Each entry is one schedulable parallel task.
	Row []int64
	Col []int64
	// Check holds the parallel convergence-verification tasks when the
	// check runs in parallel (Options.ParallelConvCheck); nil otherwise.
	Check []int64
	// Serial is the op count of the serial phase (convergence
	// verification, or just its reduction when the check is parallel),
	// zero on iterations where no check runs.
	Serial int64
}

// TotalOps sums every cost in the trace.
func (t *CostTrace) TotalOps() int64 {
	var s int64
	for _, ph := range t.Phases {
		for _, v := range ph.Row {
			s += v
		}
		for _, v := range ph.Col {
			s += v
		}
		for _, v := range ph.Check {
			s += v
		}
		s += ph.Serial
	}
	return s
}
