package core

import (
	"context"
	"errors"
	"math"
	"math/rand/v2"
	"testing"
)

// randInterval builds a random feasible interval-totals problem whose
// intervals bracket a common feasible mass.
func randInterval(rng *rand.Rand, m, n int, width float64) *DiagonalProblem {
	x0 := make([]float64, m*n)
	gamma := make([]float64, m*n)
	for k := range x0 {
		x0[k] = 0.1 + rng.Float64()*100
		gamma[k] = 1 / x0[k]
	}
	slo := make([]float64, m)
	shi := make([]float64, m)
	dlo := make([]float64, n)
	dhi := make([]float64, n)
	for i := 0; i < m; i++ {
		var rs float64
		for j := 0; j < n; j++ {
			rs += x0[i*n+j]
		}
		c := rs * (1 + rng.Float64()) // center up to 2× the prior sum
		slo[i] = math.Max(0, c*(1-width))
		shi[i] = c * (1 + width)
	}
	// Column intervals spanning the full row mass range keep the problem
	// feasible for any width.
	var totLo, totHi float64
	for i := range slo {
		totLo += slo[i]
		totHi += shi[i]
	}
	for j := 0; j < n; j++ {
		dlo[j] = totLo / float64(n) * 0.5
		dhi[j] = totHi / float64(n) * 1.5
	}
	p, err := NewInterval(m, n, x0, gamma, slo, shi, dlo, dhi)
	if err != nil {
		panic(err)
	}
	return p
}

func TestIntervalExactRecovery(t *testing.T) {
	// Prior sums strictly inside every interval: the prior is optimal.
	rng := rand.New(rand.NewPCG(91, 92))
	m, n := 4, 5
	x0 := make([]float64, m*n)
	gamma := make([]float64, m*n)
	for k := range x0 {
		x0[k] = 1 + rng.Float64()*10
		gamma[k] = 1
	}
	slo := make([]float64, m)
	shi := make([]float64, m)
	dlo := make([]float64, n)
	dhi := make([]float64, n)
	rs := make([]float64, m)
	cs := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			rs[i] += x0[i*n+j]
			cs[j] += x0[i*n+j]
		}
	}
	for i := range rs {
		slo[i] = rs[i] * 0.9
		shi[i] = rs[i] * 1.1
	}
	for j := range cs {
		dlo[j] = cs[j] * 0.9
		dhi[j] = cs[j] * 1.1
	}
	p, err := NewInterval(m, n, x0, gamma, slo, shi, dlo, dhi)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveDiagonal(context.Background(), p, tightOpts())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective > 1e-12 {
		t.Errorf("objective %g, want 0 (prior feasible)", sol.Objective)
	}
	for k := range sol.X {
		if sol.X[k] != x0[k] {
			t.Fatalf("X[%d] moved from a feasible prior", k)
		}
	}
	if sol.Iterations != 1 {
		t.Errorf("took %d iterations, want 1 (constraints all slack)", sol.Iterations)
	}
}

func TestIntervalDegeneratesToFixed(t *testing.T) {
	// Pinned intervals (lo = hi) must reproduce the fixed-totals solution.
	rng := rand.New(rand.NewPCG(93, 94))
	pf := randFixed(rng, 5, 6, 100, 2)
	pi := &DiagonalProblem{
		M: pf.M, N: pf.N, X0: pf.X0, Gamma: pf.Gamma,
		SLo: pf.S0, SHi: pf.S0, DLo: pf.D0, DHi: pf.D0,
		Kind: IntervalTotals,
	}
	if err := pi.Validate(); err != nil {
		t.Fatal(err)
	}
	fixed, err := SolveDiagonal(context.Background(), pf, tightOpts())
	if err != nil {
		t.Fatal(err)
	}
	interval, err := SolveDiagonal(context.Background(), pi, tightOpts())
	if err != nil {
		t.Fatal(err)
	}
	for k := range fixed.X {
		if math.Abs(fixed.X[k]-interval.X[k]) > 1e-6*(1+math.Abs(fixed.X[k])) {
			t.Fatalf("pinned interval diverges from fixed at %d: %g vs %g",
				k, interval.X[k], fixed.X[k])
		}
	}
}

func TestIntervalRelaxationHelps(t *testing.T) {
	// Widening the intervals can only decrease the optimal objective.
	rng := rand.New(rand.NewPCG(95, 96))
	pf := randFixed(rng, 5, 5, 100, 2)
	makeInterval := func(width float64) *DiagonalProblem {
		m, n := pf.M, pf.N
		p := &DiagonalProblem{
			M: m, N: n, X0: pf.X0, Gamma: pf.Gamma,
			SLo: make([]float64, m), SHi: make([]float64, m),
			DLo: make([]float64, n), DHi: make([]float64, n),
			Kind: IntervalTotals,
		}
		for i := range pf.S0 {
			p.SLo[i] = pf.S0[i] * (1 - width)
			p.SHi[i] = pf.S0[i] * (1 + width)
		}
		for j := range pf.D0 {
			p.DLo[j] = pf.D0[j] * (1 - width)
			p.DHi[j] = pf.D0[j] * (1 + width)
		}
		return p
	}
	prev := math.Inf(1)
	for _, width := range []float64{0, 0.05, 0.2, 0.5} {
		p := makeInterval(width)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		sol, err := SolveDiagonal(context.Background(), p, tightOpts())
		if err != nil {
			t.Fatal(err)
		}
		if sol.Objective > prev+1e-6*(1+prev) {
			t.Errorf("width %.2f: objective %g exceeds tighter problem's %g", width, sol.Objective, prev)
		}
		prev = sol.Objective
	}
}

func TestIntervalKKT(t *testing.T) {
	rng := rand.New(rand.NewPCG(97, 98))
	for trial := 0; trial < 10; trial++ {
		m := 2 + rng.IntN(6)
		n := 2 + rng.IntN(6)
		p := randInterval(rng, m, n, 0.05+rng.Float64()*0.3)
		sol, err := SolveDiagonal(context.Background(), p, tightOpts())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rep := CheckKKT(p, sol)
		if !rep.Satisfied(1e-5) {
			t.Errorf("trial %d: KKT violated: %+v", trial, rep)
		}
		// Interval feasibility of the final sums.
		rs := make([]float64, m)
		cs := make([]float64, n)
		p.RowSums(sol.X, rs)
		p.ColSums(sol.X, cs)
		for i := 0; i < m; i++ {
			if rs[i] < p.SLo[i]-1e-5 || rs[i] > p.SHi[i]+1e-5 {
				t.Errorf("trial %d: rowsum %d = %g outside [%g,%g]", trial, i, rs[i], p.SLo[i], p.SHi[i])
			}
		}
		for j := 0; j < n; j++ {
			if cs[j] < p.DLo[j]-1e-5 || cs[j] > p.DHi[j]+1e-5 {
				t.Errorf("trial %d: colsum %d = %g outside [%g,%g]", trial, j, cs[j], p.DLo[j], p.DHi[j])
			}
		}
	}
}

func TestIntervalWeakDuality(t *testing.T) {
	rng := rand.New(rand.NewPCG(99, 100))
	p := randInterval(rng, 4, 5, 0.2)
	sol, err := SolveDiagonal(context.Background(), p, tightOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Strong duality at the optimum.
	if math.Abs(sol.Gap()) > 1e-5*(1+math.Abs(sol.Objective)) {
		t.Errorf("duality gap %g (obj %g, dual %g)", sol.Gap(), sol.Objective, sol.DualValue)
	}
	// Weak duality at random multipliers.
	lambda := make([]float64, p.M)
	mu := make([]float64, p.N)
	for i := range lambda {
		lambda[i] = rng.NormFloat64()
	}
	for j := range mu {
		mu[j] = rng.NormFloat64()
	}
	if z := DualValue(p, lambda, mu); z > sol.Objective+1e-6*(1+sol.Objective) {
		t.Errorf("weak duality violated: ζ = %g > %g", z, sol.Objective)
	}
}

func TestIntervalValidation(t *testing.T) {
	x0 := []float64{1, 1, 1, 1}
	gamma := []float64{1, 1, 1, 1}
	if _, err := NewInterval(2, 2, x0, gamma,
		[]float64{1, 1}, []float64{0.5, 2}, []float64{0, 0}, []float64{5, 5}); !errors.Is(err, ErrInfeasible) {
		t.Error("hi < lo accepted")
	}
	if _, err := NewInterval(2, 2, x0, gamma,
		[]float64{-1, 1}, []float64{2, 2}, []float64{0, 0}, []float64{5, 5}); !errors.Is(err, ErrInfeasible) {
		t.Error("negative lo accepted")
	}
	// Disjoint mass intervals: rows need at least 10, columns at most 4.
	if _, err := NewInterval(2, 2, x0, gamma,
		[]float64{5, 5}, []float64{6, 6}, []float64{1, 1}, []float64{2, 2}); !errors.Is(err, ErrInfeasible) {
		t.Error("disjoint mass intervals accepted")
	}
	if _, err := NewInterval(2, 2, x0, gamma,
		[]float64{1}, []float64{2, 2}, []float64{0, 0}, []float64{5, 5}); err == nil {
		t.Error("short SLo accepted")
	}
}

func TestIntervalResidualIsIntervalDistance(t *testing.T) {
	// MaxDualResidual must measure distance-to-interval, vanishing at the
	// optimum even when the sums sit strictly inside their intervals.
	rng := rand.New(rand.NewPCG(101, 102))
	p := randInterval(rng, 4, 4, 0.3)
	sol, err := SolveDiagonal(context.Background(), p, tightOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r := MaxDualResidual(p, sol.Lambda, sol.Mu); r > 1e-7 {
		t.Errorf("residual %g at optimum", r)
	}
}

// TestGeneralInterval: interval totals with a dense G via the general
// solver.
func TestGeneralInterval(t *testing.T) {
	rng := rand.New(rand.NewPCG(103, 104))
	m, n := 4, 5
	mn := m * n
	x0 := make([]float64, mn)
	for k := range x0 {
		x0[k] = rng.Float64() * 50
	}
	slo := make([]float64, m)
	shi := make([]float64, m)
	for i := 0; i < m; i++ {
		var rs float64
		for j := 0; j < n; j++ {
			rs += x0[i*n+j]
		}
		slo[i] = rs * 1.2
		shi[i] = rs * 1.6
	}
	dlo := make([]float64, n)
	dhi := make([]float64, n)
	for j := 0; j < n; j++ {
		var cs float64
		for i := 0; i < m; i++ {
			cs += x0[i*n+j]
		}
		dlo[j] = cs * 1.0
		dhi[j] = cs * 2.0
	}
	gp := &GeneralProblem{
		M: m, N: n, X0: x0,
		G:   denseDominant(rng, mn, 10, 20),
		SLo: slo, SHi: shi, DLo: dlo, DHi: dhi,
		Kind: IntervalTotals,
	}
	o := generalOpts()
	sol, err := SolveGeneral(context.Background(), gp, o)
	if err != nil {
		t.Fatal(err)
	}
	rep := CheckKKTGeneral(gp, sol)
	if !rep.Satisfied(1e-3) {
		t.Errorf("general interval KKT: %+v", rep)
	}
	// Interval feasibility.
	for i := 0; i < m; i++ {
		var rs float64
		for j := 0; j < n; j++ {
			rs += sol.X[i*n+j]
		}
		if rs < slo[i]-1e-4 || rs > shi[i]+1e-4 {
			t.Errorf("row %d sum %g outside [%g,%g]", i, rs, slo[i], shi[i])
		}
	}
}
