package core

import (
	"context"
	"math/rand/v2"
	"testing"

	"sea/internal/parallel"
	"sea/internal/trace"
)

// determinismProblem builds a fixed-seed 100×150 bounded fixed-totals
// instance that exercises both phases, the box bounds, and the transposed-
// constant column path.
func determinismProblem(t *testing.T) *DiagonalProblem {
	t.Helper()
	m, n := 100, 150
	rng := rand.New(rand.NewPCG(42, 7))
	x0 := make([]float64, m*n)
	gamma := make([]float64, m*n)
	upper := make([]float64, m*n)
	for k := range x0 {
		x0[k] = rng.Float64() * 10
		gamma[k] = 0.5 + rng.Float64()
		upper[k] = 25 + rng.Float64()*10
	}
	s0 := make([]float64, m)
	d0 := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			v := 1.2 * x0[i*n+j]
			s0[i] += v
			d0[j] += v
		}
	}
	p, err := NewFixed(m, n, x0, gamma, s0, d0)
	if err != nil {
		t.Fatal(err)
	}
	p.Upper = upper
	return p
}

// TestSolveDeterministicAcrossProcs asserts the full solution — X down to
// the last bit, plus both multiplier vectors — is identical for every worker
// count, on both scheduling substrates: the persistent pool (the default)
// and the goroutine-per-phase Spawner (the pre-pool path). This is the
// paper's determinism property: workers own disjoint subproblem ranges, so
// parallelism changes timing and nothing else.
func TestSolveDeterministicAcrossProcs(t *testing.T) {
	p := determinismProblem(t)
	opts := func() *Options {
		o := DefaultOptions()
		o.Criterion = MaxAbsDelta
		o.Epsilon = 1e-6
		o.ParallelConvCheck = true
		return o
	}

	ref, err := SolveDiagonal(context.Background(), p, opts())
	if err != nil {
		t.Fatalf("serial reference solve: %v", err)
	}
	if !ref.Converged {
		t.Fatal("serial reference did not converge")
	}

	check := func(name string, sol *Solution) {
		t.Helper()
		for k := range ref.X {
			if sol.X[k] != ref.X[k] {
				t.Fatalf("%s: X[%d] = %v, want %v (bit-exact)", name, k, sol.X[k], ref.X[k])
			}
		}
		for i := range ref.Lambda {
			if sol.Lambda[i] != ref.Lambda[i] {
				t.Fatalf("%s: Lambda[%d] = %v, want %v", name, i, sol.Lambda[i], ref.Lambda[i])
			}
		}
		for j := range ref.Mu {
			if sol.Mu[j] != ref.Mu[j] {
				t.Fatalf("%s: Mu[%d] = %v, want %v", name, j, sol.Mu[j], ref.Mu[j])
			}
		}
		if sol.Iterations != ref.Iterations {
			t.Fatalf("%s: %d iterations, want %d", name, sol.Iterations, ref.Iterations)
		}
	}

	for _, procs := range []int{1, 2, 7, 16} {
		// The default substrate: a solver-owned persistent pool.
		o := opts()
		o.Procs = procs
		sol, err := SolveDiagonal(context.Background(), p, o)
		if err != nil {
			t.Fatalf("pool procs=%d: %v", procs, err)
		}
		check("pool", sol)

		// A caller-owned shared pool via Options.Runner.
		pool := parallel.NewPool(procs)
		o = opts()
		o.Runner = pool
		sol, err = SolveDiagonal(context.Background(), p, o)
		pool.Close()
		if err != nil {
			t.Fatalf("shared pool procs=%d: %v", procs, err)
		}
		check("shared pool", sol)

		// The pre-pool goroutine-per-phase path.
		o = opts()
		o.Runner = parallel.Spawner{P: procs}
		sol, err = SolveDiagonal(context.Background(), p, o)
		if err != nil {
			t.Fatalf("spawner procs=%d: %v", procs, err)
		}
		check("spawner", sol)
	}
}

// TestSolveDeterministicWithTrace asserts that attaching a Trace observer is
// purely passive: the solution stays bit-exact against the untraced serial
// reference for every worker count, the observer sees exactly one event per
// outer iteration, and the auto-attached counters report through the events.
func TestSolveDeterministicWithTrace(t *testing.T) {
	p := determinismProblem(t)
	opts := func() *Options {
		o := DefaultOptions()
		o.Criterion = MaxAbsDelta
		o.Epsilon = 1e-6
		o.ParallelConvCheck = true
		return o
	}

	ref, err := SolveDiagonal(context.Background(), p, opts())
	if err != nil {
		t.Fatalf("serial reference solve: %v", err)
	}

	for _, procs := range []int{1, 2, 7, 16} {
		var col trace.Collector
		o := opts()
		o.Procs = procs
		o.Trace = &col
		sol, err := SolveDiagonal(context.Background(), p, o)
		if err != nil {
			t.Fatalf("traced solve procs=%d: %v", procs, err)
		}
		for k := range ref.X {
			if sol.X[k] != ref.X[k] {
				t.Fatalf("procs=%d: X[%d] = %v, want %v (bit-exact with trace attached)", procs, k, sol.X[k], ref.X[k])
			}
		}
		for i := range ref.Lambda {
			if sol.Lambda[i] != ref.Lambda[i] {
				t.Fatalf("procs=%d: Lambda[%d] = %v, want %v", procs, i, sol.Lambda[i], ref.Lambda[i])
			}
		}
		for j := range ref.Mu {
			if sol.Mu[j] != ref.Mu[j] {
				t.Fatalf("procs=%d: Mu[%d] = %v, want %v", procs, j, sol.Mu[j], ref.Mu[j])
			}
		}
		if sol.Iterations != ref.Iterations {
			t.Fatalf("procs=%d: %d iterations, want %d", procs, sol.Iterations, ref.Iterations)
		}
		if len(col.Events) != sol.Iterations {
			t.Fatalf("procs=%d: %d trace events, want one per iteration (%d)", procs, len(col.Events), sol.Iterations)
		}
		for i, ev := range col.Events {
			if ev.Iteration != i+1 {
				t.Fatalf("procs=%d: event %d has Iteration %d", procs, i, ev.Iteration)
			}
			if ev.Solver != "sea" {
				t.Fatalf("procs=%d: event solver %q, want %q", procs, ev.Solver, "sea")
			}
			if ev.Equilibrations <= 0 {
				t.Fatalf("procs=%d: event %d reports %d equilibrations; counters were not subsumed", procs, i, ev.Equilibrations)
			}
		}
		last := col.Last()
		if last.Iteration == 0 || !last.Checked {
			t.Fatalf("procs=%d: final event missing or unchecked: %+v", procs, last)
		}
	}
}
