package core

import (
	"context"
	"math/rand/v2"
	"runtime"
	"testing"
)

// benchDiagProblem builds a dense fixed-totals instance sized for the phase
// microbenchmarks.
func benchDiagProblem(b *testing.B, m, n int) *DiagonalProblem {
	b.Helper()
	rng := rand.New(rand.NewPCG(1, uint64(m)))
	x0 := make([]float64, m*n)
	gamma := make([]float64, m*n)
	for k := range x0 {
		x0[k] = rng.Float64() * 100
		gamma[k] = 0.5 + rng.Float64()
	}
	s0 := make([]float64, m)
	d0 := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			v := 1.3 * x0[i*n+j]
			s0[i] += v
			d0[j] += v
		}
	}
	p, err := NewFixed(m, n, x0, gamma, s0, d0)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// benchPhaseState prepares a diagState mid-solve: one full iteration seeds
// the multipliers so the benchmarked phase sees steady-state inputs.
func benchPhaseState(b *testing.B, procs int) *diagState {
	b.Helper()
	p := benchDiagProblem(b, 500, 500)
	o := DefaultOptions()
	o.Procs = procs
	st := newDiagState(context.Background(), p, o.withDefaults())
	b.Cleanup(st.close)
	if err := st.rowPhase(nil); err != nil {
		b.Fatal(err)
	}
	if err := st.colPhase(nil); err != nil {
		b.Fatal(err)
	}
	return st
}

// The row/column phase pair isolates the tiling win: the column phase used
// to gather and scatter with stride n, and should now sit within a small
// factor of the row phase instead of far behind it. ReportAllocs guards the
// steady-state zero-allocation property.

func BenchmarkRowPhase(b *testing.B)         { benchRowPhase(b, 1) }
func BenchmarkRowPhaseParallel(b *testing.B) { benchRowPhase(b, runtime.NumCPU()) }

func benchRowPhase(b *testing.B, procs int) {
	st := benchPhaseState(b, procs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.rowPhase(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColumnPhase(b *testing.B)         { benchColPhase(b, 1) }
func BenchmarkColumnPhaseParallel(b *testing.B) { benchColPhase(b, runtime.NumCPU()) }

func benchColPhase(b *testing.B, procs int) {
	st := benchPhaseState(b, procs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.colPhase(nil); err != nil {
			b.Fatal(err)
		}
	}
}
