package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"sea/internal/equilibrate"
	"sea/internal/mat"
	"sea/internal/metrics"
	"sea/internal/parallel"
	"sea/internal/trace"
)

// SolveDiagonal runs the splitting equilibration algorithm on a diagonal
// constrained matrix problem (paper Section 3.1): alternating parallel row
// and column exact-equilibration phases — dual block-coordinate ascent on
// ζ_l(λ,μ) — until the convergence criterion is met.
//
// Cancellation is observed between phases: when ctx is cancelled or its
// deadline passes, the solve returns within one outer iteration with the
// last consistent iterate and ctx.Err(). A nil ctx means context.Background.
//
// On iteration-limit exhaustion it returns the last iterate together with an
// error wrapping ErrNotConverged.
//
// With Options.Arena set, the working state (and the returned Solution's
// backing arrays) come from the arena and are reused across same-shape
// solves; see Arena for the aliasing and concurrency contract.
func SolveDiagonal(ctx context.Context, p *DiagonalProblem, opts *Options) (*Solution, error) {
	o := opts.withDefaults()
	if o.Objective != ObjectiveQuadratic {
		return nil, fmt.Errorf("core: SolveDiagonal minimizes the quadratic objective only; route Objective=%v through the facade's \"entropy\" solver", o.Objective)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := o.Arena.acquire(); err != nil {
		return nil, err
	}
	defer o.Arena.release()
	var ps *precondState
	if o.Precondition != PrecondNone {
		if ar := o.Arena; ar != nil {
			if ar.pre == nil {
				ar.pre = &precondState{}
			}
			ps = ar.pre
		} else {
			ps = &precondState{}
		}
		p = ps.apply(p, o)
	}
	st := newDiagState(ctx, p, o)
	defer st.close()
	err := st.run()
	sol := st.solution()
	if ps != nil {
		ps.unscale(sol)
	}
	return sol, err
}

// diagState carries the working arrays of one diagonal solve.
//
// The iterate is kept in two layouts: x row-major for the row phase and the
// convergence check, and the mirror xT column-major so the column phase
// reads and writes contiguous memory instead of stride-n gathers. The
// problem constants the column phase needs (priors, slopes, bounds) are
// transposed once up front for the same reason; a blocked transpose
// reconciles xT back into x after each column phase.
//
// A state can outlive one solve: with Options.Arena the whole struct is
// cached and re-adopted by the next same-shape solve, which resets the
// per-solve scalars and recomputes the data-dependent constants while
// keeping every buffer — and the kernel warm-start states — alive.
type diagState struct {
	ctx context.Context
	p   *DiagonalProblem
	o   *Options

	m, n  int    // cached problem shape (the arena reuse key, with nv)
	nv    int    // stored cells per per-cell buffer: m·n dense, nnz CSR
	arena *Arena // nil when not reusing

	// pat is the problem's CSR pattern (nil for dense storage). The column
	// mirror below is the CSC view of the same support, rebuilt whenever an
	// adopted state sees a different pattern: cscPtr[j]..cscPtr[j+1] are
	// column j's stored positions in the mirror arrays, cscRow their row
	// indices, and cscPos the permutation from mirror position back to CSR
	// position — the sparse replacement for the dense blocked transpose.
	pat    *Pattern
	cscPtr []int
	cscRow []int32
	cscPos []int32
	cscTmp []int // per-column cursor scratch for buildCSC

	x        []float64 // current matrix iterate in storage order (row-major / CSR)
	xT       []float64 // column-major mirror: dense n×m, or CSC order for CSR
	xPrev    []float64 // previous checked iterate (MaxAbsDelta only)
	lambda   []float64 // row multipliers λ_i
	mu       []float64 // column multipliers μ_j
	rowSum   []float64 // Σ_j x_ij as returned by the latest row phase
	colSum   []float64 // Σ_i x_ij as returned by the latest column phase
	checkBuf []float64 // per-row scratch for the parallel convergence check

	aRow       []float64 // slopes a_ij = 1/(2γ_ij), storage order
	aT         []float64 // aRow in column-mirror order
	x0T        []float64 // p.X0 in column-mirror order; refreshX0T re-syncs it when X0 mutates
	upperT     []float64 // p.Upper in column-mirror order, nil when unbounded
	lowerT     []float64 // p.Lower in column-mirror order, nil when absent
	supplyBuf  []float64 // supplies scratch for checkConvergence, hoisted off the hot loop
	checkTasks []int64   // shared parallel-check trace costs (row i's entry is its stored width)

	// rowStates[k][i] / colStates[k][j] carry the kernel's warm-start
	// permutation for row i / column j, bucketed by iteration slot k (see
	// statesFor for the slot policy — per-iteration under an arena so
	// repeated solves replay the matching iteration, consecutive-iteration
	// otherwise). State i is always handed to subproblem i regardless of how
	// the index range is chunked, so warm starting cannot perturb the
	// disjoint-partition determinism contract — and the kernel guarantees
	// warm results are bit-identical to cold ones anyway.
	rowStates [][]equilibrate.State
	colStates [][]equilibrate.State
	warm      bool // thread the states (off under Options.DisableWarmStart)
	// curRowStates/curColStates are the slot arrays of the phase being
	// dispatched (written by rowPhase/colPhase before the dispatch, read by
	// the chunk bodies; nil disables warm starting for the phase).
	curRowStates []equilibrate.State
	curColStates []equilibrate.State

	runner  parallel.Runner
	ownPool *parallel.Pool // set when the state created (and must close) its runner

	workspaces []*equilibrate.Workspace
	batches    []*equilibrate.Batch // per-worker batched-kernel buffers
	errs       []error

	// useBatch routes the phase bodies through the batched kernel (the
	// default for the exact kernel); batchTarget is its per-chunk event
	// budget. Both are re-resolved from Options on every solve.
	useBatch    bool
	batchTarget int

	// Phase bodies are bound once per state, not per dispatch, so the hot
	// loop creates no closures; curPH carries the cost-trace sink of the
	// phase being dispatched (written before the dispatch, read inside it).
	rowBody       func(chunk, lo, hi int)
	colBody       func(chunk, lo, hi int)
	aTBody        func(chunk, lo, hi int)
	x0TBody       func(chunk, lo, hi int)
	reconcileBody func(chunk, lo, hi int)
	deltaBody     func(chunk, lo, hi int)
	sumBody       func(chunk, lo, hi int)
	curPH         *PhaseCosts

	iterations int
	converged  bool
	residual   float64
	havePrev   bool
}

func newDiagState(ctx context.Context, p *DiagonalProblem, o *Options) *diagState {
	if ctx == nil {
		ctx = context.Background()
	}
	m, n := p.M, p.N
	maxDim := m
	if n > maxDim {
		maxDim = n
	}

	nv := p.Nnz()
	ar := o.Arena
	var st *diagState
	if ar != nil && ar.st != nil && ar.st.m == m && ar.st.n == n &&
		ar.st.nv == nv && (ar.st.pat != nil) == (p.Pattern != nil) {
		st = ar.st
		st.reset()
	} else {
		st = &diagState{
			m: m, n: n, nv: nv,
			x:         make([]float64, nv),
			xT:        make([]float64, nv),
			lambda:    make([]float64, m),
			mu:        make([]float64, n),
			rowSum:    make([]float64, m),
			colSum:    make([]float64, n),
			checkBuf:  make([]float64, m),
			aRow:      make([]float64, nv),
			aT:        make([]float64, nv),
			x0T:       make([]float64, nv),
			supplyBuf: make([]float64, m),
		}
		st.bindBodies()
		if ar != nil {
			ar.st = st
		}
	}
	st.ctx, st.p, st.o = ctx, p, o
	st.arena = ar
	st.warm = !o.DisableWarmStart

	if o.Mu0 != nil {
		copy(st.mu, o.Mu0)
	}
	if o.Criterion == MaxAbsDelta && st.xPrev == nil {
		st.xPrev = make([]float64, nv)
	}

	st.runner = o.Runner
	st.ownPool = nil
	if st.runner == nil {
		procs := o.Procs
		if procs > maxDim {
			procs = maxDim
		}
		if ar != nil {
			// The arena owns a persistent pool so repeated solves skip the
			// worker spawn; it is re-created only when Procs changes.
			if ar.pool == nil || ar.poolProcs != procs {
				if ar.pool != nil {
					ar.pool.Close()
				}
				ar.pool = parallel.NewPool(procs)
				ar.poolProcs = procs
			}
			st.runner = ar.pool
		} else {
			st.ownPool = parallel.NewPool(procs)
			st.runner = st.ownPool
		}
	}
	procs := st.runner.Workers()
	if procs > maxDim {
		procs = maxDim
	}
	if procs < 1 {
		procs = 1
	}
	st.useBatch = o.Kernel != KernelBisection && !o.DisableBatch
	st.batchTarget = o.BatchEvents
	if st.batchTarget <= 0 {
		st.batchTarget = defaultBatchEvents
	}
	batchHint := 0
	if st.useBatch {
		// Budget plus one subproblem of overshoot (bounded rows build up to
		// 2·maxDim events), so a batch never regrows mid-phase.
		if batchHint = st.batchTarget; batchHint < 2*maxDim {
			batchHint = 2 * maxDim
		}
	}
	for len(st.workspaces) < procs {
		st.workspaces = append(st.workspaces, equilibrate.NewWorkspace(maxDim))
		st.batches = append(st.batches, equilibrate.NewBatch(batchHint))
		st.errs = append(st.errs, nil)
	}

	// Data-dependent constants, recomputed on every solve (an adopted state
	// may carry a different problem with the same shape).
	if st.pat != p.Pattern {
		// The column mirror and the per-row check costs are functions of the
		// support, not the values; rebuild them only when the pattern itself
		// changes under an adopted state.
		st.pat = p.Pattern
		st.checkTasks = nil
		if st.pat != nil {
			st.buildCSC()
		}
	}
	for k, g := range p.Gamma {
		st.aRow[k] = 0.5 / g
	}
	if st.pat == nil {
		st.runner.ForChunks(m, st.aTBody)
	} else {
		st.runner.ForChunks(n, st.aTBody)
	}
	st.refreshX0T()
	if p.Upper != nil {
		st.upperT = resizeF(st.upperT, nv)
		st.mirror(st.upperT, p.Upper)
	} else {
		st.upperT = nil
	}
	if p.Lower != nil {
		st.lowerT = resizeF(st.lowerT, nv)
		st.mirror(st.lowerT, p.Lower)
	} else {
		st.lowerT = nil
	}
	return st
}

// mirror writes src's column-mirror image into dst: a dense transpose, or a
// CSC-order gather for CSR storage.
func (st *diagState) mirror(dst, src []float64) {
	if st.pat == nil {
		mat.Transpose(dst, src, st.m, st.n)
		return
	}
	st.gatherCSC(dst, src, 0, st.n)
}

// rowSpan returns row i's index range into the storage-order per-cell arrays.
func (st *diagState) rowSpan(i int) (int, int) {
	if st.pat == nil {
		return i * st.n, (i + 1) * st.n
	}
	return st.pat.RowPtr[i], st.pat.RowPtr[i+1]
}

// buildCSC derives the CSC view of st.pat by counting sort: one pass counts
// column occupancy, a prefix sum places the column starts, and a row-major
// sweep fills cscRow/cscPos — which therefore list each column's entries in
// ascending row order, exactly the order the dense column phase reads them.
func (st *diagState) buildCSC() {
	pt := st.pat
	m, n, nnz := st.m, st.n, pt.Nnz()
	st.cscPtr = resizeI(st.cscPtr, n+1)
	st.cscTmp = resizeI(st.cscTmp, n)
	st.cscRow = resizeI32(st.cscRow, nnz)
	st.cscPos = resizeI32(st.cscPos, nnz)
	clear(st.cscTmp)
	for _, j := range pt.ColIdx {
		st.cscTmp[j]++
	}
	st.cscPtr[0] = 0
	for j := 0; j < n; j++ {
		st.cscPtr[j+1] = st.cscPtr[j] + st.cscTmp[j]
		st.cscTmp[j] = st.cscPtr[j]
	}
	for i := 0; i < m; i++ {
		for k := pt.RowPtr[i]; k < pt.RowPtr[i+1]; k++ {
			j := pt.ColIdx[k]
			q := st.cscTmp[j]
			st.cscRow[q] = int32(i)
			st.cscPos[q] = int32(k)
			st.cscTmp[j] = q + 1
		}
	}
}

// gatherCSC fills the column-mirror positions of columns [loCol,hiCol) from a
// storage-order source array.
func (st *diagState) gatherCSC(dst, src []float64, loCol, hiCol int) {
	for q := st.cscPtr[loCol]; q < st.cscPtr[hiCol]; q++ {
		dst[q] = src[st.cscPos[q]]
	}
}

// scatterCSC is the inverse of gatherCSC: it folds the column-mirror values of
// columns [loCol,hiCol) back into a storage-order destination. Distinct
// columns touch disjoint storage positions, so parallel bands never race.
func (st *diagState) scatterCSC(dst, src []float64, loCol, hiCol int) {
	for q := st.cscPtr[loCol]; q < st.cscPtr[hiCol]; q++ {
		dst[st.cscPos[q]] = src[q]
	}
}

// reset clears the per-solve scalars of an adopted state. Everything not
// cleared here is either recomputed by newDiagState (the data-dependent
// constants) or fully overwritten by the first iteration's phases before it
// is read (x, xT, lambda, rowSum, colSum); the kernel warm-start states are
// deliberately kept — that is the point of adoption.
func (st *diagState) reset() {
	st.iterations = 0
	st.converged = false
	st.residual = 0
	st.havePrev = false
	for i := range st.errs {
		st.errs[i] = nil
	}
	clear(st.mu) // the paper's μ¹ = 0 initialization (before any Mu0 copy)
}

// bindBodies creates the dispatch closures once for the state's lifetime.
func (st *diagState) bindBodies() {
	st.rowBody = st.rowChunk
	st.colBody = st.colChunk
	// The transpose-flavored bodies are chunked over source rows when dense
	// and over columns of the CSC mirror when sparse; newDiagState and
	// refreshX0T dispatch over the matching dimension.
	st.aTBody = func(_, lo, hi int) {
		if st.pat == nil {
			mat.TransposeRange(st.aT, st.aRow, st.m, st.n, lo, hi)
			return
		}
		st.gatherCSC(st.aT, st.aRow, lo, hi)
	}
	st.x0TBody = func(_, lo, hi int) {
		if st.pat == nil {
			mat.TransposeRange(st.x0T, st.p.X0, st.m, st.n, lo, hi)
			return
		}
		st.gatherCSC(st.x0T, st.p.X0, lo, hi)
	}
	st.reconcileBody = func(_, lo, hi int) {
		if st.pat == nil {
			mat.TransposeRange(st.x, st.xT, st.n, st.m, lo, hi)
			return
		}
		st.scatterCSC(st.x, st.xT, lo, hi)
	}
	st.deltaBody = func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			s, e := st.rowSpan(i)
			row := st.x[s:e]
			prev := st.xPrev[s:e]
			st.checkBuf[i] = mat.MaxAbsDiff(row, prev)
			copy(prev, row)
		}
	}
	st.sumBody = func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			s, e := st.rowSpan(i)
			st.rowSum[i] = mat.Sum(st.x[s:e])
		}
	}
}

// close releases the state's own worker pool, if it created one. Runners
// supplied through Options — and the arena's persistent pool — stay open;
// their lifecycle belongs to the caller (or the arena).
func (st *diagState) close() {
	if st.ownPool != nil {
		st.ownPool.Close()
		st.ownPool = nil
	}
}

// refreshX0T re-syncs the transposed prior with p.X0. The diagonal solver
// calls it once (X0 is constant); the general solver calls it after each
// linear-term update, whose diagonalization rewrites X0 before every column
// phase.
func (st *diagState) refreshX0T() {
	if st.pat == nil {
		st.runner.ForChunks(st.m, st.x0TBody)
		return
	}
	st.runner.ForChunks(st.n, st.x0TBody)
}

// run executes the alternating phases until convergence, cancellation, or
// the iteration limit.
func (st *diagState) run() error {
	o := st.o
	obs := o.Trace
	var prev metrics.Snapshot
	if obs != nil {
		prev = o.Counters.Snapshot()
	}
	for t := 1; t <= o.MaxIterations; t++ {
		if err := st.ctx.Err(); err != nil {
			return err
		}
		st.iterations = t
		var ph *PhaseCosts
		if o.CostTrace != nil {
			o.CostTrace.Phases = append(o.CostTrace.Phases, PhaseCosts{
				Row: make([]int64, st.p.M),
				Col: make([]int64, st.p.N),
			})
			ph = &o.CostTrace.Phases[len(o.CostTrace.Phases)-1]
		}
		var ev trace.Event
		var mark time.Time
		if obs != nil {
			ev = trace.Event{Solver: "sea", Iteration: t}
			mark = time.Now()
		}
		if err := st.rowPhase(ph); err != nil {
			return err
		}
		if obs != nil {
			now := time.Now()
			ev.RowPhase = now.Sub(mark)
			mark = now
		}
		if err := st.colPhase(ph); err != nil {
			return err
		}
		if obs != nil {
			now := time.Now()
			ev.ColPhase = now.Sub(mark)
			mark = now
		}
		if o.BoundMultipliers && st.p.Kind != ElasticTotals {
			st.boundMultipliers()
		}
		if o.Counters != nil {
			o.Counters.Iterations.Add(1)
		}
		checked := t%o.CheckEvery == 0
		done := checked && st.checkConvergence(ph)
		if obs != nil {
			ev.CheckPhase = time.Since(mark)
			ev.Checked = checked
			ev.Residual = math.NaN()
			if checked {
				ev.Residual = st.residual
			}
			snap := o.Counters.Snapshot()
			ev.Equilibrations = snap.Equilibrations - prev.Equilibrations
			ev.Ops = snap.Ops - prev.Ops
			ev.SerialOps = snap.SerialOps - prev.SerialOps
			prev = snap
			obs.ObserveIteration(ev)
		}
		if done {
			st.converged = true
			return nil
		}
	}
	return fmt.Errorf("%w after %d iterations (criterion %v, residual %g, ε %g)",
		ErrNotConverged, o.MaxIterations, o.Criterion, st.residual, o.Epsilon)
}

// Warm-start slot policy: with an arena, each of the first maxWarmSlots
// outer iterations gets its own state slot, so a repeated same-shape solve
// replays the permutation of the *matching* iteration of the previous solve
// — the breakpoint order is nearly identical there, whereas consecutive
// iterations early in a solve reorder wildly. Iterations past the cap share
// the last slot (consecutive-iteration mode), which works near convergence
// where the duals drift slowly. Without an arena nothing survives the
// solve, so a single consecutive-iteration slot engages only once the solve
// is old enough (past warmOnset) for the duals to have settled; short
// solves skip the machinery — and its allocations — entirely. The onset is
// deliberately high: a solve converging in a handful of iterations would
// pay the per-subproblem State allocations and mostly-failing replays for
// at most one or two iterations of benefit, while long dual-descent runs
// (hundreds of iterations, e.g. the SPE instances) amortize them many
// times over.
const (
	maxWarmSlots = 4
	warmOnset    = 8
)

// statesFor returns the warm-start state array for the current iteration,
// growing the slot table lazily; nil means solve cold this phase. nev > 0
// pre-sizes fresh slots' permutation buffers from a single slab (the known
// per-subproblem event count of unbounded problems), so engaging warm starts
// mid-solve does not cost one allocation per subproblem.
func (st *diagState) statesFor(slots *[][]equilibrate.State, dim, nev int) []equilibrate.State {
	if !st.warm {
		return nil
	}
	k := 0
	if st.arena != nil {
		if k = st.iterations; k > maxWarmSlots {
			k = maxWarmSlots
		}
		k--
	} else if st.iterations <= warmOnset {
		return nil
	}
	for len(*slots) <= k {
		*slots = append(*slots, nil)
	}
	if (*slots)[k] == nil {
		sts := make([]equilibrate.State, dim)
		equilibrate.PresizeStates(sts, nev)
		(*slots)[k] = sts
	}
	return (*slots)[k]
}

// phaseEvents returns the exact per-subproblem event count of a phase with
// nv variables per subproblem, or 0 when it is data-dependent — bounds make
// it value-dependent, CSR storage makes it vary per subproblem.
func (st *diagState) phaseEvents(nv int) int {
	if st.pat == nil && st.p.Upper == nil && st.p.Lower == nil {
		return nv
	}
	return 0
}

// rowPhase solves the m independent row equilibrium subproblems in parallel,
// updating x row-wise, λ, and rowSum.
func (st *diagState) rowPhase(ph *PhaseCosts) error {
	st.curPH = ph
	st.curRowStates = st.statesFor(&st.rowStates, st.m, st.phaseEvents(st.n))
	if err := st.runner.ForChunksCtx(st.ctx, st.p.M, st.rowBody); err != nil {
		return err
	}
	return st.takeErr()
}

// defaultBatchEvents is the batched kernel's per-chunk event budget: enough
// concatenated breakpoint events (16 bytes of key each) that the fused radix
// amortizes its counting passes over many subproblems while the working set
// (keys + ping-pong + canonical ≈ 3×16 B×budget) stays inside L2. See
// docs/PERFORMANCE.md.
const defaultBatchEvents = 1 << 12

// batchRows returns the end of the batch starting at lo: as many subproblems
// as fit the event budget (estimated at perRow events each), always at least
// one.
func batchRows(lo, hi, perRow, target int) int {
	rows := target / perRow
	if rows < 1 {
		rows = 1
	}
	// Cap the subproblem count too: past this the per-segment metadata the
	// batch streams (problem copies, offsets, results) outgrows the event
	// data itself — the regime of very small subproblems, where huge batches
	// stop paying (measured on the sparse table5/spe250 instances).
	if rows > maxBatchRows {
		rows = maxBatchRows
	}
	if end := lo + rows; end < hi {
		return end
	}
	return hi
}

// maxBatchRows caps the subproblems per batch regardless of their size.
const maxBatchRows = 128

// rowChunk is the row-phase body for one worker's index range.
func (st *diagState) rowChunk(chunk, lo, hi int) {
	if st.pat != nil {
		st.rowChunkSparse(chunk, lo, hi)
		return
	}
	if st.useBatch {
		st.rowChunkBatched(chunk, lo, hi)
		return
	}
	p, o := st.p, st.o
	n := st.n
	ws := st.workspaces[chunk]
	ph := st.curPH
	for i := lo; i < hi; i++ {
		x0 := p.X0[i*n : (i+1)*n]
		a := st.aRow[i*n : (i+1)*n]
		c, _ := ws.Scratch(n)
		for j := 0; j < n; j++ {
			c[j] = x0[j] + a[j]*st.mu[j]
		}
		prob := equilibrate.Problem{C: c, A: a}
		if p.Upper != nil {
			prob.U = p.Upper[i*n : (i+1)*n]
		}
		if p.Lower != nil {
			prob.L = p.Lower[i*n : (i+1)*n]
		}
		switch p.Kind {
		case FixedTotals:
			prob.R = p.S0[i]
		case ElasticTotals:
			prob.E = 0.5 / p.Alpha[i]
			prob.R = p.S0[i]
		case Balanced:
			e := 0.5 / p.Alpha[i]
			prob.E = e
			prob.R = p.S0[i] - e*st.mu[i]
		}
		var est *equilibrate.State
		if st.curRowStates != nil {
			est = &st.curRowStates[i]
		}
		var res equilibrate.Result
		var err error
		if p.Kind == IntervalTotals {
			res, err = prob.SolveIntervalState(p.SLo[i], p.SHi[i], st.x[i*n:(i+1)*n], ws, est)
		} else if o.Kernel == KernelBisection {
			res, err = prob.SolveBisection(st.x[i*n:(i+1)*n], o.KernelTol)
		} else {
			res, err = prob.SolveState(st.x[i*n:(i+1)*n], ws, est)
		}
		if err != nil {
			if st.errs[chunk] == nil {
				st.errs[chunk] = fmt.Errorf("row %d: %w", i, err)
			}
			return
		}
		st.lambda[i] = res.Lambda
		st.rowSum[i] = res.Total
		cost := res.Ops + int64(2*n)
		if ph != nil {
			ph.Row[i] = cost
		}
		if o.Counters != nil {
			o.Counters.Equilibrations.Add(1)
			o.Counters.Ops.Add(cost)
		}
	}
}

// rowChunkBatched is the batched row-phase body: it walks [lo,hi) in
// event-budget batches, accumulating each row's subproblem into the worker's
// Batch and solving the whole group with the fused sort. Per-row outputs,
// trace costs, and warm-start states are identical to rowChunk's — the batch
// kernel is bit-exact — so the two bodies are interchangeable.
func (st *diagState) rowChunkBatched(chunk, lo, hi int) {
	p, o := st.p, st.o
	n := st.n
	b := st.batches[chunk]
	ph := st.curPH
	perRow := n
	if p.Upper != nil {
		perRow = 2 * n
	}
	for lo < hi {
		end := batchRows(lo, hi, perRow, st.batchTarget)
		b.Reset()
		for i := lo; i < end; i++ {
			x0 := p.X0[i*n : (i+1)*n]
			a := st.aRow[i*n : (i+1)*n]
			c := b.Coef(n)
			for j := 0; j < n; j++ {
				c[j] = x0[j] + a[j]*st.mu[j]
			}
			prob := equilibrate.Problem{C: c, A: a}
			if p.Upper != nil {
				prob.U = p.Upper[i*n : (i+1)*n]
			}
			if p.Lower != nil {
				prob.L = p.Lower[i*n : (i+1)*n]
			}
			switch p.Kind {
			case FixedTotals:
				prob.R = p.S0[i]
			case ElasticTotals:
				prob.E = 0.5 / p.Alpha[i]
				prob.R = p.S0[i]
			case Balanced:
				e := 0.5 / p.Alpha[i]
				prob.E = e
				prob.R = p.S0[i] - e*st.mu[i]
			}
			var est *equilibrate.State
			if st.curRowStates != nil {
				est = &st.curRowStates[i]
			}
			var err error
			if p.Kind == IntervalTotals {
				err = b.AddInterval(&prob, p.SLo[i], p.SHi[i], st.x[i*n:(i+1)*n], est)
			} else {
				err = b.Add(&prob, st.x[i*n:(i+1)*n], est)
			}
			if err != nil {
				if st.errs[chunk] == nil {
					st.errs[chunk] = fmt.Errorf("row %d: %w", i, err)
				}
				return
			}
		}
		if bad, err := b.Solve(); err != nil {
			if st.errs[chunk] == nil {
				st.errs[chunk] = fmt.Errorf("row %d: %w", lo+bad, err)
			}
			return
		}
		var costSum int64
		for i := lo; i < end; i++ {
			res := b.Result(i - lo)
			st.lambda[i] = res.Lambda
			st.rowSum[i] = res.Total
			cost := res.Ops + int64(2*n)
			costSum += cost
			if ph != nil {
				ph.Row[i] = cost
			}
		}
		if o.Counters != nil {
			o.Counters.Equilibrations.Add(int64(end - lo))
			o.Counters.Ops.Add(costSum)
		}
		lo = end
	}
}

// colPhase solves the n independent column equilibrium subproblems in
// parallel, updating x column-wise, μ, and colSum. Every array it touches
// per column — the transposed prior, slopes and bounds, and the column-major
// mirror the kernel writes into — is contiguous; a blocked transpose then
// folds the mirror back into the row-major iterate.
func (st *diagState) colPhase(ph *PhaseCosts) error {
	st.curPH = ph
	st.curColStates = st.statesFor(&st.colStates, st.n, st.phaseEvents(st.m))
	if err := st.runner.ForChunksCtx(st.ctx, st.p.N, st.colBody); err != nil {
		return err
	}
	if err := st.takeErr(); err != nil {
		return err
	}
	// Reconcile the column-major mirror into the row-major iterate, banded
	// over the workers. Each band writes a disjoint set of x entries, so the
	// result is partition-independent.
	st.runner.ForChunks(st.p.N, st.reconcileBody)
	return nil
}

// colChunk is the column-phase body for one worker's index range.
func (st *diagState) colChunk(chunk, lo, hi int) {
	if st.pat != nil {
		st.colChunkSparse(chunk, lo, hi)
		return
	}
	if st.useBatch {
		st.colChunkBatched(chunk, lo, hi)
		return
	}
	p, o := st.p, st.o
	m := st.m
	ws := st.workspaces[chunk]
	ph := st.curPH
	for j := lo; j < hi; j++ {
		x0c := st.x0T[j*m : (j+1)*m]
		a := st.aT[j*m : (j+1)*m]
		c, _ := ws.Scratch(m)
		for i := 0; i < m; i++ {
			c[i] = x0c[i] + a[i]*st.lambda[i]
		}
		prob := equilibrate.Problem{C: c, A: a}
		if st.upperT != nil {
			prob.U = st.upperT[j*m : (j+1)*m]
		}
		if st.lowerT != nil {
			prob.L = st.lowerT[j*m : (j+1)*m]
		}
		switch p.Kind {
		case FixedTotals:
			prob.R = p.D0[j]
		case ElasticTotals:
			prob.E = 0.5 / p.Beta[j]
			prob.R = p.D0[j]
		case Balanced:
			e := 0.5 / p.Alpha[j]
			prob.E = e
			prob.R = p.S0[j] - e*st.lambda[j]
		}
		var est *equilibrate.State
		if st.curColStates != nil {
			est = &st.curColStates[j]
		}
		xcol := st.xT[j*m : (j+1)*m]
		var res equilibrate.Result
		var err error
		if p.Kind == IntervalTotals {
			res, err = prob.SolveIntervalState(p.DLo[j], p.DHi[j], xcol, ws, est)
		} else if o.Kernel == KernelBisection {
			res, err = prob.SolveBisection(xcol, o.KernelTol)
		} else {
			res, err = prob.SolveState(xcol, ws, est)
		}
		if err != nil {
			if st.errs[chunk] == nil {
				st.errs[chunk] = fmt.Errorf("column %d: %w", j, err)
			}
			return
		}
		st.mu[j] = res.Lambda
		st.colSum[j] = res.Total
		cost := res.Ops + int64(2*m)
		if ph != nil {
			ph.Col[j] = cost
		}
		if o.Counters != nil {
			o.Counters.Equilibrations.Add(1)
			o.Counters.Ops.Add(cost)
		}
	}
}

// colChunkBatched is the batched column-phase body; see rowChunkBatched.
func (st *diagState) colChunkBatched(chunk, lo, hi int) {
	p, o := st.p, st.o
	m := st.m
	b := st.batches[chunk]
	ph := st.curPH
	perCol := m
	if st.upperT != nil {
		perCol = 2 * m
	}
	for lo < hi {
		end := batchRows(lo, hi, perCol, st.batchTarget)
		b.Reset()
		for j := lo; j < end; j++ {
			x0c := st.x0T[j*m : (j+1)*m]
			a := st.aT[j*m : (j+1)*m]
			c := b.Coef(m)
			for i := 0; i < m; i++ {
				c[i] = x0c[i] + a[i]*st.lambda[i]
			}
			prob := equilibrate.Problem{C: c, A: a}
			if st.upperT != nil {
				prob.U = st.upperT[j*m : (j+1)*m]
			}
			if st.lowerT != nil {
				prob.L = st.lowerT[j*m : (j+1)*m]
			}
			switch p.Kind {
			case FixedTotals:
				prob.R = p.D0[j]
			case ElasticTotals:
				prob.E = 0.5 / p.Beta[j]
				prob.R = p.D0[j]
			case Balanced:
				e := 0.5 / p.Alpha[j]
				prob.E = e
				prob.R = p.S0[j] - e*st.lambda[j]
			}
			var est *equilibrate.State
			if st.curColStates != nil {
				est = &st.curColStates[j]
			}
			xcol := st.xT[j*m : (j+1)*m]
			var err error
			if p.Kind == IntervalTotals {
				err = b.AddInterval(&prob, p.DLo[j], p.DHi[j], xcol, est)
			} else {
				err = b.Add(&prob, xcol, est)
			}
			if err != nil {
				if st.errs[chunk] == nil {
					st.errs[chunk] = fmt.Errorf("column %d: %w", j, err)
				}
				return
			}
		}
		if bad, err := b.Solve(); err != nil {
			if st.errs[chunk] == nil {
				st.errs[chunk] = fmt.Errorf("column %d: %w", lo+bad, err)
			}
			return
		}
		var costSum int64
		for j := lo; j < end; j++ {
			res := b.Result(j - lo)
			st.mu[j] = res.Lambda
			st.colSum[j] = res.Total
			cost := res.Ops + int64(2*m)
			costSum += cost
			if ph != nil {
				ph.Col[j] = cost
			}
		}
		if o.Counters != nil {
			o.Counters.Equilibrations.Add(int64(end - lo))
			o.Counters.Ops.Add(costSum)
		}
		lo = end
	}
}

// takeErr returns (and clears) the first recorded worker error.
func (st *diagState) takeErr() error {
	for c, err := range st.errs {
		if err != nil {
			st.errs[c] = nil
			return err
		}
	}
	return nil
}

// supplies writes the dual-consistent row total estimates S_i(λ,μ) into dst.
// For interval problems the estimate is the current row sum clamped to its
// interval, so callers must refresh st.rowSum from the current iterate
// first (p.RowSums).
func (st *diagState) supplies(dst []float64) {
	p := st.p
	switch p.Kind {
	case FixedTotals:
		copy(dst, p.S0)
	case ElasticTotals:
		for i := range dst {
			dst[i] = p.S0[i] - st.lambda[i]/(2*p.Alpha[i])
		}
	case Balanced:
		for i := range dst {
			dst[i] = p.S0[i] - (st.lambda[i]+st.mu[i])/(2*p.Alpha[i])
		}
	case IntervalTotals:
		// The dual-consistent total follows the multiplier's sign: a
		// positive λ asserts the lower bound binds, a negative one the
		// upper; only a zero multiplier tolerates an interior sum. This
		// makes the residual |S_i − Σ_j x_ij| enforce complementarity, not
		// just interval feasibility.
		for i := range dst {
			dst[i] = intervalTarget(st.lambda[i], st.rowSum[i], p.SLo[i], p.SHi[i])
		}
	}
}

// intervalTarget returns the total an interval constraint's multiplier
// asserts: its binding bound when nonzero, the nearest interval point to
// the current sum when zero.
func intervalTarget(mult, sum, lo, hi float64) float64 {
	switch {
	case mult > 0:
		return lo
	case mult < 0:
		return hi
	default:
		return math.Min(math.Max(sum, lo), hi)
	}
}

// demands writes the dual-consistent column total estimates D_j(λ,μ) into
// dst. For interval problems the column constraints hold exactly after the
// column phase, so the kernel totals in st.colSum are current.
func (st *diagState) demands(dst []float64) {
	p := st.p
	switch p.Kind {
	case FixedTotals:
		copy(dst, p.D0)
	case ElasticTotals:
		for j := range dst {
			dst[j] = p.D0[j] - st.mu[j]/(2*p.Beta[j])
		}
	case Balanced:
		st.supplies(dst)
	case IntervalTotals:
		for j := range dst {
			dst[j] = intervalTarget(st.mu[j], st.colSum[j], p.DLo[j], p.DHi[j])
		}
	}
}

// checkConvergence runs the convergence-verification phase. It recomputes
// the row sums (or per-row deltas) of the current iterate — the column
// constraints hold exactly after the column phase — evaluates the selected
// criterion, and charges the op counts the paper attributes to this phase.
//
// By default the whole check is the algorithm's only serial phase, exactly
// as the paper implements it; with Options.ParallelConvCheck the O(m·n)
// scan runs as m parallel tasks and only the O(m) reduction stays serial
// (the enhancement the paper suggests in Section 4.2).
func (st *diagState) checkConvergence(ph *PhaseCosts) bool {
	p, o := st.p, st.o
	m := p.M
	var serialOps int64
	if o.ParallelConvCheck {
		serialOps = int64(2 * m)
		if ph != nil {
			// Every check task scans exactly its row's stored width (n dense,
			// row nnz sparse), every iteration, so all traced phases share one
			// read-only cost slice instead of allocating a fresh one per check.
			if st.checkTasks == nil {
				st.checkTasks = make([]int64, m)
				for i := range st.checkTasks {
					s, e := st.rowSpan(i)
					st.checkTasks[i] = int64(e - s)
				}
			}
			ph.Check = st.checkTasks
		}
	} else {
		serialOps = int64(st.nv + 2*m)
	}
	if o.Counters != nil {
		o.Counters.ConvChecks.Add(1)
		o.Counters.SerialOps.Add(serialOps)
	}
	if ph != nil {
		ph.Serial = serialOps
	}

	// perRow dispatches a pre-bound per-row body, in parallel when the check
	// phase is parallelized.
	perRow := func(body func(chunk, lo, hi int)) {
		if o.ParallelConvCheck {
			st.runner.ForChunks(m, body)
		} else {
			body(0, 0, m)
		}
	}

	switch o.Criterion {
	case MaxAbsDelta:
		if !st.havePrev {
			copy(st.xPrev, st.x)
			st.havePrev = true
			st.residual = math.Inf(1)
			return false
		}
		perRow(st.deltaBody)
		st.residual = mat.MaxAbs(st.checkBuf)
		return st.residual <= o.Epsilon

	case RelBalance, DualGradient:
		perRow(st.sumBody)
		s := st.supplyBuf
		st.supplies(s)
		var worst float64
		for i := 0; i < m; i++ {
			r := math.Abs(s[i] - st.rowSum[i])
			if o.Criterion == RelBalance {
				if denom := math.Abs(s[i]); denom > 1e-12 {
					r /= denom
				}
			}
			if r > worst {
				worst = r
			}
		}
		st.residual = worst
		return worst <= o.Epsilon
	}
	return false
}

// solution packages the current iterate. Without an arena the Solution gets
// fresh totals/multiplier arrays and adopts st.x (the state is about to be
// dropped); with an arena every array is arena-owned and reused, so the
// result is valid until the next solve on the same arena.
func (st *diagState) solution() *Solution {
	p := st.p
	var sol *Solution
	var s, d []float64
	if ar := st.arena; ar != nil {
		ar.solX = resizeF(ar.solX, st.nv)
		ar.solS = resizeF(ar.solS, p.M)
		ar.solD = resizeF(ar.solD, p.N)
		ar.solLambda = resizeF(ar.solLambda, p.M)
		ar.solMu = resizeF(ar.solMu, p.N)
		copy(ar.solX, st.x)
		copy(ar.solLambda, st.lambda)
		copy(ar.solMu, st.mu)
		s, d = ar.solS, ar.solD
		sol = &ar.sol
		*sol = Solution{X: ar.solX, S: s, D: d, Lambda: ar.solLambda, Mu: ar.solMu}
	} else {
		s = make([]float64, p.M)
		d = make([]float64, p.N)
		sol = &Solution{X: st.x, S: s, D: d, Lambda: mat.Clone(st.lambda), Mu: mat.Clone(st.mu)}
	}
	if p.Kind == IntervalTotals {
		p.RowSums(st.x, st.rowSum) // supplies() clamps the current sums
	}
	st.supplies(s)
	st.demands(d)
	sol.Iterations = st.iterations
	sol.Converged = st.converged
	sol.Residual = st.residual
	sol.Objective = p.Objective(st.x, s, d)
	sol.DualValue = DualValue(p, st.lambda, st.mu)
	return sol
}
