package core

import (
	"fmt"
	"math"

	"sea/internal/equilibrate"
	"sea/internal/mat"
	"sea/internal/parallel"
)

// SolveDiagonal runs the splitting equilibration algorithm on a diagonal
// constrained matrix problem (paper Section 3.1): alternating parallel row
// and column exact-equilibration phases — dual block-coordinate ascent on
// ζ_l(λ,μ) — until the convergence criterion is met.
//
// On iteration-limit exhaustion it returns the last iterate together with an
// error wrapping ErrNotConverged.
func SolveDiagonal(p *DiagonalProblem, opts *Options) (*Solution, error) {
	o := opts.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	st := newDiagState(p, o)
	if err := st.run(); err != nil {
		return st.solution(), err
	}
	return st.solution(), nil
}

// diagState carries the working arrays of one diagonal solve.
type diagState struct {
	p *DiagonalProblem
	o *Options

	x        []float64 // current matrix iterate, m×n row-major
	xPrev    []float64 // previous checked iterate (MaxAbsDelta only)
	lambda   []float64 // row multipliers λ_i
	mu       []float64 // column multipliers μ_j
	rowSum   []float64 // Σ_j x_ij as returned by the latest row phase
	colSum   []float64 // Σ_i x_ij as returned by the latest column phase
	checkBuf []float64 // per-row scratch for the parallel convergence check

	workspaces []*equilibrate.Workspace
	colBufs    [][]float64 // per-worker strided-column scratch (c, a, u, x)
	errs       []error

	iterations int
	converged  bool
	residual   float64
	havePrev   bool
}

func newDiagState(p *DiagonalProblem, o *Options) *diagState {
	m, n := p.M, p.N
	maxDim := m
	if n > maxDim {
		maxDim = n
	}
	st := &diagState{
		p:        p,
		o:        o,
		x:        make([]float64, m*n),
		lambda:   make([]float64, m),
		mu:       make([]float64, n),
		rowSum:   make([]float64, m),
		colSum:   make([]float64, n),
		checkBuf: make([]float64, m),
	}
	if o.Mu0 != nil {
		copy(st.mu, o.Mu0)
	}
	if o.Criterion == MaxAbsDelta {
		st.xPrev = make([]float64, m*n)
	}
	procs := o.Procs
	if procs > maxDim {
		procs = maxDim
	}
	if procs < 1 {
		procs = 1
	}
	st.workspaces = make([]*equilibrate.Workspace, procs)
	st.colBufs = make([][]float64, procs)
	st.errs = make([]error, procs)
	for c := range st.workspaces {
		st.workspaces[c] = equilibrate.NewWorkspace(maxDim)
		st.colBufs[c] = make([]float64, 5*m) // c, a, u, l, x slots for one column
	}
	return st
}

// run executes the alternating phases until convergence or iteration limit.
func (st *diagState) run() error {
	o := st.o
	for t := 1; t <= o.MaxIterations; t++ {
		st.iterations = t
		var ph *PhaseCosts
		if o.Trace != nil {
			o.Trace.Phases = append(o.Trace.Phases, PhaseCosts{
				Row: make([]int64, st.p.M),
				Col: make([]int64, st.p.N),
			})
			ph = &o.Trace.Phases[len(o.Trace.Phases)-1]
		}
		if err := st.rowPhase(ph); err != nil {
			return err
		}
		if err := st.colPhase(ph); err != nil {
			return err
		}
		if o.BoundMultipliers && st.p.Kind != ElasticTotals {
			st.boundMultipliers()
		}
		if o.Counters != nil {
			o.Counters.Iterations.Add(1)
		}
		if t%o.CheckEvery == 0 && st.checkConvergence(ph) {
			st.converged = true
			return nil
		}
	}
	return fmt.Errorf("%w after %d iterations (criterion %v, residual %g, ε %g)",
		ErrNotConverged, o.MaxIterations, o.Criterion, st.residual, o.Epsilon)
}

// rowPhase solves the m independent row equilibrium subproblems in parallel,
// updating x row-wise, λ, and rowSum.
func (st *diagState) rowPhase(ph *PhaseCosts) error {
	p, o := st.p, st.o
	m, n := p.M, p.N
	procs := len(st.workspaces)
	parallel.ForChunks(procs, m, func(chunk, lo, hi int) {
		ws := st.workspaces[chunk]
		for i := lo; i < hi; i++ {
			x0 := p.X0[i*n : (i+1)*n]
			g := p.Gamma[i*n : (i+1)*n]
			c := ws.C[:n]
			a := ws.A[:n]
			for j := 0; j < n; j++ {
				aj := 0.5 / g[j]
				a[j] = aj
				c[j] = x0[j] + aj*st.mu[j]
			}
			prob := equilibrate.Problem{C: c, A: a}
			if p.Upper != nil {
				prob.U = p.Upper[i*n : (i+1)*n]
			}
			if p.Lower != nil {
				prob.L = p.Lower[i*n : (i+1)*n]
			}
			switch p.Kind {
			case FixedTotals:
				prob.R = p.S0[i]
			case ElasticTotals:
				prob.E = 0.5 / p.Alpha[i]
				prob.R = p.S0[i]
			case Balanced:
				e := 0.5 / p.Alpha[i]
				prob.E = e
				prob.R = p.S0[i] - e*st.mu[i]
			}
			var res equilibrate.Result
			var err error
			if p.Kind == IntervalTotals {
				res, err = prob.SolveInterval(p.SLo[i], p.SHi[i], st.x[i*n:(i+1)*n], ws)
			} else if o.Kernel == KernelBisection {
				res, err = prob.SolveBisection(st.x[i*n:(i+1)*n], o.KernelTol)
			} else {
				res, err = prob.Solve(st.x[i*n:(i+1)*n], ws)
			}
			if err != nil {
				if st.errs[chunk] == nil {
					st.errs[chunk] = fmt.Errorf("row %d: %w", i, err)
				}
				return
			}
			st.lambda[i] = res.Lambda
			st.rowSum[i] = res.Total
			cost := res.Ops + int64(2*n)
			if ph != nil {
				ph.Row[i] = cost
			}
			if o.Counters != nil {
				o.Counters.Equilibrations.Add(1)
				o.Counters.Ops.Add(cost)
			}
		}
	})
	return st.takeErr()
}

// colPhase solves the n independent column equilibrium subproblems in
// parallel, updating x column-wise, μ, and colSum.
func (st *diagState) colPhase(ph *PhaseCosts) error {
	p, o := st.p, st.o
	m, n := p.M, p.N
	procs := len(st.workspaces)
	parallel.ForChunks(procs, n, func(chunk, lo, hi int) {
		ws := st.workspaces[chunk]
		buf := st.colBufs[chunk]
		c, a, u, l, xcol := buf[:m], buf[m:2*m], buf[2*m:3*m], buf[3*m:4*m], buf[4*m:5*m]
		for j := lo; j < hi; j++ {
			for i := 0; i < m; i++ {
				k := i*n + j
				ai := 0.5 / p.Gamma[k]
				a[i] = ai
				c[i] = p.X0[k] + ai*st.lambda[i]
			}
			prob := equilibrate.Problem{C: c, A: a}
			if p.Upper != nil {
				for i := 0; i < m; i++ {
					u[i] = p.Upper[i*n+j]
				}
				prob.U = u
			}
			if p.Lower != nil {
				for i := 0; i < m; i++ {
					l[i] = p.Lower[i*n+j]
				}
				prob.L = l
			}
			switch p.Kind {
			case FixedTotals:
				prob.R = p.D0[j]
			case ElasticTotals:
				prob.E = 0.5 / p.Beta[j]
				prob.R = p.D0[j]
			case Balanced:
				e := 0.5 / p.Alpha[j]
				prob.E = e
				prob.R = p.S0[j] - e*st.lambda[j]
			}
			var res equilibrate.Result
			var err error
			if p.Kind == IntervalTotals {
				res, err = prob.SolveInterval(p.DLo[j], p.DHi[j], xcol, ws)
			} else if o.Kernel == KernelBisection {
				res, err = prob.SolveBisection(xcol, o.KernelTol)
			} else {
				res, err = prob.Solve(xcol, ws)
			}
			if err != nil {
				if st.errs[chunk] == nil {
					st.errs[chunk] = fmt.Errorf("column %d: %w", j, err)
				}
				return
			}
			for i := 0; i < m; i++ {
				st.x[i*n+j] = xcol[i]
			}
			st.mu[j] = res.Lambda
			st.colSum[j] = res.Total
			cost := res.Ops + int64(2*m)
			if ph != nil {
				ph.Col[j] = cost
			}
			if o.Counters != nil {
				o.Counters.Equilibrations.Add(1)
				o.Counters.Ops.Add(cost)
			}
		}
	})
	return st.takeErr()
}

// takeErr returns (and clears) the first recorded worker error.
func (st *diagState) takeErr() error {
	for c, err := range st.errs {
		if err != nil {
			st.errs[c] = nil
			return err
		}
	}
	return nil
}

// supplies writes the dual-consistent row total estimates S_i(λ,μ) into dst.
// For interval problems the estimate is the current row sum clamped to its
// interval, so callers must refresh st.rowSum from the current iterate
// first (p.RowSums).
func (st *diagState) supplies(dst []float64) {
	p := st.p
	switch p.Kind {
	case FixedTotals:
		copy(dst, p.S0)
	case ElasticTotals:
		for i := range dst {
			dst[i] = p.S0[i] - st.lambda[i]/(2*p.Alpha[i])
		}
	case Balanced:
		for i := range dst {
			dst[i] = p.S0[i] - (st.lambda[i]+st.mu[i])/(2*p.Alpha[i])
		}
	case IntervalTotals:
		// The dual-consistent total follows the multiplier's sign: a
		// positive λ asserts the lower bound binds, a negative one the
		// upper; only a zero multiplier tolerates an interior sum. This
		// makes the residual |S_i − Σ_j x_ij| enforce complementarity, not
		// just interval feasibility.
		for i := range dst {
			dst[i] = intervalTarget(st.lambda[i], st.rowSum[i], p.SLo[i], p.SHi[i])
		}
	}
}

// intervalTarget returns the total an interval constraint's multiplier
// asserts: its binding bound when nonzero, the nearest interval point to
// the current sum when zero.
func intervalTarget(mult, sum, lo, hi float64) float64 {
	switch {
	case mult > 0:
		return lo
	case mult < 0:
		return hi
	default:
		return math.Min(math.Max(sum, lo), hi)
	}
}

// demands writes the dual-consistent column total estimates D_j(λ,μ) into
// dst. For interval problems the column constraints hold exactly after the
// column phase, so the kernel totals in st.colSum are current.
func (st *diagState) demands(dst []float64) {
	p := st.p
	switch p.Kind {
	case FixedTotals:
		copy(dst, p.D0)
	case ElasticTotals:
		for j := range dst {
			dst[j] = p.D0[j] - st.mu[j]/(2*p.Beta[j])
		}
	case Balanced:
		st.supplies(dst)
	case IntervalTotals:
		for j := range dst {
			dst[j] = intervalTarget(st.mu[j], st.colSum[j], p.DLo[j], p.DHi[j])
		}
	}
}

// checkConvergence runs the convergence-verification phase. It recomputes
// the row sums (or per-row deltas) of the current iterate — the column
// constraints hold exactly after the column phase — evaluates the selected
// criterion, and charges the op counts the paper attributes to this phase.
//
// By default the whole check is the algorithm's only serial phase, exactly
// as the paper implements it; with Options.ParallelConvCheck the O(m·n)
// scan runs as m parallel tasks and only the O(m) reduction stays serial
// (the enhancement the paper suggests in Section 4.2).
func (st *diagState) checkConvergence(ph *PhaseCosts) bool {
	p, o := st.p, st.o
	m, n := p.M, p.N
	var serialOps int64
	if o.ParallelConvCheck {
		serialOps = int64(2 * m)
		if ph != nil {
			ph.Check = make([]int64, m)
			for i := range ph.Check {
				ph.Check[i] = int64(n)
			}
		}
	} else {
		serialOps = int64(m*n + 2*m)
	}
	if o.Counters != nil {
		o.Counters.ConvChecks.Add(1)
		o.Counters.SerialOps.Add(serialOps)
	}
	if ph != nil {
		ph.Serial = serialOps
	}

	// perRow applies fn to every row, in parallel when the check phase is
	// parallelized.
	perRow := func(fn func(i int)) {
		if o.ParallelConvCheck {
			parallel.ForChunks(len(st.workspaces), m, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					fn(i)
				}
			})
		} else {
			for i := 0; i < m; i++ {
				fn(i)
			}
		}
	}

	switch o.Criterion {
	case MaxAbsDelta:
		if !st.havePrev {
			copy(st.xPrev, st.x)
			st.havePrev = true
			st.residual = math.Inf(1)
			return false
		}
		perRow(func(i int) {
			row := st.x[i*n : (i+1)*n]
			prev := st.xPrev[i*n : (i+1)*n]
			st.checkBuf[i] = mat.MaxAbsDiff(row, prev)
			copy(prev, row)
		})
		st.residual = mat.MaxAbs(st.checkBuf)
		return st.residual <= o.Epsilon

	case RelBalance, DualGradient:
		perRow(func(i int) {
			st.rowSum[i] = mat.Sum(st.x[i*n : (i+1)*n])
		})
		s := make([]float64, m)
		st.supplies(s)
		var worst float64
		for i := 0; i < m; i++ {
			r := math.Abs(s[i] - st.rowSum[i])
			if o.Criterion == RelBalance {
				if denom := math.Abs(s[i]); denom > 1e-12 {
					r /= denom
				}
			}
			if r > worst {
				worst = r
			}
		}
		st.residual = worst
		return worst <= o.Epsilon
	}
	return false
}

// solution packages the current iterate.
func (st *diagState) solution() *Solution {
	p := st.p
	s := make([]float64, p.M)
	d := make([]float64, p.N)
	if p.Kind == IntervalTotals {
		p.RowSums(st.x, st.rowSum) // supplies() clamps the current sums
	}
	st.supplies(s)
	st.demands(d)
	sol := &Solution{
		X:          st.x,
		S:          s,
		D:          d,
		Lambda:     mat.Clone(st.lambda),
		Mu:         mat.Clone(st.mu),
		Iterations: st.iterations,
		Converged:  st.converged,
		Residual:   st.residual,
	}
	sol.Objective = p.Objective(st.x, s, d)
	sol.DualValue = DualValue(p, st.lambda, st.mu)
	return sol
}
