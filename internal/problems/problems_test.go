package problems

import (
	"context"
	"math"
	"testing"

	"sea/internal/core"
	"sea/internal/datasets"
	"sea/internal/mat"
)

func TestTable1Construction(t *testing.T) {
	p := Table1(40, 7)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Kind != core.FixedTotals {
		t.Error("Table 1 problems have fixed totals")
	}
	for k, v := range p.X0 {
		if v < 0.1 || v > 10000 {
			t.Fatalf("X0[%d] = %g outside [.1, 10000]", k, v)
		}
		if math.Abs(p.Gamma[k]*v-1) > 1e-12 {
			t.Fatalf("Gamma[%d] != 1/x0", k)
		}
	}
	// Totals are doubled prior sums.
	rs := make([]float64, 40)
	p.RowSums(p.X0, rs)
	for i := range rs {
		if math.Abs(p.S0[i]-2*rs[i]) > 1e-9*p.S0[i] {
			t.Fatalf("S0[%d] != 2·rowsum", i)
		}
	}
	// Determinism.
	q := Table1(40, 7)
	if q.X0[17] != p.X0[17] {
		t.Error("Table1 not deterministic")
	}
}

func TestStandardIOSpecs(t *testing.T) {
	specs := StandardIOSpecs()
	if len(specs) != 9 {
		t.Fatalf("got %d specs, want 9", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		names[s.Name] = true
	}
	for _, want := range []string{"IOC72a", "IOC77b", "IO72c"} {
		if !names[want] {
			t.Errorf("missing spec %s", want)
		}
	}
}

func TestIOTableDensityAndSolvability(t *testing.T) {
	spec := IOSpec{Name: "test", Sectors: 60, Density: 0.5, Variant: IOGrowth10, Seed: 3}
	p := IOTable(spec)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	var nz int
	for _, v := range p.X0 {
		if v > 0 {
			nz++
		}
	}
	density := float64(nz) / float64(len(p.X0))
	if density < 0.42 || density > 0.58 {
		t.Errorf("density %.2f, want ≈ 0.5", density)
	}
	// Growth: totals are 1.10× prior sums.
	rs := make([]float64, 60)
	p.RowSums(p.X0, rs)
	for i := range rs {
		if math.Abs(p.S0[i]-1.10*rs[i]) > 1e-9*(1+p.S0[i]) {
			t.Fatalf("S0[%d] not grown by 10%%", i)
		}
	}
	// It solves.
	o := core.DefaultOptions()
	o.Criterion = core.DualGradient
	o.Epsilon = 1e-6
	sol, err := core.SolveDiagonal(context.Background(), p, o)
	if err != nil {
		t.Fatal(err)
	}
	if rep := core.CheckKKT(p, sol); !rep.Satisfied(1e-4) {
		t.Errorf("KKT: %+v", rep)
	}
}

func TestIOPerturbedKeepsTotalsConsistent(t *testing.T) {
	spec := IOSpec{Name: "test", Sectors: 30, Density: 0.3, Variant: IOPerturbed, Seed: 5}
	p := IOTable(spec)
	if math.Abs(mat.Sum(p.S0)-mat.Sum(p.D0)) > 1e-6 {
		t.Error("perturbed variant has inconsistent totals")
	}
	// The perturbed prior no longer satisfies the totals.
	rs := make([]float64, 30)
	p.RowSums(p.X0, rs)
	if mat.MaxAbsDiff(rs, p.S0) < 1 {
		t.Error("perturbation did not move the prior off the totals")
	}
}

func TestSAMFromDataset(t *testing.T) {
	for _, s := range datasets.All() {
		p := SAMFromDataset(s)
		if p.Kind != core.Balanced {
			t.Fatalf("%s: kind %v", s.Name, p.Kind)
		}
		o := core.DefaultOptions()
		o.Criterion = core.RelBalance
		o.Epsilon = 1e-6
		sol, err := core.SolveDiagonal(context.Background(), p, o)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		// Balance achieved.
		n := s.N()
		for i := 0; i < n; i++ {
			var rs, cs float64
			for j := 0; j < n; j++ {
				rs += sol.X[i*n+j]
				cs += sol.X[j*n+i]
			}
			if math.Abs(rs-cs) > 1e-3*(1+rs) {
				t.Errorf("%s: account %d unbalanced after estimation: %g vs %g", s.Name, i, rs, cs)
			}
		}
		// Structural zeros stay near zero under the heavy floor weight.
		for k, v := range s.X0 {
			if v == 0 && sol.X[k] > 0.5 {
				t.Errorf("%s: structural zero %d grew to %g", s.Name, k, sol.X[k])
			}
		}
	}
}

func TestRandomSAM(t *testing.T) {
	p := RandomSAM(50, 9)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, v := range p.X0 {
		if v <= 0 {
			t.Fatal("RandomSAM should be fully dense")
		}
	}
	o := core.DefaultOptions()
	o.Criterion = core.RelBalance
	o.Epsilon = 1e-3 // the paper's Table 3 tolerance
	sol, err := core.SolveDiagonal(context.Background(), p, o)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Converged {
		t.Error("RandomSAM(50) did not converge")
	}
}

func TestUSDA82EShape(t *testing.T) {
	p := USDA82E()
	if p.M != 133 || p.N != 133 {
		t.Fatalf("USDA82E is %d×%d, want 133×133", p.M, p.N)
	}
	nz := 0
	for _, v := range p.X0 {
		if v != 0 {
			nz++
		}
	}
	if nz != 133*133 {
		t.Errorf("USDA82E should be fully dense (Table 3: 17689 transactions), got %d", nz)
	}
}

func TestMigrationTable(t *testing.T) {
	x := MigrationTable("6570", 11)
	if len(x) != 48*48 {
		t.Fatalf("table has %d entries", len(x))
	}
	for i := 0; i < 48; i++ {
		if x[i*48+i] != 0 {
			t.Errorf("diagonal (non-mover) entry %d nonzero", i)
		}
	}
	// Big states exchange more: California (index 3) vs Wyoming (47) into
	// New York (29).
	if x[3*48+29] <= x[47*48+29] {
		t.Errorf("CA→NY (%g) should exceed WY→NY (%g)", x[3*48+29], x[47*48+29])
	}
	// Distance decay: New York (29) sends more to Connecticut (5) than to
	// Nevada (25) after adjusting for... just check it is positive.
	if x[29*48+5] <= 0 {
		t.Error("NY→CT flow should be positive")
	}
}

func TestMigrationProblemSolves(t *testing.T) {
	specs := StandardMigrationSpecs()
	if len(specs) != 9 {
		t.Fatalf("%d specs, want 9", len(specs))
	}
	// Solve one of each variant.
	for _, spec := range specs[:3] {
		p := MigrationProblem(spec)
		if p.Kind != core.ElasticTotals {
			t.Fatalf("%s: kind %v", spec.Name, p.Kind)
		}
		// All weights one, per the paper.
		if p.Gamma[17] != 1 || p.Alpha[3] != 1 || p.Beta[40] != 1 {
			t.Fatalf("%s: weights not unit", spec.Name)
		}
		o := core.DefaultOptions()
		o.Criterion = core.DualGradient
		o.Epsilon = 1e-4
		o.MaxIterations = 200000
		sol, err := core.SolveDiagonal(context.Background(), p, o)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if rep := core.CheckKKT(p, sol); !rep.Satisfied(1e-3) {
			t.Errorf("%s: KKT %+v", spec.Name, rep)
		}
	}
}

func TestMigrationVariantDifficulty(t *testing.T) {
	// The paper: larger growth factors are harder; perturbed-entries
	// examples are the fastest. Compare iteration counts.
	iters := map[MigVariant]int{}
	for _, v := range []MigVariant{MigGrowthSmall, MigGrowthLarge, MigPerturbed} {
		spec := MigrationSpec{Name: "t", Period: "6570", Variant: v, Seed: 99}
		p := MigrationProblem(spec)
		o := core.DefaultOptions()
		o.Criterion = core.DualGradient
		o.Epsilon = 1e-4
		o.MaxIterations = 500000
		sol, err := core.SolveDiagonal(context.Background(), p, o)
		if err != nil {
			t.Fatalf("%c: %v", v, err)
		}
		iters[v] = sol.Iterations
	}
	if iters[MigGrowthLarge] < iters[MigGrowthSmall] {
		t.Errorf("large growth (%d iters) should be at least as hard as small (%d)",
			iters[MigGrowthLarge], iters[MigGrowthSmall])
	}
	if iters[MigPerturbed] > iters[MigGrowthSmall] {
		t.Errorf("perturbed variant (%d iters) should be the easiest (small growth: %d)",
			iters[MigPerturbed], iters[MigGrowthSmall])
	}
}

func TestTemporalSequence(t *testing.T) {
	spec := TemporalSpec{Name: "t", M: 12, N: 10, Periods: 5, Drift: 0.02, Seed: 17}
	periods := Temporal(spec)
	if len(periods) != spec.Periods {
		t.Fatalf("got %d periods, want %d", len(periods), spec.Periods)
	}
	for p, prob := range periods {
		if prob.M != spec.M || prob.N != spec.N {
			t.Fatalf("period %d is %dx%d, want %dx%d", p, prob.M, prob.N, spec.M, spec.N)
		}
		if err := prob.Validate(); err != nil {
			t.Fatalf("period %d: %v", p, err)
		}
		if math.Abs(mat.Sum(prob.S0)-mat.Sum(prob.D0)) > 1e-6*mat.Sum(prob.S0) {
			t.Fatalf("period %d: totals inconsistent", p)
		}
	}
	// Consecutive periods drift but stay close: the prior moves by roughly
	// Drift per period, which is what makes dual warm starts pay off.
	for p := 1; p < len(periods); p++ {
		prev, cur := periods[p-1], periods[p]
		var maxRel float64
		for k := range cur.X0 {
			rel := math.Abs(cur.X0[k]-prev.X0[k]) / prev.X0[k]
			if rel > maxRel {
				maxRel = rel
			}
		}
		if maxRel == 0 {
			t.Fatalf("period %d identical to period %d; no drift", p, p-1)
		}
		if maxRel > 10*spec.Drift {
			t.Fatalf("period %d drifted %.1f%% from its predecessor; not a slow series", p, 100*maxRel)
		}
	}
	// Determinism.
	again := Temporal(spec)
	for k := range again[2].X0 {
		if again[2].X0[k] != periods[2].X0[k] {
			t.Fatal("Temporal not deterministic")
		}
	}
	// Standard specs are valid and distinct.
	specs := StandardTemporalSpecs()
	if len(specs) < 2 {
		t.Fatalf("got %d standard temporal specs", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Fatalf("duplicate temporal spec %q", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestDenseDominant(t *testing.T) {
	g := DenseDominant(60, 13, 500, 800)
	if m := mat.DominanceMargin(g); m <= 0 {
		t.Errorf("dominance margin %g", m)
	}
	for i := 0; i < 60; i++ {
		if d := g.Diag(i); d < 500 || d > 800 {
			t.Errorf("diag %d = %g outside [500,800]", i, d)
		}
	}
	// Off-diagonals of both signs.
	var neg, pos int
	for i := 0; i < 60; i++ {
		for j := i + 1; j < 60; j++ {
			switch {
			case g.At(i, j) < 0:
				neg++
			case g.At(i, j) > 0:
				pos++
			}
		}
	}
	if neg == 0 || pos == 0 {
		t.Errorf("off-diagonals all one sign (neg=%d pos=%d)", neg, pos)
	}
}

func TestGeneralDenseSolves(t *testing.T) {
	p := GeneralDense(6, 6, 15, false)
	o := core.DefaultOptions()
	o.Epsilon = 1e-6
	o.InnerEpsilon = 1e-8
	o.Criterion = core.DualGradient
	sol, err := core.SolveGeneral(context.Background(), p, o)
	if err != nil {
		t.Fatal(err)
	}
	if rep := core.CheckKKTGeneral(p, sol); !rep.Satisfied(1e-2) {
		t.Errorf("KKT: %+v", rep)
	}
}

func TestGeneralDenseImplicit(t *testing.T) {
	p := GeneralDense(5, 5, 16, true)
	if _, ok := p.G.(*mat.ImplicitSym); !ok {
		t.Fatal("implicit flag ignored")
	}
	if m := mat.DominanceMargin(p.G); m <= 0 {
		t.Errorf("implicit G not dominant: %g", m)
	}
}

func TestTable7Sizes(t *testing.T) {
	sizes := Table7Sizes()
	wantG := []int{100, 400, 900, 2500, 4900, 10000, 14400}
	if len(sizes) != len(wantG) {
		t.Fatalf("got %d sizes", len(sizes))
	}
	for i, s := range sizes {
		if s*s != wantG[i] {
			t.Errorf("size %d gives G %d, want %d", s, s*s, wantG[i])
		}
	}
}

func TestGeneralMigration(t *testing.T) {
	p := GeneralMigration("5560", 'a', 21)
	if p.G.Dim() != 2304 {
		t.Fatalf("G order %d, want 2304", p.G.Dim())
	}
	if math.Abs(mat.Sum(p.S0)-mat.Sum(p.D0)) > 1e-6*mat.Sum(p.S0) {
		t.Error("totals inconsistent")
	}
	if err := p.Validate(true); err != nil {
		t.Fatal(err)
	}
	b := GeneralMigration("5560", 'b', 21)
	if mat.MaxAbsDiff(b.X0, p.X0) == 0 {
		t.Error("variant b should perturb entries")
	}
}

func TestWeightSchemes(t *testing.T) {
	x0 := []float64{4, 0, 100}
	chi := Weights(WeightChiSquare, x0)
	if chi[0] != 0.25 || chi[2] != 0.01 {
		t.Errorf("chi-square wrong: %v", chi)
	}
	if chi[1] != 10 { // floored at 0.1
		t.Errorf("floor wrong: %v", chi[1])
	}
	unit := Weights(WeightUnit, x0)
	if unit[0] != 1 || unit[1] != 1 || unit[2] != 1 {
		t.Errorf("unit wrong: %v", unit)
	}
	isq := Weights(WeightInverseSqrt, x0)
	if math.Abs(isq[0]-0.5) > 1e-12 || math.Abs(isq[2]-0.1) > 1e-12 {
		t.Errorf("inverse-sqrt wrong: %v", isq)
	}
	// All schemes give solvable problems with distinct optima.
	base := baseIOTable(20, 0.6, 31)
	s0 := make([]float64, 20)
	d0 := make([]float64, 20)
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			s0[i] += 1.2 * base[i*20+j]
			d0[j] += 1.2 * base[i*20+j]
		}
	}
	var objs []float64
	for _, scheme := range []WeightScheme{WeightChiSquare, WeightUnit, WeightInverseSqrt} {
		p, err := core.NewFixed(20, 20, base, Weights(scheme, base), s0, d0)
		if err != nil {
			t.Fatal(err)
		}
		o := core.DefaultOptions()
		o.Criterion = core.DualGradient
		o.Epsilon = 1e-8
		sol, err := core.SolveDiagonal(context.Background(), p, o)
		if err != nil {
			t.Fatal(err)
		}
		if rep := core.CheckKKT(p, sol); !rep.Satisfied(1e-5) {
			t.Errorf("scheme %d: KKT %+v", scheme, rep)
		}
		objs = append(objs, sol.Objective)
	}
	if objs[0] == objs[1] {
		t.Error("chi-square and unit schemes coincided; weights ignored?")
	}
}
