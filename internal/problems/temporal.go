package problems

import (
	"fmt"
	"math/rand/v2"

	"sea/internal/core"
)

// TemporalSpec describes a temporal sequence instance: an ordered stream of
// same-shape fixed-totals tables whose priors drift slowly period to period
// — the monthly trade/migration workload the sequence-session layer serves.
// The per-row and per-column growth factors are drawn once for the whole
// sequence, so the dual solution drifts as slowly as the prior does; that is
// the structure that makes chaining one period's converged duals into the
// next profitable.
type TemporalSpec struct {
	// Name keys the benchmark records (sequence/<Name>/...).
	Name string
	// M, N is the table shape shared by every period.
	M, N int
	// Periods is the sequence length.
	Periods int
	// Drift is the per-period relative prior perturbation (0.02 = each
	// period's cells move ~2% per period index from the base table).
	Drift float64
	// Seed makes the sequence reproducible.
	Seed uint64
}

// StandardTemporalSpecs returns the sequence suite the benchmarks run: a
// small smoke-size series plus a serving-scale one.
func StandardTemporalSpecs() []TemporalSpec {
	return []TemporalSpec{
		{Name: "monthly-40x30", M: 40, N: 30, Periods: 12, Drift: 0.02, Seed: 11},
		{Name: "monthly-120x90", M: 120, N: 90, Periods: 12, Drift: 0.02, Seed: 12},
	}
}

// Temporal builds the spec's sequence. Every period is a valid fixed-totals
// problem: non-proportional targets (per-row/column growth factors,
// rebalanced to a common mass) over a drifting prior with reciprocal
// weights.
func Temporal(spec TemporalSpec) []*core.DiagonalProblem {
	m, n := spec.M, spec.N
	rng := rand.New(rand.NewPCG(spec.Seed, 7))
	base := make([]float64, m*n)
	for k := range base {
		base[k] = 1 + rng.Float64()*10
	}
	rowGrowth := make([]float64, m)
	colGrowth := make([]float64, n)
	for i := range rowGrowth {
		rowGrowth[i] = 1.05 + 0.4*rng.Float64()
	}
	for j := range colGrowth {
		colGrowth[j] = 1.05 + 0.4*rng.Float64()
	}
	out := make([]*core.DiagonalProblem, spec.Periods)
	for p := 0; p < spec.Periods; p++ {
		cur := make([]float64, m*n)
		for k := range cur {
			cur[k] = base[k] * (1 + spec.Drift*float64(p)*(0.5+rng.Float64()))
		}
		s0 := make([]float64, m)
		d0 := make([]float64, n)
		var totS, totD float64
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				s0[i] += rowGrowth[i] * cur[i*n+j]
				d0[j] += colGrowth[j] * cur[i*n+j]
			}
		}
		for _, v := range s0 {
			totS += v
		}
		for _, v := range d0 {
			totD += v
		}
		for j := range d0 {
			d0[j] *= totS / totD
		}
		prob, err := core.NewFixed(m, n, cur, reciprocalWeights(cur), s0, d0)
		if err != nil {
			panic(fmt.Sprintf("problems: Temporal(%s) period %d: %v", spec.Name, p, err))
		}
		out[p] = prob
	}
	return out
}
