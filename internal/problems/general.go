package problems

import (
	"math"
	"math/rand/v2"

	"sea/internal/core"
	"sea/internal/mat"
)

// DenseDominant generates the paper's Section 5 weight matrix: symmetric
// and strictly diagonally dominant (hence positive definite), with each
// diagonal term in [diagLo, diagHi] and off-diagonal elements of either sign
// simulating variance–covariance inverses.
func DenseDominant(n int, seed uint64, diagLo, diagHi float64) *mat.DenseSym {
	rng := rand.New(rand.NewPCG(seed, 5))
	data := make([]float64, n*n)
	rowAbs := make([]float64, n)
	var scale float64
	if n > 1 {
		scale = 0.9 * diagLo / float64(n-1)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (rng.Float64()*2 - 1) * scale
			data[i*n+j] = v
			data[j*n+i] = v
			rowAbs[i] += math.Abs(v)
			rowAbs[j] += math.Abs(v)
		}
	}
	for i := 0; i < n; i++ {
		d := diagLo + rng.Float64()*(diagHi-diagLo)
		if d <= rowAbs[i] {
			d = rowAbs[i]*1.05 + 1
		}
		data[i*n+i] = d
	}
	return mat.MustDenseSym(n, data)
}

// GeneralDense builds a Table 7 instance: an m×n matrix problem with fixed
// totals whose G matrix (order m·n) is 100% dense, symmetric and strictly
// diagonally dominant with diagonal terms in [500, 800]. The paper generates
// the expansion's linear-term coefficients uniformly in [100, 1000]; here
// the equivalent prior x⁰ is generated so the implied linear terms 2·G·x⁰
// fall in a comparable range.
//
// When implicit is true, G is a seeded storage-free matrix (for the largest
// instances); otherwise it is materialized densely.
func GeneralDense(m, n int, seed uint64, implicit bool) *core.GeneralProblem {
	mn := m * n
	var g mat.Weight
	if implicit {
		g = mat.MustImplicitSym(mn, seed, 500, 800, 0.9)
	} else {
		g = DenseDominant(mn, seed, 500, 800)
	}
	rng := rand.New(rand.NewPCG(seed, 6))
	x0 := make([]float64, mn)
	for k := range x0 {
		// 2·diag·x⁰ ∈ [100, 1000] for diag ∈ [500, 800] ⇒ x⁰ ∈ [0.1, 1).
		x0[k] = 0.1 + rng.Float64()*0.9
	}
	s0 := make([]float64, m)
	d0 := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s0[i] += 1.2 * x0[i*n+j]
			d0[j] += 1.2 * x0[i*n+j]
		}
	}
	return &core.GeneralProblem{
		M: m, N: n, X0: x0, G: g,
		S0: s0, D0: d0,
		Kind: core.FixedTotals,
	}
}

// Table7Sizes returns the matrix dimensions of the paper's Table 7, keyed by
// the order of the corresponding G matrix: 10×10 (G 100×100) through
// 120×120 (G 14400×14400).
func Table7Sizes() []int { return []int{10, 20, 30, 50, 70, 100, 120} }

// GeneralMigration builds a Table 8 instance: a 48×48 migration table with
// fixed totals and a 100% dense 2304×2304 G matrix generated like Table 7's.
// Variant 'a' grows the totals by 0–10%; variant 'b' additionally perturbs
// each entry by a distinct 0–10% factor.
func GeneralMigration(period string, variant byte, seed uint64) *core.GeneralProblem {
	x0 := MigrationTable(period, seed)
	n := 48
	rng := rand.New(rand.NewPCG(seed, uint64(variant)))

	s0 := make([]float64, n)
	d0 := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s0[i] += x0[i*n+j]
			d0[j] += x0[i*n+j]
		}
	}
	// Grow totals by per-row/column factors in [0,10%], then rescale the
	// column targets so Σs⁰ = Σd⁰ holds exactly (fixed-totals feasibility).
	var ssum, dsum float64
	for i := range s0 {
		s0[i] *= 1 + rng.Float64()*0.10
		ssum += s0[i]
	}
	for j := range d0 {
		d0[j] *= 1 + rng.Float64()*0.10
		dsum += d0[j]
	}
	for j := range d0 {
		d0[j] *= ssum / dsum
	}
	if variant == 'b' {
		for k := range x0 {
			x0[k] *= 1 + rng.Float64()*0.10
		}
	}
	return &core.GeneralProblem{
		M: n, N: n, X0: x0,
		G:  DenseDominant(n*n, seed, 500, 800),
		S0: s0, D0: d0,
		Kind: core.FixedTotals,
	}
}
