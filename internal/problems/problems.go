// Package problems generates the experiment instances of the paper's
// Sections 4 and 5, reproducing each table's documented construction: sizes,
// densities, value ranges, weighting schemes and growth factors. Where the
// paper used proprietary economic datasets, the generators reproduce their
// dimensions and structure (see DESIGN.md, substitution 2).
package problems

import (
	"fmt"
	"math"
	"math/rand/v2"

	"sea/internal/core"
	"sea/internal/datasets"
	"sea/internal/mat"
)

// gammaFloor keeps the reciprocal weights finite on structural zeros: a zero
// prior cell receives weight 1/gammaFloor, a strong (but not infinite) pull
// toward zero.
const gammaFloor = 0.1

// reciprocalWeights returns γ_ij = 1/max(x⁰_ij, gammaFloor) — the chi-square
// weighting the paper uses throughout Section 4.
func reciprocalWeights(x0 []float64) []float64 {
	g := make([]float64, len(x0))
	for k, v := range x0 {
		g[k] = 1 / math.Max(v, gammaFloor)
	}
	return g
}

// Table1 builds one of the large-scale diagonal problems of Table 1: an n×n
// matrix with 100% positive entries generated uniformly in [.1, 10000],
// γ = 1/x⁰, and each row/column total set to twice the corresponding prior
// sum.
func Table1(n int, seed uint64) *core.DiagonalProblem {
	rng := rand.New(rand.NewPCG(seed, 1))
	x0 := make([]float64, n*n)
	for k := range x0 {
		x0[k] = 0.1 + rng.Float64()*9999.9
	}
	gamma := make([]float64, n*n)
	for k := range gamma {
		gamma[k] = 1 / x0[k]
	}
	s0 := make([]float64, n)
	d0 := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s0[i] += 2 * x0[i*n+j]
			d0[j] += 2 * x0[i*n+j]
		}
	}
	p, err := core.NewFixed(n, n, x0, gamma, s0, d0)
	if err != nil {
		panic(fmt.Sprintf("problems: Table1(%d): %v", n, err))
	}
	return p
}

// IOVariant selects how an input/output instance is derived from its base
// table, matching the three examples in each of Table 2's series.
type IOVariant byte

const (
	// IOGrowth10 applies a 10% growth factor to the totals (…a examples).
	IOGrowth10 IOVariant = 'a'
	// IOGrowth100 applies a 100% growth factor (…b examples).
	IOGrowth100 IOVariant = 'b'
	// IOPerturbed keeps the original totals but perturbs each nonzero
	// entry by an additive term in [1,10] (…c examples).
	IOPerturbed IOVariant = 'c'
)

// IOSpec describes one input/output experiment instance.
type IOSpec struct {
	Name    string
	Sectors int
	// Density is the fraction of nonzero entries in the base table.
	Density float64
	Variant IOVariant
	Seed    uint64
}

// StandardIOSpecs returns the nine Table 2 instances: the aggregated 1972
// and 1977 U.S. construction-activity tables (205 sectors, 52% and 58%
// dense) and the disaggregated 1972 U.S. table (485 sectors, 16% dense).
func StandardIOSpecs() []IOSpec {
	specs := []IOSpec{}
	series := []struct {
		prefix  string
		sectors int
		density float64
		seed    uint64
	}{
		{"IOC72", 205, 0.52, 1972},
		{"IOC77", 205, 0.58, 1977},
		{"IO72", 485, 0.16, 72},
	}
	for _, s := range series {
		for _, v := range []IOVariant{IOGrowth10, IOGrowth100, IOPerturbed} {
			specs = append(specs, IOSpec{
				Name:    s.prefix + string(v),
				Sectors: s.sectors,
				Density: s.density,
				Variant: v,
				Seed:    s.seed,
			})
		}
	}
	return specs
}

// baseIOTable generates a synthetic inter-industry flow table with the given
// density: a core of large intra-sector and supplier flows with the long
// right tail characteristic of I/O data.
func baseIOTable(n int, density float64, seed uint64) []float64 {
	rng := rand.New(rand.NewPCG(seed, 2))
	x := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < density {
				// Log-uniform magnitudes: many small flows, few large.
				x[i*n+j] = math.Exp(rng.Float64()*7) * 0.5 // ~[0.5, 550]
			}
		}
	}
	return x
}

// IOTable builds the fixed-totals constrained matrix problem of one Table 2
// instance.
func IOTable(spec IOSpec) *core.DiagonalProblem {
	n := spec.Sectors
	base := baseIOTable(n, spec.Density, spec.Seed)
	rng := rand.New(rand.NewPCG(spec.Seed, uint64(spec.Variant)))

	x0 := mat.Clone(base)
	s0 := make([]float64, n)
	d0 := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s0[i] += base[i*n+j]
			d0[j] += base[i*n+j]
		}
	}
	switch spec.Variant {
	case IOGrowth10, IOGrowth100:
		growth := 1.10
		if spec.Variant == IOGrowth100 {
			growth = 2.0
		}
		for i := range s0 {
			s0[i] *= growth
		}
		for j := range d0 {
			d0[j] *= growth
		}
	case IOPerturbed:
		// Perturb nonzero entries by an additive term in [1,10]; the totals
		// remain those of the unperturbed table, which the estimate must
		// recover. Rebalance the target totals so Σs⁰ = Σd⁰ holds exactly.
		for k := range x0 {
			if x0[k] > 0 {
				x0[k] += 1 + rng.Float64()*9
			}
		}
	default:
		panic(fmt.Sprintf("problems: unknown IO variant %q", spec.Variant))
	}
	p, err := core.NewFixed(n, n, x0, reciprocalWeights(x0), s0, d0)
	if err != nil {
		panic(fmt.Sprintf("problems: IOTable(%s): %v", spec.Name, err))
	}
	return p
}

// SAMFromDataset turns an embedded miniature SAM into its Balanced
// estimation problem, with the chi-square weighting γ = 1/x⁰ (floored on
// structural zeros) and α = 1/s⁰.
func SAMFromDataset(s *datasets.SAM) *core.DiagonalProblem {
	n := s.N()
	alpha := make([]float64, n)
	for i, v := range s.S0 {
		alpha[i] = 1 / math.Max(v, gammaFloor)
	}
	p, err := core.NewBalanced(n, mat.Clone(s.X0), reciprocalWeights(s.X0), mat.Clone(s.S0), alpha)
	if err != nil {
		panic(fmt.Sprintf("problems: SAMFromDataset(%s): %v", s.Name, err))
	}
	return p
}

// RandomSAM builds a dense n-account SAM estimation problem, the
// construction behind USDA82E (n = 133, perturbed to full density) and the
// large-scale S500, S750, S1000 examples of Table 3.
func RandomSAM(n int, seed uint64) *core.DiagonalProblem {
	rng := rand.New(rand.NewPCG(seed, 3))
	x0 := make([]float64, n*n)
	for k := range x0 {
		x0[k] = 0.1 + rng.Float64()*999.9
	}
	s0 := make([]float64, n)
	for i := 0; i < n; i++ {
		var row, col float64
		for j := 0; j < n; j++ {
			row += x0[i*n+j]
			col += x0[j*n+i]
		}
		// Prior totals near, but not at, the (inconsistent) row/column
		// sums, perturbed ±10%.
		s0[i] = (row + col) / 2 * (0.9 + 0.2*rng.Float64())
	}
	alpha := make([]float64, n)
	for i := range alpha {
		alpha[i] = 1 / s0[i]
	}
	p, err := core.NewBalanced(n, x0, reciprocalWeights(x0), s0, alpha)
	if err != nil {
		panic(fmt.Sprintf("problems: RandomSAM(%d): %v", n, err))
	}
	return p
}

// USDA82E builds the 133-account fully dense SAM instance of Table 3.
func USDA82E() *core.DiagonalProblem { return RandomSAM(133, 1982) }

// WeightScheme selects one of the weighting conventions the paper's
// Section 2 discusses for the diagonal objective (5)/(13).
type WeightScheme int

const (
	// WeightChiSquare: γ = 1/x⁰ — the Deming–Stephan chi-square, the
	// paper's default throughout Section 4.
	WeightChiSquare WeightScheme = iota
	// WeightUnit: γ = 1 — Friedlander's constrained least squares.
	WeightUnit
	// WeightInverseSqrt: γ = 1/√x⁰ — the intermediate scheme the paper
	// mentions alongside mixed weightings.
	WeightInverseSqrt
)

// Weights materializes a weighting scheme for a prior matrix, flooring the
// reciprocal schemes on structural zeros as reciprocalWeights does.
func Weights(scheme WeightScheme, x0 []float64) []float64 {
	g := make([]float64, len(x0))
	for k, v := range x0 {
		switch scheme {
		case WeightUnit:
			g[k] = 1
		case WeightInverseSqrt:
			g[k] = 1 / math.Sqrt(math.Max(v, gammaFloor))
		default:
			g[k] = 1 / math.Max(v, gammaFloor)
		}
	}
	return g
}
