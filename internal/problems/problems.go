// Package problems generates the experiment instances of the paper's
// Sections 4 and 5, reproducing each table's documented construction: sizes,
// densities, value ranges, weighting schemes and growth factors. Where the
// paper used proprietary economic datasets, the generators reproduce their
// dimensions and structure (see DESIGN.md, substitution 2).
package problems

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"sea/internal/core"
	"sea/internal/datasets"
	"sea/internal/mat"
)

// gammaFloor keeps the reciprocal weights finite on structural zeros: a zero
// prior cell receives weight 1/gammaFloor, a strong (but not infinite) pull
// toward zero.
const gammaFloor = 0.1

// reciprocalWeights returns γ_ij = 1/max(x⁰_ij, gammaFloor) — the chi-square
// weighting the paper uses throughout Section 4.
func reciprocalWeights(x0 []float64) []float64 {
	g := make([]float64, len(x0))
	for k, v := range x0 {
		g[k] = 1 / math.Max(v, gammaFloor)
	}
	return g
}

// Table1 builds one of the large-scale diagonal problems of Table 1: an n×n
// matrix with 100% positive entries generated uniformly in [.1, 10000],
// γ = 1/x⁰, and each row/column total set to twice the corresponding prior
// sum.
func Table1(n int, seed uint64) *core.DiagonalProblem {
	rng := rand.New(rand.NewPCG(seed, 1))
	x0 := make([]float64, n*n)
	for k := range x0 {
		x0[k] = 0.1 + rng.Float64()*9999.9
	}
	gamma := make([]float64, n*n)
	for k := range gamma {
		gamma[k] = 1 / x0[k]
	}
	s0 := make([]float64, n)
	d0 := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s0[i] += 2 * x0[i*n+j]
			d0[j] += 2 * x0[i*n+j]
		}
	}
	p, err := core.NewFixed(n, n, x0, gamma, s0, d0)
	if err != nil {
		panic(fmt.Sprintf("problems: Table1(%d): %v", n, err))
	}
	return p
}

// IOVariant selects how an input/output instance is derived from its base
// table, matching the three examples in each of Table 2's series.
type IOVariant byte

const (
	// IOGrowth10 applies a 10% growth factor to the totals (…a examples).
	IOGrowth10 IOVariant = 'a'
	// IOGrowth100 applies a 100% growth factor (…b examples).
	IOGrowth100 IOVariant = 'b'
	// IOPerturbed keeps the original totals but perturbs each nonzero
	// entry by an additive term in [1,10] (…c examples).
	IOPerturbed IOVariant = 'c'
)

// IOSpec describes one input/output experiment instance.
type IOSpec struct {
	Name    string
	Sectors int
	// Density is the fraction of nonzero entries in the base table.
	Density float64
	Variant IOVariant
	Seed    uint64
}

// StandardIOSpecs returns the nine Table 2 instances: the aggregated 1972
// and 1977 U.S. construction-activity tables (205 sectors, 52% and 58%
// dense) and the disaggregated 1972 U.S. table (485 sectors, 16% dense).
func StandardIOSpecs() []IOSpec {
	specs := []IOSpec{}
	series := []struct {
		prefix  string
		sectors int
		density float64
		seed    uint64
	}{
		{"IOC72", 205, 0.52, 1972},
		{"IOC77", 205, 0.58, 1977},
		{"IO72", 485, 0.16, 72},
	}
	for _, s := range series {
		for _, v := range []IOVariant{IOGrowth10, IOGrowth100, IOPerturbed} {
			specs = append(specs, IOSpec{
				Name:    s.prefix + string(v),
				Sectors: s.sectors,
				Density: s.density,
				Variant: v,
				Seed:    s.seed,
			})
		}
	}
	return specs
}

// baseIOTable generates a synthetic inter-industry flow table with the given
// density: a core of large intra-sector and supplier flows with the long
// right tail characteristic of I/O data.
func baseIOTable(n int, density float64, seed uint64) []float64 {
	rng := rand.New(rand.NewPCG(seed, 2))
	x := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < density {
				// Log-uniform magnitudes: many small flows, few large.
				x[i*n+j] = math.Exp(rng.Float64()*7) * 0.5 // ~[0.5, 550]
			}
		}
	}
	return x
}

// IOTable builds the fixed-totals constrained matrix problem of one Table 2
// instance.
func IOTable(spec IOSpec) *core.DiagonalProblem {
	n := spec.Sectors
	base := baseIOTable(n, spec.Density, spec.Seed)
	rng := rand.New(rand.NewPCG(spec.Seed, uint64(spec.Variant)))

	x0 := mat.Clone(base)
	s0 := make([]float64, n)
	d0 := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s0[i] += base[i*n+j]
			d0[j] += base[i*n+j]
		}
	}
	switch spec.Variant {
	case IOGrowth10, IOGrowth100:
		growth := 1.10
		if spec.Variant == IOGrowth100 {
			growth = 2.0
		}
		for i := range s0 {
			s0[i] *= growth
		}
		for j := range d0 {
			d0[j] *= growth
		}
	case IOPerturbed:
		// Perturb nonzero entries by an additive term in [1,10]; the totals
		// remain those of the unperturbed table, which the estimate must
		// recover. Rebalance the target totals so Σs⁰ = Σd⁰ holds exactly.
		for k := range x0 {
			if x0[k] > 0 {
				x0[k] += 1 + rng.Float64()*9
			}
		}
	default:
		panic(fmt.Sprintf("problems: unknown IO variant %q", spec.Variant))
	}
	p, err := core.NewFixed(n, n, x0, reciprocalWeights(x0), s0, d0)
	if err != nil {
		panic(fmt.Sprintf("problems: IOTable(%s): %v", spec.Name, err))
	}
	return p
}

// SAMFromDataset turns an embedded miniature SAM into its Balanced
// estimation problem, with the chi-square weighting γ = 1/x⁰ (floored on
// structural zeros) and α = 1/s⁰.
func SAMFromDataset(s *datasets.SAM) *core.DiagonalProblem {
	n := s.N()
	alpha := make([]float64, n)
	for i, v := range s.S0 {
		alpha[i] = 1 / math.Max(v, gammaFloor)
	}
	p, err := core.NewBalanced(n, mat.Clone(s.X0), reciprocalWeights(s.X0), mat.Clone(s.S0), alpha)
	if err != nil {
		panic(fmt.Sprintf("problems: SAMFromDataset(%s): %v", s.Name, err))
	}
	return p
}

// RandomSAM builds a dense n-account SAM estimation problem, the
// construction behind USDA82E (n = 133, perturbed to full density) and the
// large-scale S500, S750, S1000 examples of Table 3.
func RandomSAM(n int, seed uint64) *core.DiagonalProblem {
	rng := rand.New(rand.NewPCG(seed, 3))
	x0 := make([]float64, n*n)
	for k := range x0 {
		x0[k] = 0.1 + rng.Float64()*999.9
	}
	s0 := make([]float64, n)
	for i := 0; i < n; i++ {
		var row, col float64
		for j := 0; j < n; j++ {
			row += x0[i*n+j]
			col += x0[j*n+i]
		}
		// Prior totals near, but not at, the (inconsistent) row/column
		// sums, perturbed ±10%.
		s0[i] = (row + col) / 2 * (0.9 + 0.2*rng.Float64())
	}
	alpha := make([]float64, n)
	for i := range alpha {
		alpha[i] = 1 / s0[i]
	}
	p, err := core.NewBalanced(n, x0, reciprocalWeights(x0), s0, alpha)
	if err != nil {
		panic(fmt.Sprintf("problems: RandomSAM(%d): %v", n, err))
	}
	return p
}

// USDA82E builds the 133-account fully dense SAM instance of Table 3.
func USDA82E() *core.DiagonalProblem { return RandomSAM(133, 1982) }

// bandPattern builds the wrap-around banded support the sparse generators
// use: row i stores the band columns {i, i+1, …, i+band−1} mod n, sorted
// ascending as CSR requires, for a support density of band/n. A cyclic band
// keeps every row and column at exactly band stored cells, so the
// transportation polytope over the pattern is never starved of support.
func bandPattern(m, n, band int) *core.Pattern {
	if band < 1 {
		band = 1
	}
	if band > n {
		band = n
	}
	rows := make([]int, 0, m*band)
	cols := make([]int, 0, m*band)
	buf := make([]int, band)
	for i := 0; i < m; i++ {
		for d := range buf {
			buf[d] = (i%n + d) % n
		}
		sort.Ints(buf)
		for _, c := range buf {
			rows = append(rows, i)
			cols = append(cols, c)
		}
	}
	pt, err := core.NewPatternFromTriplets(m, n, rows, cols)
	if err != nil {
		panic(fmt.Sprintf("problems: bandPattern(%d,%d,%d): %v", m, n, band, err))
	}
	return pt
}

// SparseBand returns the band width giving roughly 1% support density for an
// n×n banded instance (floor 4 so tiny CI-scale instances keep a workable
// support).
func SparseBand(n int) int {
	b := n / 100
	if b < 4 {
		b = 4
	}
	if b > n {
		b = n
	}
	return b
}

// SparseTable1 builds the CSR counterpart of Table1: an n×n fixed-totals
// problem whose support is the cyclic band of the given width, prior entries
// uniform in [.1, 10000] on the stored cells, γ = 1/x⁰, and each row/column
// total set to twice the corresponding prior sum. Per-cell arrays have length
// nnz = n·band and are indexed in stored (CSR) order.
func SparseTable1(n, band int, seed uint64) *core.DiagonalProblem {
	pt := bandPattern(n, n, band)
	rng := rand.New(rand.NewPCG(seed, 5))
	nnz := pt.Nnz()
	x0 := make([]float64, nnz)
	gamma := make([]float64, nnz)
	for k := range x0 {
		x0[k] = 0.1 + rng.Float64()*9999.9
		gamma[k] = 1 / x0[k]
	}
	s0 := make([]float64, n)
	d0 := make([]float64, n)
	for i := 0; i < n; i++ {
		for k := pt.RowPtr[i]; k < pt.RowPtr[i+1]; k++ {
			s0[i] += 2 * x0[k]
			d0[pt.ColIdx[k]] += 2 * x0[k]
		}
	}
	p := &core.DiagonalProblem{M: n, N: n, X0: x0, Gamma: gamma, S0: s0, D0: d0, Pattern: pt, Kind: core.FixedTotals}
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("problems: SparseTable1(%d,%d): %v", n, band, err))
	}
	return p
}

// SparseSAM builds a CSR social accounting matrix estimation problem: an n×n
// Balanced instance on the cyclic band of the given width, transaction priors
// uniform in [.1, 1000], γ = 1/x⁰, account totals near (±10%) the
// inconsistent prior row/column sums, and α = 1/s⁰.
func SparseSAM(n, band int, seed uint64) *core.DiagonalProblem {
	pt := bandPattern(n, n, band)
	rng := rand.New(rand.NewPCG(seed, 6))
	nnz := pt.Nnz()
	x0 := make([]float64, nnz)
	gamma := make([]float64, nnz)
	for k := range x0 {
		x0[k] = 0.1 + rng.Float64()*999.9
		gamma[k] = 1 / x0[k]
	}
	rowSum := make([]float64, n)
	colSum := make([]float64, n)
	for i := 0; i < n; i++ {
		for k := pt.RowPtr[i]; k < pt.RowPtr[i+1]; k++ {
			rowSum[i] += x0[k]
			colSum[pt.ColIdx[k]] += x0[k]
		}
	}
	s0 := make([]float64, n)
	alpha := make([]float64, n)
	for i := range s0 {
		s0[i] = (rowSum[i] + colSum[i]) / 2 * (0.9 + 0.2*rng.Float64())
		alpha[i] = 1 / s0[i]
	}
	p := &core.DiagonalProblem{M: n, N: n, X0: x0, Gamma: gamma, S0: s0, Alpha: alpha, Pattern: pt, Kind: core.Balanced}
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("problems: SparseSAM(%d,%d): %v", n, band, err))
	}
	return p
}

// WeightScheme selects one of the weighting conventions the paper's
// Section 2 discusses for the diagonal objective (5)/(13).
type WeightScheme int

const (
	// WeightChiSquare: γ = 1/x⁰ — the Deming–Stephan chi-square, the
	// paper's default throughout Section 4.
	WeightChiSquare WeightScheme = iota
	// WeightUnit: γ = 1 — Friedlander's constrained least squares.
	WeightUnit
	// WeightInverseSqrt: γ = 1/√x⁰ — the intermediate scheme the paper
	// mentions alongside mixed weightings.
	WeightInverseSqrt
)

// Weights materializes a weighting scheme for a prior matrix, flooring the
// reciprocal schemes on structural zeros as reciprocalWeights does.
func Weights(scheme WeightScheme, x0 []float64) []float64 {
	g := make([]float64, len(x0))
	for k, v := range x0 {
		switch scheme {
		case WeightUnit:
			g[k] = 1
		case WeightInverseSqrt:
			g[k] = 1 / math.Sqrt(math.Max(v, gammaFloor))
		default:
			g[k] = 1 / math.Max(v, gammaFloor)
		}
	}
	return g
}
