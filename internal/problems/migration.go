package problems

import (
	"fmt"
	"math"
	"math/rand/v2"

	"sea/internal/core"
	"sea/internal/datasets"
	"sea/internal/mat"
)

// MigrationTable synthesizes a 48×48 state-to-state migration flow table
// for one of the paper's periods ("5560", "6570", "7580") using a gravity
// model on the embedded state populations and centroids: flows grow with
// both populations and decay with distance, with a lognormal disturbance.
// The diagonal (non-movers) is zero, as in state-to-state migration tables.
func MigrationTable(period string, seed uint64) []float64 {
	states := datasets.States()
	pops := datasets.PopulationsForPeriod(period)
	n := len(states)
	rng := rand.New(rand.NewPCG(seed, 4))
	x := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d := centroidDistance(states[i], states[j])
			// Gravity flow in persons: k·P_i^0.8·P_j^0.7/d^1.4, populations
			// in thousands, distance in great-circle degrees.
			flow := 0.08 * math.Pow(pops[i], 0.8) * math.Pow(pops[j], 0.7) / math.Pow(d+1, 1.4)
			flow *= math.Exp(rng.NormFloat64() * 0.4) // source heterogeneity
			x[i*n+j] = math.Round(flow)
		}
	}
	return x
}

// centroidDistance is the great-circle angle (degrees) between two state
// centroids — adequate as the gravity model's distance term.
func centroidDistance(a, b datasets.State) float64 {
	la, lb := a.Lat*math.Pi/180, b.Lat*math.Pi/180
	dl := (a.Lon - b.Lon) * math.Pi / 180
	c := math.Sin(la)*math.Sin(lb) + math.Cos(la)*math.Cos(lb)*math.Cos(dl)
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return math.Acos(c) * 180 / math.Pi
}

// MigVariant selects the construction of a Table 4 migration example.
type MigVariant byte

const (
	// MigGrowthSmall: each row and column total receives a distinct random
	// growth factor in [0,10%] (…a examples).
	MigGrowthSmall MigVariant = 'a'
	// MigGrowthLarge: growth factors in [0,100%] (…b examples).
	MigGrowthLarge MigVariant = 'b'
	// MigPerturbed: totals are the original sums; each entry of X⁰ is
	// perturbed by a random 0–10% factor (…c examples).
	MigPerturbed MigVariant = 'c'
)

// MigrationSpec names one Table 4 instance.
type MigrationSpec struct {
	Name    string
	Period  string
	Variant MigVariant
	Seed    uint64
}

// StandardMigrationSpecs returns the nine Table 4 instances.
func StandardMigrationSpecs() []MigrationSpec {
	var specs []MigrationSpec
	for _, period := range []string{"5560", "6570", "7580"} {
		for _, v := range []MigVariant{MigGrowthSmall, MigGrowthLarge, MigPerturbed} {
			specs = append(specs, MigrationSpec{
				Name:    "MIG" + period + string(v),
				Period:  period,
				Variant: v,
				Seed:    uint64(period[0])<<8 | uint64(period[2]),
			})
		}
	}
	return specs
}

// MigrationProblem builds the elastic-totals constrained matrix problem of
// one Table 4 instance: all weights equal to one (the paper's choice), with
// the totals estimated around their grown or original priors.
func MigrationProblem(spec MigrationSpec) *core.DiagonalProblem {
	x0 := MigrationTable(spec.Period, spec.Seed)
	n := 48
	rng := rand.New(rand.NewPCG(spec.Seed, uint64(spec.Variant)))

	s0 := make([]float64, n)
	d0 := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s0[i] += x0[i*n+j]
			d0[j] += x0[i*n+j]
		}
	}
	switch spec.Variant {
	case MigGrowthSmall, MigGrowthLarge:
		hi := 0.10
		if spec.Variant == MigGrowthLarge {
			hi = 1.0
		}
		for i := range s0 {
			s0[i] *= 1 + rng.Float64()*hi
		}
		for j := range d0 {
			d0[j] *= 1 + rng.Float64()*hi
		}
	case MigPerturbed:
		// Keep the total priors; perturb the matrix entries 0–10%.
		for k := range x0 {
			x0[k] *= 1 + rng.Float64()*0.10
		}
	default:
		panic(fmt.Sprintf("problems: unknown migration variant %q", spec.Variant))
	}

	ones := func(k int) []float64 {
		v := make([]float64, k)
		mat.Fill(v, 1)
		return v
	}
	p, err := core.NewElastic(n, n, x0, ones(n*n), s0, ones(n), d0, ones(n))
	if err != nil {
		panic(fmt.Sprintf("problems: MigrationProblem(%s): %v", spec.Name, err))
	}
	return p
}
