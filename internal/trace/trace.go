// Package trace defines the pluggable per-iteration observer every solver
// in this module reports through: one Event per outer iteration, carrying
// the iteration index, the convergence measure, wall-clock phase timings,
// and the instrumentation aggregates (equilibrations, abstract operations)
// that the experiments' metrics.Counters used to be the only way to obtain.
//
// The hook is deliberately minimal: solvers invoke the observer at most once
// per outer iteration, from the solve goroutine, after the parallel phases
// have completed — never from inside a worker. A nil observer costs a single
// pointer comparison per iteration, so attaching instrumentation is a
// caller's choice, not a tax on the hot path.
package trace

import (
	"fmt"
	"io"
	"math"
	"sync"
	"time"
)

// Event is one outer iteration's progress report.
type Event struct {
	// Solver is the reporting solver's registry name ("sea", "rc", ...).
	Solver string
	// Iteration is the 1-based outer iteration index (row+column sweeps for
	// the diagonal SEA, projection steps for the general SEA, outer dual
	// cycles for RC, sweeps for B-K and RAS, Dykstra cycles).
	Iteration int
	// Inner is the number of inner iterations this outer step consumed
	// (RC's projection iterations, the general solver's half-sweeps); zero
	// for single-level solvers.
	Inner int
	// Checked reports whether a convergence verification ran this
	// iteration; when false, Residual is NaN.
	Checked bool
	// Residual is the convergence measure evaluated by the check (the
	// criterion's worst row residual or delta), NaN when Checked is false.
	Residual float64
	// RowPhase, ColPhase and CheckPhase are the wall-clock durations of the
	// iteration's row equilibration, column equilibration, and convergence
	// verification phases. Solvers without that phase structure report the
	// whole iteration under RowPhase.
	RowPhase, ColPhase, CheckPhase time.Duration
	// Equilibrations and Ops are this iteration's single-constraint
	// equilibration count and abstract operation count (the paper's
	// complexity model), and SerialOps the operations spent in serial
	// phases — the same quantities metrics.Counters accumulates, reported
	// as per-iteration deltas so an observer subsumes the counters.
	Equilibrations, Ops, SerialOps int64
}

// Observer receives one Event per outer iteration of a solve. ObserveIteration
// is called from the solve goroutine; implementations need not be safe for
// concurrent use by a single solve, but one observer attached to concurrent
// solves must synchronize itself.
type Observer interface {
	ObserveIteration(Event)
}

// Func adapts an ordinary function to the Observer interface.
type Func func(Event)

// ObserveIteration implements Observer.
func (f Func) ObserveIteration(e Event) { f(e) }

// Collector is an Observer that retains every event, for tests and offline
// analysis. Not safe for concurrent solves.
type Collector struct {
	Events []Event
}

// ObserveIteration implements Observer.
func (c *Collector) ObserveIteration(e Event) { c.Events = append(c.Events, e) }

// Last returns the most recent event (zero Event if none).
func (c *Collector) Last() Event {
	if len(c.Events) == 0 {
		return Event{}
	}
	return c.Events[len(c.Events)-1]
}

// writer prints one line per observed iteration.
type writer struct {
	w     io.Writer
	every int
}

// NewWriter returns an Observer that writes a one-line progress report to w
// for every every-th iteration (and for every iteration that ran a
// convergence check when every <= 1). It is what cmd/seasolve's -trace flag
// attaches.
func NewWriter(w io.Writer, every int) Observer {
	if every < 1 {
		every = 1
	}
	return &writer{w: w, every: every}
}

// ObserveIteration implements Observer.
func (t *writer) ObserveIteration(e Event) {
	if e.Iteration%t.every != 0 {
		return
	}
	res := "-"
	if e.Checked && !math.IsNaN(e.Residual) {
		res = fmt.Sprintf("%.6g", e.Residual)
	}
	fmt.Fprintf(t.w, "%s: iter=%d residual=%s row=%s col=%s check=%s equil=%d ops=%d\n",
		e.Solver, e.Iteration, res, e.RowPhase, e.ColPhase, e.CheckPhase, e.Equilibrations, e.Ops)
}

// synchronized serializes ObserveIteration calls with a mutex.
type synchronized struct {
	mu  sync.Mutex
	obs Observer
}

// Synchronized wraps obs so that concurrent solves can share it: every
// ObserveIteration is serialized under one mutex. The Observer contract only
// requires safety within a single solve, so a serving layer that attaches
// one observer to many in-flight solves must wrap it here (unless the
// observer is documented concurrency-safe). A nil obs returns nil.
func Synchronized(obs Observer) Observer {
	if obs == nil {
		return nil
	}
	return &synchronized{obs: obs}
}

// ObserveIteration implements Observer.
func (s *synchronized) ObserveIteration(e Event) {
	s.mu.Lock()
	s.obs.ObserveIteration(e)
	s.mu.Unlock()
}

// multi fans events out to several observers in order.
type multi []Observer

// Multi returns an Observer that forwards every event to each of obs,
// skipping nils. A single non-nil observer is returned unwrapped.
func Multi(obs ...Observer) Observer {
	var live multi
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

// ObserveIteration implements Observer.
func (m multi) ObserveIteration(e Event) {
	for _, o := range m {
		o.ObserveIteration(e)
	}
}
