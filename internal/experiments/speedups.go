package experiments

import (
	"context"
	"fmt"

	"sea/internal/baseline"
	"sea/internal/core"
	"sea/internal/parsim"
	"sea/internal/problems"
	"sea/internal/spe"
)

// SpeedupRow is one line of Table 6 or Table 9 (and one point of Figure 5
// or Figure 7): a speedup/efficiency measurement at N processors.
type SpeedupRow struct {
	Example    string
	N          int
	Speedup    float64
	Efficiency float64
}

// table6Procs are the processor counts of Table 6 (the 3090-600E had six).
var table6Procs = []int{2, 4, 6}

// Table6 reproduces Table 6 and Figure 5: speedups and efficiencies of
// parallel SEA on two fixed diagonal examples (IO72b and the 1000×1000
// Table 1 problem) and two elastic ones (SP500 and SP750), measured on the
// simulated shared-memory multiprocessor driven by the instrumented
// operation counts of the actual solves (DESIGN.md, substitution 1).
func Table6(ctx context.Context, cfg Config) ([]SpeedupRow, error) {
	return table6(ctx, cfg, false)
}

// Table6Enhanced is Table 6 with the convergence-verification phase
// parallelized — the enhancement the paper proposes at the end of
// Section 4.2 ("...and/or by implementing the convergence step in
// parallel"). Comparing it with Table6 quantifies how much of the
// efficiency loss the serial check causes.
func Table6Enhanced(ctx context.Context, cfg Config) ([]SpeedupRow, error) {
	return table6(ctx, cfg, true)
}

func table6(ctx context.Context, cfg Config, parallelCheck bool) ([]SpeedupRow, error) {
	var rows []SpeedupRow

	// IO72b: fixed totals, 485 sectors, 16% dense, 100% growth.
	ioSpec := problems.IOSpec{Name: "IO72b", Sectors: cfg.dim(485), Density: 0.16, Variant: problems.IOGrowth100, Seed: 72}
	ioP := problems.IOTable(ioSpec)
	if err := appendSpeedups(ctx, &rows, "IO72b", ioP, cfg, core.MaxAbsDelta, cfg.eps(0.01), 1, parallelCheck); err != nil {
		return rows, err
	}

	// 1000×1000 from Table 1.
	t1 := problems.Table1(cfg.dim(1000), 1000)
	if err := appendSpeedups(ctx, &rows, "1000x1000", t1, cfg, core.MaxAbsDelta, cfg.eps(0.01), 1, parallelCheck); err != nil {
		return rows, err
	}

	// SP500 and SP750: elastic problems, convergence checked every other
	// iteration as in the paper.
	for _, size := range []int{500, 750} {
		n := cfg.dim(size)
		sp := spe.Generate(n, n, uint64(size))
		p, err := sp.ToConstrainedMatrix()
		if err != nil {
			return rows, err
		}
		name := fmt.Sprintf("SP%dx%d", size, size)
		if err := appendSpeedups(ctx, &rows, name, p, cfg, core.DualGradient, cfg.eps(0.01), 2, parallelCheck); err != nil {
			return rows, err
		}
	}
	return rows, nil
}

// appendSpeedups solves p with tracing enabled and appends the simulated
// speedup measurements for the Table 6 processor counts.
func appendSpeedups(ctx context.Context, rows *[]SpeedupRow, name string, p *core.DiagonalProblem, cfg Config, crit core.Criterion, eps float64, checkEvery int, parallelCheck bool) error {
	o := core.DefaultOptions()
	o.Criterion = crit
	o.Epsilon = eps
	o.CheckEvery = checkEvery
	cfg.apply(o)
	o.MaxIterations = 500000
	o.ParallelConvCheck = parallelCheck
	tr := &core.CostTrace{}
	o.CostTrace = tr
	if _, err := core.SolveDiagonal(ctx, p, o); err != nil {
		return fmt.Errorf("speedup example %s: %w", name, err)
	}
	for _, m := range parsim.Speedups(tr, table6Procs) {
		*rows = append(*rows, SpeedupRow{Example: name, N: m.Procs, Speedup: m.Speedup, Efficiency: m.Efficiency})
	}
	return nil
}

// Table9 reproduces Table 9 and Figure 7: speedups of SEA versus RC on the
// general problem with a 10000×10000 dense G matrix, at 2 and 4 processors,
// again on the simulated multiprocessor. SEA verifies the projection
// method's convergence once per outer iteration; RC re-verifies inside every
// stage, so SEA has fewer serial phases and parallelizes better.
func Table9(ctx context.Context, cfg Config) ([]SpeedupRow, error) {
	size := cfg.dim(100) // 100×100 matrix ⇒ G is 10000×10000
	p := problems.GeneralDense(size, size, 100, false)
	procs := []int{2, 4}

	var rows []SpeedupRow

	seaOpts := core.DefaultOptions()
	seaOpts.Epsilon = cfg.eps(0.001)
	seaOpts.Criterion = core.MaxAbsDelta
	cfg.apply(seaOpts)
	seaOpts.SkipDominanceCheck = true
	seaTr := &core.CostTrace{}
	seaOpts.CostTrace = seaTr
	if _, err := core.SolveGeneral(ctx, p, seaOpts); err != nil {
		return rows, fmt.Errorf("table 9 SEA: %w", err)
	}
	for _, m := range parsim.Speedups(seaTr, procs) {
		rows = append(rows, SpeedupRow{Example: "SEA", N: m.Procs, Speedup: m.Speedup, Efficiency: m.Efficiency})
	}

	rcOpts := core.DefaultOptions()
	rcOpts.Epsilon = cfg.eps(0.001)
	cfg.apply(rcOpts)
	rcOpts.SkipDominanceCheck = true
	rcTr := &core.CostTrace{}
	rcOpts.CostTrace = rcTr
	if _, err := baseline.SolveRC(ctx, p, rcOpts); err != nil {
		return rows, fmt.Errorf("table 9 RC: %w", err)
	}
	for _, m := range parsim.Speedups(rcTr, procs) {
		rows = append(rows, SpeedupRow{Example: "RC", N: m.Procs, Speedup: m.Speedup, Efficiency: m.Efficiency})
	}
	return rows, nil
}

// Table6Wall measures *wall-clock* speedups of the goroutine-parallel
// implementation on the Table 6 examples: elapsed time with one worker
// divided by elapsed time with N workers. On a single-core host these hover
// near 1 (see DESIGN.md, substitution 1 — the simulated machine exists for
// exactly that reason); on a multicore host they are directly comparable to
// the paper's measurements.
func Table6Wall(ctx context.Context, cfg Config) ([]SpeedupRow, error) {
	var rows []SpeedupRow
	examples := []struct {
		name  string
		build func() (*core.DiagonalProblem, error)
		crit  core.Criterion
		check int
	}{
		{"IO72b", func() (*core.DiagonalProblem, error) {
			return problems.IOTable(problems.IOSpec{Name: "IO72b", Sectors: cfg.dim(485), Density: 0.16, Variant: problems.IOGrowth100, Seed: 72}), nil
		}, core.MaxAbsDelta, 1},
		{"1000x1000", func() (*core.DiagonalProblem, error) {
			return problems.Table1(cfg.dim(1000), 1000), nil
		}, core.MaxAbsDelta, 1},
		{"SP500x500", func() (*core.DiagonalProblem, error) {
			return spe.Generate(cfg.dim(500), cfg.dim(500), 500).ToConstrainedMatrix()
		}, core.DualGradient, 2},
	}
	for _, ex := range examples {
		p, err := ex.build()
		if err != nil {
			return rows, err
		}
		times := map[int]float64{}
		for _, procs := range []int{1, 2, 4, 6} {
			o := core.DefaultOptions()
			o.Criterion = ex.crit
			o.Epsilon = cfg.eps(0.01)
			o.CheckEvery = ex.check
			o.MaxIterations = 500000
			o.Procs = procs
			_, secs, err := timedSolve(ctx, p, o)
			if err != nil {
				return rows, fmt.Errorf("wall speedups %s procs=%d: %w", ex.name, procs, err)
			}
			times[procs] = secs
		}
		for _, n := range table6Procs {
			s := times[1] / times[n]
			rows = append(rows, SpeedupRow{Example: ex.name, N: n, Speedup: s, Efficiency: s / float64(n)})
		}
	}
	return rows, nil
}
