package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sea/internal/matio"
	"sea/internal/problems"
	"sea/pkg/sea"
	"sea/pkg/sea/serve"
	seahttp "sea/pkg/sea/serve/http"
)

// The HTTP load generator's fixed geometry. The problem mix is deliberately
// small (orders 16, 24, 32): at these sizes a solve is microseconds, so the
// measurement exercises the transport, routing, admission, and arena-pool
// layers rather than the solver's arithmetic — which the perf suite's other
// records already cover. The shapes are NOT scaled by Config.Scale; Scale
// controls the request count instead, so a CI run and a full run measure the
// same per-request path at different durations.
var httpLoadSizes = [...]int{16, 24, 32}

const (
	httpLoadDefaultRequests = 100000
	httpLoadMinRequests     = 2000
	httpLoadDefaultConns    = 8
	httpLoadMaxInFlight     = 2
	// The saturation probe's geometry: a burst of httpOverloadBurst
	// simultaneous arrivals of one SAM instance of order httpOverloadSize
	// against a probe server whose admission envelope is deliberately small
	// (MaxInFlight httpLoadMaxInFlight, queue httpOverloadQueue). The shape
	// is heavier than the throughput mix on purpose: its body spans many
	// socket reads, so handler goroutines block, yield, and genuinely
	// overlap inside the admission control even on one core — with
	// microsecond requests each completes within a single scheduler slice,
	// the queue never builds, and saturation is unobservable.
	httpOverloadSize  = 128
	httpOverloadQueue = 2
	httpOverloadBurst = 30
)

// HTTPLoadResult is one measurement of the HTTP front end at a fixed shard
// count: a closed-loop phase (Conns clients, back-to-back requests — the
// sustained-throughput number) followed by an open-loop saturation probe (a
// burst of arrivals independent of completions — the overload behavior).
type HTTPLoadResult struct {
	Shards   int
	Conns    int
	Sizes    []int // shape orders in the throughput mix (square instances)
	Requests int   // closed-loop requests (excludes warm-up)
	Wall     time.Duration

	// Closed-loop latency distribution and throughput.
	RequestsPerSec float64
	P50, P90, P99  time.Duration
	Max            time.Duration
	// HitRate is the measured phase's shape-pool hit fraction across shards
	// (1.0 once the warm-up filled every owning shard's pool).
	HitRate float64

	// Saturation probe: OverloadRequests simultaneous arrivals of one heavy
	// shape (order OverloadSize) against a probe server with a small
	// admission envelope, several times its capacity. Rejected counts 429
	// responses — the admission control shedding the excess instead of
	// queueing without bound; OverloadP99 is the accepted requests' p99
	// under that pressure. Because routing is by shape, the whole burst
	// lands on one shard regardless of the shard count — hot-shape overload
	// saturates (and is shed by) only the owning shard, while the rest of
	// the fleet stays available.
	OverloadSize     int
	OverloadRequests int
	Rejected         int
	RejectedFraction float64
	OverloadP99      time.Duration

	// Stats is the sharded server's final merged snapshot (cumulative,
	// including warm-up and the saturation probe).
	Stats serve.Stats
}

// httpLoadShards normalizes the shard-count sweep (default {1, 2, 4}).
func httpLoadShards(requested []int) []int {
	if len(requested) == 0 {
		return []int{1, 2, 4}
	}
	seen := map[int]bool{}
	var out []int
	for _, s := range requested {
		if s > 0 && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Ints(out)
	return out
}

// httpLoadRequests resolves the closed-loop request count: an explicit
// override wins; otherwise 100k scaled by cfg.Scale, floored at 2000 so even
// the CI scale produces a stable distribution.
func httpLoadRequests(cfg Config) int {
	if cfg.HTTPRequests > 0 {
		return cfg.HTTPRequests
	}
	s := cfg.Scale
	if s <= 0 || s > 1 {
		s = 1
	}
	n := int(httpLoadDefaultRequests * s)
	if n < httpLoadMinRequests {
		n = httpLoadMinRequests
	}
	return n
}

// HTTPLoadSweep measures the HTTP front end (pkg/sea/serve/http over a
// sharded serve.ShardedServer on a loopback listener) across the configured
// shard counts. It is the data source for seabench -serve -http and the
// "serve/http" BENCH_sea.json records.
func HTTPLoadSweep(ctx context.Context, cfg Config) ([]HTTPLoadResult, error) {
	conns := cfg.HTTPConns
	if conns <= 0 {
		conns = httpLoadDefaultConns
	}
	requests := httpLoadRequests(cfg)
	var out []HTTPLoadResult
	for _, shards := range httpLoadShards(cfg.HTTPShards) {
		r, err := httpLoadOne(ctx, cfg, shards, conns, requests)
		if err != nil {
			return out, fmt.Errorf("http load shards=%d: %w", shards, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// httpLoadOne runs both phases against a fresh sharded server + HTTP stack.
func httpLoadOne(ctx context.Context, cfg Config, shards, conns, requests int) (HTTPLoadResult, error) {
	// Pre-encode the request bodies once: the generator measures the server,
	// so client-side encoding stays out of the loop.
	sizes := append([]int(nil), httpLoadSizes[:]...)
	bodies := make([][]byte, len(sizes))
	probs := make([]*sea.Problem, len(sizes))
	for i, n := range sizes {
		d := problems.Table1(n, uint64(n))
		var buf bytes.Buffer
		if err := matio.WriteProblemJSON(&buf, d); err != nil {
			return HTTPLoadResult{}, fmt.Errorf("encode %dx%d: %w", n, n, err)
		}
		bodies[i] = buf.Bytes()
		p, err := sea.NewDiagonal(d)
		if err != nil {
			return HTTPLoadResult{}, fmt.Errorf("problem %dx%d: %w", n, n, err)
		}
		probs[i] = p
	}

	o := sea.DefaultOptions()
	o.Criterion = sea.MaxAbsDelta
	o.Epsilon = cfg.eps(0.01)
	o.MaxIterations = 500000
	o.DisableWarmStart = cfg.NoWarm
	srv, err := serve.NewSharded(serve.ShardedConfig{
		Shards: shards,
		Server: serve.Config{
			Solver:      "sea",
			MaxInFlight: httpLoadMaxInFlight,
			// Sized so the closed loop (at most conns outstanding) is never
			// rejected; the saturation probe runs against its own server.
			MaxQueue:  conns,
			MaxShapes: len(probs),
			Options:   o,
		},
	})
	if err != nil {
		return HTTPLoadResult{}, err
	}
	defer srv.Close()
	handler := seahttp.New(srv, seahttp.Config{})
	defer handler.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return HTTPLoadResult{}, err
	}
	httpSrv := &http.Server{Handler: handler}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        conns * 2,
		MaxIdleConnsPerHost: conns * 2,
	}}
	defer client.CloseIdleConnections()

	// Warm-up: provision every shape's owning shard to its in-flight bound,
	// then one HTTP round per shape to settle connections and codec paths.
	for round := 0; round < serveWarmupRounds; round++ {
		for _, p := range probs {
			if err := srv.Prewarm(ctx, p, httpLoadMaxInFlight); err != nil {
				return HTTPLoadResult{}, fmt.Errorf("warm-up: %w", err)
			}
		}
	}
	for i := range bodies {
		if status, err := postSolve(ctx, client, base, bodies[i]); err != nil || status != http.StatusOK {
			return HTTPLoadResult{}, fmt.Errorf("warm-up request %d: status %d, err %v", i, status, err)
		}
	}
	warm := srv.Stats()

	// Closed loop: conns workers, each issuing its share back-to-back. Every
	// latency is recorded; the distribution is exact, not sampled.
	perWorker := requests / conns
	requests = perWorker * conns
	lats := make([][]int64, conns)
	errs := make([]error, conns)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < conns; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			mine := make([]int64, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				body := bodies[(g+i)%len(bodies)]
				t0 := time.Now()
				status, err := postSolve(ctx, client, base, body)
				if err != nil {
					errs[g] = err
					return
				}
				if status != http.StatusOK {
					errs[g] = fmt.Errorf("request %d: unexpected status %d", i, status)
					return
				}
				mine = append(mine, time.Since(t0).Nanoseconds())
			}
			lats[g] = mine
		}(g)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return HTTPLoadResult{}, err
		}
	}
	var merged []int64
	for _, l := range lats {
		merged = append(merged, l...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })

	st := srv.Stats()
	hits := st.ShapeHits - warm.ShapeHits
	misses := st.ShapeMisses - warm.ShapeMisses
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	res := HTTPLoadResult{
		Shards:         shards,
		Conns:          conns,
		Sizes:          sizes,
		Requests:       requests,
		Wall:           wall,
		RequestsPerSec: float64(requests) / wall.Seconds(),
		P50:            quantileNs(merged, 0.50),
		P90:            quantileNs(merged, 0.90),
		P99:            quantileNs(merged, 0.99),
		Max:            quantileNs(merged, 1),
		HitRate:        hitRate,
	}

	res.Stats = srv.Stats()

	// Saturation probe: a burst of simultaneous arrivals of one heavy shape,
	// independent of completions (the open-loop limiting case), against a
	// second server at the same shard count whose admission envelope is
	// deliberately small — the burst is several times the owning shard's
	// capacity, so the bounded queue must overflow and the excess must come
	// back as 429s. The probe's client bounds its connection pool just past
	// the burst; unbounded dialing would park the excess in the kernel's
	// accept backlog — an invisible unbounded queue in front of the
	// admission control — and the probe would measure connection-setup
	// starvation, not the server's shedding.
	overD := problems.RandomSAM(httpOverloadSize, 4)
	var overBuf bytes.Buffer
	if err := matio.WriteProblemJSON(&overBuf, overD); err != nil {
		return HTTPLoadResult{}, fmt.Errorf("overload shape: %w", err)
	}
	overP, err := sea.NewDiagonal(overD)
	if err != nil {
		return HTTPLoadResult{}, fmt.Errorf("overload shape: %w", err)
	}
	overSrv, err := serve.NewSharded(serve.ShardedConfig{
		Shards: shards,
		Server: serve.Config{
			Solver:      "sea",
			MaxInFlight: httpLoadMaxInFlight,
			MaxQueue:    httpOverloadQueue,
			MaxShapes:   1,
			Options:     o,
		},
	})
	if err != nil {
		return HTTPLoadResult{}, fmt.Errorf("probe server: %w", err)
	}
	defer overSrv.Close()
	overHandler := seahttp.New(overSrv, seahttp.Config{})
	defer overHandler.Close()
	overLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return HTTPLoadResult{}, err
	}
	overHTTP := &http.Server{Handler: overHandler}
	go overHTTP.Serve(overLn)
	defer overHTTP.Close()
	overBase := "http://" + overLn.Addr().String()
	if err := overSrv.Prewarm(ctx, overP, httpLoadMaxInFlight); err != nil {
		return HTTPLoadResult{}, fmt.Errorf("overload warm-up: %w", err)
	}

	overClient := &http.Client{Transport: &http.Transport{
		MaxConnsPerHost:     httpOverloadBurst + 2,
		MaxIdleConnsPerHost: httpOverloadBurst + 2,
	}}
	defer overClient.CloseIdleConnections()
	var rejected, failed atomic.Int64
	overLats := make([]int64, httpOverloadBurst) // -1 = not accepted
	var owg sync.WaitGroup
	for i := 0; i < httpOverloadBurst; i++ {
		owg.Add(1)
		go func(i int) {
			defer owg.Done()
			overLats[i] = -1
			t0 := time.Now()
			status, err := postSolve(ctx, overClient, overBase, overBuf.Bytes())
			switch {
			case err != nil:
				failed.Add(1)
			case status == http.StatusTooManyRequests:
				rejected.Add(1)
			case status == http.StatusOK:
				overLats[i] = time.Since(t0).Nanoseconds()
			default:
				failed.Add(1)
			}
		}(i)
	}
	owg.Wait()
	if n := failed.Load(); n > 0 {
		return HTTPLoadResult{}, fmt.Errorf("saturation probe: %d requests failed with non-429 errors", n)
	}
	accepted := overLats[:0]
	for _, ns := range overLats {
		if ns >= 0 {
			accepted = append(accepted, ns)
		}
	}
	sort.Slice(accepted, func(i, j int) bool { return accepted[i] < accepted[j] })
	res.OverloadSize = httpOverloadSize
	res.OverloadRequests = httpOverloadBurst
	res.Rejected = int(rejected.Load())
	res.RejectedFraction = float64(res.Rejected) / float64(httpOverloadBurst)
	res.OverloadP99 = quantileNs(accepted, 0.99)
	return res, nil
}

// postSolve issues one POST /v1/solve and fully drains the response so the
// connection returns to the keep-alive pool.
func postSolve(ctx context.Context, client *http.Client, base string, body []byte) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// quantileNs reads the q-quantile from ascending nanosecond samples.
func quantileNs(sorted []int64, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return time.Duration(sorted[i])
}
