package experiments

import (
	"context"
	"math"
	"testing"
)

// smallCfg shrinks every experiment far enough for fast CI runs.
func smallCfg() Config {
	return Config{Scale: 0.04, Procs: 1}
}

func TestTable1Small(t *testing.T) {
	rows, err := Table1(context.Background(), smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Seconds < 0 || r.Iterations <= 0 || r.Nonzeros != r.Size*r.Size {
			t.Errorf("bad row: %+v", r)
		}
	}
	// Sizes increase down the table.
	for i := 1; i < len(rows); i++ {
		if rows[i].Size <= rows[i-1].Size {
			t.Errorf("sizes not increasing: %+v", rows)
		}
	}
}

func TestTable2Small(t *testing.T) {
	rows, err := Table2(context.Background(), smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("got %d rows, want 9", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Dataset] = true
	}
	if !names["IOC72a"] || !names["IO72c"] {
		t.Errorf("missing datasets: %v", names)
	}
}

func TestTable3Small(t *testing.T) {
	rows, err := Table3(context.Background(), smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d rows, want 7", len(rows))
	}
	if rows[0].Dataset != "STONE" || rows[0].Accounts != 5 || rows[0].Transactions != 12 {
		t.Errorf("STONE row wrong: %+v", rows[0])
	}
}

func TestTable4Small(t *testing.T) {
	rows, err := Table4(context.Background(), smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("got %d rows, want 9", len(rows))
	}
	// The paper's qualitative finding: the b (large-growth) examples need
	// at least as many iterations as the a examples; the c (perturbed)
	// examples are the fastest of each period.
	byName := map[string]int{}
	for _, r := range rows {
		byName[r.Dataset] = r.Iterations
	}
	for _, period := range []string{"5560", "6570", "7580"} {
		a, b, c := byName["MIG"+period+"a"], byName["MIG"+period+"b"], byName["MIG"+period+"c"]
		// The ordering is statistical (growth factors are random draws), so
		// allow slack: b within 30% of a from below, c the clear fastest.
		if float64(b) < 0.7*float64(a) {
			t.Errorf("period %s: b=%d iterations much below a=%d", period, b, a)
		}
		if c > a {
			t.Errorf("period %s: perturbed c=%d iterations > a=%d", period, c, a)
		}
	}
}

func TestTable5Small(t *testing.T) {
	rows, err := Table5(context.Background(), smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	for _, r := range rows {
		if r.Variables != r.Markets*r.Markets {
			t.Errorf("variables mismatch: %+v", r)
		}
	}
}

func TestTable6HalfScale(t *testing.T) {
	// The simulated machine's fork/join overhead is calibrated for
	// paper-scale problems; tiny CI instances would be overhead-dominated,
	// so this test runs at half scale where the paper's shape must appear.
	rows, err := Table6(context.Background(), Config{Scale: 0.5, Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 4 examples × 3 processor counts.
	if len(rows) != 12 {
		t.Fatalf("got %d rows, want 12", len(rows))
	}
	for _, r := range rows {
		if r.Speedup < 1 || r.Speedup > float64(r.N) {
			t.Errorf("implausible speedup: %+v", r)
		}
		if r.Efficiency <= 0 || r.Efficiency > 1 {
			t.Errorf("implausible efficiency: %+v", r)
		}
	}
	// Speedup grows (or saturates, at sub-paper scale) with N.
	for i := 1; i < len(rows); i++ {
		if rows[i].Example == rows[i-1].Example && rows[i].Speedup < 0.95*rows[i-1].Speedup {
			t.Errorf("speedup collapsed with N: %+v then %+v", rows[i-1], rows[i])
		}
	}
}

func TestTable7Small(t *testing.T) {
	cfg := smallCfg()
	cfg.MaxBKDim = 100 // keep B-K to the tiniest sizes in CI
	rows, err := Table7(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d rows, want 7", len(rows))
	}
	bkRan := 0
	for _, r := range rows {
		if r.SEASeconds < 0 || r.RCSeconds < 0 {
			t.Errorf("negative time: %+v", r)
		}
		if !math.IsNaN(r.BKSeconds) {
			bkRan++
		}
	}
	if bkRan == 0 {
		t.Error("B-K never ran")
	}
}

func TestTable8Small(t *testing.T) {
	cfg := smallCfg()
	rows, err := Table8(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if r.GDim != 2304 {
			t.Errorf("G order %d, want 2304", r.GDim)
		}
		if r.Outer <= 0 || r.Inner < r.Outer {
			t.Errorf("iteration counts wrong: %+v", r)
		}
	}
}

func TestTable9HalfScale(t *testing.T) {
	rows, err := Table9(context.Background(), Config{Scale: 0.5, Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	// The paper's headline: SEA speedups exceed RC's at each N.
	sea := map[int]float64{}
	rc := map[int]float64{}
	for _, r := range rows {
		if r.Example == "SEA" {
			sea[r.N] = r.Speedup
		} else {
			rc[r.N] = r.Speedup
		}
	}
	for _, n := range []int{2, 4} {
		if sea[n] < rc[n] {
			t.Errorf("N=%d: SEA speedup %.2f < RC %.2f; paper has SEA ahead", n, sea[n], rc[n])
		}
	}
}

func TestOpsModelSmall(t *testing.T) {
	cfg := Config{Scale: 0.25, Procs: 1}
	rows, err := OpsModel(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	// The measured/model ratio should be stable across sizes (within 3×),
	// confirming the O(T̄·n²·log n) scaling.
	for _, r := range rows {
		if r.Ratio <= 0 {
			t.Fatalf("bad ratio: %+v", r)
		}
	}
	lo, hi := rows[0].Ratio, rows[0].Ratio
	for _, r := range rows {
		if r.Ratio < lo {
			lo = r.Ratio
		}
		if r.Ratio > hi {
			hi = r.Ratio
		}
	}
	if hi/lo > 3 {
		t.Errorf("op-count ratio drifts %gx across sizes: %+v", hi/lo, rows)
	}
}

// TestSequenceSweepSmall: the temporal sweep produces one row per standard
// spec, and the chained pass must spend strictly fewer total iterations than
// the cold pass — the property the sequence/ perf records gate.
func TestSequenceSweepSmall(t *testing.T) {
	cfg := Config{Scale: 0.2, Procs: 1}
	rows, err := SequenceSweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("got %d rows, want at least 2", len(rows))
	}
	for _, r := range rows {
		if r.Periods <= 0 || r.ColdNs <= 0 || r.ChainedNs <= 0 {
			t.Fatalf("bad row: %+v", r)
		}
		if r.ChainedIters >= r.ColdIters {
			t.Fatalf("%s: chained pass saved nothing (%d chained vs %d cold iterations)",
				r.Name, r.ChainedIters, r.ColdIters)
		}
		if r.IterSavedPct() <= 0 || r.IterSavedPct() >= 100 {
			t.Fatalf("%s: IterSavedPct = %g", r.Name, r.IterSavedPct())
		}
	}
}

func TestConfigHelpers(t *testing.T) {
	c := Config{Scale: 0.5}
	if c.dim(100) != 50 {
		t.Errorf("dim(100) = %d", c.dim(100))
	}
	if c.dim(4) != 4 {
		t.Errorf("dim floor broken: %d", c.dim(4))
	}
	bad := Config{Scale: 7}
	if bad.dim(100) != 100 {
		t.Errorf("out-of-range scale should act as 1: %d", bad.dim(100))
	}
	if (Config{}).eps(0.01) != 0.01 {
		t.Error("eps default broken")
	}
	if (Config{Epsilon: 1e-5}).eps(0.01) != 1e-5 {
		t.Error("eps override broken")
	}
}

// TestTable6EnhancedImproves: parallelizing the convergence check (the
// paper's suggested enhancement) must not hurt, and should help the
// examples whose serial share is largest, at the highest processor count.
func TestTable6EnhancedImproves(t *testing.T) {
	cfg := Config{Scale: 0.5, Procs: 1}
	plain, err := Table6(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	enh, err := Table6Enhanced(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(enh) {
		t.Fatalf("row counts differ: %d vs %d", len(plain), len(enh))
	}
	improvedSomewhere := false
	for i := range plain {
		if enh[i].Example != plain[i].Example || enh[i].N != plain[i].N {
			t.Fatalf("row order differs at %d", i)
		}
		if enh[i].Speedup < plain[i].Speedup*0.98 {
			t.Errorf("%s N=%d: enhanced %.3f worse than plain %.3f",
				plain[i].Example, plain[i].N, enh[i].Speedup, plain[i].Speedup)
		}
		if enh[i].Speedup > plain[i].Speedup*1.02 {
			improvedSomewhere = true
		}
	}
	if !improvedSomewhere {
		t.Error("enhancement never improved any example")
	}
}

func TestGrowthSweep(t *testing.T) {
	rows, err := GrowthSweep(context.Background(), Config{Scale: 1, Procs: 1, Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d rows, want 7", len(rows))
	}
	// Difficulty must grow with the growth factor: the largest growth needs
	// strictly more iterations than zero growth.
	if rows[len(rows)-1].Iterations <= rows[0].Iterations {
		t.Errorf("200%% growth (%d iters) not harder than 0%% (%d)",
			rows[len(rows)-1].Iterations, rows[0].Iterations)
	}
	// And roughly monotone: each point at least half its predecessor.
	for i := 1; i < len(rows); i++ {
		if float64(rows[i].Iterations) < 0.5*float64(rows[i-1].Iterations) {
			t.Errorf("iterations dropped sharply at %d%%: %+v", rows[i].GrowthPct, rows)
		}
	}
}

func TestRelaxationAblation(t *testing.T) {
	rows, err := RelaxationAblation(context.Background(), Config{Scale: 0.5, Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	// Smaller steps cannot need fewer half-sweeps.
	for i := 1; i < len(rows); i++ {
		if rows[i].Inner < rows[i-1].Inner {
			t.Errorf("rho=%.2f used fewer half-sweeps (%d) than rho=%.2f (%d)",
				rows[i].Rho, rows[i].Inner, rows[i-1].Rho, rows[i-1].Inner)
		}
	}
}
