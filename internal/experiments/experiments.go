// Package experiments contains one runnable experiment per table and figure
// of the paper's evaluation (Sections 4 and 5), each returning typed rows
// that cmd/seabench renders. DESIGN.md maps every experiment to the paper's
// table/figure and the modules it exercises.
//
// All experiments accept a Config whose Scale shrinks the instance sizes
// proportionally, so the full suite can run quickly in CI (Scale ≈ 0.05)
// or at the paper's sizes (Scale = 1).
package experiments

import (
	"context"
	"time"

	"sea/internal/core"
	"sea/internal/parallel"
)

// Config controls experiment sizing and execution.
type Config struct {
	// Scale multiplies the paper's instance dimensions (0 < Scale ≤ 1).
	Scale float64
	// Procs is the worker count for the parallel phases of the solves
	// themselves (results are identical for any value; only wall time
	// changes).
	Procs int
	// Runner, if non-nil, is a shared scheduling substrate (typically one
	// persistent parallel.Pool) reused across every solve of the run, so
	// repeated experiments pay no per-solve worker startup. The caller owns
	// its lifecycle. When nil each solve manages its own pool of Procs
	// workers.
	Runner parallel.Runner
	// Epsilon overrides the paper's per-table tolerance when positive.
	Epsilon float64
	// MaxBKDim caps the G order on which the Bachem–Korte baseline runs
	// (the paper stopped at 900×900 because B-K became prohibitively
	// expensive). Zero means the paper's cap.
	MaxBKDim int
	// NoWarm disables the equilibration kernel's warm-started sort
	// (Options.DisableWarmStart) in the perf suite's main records — the
	// ablation switch behind seabench -nowarm. The "/steady" records
	// always measure both sides regardless.
	NoWarm bool
	// BenchProcs is the worker-count sweep for the perf suite's main
	// records (seabench -benchprocs). Empty means the default {1, 2, 4, 8}.
	// Counts above runtime.NumCPU produce simulated records (see
	// PerfRecord.Simulated).
	BenchProcs []int
	// PerfReps overrides the perf suite's timed repetitions per record
	// (seabench -benchreps); 0 means the default.
	PerfReps int
	// BenchFilter, when non-empty, restricts the perf suite to records whose
	// name contains this substring (seabench -benchfilter): instance records
	// match by instance name, the serving sweeps by "serve/mixed" and
	// "serve/http". Empty runs the full suite — the committed BENCH_sea.json
	// must be regenerated unfiltered, because seabench -compare counts
	// records missing from the new file as failures.
	BenchFilter string
	// HTTPRequests overrides the HTTP load generator's closed-loop request
	// count per shard configuration (seabench -requests); 0 means the
	// default 100000 scaled by Scale.
	HTTPRequests int
	// HTTPConns overrides the load generator's concurrent client
	// connections (seabench -conns); 0 means the default 8.
	HTTPConns int
	// HTTPShards overrides the shard counts swept by the HTTP serving
	// records (seabench -shards); empty means the default {1, 2, 4}.
	HTTPShards []int
}

// apply copies the execution-related Config fields into o.
func (c Config) apply(o *core.Options) {
	o.Procs = c.Procs
	o.Runner = c.Runner
}

// DefaultConfig returns the paper-scale configuration.
func DefaultConfig() Config {
	return Config{Scale: 1, Procs: 1}
}

// dim scales a paper dimension, keeping at least a workable minimum.
func (c Config) dim(n int) int {
	s := c.Scale
	if s <= 0 || s > 1 {
		s = 1
	}
	v := int(float64(n) * s)
	if v < 4 {
		v = 4
	}
	return v
}

// eps returns the tolerance for a table whose paper tolerance is def.
func (c Config) eps(def float64) float64 {
	if c.Epsilon > 0 {
		return c.Epsilon
	}
	return def
}

// timedSolve runs SolveDiagonal and returns the solution with its wall time.
func timedSolve(ctx context.Context, p *core.DiagonalProblem, o *core.Options) (*core.Solution, float64, error) {
	start := time.Now()
	sol, err := core.SolveDiagonal(ctx, p, o)
	return sol, time.Since(start).Seconds(), err
}
