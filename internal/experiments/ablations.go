package experiments

import (
	"context"
	"fmt"
	"time"

	"sea/internal/core"
	"sea/internal/problems"
)

// GrowthRow is one point of the growth-factor sensitivity sweep.
type GrowthRow struct {
	GrowthPct  int
	Iterations int
	Seconds    float64
}

// GrowthSweep quantifies the paper's Table 4 observation that larger growth
// factors make migration-style elastic problems harder: the same 48×48
// migration table is re-solved with its total priors uniformly grown by an
// increasing percentage, measuring how far the μ = 0 initialization then is
// from the optimum.
func GrowthSweep(ctx context.Context, cfg Config) ([]GrowthRow, error) {
	x0 := problems.MigrationTable("6570", 1234)
	const n = 48
	ones := make([]float64, n*n)
	for k := range ones {
		ones[k] = 1
	}
	onesN := ones[:n]
	rawS := make([]float64, n)
	rawD := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			rawS[i] += x0[i*n+j]
			rawD[j] += x0[i*n+j]
		}
	}
	var rows []GrowthRow
	for _, pct := range []int{0, 5, 10, 25, 50, 100, 200} {
		factor := 1 + float64(pct)/100
		s0 := make([]float64, n)
		d0 := make([]float64, n)
		for i := 0; i < n; i++ {
			s0[i] = rawS[i] * factor
			d0[i] = rawD[i] * factor
		}
		p, err := core.NewElastic(n, n, x0, ones, s0, onesN, d0, onesN)
		if err != nil {
			return rows, err
		}
		o := core.DefaultOptions()
		o.Criterion = core.DualGradient
		o.Epsilon = cfg.eps(0.01)
		o.MaxIterations = 500000
		start := time.Now()
		sol, err := core.SolveDiagonal(ctx, p, o)
		if err != nil {
			return rows, fmt.Errorf("growth sweep %d%%: %w", pct, err)
		}
		rows = append(rows, GrowthRow{GrowthPct: pct, Iterations: sol.Iterations, Seconds: time.Since(start).Seconds()})
	}
	return rows, nil
}

// RelaxRow is one point of the projection-relaxation ablation.
type RelaxRow struct {
	Rho     float64
	Outer   int
	Inner   int
	Seconds float64
}

// RelaxationAblation sweeps the projection step scaling ρ on a general
// dense-G problem: ρ = 1 reproduces the paper's subproblem (79); smaller ρ
// takes more conservative steps (more robust when dominance is weak, slower
// when it is strong).
func RelaxationAblation(ctx context.Context, cfg Config) ([]RelaxRow, error) {
	size := cfg.dim(40)
	p := problems.GeneralDense(size, size, 77, false)
	var rows []RelaxRow
	for _, rho := range []float64{1.0, 0.8, 0.5, 0.25} {
		o := core.DefaultOptions()
		o.Epsilon = cfg.eps(0.001)
		o.Criterion = core.MaxAbsDelta
		o.Relaxation = rho
		o.SkipDominanceCheck = true
		o.MaxIterations = 10000
		start := time.Now()
		sol, err := core.SolveGeneral(ctx, p, o)
		if err != nil {
			return rows, fmt.Errorf("relaxation %g: %w", rho, err)
		}
		rows = append(rows, RelaxRow{
			Rho: rho, Outer: sol.Iterations, Inner: sol.InnerIterations,
			Seconds: time.Since(start).Seconds(),
		})
	}
	return rows, nil
}
