package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"sea/internal/baseline"
	"sea/internal/core"
	"sea/internal/problems"
)

// Table7Row is one line of Table 7: the three-way comparison of SEA, RC and
// B-K on general problems with 100% dense G matrices.
type Table7Row struct {
	GDim       int // order of G = (rows × columns of the matrix problem)
	Runs       int // times each solver ran (times are averages), as in the paper
	SEASeconds float64
	RCSeconds  float64
	BKSeconds  float64 // NaN where B-K was not run (prohibitively expensive)
	SEAOuter   int
	SEAInner   int
	RCOuter    int
	RCInner    int
	BKSweeps   int
}

// table7Runs mirrors the paper's "# of runs" column: 10 for the two
// smallest sizes, 2 for G = 900, 1 beyond.
func table7Runs(gdim int) int {
	switch {
	case gdim <= 400:
		return 10
	case gdim <= 900:
		return 2
	default:
		return 1
	}
}

// Table7 reproduces Table 7: SEA vs RC vs B-K on general quadratic
// constrained matrix problems with dense diagonally dominant G matrices from
// 100×100 up to 14400×14400, ε′ = .001. B-K runs only up to MaxBKDim
// (default 900, where the paper stopped).
func Table7(ctx context.Context, cfg Config) ([]Table7Row, error) {
	maxBK := cfg.MaxBKDim
	if maxBK <= 0 {
		maxBK = 900
	}
	var rows []Table7Row
	for _, size := range problems.Table7Sizes() {
		n := cfg.dim(size)
		gdim := n * n
		runs := table7Runs(gdim)
		p := problems.GeneralDense(n, n, uint64(size), false)

		seaOpts := core.DefaultOptions()
		seaOpts.Epsilon = cfg.eps(0.001)
		seaOpts.Criterion = core.MaxAbsDelta
		cfg.apply(seaOpts)
		seaOpts.SkipDominanceCheck = true
		var seaSol *core.Solution
		start := time.Now()
		for r := 0; r < runs; r++ {
			var err error
			seaSol, err = core.SolveGeneral(ctx, p, seaOpts)
			if err != nil {
				return rows, fmt.Errorf("table 7 SEA, G %d: %w", gdim, err)
			}
		}
		seaSecs := time.Since(start).Seconds() / float64(runs)

		rcOpts := core.DefaultOptions()
		rcOpts.Epsilon = cfg.eps(0.001)
		cfg.apply(rcOpts)
		rcOpts.SkipDominanceCheck = true
		var rcSol *core.Solution
		start = time.Now()
		for r := 0; r < runs; r++ {
			var err error
			rcSol, err = baseline.SolveRC(ctx, p, rcOpts)
			if err != nil {
				return rows, fmt.Errorf("table 7 RC, G %d: %w", gdim, err)
			}
		}
		rcSecs := time.Since(start).Seconds() / float64(runs)

		row := Table7Row{
			GDim: gdim, Runs: runs,
			SEASeconds: seaSecs, RCSeconds: rcSecs, BKSeconds: math.NaN(),
			SEAOuter: seaSol.Iterations, SEAInner: seaSol.InnerIterations,
			RCOuter: rcSol.Iterations, RCInner: rcSol.InnerIterations,
		}
		if gdim <= maxBK {
			bkOpts := core.DefaultOptions()
			bkOpts.Epsilon = cfg.eps(0.001)
			bkOpts.MaxIterations = 100000
			var bkSol *core.Solution
			start = time.Now()
			for r := 0; r < runs; r++ {
				var err error
				bkSol, err = baseline.SolveBK(ctx, p, bkOpts)
				if err != nil {
					return rows, fmt.Errorf("table 7 B-K, G %d: %w", gdim, err)
				}
			}
			row.BKSeconds = time.Since(start).Seconds() / float64(runs)
			row.BKSweeps = bkSol.Iterations
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table8Row is one line of Table 8: SEA on general migration problems.
type Table8Row struct {
	Dataset string
	GDim    int
	Seconds float64
	Outer   int
	Inner   int
}

// Table8 reproduces Table 8: SEA on the six general constrained matrix
// problems built from U.S. migration tables with 100% dense 2304×2304 G
// matrices, ε′ = .001.
func Table8(ctx context.Context, cfg Config) ([]Table8Row, error) {
	var rows []Table8Row
	for _, period := range []string{"5560", "6570", "7580"} {
		for _, variant := range []byte{'a', 'b'} {
			p := problems.GeneralMigration(period, variant, uint64(period[0]))
			o := core.DefaultOptions()
			o.Epsilon = cfg.eps(0.001)
			o.Criterion = core.MaxAbsDelta
			cfg.apply(o)
			o.SkipDominanceCheck = true
			start := time.Now()
			sol, err := core.SolveGeneral(ctx, p, o)
			name := fmt.Sprintf("GMIG%s%c", period, variant)
			if err != nil {
				return rows, fmt.Errorf("table 8, %s: %w", name, err)
			}
			rows = append(rows, Table8Row{
				Dataset: name, GDim: p.G.Dim(),
				Seconds: time.Since(start).Seconds(),
				Outer:   sol.Iterations, Inner: sol.InnerIterations,
			})
		}
	}
	return rows, nil
}
