package experiments

import (
	"context"
	"fmt"
	"math"

	"sea/internal/core"
	"sea/internal/metrics"
	"sea/internal/problems"
)

// OpsRow is one line of the complexity-model validation experiment: the
// paper's operation-count model N = T̄·n²·(9 + ln n) against the measured
// instrumented counts.
type OpsRow struct {
	Size        int
	Iterations  int
	MeasuredOps int64
	ModelOps    float64
	Ratio       float64
}

// OpsModel validates the paper's Section 3.1.3 operation-count model on
// Table 1-style problems across sizes: the ratio of measured to modeled
// operations should be roughly constant, confirming the O(T̄·n²·log n)
// behaviour that justifies the parallel cost analysis.
func OpsModel(ctx context.Context, cfg Config) ([]OpsRow, error) {
	var rows []OpsRow
	for _, size := range []int{100, 200, 400, 800} {
		n := cfg.dim(size)
		p := problems.Table1(n, uint64(size)+17)
		o := core.DefaultOptions()
		o.Criterion = core.MaxAbsDelta
		o.Epsilon = cfg.eps(0.01)
		var c metrics.Counters
		o.Counters = &c
		sol, err := core.SolveDiagonal(ctx, p, o)
		if err != nil {
			return rows, fmt.Errorf("ops model, size %d: %w", n, err)
		}
		snap := c.Snapshot()
		nf := float64(n)
		model := float64(sol.Iterations) * nf * nf * (9 + math.Log(nf))
		rows = append(rows, OpsRow{
			Size:        n,
			Iterations:  sol.Iterations,
			MeasuredOps: snap.Ops,
			ModelOps:    model,
			Ratio:       float64(snap.Ops) / model,
		})
	}
	return rows, nil
}
