package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"sea/internal/core"
	"sea/internal/parallel"
	"sea/internal/parsim"
	"sea/internal/problems"
	"sea/internal/spe"
)

// PerfRecord is one machine-readable hot-path measurement: a named instance
// solved end-to-end at a fixed worker count. Subsequent PRs regress against
// these numbers (see docs/PERFORMANCE.md).
type PerfRecord struct {
	// Name identifies the instance family (matching the benchmark names in
	// bench_test.go where one exists).
	Name string `json:"name"`
	// Procs is the worker count of the persistent pool used for the solve.
	Procs int `json:"procs"`
	// NsPerOp is the mean wall time of one full solve, in nanoseconds.
	NsPerOp int64 `json:"ns_per_op"`
	// AllocsPerOp is the mean heap-allocation count of one full solve
	// (dominated by state setup; the iteration loop itself is
	// allocation-free in steady state).
	AllocsPerOp uint64 `json:"allocs_per_op"`
	// Iterations is the solver iteration count (identical across Procs —
	// the determinism contract).
	Iterations int `json:"iterations"`
	// SpeedupVsSerial is serial ns/op divided by this record's ns/op; 1.0
	// for the Procs = 1 rows. For the "/steady" records it is the cold
	// serial ns/op divided by the steady-state ns/op — the serving-mode
	// speedup from arena reuse plus kernel warm starts.
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
	// WarmstartAblation, set only on the "/steady" records, is the same
	// steady-state measurement re-run with Options.DisableWarmStart divided
	// by the warm-started ns/op: values above 1 are the kernel warm start's
	// contribution, isolated from arena reuse.
	WarmstartAblation float64 `json:"warmstart_ablation,omitempty"`
	// RequestsPerSec, set only on the "serve/" records, is the serving
	// layer's sustained request throughput under concurrent mixed-shape
	// load (see experiments.ServeSweep; for these records Procs is the
	// server's MaxInFlight and NsPerOp the wall time per request).
	RequestsPerSec float64 `json:"requests_per_sec,omitempty"`
	// ShapeHitRate, set only on the "serve/" records, is the shape-pool hit
	// fraction of the measured phase; steady state is 1.0.
	ShapeHitRate float64 `json:"shape_hit_rate,omitempty"`
	// Shards, set only on the "serve/http" records, is the sharded server's
	// inner Server count; seabench -compare keys these records by
	// (name, procs, shards).
	Shards int `json:"shards,omitempty"`
	// P50Ms and P99Ms, set only on the "serve/http" records, are the
	// closed-loop per-request latency quantiles in milliseconds (end to end
	// through the HTTP transport; see experiments.HTTPLoadSweep).
	P50Ms float64 `json:"p50_ms,omitempty"`
	P99Ms float64 `json:"p99_ms,omitempty"`
	// RejectedFraction, set only on the "serve/http" records, is the share
	// of the open-loop overload probe's arrivals answered 429 — the
	// admission-control saturation behavior at 1.5x capacity.
	RejectedFraction float64 `json:"rejected_fraction,omitempty"`
	// Nnz, set on the CSR-storage ("sparse/") records, is the instance's
	// stored-cell count: per-iteration cost and solve-time heap bytes scale
	// with it rather than with m·n (docs/PERFORMANCE.md, memory model).
	Nnz int `json:"nnz,omitempty"`
	// NsPerIter is NsPerOp divided by Iterations — the per-iteration wall
	// cost, the unit in which the sparse records' O(nnz) scaling claim is
	// stated.
	NsPerIter int64 `json:"ns_per_iter,omitempty"`
	// BytesPerOp, set on the Procs = 1 instance records, is the total heap
	// bytes allocated by one cold solve (runtime.MemStats TotalAlloc delta:
	// solver state, arena, kernel scratch). For CSR instances it is the
	// resident-footprint figure that must stay proportional to nnz.
	BytesPerOp uint64 `json:"bytes_per_op,omitempty"`
	// OuterIterations is the solver's outer (dual block-ascent) iteration
	// count, written explicitly so seabench -compare can gate
	// iteration-count regressions. It equals Iterations on solve records;
	// older baselines without the field are exempt from the gate.
	OuterIterations int `json:"outer_iterations,omitempty"`
	// PrecondNs, set on the "/precond" records, is the preconditioning
	// stage's wall time in nanoseconds — the upfront cost the cut in
	// outer iterations has to repay for a net wall-clock win.
	PrecondNs int64 `json:"precond_ns,omitempty"`
	// Periods, set on the "sequence/" records, is the temporal sequence's
	// length: NsPerOp is mean wall per period, Iterations the total over the
	// sequence, and the "/chained" record's SpeedupVsSerial is the cold
	// per-period wall divided by the chained one (see
	// experiments.SequenceSweep).
	Periods int `json:"periods,omitempty"`
	// Simulated marks records whose Procs exceeds the machine's physical
	// core count: the speedup comes from replaying the solve's recorded
	// per-task cost trace on parsim's simulated N-processor machine
	// (DESIGN.md, substitution 1) rather than from wall-clock timing, and
	// NsPerOp is the measured serial ns/op divided by that simulated
	// speedup. AllocsPerOp and Iterations are copied from the serial record
	// (both are Procs-independent by the determinism contract).
	Simulated bool `json:"simulated,omitempty"`
}

// PerfReport is the top-level BENCH_sea.json document.
type PerfReport struct {
	GeneratedUnix int64        `json:"generated_unix"`
	GoMaxProcs    int          `json:"go_max_procs"`
	NumCPU        int          `json:"num_cpu"`
	Scale         float64      `json:"scale"`
	Records       []PerfRecord `json:"records"`
}

// perfReps is how many timed solves each record averages over (after one
// untimed warm-up).
const perfReps = 3

// steadyReps is how many timed solves the steady-state records average
// over; higher than perfReps because each solve is several times faster.
const steadyReps = 10

// steadyNs times repeated same-shape solves of p on one reusable arena —
// the serving-mode measurement — and reports mean ns/op and allocs/op.
// The first solve on the arena is untimed warm-up: it populates the arena
// and the kernel warm-start states, so the timed reps see the steady state.
func steadyNs(ctx context.Context, p *core.DiagonalProblem, opts func() *core.Options, nowarm bool) (nsPerOp int64, allocsPerOp uint64, err error) {
	pool := parallel.NewPool(1)
	defer pool.Close()
	arena := core.NewArena()
	defer arena.Close()
	build := func() *core.Options {
		o := opts()
		o.Runner = pool
		o.Arena = arena
		o.DisableWarmStart = nowarm
		return o
	}
	if _, err := core.SolveDiagonal(ctx, p, build()); err != nil {
		return 0, 0, err
	}
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for rep := 0; rep < steadyReps; rep++ {
		if _, err := core.SolveDiagonal(ctx, p, build()); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return elapsed.Nanoseconds() / steadyReps, (ms1.Mallocs - ms0.Mallocs) / steadyReps, nil
}

// benchProcs normalizes the perf suite's worker-count sweep: the default
// {1, 2, 4, 8} when unset, deduplicated, ascending, and always including 1
// first (every other record's speedup is relative to the Procs = 1 row).
func benchProcs(requested []int) []int {
	if len(requested) == 0 {
		return []int{1, 2, 4, 8}
	}
	seen := map[int]bool{1: true}
	out := []int{1}
	for _, p := range requested {
		if p > 1 && !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out
}

// PerfSuite measures the SEA hot path on representative diagonal instances
// across a worker-count sweep (default 1, 2, 4, 8), reusing one persistent
// pool per worker count across all reps. Worker counts up to runtime.NumCPU
// are wall-clock measurements; beyond that the record is derived from the
// solve's cost trace on parsim's simulated machine and marked Simulated. It
// is the data source for seabench's -benchjson output.
func PerfSuite(ctx context.Context, cfg Config) (PerfReport, error) {
	type instance struct {
		name  string
		build func() (*core.DiagonalProblem, error)
		crit  core.Criterion
		eps   float64
	}
	instances := []instance{
		{"table1/diagonal500", func() (*core.DiagonalProblem, error) {
			return problems.Table1(cfg.dim(500), 1), nil
		}, core.MaxAbsDelta, 0.01},
		{"table1/diagonal1000", func() (*core.DiagonalProblem, error) {
			return problems.Table1(cfg.dim(1000), 1000), nil
		}, core.MaxAbsDelta, 0.01},
		{"table3/sam300", func() (*core.DiagonalProblem, error) {
			return problems.RandomSAM(cfg.dim(300), 4), nil
		}, core.RelBalance, 0.001},
		{"table5/spe250", func() (*core.DiagonalProblem, error) {
			return spe.Generate(cfg.dim(250), cfg.dim(250), 6).ToConstrainedMatrix()
		}, core.DualGradient, 0.01},
		// The sparse tiers: CSR storage on cyclic-band supports at ~1%
		// density. diagonal10k is the headline O(nnz) claim — m = n = 10⁴,
		// where a dense representation would be 10⁸ cells but only ~10⁶ are
		// stored — and sam2000 covers the Balanced kind's sparse path.
		{"sparse/diagonal10k", func() (*core.DiagonalProblem, error) {
			n := cfg.dim(10000)
			return problems.SparseTable1(n, problems.SparseBand(n), 1), nil
		}, core.MaxAbsDelta, 0.01},
		{"sparse/sam2000", func() (*core.DiagonalProblem, error) {
			n := cfg.dim(2000)
			return problems.SparseSAM(n, problems.SparseBand(n), 7), nil
		}, core.RelBalance, 0.001},
	}

	// precondTiers picks which instances also emit a "/precond" record:
	// the hard elastic tier plus the two tiers that converge in a couple
	// of outer iterations anyway, bracketing where the warm start pays.
	precondTiers := map[string]bool{
		"table5/spe250":       true,
		"table1/diagonal1000": true,
		"sparse/diagonal10k":  true,
	}

	// matches applies cfg.BenchFilter (seabench -benchfilter): an empty
	// filter keeps everything, so unfiltered runs always emit the full suite
	// that the strict-missing -compare gate expects.
	matches := func(name string) bool {
		return cfg.BenchFilter == "" || strings.Contains(name, cfg.BenchFilter)
	}

	procsList := benchProcs(cfg.BenchProcs)
	reps := cfg.PerfReps
	if reps <= 0 {
		reps = perfReps
	}

	report := PerfReport{
		GeneratedUnix: time.Now().Unix(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Scale:         cfg.Scale,
	}
	for _, inst := range instances {
		if !matches(inst.name) {
			continue
		}
		p, err := inst.build()
		if err != nil {
			return report, fmt.Errorf("perf %s: %w", inst.name, err)
		}
		nnz := 0
		if p.Pattern != nil {
			nnz = p.Pattern.Nnz()
		}
		baseOpts := func() *core.Options {
			o := core.DefaultOptions()
			o.Criterion = inst.crit
			o.Epsilon = cfg.eps(inst.eps)
			o.MaxIterations = 500000
			o.DisableWarmStart = cfg.NoWarm
			return o
		}
		// One untimed serial solve records the per-task cost trace that
		// backs the simulated records for worker counts beyond the
		// physical cores; it doubles as the page-faulting warm-up.
		tr := &core.CostTrace{}
		var coldBytes uint64
		{
			o := baseOpts()
			o.CostTrace = tr
			var msA, msB runtime.MemStats
			runtime.ReadMemStats(&msA)
			if _, err := core.SolveDiagonal(ctx, p, o); err != nil {
				return report, fmt.Errorf("perf %s trace: %w", inst.name, err)
			}
			runtime.ReadMemStats(&msB)
			// TotalAlloc is monotonic, so the delta is everything this cold
			// solve allocated: solver state, pool, and kernel scratch.
			coldBytes = msB.TotalAlloc - msA.TotalAlloc
		}
		simSerial := parsim.DefaultMachine(1).Execute(tr)

		var serialNs int64
		var serialAllocs uint64
		var steadyIters int
		for _, procs := range procsList {
			if procs > runtime.NumCPU() {
				// The machine cannot grant this worker count real cores,
				// so a wall-clock measurement would show scheduling noise,
				// not scaling. Replay the recorded cost trace on parsim's
				// simulated machine instead and mark the record.
				simN := parsim.DefaultMachine(procs).Execute(tr)
				speedup := float64(simSerial) / float64(simN)
				simNs := int64(float64(serialNs) / speedup)
				report.Records = append(report.Records, PerfRecord{
					Name:            inst.name,
					Procs:           procs,
					NsPerOp:         simNs,
					AllocsPerOp:     serialAllocs,
					Iterations:      steadyIters,
					OuterIterations: steadyIters,
					SpeedupVsSerial: speedup,
					Nnz:             nnz,
					NsPerIter:       perIter(simNs, steadyIters),
					Simulated:       true,
				})
				continue
			}

			pool := parallel.NewPool(procs)
			opts := func() *core.Options {
				o := baseOpts()
				o.Runner = pool
				return o
			}

			// Warm-up solve, untimed: faults pages in and validates.
			sol, err := core.SolveDiagonal(ctx, p, opts())
			if err != nil {
				pool.Close()
				return report, fmt.Errorf("perf %s procs=%d: %w", inst.name, procs, err)
			}

			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			start := time.Now()
			for rep := 0; rep < reps; rep++ {
				if _, err := core.SolveDiagonal(ctx, p, opts()); err != nil {
					pool.Close()
					return report, fmt.Errorf("perf %s procs=%d rep %d: %w", inst.name, procs, rep, err)
				}
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&ms1)
			pool.Close()

			nsPerOp := elapsed.Nanoseconds() / int64(reps)
			allocs := (ms1.Mallocs - ms0.Mallocs) / uint64(reps)
			if procs == 1 {
				serialNs = nsPerOp
				serialAllocs = allocs
			}
			steadyIters = sol.Iterations
			speedup := 1.0
			if serialNs > 0 {
				speedup = float64(serialNs) / float64(nsPerOp)
			}
			rec := PerfRecord{
				Name:            inst.name,
				Procs:           procs,
				NsPerOp:         nsPerOp,
				AllocsPerOp:     allocs,
				Iterations:      sol.Iterations,
				OuterIterations: sol.Iterations,
				SpeedupVsSerial: speedup,
				Nnz:             nnz,
				NsPerIter:       perIter(nsPerOp, sol.Iterations),
			}
			if procs == 1 {
				rec.BytesPerOp = coldBytes
			}
			report.Records = append(report.Records, rec)
		}

		// Steady-state serving record: repeated same-shape solves on one
		// reusable arena with kernel warm starts, plus the warm-start
		// ablation (same arena reuse, warm start off) that isolates the
		// kernel's contribution from the allocation win.
		warmNs, warmAllocs, err := steadyNs(ctx, p, baseOpts, false)
		if err != nil {
			return report, fmt.Errorf("perf %s steady: %w", inst.name, err)
		}
		nowarmNs, _, err := steadyNs(ctx, p, baseOpts, true)
		if err != nil {
			return report, fmt.Errorf("perf %s steady ablation: %w", inst.name, err)
		}
		report.Records = append(report.Records, PerfRecord{
			Name:              inst.name + "/steady",
			Procs:             1,
			NsPerOp:           warmNs,
			AllocsPerOp:       warmAllocs,
			Iterations:        steadyIters,
			OuterIterations:   steadyIters,
			SpeedupVsSerial:   float64(serialNs) / float64(warmNs),
			WarmstartAblation: float64(nowarmNs) / float64(warmNs),
			Nnz:               nnz,
			NsPerIter:         perIter(warmNs, steadyIters),
		})

		// Preconditioned record: the same serial solve behind the ISP
		// warm-start stage (Options.Precondition). Measured on the tiers
		// that bracket the tradeoff — the elastic spe250 tier where the
		// warm start pays severalfold, and two fast-converging tiers where
		// it is pure overhead (the crossover documented in
		// docs/PERFORMANCE.md). SpeedupVsSerial against the plain Procs = 1
		// record is the net wall-clock verdict.
		if precondTiers[inst.name] {
			popts := func() *core.Options {
				o := baseOpts()
				o.Precondition = core.PrecondISP
				return o
			}
			sol, err := core.SolveDiagonal(ctx, p, popts())
			if err != nil {
				return report, fmt.Errorf("perf %s precond: %w", inst.name, err)
			}
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			start := time.Now()
			for rep := 0; rep < reps; rep++ {
				if _, err := core.SolveDiagonal(ctx, p, popts()); err != nil {
					return report, fmt.Errorf("perf %s precond rep %d: %w", inst.name, rep, err)
				}
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&ms1)
			nsPerOp := elapsed.Nanoseconds() / int64(reps)
			report.Records = append(report.Records, PerfRecord{
				Name:            inst.name + "/precond",
				Procs:           1,
				NsPerOp:         nsPerOp,
				AllocsPerOp:     (ms1.Mallocs - ms0.Mallocs) / uint64(reps),
				Iterations:      sol.Iterations,
				OuterIterations: sol.Iterations,
				PrecondNs:       sol.PrecondNs,
				SpeedupVsSerial: float64(serialNs) / float64(nsPerOp),
				Nnz:             nnz,
				NsPerIter:       perIter(nsPerOp, sol.Iterations),
			})
		}
	}

	// Temporal-sequence records: each standard drifting series measured
	// cold and chained (see SequenceSweep). The chained record's
	// SpeedupVsSerial is the serving payoff of the sequence-session layer;
	// its OuterIterations are deterministic, so -compare gates them like any
	// solve record.
	if matches("sequence/") {
		rows, err := SequenceSweep(ctx, cfg)
		if err != nil {
			return report, fmt.Errorf("perf sequence: %w", err)
		}
		for _, r := range rows {
			report.Records = append(report.Records, PerfRecord{
				Name:            "sequence/" + r.Name + "/cold",
				Procs:           1,
				NsPerOp:         r.ColdNs,
				Iterations:      r.ColdIters,
				OuterIterations: r.ColdIters,
				SpeedupVsSerial: 1,
				Periods:         r.Periods,
				NsPerIter:       perIter(r.ColdNs*int64(r.Periods), r.ColdIters),
			})
			report.Records = append(report.Records, PerfRecord{
				Name:            "sequence/" + r.Name + "/chained",
				Procs:           1,
				NsPerOp:         r.ChainedNs,
				Iterations:      r.ChainedIters,
				OuterIterations: r.ChainedIters,
				SpeedupVsSerial: r.Speedup(),
				Periods:         r.Periods,
				NsPerIter:       perIter(r.ChainedNs*int64(r.Periods), r.ChainedIters),
			})
		}
	}

	// Serving-layer record: sustained mixed-shape throughput through
	// pkg/sea/serve, all shape pools warm. The allocs_per_op of this record
	// is the serving promise — at most 2 heap allocations per request on
	// the steady-state hit path.
	if matches("serve/mixed") {
		sr, err := ServeSweep(ctx, cfg)
		if err != nil {
			return report, fmt.Errorf("perf serve: %w", err)
		}
		report.Records = append(report.Records, PerfRecord{
			Name:            "serve/mixed",
			Procs:           sr.MaxInFlight,
			NsPerOp:         sr.NsPerRequest,
			AllocsPerOp:     sr.AllocsPerRequest,
			Iterations:      int(sr.MeanIterations),
			SpeedupVsSerial: 1,
			RequestsPerSec:  sr.RequestsPerSec,
			ShapeHitRate:    sr.HitRate,
		})
	}

	// HTTP front-end records: the same serving layer behind the network
	// transport, one record per shard count. NsPerOp here is mean wall per
	// request end to end (TCP + JSON codec + routing + solve); the latency
	// quantiles and the overload probe's rejected fraction ride along.
	if matches("serve/http") {
		hl, err := HTTPLoadSweep(ctx, cfg)
		if err != nil {
			return report, fmt.Errorf("perf serve/http: %w", err)
		}
		for _, r := range hl {
			report.Records = append(report.Records, PerfRecord{
				Name:             "serve/http",
				Procs:            r.Conns,
				Shards:           r.Shards,
				NsPerOp:          r.Wall.Nanoseconds() / int64(r.Requests),
				SpeedupVsSerial:  1,
				RequestsPerSec:   r.RequestsPerSec,
				ShapeHitRate:     r.HitRate,
				P50Ms:            float64(r.P50) / float64(time.Millisecond),
				P99Ms:            float64(r.P99) / float64(time.Millisecond),
				RejectedFraction: r.RejectedFraction,
			})
		}
	}
	return report, nil
}

// perIter is the per-iteration wall cost backing PerfRecord.NsPerIter.
func perIter(ns int64, iters int) int64 {
	if iters <= 0 {
		return 0
	}
	return ns / int64(iters)
}
