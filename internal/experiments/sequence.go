package experiments

import (
	"context"
	"fmt"
	"time"

	"sea/internal/core"
	"sea/internal/parallel"
	"sea/internal/problems"
)

// SequenceRow is one temporal-sequence measurement: the same drifting
// monthly series solved cold (every period from scratch) and chained (one
// session: shared arena plus the previous period's converged duals seeding
// Mu0). The iteration saving is deterministic; the wall-clock ratio is the
// serving payoff the sequence-session layer exists for.
type SequenceRow struct {
	// Name is the temporal family (problems.TemporalSpec.Name).
	Name string
	// M, N is the per-period table shape, Periods the sequence length.
	M, N, Periods int
	// ColdNs / ChainedNs are mean wall nanoseconds per period.
	ColdNs, ChainedNs int64
	// ColdIters / ChainedIters are total outer iterations over the sequence.
	ColdIters, ChainedIters int
}

// Speedup is the cold-over-chained wall ratio per period.
func (r SequenceRow) Speedup() float64 {
	if r.ChainedNs <= 0 {
		return 0
	}
	return float64(r.ColdNs) / float64(r.ChainedNs)
}

// IterSavedPct is the fraction of outer iterations the chaining removed.
func (r SequenceRow) IterSavedPct() float64 {
	if r.ColdIters <= 0 {
		return 0
	}
	return 100 * float64(r.ColdIters-r.ChainedIters) / float64(r.ColdIters)
}

// SequenceSweep measures the standard temporal specs cold vs chained. All
// solves are serial (Procs = 1): the chained savings are an algorithmic
// effect (fewer iterations), and serial timing keeps the iteration counts
// deterministic for the -compare gate.
func SequenceSweep(ctx context.Context, cfg Config) ([]SequenceRow, error) {
	var out []SequenceRow
	for _, spec := range problems.StandardTemporalSpecs() {
		spec.M = cfg.dim(spec.M)
		spec.N = cfg.dim(spec.N)
		periods := problems.Temporal(spec)
		row := SequenceRow{Name: spec.Name, M: spec.M, N: spec.N, Periods: spec.Periods}

		pool := parallel.NewPool(1)
		opts := func() *core.Options {
			o := core.DefaultOptions()
			o.Epsilon = cfg.eps(1e-8)
			o.MaxIterations = 500000
			o.Runner = pool
			return o
		}

		// Cold: each period solved from scratch, nothing shared.
		coldStart := time.Now()
		for i, p := range periods {
			sol, err := core.SolveDiagonal(ctx, p, opts())
			if err != nil {
				pool.Close()
				return out, fmt.Errorf("sequence %s cold period %d: %w", spec.Name, i, err)
			}
			row.ColdIters += sol.Iterations
		}
		row.ColdNs = time.Since(coldStart).Nanoseconds() / int64(spec.Periods)

		// Chained: one arena and the previous period's duals carried forward
		// — the core-level equivalent of sea.Session with WithDualWarmStart.
		arena := core.NewArena()
		var prevMu []float64
		chainStart := time.Now()
		for i, p := range periods {
			o := opts()
			o.Arena = arena
			o.Mu0 = prevMu
			sol, err := core.SolveDiagonal(ctx, p, o)
			if err != nil {
				arena.Close()
				pool.Close()
				return out, fmt.Errorf("sequence %s chained period %d: %w", spec.Name, i, err)
			}
			row.ChainedIters += sol.Iterations
			prevMu = append(prevMu[:0], sol.Mu...)
		}
		row.ChainedNs = time.Since(chainStart).Nanoseconds() / int64(spec.Periods)
		arena.Close()
		pool.Close()
		out = append(out, row)
	}
	return out, nil
}
