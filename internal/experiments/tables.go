package experiments

import (
	"context"
	"fmt"

	"sea/internal/core"
	"sea/internal/datasets"
	"sea/internal/problems"
	"sea/internal/spe"
)

// Table1Row is one line of Table 1: SEA on large-scale diagonal problems.
type Table1Row struct {
	Size       int // rows = columns
	Nonzeros   int
	Seconds    float64
	Iterations int
}

// Table1 reproduces Table 1: SEA on diagonal quadratic constrained matrix
// problems from 750×750 to 3000×3000, 100% dense, ε = .01.
func Table1(ctx context.Context, cfg Config) ([]Table1Row, error) {
	var rows []Table1Row
	for _, size := range []int{750, 1000, 2000, 3000} {
		n := cfg.dim(size)
		p := problems.Table1(n, uint64(size))
		o := core.DefaultOptions()
		o.Criterion = core.MaxAbsDelta
		o.Epsilon = cfg.eps(0.01)
		cfg.apply(o)
		sol, secs, err := timedSolve(ctx, p, o)
		if err != nil {
			return rows, fmt.Errorf("table 1, size %d: %w", n, err)
		}
		rows = append(rows, Table1Row{
			Size: n, Nonzeros: n * n,
			Seconds: secs, Iterations: sol.Iterations,
		})
	}
	return rows, nil
}

// Table2Row is one line of Table 2: SEA on input/output tables.
type Table2Row struct {
	Dataset    string
	Sectors    int
	Nonzeros   int
	Seconds    float64
	Iterations int
}

// Table2 reproduces Table 2: SEA on the nine U.S. input/output instances
// with known row and column totals.
func Table2(ctx context.Context, cfg Config) ([]Table2Row, error) {
	var rows []Table2Row
	for _, spec := range problems.StandardIOSpecs() {
		spec.Sectors = cfg.dim(spec.Sectors)
		p := problems.IOTable(spec)
		var nz int
		for _, v := range p.X0 {
			if v > 0 {
				nz++
			}
		}
		o := core.DefaultOptions()
		o.Criterion = core.MaxAbsDelta
		o.Epsilon = cfg.eps(0.01)
		cfg.apply(o)
		sol, secs, err := timedSolve(ctx, p, o)
		if err != nil {
			return rows, fmt.Errorf("table 2, %s: %w", spec.Name, err)
		}
		rows = append(rows, Table2Row{
			Dataset: spec.Name, Sectors: spec.Sectors, Nonzeros: nz,
			Seconds: secs, Iterations: sol.Iterations,
		})
	}
	return rows, nil
}

// Table3Row is one line of Table 3: SEA on social accounting matrices.
type Table3Row struct {
	Dataset      string
	Accounts     int
	Transactions int
	Seconds      float64
	Iterations   int
}

// Table3 reproduces Table 3: SEA on SAM estimation problems whose row and
// column totals must balance and be estimated, ε = .001.
func Table3(ctx context.Context, cfg Config) ([]Table3Row, error) {
	type instance struct {
		name string
		p    *core.DiagonalProblem
	}
	var instances []instance
	for _, s := range datasets.All() {
		instances = append(instances, instance{s.Name, problems.SAMFromDataset(s)})
	}
	instances = append(instances, instance{"USDA82E", problems.RandomSAM(cfg.dim(133), 1982)})
	for _, n := range []int{500, 750, 1000} {
		instances = append(instances,
			instance{fmt.Sprintf("S%d", n), problems.RandomSAM(cfg.dim(n), uint64(n))})
	}

	var rows []Table3Row
	for _, inst := range instances {
		var nz int
		for _, v := range inst.p.X0 {
			if v != 0 {
				nz++
			}
		}
		o := core.DefaultOptions()
		o.Criterion = core.RelBalance
		o.Epsilon = cfg.eps(0.001)
		cfg.apply(o)
		sol, secs, err := timedSolve(ctx, inst.p, o)
		if err != nil {
			return rows, fmt.Errorf("table 3, %s: %w", inst.name, err)
		}
		rows = append(rows, Table3Row{
			Dataset: inst.name, Accounts: inst.p.N, Transactions: nz,
			Seconds: secs, Iterations: sol.Iterations,
		})
	}
	return rows, nil
}

// Table4Row is one line of Table 4: SEA on migration tables.
type Table4Row struct {
	Dataset    string
	Seconds    float64
	Iterations int
}

// Table4 reproduces Table 4: SEA on the nine 48×48 U.S. state-to-state
// migration instances with estimated totals and unit weights.
func Table4(ctx context.Context, cfg Config) ([]Table4Row, error) {
	var rows []Table4Row
	for _, spec := range problems.StandardMigrationSpecs() {
		p := problems.MigrationProblem(spec)
		o := core.DefaultOptions()
		o.Criterion = core.DualGradient
		o.Epsilon = cfg.eps(0.01)
		cfg.apply(o)
		o.MaxIterations = 500000
		sol, secs, err := timedSolve(ctx, p, o)
		if err != nil {
			return rows, fmt.Errorf("table 4, %s: %w", spec.Name, err)
		}
		rows = append(rows, Table4Row{Dataset: spec.Name, Seconds: secs, Iterations: sol.Iterations})
	}
	return rows, nil
}

// Table5Row is one line of Table 5: SEA on spatial price equilibrium
// problems.
type Table5Row struct {
	Markets    int // supply = demand markets
	Variables  int
	Seconds    float64
	Iterations int
}

// Table5 reproduces Table 5: spatial price equilibrium problems from
// 50×50 to 750×750 markets, solved through the constrained-matrix
// isomorphism, ε = .01.
func Table5(ctx context.Context, cfg Config) ([]Table5Row, error) {
	var rows []Table5Row
	for _, size := range []int{50, 100, 250, 500, 750} {
		n := cfg.dim(size)
		sp := spe.Generate(n, n, uint64(size))
		p, err := sp.ToConstrainedMatrix()
		if err != nil {
			return rows, err
		}
		o := core.DefaultOptions()
		o.Criterion = core.DualGradient
		o.Epsilon = cfg.eps(0.01)
		cfg.apply(o)
		o.CheckEvery = 2 // the paper checked every other iteration here
		o.MaxIterations = 500000
		sol, secs, err := timedSolve(ctx, p, o)
		if err != nil {
			return rows, fmt.Errorf("table 5, SP%d: %w", n, err)
		}
		rows = append(rows, Table5Row{
			Markets: n, Variables: n * n,
			Seconds: secs, Iterations: sol.Iterations,
		})
	}
	return rows, nil
}
