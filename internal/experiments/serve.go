package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"sea/internal/problems"
	"sea/pkg/sea"
	"sea/pkg/sea/serve"
)

// The serving benchmark's fixed geometry: eight concurrent submitters
// round-robining over three problem shapes, four solves in flight at once.
// The warm-up rounds fill every shape pool to MaxInFlight arenas so the
// measured phase runs entirely on pool hits — the steady state a long-lived
// serving process converges to.
const (
	serveSubmitters       = 8
	serveReqsPerSubmitter = 24
	serveMaxInFlight      = 4
	serveWarmupRounds     = 3
)

// ServeResult is one sustained-throughput measurement of pkg/sea/serve.
type ServeResult struct {
	Submitters  int
	MaxInFlight int
	Sizes       []int // shape orders in the mix (square instances)
	Requests    int   // measured requests (excludes warm-up)
	Wall        time.Duration
	// NsPerRequest is wall time divided by requests — the sustained
	// per-request cost at this concurrency, not a single solve's latency.
	NsPerRequest int64
	// AllocsPerRequest is the measured phase's heap allocations divided by
	// its requests; the steady-state shape-pool hit path budget is <= 2.
	AllocsPerRequest uint64
	RequestsPerSec   float64
	// HitRate is the measured phase's shape-pool hit fraction (1.0 when the
	// warm-up filled every pool, the expected steady state).
	HitRate float64
	// MeanIterations is the per-request solver iteration count.
	MeanIterations float64
	// Stats is the server's final snapshot (cumulative, including warm-up).
	Stats serve.Stats
}

// ServeSweep drives the serving layer at a sustained load of mixed shapes
// (Table 1-style instances of order 100, 250, and 500 at cfg.Scale) and
// measures steady-state throughput, per-request allocations, and the
// shape-pool hit rate. It is the data source for seabench -serve and the
// "serve/mixed" BENCH_sea.json record.
func ServeSweep(ctx context.Context, cfg Config) (ServeResult, error) {
	sizes := []int{cfg.dim(100), cfg.dim(250), cfg.dim(500)}
	probs := make([]*sea.Problem, len(sizes))
	for i, n := range sizes {
		p, err := sea.NewDiagonal(problems.Table1(n, uint64(n)))
		if err != nil {
			return ServeResult{}, fmt.Errorf("serve sweep %dx%d: %w", n, n, err)
		}
		probs[i] = p
	}

	o := sea.DefaultOptions()
	o.Criterion = sea.MaxAbsDelta
	o.Epsilon = cfg.eps(0.01)
	o.MaxIterations = 500000
	o.DisableWarmStart = cfg.NoWarm
	srv, err := serve.NewServer(serve.Config{
		Solver:      "sea",
		MaxInFlight: serveMaxInFlight,
		// A throughput run wants back-pressure, not rejections: the queue
		// bound is sized so no request can ever be turned away.
		MaxQueue:  serveSubmitters * serveReqsPerSubmitter,
		MaxShapes: len(probs),
		Options:   o,
	})
	if err != nil {
		return ServeResult{}, fmt.Errorf("serve sweep: %w", err)
	}
	defer srv.Close()

	// Warm-up: Prewarm provisions every shape pool to MaxInFlight arenas
	// deterministically (concurrent warm-up traffic only grows a pool as far
	// as the scheduler overlaps, which on few cores is not far); the extra
	// rounds re-solve each arena so the kernel warm starts settle. The
	// measured phase then runs entirely on warm pool hits.
	for round := 0; round < serveWarmupRounds; round++ {
		for _, p := range probs {
			if err := srv.Prewarm(ctx, p, serveMaxInFlight); err != nil {
				return ServeResult{}, fmt.Errorf("serve warm-up: %w", err)
			}
		}
	}
	warm := srv.Stats()

	var wg sync.WaitGroup
	errs := make([]error, serveSubmitters)
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for g := 0; g < serveSubmitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var out sea.Solution
			for i := 0; i < serveReqsPerSubmitter; i++ {
				if _, err := srv.SubmitInto(ctx, probs[(g+i)%len(probs)], nil, &out); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	wall := time.Since(start)
	runtime.ReadMemStats(&ms1)
	for _, err := range errs {
		if err != nil {
			return ServeResult{}, fmt.Errorf("serve sweep: %w", err)
		}
	}

	st := srv.Stats()
	requests := serveSubmitters * serveReqsPerSubmitter
	hits := st.ShapeHits - warm.ShapeHits
	misses := st.ShapeMisses - warm.ShapeMisses
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	return ServeResult{
		Submitters:       serveSubmitters,
		MaxInFlight:      serveMaxInFlight,
		Sizes:            sizes,
		Requests:         requests,
		Wall:             wall,
		NsPerRequest:     wall.Nanoseconds() / int64(requests),
		AllocsPerRequest: (ms1.Mallocs - ms0.Mallocs) / uint64(requests),
		RequestsPerSec:   float64(requests) / wall.Seconds(),
		HitRate:          hitRate,
		MeanIterations:   float64(st.Solver.Iterations-warm.Solver.Iterations) / float64(requests),
		Stats:            st,
	}, nil
}
